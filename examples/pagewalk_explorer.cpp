/**
 * @file
 * Page-walk explorer: reproduces the paper's Figure 8 walkthrough on
 * a live page table and shows what the PTW scheduler's comparator
 * tree does with concurrent walks.
 *
 * Builds the exact example from the paper - three warp threads
 * missing on virtual pages (0xb9,0x0c,0xac,0x03),
 * (0xb9,0x0c,0xac,0x04) and (0xb9,0x0c,0xad,0x05) - and prints the
 * reference streams of a conventional serial walker (12 loads) and
 * the scheduling walker (7 loads), with completion times from the
 * simulated memory system.
 */

#include <iomanip>
#include <iostream>

#include "mem/request.hh"
#include "mmu/ptw.hh"
#include "sim/event_queue.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

using namespace gpummu;

namespace {

Vpn
vpnOf(unsigned pml4, unsigned pdp, unsigned pd, unsigned pt)
{
    return (static_cast<Vpn>(pml4) << 27) |
           (static_cast<Vpn>(pdp) << 18) |
           (static_cast<Vpn>(pd) << 9) | pt;
}

void
printPath(const PageTable &pt, Vpn vpn, const char *label)
{
    const auto path = pt.walk(vpn);
    std::cout << "  " << label << " walks:";
    const char *levels[] = {"PML4", "PDP", "PD", "PT"};
    for (unsigned l = 0; l < path.levels; ++l) {
        std::cout << "  " << levels[l] << "@0x" << std::hex
                  << path.entryAddrs[l] << " (line 0x"
                  << lineAddrOf(path.entryAddrs[l]) << ")" << std::dec;
    }
    std::cout << "\n";
}

void
runWalker(const char *label, bool scheduling, const PageTable &pt,
          const std::vector<Vpn> &vpns)
{
    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    PtwConfig cfg;
    cfg.scheduling = scheduling;
    cfg.pwcLines = 0; // show raw memory reference counts
    PageWalkers walkers(cfg, pt, mem, eq);

    std::cout << label << ":\n";
    walkers.requestBatch(vpns, 0, [](Vpn vpn, Cycle done) {
        std::cout << "    vpn 0x" << std::hex << vpn << std::dec
                  << " translated at cycle " << done << "\n";
    });
    eq.runUntil(1'000'000);
    std::cout << "    memory references issued: "
              << walkers.refsIssued()
              << "  eliminated by the comparator tree: "
              << walkers.refsEliminated() << "\n\n";
}

} // namespace

int
main()
{
    PhysicalMemory phys(1 << 18, /*scramble=*/false);
    PageTable pt(phys);

    const Vpn a = vpnOf(0xb9, 0x0c, 0xac, 0x03);
    const Vpn b = vpnOf(0xb9, 0x0c, 0xac, 0x04);
    const Vpn c = vpnOf(0xb9, 0x0c, 0xad, 0x05);
    pt.map4K(a, 0x100);
    pt.map4K(b, 0x101);
    pt.map4K(c, 0x102);

    std::cout << "Paper Figure 8: three concurrent page walks\n\n";
    printPath(pt, a, "(0xb9,0x0c,0xac,0x03)");
    printPath(pt, b, "(0xb9,0x0c,0xac,0x04)");
    printPath(pt, c, "(0xb9,0x0c,0xad,0x05)");
    std::cout << "\nAll three share the PML4 and PDP entries; the PD"
                 "\nentries 0xac/0xad share one 128-byte line; the PT"
                 "\nentries 0x03/0x04 share a line.\n\n";

    runWalker("Conventional serial walker (dark bubbles)", false, pt,
              {a, b, c});
    runWalker("Cache-aware coalesced walker (light bubbles)", true,
              pt, {a, b, c});

    std::cout << "The scheduler reduces 12 loads to 7 and finishes "
                 "sooner,\nexactly the paper's example.\n";
    return 0;
}
