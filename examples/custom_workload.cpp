/**
 * @file
 * Custom workload walkthrough: shows how a downstream user defines
 * their own kernel (a pointer-chasing hash join probe) against the
 * public Workload interface and evaluates MMU designs on it.
 *
 * The kernel: each thread streams probe keys, hashes into a large
 * build table, and walks a short conflict chain - a braided mix of
 * coalesced streaming and irregular probing, the kind of future
 * unified-address-space workload the paper's Section 5 anticipates.
 */

#include <iostream>
#include <memory>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "workloads/patterns.hh"

using namespace gpummu;

namespace {

class HashJoinWorkload : public Workload
{
  public:
    explicit HashJoinWorkload(const WorkloadParams &p)
        : Workload(p), prog_("hashjoin")
    {
    }

    std::string name() const override { return "hashjoin"; }
    const KernelProgram &program() const override { return prog_; }
    unsigned threadsPerBlock() const override { return 256; }
    unsigned numBlocks() const override { return 48; }

    void
    build(AddressSpace &as) override
    {
        probes_ = as.mmap("join.probes", 8ULL << 20);
        build_ = as.mmap("join.build", 96ULL << 20);

        // Streamed probe keys: coalesced, one fresh line per warp
        // per iteration.
        const int probe_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.globalTid) +
                static_cast<std::uint64_t>(c.visits(1)) * 999983ULL;
            return streamAddr(probes_, idx, 8);
        });
        // Build-table buckets: hot skew plus per-warp partition
        // windows plus a scattered tail - tuned via MixParams, the
        // same knobs the six paper benchmarks use.
        MixParams mix;
        mix.salt = 21;
        mix.hotPages = 32;
        mix.pHot = 0.45;
        mix.hotGroups = 4;
        mix.windowPages = 2;
        mix.poolPages = 256;
        mix.pScatter = 0.05;
        mix.linesPerPage = 2;
        mix.stickyLen = 2;
        const int bucket_ld = prog_.addAddrGen([this, mix](ThreadCtx &c) {
            return mixedAddr(c, build_, mix, c.visits(1));
        });

        const int chain_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.35); });
        const int loop_cond = prog_.addCondGen([](ThreadCtx &c) {
            return c.visits(1) < 16;
        });

        const int b_entry = prog_.addBlock();
        const int b_loop = prog_.addBlock();
        const int b_chain = prog_.addBlock();
        const int b_join = prog_.addBlock();
        const int b_exit = prog_.addBlock();

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_loop, -1, -1);

        prog_.appendLoad(b_loop, probe_ld);
        prog_.appendAlu(b_loop, 3); // hash
        prog_.appendLoad(b_loop, bucket_ld);
        prog_.appendAlu(b_loop, 2);
        prog_.appendBranch(b_loop, chain_cond, b_chain, b_join,
                           b_join);

        prog_.appendLoad(b_chain, bucket_ld);
        prog_.appendAlu(b_chain, 2);
        prog_.appendBranch(b_chain, chain_cond, b_chain, b_join,
                           b_join);

        prog_.appendAlu(b_join, 2);
        prog_.appendBranch(b_join, loop_cond, b_loop, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    KernelProgram prog_;
    VmRegion probes_;
    VmRegion build_;
};

RunStats
run(const SystemConfig &cfg, const WorkloadParams &params)
{
    HashJoinWorkload wl(params);
    GpuTop gpu(cfg.numCores, cfg.mem, wl,
               [&cfg](int id, const LaunchParams &l, AddressSpace &as,
                      MemorySystem &m,
                      EventQueue &e) -> std::unique_ptr<ShaderCore> {
                   auto core = std::make_unique<SimtCore>(
                       id, cfg.core, l, as, m, e);
                   return core;
               },
               cfg.largePages, cfg.physFrames);
    return gpu.run(cfg.maxCycles);
}

} // namespace

int
main()
{
    WorkloadParams params;
    params.seed = 11;

    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(4);
    const SystemConfig aug = presets::augmentedTlb();

    std::cout << "Custom workload: GPU hash-join probe under three "
                 "MMU designs\n\n";
    const RunStats b = run(base, params);
    ReportTable table({"config", "cycles", "tlb-miss%", "pagediv",
                       "speedup-vs-no-tlb"});
    for (const SystemConfig *cfg : {&base, &naive, &aug}) {
        const RunStats s = run(*cfg, params);
        table.addRow(
            {cfg->name, std::to_string(s.cycles),
             ReportTable::pct(s.tlbMissRate()),
             ReportTable::num(s.avgPageDivergence, 2),
             ReportTable::num(static_cast<double>(b.cycles) /
                              static_cast<double>(s.cycles))});
    }
    table.print(std::cout);
    std::cout << "\nDefine your own Workload subclass exactly like "
                 "this to evaluate\nGPU MMU designs on new "
                 "unified-address-space kernels.\n";
    return 0;
}
