/**
 * @file
 * MMU feature sweep: walks the paper's design-point ladder for one
 * benchmark, from the no-TLB baseline through every augmentation
 * step (ports, hit-under-miss, cache overlap, PTW scheduling,
 * multiple walkers, ideal). Useful for seeing where each feature's
 * win comes from.
 *
 * The ladder runs through SweepRunner, so the points simulate in
 * parallel; results are deterministic and identical at any job
 * count.
 *
 * Usage: mmu_sweep [benchmark] [scale] [jobs]
 *                  [--trace=<file>] [--trace-filter=<prefix>]
 *                  [--sample-interval=<cycles>] [--sample-out=<file>]
 *                  [--report=<file>] [--capture-trace=<file>]
 *                  [--spans=<file>]
 *        (jobs defaults to GPUMMU_JOBS, else all hardware threads)
 *
 * With --trace=<file>, one extra run of the augmented design point is
 * simulated after the sweep with event tracing armed, and the result
 * is written as Chrome trace-event JSON (open in Perfetto or
 * chrome://tracing). --trace-filter restricts recording to categories
 * whose name starts with the prefix (tlb, ptw, coalescer, l1, l2,
 * dram, core).
 *
 * With --sample-interval=<n>, the augmented design point is re-run
 * with telemetry armed: --sample-out writes the per-interval counter
 * series (.csv or .json by extension) and --report writes a
 * self-contained HTML run report with interval charts, the stall
 * breakdown and the hot-page / hot-PTE-line tables. Both observation
 * layers never change simulated results.
 *
 * With --capture-trace=<file>, the augmented design point is re-run
 * with memory-trace capture armed and the result is written as a
 * replayable memtrace (drive it back through the MMU stack with
 * bench/trace_replay).
 *
 * With --spans=<file>, the augmented design point is re-run with
 * translation-lifecycle span tracking armed: every translation
 * request gets a cycle-stamped timeline through TLB lookup, L2/MSHR,
 * walker queueing and service, and fill. The per-stage latency
 * decomposition is exported as .csv or .json (by extension) and a
 * summary is printed. Combined with --trace, the one armed run
 * serves both so the Chrome trace carries span flow arrows; combined
 * with --report, the HTML report gains a translation-latency-anatomy
 * section.
 */

#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "sim/parse_util.hh"
#include "telemetry/report.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/memtrace.hh"
#include "trace/trace.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    // Flags can appear anywhere; positionals keep their order.
    std::string trace_file, trace_filter, sample_out, report_file;
    std::string capture_file, spans_file;
    Cycle sample_interval = 0;
    std::vector<std::string> pos;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--trace=", 0) == 0) {
            trace_file = arg.substr(8);
        } else if (arg.rfind("--trace-filter=", 0) == 0) {
            trace_filter = arg.substr(15);
            if (!traceFilterMatchesAny(trace_filter)) {
                std::cerr << "--trace-filter=" << trace_filter
                          << " matches no category; valid: "
                          << traceCatNames() << "\n";
                return 2;
            }
        } else if (arg.rfind("--sample-interval=", 0) == 0) {
            // Strict full-token parse: trailing garbage is an
            // error, not a truncated number.
            if (!parseNum(arg.substr(18), sample_interval) ||
                sample_interval == 0) {
                std::cerr << "--sample-interval wants a positive "
                             "cycle count\n";
                return 2;
            }
        } else if (arg.rfind("--capture-trace=", 0) == 0) {
            capture_file = arg.substr(16);
            if (capture_file.empty()) {
                std::cerr
                    << "--capture-trace wants an output path\n";
                return 2;
            }
        } else if (arg.rfind("--sample-out=", 0) == 0) {
            sample_out = arg.substr(13);
            const auto dot = sample_out.rfind('.');
            const std::string ext =
                dot == std::string::npos ? "" : sample_out.substr(dot);
            if (ext != ".csv" && ext != ".json") {
                std::cerr
                    << "--sample-out wants a .csv or .json path\n";
                return 2;
            }
        } else if (arg.rfind("--report=", 0) == 0) {
            report_file = arg.substr(9);
            if (report_file.empty()) {
                std::cerr << "--report wants an output path\n";
                return 2;
            }
        } else if (arg.rfind("--spans=", 0) == 0) {
            spans_file = arg.substr(8);
            const auto dot = spans_file.rfind('.');
            const std::string ext =
                dot == std::string::npos ? "" : spans_file.substr(dot);
            if (ext != ".csv" && ext != ".json") {
                std::cerr << "--spans wants a .csv or .json path\n";
                return 2;
            }
        } else if (arg.rfind("--", 0) == 0) {
            std::cerr << "unknown option: " << arg
                      << "\nusage: mmu_sweep [benchmark] [scale] "
                         "[jobs] [--trace=<file>] "
                         "[--trace-filter=<prefix>] "
                         "[--sample-interval=<cycles>] "
                         "[--sample-out=<file>] [--report=<file>] "
                         "[--capture-trace=<file>] [--spans=<file>]\n";
            return 2;
        } else {
            pos.push_back(arg);
        }
    }
    if (sample_interval == 0 &&
        (!sample_out.empty() || !report_file.empty())) {
        std::cerr << "--sample-out/--report need "
                     "--sample-interval=<cycles>\n";
        return 2;
    }
    if (sample_interval != 0 && sample_out.empty() &&
        report_file.empty()) {
        std::cerr << "--sample-interval needs --sample-out=<file> "
                     "and/or --report=<file>\n";
        return 2;
    }

    std::string name = pos.size() > 0 ? pos[0] : "bfs";
    WorkloadParams params;
    params.scale = 0.25;
    params.seed = 42;
    if (pos.size() > 1 &&
        (!parseDouble(pos[1], params.scale) || params.scale <= 0.0)) {
        std::cerr << "bad scale '" << pos[1]
                  << "': wants a positive number\n";
        return 2;
    }
    unsigned jobs = 0;
    if (pos.size() > 2 && !parseNum(pos[2], jobs)) {
        std::cerr << "bad jobs '" << pos[2]
                  << "': wants a non-negative int\n";
        return 2;
    }

    BenchmarkId bench = BenchmarkId::Bfs;
    for (BenchmarkId id : allBenchmarks()) {
        if (benchmarkName(id) == name)
            bench = id;
    }

    Experiment exp(params);
    const SystemConfig base = presets::noTlb();

    std::vector<SystemConfig> ladder = {
        presets::naiveTlb(3),
        presets::naiveTlb(4),
        presets::tlbHitUnderMiss(),
        presets::tlbCacheOverlap(),
        presets::augmentedTlb(),
        presets::naiveTlbMultiPtw(8),
        presets::idealTlb(),
    };

    // Fan the whole ladder (baseline first) out over worker threads.
    std::vector<SweepPoint> grid;
    grid.push_back(SweepPoint{bench, base});
    for (const auto &cfg : ladder)
        grid.push_back(SweepPoint{bench, cfg});
    SweepRunner runner(exp, jobs);
    const auto results = runner.run(grid);

    std::cout << "ran " << grid.size() << " design points on "
              << runner.jobs() << " worker threads\n\n";

    ReportTable table({"config", "cycles", "tlb-miss%", "walk-lat",
                       "refs-elim", "speedup"});
    const RunStats b = results.front().stats;
    table.addRow({base.name, std::to_string(b.cycles), "-", "-", "-",
                  "1.000"});
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const RunStats s = results[i + 1].stats;
        table.addRow(
            {ladder[i].name, std::to_string(s.cycles),
             ReportTable::pct(s.tlbMissRate()),
             ReportTable::num(s.avgTlbMissLatency, 0),
             std::to_string(s.walkRefsEliminated),
             ReportTable::num(static_cast<double>(b.cycles) /
                                  static_cast<double>(s.cycles),
                              3)});
    }
    table.print(std::cout);

    // A TraceSink belongs to exactly one run, so the traced point is
    // a separate simulation after the sweep (timing is bit-identical
    // either way; tracing is observation-only). With --spans the one
    // armed run serves both exports, so the Chrome trace carries the
    // translation span flow arrows.
    if (!trace_file.empty() || !spans_file.empty()) {
        TraceSink sink;
        if (!trace_filter.empty())
            sink.setFilter(trace_filter);
        SpanTracker spans;
        const SystemConfig traced = presets::augmentedTlb();
        runConfigFull(bench, traced, params,
                      trace_file.empty() ? nullptr : &sink, nullptr,
                      nullptr, spans_file.empty() ? nullptr : &spans);
        if (!trace_file.empty()) {
            if (!sink.writeChromeTraceFile(trace_file)) {
                std::cerr << "failed to write trace: " << trace_file
                          << "\n";
                return 1;
            }
            std::cout << "\ntrace: " << sink.size() << " events ("
                      << sink.dropped() << " dropped) -> "
                      << trace_file << " [" << name << " / "
                      << traced.name << "]\n";
        }
        if (!spans_file.empty()) {
            if (spans.empty()) {
                std::cerr << "span table is empty: no translation "
                             "requests were observed ["
                          << name << " / " << traced.name << "]\n";
                return 1;
            }
            const bool csv =
                spans_file.size() >= 4 &&
                spans_file.compare(spans_file.size() - 4, 4,
                                   ".csv") == 0;
            const bool ok = csv ? spans.writeCsvFile(spans_file)
                                : spans.writeJsonFile(spans_file);
            if (!ok) {
                std::cerr << "failed to write spans: " << spans_file
                          << "\n";
                return 1;
            }
            std::cout << "\n";
            spans.writeSummary(std::cout);
            std::cout << "spans: " << spans.spansClosed()
                      << " closed (" << spans.spansOpen()
                      << " open at end) -> " << spans_file << " ["
                      << name << " / " << traced.name << "]\n";
        }
    }

    // Telemetry likewise belongs to one run: sample the augmented
    // design point in a separate armed simulation. Spans ride along
    // when requested so the HTML report gains the translation-
    // latency-anatomy section.
    if (sample_interval != 0) {
        TelemetryConfig tcfg;
        tcfg.sampleInterval = sample_interval;
        Telemetry telemetry(tcfg);
        SpanTracker spans;
        SpanTracker *span_arm =
            (!spans_file.empty() && !report_file.empty()) ? &spans
                                                          : nullptr;
        const SystemConfig sampled = presets::augmentedTlb();
        runConfigFull(bench, sampled, params, nullptr, &telemetry,
                      nullptr, span_arm);
        if (!sample_out.empty()) {
            const bool csv =
                sample_out.size() >= 4 &&
                sample_out.compare(sample_out.size() - 4, 4,
                                   ".csv") == 0;
            const bool ok =
                csv ? telemetry.writeCsvFile(sample_out)
                    : telemetry.writeJsonFile(sample_out);
            if (!ok) {
                std::cerr << "failed to write samples: "
                          << sample_out << "\n";
                return 1;
            }
            std::cout << "telemetry: "
                      << telemetry.sampler().intervals().size()
                      << " intervals -> " << sample_out << " ["
                      << name << " / " << sampled.name << "]\n";
        }
        if (!report_file.empty()) {
            if (!writeHtmlReportFile(report_file, telemetry,
                                     span_arm)) {
                std::cerr << "report has an empty hot-page table "
                             "(no walks attributed): "
                          << report_file << "\n";
                return 1;
            }
            std::cout << "report: "
                      << telemetry.heat().pages().size()
                      << " pages, "
                      << telemetry.heat().lines().size()
                      << " page-table lines -> " << report_file
                      << "\n";
        }
    }

    // Memtrace capture is observation-only like the two layers
    // above: a separate armed re-run of the augmented point. Capture
    // registers no stats, so the armed run is bit-identical to the
    // swept one.
    if (!capture_file.empty()) {
        MemTraceWriter writer(capture_file);
        const SystemConfig captured = presets::augmentedTlb();
        runConfigFull(bench, captured, params, nullptr, nullptr,
                      &writer);
        std::cout << "memtrace: " << writer.accessesRecorded()
                  << " accesses, " << writer.branchesRecorded()
                  << " branches -> " << capture_file << " [" << name
                  << " / " << captured.name << "]\n";
    }
    return 0;
}
