/**
 * @file
 * MMU feature sweep: walks the paper's design-point ladder for one
 * benchmark, from the no-TLB baseline through every augmentation
 * step (ports, hit-under-miss, cache overlap, PTW scheduling,
 * multiple walkers, ideal). Useful for seeing where each feature's
 * win comes from.
 *
 * The ladder runs through SweepRunner, so the points simulate in
 * parallel; results are deterministic and identical at any job
 * count.
 *
 * Usage: mmu_sweep [benchmark] [scale] [jobs]
 *        (jobs defaults to GPUMMU_JOBS, else all hardware threads)
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "core/sweep.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "bfs";
    WorkloadParams params;
    params.scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    params.seed = 42;
    const unsigned jobs =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 0;

    BenchmarkId bench = BenchmarkId::Bfs;
    for (BenchmarkId id : allBenchmarks()) {
        if (benchmarkName(id) == name)
            bench = id;
    }

    Experiment exp(params);
    const SystemConfig base = presets::noTlb();

    std::vector<SystemConfig> ladder = {
        presets::naiveTlb(3),
        presets::naiveTlb(4),
        presets::tlbHitUnderMiss(),
        presets::tlbCacheOverlap(),
        presets::augmentedTlb(),
        presets::naiveTlbMultiPtw(8),
        presets::idealTlb(),
    };

    // Fan the whole ladder (baseline first) out over worker threads.
    std::vector<SweepPoint> grid;
    grid.push_back(SweepPoint{bench, base});
    for (const auto &cfg : ladder)
        grid.push_back(SweepPoint{bench, cfg});
    SweepRunner runner(exp, jobs);
    const auto results = runner.run(grid);

    std::cout << "ran " << grid.size() << " design points on "
              << runner.jobs() << " worker threads\n\n";

    ReportTable table({"config", "cycles", "tlb-miss%", "walk-lat",
                       "refs-elim", "speedup"});
    const RunStats b = results.front().stats;
    table.addRow({base.name, std::to_string(b.cycles), "-", "-", "-",
                  "1.000"});
    for (std::size_t i = 0; i < ladder.size(); ++i) {
        const RunStats s = results[i + 1].stats;
        table.addRow(
            {ladder[i].name, std::to_string(s.cycles),
             ReportTable::pct(s.tlbMissRate()),
             ReportTable::num(s.avgTlbMissLatency, 0),
             std::to_string(s.walkRefsEliminated),
             ReportTable::num(static_cast<double>(b.cycles) /
                                  static_cast<double>(s.cycles),
                              3)});
    }
    table.print(std::cout);
    return 0;
}
