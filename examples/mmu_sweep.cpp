/**
 * @file
 * MMU feature sweep: walks the paper's design-point ladder for one
 * benchmark, from the no-TLB baseline through every augmentation
 * step (ports, hit-under-miss, cache overlap, PTW scheduling,
 * multiple walkers, ideal). Useful for seeing where each feature's
 * win comes from.
 *
 * Usage: mmu_sweep [benchmark] [scale]
 */

#include <iostream>

#include "core/experiment.hh"
#include "core/presets.hh"

using namespace gpummu;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "bfs";
    WorkloadParams params;
    params.scale = argc > 2 ? std::atof(argv[2]) : 0.25;
    params.seed = 42;

    BenchmarkId bench = BenchmarkId::Bfs;
    for (BenchmarkId id : allBenchmarks()) {
        if (benchmarkName(id) == name)
            bench = id;
    }

    Experiment exp(params);
    const SystemConfig base = presets::noTlb();

    std::vector<SystemConfig> ladder = {
        presets::naiveTlb(3),
        presets::naiveTlb(4),
        presets::tlbHitUnderMiss(),
        presets::tlbCacheOverlap(),
        presets::augmentedTlb(),
        presets::naiveTlbMultiPtw(8),
        presets::idealTlb(),
    };

    ReportTable table({"config", "cycles", "tlb-miss%", "walk-lat",
                       "refs-elim", "speedup"});
    const RunStats b = exp.run(bench, base);
    table.addRow({base.name, std::to_string(b.cycles), "-", "-", "-",
                  "1.000"});
    for (const auto &cfg : ladder) {
        const RunStats s = exp.run(bench, cfg);
        table.addRow(
            {cfg.name, std::to_string(s.cycles),
             ReportTable::pct(s.tlbMissRate()),
             ReportTable::num(s.avgTlbMissLatency, 0),
             std::to_string(s.walkRefsEliminated),
             ReportTable::num(exp.speedup(bench, cfg, base), 3)});
    }
    table.print(std::cout);
    return 0;
}
