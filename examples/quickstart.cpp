/**
 * @file
 * Quickstart: simulate one benchmark on three MMU design points and
 * print the headline numbers. This is the 30-second tour of the
 * library; see the bench/ binaries for full paper reproductions.
 *
 * Usage: quickstart [benchmark] [scale]
 *   benchmark: bfs | kmeans | streamcluster | mummergpu |
 *              pathfinder | memcached   (default bfs)
 *   scale:     workload scale factor     (default 0.25)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "sim/parse_util.hh"

using namespace gpummu;

namespace {

BenchmarkId
parseBenchmark(const std::string &name)
{
    for (BenchmarkId id : allBenchmarks()) {
        if (benchmarkName(id) == name)
            return id;
    }
    std::cerr << "unknown benchmark '" << name << "'\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const BenchmarkId bench =
        argc > 1 ? parseBenchmark(argv[1]) : BenchmarkId::Bfs;
    WorkloadParams params;
    params.scale = 0.25;
    params.seed = 42;
    if (argc > 2 && (!parseDouble(argv[2], params.scale) ||
                     params.scale <= 0.0)) {
        std::cerr << "bad scale '" << argv[2]
                  << "': wants a positive number\n";
        return 1;
    }

    Experiment exp(params);
    const SystemConfig base = presets::noTlb();
    const SystemConfig naive = presets::naiveTlb(3);
    const SystemConfig augmented = presets::augmentedTlb();

    std::cout << "benchmark: " << benchmarkName(bench)
              << "  scale: " << params.scale << "\n\n";

    ReportTable table({"config", "cycles", "IPC", "tlb-miss%",
                       "l1-miss%", "pagediv", "speedup-vs-no-tlb"});
    for (const SystemConfig *cfg : {&base, &naive, &augmented}) {
        const RunStats s = exp.run(bench, *cfg);
        table.addRow({cfg->name, std::to_string(s.cycles),
                      ReportTable::num(s.ipc(), 2),
                      ReportTable::pct(s.tlbMissRate()),
                      ReportTable::pct(s.l1MissRate()),
                      ReportTable::num(s.avgPageDivergence, 2),
                      ReportTable::num(exp.speedup(bench, *cfg, base),
                                       3)});
    }
    table.print(std::cout);

    const RunStats naive_stats = exp.run(bench, naive);
    std::cout << "\navg TLB miss latency: "
              << ReportTable::num(naive_stats.avgTlbMissLatency, 1)
              << " cycles, avg L1 miss latency: "
              << ReportTable::num(naive_stats.avgL1MissLatency, 1)
              << " cycles\n";
    return 0;
}
