/**
 * @file
 * Statistics dump: run one (benchmark, preset) pair and print every
 * registered statistic - per-core TLB/PTW/L1 counters, walk latency
 * histograms, scheduler throttle counters, memory-partition traffic.
 * The grep-friendly format is the debugging entry point for new
 * design points.
 *
 * Usage: stats_dump [benchmark] [preset] [scale]
 *   preset: no-tlb | naive | augmented | ideal | iommu | ccws | tbc
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hh"
#include "mmu/iommu.hh"
#include "core/presets.hh"
#include "sched/ccws.hh"
#include "sim/parse_util.hh"
#include "tbc/tbc_core.hh"

using namespace gpummu;

namespace {

SystemConfig
presetByName(const std::string &name)
{
    if (name == "no-tlb")
        return presets::noTlb();
    if (name == "naive")
        return presets::naiveTlb(4);
    if (name == "augmented")
        return presets::augmentedTlb();
    if (name == "ideal")
        return presets::idealTlb();
    if (name == "iommu")
        return presets::iommu();
    if (name == "ccws")
        return presets::ccws(presets::augmentedTlb());
    if (name == "tbc")
        return presets::tbc(presets::augmentedTlb());
    std::cerr << "unknown preset '" << name << "'\n";
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string bench_name = argc > 1 ? argv[1] : "bfs";
    const SystemConfig cfg =
        presetByName(argc > 2 ? argv[2] : "augmented");
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 42;
    if (argc > 3 && (!parseDouble(argv[3], params.scale) ||
                     params.scale <= 0.0)) {
        std::cerr << "bad scale '" << argv[3]
                  << "': wants a positive number\n";
        return 1;
    }

    BenchmarkId bench = BenchmarkId::Bfs;
    for (BenchmarkId id : allBenchmarks()) {
        if (benchmarkName(id) == bench_name)
            bench = id;
    }

    auto workload = makeWorkload(bench, params);
    auto iommu_holder = std::make_shared<std::unique_ptr<Iommu>>();
    GpuTop gpu(
        cfg.numCores, cfg.mem, *workload,
        [&cfg, iommu_holder](
            int id, const LaunchParams &l, AddressSpace &as,
            MemorySystem &m,
            EventQueue &e) -> std::unique_ptr<ShaderCore> {
            if (cfg.coreKind == CoreKind::Tbc) {
                return std::make_unique<TbcCore>(id, cfg.core,
                                                 cfg.tbc, l, as, m, e);
            }
            auto core = std::make_unique<SimtCore>(id, cfg.core, l,
                                                   as, m, e);
            if (cfg.sched == SchedulerKind::Ccws)
                core->setScheduler(std::make_unique<Ccws>(cfg.ccws));
            if (cfg.iommu) {
                if (!*iommu_holder) {
                    *iommu_holder = std::make_unique<Iommu>(
                        cfg.iommuCfg, as, m, e);
                }
                core->setIommu(iommu_holder->get());
            }
            return core;
        },
        cfg.largePages, cfg.physFrames);
    if (*iommu_holder)
        (*iommu_holder)->regStats(gpu.stats(), "iommu");

    const RunStats stats = gpu.run(cfg.maxCycles);
    std::cout << "# " << benchmarkName(bench) << " / " << cfg.name
              << " scale=" << params.scale << "\n";
    std::cout << "run.cycles " << stats.cycles << "\n";
    std::cout << "run.ipc " << stats.ipc() << "\n";
    std::cout << "run.tlb_miss_rate " << stats.tlbMissRate() << "\n";
    std::cout << "run.l1_miss_rate " << stats.l1MissRate() << "\n";
    gpu.stats().dump(std::cout);
    return 0;
}
