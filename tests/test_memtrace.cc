/**
 * @file
 * Memory-trace capture/replay tests.
 *
 * The load-bearing guarantee is the differential: a trace captured
 * from a run replays *bit-identically* — same RunStats, same JSON
 * stat dump — when driven back through the same design point, for
 * both the per-core MMU stack and the IOMMU. The second guarantee is
 * that capture is observation-only: an armed run's stat dump is
 * byte-identical to an unarmed one's. The rest pins the loader's
 * malformed-input rejections: every corruption is a clear one-line
 * error, never UB.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "gpu/kernel.hh"
#include "gpu/simt_stack.hh"
#include "trace/memtrace.hh"
#include "workloads/replay.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
shrink(SystemConfig cfg)
{
    cfg.numCores = 4;
    return cfg;
}

/** Temp path that cleans up after itself. */
class TempFile
{
  public:
    explicit TempFile(const std::string &name)
        : path_(::testing::TempDir() + name)
    {
    }
    ~TempFile() { std::remove(path_.c_str()); }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

/** Capture (bench, cfg), then replay the trace under the same
 *  config and require bit-identical results. */
void
expectReplayIdentical(BenchmarkId bench, const SystemConfig &cfg,
                      const std::string &tag)
{
    TempFile trace(tag + ".memtrace");
    MemTraceWriter writer(trace.path());
    const RunOutput source = runConfigFull(
        bench, cfg, tinyParams(), nullptr, nullptr, &writer);
    ASSERT_TRUE(writer.ok()) << writer.error();
    ASSERT_GT(writer.accessesRecorded(), 0u);

    auto replay = TraceReplayWorkload::fromFile(trace.path());
    EXPECT_EQ(replay->meta().bench, benchmarkName(bench));
    EXPECT_EQ(replay->meta().config, cfg.name);
    const RunOutput replayed = runWorkloadFull(*replay, cfg);

    EXPECT_TRUE(source.stats == replayed.stats);
    EXPECT_EQ(source.statsJson, replayed.statsJson);
}

/** A minimal syntactically valid trace the negative tests mutate. */
const char *kTinyTrace =
    "gpummu-memtrace 1\n"
    "meta bench=t config=c cores=1 seed=1 scale=1 tpb=32 blocks=1 "
    "large=0\n"
    "region r 4096\n"
    "prog 2 1 1\n"
    "i 0 ld 0\n"
    "i 0 br 0 1 1 1\n"
    "i 1 exit\n"
    "A 5 0 0 0 L 1 1000\n"
    "B 0 0 0 1 1\n"
    "end accesses=1 branches=1 cycles=10\n";

/** Load @p text and require failure with @p needle in the error. */
void
expectLoadFails(const std::string &text, const std::string &needle)
{
    std::istringstream in(text);
    MemTraceData data;
    std::string err;
    ASSERT_FALSE(loadMemTrace(in, data, err)) << text;
    EXPECT_NE(err.find(needle), std::string::npos)
        << "error was: " << err;
}

/** kTinyTrace with line @p lineNo (1-based) replaced by @p repl
 *  (empty = deleted). */
std::string
mutateLine(int line_no, const std::string &repl)
{
    std::istringstream in(kTinyTrace);
    std::ostringstream out;
    std::string line;
    int n = 0;
    while (std::getline(in, line)) {
        ++n;
        if (n == line_no) {
            if (!repl.empty())
                out << repl << "\n";
        } else {
            out << line << "\n";
        }
    }
    return out.str();
}

TEST(MemTraceDifferential, MemcachedAugmentedTlbReplaysBitIdentical)
{
    expectReplayIdentical(BenchmarkId::Memcached,
                          shrink(presets::augmentedTlb()),
                          "mc_augmented");
}

TEST(MemTraceDifferential, BfsIommuReplaysBitIdentical)
{
    expectReplayIdentical(BenchmarkId::Bfs, shrink(presets::iommu()),
                          "bfs_iommu");
}

TEST(MemTraceDifferential, HashprobeReplaysBitIdentical)
{
    expectReplayIdentical(BenchmarkId::Hashprobe,
                          shrink(presets::augmentedTlb()),
                          "hashprobe_augmented");
}

TEST(MemTrace, CaptureIsObservationOnly)
{
    const SystemConfig cfg = shrink(presets::augmentedTlb());
    const RunOutput unarmed =
        runConfigFull(BenchmarkId::Bfs, cfg, tinyParams());

    TempFile trace("observation_only.memtrace");
    MemTraceWriter writer(trace.path());
    const RunOutput armed = runConfigFull(
        BenchmarkId::Bfs, cfg, tinyParams(), nullptr, nullptr,
        &writer);
    ASSERT_TRUE(writer.ok()) << writer.error();

    // The writer registers no stats, so the armed dump is
    // byte-identical — this is what lets CI cmp captured and
    // replayed dumps directly.
    EXPECT_TRUE(unarmed.stats == armed.stats);
    EXPECT_EQ(unarmed.statsJson, armed.statsJson);
}

TEST(MemTrace, ReplayedTraceCanDriveOtherConfigs)
{
    // A trace is a portable workload: the recorded reference stream
    // must also drive design points it was not captured under.
    TempFile trace("portable.memtrace");
    MemTraceWriter writer(trace.path());
    const SystemConfig cfg = shrink(presets::augmentedTlb());
    runConfigFull(BenchmarkId::Memcached, cfg, tinyParams(), nullptr,
                  nullptr, &writer);
    ASSERT_TRUE(writer.ok()) << writer.error();

    auto replay = TraceReplayWorkload::fromFile(trace.path());
    const RunOutput under_iommu =
        runWorkloadFull(*replay, shrink(presets::iommu()));
    EXPECT_GT(under_iommu.stats.cycles, 0u);
    EXPECT_EQ(under_iommu.stats.memInstructions,
              writer.accessesRecorded());
}

TEST(MemTrace, WriterLoaderRoundTrip)
{
    TempFile trace("roundtrip.memtrace");
    MemTraceWriter writer(trace.path());
    writer.setConfigName("augmented-tlb");
    const SystemConfig cfg = shrink(presets::augmentedTlb());
    runConfigFull(BenchmarkId::Pathfinder, cfg, tinyParams(), nullptr,
                  nullptr, &writer);
    ASSERT_TRUE(writer.ok()) << writer.error();

    MemTraceData data;
    std::string err;
    ASSERT_TRUE(loadMemTraceFile(trace.path(), data, err)) << err;
    EXPECT_EQ(data.meta.bench, "pathfinder");
    EXPECT_EQ(data.meta.config, "augmented-tlb");
    EXPECT_EQ(data.meta.numCores, 4u);
    EXPECT_EQ(data.meta.seed, 42u);
    EXPECT_FALSE(data.meta.largePages);
    EXPECT_FALSE(data.regions.empty());
    EXPECT_EQ(data.accesses.size(), writer.accessesRecorded());
    EXPECT_EQ(data.branches.size(), writer.branchesRecorded());
    EXPECT_FALSE(data.blocks.empty());
    // Access cycles are nondecreasing and lane counts match masks.
    Cycle last = 0;
    for (const MemTraceAccess &a : data.accesses) {
        EXPECT_GE(a.cycle, last);
        last = a.cycle;
        EXPECT_EQ(a.addrs.size(),
                  static_cast<std::size_t>(popcount64(a.mask)));
    }
}

TEST(MemTrace, WriterFailsOnUnwritablePath)
{
    MemTraceWriter writer("/nonexistent-dir/x/y/z.memtrace");
    MemTraceMeta meta;
    meta.bench = "t";
    meta.numCores = 1;
    meta.threadsPerBlock = 32;
    meta.numBlocks = 1;
    KernelProgram prog("t");
    const int b = prog.addBlock();
    prog.appendExit(b);
    EXPECT_FALSE(writer.beginRun(meta, {}, prog));
    EXPECT_FALSE(writer.ok());
    EXPECT_NE(writer.error().find("cannot open"), std::string::npos);
}

TEST(MemTrace, LoaderAcceptsTheTinyTrace)
{
    std::istringstream in(kTinyTrace);
    MemTraceData data;
    std::string err;
    ASSERT_TRUE(loadMemTrace(in, data, err)) << err;
    EXPECT_EQ(data.blocks.size(), 2u);
    EXPECT_EQ(data.accesses.size(), 1u);
    EXPECT_EQ(data.branches.size(), 1u);
    EXPECT_EQ(data.cycles, 10u);
}

TEST(MemTraceNegative, BadMagic)
{
    expectLoadFails(mutateLine(1, "not-a-memtrace 1"),
                    "not a gpummu-memtrace file");
}

TEST(MemTraceNegative, UnsupportedVersion)
{
    expectLoadFails(mutateLine(1, "gpummu-memtrace 99"),
                    "unsupported memtrace version 99");
}

TEST(MemTraceNegative, EmptyInput)
{
    expectLoadFails("", "empty input");
}

TEST(MemTraceNegative, TruncatedNoEnd)
{
    expectLoadFails(mutateLine(10, ""), "truncated trace: no end");
}

TEST(MemTraceNegative, EndCountsMismatch)
{
    expectLoadFails(
        mutateLine(10, "end accesses=7 branches=1 cycles=10"),
        "end counts do not match");
}

TEST(MemTraceNegative, OutOfOrderCycles)
{
    // A second access at an earlier cycle than the first.
    std::string text = mutateLine(
        10, "A 3 0 0 0 L 1 2000\n"
            "end accesses=2 branches=1 cycles=10");
    expectLoadFails(text, "out-of-order access cycle");
}

TEST(MemTraceNegative, AddressCountMaskMismatch)
{
    // Mask says two lanes, record carries one address.
    expectLoadFails(mutateLine(8, "A 5 0 0 0 L 3 1000"),
                    "address count does not match the lane mask");
}

TEST(MemTraceNegative, TakenMaskNotSubset)
{
    expectLoadFails(mutateLine(9, "B 0 0 0 1 3"),
                    "taken mask is not a subset");
}

TEST(MemTraceNegative, MissingMeta)
{
    expectLoadFails(mutateLine(2, ""), "before meta");
}

TEST(MemTraceNegative, MetaMissingCores)
{
    expectLoadFails(
        mutateLine(2, "meta bench=t config=c seed=1 scale=1 tpb=32 "
                      "blocks=1 large=0"),
        "meta record missing bench/cores/tpb/blocks");
}

TEST(MemTraceNegative, MetaRejectsTrailingGarbageNumbers)
{
    expectLoadFails(
        mutateLine(2, "meta bench=t config=c cores=1 seed=1x scale=1 "
                      "tpb=32 blocks=1 large=0"),
        "bad seed");
}

TEST(MemTraceNegative, NonWarpMultipleTpb)
{
    expectLoadFails(
        mutateLine(2, "meta bench=t config=c cores=1 seed=1 scale=1 "
                      "tpb=33 blocks=1 large=0"),
        "bad tpb");
}

TEST(MemTraceNegative, InstructionGenOutOfRange)
{
    expectLoadFails(mutateLine(5, "i 0 ld 7"),
                    "bad load generator id");
}

TEST(MemTraceNegative, BranchTargetOutOfRange)
{
    expectLoadFails(mutateLine(6, "i 0 br 0 9 1 1"),
                    "branch target out of range");
}

TEST(MemTraceNegative, AccessBlockOutOfRange)
{
    expectLoadFails(mutateLine(8, "A 5 0 4 0 L 1 1000"),
                    "block id out of range");
}

TEST(MemTraceNegative, AccessWarpOutOfRange)
{
    expectLoadFails(mutateLine(8, "A 5 0 0 3 L 1 1000"),
                    "warp id out of range");
}

TEST(MemTraceNegative, BadRegionSize)
{
    expectLoadFails(mutateLine(3, "region r 0"), "bad region size");
}

TEST(MemTraceNegative, UnknownRecordType)
{
    expectLoadFails(mutateLine(8, "Z what is this"),
                    "unknown record type");
}

TEST(MemTraceNegative, TrailingDataAfterEnd)
{
    expectLoadFails(std::string(kTinyTrace) + "A 11 0 0 0 L 1 1000\n",
                    "trailing data after end record");
}

TEST(MemTraceNegative, UnreadableFileIsAnError)
{
    MemTraceData data;
    std::string err;
    EXPECT_FALSE(loadMemTraceFile("/nonexistent.memtrace", data, err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
}

} // namespace
