/**
 * @file
 * Unit tests for the functional reference translator, including a
 * differential sweep against PageTable's own walk/translate over
 * address spaces built the way workloads build them.
 */

#include <gtest/gtest.h>

#include "check/ref_translator.hh"
#include "vm/address_space.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

using namespace gpummu;

namespace {

Vpn
vpnOf(unsigned pml4, unsigned pdp, unsigned pd, unsigned pt)
{
    return (static_cast<Vpn>(pml4) << 27) |
           (static_cast<Vpn>(pdp) << 18) |
           (static_cast<Vpn>(pd) << 9) | pt;
}

} // namespace

TEST(RefTranslator, Walks4KMapping)
{
    PhysicalMemory phys(1 << 18, false);
    PageTable pt(phys);
    const Vpn vpn = vpnOf(0xb9, 0x0c, 0xac, 0x03);
    pt.map4K(vpn, 77);

    RefTranslator ref(pt);
    auto w = ref.walk(vpn);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->levels, kWalkLevels4K);
    EXPECT_EQ(w->result.ppn, 77u);
    EXPECT_FALSE(w->result.isLarge);

    // The independent walk must touch the exact entry addresses the
    // timing model's walk trace reports.
    const WalkPath path = pt.walk(vpn);
    ASSERT_EQ(path.levels, w->levels);
    for (unsigned l = 0; l < w->levels; ++l)
        EXPECT_EQ(w->entryAddrs[l], path.entryAddrs[l]) << "level " << l;
}

TEST(RefTranslator, Walks2MMappingInThreeLevels)
{
    PhysicalMemory phys(1 << 18, false);
    PageTable pt(phys);
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    pt.map2M(5, 4 * per_large);

    RefTranslator ref(pt);
    // Probe a VPN in the middle of the 2MB region: the reference must
    // add the in-region offset exactly like the radix hardware does.
    const Vpn vpn = (5ULL << 9) + 37;
    auto w = ref.walk(vpn);
    ASSERT_TRUE(w.has_value());
    EXPECT_EQ(w->levels, kWalkLevels2M);
    EXPECT_TRUE(w->result.isLarge);
    EXPECT_EQ(w->result.ppn, 4 * per_large + 37);

    const WalkPath path = pt.walk(vpn);
    ASSERT_EQ(path.levels, w->levels);
    for (unsigned l = 0; l < w->levels; ++l)
        EXPECT_EQ(w->entryAddrs[l], path.entryAddrs[l]) << "level " << l;
}

TEST(RefTranslator, UnmappedReturnsNulloptNotPanic)
{
    PhysicalMemory phys(1 << 18, false);
    PageTable pt(phys);
    pt.map4K(vpnOf(1, 2, 3, 4), 9);
    RefTranslator ref(pt);

    // Fully unmapped subtree (missing PML4 entry).
    EXPECT_FALSE(ref.walk(vpnOf(2, 0, 0, 0)).has_value());
    // Sibling of a mapped page inside the same PT page.
    EXPECT_FALSE(ref.walk(vpnOf(1, 2, 3, 5)).has_value());
    // Edge VPNs of the 36-bit space.
    EXPECT_FALSE(ref.walk(0).has_value());
    EXPECT_FALSE(ref.walk((1ULL << 36) - 1).has_value());
    // PageTable::walk panics on the same probe; the reference must
    // stay usable for fuzzing unmapped inputs instead.
    EXPECT_FALSE(ref.translate(vpnOf(2, 0, 0, 0)).has_value());
}

TEST(RefTranslator, FrameBaseAtBothGranularities)
{
    PhysicalMemory phys(1 << 18, false);
    PageTable pt(phys);
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    pt.map4K(vpnOf(0, 0, 1, 7), 123);
    pt.map2M(9, 6 * per_large);

    RefTranslator ref(pt);
    auto f4 = ref.frameBase(vpnOf(0, 0, 1, 7), kPageShift4K);
    ASSERT_TRUE(f4.has_value());
    EXPECT_EQ(*f4, 123u);

    // 2MB tag granularity: the frame base is in 2MB units, the way
    // an Mmu over a large-page address space stores it.
    auto f2 = ref.frameBase(9, kPageShift2M);
    ASSERT_TRUE(f2.has_value());
    EXPECT_EQ(*f2, 6u);

    EXPECT_FALSE(ref.frameBase(vpnOf(3, 0, 0, 0), kPageShift4K));
    EXPECT_FALSE(ref.frameBase(100, kPageShift2M));
}

TEST(RefTranslator, FrameBaseRejects2MTagOver4KMapping)
{
    PhysicalMemory phys(1 << 18, false);
    PageTable pt(phys);
    // 2MB tag 0 covers 4KB VPNs [0, 512); map its first VPN small.
    pt.map4K(0, 50);
    RefTranslator ref(pt);
    EXPECT_DEATH(ref.frameBase(0, kPageShift2M), "4KB mapping");
}

TEST(RefTranslator, DifferentialSweepOverAddressSpace)
{
    // Build a space the way workloads do and check every mapped page
    // (plus the guard pages between regions) against PageTable's own
    // functional translation.
    for (bool large : {false, true}) {
        PhysicalMemory phys(1 << 20, /*scramble=*/true);
        AddressSpace as(phys, large);
        as.mmap("a", 3 * kPageSize4K + 100);
        as.mmap("b", kPageSize2M + kPageSize4K);
        as.mmap("c", 17);

        RefTranslator ref(as.pageTable());
        std::uint64_t checked = 0;
        for (const VmRegion &r : as.regions()) {
            const Vpn lo = r.base >> kPageShift4K;
            const Vpn hi = (r.end() - 1) >> kPageShift4K;
            for (Vpn vpn = lo; vpn <= hi; ++vpn) {
                auto expect = as.pageTable().translate(vpn);
                auto got = ref.translate(vpn);
                ASSERT_TRUE(expect.has_value());
                ASSERT_TRUE(got.has_value()) << "vpn " << vpn;
                EXPECT_EQ(got->ppn, expect->ppn) << "vpn " << vpn;
                EXPECT_EQ(got->isLarge, expect->isLarge);
                ++checked;
            }
            // Guard page directly after the region (4KB mode mmap
            // leaves one unmapped page; 2MB mode aligns up, so only
            // probe when the next page really is unmapped).
            const Vpn guard = hi + 1;
            if (!as.pageTable().translate(guard).has_value()) {
                EXPECT_FALSE(ref.translate(guard).has_value());
            }
        }
        EXPECT_GT(checked, large ? 3u : 500u);
    }
}
