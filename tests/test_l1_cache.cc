/**
 * @file
 * Unit tests for the per-core L1 data cache.
 */

#include <gtest/gtest.h>

#include "mem/l1_cache.hh"

using namespace gpummu;

namespace {

struct L1Fixture : public ::testing::Test
{
    L1Fixture() : mem(MemorySystemConfig{}), l1(L1CacheConfig{}, mem) {}

    MemorySystemConfig memCfg;
    MemorySystem mem;
    L1Cache l1;
};

} // namespace

TEST_F(L1Fixture, ColdMissThenHit)
{
    auto miss = l1.access(100, false, 0, 1);
    EXPECT_FALSE(miss.hit);
    EXPECT_GT(miss.readyAt, 0u);

    auto hit = l1.access(100, false, miss.readyAt, 1);
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.readyAt, miss.readyAt + 1); // hit latency
}

TEST_F(L1Fixture, MissLatencyIncludesSharedSystem)
{
    auto miss = l1.access(200, false, 0, 0);
    // At minimum: interconnect both ways + L2 latency.
    const MemorySystemConfig cfg;
    EXPECT_GE(miss.readyAt, 2 * cfg.icntLatency + cfg.l2HitLatency);
}

TEST_F(L1Fixture, MshrMergesConcurrentMisses)
{
    auto first = l1.access(300, false, 0, 0);
    auto second = l1.access(300, false, 1, 1);
    EXPECT_TRUE(second.mshrMerged);
    EXPECT_EQ(second.readyAt, first.readyAt);
    // Only one shared-system access happened.
    EXPECT_EQ(mem.l2Accesses(), 1u);
}

TEST_F(L1Fixture, WriteThroughInvalidatesLine)
{
    auto m = l1.access(400, false, 0, 0);
    auto h = l1.access(400, false, m.readyAt, 0);
    ASSERT_TRUE(h.hit);
    // Store to the same line invalidates the local copy.
    l1.access(400, true, m.readyAt + 10, 0);
    auto after = l1.access(400, false, m.readyAt + 2000, 0);
    EXPECT_FALSE(after.hit);
}

TEST_F(L1Fixture, StoresDoNotBlockRequester)
{
    auto st = l1.access(500, true, 0, 0);
    EXPECT_EQ(st.readyAt, 1u); // local hand-off only
}

TEST_F(L1Fixture, EvictionListenerReportsAllocatingWarp)
{
    PhysAddr evicted_line = 0;
    int evicted_warp = -1;
    l1.setEvictionListener([&](PhysAddr line, int warp) {
        evicted_line = line;
        evicted_warp = warp;
    });
    // Fill one set past its ways: lines mapping to the same set.
    const L1CacheConfig cfg;
    const std::size_t sets = cfg.bytes / kLineSize / cfg.ways;
    for (std::size_t i = 0; i <= cfg.ways; ++i) {
        l1.access(1000 + i * sets, false,
                  static_cast<Cycle>(i) * 2000, static_cast<int>(i));
    }
    EXPECT_EQ(evicted_line, 1000u);
    EXPECT_EQ(evicted_warp, 0);
}

TEST_F(L1Fixture, MshrFullReturnsRetryWithWakeTime)
{
    const L1CacheConfig cfg;
    // Fill the MSHR file with distinct outstanding lines at cycle 0.
    for (unsigned i = 0; i < cfg.numMshrs; ++i)
        l1.access(10000 + i, false, 0, 0);
    auto out = l1.access(99999, false, 0, 0);
    EXPECT_TRUE(out.needRetry);
    EXPECT_GT(out.readyAt, 0u);
    // Retrying at the indicated wake time must succeed.
    auto retry = l1.access(99999, false, out.readyAt, 0);
    EXPECT_FALSE(retry.needRetry);
}

TEST_F(L1Fixture, EarliestMshrFree)
{
    EXPECT_EQ(l1.earliestMshrFree(), kCycleNever);
    auto a = l1.access(1, false, 0, 0);
    auto b = l1.access(2, false, 5, 0);
    EXPECT_EQ(l1.earliestMshrFree(), std::min(a.readyAt, b.readyAt));
}

TEST_F(L1Fixture, FlushDropsLinesAndMshrs)
{
    auto m = l1.access(600, false, 0, 0);
    l1.flush();
    auto after = l1.access(600, false, m.readyAt + 10, 0);
    EXPECT_FALSE(after.hit);
}

TEST_F(L1Fixture, StatsCountHitsAndAccesses)
{
    auto m = l1.access(700, false, 0, 0);
    l1.access(700, false, m.readyAt, 0);
    l1.access(700, false, m.readyAt + 1, 0);
    EXPECT_EQ(l1.accesses(), 3u);
    EXPECT_EQ(l1.hits(), 2u);
    EXPECT_EQ(l1.misses(), 1u);
    EXPECT_EQ(l1.missLatency().count(), 1u);
}
