/**
 * @file
 * Tests for the event-tracing subsystem and stall attribution:
 *
 *  - TraceSink ring-buffer semantics (last-N retention, drop
 *    counting), category filtering and Chrome trace-event export;
 *  - a traced full-system bfs run producing parseable Chrome JSON
 *    that actually contains TLB, page-walk and DRAM events;
 *  - the per-warp stall ledger: unit arithmetic, and the system-level
 *    bound that every warp's attributed stall cycles never exceed the
 *    run's cycle count, across all six paper workloads.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/sweep.hh"
#include "gpu/gpu_top.hh"
#include "gpu/simt_core.hh"
#include "sched/warp_scheduler.hh"
#include "sim/event_queue.hh"
#include "trace/stall_accounting.hh"
#include "trace/trace.hh"

using namespace gpummu;

namespace {

/**
 * Minimal recursive-descent JSON validator: accepts exactly the
 * value grammar (objects, arrays, strings with escapes, numbers,
 * true/false/null) and rejects trailing garbage. Enough to prove the
 * exported trace is well-formed without a JSON library.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &s) : s_(s) {}

    bool
    valid()
    {
        pos_ = 0;
        if (!value())
            return false;
        ws();
        return pos_ == s_.size();
    }

  private:
    void
    ws()
    {
        while (pos_ < s_.size() &&
               (s_[pos_] == ' ' || s_[pos_] == '\t' ||
                s_[pos_] == '\n' || s_[pos_] == '\r'))
            ++pos_;
    }

    bool
    lit(const char *t)
    {
        const std::size_t n = std::string(t).size();
        if (s_.compare(pos_, n, t) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    string()
    {
        if (pos_ >= s_.size() || s_[pos_] != '"')
            return false;
        ++pos_;
        while (pos_ < s_.size() && s_[pos_] != '"') {
            if (s_[pos_] == '\\') {
                ++pos_;
                if (pos_ >= s_.size())
                    return false;
            }
            ++pos_;
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool
    number()
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && s_[pos_] == '-')
            ++pos_;
        while (pos_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
                s_[pos_] == '.' || s_[pos_] == 'e' ||
                s_[pos_] == 'E' || s_[pos_] == '+' ||
                s_[pos_] == '-'))
            ++pos_;
        return pos_ > start;
    }

    bool
    value()
    {
        ws();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            ws();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                ws();
                if (!string())
                    return false;
                ws();
                if (pos_ >= s_.size() || s_[pos_++] != ':')
                    return false;
                if (!value())
                    return false;
                ws();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return s_[pos_++] == '}';
            }
        }
        if (c == '[') {
            ++pos_;
            ws();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                if (!value())
                    return false;
                ws();
                if (pos_ >= s_.size())
                    return false;
                if (s_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                return s_[pos_++] == ']';
            }
        }
        if (c == '"')
            return string();
        if (c == 't')
            return lit("true");
        if (c == 'f')
            return lit("false");
        if (c == 'n')
            return lit("null");
        return number();
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
smallConfig()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 2;
    return cfg;
}

std::string
exportTrace(const TraceSink &sink)
{
    std::ostringstream os;
    sink.writeChromeTrace(os);
    return os.str();
}

} // namespace

TEST(TraceSink, RecordsInstantsSpansAndCounters)
{
    TraceSink sink(64);
    EventQueue eq;
    sink.bindClock(&eq);
    sink.instant(TraceCat::Tlb, "tlb_hit", 0, "vpn", 7);
    sink.span(TraceCat::Ptw, "page_walk", 0, 10, 25, "vpn", 7);
    sink.counter(TraceCat::Ptw, "walks_in_flight", 0, 3);
    EXPECT_EQ(sink.size(), 3u);
    EXPECT_EQ(sink.dropped(), 0u);

    const std::string json = exportTrace(sink);
    EXPECT_TRUE(JsonChecker(json).valid()) << json;
    EXPECT_NE(json.find("\"tlb_hit\""), std::string::npos);
    EXPECT_NE(json.find("\"page_walk\""), std::string::npos);
    EXPECT_NE(json.find("\"walks_in_flight\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

TEST(TraceSink, RingKeepsTheLastNEvents)
{
    TraceSink sink(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        sink.instantAt(TraceCat::Tlb, "ev", 0, /*ts=*/100 + i,
                       "idx", i);
    EXPECT_EQ(sink.size(), 4u);
    EXPECT_EQ(sink.dropped(), 6u);

    const std::string json = exportTrace(sink);
    EXPECT_TRUE(JsonChecker(json).valid());
    // Oldest events (idx 0..5) were overwritten; the survivors are
    // the last four, exported in chronological order.
    EXPECT_EQ(json.find("\"idx\":5"), std::string::npos);
    EXPECT_NE(json.find("\"idx\":6"), std::string::npos);
    EXPECT_NE(json.find("\"idx\":9"), std::string::npos);
    EXPECT_LT(json.find("\"idx\":6"), json.find("\"idx\":9"));
    EXPECT_NE(json.find("\"dropped_events\":6"), std::string::npos);
}

TEST(TraceSink, PrefixFilterMasksCategories)
{
    TraceSink sink(16);
    sink.setFilter("tlb");
    EXPECT_TRUE(sink.wants(TraceCat::Tlb));
    EXPECT_FALSE(sink.wants(TraceCat::Ptw));
    EXPECT_FALSE(sink.wants(TraceCat::Dram));
    sink.instantAt(TraceCat::Tlb, "tlb_hit", 0, 1);
    sink.instantAt(TraceCat::Dram, "dram_busy", 0, 1);
    EXPECT_EQ(sink.size(), 1u);

    // "l" matches both l1 and l2; empty restores everything.
    sink.setFilter("l");
    EXPECT_TRUE(sink.wants(TraceCat::L1));
    EXPECT_TRUE(sink.wants(TraceCat::L2));
    EXPECT_FALSE(sink.wants(TraceCat::Tlb));
    sink.setFilter("");
    for (std::size_t c = 0; c < kNumTraceCats; ++c)
        EXPECT_TRUE(sink.wants(static_cast<TraceCat>(c)));
}

TEST(TracedRun, BfsProducesParseableChromeTraceWithKeyEvents)
{
    TraceSink sink;
    const RunOutput out = runConfigFull(BenchmarkId::Bfs,
                                        smallConfig(), tinyParams(),
                                        &sink);
    ASSERT_GT(out.stats.cycles, 0u);
    ASSERT_GT(sink.size(), 0u);

    const std::string json = exportTrace(sink);
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    // The acceptance trio: TLB activity, the page-walk lifecycle and
    // DRAM service spans must all be present in a real run's trace.
    EXPECT_NE(json.find("\"tlb_"), std::string::npos);
    EXPECT_NE(json.find("\"page_walk\""), std::string::npos);
    EXPECT_NE(json.find("\"dram_busy\""), std::string::npos);
}

TEST(TracedRun, FilterRestrictsARunToOneComponent)
{
    TraceSink sink;
    sink.setFilter("ptw");
    runConfigFull(BenchmarkId::Bfs, smallConfig(), tinyParams(),
                  &sink);
    ASSERT_GT(sink.size(), 0u);
    const std::string json = exportTrace(sink);
    EXPECT_TRUE(JsonChecker(json).valid());
    EXPECT_NE(json.find("\"page_walk\""), std::string::npos);
    EXPECT_EQ(json.find("\"tlb_hit\""), std::string::npos);
    EXPECT_EQ(json.find("\"dram_busy\""), std::string::npos);
    EXPECT_EQ(json.find("\"l1_"), std::string::npos);
}

TEST(StallAccounting, LedgerArithmetic)
{
    WarpStallAccounting sa;
    sa.attribute(0, StallReason::TlbMiss);
    sa.attribute(0, StallReason::TlbMiss);
    sa.attribute(0, StallReason::Dram);
    sa.attribute(2, StallReason::L1Miss);
    sa.attribute(1, StallReason::None);   // ignored
    sa.attribute(-1, StallReason::Dram);  // ignored
    EXPECT_EQ(sa.numWarps(), 3u);
    EXPECT_EQ(sa.warpTotal(0), 3u);
    EXPECT_EQ(sa.warpTotal(1), 0u);
    EXPECT_EQ(sa.warpTotal(2), 1u);
    EXPECT_EQ(sa.reasonTotal(StallReason::TlbMiss), 2u);
    EXPECT_EQ(sa.reasonTotal(StallReason::Dram), 1u);
    EXPECT_EQ(sa.reasonTotal(StallReason::L1Miss), 1u);
    EXPECT_EQ(sa.reasonTotal(StallReason::Reconvergence), 0u);
}

TEST(StallAccounting, DominantStallPicksThePriorityWinner)
{
    EXPECT_EQ(dominantStall(StallReason::TlbMiss, StallReason::Dram),
              StallReason::TlbMiss);
    EXPECT_EQ(dominantStall(StallReason::L1Miss, StallReason::Dram),
              StallReason::Dram);
    EXPECT_EQ(dominantStall(StallReason::None,
                            StallReason::Interconnect),
              StallReason::Interconnect);
}

TEST(StallAccounting, FinalizeIsIdempotentAndRegistersHistograms)
{
    WarpStallAccounting sa;
    StatRegistry reg;
    sa.regStats(reg, "core0");
    sa.attribute(0, StallReason::TlbMiss);
    sa.attribute(1, StallReason::TlbMiss);
    sa.finalize();
    sa.finalize(); // second fold must not double the samples
    const Histogram *h = reg.findHistogram("core0.stalls.tlb_miss");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 2u);
    EXPECT_EQ(h->sum(), 2u);
    ASSERT_NE(reg.findHistogram("core0.stalls.dram"), nullptr);
    EXPECT_EQ(reg.findHistogram("core0.stalls.dram")->count(), 0u);
}

// The attribution contract: at most one reason per (warp, cycle), so
// no warp slot can accumulate more attributed stall cycles than the
// run has cycles. Checked for every paper workload.
TEST(StallAccounting, AttributedCyclesBoundedByRunCyclesAllWorkloads)
{
    const SystemConfig cfg = smallConfig();
    for (BenchmarkId id : allBenchmarks()) {
        auto workload = makeWorkload(id, tinyParams());
        GpuTop gpu(
            cfg.numCores, cfg.mem, *workload,
            [&cfg](int core_id, const LaunchParams &launch,
                   AddressSpace &as, MemorySystem &mem,
                   EventQueue &eq) -> std::unique_ptr<ShaderCore> {
                auto core = std::make_unique<SimtCore>(
                    core_id, cfg.core, launch, as, mem, eq);
                core->setScheduler(
                    std::make_unique<GreedyThenOldest>());
                return core;
            },
            cfg.largePages, cfg.physFrames);
        const RunStats stats = gpu.run(cfg.maxCycles);
        ASSERT_GT(stats.cycles, 0u) << benchmarkName(id);

        std::uint64_t attributed = 0;
        for (unsigned c = 0; c < gpu.numCores(); ++c) {
            const auto &sa = gpu.core(c).stallAccounting();
            for (std::size_t w = 0; w < sa.numWarps(); ++w) {
                EXPECT_LE(sa.warpTotal(static_cast<int>(w)),
                          stats.cycles)
                    << benchmarkName(id) << " core " << c << " warp "
                    << w;
                attributed += sa.warpTotal(static_cast<int>(w));
            }
        }
        // A memory-bound simulator run with a real TLB must attribute
        // *some* stall time; zero would mean the hooks fell off.
        EXPECT_GT(attributed, 0u) << benchmarkName(id);
    }
}
