/**
 * @file
 * Replay regression: the simulator's determinism contract is that a
 * run's results depend only on (seed, benchmark, config). Each of
 * the six paper workloads runs twice under the paper-default
 * augmented-MMU preset and must produce identical cycle counts, TLB
 * miss counts, page-walk stats and byte-identical JSON stat dumps.
 *
 * If this test starts failing, someone introduced wall-clock- or
 * address-ordering-dependent state (e.g. seeding from time, hashing
 * pointers, or iterating an unordered container into a stat). Fix
 * the nondeterminism; do not loosen the assertions.
 */

#include <gtest/gtest.h>

#include "core/multi_tenant.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "sim/arena.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
paperDefault()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 4; // shrunk for test speed; determinism is
                      // independent of machine size
    return cfg;
}

/**
 * Strip the "trace.*" counters an armed TraceSink registers (its own
 * health stats) so the rest of the dump can be compared byte-for-byte
 * against an unarmed run. Counter names sort the trace.* block last
 * among counters, so a simple per-entry erase suffices.
 */
std::string
withoutTraceStats(std::string json)
{
    for (std::string::size_type pos;
         (pos = json.find("\"trace.")) != std::string::npos;) {
        auto end = json.find_first_of(",}", json.find(':', pos));
        // Eat the preceding comma (trace.* never sorts first).
        json.erase(json[pos - 1] == ',' ? pos - 1 : pos, end - pos + 1);
    }
    return json;
}

} // namespace

TEST(Determinism, EveryWorkloadReplaysIdentically)
{
    const auto cfg = paperDefault();
    for (BenchmarkId id : allBenchmarks()) {
        const RunOutput a = runConfigFull(id, cfg, tinyParams());
        const RunOutput b = runConfigFull(id, cfg, tinyParams());

        EXPECT_EQ(a.stats.cycles, b.stats.cycles)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.tlbAccesses, b.stats.tlbAccesses)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.tlbHits, b.stats.tlbHits)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkRefsIssued, b.stats.walkRefsIssued)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkRefsEliminated,
                  b.stats.walkRefsEliminated)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkL2Accesses, b.stats.walkL2Accesses)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkL2Hits, b.stats.walkL2Hits)
            << benchmarkName(id);

        // And the full field-wise + stat-registry comparison.
        EXPECT_TRUE(a.stats == b.stats) << benchmarkName(id);
        EXPECT_EQ(a.statsJson, b.statsJson) << benchmarkName(id);
    }
}

TEST(Determinism, ReplayIsStableThroughTheParallelRunner)
{
    // A fresh serial Experiment and a fresh parallel one must agree
    // with direct runConfigFull for every workload.
    const auto cfg = paperDefault();
    std::vector<SweepPoint> grid;
    for (BenchmarkId id : allBenchmarks())
        grid.push_back(SweepPoint{id, cfg});

    Experiment exp(tinyParams());
    const auto results = SweepRunner(exp, 6).run(grid);
    ASSERT_EQ(results.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const RunOutput direct =
            runConfigFull(grid[i].bench, cfg, tinyParams());
        EXPECT_TRUE(results[i].stats == direct.stats)
            << benchmarkName(grid[i].bench);
        EXPECT_EQ(results[i].statsJson, direct.statsJson)
            << benchmarkName(grid[i].bench);
    }
}

TEST(Determinism, ArmedCheckerIsBitIdenticalAndVerifiesFills)
{
    // Arming the reference checker differentially verifies every TLB
    // fill, hit and walk of the run (a mismatch panics), and must not
    // perturb the simulation: identical stats, byte-identical JSON.
    const auto cfg = paperDefault();
    auto armed = cfg;
    armed.checkInvariants = true;
    for (BenchmarkId id : allBenchmarks()) {
        const RunOutput plain = runConfigFull(id, cfg, tinyParams());
        const RunOutput chk = runConfigFull(id, armed, tinyParams());
        EXPECT_TRUE(plain.stats == chk.stats) << benchmarkName(id);
        EXPECT_EQ(plain.statsJson, chk.statsJson)
            << benchmarkName(id);
    }
}

TEST(Determinism, ArmedCheckerCoversLargePagesAndIommu)
{
    // The 2MB-granularity and shared-IOMMU translation paths carry
    // their own tag/frame math; run each armed so the reference walk
    // cross-checks them too, again without perturbing results.
    auto large = presets::withLargePages(paperDefault());
    auto large_armed = large;
    large_armed.checkInvariants = true;
    const RunOutput lp =
        runConfigFull(BenchmarkId::Bfs, large, tinyParams());
    const RunOutput lpc =
        runConfigFull(BenchmarkId::Bfs, large_armed, tinyParams());
    EXPECT_TRUE(lp.stats == lpc.stats);
    EXPECT_EQ(lp.statsJson, lpc.statsJson);

    auto io = presets::iommu();
    io.numCores = 4;
    auto io_armed = io;
    io_armed.checkInvariants = true;
    const RunOutput i0 =
        runConfigFull(BenchmarkId::Bfs, io, tinyParams());
    const RunOutput i1 =
        runConfigFull(BenchmarkId::Bfs, io_armed, tinyParams());
    EXPECT_TRUE(i0.stats == i1.stats);
    EXPECT_EQ(i0.statsJson, i1.statsJson);
}

TEST(Determinism, ArmedTracingIsBitIdentical)
{
    // Event tracing is observation-only: a run with a TraceSink armed
    // must produce the same stats and byte-identical JSON as an
    // unarmed run, while actually recording events. Covers the SIMT
    // default, the TBC core and the shared-IOMMU path, whose hooks
    // live in different components.
    std::vector<SystemConfig> cfgs = {paperDefault()};
    cfgs.push_back(presets::tbc(paperDefault()));
    auto io = presets::iommu();
    io.numCores = 4;
    cfgs.push_back(io);
    for (const SystemConfig &cfg : cfgs) {
        const RunOutput plain =
            runConfigFull(BenchmarkId::Bfs, cfg, tinyParams());
        TraceSink sink;
        const RunOutput traced =
            runConfigFull(BenchmarkId::Bfs, cfg, tinyParams(), &sink);
        EXPECT_TRUE(plain.stats == traced.stats) << cfg.name;
        // The armed run's dump additionally carries the sink's own
        // health stats ("trace.dropped", "trace.events.*");
        // everything else must match byte for byte.
        EXPECT_NE(traced.statsJson.find("\"trace.dropped\":"),
                  std::string::npos)
            << cfg.name;
        EXPECT_EQ(plain.statsJson, withoutTraceStats(traced.statsJson))
            << cfg.name;
        EXPECT_GT(sink.size(), 0u) << cfg.name;
    }
}

TEST(Determinism, ParallelJobsAgreeWithSerialUnderArenaPooling)
{
    // The hot-path re-architecture (arena-backed descriptors plus
    // same-cycle event batching) must be invisible to the parallel
    // runner: a 6-worker sweep and a 1-worker sweep, with pooling on
    // and with the plain-heap fallback, all agree byte-for-byte.
    struct PoolingGuard
    {
        explicit PoolingGuard(bool pooled) { setArenaPooling(pooled); }
        ~PoolingGuard() { setArenaPooling(true); }
    };

    const auto cfg = paperDefault();
    std::vector<SweepPoint> grid;
    for (BenchmarkId id : allBenchmarks())
        grid.push_back(SweepPoint{id, cfg});

    std::vector<RunOutput> pooled_serial, pooled_par, heap_par;
    {
        PoolingGuard guard(true);
        Experiment serial_exp(tinyParams());
        pooled_serial = SweepRunner(serial_exp, 1).run(grid);
        Experiment par_exp(tinyParams());
        pooled_par = SweepRunner(par_exp, 6).run(grid);
    }
    {
        PoolingGuard guard(false);
        Experiment heap_exp(tinyParams());
        heap_par = SweepRunner(heap_exp, 6).run(grid);
    }

    ASSERT_EQ(pooled_serial.size(), grid.size());
    ASSERT_EQ(pooled_par.size(), grid.size());
    ASSERT_EQ(heap_par.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const std::string name = benchmarkName(grid[i].bench);
        EXPECT_TRUE(pooled_serial[i].stats == pooled_par[i].stats)
            << name << ": jobs=1 vs jobs=6 diverge with pooling on";
        EXPECT_EQ(pooled_serial[i].statsJson, pooled_par[i].statsJson)
            << name;
        EXPECT_TRUE(pooled_par[i].stats == heap_par[i].stats)
            << name << ": pooled vs heap fallback diverge";
        EXPECT_EQ(pooled_par[i].statsJson, heap_par[i].statsJson)
            << name;
    }
}

TEST(Determinism, ArmedObserversComposeWithArenasAndBatchedDispatch)
{
    // Telemetry and tracing both hook the re-architected hot path
    // (interval boundaries cap fast-forward windows; the trace sink
    // sees arena-backed descriptors). Each armed run must still be
    // bit-identical to the plain run on the modelled quantities.
    const auto cfg = paperDefault();
    const RunOutput plain =
        runConfigFull(BenchmarkId::Memcached, cfg, tinyParams());

    TelemetryConfig tcfg;
    tcfg.sampleInterval = 2000;
    Telemetry telemetry(tcfg);
    const RunOutput armed = runConfigFull(
        BenchmarkId::Memcached, cfg, tinyParams(), nullptr,
        &telemetry);
    EXPECT_TRUE(plain.stats == armed.stats)
        << "telemetry perturbed an arena-pooled batched run";
    EXPECT_EQ(plain.statsJson, armed.statsJson);

    TraceSink sink;
    const RunOutput traced = runConfigFull(
        BenchmarkId::Memcached, cfg, tinyParams(), &sink);
    EXPECT_TRUE(plain.stats == traced.stats)
        << "tracing perturbed an arena-pooled batched run";
    EXPECT_EQ(plain.statsJson, withoutTraceStats(traced.statsJson));
    EXPECT_GT(sink.size(), 0u);
}

namespace {

MultiTenantConfig
tinyMultiTenant()
{
    MultiTenantConfig cfg = defaultMultiTenant(/*scale=*/0.02);
    cfg.system.numCores = 2;
    cfg.params.seed = 42;
    cfg.blocksPerSlice = 2;
    return cfg;
}

} // namespace

TEST(Determinism, MultiTenantReplaysIdentically)
{
    // The multi-tenant runner adds OS-side state the single-process
    // paths never touch: demand-fault scheduling, shootdown ordering,
    // slice interleaving. All of it must replay exactly.
    const MultiTenantConfig cfg = tinyMultiTenant();
    const MultiTenantResult a = runMultiTenant(cfg);
    const MultiTenantResult b = runMultiTenant(cfg);

    EXPECT_EQ(a.totalCycles, b.totalCycles);
    EXPECT_EQ(a.slices, b.slices);
    EXPECT_EQ(a.faults, b.faults);
    EXPECT_EQ(a.shootdowns, b.shootdowns);
    EXPECT_EQ(a.shootdownEntries, b.shootdownEntries);
    EXPECT_EQ(a.eventsFired, b.eventsFired);
    EXPECT_EQ(a.statsJson, b.statsJson);
}

TEST(Determinism, MultiTenantArmedCheckerIsBitIdentical)
{
    // Arming the differential checker across every tenant's reference
    // walker must not perturb the run (per-ASID fills, MSHR poison
    // bookkeeping and fault retries are all observation-checked).
    const MultiTenantConfig plain_cfg = tinyMultiTenant();
    MultiTenantConfig armed_cfg = plain_cfg;
    armed_cfg.system.checkInvariants = true;

    const MultiTenantResult plain = runMultiTenant(plain_cfg);
    const MultiTenantResult armed = runMultiTenant(armed_cfg);
    EXPECT_EQ(plain.totalCycles, armed.totalCycles);
    EXPECT_EQ(plain.statsJson, armed.statsJson);
}

TEST(Determinism, MultiTenantArmedObserversAreBitIdentical)
{
    // Tracing and telemetry hook the persistent shared structures
    // (memory system, IOMMU) across slice teardown; both must stay
    // observation-only.
    const MultiTenantConfig cfg = tinyMultiTenant();
    const MultiTenantResult plain = runMultiTenant(cfg);

    TraceSink sink;
    const MultiTenantResult traced = runMultiTenant(cfg, &sink);
    EXPECT_EQ(plain.totalCycles, traced.totalCycles);
    EXPECT_EQ(plain.statsJson, withoutTraceStats(traced.statsJson));
    EXPECT_GT(sink.size(), 0u);

    TelemetryConfig tcfg;
    tcfg.sampleInterval = 2000;
    Telemetry telemetry(tcfg);
    const MultiTenantResult sampled =
        runMultiTenant(cfg, nullptr, &telemetry);
    EXPECT_EQ(plain.totalCycles, sampled.totalCycles);
    EXPECT_EQ(plain.statsJson, sampled.statsJson);
    EXPECT_GT(telemetry.sampler().intervals().size(), 0u);
}

TEST(Determinism, SeedIsTheOnlyFreeVariable)
{
    const auto cfg = paperDefault();
    auto p2 = tinyParams();
    p2.seed = 43;
    const RunOutput a =
        runConfigFull(BenchmarkId::Bfs, cfg, tinyParams());
    const RunOutput b = runConfigFull(BenchmarkId::Bfs, cfg, p2);
    EXPECT_NE(a.stats.cycles, b.stats.cycles);
    EXPECT_NE(a.statsJson, b.statsJson);
}
