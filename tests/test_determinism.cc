/**
 * @file
 * Replay regression: the simulator's determinism contract is that a
 * run's results depend only on (seed, benchmark, config). Each of
 * the six paper workloads runs twice under the paper-default
 * augmented-MMU preset and must produce identical cycle counts, TLB
 * miss counts, page-walk stats and byte-identical JSON stat dumps.
 *
 * If this test starts failing, someone introduced wall-clock- or
 * address-ordering-dependent state (e.g. seeding from time, hashing
 * pointers, or iterating an unordered container into a stat). Fix
 * the nondeterminism; do not loosen the assertions.
 */

#include <gtest/gtest.h>

#include "core/presets.hh"
#include "core/sweep.hh"
#include "trace/trace.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
paperDefault()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 4; // shrunk for test speed; determinism is
                      // independent of machine size
    return cfg;
}

/**
 * Strip the "trace.*" counters an armed TraceSink registers (its own
 * health stats) so the rest of the dump can be compared byte-for-byte
 * against an unarmed run. Counter names sort the trace.* block last
 * among counters, so a simple per-entry erase suffices.
 */
std::string
withoutTraceStats(std::string json)
{
    for (std::string::size_type pos;
         (pos = json.find("\"trace.")) != std::string::npos;) {
        auto end = json.find_first_of(",}", json.find(':', pos));
        // Eat the preceding comma (trace.* never sorts first).
        json.erase(json[pos - 1] == ',' ? pos - 1 : pos, end - pos + 1);
    }
    return json;
}

} // namespace

TEST(Determinism, EveryWorkloadReplaysIdentically)
{
    const auto cfg = paperDefault();
    for (BenchmarkId id : allBenchmarks()) {
        const RunOutput a = runConfigFull(id, cfg, tinyParams());
        const RunOutput b = runConfigFull(id, cfg, tinyParams());

        EXPECT_EQ(a.stats.cycles, b.stats.cycles)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.tlbAccesses, b.stats.tlbAccesses)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.tlbHits, b.stats.tlbHits)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkRefsIssued, b.stats.walkRefsIssued)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkRefsEliminated,
                  b.stats.walkRefsEliminated)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkL2Accesses, b.stats.walkL2Accesses)
            << benchmarkName(id);
        EXPECT_EQ(a.stats.walkL2Hits, b.stats.walkL2Hits)
            << benchmarkName(id);

        // And the full field-wise + stat-registry comparison.
        EXPECT_TRUE(a.stats == b.stats) << benchmarkName(id);
        EXPECT_EQ(a.statsJson, b.statsJson) << benchmarkName(id);
    }
}

TEST(Determinism, ReplayIsStableThroughTheParallelRunner)
{
    // A fresh serial Experiment and a fresh parallel one must agree
    // with direct runConfigFull for every workload.
    const auto cfg = paperDefault();
    std::vector<SweepPoint> grid;
    for (BenchmarkId id : allBenchmarks())
        grid.push_back(SweepPoint{id, cfg});

    Experiment exp(tinyParams());
    const auto results = SweepRunner(exp, 6).run(grid);
    ASSERT_EQ(results.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const RunOutput direct =
            runConfigFull(grid[i].bench, cfg, tinyParams());
        EXPECT_TRUE(results[i].stats == direct.stats)
            << benchmarkName(grid[i].bench);
        EXPECT_EQ(results[i].statsJson, direct.statsJson)
            << benchmarkName(grid[i].bench);
    }
}

TEST(Determinism, ArmedCheckerIsBitIdenticalAndVerifiesFills)
{
    // Arming the reference checker differentially verifies every TLB
    // fill, hit and walk of the run (a mismatch panics), and must not
    // perturb the simulation: identical stats, byte-identical JSON.
    const auto cfg = paperDefault();
    auto armed = cfg;
    armed.checkInvariants = true;
    for (BenchmarkId id : allBenchmarks()) {
        const RunOutput plain = runConfigFull(id, cfg, tinyParams());
        const RunOutput chk = runConfigFull(id, armed, tinyParams());
        EXPECT_TRUE(plain.stats == chk.stats) << benchmarkName(id);
        EXPECT_EQ(plain.statsJson, chk.statsJson)
            << benchmarkName(id);
    }
}

TEST(Determinism, ArmedCheckerCoversLargePagesAndIommu)
{
    // The 2MB-granularity and shared-IOMMU translation paths carry
    // their own tag/frame math; run each armed so the reference walk
    // cross-checks them too, again without perturbing results.
    auto large = presets::withLargePages(paperDefault());
    auto large_armed = large;
    large_armed.checkInvariants = true;
    const RunOutput lp =
        runConfigFull(BenchmarkId::Bfs, large, tinyParams());
    const RunOutput lpc =
        runConfigFull(BenchmarkId::Bfs, large_armed, tinyParams());
    EXPECT_TRUE(lp.stats == lpc.stats);
    EXPECT_EQ(lp.statsJson, lpc.statsJson);

    auto io = presets::iommu();
    io.numCores = 4;
    auto io_armed = io;
    io_armed.checkInvariants = true;
    const RunOutput i0 =
        runConfigFull(BenchmarkId::Bfs, io, tinyParams());
    const RunOutput i1 =
        runConfigFull(BenchmarkId::Bfs, io_armed, tinyParams());
    EXPECT_TRUE(i0.stats == i1.stats);
    EXPECT_EQ(i0.statsJson, i1.statsJson);
}

TEST(Determinism, ArmedTracingIsBitIdentical)
{
    // Event tracing is observation-only: a run with a TraceSink armed
    // must produce the same stats and byte-identical JSON as an
    // unarmed run, while actually recording events. Covers the SIMT
    // default, the TBC core and the shared-IOMMU path, whose hooks
    // live in different components.
    std::vector<SystemConfig> cfgs = {paperDefault()};
    cfgs.push_back(presets::tbc(paperDefault()));
    auto io = presets::iommu();
    io.numCores = 4;
    cfgs.push_back(io);
    for (const SystemConfig &cfg : cfgs) {
        const RunOutput plain =
            runConfigFull(BenchmarkId::Bfs, cfg, tinyParams());
        TraceSink sink;
        const RunOutput traced =
            runConfigFull(BenchmarkId::Bfs, cfg, tinyParams(), &sink);
        EXPECT_TRUE(plain.stats == traced.stats) << cfg.name;
        // The armed run's dump additionally carries the sink's own
        // health stats ("trace.dropped", "trace.events.*");
        // everything else must match byte for byte.
        EXPECT_NE(traced.statsJson.find("\"trace.dropped\":"),
                  std::string::npos)
            << cfg.name;
        EXPECT_EQ(plain.statsJson, withoutTraceStats(traced.statsJson))
            << cfg.name;
        EXPECT_GT(sink.size(), 0u) << cfg.name;
    }
}

TEST(Determinism, SeedIsTheOnlyFreeVariable)
{
    const auto cfg = paperDefault();
    auto p2 = tinyParams();
    p2.seed = 43;
    const RunOutput a =
        runConfigFull(BenchmarkId::Bfs, cfg, tinyParams());
    const RunOutput b = runConfigFull(BenchmarkId::Bfs, cfg, p2);
    EXPECT_NE(a.stats.cycles, b.stats.cycles);
    EXPECT_NE(a.statsJson, b.statsJson);
}
