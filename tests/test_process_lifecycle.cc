/**
 * @file
 * Differential process-lifecycle suite for the multi-process address
 * translation layer: ASID-composed keys, demand paging with
 * Mosaic-style 2MB coalescing/splintering, and munmap-driven TLB
 * shootdowns that must reach every translation-caching structure —
 * per-core L1 TLBs, the shared L2 TLB (including poisoning in-flight
 * translation MSHRs), the IOMMU TLB and the per-core walk caches —
 * while leaving every other process's entries untouched.
 *
 * The single most important contract pinned here is the identity at
 * ASID 0: key composition is a no-op for the legacy single-process
 * space, so every pre-existing golden stat dump stays byte-identical.
 */

#include <gtest/gtest.h>

#include "check/invariant_checker.hh"
#include "core/multi_tenant.hh"
#include "mmu/iommu.hh"
#include "mmu/l2_tlb.hh"
#include "mmu/ptw.hh"
#include "mmu/tlb.hh"
#include "sim/event_queue.hh"
#include "telemetry/telemetry.hh"
#include "vm/address_space.hh"
#include "vm/process.hh"

using namespace gpummu;

namespace {

constexpr std::uint64_t kChunk = kPageSize2M / kPageSize4K; // 512

/** Deterministic frames: no allocation scramble. */
PhysicalMemory
makePhys()
{
    return PhysicalMemory(1ULL << 20, /*scramble=*/false);
}

} // namespace

// ---------------------------------------------------------------------
// ASID key composition.
// ---------------------------------------------------------------------

TEST(AsidKeys, CompositionIsIdentityForAsidZero)
{
    // Single-process runs must produce bit-identical TLB/L2/checker
    // keys to the pre-ASID code: composing with ASID 0 is a no-op.
    const std::uint64_t locals[] = {0, 1, 0xfffff, (1ULL << 36) - 1,
                                    kAsidKeyMask};
    for (std::uint64_t v : locals) {
        EXPECT_EQ(asidKey(0, v), v);
        EXPECT_EQ(keyAsid(v), 0u);
        EXPECT_EQ(keyLocal(v), v);
    }
}

TEST(AsidKeys, RoundTripAndNoOverlap)
{
    const Asid asids[] = {1, 2, 7, 255};
    const std::uint64_t v = (1ULL << 36) - 1; // widest 4KB VPN
    for (Asid a : asids) {
        const std::uint64_t k = asidKey(a, v);
        EXPECT_EQ(keyAsid(k), a);
        EXPECT_EQ(keyLocal(k), v);
        // Distinct ASIDs can never alias, whatever the local half.
        EXPECT_NE(k, asidKey(a + 1, v));
        EXPECT_NE(k, v);
    }
}

// ---------------------------------------------------------------------
// Page-table mapping lifecycle.
// ---------------------------------------------------------------------

TEST(PageTableLifecycle, CoalesceSplinterRoundTrip)
{
    PhysicalMemory phys = makePhys();
    PageTable pt(phys);

    // 512 contiguous 4KB pages over one aligned frame chunk.
    const std::uint64_t vpn2m = 5;
    const Vpn lo = vpn2m * kChunk;
    const Ppn base = phys.allocLargeFrame();
    for (std::uint64_t i = 0; i < kChunk; ++i)
        pt.map4K(lo + i, base + i);
    const std::size_t pages_small = pt.tablePages();

    // Promote. The retired PT page goes to the freelist.
    ASSERT_TRUE(pt.coalesce2M(vpn2m));
    EXPECT_TRUE(pt.isLargeMapped(vpn2m));
    EXPECT_EQ(pt.tablePages(), pages_small - 1);
    for (std::uint64_t i = 0; i < kChunk; i += 37) {
        const auto t = pt.translate(lo + i);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->ppn, base + i);
        EXPECT_TRUE(t->isLarge);
    }
    // Re-promoting an already-large chunk is a refused no-op.
    EXPECT_FALSE(pt.coalesce2M(vpn2m));

    // Demote: identical translations, small flags, and the PT page
    // comes back off the freelist (no growth).
    pt.splinter2M(vpn2m);
    EXPECT_FALSE(pt.isLargeMapped(vpn2m));
    EXPECT_EQ(pt.tablePages(), pages_small);
    for (std::uint64_t i = 0; i < kChunk; i += 37) {
        const auto t = pt.translate(lo + i);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->ppn, base + i);
        EXPECT_FALSE(t->isLarge);
    }

    // A second full round trip exercises freelist reuse end to end.
    ASSERT_TRUE(pt.coalesce2M(vpn2m));
    EXPECT_EQ(pt.tablePages(), pages_small - 1);
    pt.splinter2M(vpn2m);
    EXPECT_EQ(pt.tablePages(), pages_small);

    // Tear down a page: the chunk can no longer coalesce.
    EXPECT_EQ(pt.unmap4K(lo + 3), base + 3);
    EXPECT_FALSE(pt.coalesce2M(vpn2m));
    EXPECT_FALSE(pt.translate(lo + 3).has_value());
    EXPECT_TRUE(pt.translate(lo + 4).has_value());
}

TEST(PageTableLifecycle, CoalesceRefusesNonContiguousFrames)
{
    PhysicalMemory phys = makePhys();
    PageTable pt(phys);
    const Vpn lo = 9 * kChunk;
    for (std::uint64_t i = 0; i < kChunk; ++i)
        pt.map4K(lo + i, phys.allocFrame());
    // Frames are sequential here but the chunk base is not 2MB-frame
    // aligned (the root table grabbed frame 0), so promotion refuses.
    EXPECT_FALSE(pt.coalesce2M(9));
    EXPECT_FALSE(pt.isLargeMapped(9));
}

// ---------------------------------------------------------------------
// Demand paging through the ProcessManager.
// ---------------------------------------------------------------------

TEST(DemandPaging, FaultInCoalescesFullChunksAndMunmapSplinters)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &p = pm.create("tenant", /*use_large=*/false,
                           /*lazy=*/true);
    const VmRegion r = p.as.mmap("data", 2 * kPageSize2M);
    ASSERT_EQ(r.base % kPageSize2M, 0u) << "first region 2MB-aligned";
    const Vpn lo = r.base >> kPageShift4K;
    const std::uint64_t vpn2m = lo / kChunk;

    // Reserved, not mapped: a touch faults, a re-touch no-ops.
    EXPECT_TRUE(p.as.isReserved(lo));
    EXPECT_FALSE(p.as.pageTable().translate(lo).has_value());

    // Populate the first chunk fully: the 512th fault promotes.
    for (std::uint64_t i = 0; i < kChunk; ++i) {
        EXPECT_EQ(pm.coalesces(), 0u);
        p.as.faultIn(lo + i);
    }
    EXPECT_EQ(pm.coalesces(), 1u);
    EXPECT_TRUE(p.as.pageTable().isLargeMapped(vpn2m));
    const auto t = p.as.pageTable().translate(lo + 100);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->isLarge);

    // Racing faults on an already-mapped page are no-ops.
    p.as.faultIn(lo + 100);
    EXPECT_EQ(pm.coalesces(), 1u);

    // Partially unmapping the chunk splinters it first; the surviving
    // pages keep their frames at 4KB granularity.
    const std::uint64_t removed =
        p.as.munmapRange(r.base, 4 * kPageSize4K);
    EXPECT_EQ(removed, 4u);
    EXPECT_EQ(pm.splinters(), 1u);
    EXPECT_FALSE(p.as.pageTable().isLargeMapped(vpn2m));
    EXPECT_FALSE(p.as.pageTable().translate(lo).has_value());
    const auto kept = p.as.pageTable().translate(lo + 100);
    ASSERT_TRUE(kept.has_value());
    EXPECT_EQ(kept->ppn, t->ppn);
    EXPECT_FALSE(kept->isLarge);
}

// ---------------------------------------------------------------------
// Cross-ASID isolation of the caching structures (the latent
// single-address-space assumptions PR 7 fixed).
// ---------------------------------------------------------------------

TEST(CrossAsid, L1TlbNeverAliasesProcesses)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &a = pm.create("a");
    Process &b = pm.create("b");
    const VmRegion ra = a.as.mmap("d", 8 * kPageSize4K);
    const VmRegion rb = b.as.mmap("d", 8 * kPageSize4K);
    ASSERT_EQ(ra.base, rb.base) << "overlapping VAs by construction";
    const Vpn v = ra.base >> kPageShift4K;
    const Translation ta = *a.as.pageTable().translate(v);
    const Translation tb = *b.as.pageTable().translate(v);
    ASSERT_NE(ta.ppn, tb.ppn);

    Tlb tlb((TlbConfig()));
    tlb.fill(asidKey(a.asid, v), ta);

    // Process b's identical local VPN is a miss, as is the raw
    // (legacy asid-0) key.
    EXPECT_TRUE(tlb.probe(asidKey(a.asid, v)));
    EXPECT_FALSE(tlb.probe(asidKey(b.asid, v)));
    EXPECT_FALSE(tlb.probe(v));

    tlb.fill(asidKey(b.asid, v), tb);
    const auto la = tlb.lookup(asidKey(a.asid, v), 0);
    const auto lb = tlb.lookup(asidKey(b.asid, v), 0);
    ASSERT_TRUE(la.hit);
    ASSERT_TRUE(lb.hit);
    EXPECT_EQ(la.ppn, ta.ppn);
    EXPECT_EQ(lb.ppn, tb.ppn);
}

TEST(CrossAsid, L2TlbNeverAliasesProcesses)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &a = pm.create("a");
    Process &b = pm.create("b");
    const VmRegion ra = a.as.mmap("d", 8 * kPageSize4K);
    b.as.mmap("d", 8 * kPageSize4K);
    const Vpn v = ra.base >> kPageShift4K;
    const Translation ta = *a.as.pageTable().translate(v);
    const Translation tb = *b.as.pageTable().translate(v);

    EventQueue eq;
    L2TlbConfig cfg;
    cfg.enabled = true;
    L2Tlb l2(cfg, a.as.pageTable(), eq, kPageShift4K);

    l2.fillBypass(asidKey(a.asid, v), ta, 0);
    EXPECT_TRUE(l2.probe(asidKey(a.asid, v)));
    EXPECT_FALSE(l2.probe(asidKey(b.asid, v)));
    EXPECT_FALSE(l2.probe(v));
    l2.fillBypass(asidKey(b.asid, v), tb, 0);
    EXPECT_TRUE(l2.probe(asidKey(b.asid, v)));
}

TEST(CrossAsid, CheckerVerifiesEachProcessAgainstItsOwnWalker)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &a = pm.create("a");
    Process &b = pm.create("b");
    const VmRegion ra = a.as.mmap("d", 4 * kPageSize4K);
    b.as.mmap("d", 4 * kPageSize4K);
    const Vpn v = ra.base >> kPageShift4K;

    InvariantChecker chk(a.as.pageTable(), a.asid);
    chk.addSpace(b.asid, b.as.pageTable());

    Tlb tlb((TlbConfig()));
    tlb.setChecker(&chk, kPageShift4K);

    // The same local VPN backs different frames in the two processes;
    // an ASID-blind checker would flag one of these fills as corrupt.
    tlb.fill(asidKey(a.asid, v), *a.as.pageTable().translate(v));
    tlb.fill(asidKey(b.asid, v), *b.as.pageTable().translate(v));
    EXPECT_EQ(chk.fillsChecked(), 2u);
    tlb.checkSweep();
    EXPECT_GE(chk.entriesSwept(), 2u);
}

TEST(CrossAsid, HeatProfilerAttributesWalksPerProcess)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &a = pm.create("a");
    Process &b = pm.create("b");
    const VmRegion ra = a.as.mmap("d", 4 * kPageSize4K);
    b.as.mmap("d", 4 * kPageSize4K);
    const Vpn v = ra.base >> kPageShift4K;

    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    PageWalkers w((PtwConfig()), a.as.pageTable(), mem, eq);
    HeatProfiler heat;
    w.setHeatProfiler(&heat, -1);

    unsigned done = 0;
    w.requestBatchFor(a.as.pageTable(), a.asid, {v}, 0,
                      [&](Vpn lv, Cycle) {
                          EXPECT_EQ(lv, v);
                          ++done;
                      });
    w.requestBatchFor(b.as.pageTable(), b.asid, {v}, 0,
                      [&](Vpn lv, Cycle) {
                          EXPECT_EQ(lv, v);
                          ++done;
                      });
    eq.runUntil(1'000'000);
    ASSERT_EQ(done, 2u);

    // One VPN per process, not one shared (aliased) VPN.
    EXPECT_EQ(heat.pages().count(asidKey(a.asid, v)), 1u);
    EXPECT_EQ(heat.pages().count(asidKey(b.asid, v)), 1u);
    EXPECT_EQ(heat.pages().count(v), 0u);
}

// ---------------------------------------------------------------------
// Shootdowns: every level, only the dying ASID, costed.
// ---------------------------------------------------------------------

namespace {

/** Two eager processes with overlapping VAs plus direct-driven
 *  translation caches registered as shootdown targets. */
struct ShootdownRig
{
    PhysicalMemory phys{1ULL << 20, /*scramble=*/false};
    OsConfig os;
    ProcessManager pm{phys, os};
    Process &a;
    Process &b;
    VmRegion ra, rb;
    EventQueue eq;
    Tlb l1a{TlbConfig()}, l1b{TlbConfig()};
    L2Tlb l2;

    ShootdownRig()
        : a(pm.create("a")), b(pm.create("b")),
          ra(a.as.mmap("d", 8 * kPageSize4K)),
          rb(b.as.mmap("d", 8 * kPageSize4K)),
          l2(L2TlbConfig{.enabled = true}, a.as.pageTable(), eq,
             kPageShift4K)
    {
        pm.addTlbTarget(&l1a, kPageShift4K);
        pm.addTlbTarget(&l1b, kPageShift4K);
        pm.setL2Target(&l2);
        // Warm every level with both processes' overlapping pages.
        for (const Process *p : {&a, &b}) {
            const VmRegion &r = p == &a ? ra : rb;
            for (Vpn v = r.base >> kPageShift4K;
                 v < r.end() >> kPageShift4K; ++v) {
                const Translation t = *p->as.pageTable().translate(v);
                const std::uint64_t key = asidKey(p->asid, v);
                l1a.fill(key, t);
                l1b.fill(key, t);
                l2.fillBypass(key, t, 0);
            }
        }
    }

    bool
    resident(const Process &p, Vpn v) const
    {
        const std::uint64_t key = asidKey(p.asid, v);
        return l1a.probe(key) || l1b.probe(key) || l2.probe(key);
    }
};

} // namespace

TEST(Shootdown, MunmapInvalidatesOnlyTheDyingAsidAtEveryLevel)
{
    ShootdownRig rig;
    const Vpn alo = rig.ra.base >> kPageShift4K;
    const Vpn blo = rig.rb.base >> kPageShift4K;
    ASSERT_EQ(alo, blo) << "the overlap the ASID tags exist for";

    const Cycle start = 1000;
    const Cycle done = rig.pm.munmap(rig.a.asid, rig.ra, start);

    // Process a: gone from the two L1s and the shared L2.
    for (Vpn v = alo; v < alo + 8; ++v) {
        EXPECT_FALSE(rig.resident(rig.a, v)) << "vpn " << v;
        EXPECT_FALSE(rig.a.as.pageTable().translate(v).has_value());
    }
    // Process b: every entry survives its neighbour's unmap.
    for (Vpn v = blo; v < blo + 8; ++v) {
        EXPECT_TRUE(rig.l1a.probe(asidKey(rig.b.asid, v)));
        EXPECT_TRUE(rig.l1b.probe(asidKey(rig.b.asid, v)));
        EXPECT_TRUE(rig.l2.probe(asidKey(rig.b.asid, v)));
        EXPECT_TRUE(rig.b.as.pageTable().translate(v).has_value());
    }

    // Cost shape: base + per-entry * (8 pages x 3 structures), and
    // the stats agree with the return value.
    const std::uint64_t entries = 8 * 3;
    EXPECT_EQ(rig.pm.shootdowns(), 1u);
    EXPECT_EQ(rig.pm.shootdownEntries(), entries);
    EXPECT_EQ(done, start + rig.os.shootdownBase +
                        rig.os.shootdownPerEntry * entries);
}

TEST(Shootdown, DestroyDrainsEveryRegionAndRepeatsAreCheap)
{
    ShootdownRig rig;
    rig.a.as.mmap("e", 4 * kPageSize4K); // a second region to drain
    const Cycle done = rig.pm.destroy(rig.a.asid, 0);
    EXPECT_EQ(rig.a.as.regions().size(), 0u);
    EXPECT_EQ(rig.pm.shootdowns(), 2u); // one per region
    EXPECT_GT(done, 0u);
    // Everything of a is gone; b is intact.
    const Vpn blo = rig.rb.base >> kPageShift4K;
    EXPECT_FALSE(rig.resident(rig.a, blo));
    EXPECT_TRUE(rig.resident(rig.b, blo));
}

TEST(Shootdown, WalkCachesDropOnlyTheDyingProcessesLines)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &a = pm.create("a");
    Process &b = pm.create("b");
    const VmRegion ra = a.as.mmap("d", 8 * kPageSize4K);
    const VmRegion rb = b.as.mmap("d", 8 * kPageSize4K);

    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    // Fully associative walk cache: paging-structure lines of small
    // tables concentrate in few sets (line id = frame*32 + entry/16),
    // and this test needs residency to be capacity-limited, not
    // conflict-limited, so both processes' lines survive warming.
    PtwConfig pcfg;
    pcfg.pwcLines = 32;
    pcfg.pwcWays = 0;
    PageWalkers w(pcfg, a.as.pageTable(), mem, eq);

    // Warm the walk cache with both processes' paging-structure lines.
    std::vector<Vpn> va, vb;
    for (Vpn v = ra.base >> kPageShift4K; v < ra.end() >> kPageShift4K;
         ++v)
        va.push_back(v);
    for (Vpn v = rb.base >> kPageShift4K; v < rb.end() >> kPageShift4K;
         ++v)
        vb.push_back(v);
    unsigned done = 0;
    auto count = [&](Vpn, Cycle) { ++done; };
    w.requestBatchFor(a.as.pageTable(), a.asid, va, 0, count);
    w.requestBatchFor(b.as.pageTable(), b.asid, vb, 0, count);
    eq.runUntil(10'000'000);
    ASSERT_EQ(done, va.size() + vb.size());

    // a's lines go; a second pass finds nothing; b's remain.
    EXPECT_GT(w.invalidatePagingLines(a.as.pageTable()), 0u);
    EXPECT_EQ(w.invalidatePagingLines(a.as.pageTable()), 0u);
    EXPECT_GT(w.invalidatePagingLines(b.as.pageTable()), 0u);
}

TEST(Shootdown, PoisonsInFlightL2MshrsWakeWithoutInstall)
{
    PhysicalMemory phys = makePhys();
    AddressSpace as(phys);
    const VmRegion r = as.mmap("d", 4 * kPageSize4K);
    const Vpn v = r.base >> kPageShift4K;

    EventQueue eq;
    L2TlbConfig cfg;
    cfg.enabled = true;
    cfg.checkInvariants = true;
    L2Tlb l2(cfg, as.pageTable(), eq, kPageShift4K);

    // A miss allocates the MSHR; the walk is now "in flight".
    unsigned woken = 0;
    const auto res = l2.access(v, 0, [&](Vpn tag, std::uint64_t frame,
                                         bool large, Cycle) {
        EXPECT_EQ(tag, v);
        EXPECT_EQ(frame, as.pageTable().translate(v)->ppn);
        EXPECT_FALSE(large);
        ++woken;
    });
    ASSERT_EQ(res.outcome, L2Tlb::Outcome::NeedWalk);
    ASSERT_TRUE(l2.mshrActive(v));

    // Shootdown mid-walk: nothing resident to drop, but the MSHR is
    // poisoned — its eventual fill must wake the waiter (the
    // translation was valid when the walk issued) yet not install.
    const Translation t = *as.pageTable().translate(v);
    EXPECT_EQ(l2.invalidateMatching(
                  [v](std::uint64_t tag) { return tag == v; }),
              0u);
    EXPECT_EQ(l2.poisonedMshrs(), 1u);
    ASSERT_TRUE(l2.mshrActive(v));

    l2.fill(v, t, 50);
    eq.runUntil(100);
    EXPECT_EQ(woken, 1u);
    EXPECT_FALSE(l2.probe(v)) << "poisoned fill must not install";
    EXPECT_EQ(l2.poisonedMshrs(), 0u);
    EXPECT_FALSE(l2.mshrActive(v));
    l2.checkEndOfKernel();
}

// ---------------------------------------------------------------------
// IOMMU demand-fault service and retry.
// ---------------------------------------------------------------------

TEST(IommuFaults, MinorFaultServicesThenRetriesAndLaterHits)
{
    PhysicalMemory phys = makePhys();
    OsConfig os;
    ProcessManager pm(phys, os);
    Process &p = pm.create("tenant", false, /*lazy=*/true);
    const VmRegion r = p.as.mmap("d", 8 * kPageSize4K);
    const Vpn v = r.base >> kPageShift4K;

    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    IommuConfig icfg;
    icfg.checkInvariants = true;
    Iommu iommu(icfg, p.as, mem, eq);
    iommu.attachProcesses(&pm);

    ASSERT_FALSE(p.as.pageTable().translate(v).has_value());

    // First touch: reserved-but-unmapped raises a minor fault. The
    // handler's latency elapses, the page lands, the walk retries.
    Cycle done_at = 0;
    std::uint64_t frame = 0;
    iommu.translate(asidKey(p.asid, v), 0,
                    [&](std::uint64_t f, Cycle c) {
                        frame = f;
                        done_at = c;
                    });
    eq.runUntil(1'000'000);
    ASSERT_GT(done_at, 0u);
    EXPECT_GE(done_at, os.faultLatency);
    EXPECT_EQ(pm.faults(), 1u);
    ASSERT_TRUE(p.as.pageTable().translate(v).has_value());
    EXPECT_EQ(frame, p.as.pageTable().translate(v)->ppn);

    // Second touch: resident in the IOMMU TLB, no second fault.
    Cycle hit_at = 0;
    iommu.translate(asidKey(p.asid, v), done_at + 10,
                    [&](std::uint64_t f, Cycle c) {
                        EXPECT_EQ(f, frame);
                        hit_at = c;
                    });
    EXPECT_GT(hit_at, 0u) << "TLB hits complete synchronously";
    EXPECT_LT(hit_at - (done_at + 10), os.faultLatency);
    EXPECT_EQ(pm.faults(), 1u);
    iommu.checkEndOfKernel();
}

TEST(IommuFaults, ConcurrentProcessesFaultIntoTheirOwnSpaces)
{
    PhysicalMemory phys = makePhys();
    ProcessManager pm(phys);
    Process &a = pm.create("a", false, /*lazy=*/true);
    Process &b = pm.create("b", false, /*lazy=*/true);
    const VmRegion ra = a.as.mmap("d", 4 * kPageSize4K);
    const VmRegion rb = b.as.mmap("d", 4 * kPageSize4K);
    ASSERT_EQ(ra.base, rb.base);
    const Vpn v = ra.base >> kPageShift4K;

    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    IommuConfig icfg;
    icfg.checkInvariants = true;
    Iommu iommu(icfg, a.as, mem, eq);
    iommu.attachProcesses(&pm);

    // Same local VPN, both processes, in flight together.
    std::uint64_t fa = 0, fb = 0;
    iommu.translate(asidKey(a.asid, v), 0,
                    [&](std::uint64_t f, Cycle) { fa = f; });
    iommu.translate(asidKey(b.asid, v), 0,
                    [&](std::uint64_t f, Cycle) { fb = f; });
    eq.runUntil(1'000'000);

    EXPECT_EQ(pm.faults(), 2u);
    EXPECT_EQ(fa, a.as.pageTable().translate(v)->ppn);
    EXPECT_EQ(fb, b.as.pageTable().translate(v)->ppn);
    EXPECT_NE(fa, fb) << "private frames despite the shared VPN";
    EXPECT_TRUE(iommu.tlb().probe(asidKey(a.asid, v)));
    EXPECT_TRUE(iommu.tlb().probe(asidKey(b.asid, v)));
    iommu.checkEndOfKernel();
}

// ---------------------------------------------------------------------
// Context-switch accounting.
// ---------------------------------------------------------------------

TEST(ContextSwitch, ChargedOnlyBetweenDifferentProcesses)
{
    PhysicalMemory phys = makePhys();
    OsConfig os;
    os.switchPenalty = 1234;
    ProcessManager pm(phys, os);
    Process &a = pm.create("a");
    Process &b = pm.create("b");

    EXPECT_EQ(pm.noteContextSwitch(a.asid, a.asid), 0u);
    EXPECT_EQ(pm.contextSwitches(), 0u);
    EXPECT_EQ(pm.noteContextSwitch(a.asid, b.asid), os.switchPenalty);
    EXPECT_EQ(pm.noteContextSwitch(b.asid, a.asid), os.switchPenalty);
    EXPECT_EQ(pm.contextSwitches(), 2u);
}

// ---------------------------------------------------------------------
// Full-stack acceptance: two overlapping tenants, armed checker.
// ---------------------------------------------------------------------

TEST(MultiTenantRun, OverlappingTenantsTimeShareCleanlyUnderTheChecker)
{
    MultiTenantConfig cfg = defaultMultiTenant(/*scale=*/0.02);
    cfg.system.numCores = 2;
    cfg.system.checkInvariants = true;
    cfg.params.seed = 42;
    cfg.blocksPerSlice = 2;

    const MultiTenantResult res = runMultiTenant(cfg);

    ASSERT_EQ(res.tenants.size(), 2u);
    EXPECT_EQ(res.tenants[0].asid, 1u);
    EXPECT_EQ(res.tenants[1].asid, 2u);
    for (const TenantResult &t : res.tenants) {
        EXPECT_GT(t.blocks, 0u) << t.name;
        EXPECT_GT(t.instructions, 0u) << t.name;
    }
    EXPECT_GT(res.slices, 2u) << "both tenants actually interleaved";
    EXPECT_GT(res.contextSwitches, 0u);
    EXPECT_GT(res.faults, 0u) << "demand paging happened";
    EXPECT_GT(res.shootdowns, 0u) << "process exit stormed the TLBs";
    EXPECT_GT(res.iommuLookups, 0u);
    EXPECT_GT(res.totalCycles, 0u);
}
