/**
 * @file
 * Unit tests for the shared memory system (interconnect + L2
 * partitions + DRAM channels + walk-priority arbitration).
 */

#include <gtest/gtest.h>

#include "mem/memory_system.hh"

using namespace gpummu;

TEST(MemorySystem, ColdLoadGoesToDram)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    auto out = mem.access(100, false, 0, AccessSource::Data);
    EXPECT_FALSE(out.hit);
    EXPECT_EQ(mem.dramAccesses(), 1u);
    EXPECT_GE(out.readyAt, cfg.icntLatency * 2 + cfg.l2HitLatency +
                               cfg.dramLatency);
}

TEST(MemorySystem, SecondAccessHitsL2)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    auto cold = mem.access(100, false, 0, AccessSource::Data);
    auto warm = mem.access(100, false, cold.readyAt,
                           AccessSource::Data);
    EXPECT_TRUE(warm.hit);
    EXPECT_EQ(mem.dramAccesses(), 1u);
    EXPECT_LT(warm.readyAt - cold.readyAt, cold.readyAt);
}

TEST(MemorySystem, L2HitLatencyIsIcntPlusL2)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    auto cold = mem.access(5, false, 0, AccessSource::Data);
    const Cycle t = cold.readyAt + 1000; // quiet system
    auto warm = mem.access(5, false, t, AccessSource::Data);
    EXPECT_EQ(warm.readyAt,
              t + 2 * cfg.icntLatency + cfg.l2HitLatency);
}

TEST(MemorySystem, QueueingDelaysBurst)
{
    MemorySystemConfig cfg;
    cfg.numPartitions = 1; // force all traffic to one slice
    MemorySystem mem(cfg);
    // A burst of distinct lines at the same cycle queues at the L2
    // and DRAM; completion times must be strictly increasing.
    Cycle prev = 0;
    for (int i = 0; i < 16; ++i) {
        auto out = mem.access(1000 + i, false, 0, AccessSource::Data);
        EXPECT_GT(out.readyAt, prev);
        prev = out.readyAt;
    }
}

TEST(MemorySystem, WalkTrafficCountedSeparately)
{
    MemorySystem mem(MemorySystemConfig{});
    mem.access(1, false, 0, AccessSource::Data);
    mem.access(2, false, 0, AccessSource::PageWalk);
    auto again = mem.access(2, false, 10000, AccessSource::PageWalk);
    EXPECT_TRUE(again.hit);
    EXPECT_EQ(mem.walkAccesses(), 2u);
    EXPECT_EQ(mem.walkL2Hits(), 1u);
}

TEST(MemorySystem, WalksJumpBoundedDemandQueue)
{
    MemorySystemConfig cfg;
    cfg.numPartitions = 1;
    MemorySystem mem(cfg);
    // Build a deep demand backlog.
    for (int i = 0; i < 200; ++i)
        mem.access(5000 + i, false, 0, AccessSource::Data);
    // A walk issued now must not see the whole demand backlog, but
    // must still pay the bounded cap.
    auto walk = mem.access(9000, false, 0, AccessSource::PageWalk);
    auto demand = mem.access(9001, false, 0, AccessSource::Data);
    EXPECT_LT(walk.readyAt, demand.readyAt);
}

TEST(MemorySystem, WalksQueueAgainstEachOther)
{
    MemorySystemConfig cfg;
    cfg.numPartitions = 1;
    MemorySystem mem(cfg);
    Cycle prev = 0;
    for (int i = 0; i < 8; ++i) {
        auto out =
            mem.access(7000 + i, false, 0, AccessSource::PageWalk);
        EXPECT_GT(out.readyAt, prev);
        prev = out.readyAt;
    }
}

TEST(MemorySystem, StoreMissAllocatesWithoutDram)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    auto st = mem.access(42, true, 0, AccessSource::Data);
    EXPECT_FALSE(st.hit);
    EXPECT_EQ(mem.dramAccesses(), 0u);
    // The line is now present for loads.
    auto ld = mem.access(42, false, st.readyAt, AccessSource::Data);
    EXPECT_TRUE(ld.hit);
}

TEST(MemorySystem, FlushL2DropsLines)
{
    MemorySystem mem(MemorySystemConfig{});
    auto cold = mem.access(10, false, 0, AccessSource::Data);
    mem.flushL2();
    auto after = mem.access(10, false, cold.readyAt + 10,
                            AccessSource::Data);
    EXPECT_FALSE(after.hit);
    EXPECT_EQ(mem.dramAccesses(), 2u);
}

TEST(MemorySystem, LinesSpreadAcrossPartitions)
{
    MemorySystemConfig cfg;
    MemorySystem mem(cfg);
    // Power-of-two strides must not all land in one partition: with
    // the address mix, a burst of strided lines should complete far
    // faster than a single-partition burst would.
    Cycle max_ready = 0;
    for (int i = 0; i < 64; ++i) {
        auto out = mem.access(static_cast<PhysAddr>(i) * 8, false, 0,
                              AccessSource::Data);
        max_ready = std::max(max_ready, out.readyAt);
    }
    MemorySystemConfig one;
    one.numPartitions = 1;
    MemorySystem mem1(one);
    Cycle max_ready1 = 0;
    for (int i = 0; i < 64; ++i) {
        auto out = mem1.access(static_cast<PhysAddr>(i) * 8, false, 0,
                               AccessSource::Data);
        max_ready1 = std::max(max_ready1, out.readyAt);
    }
    EXPECT_LT(max_ready, max_ready1);
}
