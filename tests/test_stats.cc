/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace gpummu;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, SetAddReset)
{
    ScalarStat s;
    s.set(2.5);
    s.add(1.5);
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Histogram, SummaryOnly)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h;
    h.sample(5, 4);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, ZeroCountSampleIgnored)
{
    Histogram h;
    h.sample(5, 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 3); // buckets [0,10) [10,20) [20,30) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(15);
    h.sample(25);
    h.sample(1000);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u); // overflow
}

// Bucket-edge pin: a value exactly at bucketWidth * num_buckets is
// the first value past the last regular bucket [.., width*n), so it
// must land in the overflow bucket, and width*n - 1 must not.
TEST(Histogram, ValueAtBucketLimitLandsInOverflow)
{
    Histogram h(10, 3); // regular range [0, 30), overflow at 30+
    h.sample(29);
    h.sample(30);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[2], 1u); // 29
    EXPECT_EQ(h.buckets()[3], 1u); // 30: first overflow value
}

TEST(Histogram, SummaryOnlyHasNoBuckets)
{
    Histogram h; // bucketWidth 0: summary-only
    h.sample(1'000'000);
    EXPECT_TRUE(h.buckets().empty());
    EXPECT_EQ(h.bucketWidth(), 0u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 1'000'000u);
}

TEST(Histogram, ResetKeepsBucketGeometry)
{
    Histogram h(10, 3);
    h.sample(5);
    h.sample(35);
    h.reset();
    ASSERT_EQ(h.buckets().size(), 4u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
    EXPECT_EQ(h.bucketWidth(), 10u);
    // The geometry survives: new samples bucket as before.
    h.sample(15);
    EXPECT_EQ(h.buckets()[1], 1u);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(10, 2);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
}

TEST(StatRegistry, FindAndDump)
{
    StatRegistry reg;
    Counter c;
    ScalarStat s;
    Histogram h;
    reg.addCounter("a.count", &c);
    reg.addScalar("a.rate", &s);
    reg.addHistogram("a.lat", &h);

    c.inc(3);
    s.set(1.5);
    h.sample(7);

    EXPECT_EQ(reg.findCounter("a.count"), &c);
    EXPECT_EQ(reg.findScalar("a.rate"), &s);
    EXPECT_EQ(reg.findHistogram("a.lat"), &h);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);

    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a.count 3"), std::string::npos);
    EXPECT_NE(out.find("a.rate 1.5"), std::string::npos);
    EXPECT_NE(out.find("a.lat.count 1"), std::string::npos);
}

TEST(StatRegistry, ResetAllZeroesEverything)
{
    StatRegistry reg;
    Counter c;
    Histogram h;
    reg.addCounter("x", &c);
    reg.addHistogram("y", &h);
    c.inc(9);
    h.sample(3);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(StatRegistryDeathTest, DuplicateNamePanics)
{
    StatRegistry reg;
    Counter a, b;
    reg.addCounter("dup", &a);
    EXPECT_DEATH(reg.addCounter("dup", &b), "duplicate");
}
