/**
 * @file
 * Unit tests for the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"

using namespace gpummu;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(4);
    EXPECT_EQ(c.value(), 5u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(ScalarStat, SetAddReset)
{
    ScalarStat s;
    s.set(2.5);
    s.add(1.5);
    EXPECT_DOUBLE_EQ(s.value(), 4.0);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Histogram, SummaryOnly)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.sample(10);
    h.sample(20);
    h.sample(30);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 60u);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, WeightedSamples)
{
    Histogram h;
    h.sample(5, 4);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 20u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, ZeroCountSampleIgnored)
{
    Histogram h;
    h.sample(5, 0);
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, BucketsAndOverflow)
{
    Histogram h(10, 3); // buckets [0,10) [10,20) [20,30) + overflow
    h.sample(0);
    h.sample(9);
    h.sample(15);
    h.sample(25);
    h.sample(1000);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[0], 2u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 1u);
    EXPECT_EQ(h.buckets()[3], 1u); // overflow
}

// Bucket-edge pin: a value exactly at bucketWidth * num_buckets is
// the first value past the last regular bucket [.., width*n), so it
// must land in the overflow bucket, and width*n - 1 must not.
TEST(Histogram, ValueAtBucketLimitLandsInOverflow)
{
    Histogram h(10, 3); // regular range [0, 30), overflow at 30+
    h.sample(29);
    h.sample(30);
    ASSERT_EQ(h.buckets().size(), 4u);
    EXPECT_EQ(h.buckets()[2], 1u); // 29
    EXPECT_EQ(h.buckets()[3], 1u); // 30: first overflow value
}

TEST(Histogram, SummaryOnlyHasNoBuckets)
{
    Histogram h; // bucketWidth 0: summary-only
    h.sample(1'000'000);
    EXPECT_TRUE(h.buckets().empty());
    EXPECT_EQ(h.bucketWidth(), 0u);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.max(), 1'000'000u);
}

TEST(Histogram, ResetKeepsBucketGeometry)
{
    Histogram h(10, 3);
    h.sample(5);
    h.sample(35);
    h.reset();
    ASSERT_EQ(h.buckets().size(), 4u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
    EXPECT_EQ(h.bucketWidth(), 10u);
    // The geometry survives: new samples bucket as before.
    h.sample(15);
    EXPECT_EQ(h.buckets()[1], 1u);
}

TEST(Histogram, ResetClearsEverything)
{
    Histogram h(10, 2);
    h.sample(5);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    for (auto b : h.buckets())
        EXPECT_EQ(b, 0u);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, PercentilesAreExactWithinOneLogBucket)
{
    // All samples of one value: every percentile is that value (the
    // log-bucket interpolation clamps to [min, max]).
    Histogram h;
    h.sample(100, 7);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);

    Histogram z;
    z.sample(0, 3);
    EXPECT_DOUBLE_EQ(z.percentile(0.95), 0.0);
}

TEST(Histogram, PercentilesSeparateWellSpreadSamples)
{
    // Summary-only histograms still answer percentile queries via
    // the always-on power-of-two distribution; resolution is one log
    // bucket, so ranks land in the right bucket's value range.
    Histogram h;
    for (int i = 0; i < 95; ++i)
        h.sample(4); // bit_width 3: bucket [4, 7]
    for (int i = 0; i < 5; ++i)
        h.sample(1000); // bit_width 10: bucket [512, 1023]
    const double p50 = h.percentile(0.50);
    EXPECT_GE(p50, 4.0);
    EXPECT_LE(p50, 7.0);
    const double p95 = h.percentile(0.95);
    EXPECT_GE(p95, 4.0);
    EXPECT_LE(p95, 7.0);
    const double p99 = h.percentile(0.99);
    EXPECT_GE(p99, 512.0);
    EXPECT_LE(p99, 1000.0); // clamped to max
    EXPECT_DOUBLE_EQ(h.percentile(1.0), h.percentile(0.999));
}

TEST(Histogram, PercentilesAreMonotoneInQ)
{
    Histogram h;
    for (std::uint64_t v = 1; v <= 1024; ++v)
        h.sample(v);
    double prev = 0.0;
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
        const double p = h.percentile(q);
        EXPECT_GE(p, prev) << q;
        EXPECT_GE(p, 1.0) << q;
        EXPECT_LE(p, 1024.0) << q;
        prev = p;
    }
    // The median of 1..1024 sits near 512 (within its log bucket).
    EXPECT_NEAR(h.percentile(0.5), 512.0, 256.0);
}

TEST(Histogram, PercentilesAppearInDumps)
{
    StatRegistry reg;
    Histogram h;
    reg.addHistogram("lat", &h);
    h.sample(8, 10);
    std::ostringstream text, json;
    reg.dump(text);
    reg.dumpJson(json);
    EXPECT_NE(text.str().find("lat.p50 8"), std::string::npos);
    EXPECT_NE(text.str().find("lat.p99 8"), std::string::npos);
    EXPECT_NE(json.str().find("\"p50\":8,\"p95\":8,\"p99\":8"),
              std::string::npos);
}

TEST(StatRegistry, FindAndDump)
{
    StatRegistry reg;
    Counter c;
    ScalarStat s;
    Histogram h;
    reg.addCounter("a.count", &c);
    reg.addScalar("a.rate", &s);
    reg.addHistogram("a.lat", &h);

    c.inc(3);
    s.set(1.5);
    h.sample(7);

    EXPECT_EQ(reg.findCounter("a.count"), &c);
    EXPECT_EQ(reg.findScalar("a.rate"), &s);
    EXPECT_EQ(reg.findHistogram("a.lat"), &h);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);

    std::ostringstream os;
    reg.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("a.count 3"), std::string::npos);
    EXPECT_NE(out.find("a.rate 1.5"), std::string::npos);
    EXPECT_NE(out.find("a.lat.count 1"), std::string::npos);
}

TEST(StatRegistry, ResetAllZeroesEverything)
{
    StatRegistry reg;
    Counter c;
    Histogram h;
    reg.addCounter("x", &c);
    reg.addHistogram("y", &h);
    c.inc(9);
    h.sample(3);
    reg.resetAll();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
}

TEST(StatRegistryDeathTest, DuplicateNamePanics)
{
    StatRegistry reg;
    Counter a, b;
    reg.addCounter("dup", &a);
    EXPECT_DEATH(reg.addCounter("dup", &b), "duplicate");
}
