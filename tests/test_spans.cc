/**
 * @file
 * Translation-lifecycle span tracing regression tests.
 *
 * Span tracking is observation-only; these tests pin the contract
 * from both sides. Arming it never changes simulated results:
 * bit-identical stat dumps on every registry workload and on the
 * IOMMU, TBC and multi-tenant paths, byte-stable exports at any
 * sweep job count. And what it records is complete: spans conserve
 * against the simulation's own counters (opens against L1 TLB
 * accesses, walk references against the walkers' refs_issued, merge
 * stages against the MSHR/merge counters), every span's queueing and
 * service cycles telescope to its end-to-end latency exactly, and
 * the top-K slowest-span selection is deterministic and ordered.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>

#include "core/experiment.hh"
#include "core/multi_tenant.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "telemetry/span.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
paperDefault()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 4;
    return cfg;
}

/** Sum every counter in a statsJson dump whose name ends with
 *  @p suffix (e.g. ".mmu.tlb.accesses" across cores). */
std::uint64_t
sumCountersEndingWith(const std::string &json,
                      const std::string &suffix)
{
    const std::string needle = suffix + "\":";
    std::uint64_t sum = 0;
    for (std::string::size_type pos = json.find(needle);
         pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
        sum += std::strtoull(json.c_str() + pos + needle.size(),
                             nullptr, 10);
    }
    return sum;
}

} // namespace

TEST(Spans, ArmedRunIsBitIdenticalOnEveryWorkload)
{
    // The acceptance bar for the whole subsystem: a span-armed run
    // must be indistinguishable from an unarmed one in every
    // simulated stat, on every registry workload...
    const auto cfg = paperDefault();
    for (BenchmarkId id : allBenchmarks()) {
        const RunOutput plain = runConfigFull(id, cfg, tinyParams());
        SpanTracker spans;
        const RunOutput armed =
            runConfigFull(id, cfg, tinyParams(), nullptr, nullptr,
                          nullptr, &spans);
        EXPECT_TRUE(plain.stats == armed.stats) << benchmarkName(id);
        EXPECT_EQ(plain.statsJson, armed.statsJson)
            << benchmarkName(id);
        // ...while actually recording something, and retiring every
        // span it opened (the run drains before finishing).
        EXPECT_FALSE(spans.empty()) << benchmarkName(id);
        EXPECT_EQ(spans.spansOpen(), 0u) << benchmarkName(id);
    }
}

TEST(Spans, ArmedIommuTbcAndMultiTenantAreBitIdentical)
{
    // The three non-default arming paths: the IOMMU's shared
    // translation machinery, the TBC core kind, and the multi-tenant
    // runner's per-slice transient cores.
    auto io = presets::iommu();
    io.numCores = 4;
    const RunOutput io_plain =
        runConfigFull(BenchmarkId::Bfs, io, tinyParams());
    SpanTracker io_spans;
    const RunOutput io_armed =
        runConfigFull(BenchmarkId::Bfs, io, tinyParams(), nullptr,
                      nullptr, nullptr, &io_spans);
    EXPECT_TRUE(io_plain.stats == io_armed.stats);
    EXPECT_EQ(io_plain.statsJson, io_armed.statsJson);
    EXPECT_FALSE(io_spans.empty());
    EXPECT_GT(io_spans.stageCount(SpanStage::IommuLookup), 0u);

    auto tbc = presets::tbc(paperDefault());
    const RunOutput tbc_plain =
        runConfigFull(BenchmarkId::Bfs, tbc, tinyParams());
    SpanTracker tbc_spans;
    const RunOutput tbc_armed =
        runConfigFull(BenchmarkId::Bfs, tbc, tinyParams(), nullptr,
                      nullptr, nullptr, &tbc_spans);
    EXPECT_TRUE(tbc_plain.stats == tbc_armed.stats);
    EXPECT_EQ(tbc_plain.statsJson, tbc_armed.statsJson);
    EXPECT_FALSE(tbc_spans.empty());

    MultiTenantConfig mt = defaultMultiTenant(/*scale=*/0.03);
    mt.params.seed = 42;
    const MultiTenantResult mt_plain = runMultiTenant(mt);
    SpanTracker mt_spans;
    const MultiTenantResult mt_armed =
        runMultiTenant(mt, nullptr, nullptr, &mt_spans);
    EXPECT_EQ(mt_plain.statsJson, mt_armed.statsJson);
    EXPECT_EQ(mt_plain.totalCycles, mt_armed.totalCycles);
    EXPECT_FALSE(mt_spans.empty());
    // Span keys carry the tenants' ASIDs, so the per-ASID breakdown
    // sees both processes.
    EXPECT_EQ(mt_spans.perAsid().size(), mt.tenants.size());
}

TEST(Spans, ConservationAgainstSimulationCounters)
{
    // Every translation request must open exactly one span (opens ==
    // the cores' L1 TLB accesses), every page-walk memory reference
    // must be attributed (walk refs == the walkers' refs_issued),
    // and every merge the MMUs count must land in a merge stage.
    const auto cfg = paperDefault();
    for (BenchmarkId id : allBenchmarks()) {
        SpanTracker spans;
        const RunOutput out =
            runConfigFull(id, cfg, tinyParams(), nullptr, nullptr,
                          nullptr, &spans);
        EXPECT_EQ(spans.spansOpened(),
                  sumCountersEndingWith(out.statsJson,
                                        ".mmu.tlb.accesses"))
            << benchmarkName(id);
        EXPECT_EQ(spans.walkRefsTotal(), out.stats.walkRefsIssued)
            << benchmarkName(id);
        EXPECT_EQ(spans.stageCount(SpanStage::MmuMerge),
                  sumCountersEndingWith(out.statsJson,
                                        ".mmu.merged_walks"))
            << benchmarkName(id);
        // Every span either hit in the L1 or went down the miss
        // path; the two partitions cover all opens.
        EXPECT_EQ(spans.stageCount(SpanStage::L1Hit) +
                      spans.stageCount(SpanStage::L1Miss),
                  spans.spansOpened())
            << benchmarkName(id);
    }
}

TEST(Spans, SharedL2AndIommuMergesConserve)
{
    // The shared-L2-TLB path: spans merged into an L2 translation
    // MSHR reconcile with the L2's own merge counter.
    const auto l2 = presets::withSharedL2Tlb(paperDefault());
    SpanTracker l2_spans;
    const RunOutput l2_out =
        runConfigFull(BenchmarkId::Bfs, l2, tinyParams(), nullptr,
                      nullptr, nullptr, &l2_spans);
    EXPECT_EQ(l2_spans.stageCount(SpanStage::L2Merge),
              sumCountersEndingWith(l2_out.statsJson,
                                    "l2tlb.mshr_merges"));
    EXPECT_GT(l2_spans.stageCount(SpanStage::L2Lookup), 0u);

    // The IOMMU path likewise, against the IOMMU's merge counter and
    // its walkers' reference counter.
    auto io = presets::iommu();
    io.numCores = 4;
    SpanTracker io_spans;
    const RunOutput io_out =
        runConfigFull(BenchmarkId::Bfs, io, tinyParams(), nullptr,
                      nullptr, nullptr, &io_spans);
    EXPECT_EQ(io_spans.stageCount(SpanStage::IommuMerge),
              sumCountersEndingWith(io_out.statsJson,
                                    "iommu.merged_walks"));
    EXPECT_EQ(io_spans.walkRefsTotal(),
              sumCountersEndingWith(io_out.statsJson,
                                    ".ptw.refs_issued"));
}

TEST(Spans, QueueingPlusServiceIsExactlyEndToEnd)
{
    // The arrival-interval accounting telescopes: per-span queueing
    // + service cycles equal the span's end-to-end latency with no
    // double-counted or lost cycles, per retained span and in the
    // aggregate histograms.
    SpanTracker spans;
    runConfigFull(BenchmarkId::Hashprobe, paperDefault(),
                  tinyParams(), nullptr, nullptr, nullptr, &spans);
    ASSERT_FALSE(spans.topSpans().empty());
    for (const SpanTracker::ClosedSpan &sp : spans.topSpans()) {
        EXPECT_EQ(sp.queueing + sp.service, sp.latency());
        ASSERT_FALSE(sp.timeline.empty());
        // Timelines are cycle-monotone and start at the open.
        EXPECT_EQ(sp.timeline.front().cycle, sp.open);
        Cycle prev = sp.open;
        for (const auto &ev : sp.timeline) {
            EXPECT_GE(ev.cycle, prev);
            prev = ev.cycle;
        }
        EXPECT_EQ(sp.timeline.back().cycle, sp.close);
    }
    EXPECT_EQ(spans.queueing().sum() + spans.service().sum(),
              spans.endToEnd().sum());
    EXPECT_EQ(spans.endToEnd().count(), spans.spansClosed());
}

TEST(Spans, ExportsAreByteStableAcrossSweepJobCounts)
{
    // Pipeline parity: nothing about a prior parallel sweep may leak
    // into a later armed run - the span CSV and JSON must match byte
    // for byte whether the grid was swept on 1 worker or 4.
    const auto cfg = paperDefault();
    auto pipeline = [&](unsigned jobs) {
        Experiment exp(tinyParams());
        std::vector<SweepPoint> grid = {
            SweepPoint{BenchmarkId::Bfs, cfg},
            SweepPoint{BenchmarkId::Kmeans, cfg},
        };
        SweepRunner(exp, jobs).run(grid);
        SpanTracker spans;
        runConfigFull(BenchmarkId::Bfs, cfg, tinyParams(), nullptr,
                      nullptr, nullptr, &spans);
        std::ostringstream csv, json, summary;
        spans.writeCsv(csv);
        spans.writeJson(json);
        spans.writeSummary(summary);
        return std::make_tuple(csv.str(), json.str(),
                               summary.str());
    };
    const auto [csv1, json1, sum1] = pipeline(1);
    const auto [csv4, json4, sum4] = pipeline(4);
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(json1, json4);
    EXPECT_EQ(sum1, sum4);

    // Sanity on the export shape: the documented section headers and
    // stage table columns are pinned.
    EXPECT_EQ(csv1.rfind("# stages\n"
                         "stage,class,count,cycles,mean,p50,p95,p99,"
                         "min,max\n",
                         0),
              0u);
    EXPECT_NE(csv1.find("\n# walk_refs\n"), std::string::npos);
    EXPECT_NE(csv1.find("\n# top_spans\n"), std::string::npos);
    EXPECT_EQ(json1.rfind("{\"meta\":{\"spans_opened\":", 0), 0u);
}

TEST(Spans, TopKSelectionIsDeterministicAndOrdered)
{
    // The retained slowest spans are totally ordered (latency
    // descending, then open cycle, then id - no unordered-map
    // iteration order leaks in) and identical across runs.
    auto run = [](std::size_t k) {
        auto spans = std::make_unique<SpanTracker>(k);
        runConfigFull(BenchmarkId::Bfs, paperDefault(), tinyParams(),
                      nullptr, nullptr, nullptr, spans.get());
        return spans;
    };
    const auto a = run(8);
    const auto b = run(8);
    ASSERT_EQ(a->topSpans().size(), 8u);
    ASSERT_EQ(b->topSpans().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i) {
        EXPECT_EQ(a->topSpans()[i].id, b->topSpans()[i].id);
        EXPECT_EQ(a->topSpans()[i].latency(),
                  b->topSpans()[i].latency());
    }
    for (std::size_t i = 1; i < 8; ++i) {
        const auto &hi = a->topSpans()[i - 1];
        const auto &lo = a->topSpans()[i];
        const bool ordered =
            hi.latency() > lo.latency() ||
            (hi.latency() == lo.latency() &&
             (hi.open < lo.open ||
              (hi.open == lo.open && hi.id < lo.id)));
        EXPECT_TRUE(ordered) << "rank " << i;
    }
    // A larger retention window keeps a superset: the slowest 8 of
    // top-16 are the top-8.
    const auto wide = run(16);
    ASSERT_GE(wide->topSpans().size(), 8u);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(wide->topSpans()[i].id, a->topSpans()[i].id);
}
