/**
 * @file
 * Tests for the panic/fatal/warn reporting helpers.
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"

using namespace gpummu;

TEST(LoggingDeathTest, PanicAbortsWithMessage)
{
    EXPECT_DEATH(GPUMMU_PANIC("bad thing ", 42),
                 "panic: bad thing 42");
}

TEST(LoggingDeathTest, FatalExitsCleanly)
{
    EXPECT_EXIT(GPUMMU_FATAL("user error ", 7),
                ::testing::ExitedWithCode(1), "fatal: user error 7");
}

TEST(LoggingDeathTest, AssertIncludesConditionText)
{
    const int x = 3;
    EXPECT_DEATH(GPUMMU_ASSERT(x == 4, "x was ", x),
                 "assertion failed: x == 4.*x was 3");
}

TEST(Logging, AssertPassesSilently)
{
    GPUMMU_ASSERT(1 + 1 == 2);
    SUCCEED();
}

TEST(Logging, WarnAndInformDoNotTerminate)
{
    warn("this is only a warning: ", 123);
    inform("status ", 4.5);
    SUCCEED();
}
