/**
 * @file
 * Unit tests for the slab/freelist Arena plus the whole-GPU
 * differential check: arenas-on vs the plain-heap fallback must be
 * bit-identical on every paper workload with the invariant checker
 * armed. The hot-path rewrite (PR 6) is only allowed to change how
 * fast the simulator runs, never what it computes.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "sim/arena.hh"

using namespace gpummu;

namespace {

struct Payload
{
    explicit Payload(int v = 0) : value(v) { vec.assign(4, v); }
    int value;
    std::vector<int> vec;
};

/** Restore the process-wide pooling switch on scope exit so test
 *  order cannot leak a fallback mode into unrelated tests. */
struct PoolingGuard
{
    explicit PoolingGuard(bool pooled) { setArenaPooling(pooled); }
    ~PoolingGuard() { setArenaPooling(true); }
};

} // namespace

TEST(Arena, FreshSlabAllocatesInAscendingAddressOrder)
{
    PoolingGuard guard(true);
    Arena<Payload> arena(8);
    std::vector<Payload *> objs;
    objs.push_back(arena.create(0));
    for (int i = 1; i < 8; ++i) {
        Payload *p = arena.create(i);
        EXPECT_LT(objs.back(), p)
            << "slab must be consumed front to back";
        objs.push_back(p);
    }
    EXPECT_EQ(arena.slabCount(), 1u);
    EXPECT_EQ(arena.live(), 8u);
    for (Payload *p : objs)
        arena.destroy(p);
    EXPECT_EQ(arena.live(), 0u);
}

TEST(Arena, ReuseIsDeterministicLifo)
{
    PoolingGuard guard(true);
    Arena<Payload> arena(8);
    Payload *a = arena.create(1);
    Payload *b = arena.create(2);
    Payload *c = arena.create(3);
    arena.destroy(b);
    arena.destroy(a);
    // LIFO: the most recently freed slot comes back first.
    Payload *r1 = arena.create(4);
    Payload *r2 = arena.create(5);
    EXPECT_EQ(r1, a);
    EXPECT_EQ(r2, b);
    arena.destroy(r1);
    arena.destroy(r2);
    arena.destroy(c);
    EXPECT_EQ(arena.live(), 0u);
}

TEST(Arena, SlabGrowthPreservesLiveObjects)
{
    PoolingGuard guard(true);
    Arena<Payload> arena(4);
    std::vector<Payload *> live;
    for (int i = 0; i < 13; ++i)
        live.push_back(arena.create(i));
    EXPECT_GE(arena.slabCount(), 4u);
    EXPECT_EQ(arena.capacity(), arena.slabCount() * 4);
    for (int i = 0; i < 13; ++i) {
        EXPECT_EQ(live[static_cast<std::size_t>(i)]->value, i)
            << "slab growth must not move or corrupt live objects";
        EXPECT_EQ(live[static_cast<std::size_t>(i)]->vec,
                  std::vector<int>(4, i));
    }
    for (Payload *p : live)
        arena.destroy(p);
    EXPECT_EQ(arena.live(), 0u);
}

TEST(Arena, ArenaRcSharesAndReleasesOnce)
{
    PoolingGuard guard(true);
    Arena<Payload> arena(4);
    ArenaRc<Payload> h1 = arena.createRc(7);
    {
        ArenaRc<Payload> h2 = h1; // copy: refcount 2
        EXPECT_EQ(h2->value, 7);
        EXPECT_EQ(arena.live(), 1u);
    }
    EXPECT_EQ(arena.live(), 1u) << "inner copy must not release";
    h1.reset();
    EXPECT_EQ(arena.live(), 0u);
}

TEST(ArenaDeathTest, DoubleFreePanics)
{
    PoolingGuard guard(true);
    Arena<Payload> arena(4);
    Payload *p = arena.create(1);
    arena.destroy(p);
    EXPECT_DEATH(arena.destroy(p), "double-free");
    // The slot is back on the freelist; reallocate and release it so
    // teardown sees zero live objects in the parent process.
    Payload *q = arena.create(2);
    arena.destroy(q);
}

TEST(ArenaDeathTest, DestroyWithLiveHandlePanics)
{
    PoolingGuard guard(true);
    Arena<Payload> arena(4);
    ArenaRc<Payload> h = arena.createRc(1);
    EXPECT_DEATH(arena.destroy(h.get()), "live ArenaRc");
    h.reset();
}

TEST(ArenaDeathTest, LeakedObjectPanicsAtArenaTeardown)
{
    PoolingGuard guard(true);
    EXPECT_DEATH(
        {
            Arena<Payload> arena(4);
            arena.create(1); // never destroyed
        },
        "still live");
}

TEST(Arena, HeapFallbackMatchesPooledSemantics)
{
    PoolingGuard guard(false);
    Arena<Payload> arena(4);
    EXPECT_FALSE(arena.pooled());
    EXPECT_EQ(arena.capacity(), 0u);
    Payload *p = arena.create(3);
    ArenaRc<Payload> h = arena.createRc(9);
    EXPECT_EQ(p->value, 3);
    EXPECT_EQ(h->value, 9);
    EXPECT_EQ(arena.live(), 2u);
    arena.destroy(p);
    h.reset();
    EXPECT_EQ(arena.live(), 0u);
}

/**
 * The PR's contract, end to end: with the reference invariant
 * checker armed, a full GPU simulation of every paper workload is
 * bit-identical (aggregate stats AND the full registry JSON dump)
 * whether the hot-path descriptors live in arenas or on the plain
 * heap. Any arena bug that changed ordering or lifetimes would either
 * panic the checker or break this byte comparison.
 */
TEST(Arena, FullGpuRunsAreBitIdenticalPooledVsHeap)
{
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 7;
    SystemConfig cfg = presets::augmentedTlb();
    cfg.checkInvariants = true;

    for (BenchmarkId id : allBenchmarks()) {
        RunOutput pooled;
        RunOutput heap;
        {
            PoolingGuard guard(true);
            pooled = runConfigFull(id, cfg, params);
        }
        {
            PoolingGuard guard(false);
            heap = runConfigFull(id, cfg, params);
        }
        EXPECT_TRUE(pooled.stats == heap.stats)
            << benchmarkName(id) << ": aggregate stats diverge";
        EXPECT_EQ(pooled.statsJson, heap.statsJson)
            << benchmarkName(id) << ": registry dump diverges";
    }
}
