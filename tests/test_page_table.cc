/**
 * @file
 * Unit tests for the x86-style radix page table, including the
 * paper's Figure 8 walk-sharing example.
 */

#include <gtest/gtest.h>

#include <set>

#include "mem/request.hh"
#include "vm/page_table.hh"

using namespace gpummu;

namespace {

/** Compose a 36-bit VPN from four 9-bit radix indices. */
Vpn
vpnOf(unsigned pml4, unsigned pdp, unsigned pd, unsigned pt)
{
    return (static_cast<Vpn>(pml4) << 27) |
           (static_cast<Vpn>(pdp) << 18) |
           (static_cast<Vpn>(pd) << 9) | pt;
}

} // namespace

TEST(PageTable, RadixIndexDecomposition)
{
    const Vpn vpn = vpnOf(0xb9, 0x0c, 0xac, 0x03);
    EXPECT_EQ(PageTable::radixIndex(vpn, 0), 0xb9u);
    EXPECT_EQ(PageTable::radixIndex(vpn, 1), 0x0cu);
    EXPECT_EQ(PageTable::radixIndex(vpn, 2), 0xacu);
    EXPECT_EQ(PageTable::radixIndex(vpn, 3), 0x03u);
}

TEST(PageTable, MapTranslateRoundtrip)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    pt.map4K(100, 5000);
    pt.map4K(101, 6000);
    auto t = pt.translate(100);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->ppn, 5000u);
    EXPECT_FALSE(t->isLarge);
    EXPECT_EQ(pt.translate(101)->ppn, 6000u);
}

TEST(PageTable, UnmappedTranslatesToNothing)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    pt.map4K(100, 1);
    EXPECT_FALSE(pt.translate(99).has_value());
    EXPECT_FALSE(pt.translate(vpnOf(1, 0, 0, 0)).has_value());
}

TEST(PageTable, WalkHasFourLevelsFor4K)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    const Vpn vpn = vpnOf(1, 2, 3, 4);
    pt.map4K(vpn, 777);
    auto path = pt.walk(vpn);
    EXPECT_EQ(path.levels, kWalkLevels4K);
    EXPECT_EQ(path.result.ppn, 777u);
    // Entry addresses must be distinct and inside distinct frames.
    std::set<PhysAddr> addrs(path.entryAddrs.begin(),
                             path.entryAddrs.end());
    EXPECT_EQ(addrs.size(), 4u);
}

TEST(PageTable, RootAddrMatchesWalkLevel0Frame)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    const Vpn vpn = vpnOf(4, 5, 6, 7);
    pt.map4K(vpn, 1);
    auto path = pt.walk(vpn);
    EXPECT_EQ(path.entryAddrs[0] & ~(kPageSize4K - 1), pt.rootAddr());
    EXPECT_EQ(path.entryAddrs[0] - pt.rootAddr(), 4u * 8u);
}

TEST(PageTable, PaperFigure8SharedWalkStructure)
{
    // The paper's example: three walks to (0xb9,0x0c,0xac,0x03),
    // (0xb9,0x0c,0xac,0x04), (0xb9,0x0c,0xad,0x05). The PML4 and PDP
    // references are identical across all three; the two PD entries
    // 0xac/0xad share a cache line; PT entries 0x03/0x04 share a
    // line while 0x05 (under a different PT page) does not.
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    const Vpn a = vpnOf(0xb9, 0x0c, 0xac, 0x03);
    const Vpn b = vpnOf(0xb9, 0x0c, 0xac, 0x04);
    const Vpn c = vpnOf(0xb9, 0x0c, 0xad, 0x05);
    pt.map4K(a, 10);
    pt.map4K(b, 11);
    pt.map4K(c, 12);

    auto pa = pt.walk(a);
    auto pb = pt.walk(b);
    auto pc = pt.walk(c);

    // Levels 0 and 1 identical across all walks.
    EXPECT_EQ(pa.entryAddrs[0], pb.entryAddrs[0]);
    EXPECT_EQ(pa.entryAddrs[0], pc.entryAddrs[0]);
    EXPECT_EQ(pa.entryAddrs[1], pb.entryAddrs[1]);
    EXPECT_EQ(pa.entryAddrs[1], pc.entryAddrs[1]);

    // PD: a and b identical; c differs but shares the line
    // (indices 0xac and 0xad are 8 bytes apart).
    EXPECT_EQ(pa.entryAddrs[2], pb.entryAddrs[2]);
    EXPECT_NE(pa.entryAddrs[2], pc.entryAddrs[2]);
    EXPECT_EQ(lineAddrOf(pa.entryAddrs[2]),
              lineAddrOf(pc.entryAddrs[2]));

    // PT: a and b differ but share a line (indices 3 and 4); c is in
    // a different PT page entirely.
    EXPECT_NE(pa.entryAddrs[3], pb.entryAddrs[3]);
    EXPECT_EQ(lineAddrOf(pa.entryAddrs[3]),
              lineAddrOf(pb.entryAddrs[3]));
    EXPECT_NE(lineAddrOf(pa.entryAddrs[3]),
              lineAddrOf(pc.entryAddrs[3]));
}

TEST(PageTable, LargePageMappingStopsAtPd)
{
    PhysicalMemory phys(1 << 20, false);
    PageTable pt(phys);
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    const Ppn base = 4 * per_large;
    pt.map2M(7, base);

    const Vpn vpn4k = (7ULL << 9) | 13; // 4KB page inside the region
    auto t = pt.translate(vpn4k);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->isLarge);
    EXPECT_EQ(t->ppn, base + 13);

    auto path = pt.walk(vpn4k);
    EXPECT_EQ(path.levels, kWalkLevels2M);
    EXPECT_TRUE(path.result.isLarge);
}

TEST(PageTable, TablePagesGrowWithDistinctSubtrees)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    const auto before = pt.tablePages();
    pt.map4K(vpnOf(0, 0, 0, 0), 1);
    pt.map4K(vpnOf(0, 0, 0, 1), 2); // shares all tables
    const auto shared = pt.tablePages();
    pt.map4K(vpnOf(9, 0, 0, 0), 3); // new PDP/PD/PT chain
    const auto split = pt.tablePages();
    EXPECT_EQ(shared - before, 3u); // PDP + PD + PT for subtree 0
    EXPECT_EQ(split - shared, 3u);
}

TEST(PageTableDeathTest, DoubleMapPanics)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    pt.map4K(5, 1);
    EXPECT_DEATH(pt.map4K(5, 2), "already mapped");
}

TEST(PageTableDeathTest, WalkUnmappedPanics)
{
    PhysicalMemory phys(1 << 16, false);
    PageTable pt(phys);
    EXPECT_DEATH(pt.walk(1234), "unmapped");
}
