/**
 * @file
 * Telemetry regression tests.
 *
 * The telemetry layer (interval sampler, heat profiler, run report)
 * is observation-only; these tests pin the contract from both sides:
 * arming it never changes simulated results (bit-identical stat
 * dumps on every workload, byte-stable exports at any sweep job
 * count), and what it records is complete (heat attribution conserves
 * against the walkers' own counters, the divergence series conserves
 * against the memory stages').
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "core/presets.hh"
#include "core/sweep.hh"
#include "telemetry/report.hh"
#include "telemetry/telemetry.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
paperDefault()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 4;
    return cfg;
}

TelemetryConfig
tinyTelemetryConfig()
{
    TelemetryConfig t;
    t.sampleInterval = 2000; // several intervals even on tiny runs
    return t;
}

/** Sum every counter in a statsJson dump whose name ends with
 *  @p suffix (e.g. ".ptw.walks" across cores). */
std::uint64_t
sumCountersEndingWith(const std::string &json,
                      const std::string &suffix)
{
    const std::string needle = suffix + "\":";
    std::uint64_t sum = 0;
    for (std::string::size_type pos = json.find(needle);
         pos != std::string::npos;
         pos = json.find(needle, pos + needle.size())) {
        sum += std::strtoull(json.c_str() + pos + needle.size(),
                             nullptr, 10);
    }
    return sum;
}

} // namespace

TEST(Telemetry, ArmedRunIsBitIdenticalOnEveryWorkload)
{
    // The acceptance bar for the whole subsystem: a telemetry-armed
    // run must be indistinguishable from an unarmed one in every
    // simulated stat, on every registry workload.
    const auto cfg = paperDefault();
    for (BenchmarkId id : allBenchmarks()) {
        const RunOutput plain = runConfigFull(id, cfg, tinyParams());
        Telemetry telemetry(tinyTelemetryConfig());
        const RunOutput armed =
            runConfigFull(id, cfg, tinyParams(), nullptr, &telemetry);
        EXPECT_TRUE(plain.stats == armed.stats) << benchmarkName(id);
        EXPECT_EQ(plain.statsJson, armed.statsJson)
            << benchmarkName(id);
        // ...while actually recording something.
        EXPECT_TRUE(telemetry.finished()) << benchmarkName(id);
        EXPECT_GT(telemetry.sampler().intervals().size(), 1u)
            << benchmarkName(id);
        EXPECT_FALSE(telemetry.heat().pages().empty())
            << benchmarkName(id);
    }
}

TEST(Telemetry, IntervalCoverageIsGaplessAndCumulative)
{
    Telemetry telemetry(tinyTelemetryConfig());
    const RunOutput out = runConfigFull(
        BenchmarkId::Bfs, paperDefault(), tinyParams(), nullptr,
        &telemetry);

    const auto &ivs = telemetry.sampler().intervals();
    ASSERT_FALSE(ivs.empty());
    Cycle expect_start = 0;
    for (const auto &iv : ivs) {
        EXPECT_EQ(iv.start, expect_start);
        EXPECT_GT(iv.end, iv.start);
        expect_start = iv.end;
    }
    EXPECT_EQ(ivs.back().end, out.stats.cycles);
    EXPECT_EQ(ivs.back().end, telemetry.runCycles());

    // Cumulative rows are monotone per column, and the divergence
    // series closed one interval per sampler interval.
    for (std::size_t c = 0; c < telemetry.sampler().names().size();
         ++c) {
        std::uint64_t prev = 0;
        for (const auto &iv : ivs) {
            EXPECT_GE(iv.cum[c], prev);
            prev = iv.cum[c];
        }
    }
    EXPECT_EQ(telemetry.heat().divergenceSeries().size(), ivs.size());
}

TEST(Telemetry, HeatAttributionConservesAgainstWalkerCounters)
{
    // Every walk and every page-table reference the walkers count
    // must land in exactly one heat-table row: per-VPN walk counts
    // sum to the walkers' walks, per-line reference counts sum to
    // refs_issued, and the divergence series sums to the memory
    // stages' instruction count.
    const auto cfg = paperDefault();
    for (BenchmarkId id : allBenchmarks()) {
        Telemetry telemetry(tinyTelemetryConfig());
        const RunOutput out =
            runConfigFull(id, cfg, tinyParams(), nullptr, &telemetry);
        const HeatProfiler &heat = telemetry.heat();

        std::uint64_t page_walks = 0;
        for (const auto &[vpn, p] : heat.pages()) {
            page_walks += p.walks;
            EXPECT_GE(p.sharers(), 1u);
        }
        std::uint64_t line_refs = 0, where_refs = 0;
        for (const auto &[line, l] : heat.lines()) {
            line_refs += l.refs;
            where_refs += l.pwcHits + l.l2Refs + l.dramRefs;
        }

        EXPECT_EQ(page_walks, heat.totalWalks()) << benchmarkName(id);
        EXPECT_EQ(page_walks,
                  sumCountersEndingWith(out.statsJson, ".ptw.walks"))
            << benchmarkName(id);
        EXPECT_EQ(line_refs, heat.totalRefs()) << benchmarkName(id);
        EXPECT_EQ(line_refs, where_refs) << benchmarkName(id);
        EXPECT_EQ(line_refs, out.stats.walkRefsIssued)
            << benchmarkName(id);

        std::uint64_t div_n = 0;
        for (const auto &d : heat.divergenceSeries())
            div_n += d.count;
        EXPECT_EQ(div_n, heat.totalDivergenceSamples())
            << benchmarkName(id);
        EXPECT_EQ(div_n, out.stats.memInstructions)
            << benchmarkName(id);
    }
}

TEST(Telemetry, HeatCoversIommuAndTbcPaths)
{
    // The IOMMU's shared walkers and the TBC core's memory stage are
    // armed through different paths than the SIMT default; both must
    // still conserve.
    auto io = presets::iommu();
    io.numCores = 4;
    Telemetry io_t(tinyTelemetryConfig());
    const RunOutput io_out = runConfigFull(BenchmarkId::Bfs, io,
                                           tinyParams(), nullptr,
                                           &io_t);
    // RunStats only aggregates the (disabled) per-core walkers in
    // IOMMU mode; conserve against the IOMMU's own counter instead.
    EXPECT_EQ(io_t.heat().totalRefs(),
              sumCountersEndingWith(io_out.statsJson,
                                    ".ptw.refs_issued"));
    EXPECT_FALSE(io_t.heat().pages().empty());
    EXPECT_EQ(io_t.heat().totalDivergenceSamples(),
              io_out.stats.memInstructions);

    auto tbc = presets::tbc(paperDefault());
    Telemetry tbc_t(tinyTelemetryConfig());
    const RunOutput tbc_out = runConfigFull(BenchmarkId::Bfs, tbc,
                                            tinyParams(), nullptr,
                                            &tbc_t);
    EXPECT_EQ(tbc_t.heat().totalRefs(), tbc_out.stats.walkRefsIssued);
    EXPECT_EQ(tbc_t.heat().totalDivergenceSamples(),
              tbc_out.stats.memInstructions);
}

TEST(Telemetry, ExportsAreByteStableAcrossSweepJobCounts)
{
    // Pipeline parity: sweep the grid on 1 worker, sample a point;
    // sweep on 4 workers, sample the same point - the interval CSV
    // and JSON must match byte for byte (single-CPU containers can't
    // see a true interleaving difference, but the contract is that
    // nothing about the sweep leaks into a later armed run at all).
    const auto cfg = paperDefault();
    const std::vector<BenchmarkId> grid_benches = {BenchmarkId::Bfs,
                                                   BenchmarkId::Kmeans};
    auto pipeline = [&](unsigned jobs) {
        Experiment exp(tinyParams());
        std::vector<SweepPoint> grid;
        for (BenchmarkId id : grid_benches)
            grid.push_back(SweepPoint{id, cfg});
        SweepRunner(exp, jobs).run(grid);
        Telemetry telemetry(tinyTelemetryConfig());
        runConfigFull(BenchmarkId::Bfs, cfg, tinyParams(), nullptr,
                      &telemetry);
        std::ostringstream csv, json;
        telemetry.writeCsv(csv);
        telemetry.writeJson(json);
        return std::make_pair(csv.str(), json.str());
    };
    const auto [csv1, json1] = pipeline(1);
    const auto [csv4, json4] = pipeline(4);
    EXPECT_EQ(csv1, csv4);
    EXPECT_EQ(json1, json4);

    // Sanity on the CSV shape: one header plus one row per interval,
    // header pinned to the documented leading columns.
    EXPECT_EQ(csv1.rfind("cycle_start,cycle_end,page_div_n,"
                         "page_div_sum,page_div_max,",
                         0),
              0u);
    const auto rows = static_cast<std::size_t>(
        std::count(csv1.begin(), csv1.end(), '\n'));
    Telemetry probe(tinyTelemetryConfig());
    runConfigFull(BenchmarkId::Bfs, cfg, tinyParams(), nullptr,
                  &probe);
    EXPECT_EQ(rows, probe.sampler().intervals().size() + 1);
}

TEST(Telemetry, ArmedCheckerAndSamplerComposeCleanly)
{
    // Invariant checking and telemetry are independent observation
    // layers; armed together they must still match the plain run.
    auto armed = paperDefault();
    armed.checkInvariants = true;
    const RunOutput plain =
        runConfigFull(BenchmarkId::Bfs, paperDefault(), tinyParams());
    Telemetry telemetry(tinyTelemetryConfig());
    const RunOutput both = runConfigFull(BenchmarkId::Bfs, armed,
                                         tinyParams(), nullptr,
                                         &telemetry);
    EXPECT_TRUE(plain.stats == both.stats);
    EXPECT_EQ(plain.statsJson, both.statsJson);
    EXPECT_FALSE(telemetry.heat().pages().empty());
}

TEST(Telemetry, StallSnapshotMatchesTheStatDump)
{
    // finish() aggregates "<core>.stalls.<reason>" histograms across
    // cores; the per-reason warp totals must equal what the dump
    // itself reports.
    Telemetry telemetry(tinyTelemetryConfig());
    const RunOutput out = runConfigFull(
        BenchmarkId::Bfs, paperDefault(), tinyParams(), nullptr,
        &telemetry);
    ASSERT_FALSE(telemetry.stalls().empty());
    for (const auto &[reason, total] : telemetry.stalls()) {
        EXPECT_EQ(total.warps,
                  sumCountersEndingWith(
                      out.statsJson,
                      ".stalls." + reason + "\":{\"count"))
            << reason;
    }
}

TEST(Telemetry, ReportRendersAndFlagsEmptyHeat)
{
    Telemetry telemetry(tinyTelemetryConfig());
    runConfigFull(BenchmarkId::Bfs, paperDefault(), tinyParams(),
                  nullptr, &telemetry);
    std::ostringstream os;
    EXPECT_TRUE(writeHtmlReport(os, telemetry));
    const std::string html = os.str();
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("const DATA={\"meta\""), std::string::npos);
    EXPECT_NE(html.find("id=\"hotpages\""), std::string::npos);
    // The embedded JSON must not contain a raw "</" (it would close
    // the script element early and break the page).
    const auto data_at = html.find("const DATA=");
    const auto data_end = html.find("</script>", data_at);
    ASSERT_NE(data_end, std::string::npos);
    EXPECT_EQ(html.substr(data_at, data_end - data_at).find("</"),
              std::string::npos);

    // An unused telemetry (no walks attributed) renders a warning
    // page and reports failure - the CI empty-report gate.
    Telemetry idle;
    std::ostringstream empty_os;
    EXPECT_FALSE(writeHtmlReport(empty_os, idle));
    EXPECT_NE(empty_os.str().find("Empty hot-page table"),
              std::string::npos);
}

TEST(Telemetry, TopTablesAreDeterministicallyOrdered)
{
    Telemetry telemetry(tinyTelemetryConfig());
    runConfigFull(BenchmarkId::Bfs, paperDefault(), tinyParams(),
                  nullptr, &telemetry);
    const auto pages = telemetry.heat().topPages(16);
    ASSERT_FALSE(pages.empty());
    for (std::size_t i = 1; i < pages.size(); ++i) {
        const bool hotter =
            pages[i - 1].second.walks > pages[i].second.walks;
        const bool tie_by_vpn =
            pages[i - 1].second.walks == pages[i].second.walks &&
            pages[i - 1].first < pages[i].first;
        EXPECT_TRUE(hotter || tie_by_vpn) << i;
    }
    const auto lines = telemetry.heat().topLines(16);
    ASSERT_FALSE(lines.empty());
    for (std::size_t i = 1; i < lines.size(); ++i) {
        const bool hotter =
            lines[i - 1].second.refs > lines[i].second.refs;
        const bool tie_by_addr =
            lines[i - 1].second.refs == lines[i].second.refs &&
            lines[i - 1].first < lines[i].first;
        EXPECT_TRUE(hotter || tie_by_addr) << i;
    }
}
