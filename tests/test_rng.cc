/**
 * @file
 * Unit tests for the deterministic RNG and the Zipf sampler.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "sim/rng.hh"

using namespace gpummu;

TEST(SplitMix64, IsDeterministic)
{
    EXPECT_EQ(splitMix64(0), splitMix64(0));
    EXPECT_EQ(splitMix64(42), splitMix64(42));
    EXPECT_NE(splitMix64(1), splitMix64(2));
}

TEST(SplitMix64, MixesAdjacentInputs)
{
    // Adjacent seeds should differ in roughly half their bits.
    const std::uint64_t a = splitMix64(100);
    const std::uint64_t b = splitMix64(101);
    const int bits = __builtin_popcountll(a ^ b);
    EXPECT_GT(bits, 16);
    EXPECT_LT(bits, 48);
}

TEST(Rng, SameSeedSameStream)
{
    Rng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(7), b(8);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(3);
    const std::uint64_t first = a.next();
    a.next();
    a.reseed(3);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(11);
    for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(r.below(bound), bound);
    }
}

TEST(Rng, BelowOneIsAlwaysZero)
{
    Rng r(5);
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(13);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.range(10, 13);
        EXPECT_GE(v, 10u);
        EXPECT_LE(v, 13u);
        saw_lo = saw_lo || v == 10;
        saw_hi = saw_hi || v == 13;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(17);
    double sum = 0;
    const int n = 10000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(23);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng r(29);
    std::map<std::uint64_t, int> counts;
    const int n = 10000;
    for (int i = 0; i < n; ++i)
        counts[r.below(10)]++;
    for (const auto &[v, c] : counts) {
        EXPECT_GT(c, n / 10 - n / 30);
        EXPECT_LT(c, n / 10 + n / 30);
    }
}

class ZipfTest : public ::testing::TestWithParam<double>
{
};

TEST_P(ZipfTest, SamplesInRangeAndSkewed)
{
    const double s = GetParam();
    ZipfSampler z(1000, s);
    Rng r(31);
    std::map<std::uint64_t, int> counts;
    const int n = 30000;
    for (int i = 0; i < n; ++i) {
        const auto v = z.sample(r);
        ASSERT_LT(v, 1000u);
        counts[v]++;
    }
    // Head should dominate the tail for any positive exponent.
    int head = 0, tail = 0;
    for (const auto &[v, c] : counts) {
        if (v < 10)
            head += c;
        if (v >= 990)
            tail += c;
    }
    EXPECT_GT(head, tail * 2);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.5, 0.8, 0.99, 1.2));

TEST(Zipf, HeavierExponentIsMoreSkewed)
{
    Rng r1(37), r2(37);
    ZipfSampler light(1000, 0.5), heavy(1000, 1.3);
    int light_head = 0, heavy_head = 0;
    for (int i = 0; i < 20000; ++i) {
        light_head += (light.sample(r1) < 5);
        heavy_head += (heavy.sample(r2) < 5);
    }
    EXPECT_GT(heavy_head, light_head);
}

TEST(Zipf, DeterministicGivenRngSeed)
{
    ZipfSampler z(500, 0.9);
    Rng a(41), b(41);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(z.sample(a), z.sample(b));
}
