/**
 * @file
 * Parallel sweep engine tests: the load-bearing guarantee is that a
 * grid run with jobs=1 (strictly serial, no pool) is bit-identical
 * to the same grid with jobs=4+, for both the aggregate RunStats and
 * the full JSON stat dumps, with results in submission order.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <system_error>
#include <thread>

#include "core/presets.hh"
#include "core/sweep.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
shrink(SystemConfig cfg)
{
    cfg.numCores = 4;
    return cfg;
}

/** The 8-point grid from the acceptance criteria: 2 benches x 4
 *  configs spanning baseline, strawman, augmented and ideal MMUs. */
std::vector<SweepPoint>
eightPointGrid()
{
    std::vector<SweepPoint> grid;
    for (BenchmarkId id :
         {BenchmarkId::Bfs, BenchmarkId::Pathfinder}) {
        for (const SystemConfig &cfg :
             {shrink(presets::noTlb()), shrink(presets::naiveTlb(3)),
              shrink(presets::augmentedTlb()),
              shrink(presets::idealTlb())}) {
            grid.push_back(SweepPoint{id, cfg});
        }
    }
    return grid;
}

} // namespace

TEST(Sweep, ParallelMatchesSerialBitExactly)
{
    const auto grid = eightPointGrid();

    Experiment serial_exp(tinyParams());
    const auto serial = SweepRunner(serial_exp, 1).run(grid);

    Experiment par_exp(tinyParams());
    const auto parallel = SweepRunner(par_exp, 4).run(grid);

    ASSERT_EQ(serial.size(), grid.size());
    ASSERT_EQ(parallel.size(), grid.size());
    for (std::size_t i = 0; i < grid.size(); ++i) {
        EXPECT_TRUE(serial[i].stats == parallel[i].stats)
            << "point " << i << " ("
            << benchmarkName(grid[i].bench) << "/"
            << grid[i].cfg.name << ")";
        EXPECT_EQ(serial[i].statsJson, parallel[i].statsJson)
            << "point " << i;
    }
}

TEST(Sweep, ResultsComeBackInSubmissionOrder)
{
    const auto grid = eightPointGrid();
    Experiment exp(tinyParams());
    const auto results = SweepRunner(exp, 8).run(grid);
    ASSERT_EQ(results.size(), grid.size());
    // The JSON dump embeds the point's identity; check each slot
    // holds the point submitted at that index.
    for (std::size_t i = 0; i < grid.size(); ++i) {
        const std::string want = "{\"bench\":\"" +
                                 benchmarkName(grid[i].bench) +
                                 "\",\"config\":\"" +
                                 grid[i].cfg.name + "\"";
        EXPECT_EQ(results[i].statsJson.rfind(want, 0), 0u)
            << "slot " << i << " starts with "
            << results[i].statsJson.substr(0, 64);
    }
}

TEST(Sweep, DuplicatePointsSimulateOnce)
{
    // 8 copies of one point racing through the memo cache: the
    // in-flight latch must collapse them to a single simulation.
    std::vector<SweepPoint> grid(
        8, SweepPoint{BenchmarkId::Bfs, shrink(presets::noTlb())});
    Experiment exp(tinyParams());
    const auto results = SweepRunner(exp, 8).run(grid);
    EXPECT_EQ(exp.missCount(), 1u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.stats == results.front().stats);
        EXPECT_EQ(r.statsJson, results.front().statsJson);
    }
}

TEST(Sweep, SharedBaselineComputedOnceAcrossSpeedups)
{
    // Two variant configs normalized against the same baseline: the
    // baseline must be simulated once, not once per speedup call.
    Experiment exp(tinyParams());
    const auto base = shrink(presets::noTlb());
    exp.speedup(BenchmarkId::Bfs, shrink(presets::naiveTlb(3)), base);
    exp.speedup(BenchmarkId::Bfs, shrink(presets::naiveTlb(4)), base);
    EXPECT_EQ(exp.missCount(), 3u);
}

TEST(Sweep, ParallelMapPreservesIndexOrder)
{
    std::atomic<int> calls{0};
    const auto out = parallelMap(4, 64, [&](std::size_t i) {
        calls.fetch_add(1);
        // Skew per-item latency so completion order differs wildly
        // from submission order.
        std::this_thread::sleep_for(
            std::chrono::microseconds((i % 7) * 100));
        return i * 3 + 1;
    });
    EXPECT_EQ(calls.load(), 64);
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * 3 + 1);
}

TEST(Sweep, WorkerExceptionPropagatesToCaller)
{
    EXPECT_THROW(parallelMap(4, 16,
                             [](std::size_t i) {
                                 if (i == 5)
                                     throw std::runtime_error("boom");
                                 return i;
                             }),
                 std::runtime_error);
}

TEST(Sweep, LowestIndexExceptionWinsDeterministically)
{
    // Two workers throw; regardless of thread timing the caller must
    // always see the lowest submission index's exception.
    for (int round = 0; round < 4; ++round) {
        try {
            parallelMap(8, 32, [](std::size_t i) -> int {
                if (i == 3)
                    throw std::runtime_error("first");
                if (i == 20)
                    throw std::runtime_error("second");
                return 0;
            });
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "first");
        }
    }
}

TEST(Sweep, EmptyGridAndSingleJobEdgeCases)
{
    Experiment exp(tinyParams());
    EXPECT_TRUE(SweepRunner(exp, 3).run({}).empty());
    EXPECT_EQ(exp.missCount(), 0u);
    EXPECT_TRUE(parallelMap(1, 0, [](std::size_t i) { return i; })
                    .empty());
}

TEST(Sweep, ResolveJobsHonoursExplicitRequestAndEnv)
{
    EXPECT_EQ(resolveJobs(7), 7u);
    ASSERT_EQ(setenv("GPUMMU_JOBS", "3", 1), 0);
    EXPECT_EQ(resolveJobs(0), 3u);
    EXPECT_EQ(resolveJobs(2), 2u); // explicit beats env
    ASSERT_EQ(setenv("GPUMMU_JOBS", "not-a-number", 1), 0);
    EXPECT_GE(resolveJobs(0), 1u); // falls back to hardware
    unsetenv("GPUMMU_JOBS");
    EXPECT_GE(resolveJobs(0), 1u);
}

// Regression for the atol() misparse: GPUMMU_JOBS with trailing
// garbage ("4abc") silently became 4 workers, and out-of-range values
// were undefined behavior. The strict parser must reject every
// malformed spelling and fall back to hardware concurrency (>= 1).
TEST(Sweep, ResolveJobsRejectsMalformedEnvValues)
{
    const char *bad[] = {
        "4abc",                  // trailing garbage
        "0",                     // zero workers is meaningless
        "-3",                    // negative
        " 4",                    // leading whitespace
        "+4",                    // explicit sign
        "",                      // empty
        "99999999999999999999",  // overflows unsigned
        "0x10",                  // hex spelling
        "3.5",                   // fractional
    };
    const unsigned hw = std::thread::hardware_concurrency();
    const unsigned fallback = hw > 0 ? hw : 1;
    for (const char *v : bad) {
        ASSERT_EQ(setenv("GPUMMU_JOBS", v, 1), 0);
        // Every malformed spelling resolves to the hardware fallback,
        // never to a prefix-parse of the garbage ("4abc" -> 4 was the
        // bug).
        EXPECT_EQ(resolveJobs(0), fallback) << "GPUMMU_JOBS=" << v;
    }
    // In-range values parse exactly, right up to the unsigned max.
    ASSERT_EQ(setenv("GPUMMU_JOBS", "4294967295", 1), 0);
    EXPECT_EQ(resolveJobs(0), 4294967295u);
    unsetenv("GPUMMU_JOBS");
}

// Regression for the thread-spawn exception-safety hole: if
// std::thread construction throws mid-loop, the already-spawned
// joinable workers must be joined during unwinding instead of
// destroyed joinable (which calls std::terminate). ThreadJoiner is
// the guard parallelMap spawns into; throwing through its scope must
// leave every worker joined.
TEST(Sweep, ThreadJoinerJoinsOnUnwind)
{
    std::atomic<int> completed{0};
    std::atomic<bool> release{false};
    bool caught = false;
    try {
        ThreadJoiner pool;
        for (int i = 0; i < 3; ++i) {
            pool.threads.emplace_back([&] {
                while (!release.load())
                    std::this_thread::yield();
                completed.fetch_add(1);
            });
        }
        // Simulate the fourth spawn failing the way a resource-
        // exhausted std::thread constructor does.
        release.store(true);
        throw std::system_error(
            std::make_error_code(std::errc::resource_unavailable_try_again),
            "simulated thread-spawn failure");
    } catch (const std::system_error &) {
        caught = true;
    }
    // If the guard had not joined, completed could still be < 3 (and
    // a joinable thread's destructor would have terminated us long
    // before this line).
    EXPECT_TRUE(caught);
    EXPECT_EQ(completed.load(), 3);
}

// A mixed pool where some threads already finished and one was
// joined by hand: the guard must skip unjoinable threads.
TEST(Sweep, ThreadJoinerSkipsAlreadyJoinedThreads)
{
    ThreadJoiner pool;
    pool.threads.emplace_back([] {});
    pool.threads.emplace_back([] {});
    pool.threads.front().join();
    // Destructor joins the second and must not touch the first.
}
