/**
 * @file
 * Self-tests for the simulator-throughput benchmark harness
 * (bench/simbench + sim/perf_report): the measurement loop must be
 * replay-deterministic, the emitted JSON must satisfy its own schema,
 * schema violations must be caught loudly, and an unwritable output
 * path must fail with a clear error instead of crashing.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "sim/perf_report.hh"

using namespace gpummu;

namespace {

/** A small but fully valid report to mutate in schema tests. */
BenchReport
sampleReport()
{
    BenchReport r;
    r.pr = 6;
    r.scale = 0.25;
    r.seed = 42;
    r.repeat = 3;
    BenchMeasurement m;
    m.point = "memcached/augmented_tlb";
    m.benchmark = "memcached";
    m.config = "augmented_tlb";
    m.cycles = 89079;
    m.eventsFired = 130856;
    m.instructions = 86933;
    m.wallSeconds = 0.5;
    r.points.push_back(m);
    return r;
}

/** True when some validation error message contains @p needle. */
bool
hasError(const BenchValidation &v, const std::string &needle)
{
    for (const std::string &e : v.errors) {
        if (e.find(needle) != std::string::npos)
            return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// The measurement the harness archives: back-to-back runs of the same
// point must report identical deterministic quantities, or every
// cycles/sec number would be comparing different simulations.
// ---------------------------------------------------------------------

TEST(Simbench, BackToBackRunsReportIdenticalCyclesAndEvents)
{
    WorkloadParams params;
    params.scale = 0.1;
    params.seed = 42;
    const SystemConfig cfg = presets::augmentedTlb();

    const RunStats first =
        runConfig(BenchmarkId::Memcached, cfg, params);
    const RunStats second =
        runConfig(BenchmarkId::Memcached, cfg, params);

    EXPECT_EQ(first.cycles, second.cycles);
    EXPECT_EQ(first.eventsFired, second.eventsFired);
    EXPECT_EQ(first.instructions, second.instructions);
    EXPECT_TRUE(first == second);
    EXPECT_GT(first.cycles, 0u);
    EXPECT_GT(first.eventsFired, 0u);
}

// ---------------------------------------------------------------------
// Round trip: what the writer emits must pass the validator.
// ---------------------------------------------------------------------

TEST(Simbench, EmittedReportValidates)
{
    const BenchReport r = sampleReport();
    const BenchValidation v = validateBenchJson(r.toJson());
    EXPECT_TRUE(v.ok()) << (v.errors.empty() ? "" : v.errors.front());
}

TEST(Simbench, EmittedJsonParsesBackToSameValues)
{
    const BenchReport r = sampleReport();
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(r.toJson(), doc, &err)) << err;
    ASSERT_EQ(doc.kind, JsonValue::Kind::Object);

    const JsonValue *ver = doc.find("schema_version");
    ASSERT_NE(ver, nullptr);
    EXPECT_EQ(ver->number, kBenchSchemaVersion);

    const JsonValue *gen = doc.find("generator");
    ASSERT_NE(gen, nullptr);
    EXPECT_EQ(gen->str, "simbench");

    const JsonValue *pts = doc.find("points");
    ASSERT_NE(pts, nullptr);
    ASSERT_EQ(pts->items.size(), 1u);
    const JsonValue &p = pts->items.front();
    EXPECT_EQ(p.find("point")->str, "memcached/augmented_tlb");
    EXPECT_EQ(p.find("cycles")->number, 89079.0);
    EXPECT_EQ(p.find("events_fired")->number, 130856.0);
    // cycles_per_sec = cycles / wallSeconds = 89079 / 0.5.
    EXPECT_DOUBLE_EQ(p.find("cycles_per_sec")->number, 178158.0);
}

// ---------------------------------------------------------------------
// Schema violations the validator must reject.
// ---------------------------------------------------------------------

TEST(Simbench, SchemaVersionZeroIsRejected)
{
    BenchReport r = sampleReport();
    r.schemaVersion = 0;
    const BenchValidation v = validateBenchJson(r.toJson());
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "schema_version"));
}

TEST(Simbench, FutureSchemaVersionIsRejected)
{
    BenchReport r = sampleReport();
    r.schemaVersion = kBenchSchemaVersion + 1;
    const BenchValidation v = validateBenchJson(r.toJson());
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "schema_version"));
}

TEST(Simbench, ZeroWallClockIsRejected)
{
    // wallSeconds == 0 makes cyclesPerSec()/eventsPerSec() return 0
    // (the guarded division) — the validator must refuse to archive
    // the meaningless throughput, not divide by zero.
    BenchReport r = sampleReport();
    r.points.front().wallSeconds = 0.0;
    EXPECT_EQ(r.points.front().cyclesPerSec(), 0.0);
    const BenchValidation v = validateBenchJson(r.toJson());
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "strictly positive"));
}

TEST(Simbench, NaNWallClockIsRejected)
{
    // jsonNum() serializes non-finite doubles as JSON null, which the
    // validator then flags as a wrong-typed wall_seconds.
    BenchReport r = sampleReport();
    r.points.front().wallSeconds =
        std::numeric_limits<double>::quiet_NaN();
    const BenchValidation v = validateBenchJson(r.toJson());
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "wall_seconds"));
}

TEST(Simbench, MissingRequiredKeyIsRejected)
{
    const BenchValidation v = validateBenchJson(
        "{\"schema_version\":1,\"generator\":\"simbench\"}");
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "missing required key"));
}

TEST(Simbench, EmptyPointsArrayIsRejected)
{
    const BenchValidation v = validateBenchJson(
        "{\"schema_version\":1,\"generator\":\"simbench\","
        "\"pr\":6,\"scale\":0.25,\"seed\":42,\"repeat\":3,"
        "\"points\":[]}");
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "points: array is empty"));
}

TEST(Simbench, NonObjectTopLevelIsRejected)
{
    const BenchValidation v = validateBenchJson("[1,2,3]");
    EXPECT_FALSE(v.ok());
    EXPECT_TRUE(hasError(v, "not a JSON object"));
}

// ---------------------------------------------------------------------
// Parser negative cases: malformed input fails with a located error,
// never an exception or a bogus document.
// ---------------------------------------------------------------------

TEST(Simbench, ParserRejectsMalformedJson)
{
    JsonValue doc;
    std::string err;
    EXPECT_FALSE(parseJson("{\"a\":}", doc, &err));
    EXPECT_NE(err.find("json parse error"), std::string::npos);

    EXPECT_FALSE(parseJson("{\"a\":1", doc, &err));
    EXPECT_FALSE(parseJson("[1,2,", doc, &err));
    EXPECT_FALSE(parseJson("\"unterminated", doc, &err));
    EXPECT_FALSE(parseJson("{\"a\":1} trailing", doc, &err));
    EXPECT_FALSE(parseJson("", doc, &err));
    EXPECT_FALSE(parseJson("nul", doc, &err));
}

TEST(Simbench, ParserHandlesEscapesAndNesting)
{
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(
        "{\"s\":\"a\\\"b\\\\c\\n\",\"arr\":[{\"x\":-1.5e3},null,true]}",
        doc, &err))
        << err;
    EXPECT_EQ(doc.find("s")->str, "a\"b\\c\n");
    const JsonValue *arr = doc.find("arr");
    ASSERT_EQ(arr->items.size(), 3u);
    EXPECT_DOUBLE_EQ(arr->items[0].find("x")->number, -1500.0);
    EXPECT_EQ(arr->items[1].kind, JsonValue::Kind::Null);
    EXPECT_TRUE(arr->items[2].boolean);
}

// ---------------------------------------------------------------------
// Output-path failures surface as clear errors, not crashes.
// ---------------------------------------------------------------------

TEST(Simbench, UnwritableOutputPathFailsWithClearError)
{
    const BenchReport r = sampleReport();
    std::string err;
    EXPECT_FALSE(r.writeFile(
        "/nonexistent-dir-for-simbench-test/out.json", &err));
    EXPECT_NE(err.find("cannot open"), std::string::npos);
    EXPECT_NE(err.find("/nonexistent-dir-for-simbench-test/out.json"),
              std::string::npos);
}
