/**
 * @file
 * Tests for the thread-block-compaction shader core.
 */

#include <gtest/gtest.h>

#include <memory>

#include "gpu/gpu_top.hh"
#include "tbc/tbc_core.hh"
#include "workloads/workload.hh"

using namespace gpummu;

namespace {

class DivergentWorkload : public Workload
{
  public:
    explicit DivergentWorkload(double active_p = 0.5)
        : Workload(WorkloadParams{}), prog_("div"), activeP_(active_p)
    {
    }

    std::string name() const override { return "div"; }
    const KernelProgram &program() const override { return prog_; }
    unsigned threadsPerBlock() const override { return 128; }
    unsigned numBlocks() const override { return 4; }

    void
    build(AddressSpace &as) override
    {
        region_ = as.mmap("div.data", 128 * kPageSize4K);
        // Page chosen by the thread's *original* warp: compacted
        // warps mixing origins raise page divergence, as in the paper.
        const int warp_page = prog_.addAddrGen([this](ThreadCtx &c) {
            const std::uint64_t page =
                (static_cast<std::uint64_t>(c.warpInBlock) * 13 +
                 c.visits(1)) %
                regionPages();
            return region_.base + page * kPageSize4K +
                   static_cast<VirtAddr>(c.laneId) * 8;
        });
        const int active = prog_.addCondGen([this](ThreadCtx &c) {
            return c.rng.chance(activeP_);
        });
        const int loop = prog_.addCondGen(
            [](ThreadCtx &c) { return c.visits(1) < 5; });
        const int b0 = prog_.addBlock();
        const int b1 = prog_.addBlock();
        const int b2 = prog_.addBlock();
        const int b3 = prog_.addBlock();
        const int b4 = prog_.addBlock();
        prog_.appendAlu(b0, 1);
        prog_.appendBranch(b0, -1, b1, -1, -1);
        prog_.appendAlu(b1, 1);
        prog_.appendBranch(b1, active, b2, b3, b3);
        prog_.appendLoad(b2, warp_page);
        prog_.appendAlu(b2, 2);
        prog_.appendBranch(b2, -1, b3, -1, -1);
        prog_.appendAlu(b3, 1);
        prog_.appendBranch(b3, loop, b1, b4, b4);
        prog_.appendExit(b4);
    }

    std::uint64_t
    regionPages() const
    {
        return region_.bytes >> kPageShift4K;
    }

  private:
    KernelProgram prog_;
    double activeP_;
    VmRegion region_;
};

struct TbcRun
{
    RunStats stats;
    std::uint64_t compactions = 0;
    std::uint64_t dynWarps = 0;
};

TbcRun
runDivergent(const TbcConfig &tbc, double active_p = 0.5,
             CoreConfig core_cfg = CoreConfig{})
{
    DivergentWorkload wl(active_p);
    std::vector<TbcCore *> cores;
    GpuTop gpu(
        2, MemorySystemConfig{}, wl,
        [&](int id, const LaunchParams &l, AddressSpace &as,
            MemorySystem &m,
            EventQueue &e) -> std::unique_ptr<ShaderCore> {
            auto core = std::make_unique<TbcCore>(id, core_cfg, tbc,
                                                  l, as, m, e);
            cores.push_back(core.get());
            return core;
        });
    TbcRun out;
    out.stats = gpu.run(50'000'000);
    for (auto *c : cores) {
        out.compactions += c->compactions();
        out.dynWarps += c->dynamicWarpsFormed();
    }
    return out;
}

} // namespace

TEST(TbcCore, RunsToCompletionAndCompacts)
{
    auto run = runDivergent(TbcConfig{});
    EXPECT_GT(run.stats.cycles, 0u);
    EXPECT_GT(run.stats.instructions, 0u);
    EXPECT_GT(run.compactions, 0u);
    EXPECT_GT(run.dynWarps, run.compactions);
}

TEST(TbcCore, CompactionSavesWarpInstructionsOnDivergentCode)
{
    // With 50% active threads the divergent block runs on compacted
    // warps (about half as many as the static warp count).
    auto half = runDivergent(TbcConfig{}, 0.5);
    auto full = runDivergent(TbcConfig{}, 1.0);
    // Full activity executes MORE total work but uses full warps;
    // instruction count per executed block stays proportional.
    EXPECT_GT(half.dynWarps, 0u);
    EXPECT_GT(full.dynWarps, 0u);
    // At 50% activity, the average dynamic warps per compaction of
    // the divergent block must be below the static warp count (4).
    const double per_compact =
        static_cast<double>(half.dynWarps) /
        static_cast<double>(half.compactions);
    EXPECT_LT(per_compact, 4.01);
}

TEST(TbcCore, DeterministicAcrossRuns)
{
    auto a = runDivergent(TbcConfig{});
    auto b = runDivergent(TbcConfig{});
    EXPECT_EQ(a.stats.cycles, b.stats.cycles);
    EXPECT_EQ(a.stats.instructions, b.stats.instructions);
}

TEST(TbcCore, TlbAwareCompactionReducesPageDivergence)
{
    TbcConfig agnostic;
    TbcConfig aware;
    aware.tlbAware = true;
    aware.cpm.counterBits = 3;

    CoreConfig with_tlb;
    with_tlb.mmu.enabled = true;
    with_tlb.mmu.hitUnderMiss = true;
    with_tlb.mmu.cacheOverlap = true;
    with_tlb.mmu.ptw.scheduling = true;

    auto agn = runDivergent(agnostic, 0.5, with_tlb);
    auto awr = runDivergent(aware, 0.5, with_tlb);
    EXPECT_LE(awr.stats.avgPageDivergence,
              agn.stats.avgPageDivergence + 0.01);
    // The aware compactor may form more (narrower) warps.
    EXPECT_GE(awr.dynWarps + 8, agn.dynWarps);
}

TEST(TbcCore, WithTlbSlowerThanWithout)
{
    CoreConfig no_tlb;
    no_tlb.mmu.enabled = false;
    CoreConfig naive;
    naive.mmu.enabled = true;
    auto base = runDivergent(TbcConfig{}, 0.5, no_tlb);
    auto tlb = runDivergent(TbcConfig{}, 0.5, naive);
    EXPECT_GT(tlb.stats.cycles, base.stats.cycles);
}
