/**
 * @file
 * Unit and integration tests for the IOMMU baseline.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "mmu/iommu.hh"

using namespace gpummu;

namespace {

struct IommuFixture : public ::testing::Test
{
    IommuFixture()
        : phys(1 << 20, false), as(phys), mem(MemorySystemConfig{})
    {
        region = as.mmap("d", 64 * kPageSize4K);
    }

    Vpn
    vpn(unsigned page) const
    {
        return (region.base >> kPageShift4K) + page;
    }

    PhysicalMemory phys;
    AddressSpace as;
    MemorySystem mem;
    EventQueue eq;
    VmRegion region;
};

} // namespace

TEST_F(IommuFixture, MissWalksThenHits)
{
    Iommu iommu(IommuConfig{}, as, mem, eq);
    std::uint64_t frame = ~0ULL;
    Cycle when = 0;
    iommu.translate(vpn(3), 0, [&](std::uint64_t f, Cycle c) {
        frame = f;
        when = c;
    });
    eq.runUntil(1'000'000);
    EXPECT_EQ(frame, as.pageTable().translate(vpn(3))->ppn);
    EXPECT_GT(when, IommuConfig{}.lookupLatency);

    // Second translation: TLB hit, synchronous, cheap.
    bool hit_fired = false;
    const Cycle t = eq.now();
    iommu.translate(vpn(3), t, [&](std::uint64_t f, Cycle c) {
        hit_fired = true;
        EXPECT_EQ(f, frame);
        EXPECT_LE(c, t + IommuConfig{}.lookupLatency +
                         IommuConfig{}.lookupInterval);
    });
    EXPECT_TRUE(hit_fired);
}

TEST_F(IommuFixture, ConcurrentWalksToSamePageMerge)
{
    Iommu iommu(IommuConfig{}, as, mem, eq);
    int fires = 0;
    for (int i = 0; i < 3; ++i) {
        iommu.translate(vpn(5), 0,
                        [&](std::uint64_t, Cycle) { ++fires; });
    }
    eq.runUntil(1'000'000);
    EXPECT_EQ(fires, 3);
    EXPECT_EQ(iommu.walkers().walksCompleted(), 1u);
}

TEST_F(IommuFixture, SharedPortSerializesLookups)
{
    IommuConfig cfg;
    cfg.lookupInterval = 10;
    Iommu iommu(cfg, as, mem, eq);
    // Warm two entries.
    iommu.translate(vpn(1), 0, [](std::uint64_t, Cycle) {});
    iommu.translate(vpn(2), 0, [](std::uint64_t, Cycle) {});
    eq.runUntil(1'000'000);
    const Cycle t = eq.now();
    Cycle first = 0, second = 0;
    iommu.translate(vpn(1), t,
                    [&](std::uint64_t, Cycle c) { first = c; });
    iommu.translate(vpn(2), t,
                    [&](std::uint64_t, Cycle c) { second = c; });
    EXPECT_EQ(second - first, cfg.lookupInterval);
}

TEST(IommuSystem, RunsAndDegradesLessThanNaivePerCore)
{
    WorkloadParams p;
    p.scale = 0.04;
    p.seed = 42;
    Experiment exp(p);
    auto shrink = [](SystemConfig cfg) {
        cfg.numCores = 4;
        return cfg;
    };
    const auto base = shrink(presets::noTlb());
    const auto io = shrink(presets::iommu());
    const auto naive = shrink(presets::naiveTlb(4));

    const double s_io =
        exp.speedup(BenchmarkId::Memcached, io, base);
    const double s_naive =
        exp.speedup(BenchmarkId::Memcached, naive, base);
    EXPECT_LT(s_io, 1.0);  // translation is never free
    EXPECT_GT(s_io, 0.05); // and the run completes sanely
    // With a 1024-entry TLB and translation off the L1-hit path, the
    // IOMMU handily beats the naive blocking per-core design here.
    EXPECT_GT(s_io, s_naive);
}

TEST(IommuSystem, Deterministic)
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 9;
    auto cfg = presets::iommu();
    cfg.numCores = 2;
    const auto a = runConfig(BenchmarkId::Bfs, cfg, p);
    const auto b = runConfig(BenchmarkId::Bfs, cfg, p);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
}
