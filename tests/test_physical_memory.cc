/**
 * @file
 * Unit tests for the physical frame allocator.
 */

#include <gtest/gtest.h>

#include <set>

#include "vm/physical_memory.hh"

using namespace gpummu;

TEST(PhysicalMemory, SequentialWithoutScramble)
{
    PhysicalMemory phys(100, /*scramble=*/false);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(phys.allocFrame(), i);
}

class ScrambleTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(ScrambleTest, FramesAreUniqueAndInRange)
{
    const std::uint64_t n = GetParam();
    PhysicalMemory phys(n, /*scramble=*/true);
    std::set<Ppn> seen;
    for (std::uint64_t i = 0; i < n; ++i) {
        const Ppn p = phys.allocFrame();
        ASSERT_LT(p, n);
        ASSERT_TRUE(seen.insert(p).second)
            << "duplicate frame " << p << " at allocation " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ScrambleTest,
                         ::testing::Values(1, 2, 5, 6, 127, 128, 1000,
                                           4096, 10000));

TEST(PhysicalMemory, ScrambleActuallyPermutes)
{
    PhysicalMemory phys(1024, /*scramble=*/true);
    int in_place = 0;
    for (std::uint64_t i = 0; i < 1024; ++i)
        in_place += (phys.allocFrame() == i);
    EXPECT_LT(in_place, 64); // a real permutation moves nearly all
}

TEST(PhysicalMemory, SeedChangesPermutation)
{
    PhysicalMemory a(256, true, 1), b(256, true, 2);
    int same = 0;
    for (int i = 0; i < 256; ++i)
        same += (a.allocFrame() == b.allocFrame());
    EXPECT_LT(same, 32);
}

TEST(PhysicalMemory, LargeFrameIsAligned)
{
    PhysicalMemory phys(1 << 20, /*scramble=*/true);
    phys.allocFrame(); // misalign the bump pointer
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    for (int i = 0; i < 4; ++i) {
        const Ppn base = phys.allocLargeFrame();
        EXPECT_EQ(base % per_large, 0u);
    }
}

TEST(PhysicalMemory, LargeFramesDoNotOverlap)
{
    PhysicalMemory phys(1 << 20, /*scramble=*/true);
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    std::set<Ppn> bases;
    for (int i = 0; i < 8; ++i) {
        const Ppn base = phys.allocLargeFrame();
        EXPECT_TRUE(bases.insert(base / per_large).second);
    }
}

TEST(PhysicalMemoryDeathTest, ExhaustionPanics)
{
    PhysicalMemory phys(2, false);
    phys.allocFrame();
    phys.allocFrame();
    EXPECT_DEATH(phys.allocFrame(), "out of physical memory");
}
