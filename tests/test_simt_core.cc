/**
 * @file
 * Tests for the per-warp-stack shader core running small kernels end
 * to end on one core.
 */

#include <gtest/gtest.h>

#include <memory>

#include "gpu/gpu_top.hh"
#include "gpu/simt_core.hh"
#include "workloads/workload.hh"

using namespace gpummu;

namespace {

/** A tiny synthetic workload with a loop and a divergent branch. */
class TinyWorkload : public Workload
{
  public:
    TinyWorkload(unsigned blocks, unsigned iters, double active_p)
        : Workload(WorkloadParams{}), prog_("tiny"), blocks_(blocks),
          iters_(iters), activeP_(active_p)
    {
    }

    std::string name() const override { return "tiny"; }
    const KernelProgram &program() const override { return prog_; }
    unsigned threadsPerBlock() const override { return 64; }
    unsigned numBlocks() const override { return blocks_; }

    void
    build(AddressSpace &as) override
    {
        region_ = as.mmap("tiny.data", 64 * kPageSize4K);
        const int stream = prog_.addAddrGen([this](ThreadCtx &c) {
            return region_.base +
                   (static_cast<VirtAddr>(c.globalTid) * 4 +
                    c.visits(1) * 256) %
                       region_.bytes;
        });
        const int active = prog_.addCondGen([this](ThreadCtx &c) {
            return c.rng.chance(activeP_);
        });
        const int loop = prog_.addCondGen([this](ThreadCtx &c) {
            return c.visits(1) < iters_;
        });
        const int b0 = prog_.addBlock();
        const int b1 = prog_.addBlock(); // loop head
        const int b2 = prog_.addBlock(); // divergent work
        const int b3 = prog_.addBlock(); // join
        const int b4 = prog_.addBlock(); // exit
        prog_.appendAlu(b0, 1);
        prog_.appendBranch(b0, -1, b1, -1, -1);
        prog_.appendLoad(b1, stream);
        prog_.appendAlu(b1, 2);
        prog_.appendBranch(b1, active, b2, b3, b3);
        prog_.appendAlu(b2, 3);
        prog_.appendStore(b2, stream);
        prog_.appendBranch(b2, -1, b3, -1, -1);
        prog_.appendBranch(b3, loop, b1, b4, b4);
        prog_.appendExit(b4);
    }

  private:
    KernelProgram prog_;
    unsigned blocks_;
    unsigned iters_;
    double activeP_;
    VmRegion region_;
};

RunStats
runTiny(const CoreConfig &core_cfg, unsigned blocks = 4,
        unsigned iters = 6, double active = 0.5,
        unsigned num_cores = 2)
{
    TinyWorkload wl(blocks, iters, active);
    GpuTop gpu(
        num_cores, MemorySystemConfig{}, wl,
        [&core_cfg](int id, const LaunchParams &l, AddressSpace &as,
                    MemorySystem &m,
                    EventQueue &e) -> std::unique_ptr<ShaderCore> {
            return std::make_unique<SimtCore>(id, core_cfg, l, as, m,
                                              e);
        });
    return gpu.run(50'000'000);
}

} // namespace

TEST(SimtCore, RunsToCompletion)
{
    auto stats = runTiny(CoreConfig{});
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.instructions, 0u);
    EXPECT_GT(stats.memInstructions, 0u);
}

TEST(SimtCore, InstructionCountScalesExactlyWithIterations)
{
    // With activity probability 0 the divergent block never runs, so
    // adding one loop iteration adds exactly one pass over b1 (load +
    // 2 alu + branch) and b3's branch per warp: 5 instructions.
    auto four = runTiny(CoreConfig{}, /*blocks=*/2, /*iters=*/4,
                        /*active=*/0.0, /*cores=*/1);
    auto five = runTiny(CoreConfig{}, /*blocks=*/2, /*iters=*/5,
                        /*active=*/0.0, /*cores=*/1);
    const unsigned warps = 2 * (64 / 32);
    EXPECT_EQ(five.instructions - four.instructions, warps * 5u);
}

TEST(SimtCore, FullyActiveBranchNeverDiverges)
{
    auto a = runTiny(CoreConfig{}, 2, 4, 1.0, 1);
    auto b = runTiny(CoreConfig{}, 2, 4, 0.5, 1);
    // With p=1 all threads take the branch together; with p=0.5 the
    // divergent path roughly doubles the executed blocks.
    EXPECT_LT(a.instructions, b.instructions + 16 * 4 * 4);
}

TEST(SimtCore, DeterministicAcrossRuns)
{
    auto a = runTiny(CoreConfig{});
    auto b = runTiny(CoreConfig{});
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.tlbAccesses, b.tlbAccesses);
}

TEST(SimtCore, TlbConfigChangesTiming)
{
    CoreConfig no_tlb;
    no_tlb.mmu.enabled = false;
    CoreConfig blocking;
    blocking.mmu.enabled = true;
    blocking.mmu.hitUnderMiss = false;
    auto base = runTiny(no_tlb);
    auto naive = runTiny(blocking);
    EXPECT_GT(naive.cycles, base.cycles);
    EXPECT_GT(naive.tlbAccesses, 0u);
}

TEST(SimtCore, HitUnderMissBeatsBlockingHere)
{
    CoreConfig blocking;
    blocking.mmu.hitUnderMiss = false;
    CoreConfig hum;
    hum.mmu.hitUnderMiss = true;
    hum.mmu.cacheOverlap = true;
    hum.mmu.ptw.scheduling = true;
    auto b = runTiny(blocking, 8, 10, 0.5, 2);
    auto h = runTiny(hum, 8, 10, 0.5, 2);
    EXPECT_LE(h.cycles, b.cycles);
}

TEST(SimtCore, BlocksDrainAcrossWaves)
{
    // More blocks than can be resident at once (64-thread blocks,
    // 48 warp slots -> 24 resident blocks per core; run 60 on 1 core).
    auto stats = runTiny(CoreConfig{}, /*blocks=*/60, 3, 0.4, 1);
    EXPECT_GT(stats.instructions, 0u);
}
