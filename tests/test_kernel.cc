/**
 * @file
 * Unit tests for the kernel IR builder and ThreadCtx.
 */

#include <gtest/gtest.h>

#include "gpu/kernel.hh"

using namespace gpummu;

namespace {

KernelProgram
tinyProgram()
{
    KernelProgram prog("tiny");
    const int gen = prog.addAddrGen(
        [](ThreadCtx &c) { return 0x1000u + c.globalTid * 4; });
    const int cond =
        prog.addCondGen([](ThreadCtx &c) { return c.visits(0) < 3; });
    const int b0 = prog.addBlock();
    const int b1 = prog.addBlock();
    prog.appendAlu(b0, 2);
    prog.appendLoad(b0, gen);
    prog.appendBranch(b0, cond, b0, b1, b1);
    prog.appendExit(b1);
    return prog;
}

} // namespace

TEST(Kernel, BuilderProducesValidProgram)
{
    auto prog = tinyProgram();
    prog.validate();
    EXPECT_EQ(prog.numBlocks(), 2u);
    EXPECT_EQ(prog.block(0).instrs.size(), 4u);
    EXPECT_EQ(prog.block(0).instrs[0].op, Opcode::Alu);
    EXPECT_EQ(prog.block(0).instrs[2].op, Opcode::Load);
    EXPECT_EQ(prog.block(1).instrs[0].op, Opcode::Exit);
}

TEST(Kernel, GeneratorsEvaluatePerThread)
{
    auto prog = tinyProgram();
    ThreadCtx a(5, 0, 5, 32, 1);
    ThreadCtx b(6, 0, 6, 32, 1);
    EXPECT_EQ(prog.genAddr(0, a), 0x1000u + 20);
    EXPECT_EQ(prog.genAddr(0, b), 0x1000u + 24);
}

TEST(Kernel, UnconditionalBranchIsAlwaysTaken)
{
    KernelProgram prog("u");
    ThreadCtx c(0, 0, 0, 32, 1);
    EXPECT_TRUE(prog.genCond(-1, c));
}

TEST(Kernel, VisitsDriveConditions)
{
    auto prog = tinyProgram();
    ThreadCtx c(0, 0, 0, 32, 1);
    c.blockVisits.assign(prog.numBlocks(), 0);
    c.blockVisits[0] = 2;
    EXPECT_TRUE(prog.genCond(0, c));
    c.blockVisits[0] = 3;
    EXPECT_FALSE(prog.genCond(0, c));
}

TEST(ThreadCtx, IdentityFields)
{
    ThreadCtx c(100, 3, 100 - 3 * 0, 32, 7);
    ThreadCtx d(70, 2, 70, 32, 7);
    EXPECT_EQ(d.laneId, 70 % 32);
    EXPECT_EQ(d.warpInBlock, 70 / 32);
    (void)c;
}

TEST(ThreadCtx, RngStreamsArePerThreadDeterministic)
{
    ThreadCtx a1(9, 0, 9, 32, 5), a2(9, 0, 9, 32, 5);
    ThreadCtx b(10, 0, 10, 32, 5);
    EXPECT_EQ(a1.rng.next(), a2.rng.next());
    ThreadCtx a3(9, 0, 9, 32, 5);
    EXPECT_NE(a3.rng.next(), b.rng.next());
}

TEST(KernelDeathTest, EmptyProgramFailsValidation)
{
    KernelProgram prog("empty");
    EXPECT_DEATH(prog.validate(), "no blocks");
}

TEST(KernelDeathTest, BlockWithoutTerminatorFails)
{
    KernelProgram prog("noterm");
    const int b = prog.addBlock();
    prog.appendAlu(b, 1);
    EXPECT_DEATH(prog.validate(), "branch/exit");
}

TEST(KernelDeathTest, CodeAfterTerminatorFails)
{
    KernelProgram prog("after");
    const int b = prog.addBlock();
    prog.appendExit(b);
    prog.appendAlu(b, 1);
    EXPECT_DEATH(prog.validate(), "after a terminator");
}

TEST(KernelDeathTest, BadBranchTargetFails)
{
    KernelProgram prog("badtarget");
    const int b = prog.addBlock();
    prog.appendBranch(b, -1, 5, -1, -1);
    EXPECT_DEATH(prog.validate(), "taken");
}

TEST(KernelDeathTest, ConditionalWithoutReconvergenceFails)
{
    KernelProgram prog("noreconv");
    const int cond =
        prog.addCondGen([](ThreadCtx &) { return true; });
    const int b = prog.addBlock();
    const int b2 = prog.addBlock();
    prog.appendBranch(b, cond, b2, b2, -1);
    prog.appendExit(b2);
    EXPECT_DEATH(prog.validate(), "reconvergence");
}
