/**
 * @file
 * Unit tests for the CCWS / TA-CCWS / TCWS scheduler machinery:
 * victim tag arrays, lost-locality scoring, throttling dynamics,
 * decay and warp-reset behaviour.
 */

#include <gtest/gtest.h>

#include "mmu/tlb.hh"
#include "sched/ccws.hh"

using namespace gpummu;

namespace {

CcwsConfig
smallCcws()
{
    CcwsConfig cfg;
    cfg.numWarps = 8;
    cfg.vtaEntriesPerWarp = 4;
    cfg.vtaWays = 4;
    cfg.vtaHitScore = 100;
    cfg.scoreCap = 200;
    cfg.cutoff = 250;
    cfg.minAllowed = 2;
    cfg.halfLife = 1000;
    cfg.updateInterval = 1;
    return cfg;
}

/** Evict line for warp w, then miss on it again: one VTA hit. */
void
lostLocalityEvent(Ccws &ccws, int warp, PhysAddr line)
{
    ccws.onL1Eviction(line, warp);
    ccws.onL1Miss(warp, line, /*tlb_missed=*/false);
}

} // namespace

TEST(Ccws, NoThrottlingWithoutLostLocality)
{
    Ccws ccws(smallCcws());
    ccws.tick(0);
    for (int w = 0; w < 8; ++w)
        EXPECT_TRUE(ccws.mayIssueMem(w));
}

TEST(Ccws, MissWithoutPriorEvictionDoesNotScore)
{
    Ccws ccws(smallCcws());
    ccws.onL1Miss(3, 111, false);
    EXPECT_EQ(ccws.score(3), 0u);
}

TEST(Ccws, VtaHitRaisesScore)
{
    Ccws ccws(smallCcws());
    lostLocalityEvent(ccws, 3, 111);
    EXPECT_EQ(ccws.score(3), 100u);
}

TEST(Ccws, VtaIsPerWarp)
{
    Ccws ccws(smallCcws());
    ccws.onL1Eviction(111, /*alloc_warp=*/3);
    // A different warp missing on the same line must not score.
    ccws.onL1Miss(4, 111, false);
    EXPECT_EQ(ccws.score(4), 0u);
}

TEST(Ccws, ScoreSaturatesAtCap)
{
    Ccws ccws(smallCcws());
    for (int i = 0; i < 10; ++i)
        lostLocalityEvent(ccws, 0, 100 + i);
    EXPECT_EQ(ccws.score(0), 200u);
}

TEST(Ccws, ThrottlingKeepsHighScorersEligible)
{
    Ccws ccws(smallCcws());
    // Warps 0 and 1 lose locality heavily; total exceeds the cutoff.
    for (int i = 0; i < 5; ++i) {
        lostLocalityEvent(ccws, 0, 100 + i);
        lostLocalityEvent(ccws, 1, 200 + i);
    }
    ccws.tick(1);
    EXPECT_TRUE(ccws.mayIssueMem(0));
    EXPECT_TRUE(ccws.mayIssueMem(1));
    // At least one cold warp must now be blocked.
    int blocked = 0;
    for (int w = 2; w < 8; ++w)
        blocked += !ccws.mayIssueMem(w);
    EXPECT_GT(blocked, 0);
}

TEST(Ccws, MinAllowedPoolIsGuaranteed)
{
    Ccws ccws(smallCcws());
    for (int w = 0; w < 8; ++w) {
        for (int i = 0; i < 3; ++i)
            lostLocalityEvent(ccws, w, w * 100 + i);
    }
    ccws.tick(1);
    int allowed = 0;
    for (int w = 0; w < 8; ++w)
        allowed += ccws.mayIssueMem(w);
    EXPECT_GE(allowed, 2);
    EXPECT_LT(allowed, 8);
}

TEST(Ccws, ScoresDecayOverTime)
{
    auto cfg = smallCcws();
    Ccws ccws(cfg);
    lostLocalityEvent(ccws, 0, 42);
    EXPECT_EQ(ccws.score(0), 100u);
    ccws.tick(cfg.halfLife);
    EXPECT_EQ(ccws.score(0), 50u);
    ccws.tick(3 * cfg.halfLife);
    EXPECT_LE(ccws.score(0), 13u);
}

TEST(Ccws, ThrottleReleasesAfterDecay)
{
    auto cfg = smallCcws();
    Ccws ccws(cfg);
    for (int i = 0; i < 5; ++i) {
        lostLocalityEvent(ccws, 0, 100 + i);
        lostLocalityEvent(ccws, 1, 200 + i);
    }
    ccws.tick(1);
    int blocked = 0;
    for (int w = 0; w < 8; ++w)
        blocked += !ccws.mayIssueMem(w);
    ASSERT_GT(blocked, 0);
    // Several half-lives later the total falls under the cutoff.
    ccws.tick(10 * cfg.halfLife);
    for (int w = 0; w < 8; ++w)
        EXPECT_TRUE(ccws.mayIssueMem(w));
}

TEST(Ccws, WarpResetDropsScoreAndVta)
{
    Ccws ccws(smallCcws());
    for (int i = 0; i < 5; ++i)
        lostLocalityEvent(ccws, 0, 100 + i);
    ASSERT_GT(ccws.score(0), 0u);
    ccws.onWarpReset(0);
    EXPECT_EQ(ccws.score(0), 0u);
    // Old eviction records are gone: a new miss does not score.
    ccws.onL1Miss(0, 104, false);
    EXPECT_EQ(ccws.score(0), 0u);
}

TEST(TaCcws, TlbMissWeightMultipliesScore)
{
    auto cfg = smallCcws();
    cfg.tlbMissWeight = 4;
    cfg.scoreCap = 10000;
    Ccws ta(cfg);
    ta.onL1Eviction(5, 0);
    ta.onL1Miss(0, 5, /*tlb_missed=*/true);
    EXPECT_EQ(ta.score(0), 400u);
    ta.onL1Eviction(6, 0);
    ta.onL1Miss(0, 6, /*tlb_missed=*/false);
    EXPECT_EQ(ta.score(0), 500u);
    EXPECT_EQ(ta.name(), "ta-ccws");
}

namespace {

TcwsConfig
smallTcws()
{
    TcwsConfig cfg;
    cfg.numWarps = 8;
    cfg.vtaEntriesPerWarp = 4;
    cfg.vtaWays = 4;
    cfg.vtaHitScore = 100;
    cfg.scoreCap = 400;
    cfg.cutoff = 250;
    cfg.minAllowed = 2;
    cfg.halfLife = 1000;
    cfg.updateInterval = 1;
    cfg.lruWeights = {1, 2, 4, 8};
    return cfg;
}

} // namespace

TEST(Tcws, TlbVictimHitScores)
{
    Tcws tcws(smallTcws());
    tcws.onTlbEviction(77, /*alloc_warp=*/2);
    tcws.onTlbMiss(2, 77);
    EXPECT_EQ(tcws.score(2), 100u);
    // Other warps' misses on the page do not score warp 2's VTA.
    tcws.onTlbEviction(78, 2);
    tcws.onTlbMiss(3, 78);
    EXPECT_EQ(tcws.score(3), 0u);
}

TEST(Tcws, LruDepthWeightsScoreHits)
{
    Tcws tcws(smallTcws());
    tcws.onTlbHit(1, 5, 0);
    EXPECT_EQ(tcws.score(1), 1u);
    tcws.onTlbHit(1, 5, 3);
    EXPECT_EQ(tcws.score(1), 9u);
    // Depths beyond 3 clamp to the deepest weight.
    tcws.onTlbHit(1, 5, 7);
    EXPECT_EQ(tcws.score(1), 17u);
}

TEST(Tcws, ZeroWeightsDisableHitScoring)
{
    auto cfg = smallTcws();
    cfg.lruWeights = {0, 0, 0, 0};
    Tcws tcws(cfg);
    tcws.onTlbHit(1, 5, 3);
    EXPECT_EQ(tcws.score(1), 0u);
}

TEST(Tcws, ThrottlesLikeCcws)
{
    Tcws tcws(smallTcws());
    for (int i = 0; i < 4; ++i) {
        tcws.onTlbEviction(100 + i, 0);
        tcws.onTlbMiss(0, 100 + i);
        tcws.onTlbEviction(200 + i, 1);
        tcws.onTlbMiss(1, 200 + i);
    }
    tcws.tick(1);
    EXPECT_TRUE(tcws.mayIssueMem(0));
    EXPECT_TRUE(tcws.mayIssueMem(1));
    int blocked = 0;
    for (int w = 2; w < 8; ++w)
        blocked += !tcws.mayIssueMem(w);
    EXPECT_GT(blocked, 0);
}

TEST(Tcws, ShootdownFlushFeedsVictimTagArray)
{
    // Wire a real TLB's eviction listener to TCWS and flush it: every
    // flushed entry must land in its allocating warp's VTA so a
    // post-shootdown re-miss scores as lost locality, exactly like a
    // capacity eviction would.
    Tcws tcws(smallTcws());
    TlbConfig tcfg;
    tcfg.entries = 8;
    tcfg.ways = 4;
    Tlb tlb(tcfg);
    tlb.setEvictionListener(
        [&](Vpn v, int w) { tcws.onTlbEviction(v, w); });
    tlb.fill(50, Translation{1, false}, /*alloc_warp=*/2);
    tlb.fill(51, Translation{2, false}, /*alloc_warp=*/3);
    tlb.flush();
    tcws.onTlbMiss(2, 50);
    tcws.onTlbMiss(3, 51);
    EXPECT_EQ(tcws.score(2), 100u);
    EXPECT_EQ(tcws.score(3), 100u);
}

TEST(Tcws, WarpResetClearsState)
{
    Tcws tcws(smallTcws());
    tcws.onTlbEviction(9, 4);
    tcws.onTlbMiss(4, 9);
    ASSERT_GT(tcws.score(4), 0u);
    tcws.onWarpReset(4);
    EXPECT_EQ(tcws.score(4), 0u);
}

TEST(Schedulers, RoundRobinCyclesFairly)
{
    LooseRoundRobin rr(4);
    std::vector<int> all = {0, 1, 2, 3};
    std::vector<int> picks;
    for (int i = 0; i < 8; ++i)
        picks.push_back(rr.pick(0, all));
    // Loose round robin starts after slot 0 (the reset value).
    EXPECT_EQ(picks, (std::vector<int>{1, 2, 3, 0, 1, 2, 3, 0}));
}

TEST(Schedulers, RoundRobinSkipsMissing)
{
    LooseRoundRobin rr(4);
    EXPECT_EQ(rr.pick(0, {2, 3}), 2); // first after slot 0
    EXPECT_EQ(rr.pick(0, {1, 3}), 3); // first after slot 2
    EXPECT_EQ(rr.pick(0, {0, 1}), 0); // wraps past 3
}

TEST(Schedulers, GreedyThenOldestSticksToGreedyWarp)
{
    GreedyThenOldest gto;
    EXPECT_EQ(gto.pick(0, {2, 5, 7}), 2); // oldest
    EXPECT_EQ(gto.pick(0, {5, 2, 7}), 2); // sticks
    EXPECT_EQ(gto.pick(0, {5, 7}), 5);    // greedy gone: oldest
    EXPECT_EQ(gto.pick(0, {7, 5}), 5);    // sticks again
}
