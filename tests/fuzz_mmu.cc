/**
 * @file
 * Property-based fuzz harness for the MMU timing stack.
 *
 * Each seed deterministically derives three phases of checking:
 *
 *  1. Functional differential fuzz: a page table with random mixed
 *     2MB/4KB mappings is translated VPN by VPN through both
 *     PageTable::translate/walk and the independent RefTranslator,
 *     including unmapped, guard and edge-of-address-space VPNs.
 *  2. Directed MMU fuzz: a randomly configured Mmu (TLB geometry,
 *     walker pool, non-blocking policy, page size) services synthetic
 *     warp batches, including set-conflict stress streams; every
 *     retired translation (hit or walk) is compared against the
 *     reference, with the invariant checker armed throughout and
 *     end-of-kernel drain checks at the end.
 *  3. Multi-process lifecycle fuzz: 2-4 demand-paged processes with
 *     overlapping virtual ranges share one armed IOMMU; translates,
 *     minor faults, partial unmaps with shootdowns and process
 *     destruction interleave, with every completion differentially
 *     verified against the owning process's page table.
 *  4. Full-stack fuzz: one small benchmark run through the whole GPU
 *     (cores, schedulers, caches, per-core MMUs or the shared IOMMU)
 *     at a random design point with SystemConfig::checkInvariants on.
 *
 * Any violation panics; the SIGABRT hook prints the reproducing
 * (seed, config) tuple first, and the per-seed driver catches any
 * C++ exception that escapes a phase (std::bad_alloc, stoull range
 * errors, library throws) and prints the same tuple before rethrowing,
 * so a CI failure is always replayed with:
 *     ./build/tests/fuzz_mmu --start-seed=<seed> --seeds=1
 *
 * Run from ctest as a small tier-2 smoke (see tests/CMakeLists.txt);
 * CI runs it under ASan/UBSan with --seeds=200.
 */

#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "check/ref_translator.hh"
#include "core/presets.hh"
#include "core/sweep.hh"
#include "mmu/iommu.hh"
#include "mmu/mmu.hh"
#include "sim/rng.hh"
#include "vm/address_space.hh"
#include "vm/process.hh"

using namespace gpummu;

namespace {

/** The reproducing (seed, config) tuple, emitted on any abort. */
std::string g_ctx;

void
abortHandler(int)
{
    if (!g_ctx.empty()) {
        // Async-signal-safe: plain write of the prepared buffer.
        [[maybe_unused]] auto n =
            write(2, g_ctx.data(), g_ctx.size());
    }
    _exit(134);
}

void
setContext(std::uint64_t seed, const std::string &what)
{
    g_ctx = "\nfuzz_mmu FAILURE: reproduce with --start-seed=" +
            std::to_string(seed) + " --seeds=1\n  failing phase: " +
            what + "\n";
}

[[noreturn]] void
fail(const std::string &msg)
{
    std::cerr << "fuzz_mmu: " << msg << "\n";
    std::abort();
}

std::string
describeMmu(const MmuConfig &m, bool large)
{
    std::ostringstream os;
    os << "tlb{e=" << m.tlb.entries << ",w=" << m.tlb.ways
       << ",p=" << m.tlb.ports << ",h=" << m.tlb.historyLength
       << "} ptw{n=" << m.ptw.numWalkers
       << ",sched=" << m.ptw.scheduling << ",pwc=" << m.ptw.pwcLines
       << "/" << m.ptw.pwcWays << ",port=" << m.ptw.portInterval
       << "} hum=" << m.hitUnderMiss << " overlap=" << m.cacheOverlap
       << " mshrs=" << m.mshrs << " large=" << large;
    return os.str();
}

TlbConfig
randomTlb(Rng &rng)
{
    TlbConfig t;
    const std::size_t entries_pool[] = {8, 16, 32, 64, 128};
    t.entries = entries_pool[rng.below(5)];
    const std::size_t ways_pool[] = {1, 2, 4, 8};
    do {
        t.ways = ways_pool[rng.below(4)];
    } while (t.ways > t.entries);
    t.ports = static_cast<unsigned>(rng.range(1, 4));
    t.historyLength = static_cast<unsigned>(rng.range(0, 4));
    return t;
}

PtwConfig
randomPtw(Rng &rng)
{
    PtwConfig p;
    const unsigned walkers_pool[] = {1, 2, 4, 8};
    p.numWalkers = walkers_pool[rng.below(4)];
    p.scheduling = rng.chance(0.5);
    const std::size_t pwc_pool[] = {0, 8, 16, 32};
    p.pwcLines = pwc_pool[rng.below(4)];
    if (p.pwcLines > 0) {
        const std::size_t ways_pool[] = {1, 2, 4, 8};
        do {
            p.pwcWays = ways_pool[rng.below(4)];
        } while (p.pwcWays > p.pwcLines);
    }
    p.portInterval = rng.range(1, 4);
    return p;
}

L2TlbConfig
randomL2Tlb(Rng &rng)
{
    L2TlbConfig l2;
    l2.enabled = true;
    const std::size_t entries_pool[] = {256, 512, 1024, 2048};
    l2.entries = entries_pool[rng.below(4)];
    const std::size_t ways_pool[] = {2, 4, 8};
    l2.ways = ways_pool[rng.below(3)];
    l2.ports = static_cast<unsigned>(rng.range(1, 4));
    const unsigned mshrs_pool[] = {1, 4, 16, 32};
    l2.mshrs = mshrs_pool[rng.below(4)];
    l2.hitLatency = rng.range(2, 16);
    l2.lookupInterval = rng.range(1, 4);
    return l2;
}

std::string
describeL2Tlb(const L2TlbConfig &l2)
{
    if (!l2.enabled)
        return " l2tlb=off";
    std::ostringstream os;
    os << " l2tlb{e=" << l2.entries << ",w=" << l2.ways
       << ",p=" << l2.ports << ",mshrs=" << l2.mshrs
       << ",lat=" << l2.hitLatency << "/" << l2.lookupInterval << "}";
    return os.str();
}

MmuConfig
randomMmu(Rng &rng)
{
    MmuConfig m;
    m.tlb = randomTlb(rng);
    m.ptw = randomPtw(rng);
    m.hitUnderMiss = rng.chance(0.6);
    m.cacheOverlap = m.hitUnderMiss && rng.chance(0.5);
    m.mshrs = static_cast<unsigned>(rng.range(8, 64));
    m.checkInvariants = true;
    return m;
}

/**
 * Phase 1: random mixed 2MB/4KB page table, differentially translated
 * through the reference walker and the table's own functional path.
 */
void
fuzzFunctional(std::uint64_t seed, Rng &rng)
{
    setContext(seed, "functional differential (mixed 2MB/4KB table)");
    PhysicalMemory phys(1ULL << 20, rng.chance(0.5),
                        splitMix64(seed));
    PageTable pt(phys);

    // Mixed mappings over 2MB tags [0, 256): a tag is either backed
    // large, sprinkled with 4KB pages, or left unmapped.
    std::map<std::uint64_t, Ppn> large_tags;
    std::map<Vpn, Ppn> small_vpns;
    const unsigned n_large = static_cast<unsigned>(rng.range(1, 6));
    const unsigned n_small = static_cast<unsigned>(rng.range(1, 40));
    for (unsigned i = 0; i < n_large; ++i) {
        const std::uint64_t tag = rng.below(256);
        if (large_tags.count(tag))
            continue;
        const Ppn base = phys.allocLargeFrame();
        pt.map2M(tag, base);
        large_tags[tag] = base;
    }
    for (unsigned i = 0; i < n_small; ++i) {
        const Vpn vpn = rng.below(256ULL << 9);
        if (large_tags.count(vpn >> 9) || small_vpns.count(vpn))
            continue;
        const Ppn ppn = phys.allocFrame();
        pt.map4K(vpn, ppn);
        small_vpns[vpn] = ppn;
    }

    RefTranslator ref(pt);

    // Every small mapping: translation and the full per-level trace.
    for (const auto &[vpn, ppn] : small_vpns) {
        auto t = ref.translate(vpn);
        if (!t || t->isLarge || t->ppn != ppn)
            fail("4KB mapping mismatch at vpn " + std::to_string(vpn));
        const WalkPath path = pt.walk(vpn);
        auto w = ref.walk(vpn);
        if (path.levels != w->levels)
            fail("walk depth mismatch at vpn " + std::to_string(vpn));
        for (unsigned l = 0; l < path.levels; ++l)
            if (path.entryAddrs[l] != w->entryAddrs[l])
                fail("walk trace mismatch at vpn " +
                     std::to_string(vpn) + " level " +
                     std::to_string(l));
    }
    // Every large mapping at random in-region offsets.
    for (const auto &[tag, base] : large_tags) {
        for (int i = 0; i < 8; ++i) {
            const std::uint64_t off = rng.below(512);
            auto t = ref.translate((tag << 9) | off);
            if (!t || !t->isLarge || t->ppn != base + off)
                fail("2MB mapping mismatch at tag " +
                     std::to_string(tag));
        }
        auto fb = ref.frameBase(tag, kPageShift2M);
        if (!fb || *fb != base >> 9)
            fail("2MB frameBase mismatch at tag " +
                 std::to_string(tag));
    }
    // Random probes across the whole space, plus the edges: mapped
    // and unmapped VPNs must agree optional-for-optional.
    std::vector<Vpn> probes = {0, 1, (1ULL << 36) - 1,
                               (256ULL << 9), (256ULL << 9) - 1};
    for (int i = 0; i < 64; ++i)
        probes.push_back(rng.below(1ULL << 36));
    for (Vpn vpn : probes) {
        auto a = pt.translate(vpn);
        auto b = ref.translate(vpn);
        if (a.has_value() != b.has_value())
            fail("mapped-ness disagreement at vpn " +
                 std::to_string(vpn));
        if (a && (a->ppn != b->ppn || a->isLarge != b->isLarge))
            fail("translation disagreement at vpn " +
                 std::to_string(vpn));
    }
}

/**
 * Phase 2: drive a randomly configured Mmu with synthetic warp
 * batches the way the memory stage does, checker armed, and
 * differentially verify every retired translation ourselves.
 */
void
fuzzMmuDirect(std::uint64_t seed, Rng &rng)
{
    const bool large = rng.chance(0.25);
    MmuConfig mcfg = randomMmu(rng);
    setContext(seed, "directed MMU fuzz: " + describeMmu(mcfg, large));

    PhysicalMemory phys(1ULL << 20, true, splitMix64(seed ^ 1));
    AddressSpace as(phys, large);
    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;

    // A few data regions plus one sized for set-conflict stress.
    const std::size_t num_sets = mcfg.tlb.entries / mcfg.tlb.ways;
    const unsigned page_shift = large ? kPageShift2M : kPageShift4K;
    const std::uint64_t page = 1ULL << page_shift;
    as.mmap("a", rng.range(2, 24) * kPageSize4K);
    as.mmap("b", rng.range(1, 8) * page);
    const VmRegion conflict =
        as.mmap("conflict", (mcfg.tlb.ways + 4) * num_sets * page);

    Mmu mmu(mcfg, as, mem, eq);
    RefTranslator ref(as.pageTable());

    // Tag pool at translation granularity.
    std::vector<Vpn> pool;
    for (const VmRegion &r : as.regions()) {
        for (Vpn t = r.base >> page_shift;
             t <= (r.end() - 1) >> page_shift; ++t)
            pool.push_back(t);
    }
    const Vpn conflict_lo = conflict.base >> page_shift;
    const Vpn conflict_hi = (conflict.end() - 1) >> page_shift;

    const unsigned ops = static_cast<unsigned>(rng.range(60, 160));
    const unsigned max_lanes = static_cast<unsigned>(
        std::min<std::uint64_t>(mcfg.mshrs, 8));
    std::uint64_t walks_issued = 0, walks_done = 0, hits_checked = 0;
    Cycle now = 0;
    const Cycle deadline = 80'000'000;

    auto check_frame = [&](Vpn tag, std::uint64_t frame,
                           const char *site) {
        auto expect = ref.frameBase(tag, page_shift);
        if (!expect)
            fail(std::string(site) + ": timing translated unmapped "
                                     "tag " +
                 std::to_string(tag));
        if (*expect != frame)
            fail(std::string(site) + ": tag " + std::to_string(tag) +
                 " timing frame " + std::to_string(frame) +
                 " != reference " + std::to_string(*expect));
    };

    for (unsigned op = 0; op < ops;) {
        eq.runUntil(now);
        if (now > deadline)
            fail("no forward progress (deadlock?) after " +
                 std::to_string(op) + " ops");
        if (!mmu.memAvailable()) {
            ++now; // blocking TLB draining a miss
            continue;
        }

        // Pick a batch: usually clustered random tags, sometimes a
        // same-set conflict stream.
        std::vector<Vpn> batch;
        const unsigned lanes =
            static_cast<unsigned>(rng.range(1, max_lanes));
        if (rng.chance(0.3)) {
            const Vpn base = conflict_lo + rng.below(num_sets);
            for (Vpn t = base; t <= conflict_hi && batch.size() < lanes;
                 t += num_sets)
                batch.push_back(t);
        } else {
            std::set<Vpn> uniq;
            while (uniq.size() < lanes)
                uniq.insert(pool[rng.below(pool.size())]);
            batch.assign(uniq.begin(), uniq.end());
        }

        const int warp = static_cast<int>(rng.below(16));
        auto res = mmu.lookupBatch(batch, warp);
        std::vector<Vpn> misses;
        for (const auto &vl : res.lookups) {
            if (vl.hit) {
                check_frame(vl.vpn, vl.frameBase, "TLB hit");
                ++hits_checked;
            } else {
                misses.push_back(vl.vpn);
            }
        }
        if (!misses.empty()) {
            if (!mmu.canStartMisses(misses.size())) {
                ++now; // bounced: walks outstanding, retry later
                continue;
            }
            walks_issued += misses.size();
            mmu.requestWalks(
                misses, warp, now,
                [&](Vpn tag, std::uint64_t frame, Cycle) {
                    check_frame(tag, frame, "walk completion");
                    ++walks_done;
                });
        }
        now += 1 + res.extraCycles;
        ++op;
    }

    eq.runUntil(now + 10'000'000);
    if (walks_done != walks_issued)
        fail("walk conservation: issued " +
             std::to_string(walks_issued) + ", completed " +
             std::to_string(walks_done));
    mmu.checkEndOfKernel();
    const InvariantChecker *chk = mmu.checker();
    if (chk == nullptr || chk->fillsChecked() == 0)
        fail("checker armed but saw no fills");
    if (chk->hitsChecked() != hits_checked)
        fail("checker hit count diverged from driver");
}

/**
 * Phase 3: one small full-system run (cores, scheduler, caches, MMU
 * or IOMMU) at a random design point with the checker armed.
 */
void
fuzzFullStack(std::uint64_t seed, Rng &rng)
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.core.mmu.tlb = randomTlb(rng);
    cfg.core.mmu.ptw = randomPtw(rng);
    cfg.core.mmu.hitUnderMiss = rng.chance(0.7);
    cfg.core.mmu.cacheOverlap =
        cfg.core.mmu.hitUnderMiss && rng.chance(0.5);
    // Each SIMT instruction can miss on up to warp-size pages.
    cfg.core.mmu.mshrs = 32;

    const double mode = rng.uniform();
    std::string mode_name = "mmu";
    if (mode < 0.15) {
        cfg = presets::iommu();
        cfg.iommuCfg.tlb = randomTlb(rng);
        cfg.iommuCfg.ptw = randomPtw(rng);
        mode_name = "iommu";
    } else if (mode < 0.30) {
        cfg = presets::withLargePages(cfg);
        mode_name = "large";
    } else if (mode < 0.40) {
        cfg = presets::ccws(cfg);
        mode_name = "ccws";
    } else if (mode < 0.50) {
        cfg = presets::tbc(cfg);
        mode_name = "tbc";
    }
    // The shared L2 TLB rides along with any per-core-MMU mode (it
    // has no attachment point behind the IOMMU).
    if (mode_name != "iommu" && rng.chance(0.4))
        cfg.l2tlb = randomL2Tlb(rng);
    cfg.checkInvariants = true;
    cfg.numCores = static_cast<unsigned>(rng.range(1, 2));

    WorkloadParams params;
    params.scale = 0.03 + 0.03 * rng.uniform();
    params.seed = rng.next();
    const auto benches = allBenchmarks();
    const BenchmarkId bench = benches[rng.below(benches.size())];

    setContext(seed, "full-stack fuzz: bench=" +
                         std::string(benchmarkName(bench)) +
                         " mode=" + mode_name + " cores=" +
                         std::to_string(cfg.numCores) + " " +
                         describeMmu(cfg.core.mmu, cfg.largePages) +
                         describeL2Tlb(cfg.l2tlb) +
                         " wseed=" + std::to_string(params.seed));
    const RunOutput out = runConfigFull(bench, cfg, params);
    if (out.stats.cycles == 0)
        fail("full-stack run retired no cycles");
}

/**
 * Phase 4: multi-process lifecycle fuzz. 2-4 demand-paged processes
 * with overlapping virtual ranges share one armed IOMMU; random
 * translates (minor faults included), direct fault-ins, partial
 * unmaps with shootdowns, and process destruction interleave. Every
 * completed translation is differentially checked against the owning
 * process's page table, the armed checker cross-checks every fill
 * against the per-ASID reference walkers, and survivors' entries must
 * outlive their neighbours' shootdowns.
 */
void
fuzzMultiProcess(std::uint64_t seed, Rng &rng)
{
    const unsigned nproc = 2 + static_cast<unsigned>(rng.below(3));
    OsConfig os;
    os.switchPenalty = rng.range(0, 4000);
    os.faultLatency = rng.range(100, 8000);
    os.shootdownBase = rng.range(0, 1000);
    os.shootdownPerEntry = rng.range(1, 16);
    setContext(seed, "multi-process fuzz: procs=" +
                         std::to_string(nproc) + " faultLat=" +
                         std::to_string(os.faultLatency) +
                         " shoot=" + std::to_string(os.shootdownBase) +
                         "+" + std::to_string(os.shootdownPerEntry) +
                         "/entry");

    PhysicalMemory phys(1ULL << 20, rng.chance(0.5),
                        splitMix64(seed ^ 2));
    ProcessManager pm(phys, os);
    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;

    struct Proc
    {
        Process *p;
        std::vector<VmRegion> regions;
        bool alive = true;
    };
    std::vector<Proc> procs;
    for (unsigned i = 0; i < nproc; ++i) {
        Process &p = pm.create(std::string("p") + std::to_string(i),
                               false, /*lazy=*/true);
        Proc entry{&p, {}, true};
        const unsigned nregions = 1 + static_cast<unsigned>(rng.below(2));
        for (unsigned r = 0; r < nregions; ++r)
            entry.regions.push_back(p.as.mmap(
                std::string("r") + std::to_string(r),
                rng.range(4, 96) * kPageSize4K));
        procs.push_back(std::move(entry));
    }

    IommuConfig icfg;
    icfg.tlb = randomTlb(rng);
    icfg.ptw = randomPtw(rng);
    icfg.checkInvariants = true;
    Iommu iommu(icfg, procs.front().p->as, mem, eq);
    iommu.attachProcesses(&pm);
    pm.addTlbTarget(&iommu.tlb(), kPageShift4K);
    pm.addWalkerTarget(&iommu.walkers());

    auto randomVpn = [&rng](const Proc &pr) {
        const VmRegion &r = pr.regions[rng.below(pr.regions.size())];
        return (r.base >> kPageShift4K) +
               rng.below(r.bytes >> kPageShift4K);
    };
    auto alive = [&procs, &rng]() -> Proc & {
        for (;;) {
            Proc &pr = procs[rng.below(procs.size())];
            if (pr.alive && !pr.regions.empty())
                return pr;
        }
    };

    Cycle now = 0;
    std::uint64_t issued = 0, completed = 0;
    // Drain every in-flight walk and fault retry; unmaps must never
    // race a walk that already snapshotted its page-table path.
    auto drain = [&]() {
        now += os.faultLatency + 200'000;
        eq.runUntil(now);
    };

    const unsigned ops = static_cast<unsigned>(rng.range(80, 240));
    for (unsigned op = 0; op < ops; ++op) {
        const double dice = rng.uniform();
        if (dice < 0.70) {
            // Translate: either faults in (reserved, unmapped) or
            // walks/hits. At completion the page must be mapped and
            // the frame must match the owner's table - never a
            // neighbour's, however the VPNs overlap.
            Proc &pr = alive();
            const Vpn vpn = randomVpn(pr);
            const Asid asid = pr.p->asid;
            const AddressSpace *as = &pr.p->as;
            ++issued;
            iommu.translate(
                asidKey(asid, vpn), now,
                [&completed, as, vpn, asid](std::uint64_t frame,
                                            Cycle) {
                    auto t = as->pageTable().translate(vpn);
                    if (!t)
                        fail("ASID " + std::to_string(asid) +
                             " completion on unmapped vpn " +
                             std::to_string(vpn));
                    if (t->ppn != frame)
                        fail("ASID " + std::to_string(asid) + " vpn " +
                             std::to_string(vpn) + " frame " +
                             std::to_string(frame) + " != table " +
                             std::to_string(t->ppn));
                    ++completed;
                });
            now += rng.range(1, 50);
            eq.runUntil(now);
        } else if (dice < 0.80) {
            // OS-side fault-in with no translation in flight for it.
            Proc &pr = alive();
            pr.p->as.faultIn(randomVpn(pr));
        } else if (dice < 0.90) {
            // Partial unmap + shootdown of a small aligned subrange.
            drain();
            Proc &pr = alive();
            const VmRegion &r =
                pr.regions[rng.below(pr.regions.size())];
            const std::uint64_t pages = r.bytes >> kPageShift4K;
            const std::uint64_t lo = rng.below(pages);
            const std::uint64_t len =
                1 + rng.below(std::min<std::uint64_t>(8, pages - lo));
            pr.p->as.munmapRange(r.base + lo * kPageSize4K,
                                 len * kPageSize4K);
            const Vpn vlo = (r.base >> kPageShift4K) + lo;
            now = pm.shootdown(pr.p->asid, vlo, vlo + len, now);
            for (Vpn v = vlo; v < vlo + len; ++v) {
                if (iommu.tlb().probe(asidKey(pr.p->asid, v)))
                    fail("shootdown left ASID " +
                         std::to_string(pr.p->asid) + " vpn " +
                         std::to_string(v) + " in the IOMMU TLB");
            }
        } else if (dice < 0.95 && procs.size() > 2) {
            // Destroy one process outright; survivors keep running.
            drain();
            std::vector<std::size_t> alive_idx;
            for (std::size_t i = 0; i < procs.size(); ++i)
                if (procs[i].alive)
                    alive_idx.push_back(i);
            if (alive_idx.size() > 2) {
                Proc &pr =
                    procs[alive_idx[rng.below(alive_idx.size())]];
                now = pm.destroy(pr.p->asid, now);
                pr.alive = false;
                if (!pr.p->as.regions().empty())
                    fail("destroy left regions behind");
            }
        } else {
            drain();
        }
    }

    drain();
    if (completed != issued)
        fail("translate conservation: issued " +
             std::to_string(issued) + ", completed " +
             std::to_string(completed));
    iommu.checkEndOfKernel();
    const InvariantChecker *chk = iommu.checker();
    if (chk == nullptr || chk->fillsChecked() == 0)
        fail("armed multi-process run saw no checked fills");

    // Survivors' residency outlives every neighbour's teardown: one
    // last translate per live process must still verify.
    for (Proc &pr : procs) {
        if (!pr.alive)
            continue;
        const Vpn vpn = randomVpn(pr);
        const AddressSpace *as = &pr.p->as;
        bool done = false;
        iommu.translate(asidKey(pr.p->asid, vpn), now,
                        [&done, as, vpn](std::uint64_t frame, Cycle) {
                            auto t = as->pageTable().translate(vpn);
                            if (!t || t->ppn != frame)
                                fail(std::string("post-teardown "
                                                 "verify failed at "
                                                 "vpn ") +
                                     std::to_string(vpn));
                            done = true;
                        });
        drain();
        if (!done)
            fail("post-teardown translate never completed");
    }

    // Full teardown balances the books.
    for (Proc &pr : procs)
        if (pr.alive)
            now = pm.destroy(pr.p->asid, now);
    if (pm.shootdowns() == 0 || pm.faults() == 0)
        fail("lifecycle fuzz exercised no shootdowns or faults");
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seeds = 10;
    std::uint64_t start_seed = 0;
    bool functional_only = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--seeds=", 0) == 0) {
            seeds = std::stoull(arg.substr(8));
        } else if (arg.rfind("--start-seed=", 0) == 0) {
            start_seed = std::stoull(arg.substr(13));
        } else if (arg == "--functional-only") {
            functional_only = true;
        } else {
            std::cerr << "usage: fuzz_mmu [--seeds=N] "
                         "[--start-seed=K] [--functional-only]\n";
            return 2;
        }
    }
    std::signal(SIGABRT, abortHandler);

    for (std::uint64_t s = start_seed; s < start_seed + seeds; ++s) {
        // The SIGABRT hook only fires for abort(); exceptions that
        // escape a phase (bad_alloc, library throws) would otherwise
        // terminate without naming the seed. Print the same repro
        // tuple here and rethrow so the exit status still reflects
        // the failure.
        try {
            Rng rng(splitMix64(s));
            fuzzFunctional(s, rng);
            if (!functional_only) {
                fuzzMmuDirect(s, rng);
                fuzzMultiProcess(s, rng);
                fuzzFullStack(s, rng);
            }
        } catch (const std::exception &e) {
            std::cerr << g_ctx
                      << "  escaped exception: " << e.what() << "\n";
            throw;
        } catch (...) {
            std::cerr << g_ctx << "  escaped non-std exception\n";
            throw;
        }
        if ((s - start_seed + 1) % 25 == 0 ||
            s + 1 == start_seed + seeds) {
            std::cout << "fuzz_mmu: " << (s - start_seed + 1) << "/"
                      << seeds << " seeds clean\n";
        }
    }
    std::cout << "fuzz_mmu: all " << seeds << " seeds passed ("
              << (functional_only ? "functional only"
                                  : "functional + directed + "
                                    "multi-process + full-stack")
              << ")\n";
    return 0;
}
