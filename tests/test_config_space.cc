/**
 * @file
 * Property sweep over the MMU configuration space: every sensible
 * combination of the paper's design knobs must run a small workload
 * to completion, deterministically, and never beat the no-TLB
 * baseline (translation is never free).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/experiment.hh"
#include "core/presets.hh"

using namespace gpummu;

namespace {

struct Knobs
{
    std::size_t entries;
    unsigned ports;
    bool hum;
    bool overlap;
    bool sched;
    unsigned walkers;
};

std::string
knobName(const Knobs &k)
{
    return "e" + std::to_string(k.entries) + "p" +
           std::to_string(k.ports) + (k.hum ? "H" : "") +
           (k.overlap ? "O" : "") + (k.sched ? "S" : "") + "w" +
           std::to_string(k.walkers);
}

} // namespace

class MmuConfigSpace : public ::testing::TestWithParam<Knobs>
{
};

TEST_P(MmuConfigSpace, RunsToCompletionAndNeverBeatsMagic)
{
    const Knobs k = GetParam();
    WorkloadParams p;
    p.scale = 0.02;
    p.seed = 5;

    SystemConfig cfg = presets::naiveTlb(k.ports);
    cfg.name = "sweep-" + knobName(k);
    cfg.numCores = 2;
    cfg.core.mmu.tlb.entries = k.entries;
    cfg.core.mmu.hitUnderMiss = k.hum;
    cfg.core.mmu.cacheOverlap = k.overlap;
    cfg.core.mmu.ptw.scheduling = k.sched;
    cfg.core.mmu.ptw.numWalkers = k.walkers;

    SystemConfig base = presets::noTlb();
    base.numCores = 2;

    const RunStats b = runConfig(BenchmarkId::Memcached, base, p);
    const RunStats s = runConfig(BenchmarkId::Memcached, cfg, p);
    ASSERT_GT(s.cycles, 0u);
    // Same amount of work regardless of the MMU design.
    EXPECT_EQ(s.instructions, b.instructions);
    // Address translation can only cost cycles (small tolerance for
    // contention-model perturbation).
    EXPECT_GE(s.cycles * 100, b.cycles * 95) << cfg.name;
    // And the run is deterministic.
    const RunStats again = runConfig(BenchmarkId::Memcached, cfg, p);
    EXPECT_EQ(s.cycles, again.cycles) << cfg.name;
}

INSTANTIATE_TEST_SUITE_P(
    DesignPoints, MmuConfigSpace,
    ::testing::Values(
        Knobs{64, 3, false, false, false, 1},
        Knobs{128, 4, false, false, false, 1},
        Knobs{128, 4, true, false, false, 1},
        Knobs{128, 4, true, true, false, 1},
        Knobs{128, 4, true, true, true, 1},
        Knobs{128, 4, false, false, false, 4},
        Knobs{256, 8, true, true, true, 1},
        Knobs{512, 32, true, true, true, 1},
        Knobs{64, 1, false, false, false, 1},
        Knobs{128, 32, true, false, true, 1}),
    [](const ::testing::TestParamInfo<Knobs> &info) {
        return knobName(info.param);
    });

TEST(ConfigSpace, LargePagesComposeWithEveryMmuMode)
{
    WorkloadParams p;
    p.scale = 0.02;
    p.seed = 5;
    for (SystemConfig cfg :
         {presets::withLargePages(presets::naiveTlb(4)),
          presets::withLargePages(presets::augmentedTlb()),
          presets::withLargePages(presets::idealTlb())}) {
        cfg.numCores = 2;
        const RunStats s = runConfig(BenchmarkId::Bfs, cfg, p);
        EXPECT_GT(s.cycles, 0u) << cfg.name;
        EXPECT_GT(s.tlbAccesses, 0u) << cfg.name;
        // 2MB granularity collapses page divergence.
        EXPECT_LT(s.avgPageDivergence, 3.0) << cfg.name;
    }
}
