/**
 * @file
 * Unit tests for the per-core MMU facade.
 */

#include <gtest/gtest.h>

#include "mmu/mmu.hh"
#include "sim/event_queue.hh"

using namespace gpummu;

namespace {

struct MmuFixture : public ::testing::Test
{
    MmuFixture()
        : phys(1 << 20, false), as(phys), mem(MemorySystemConfig{})
    {
        region = as.mmap("data", 64 * kPageSize4K);
    }

    Mmu
    make(MmuConfig cfg = MmuConfig{})
    {
        return Mmu(cfg, as, mem, eq);
    }

    Vpn
    vpn(unsigned page) const
    {
        return (region.base >> kPageShift4K) + page;
    }

    PhysicalMemory phys;
    AddressSpace as;
    MemorySystem mem;
    EventQueue eq;
    VmRegion region;
};

} // namespace

TEST_F(MmuFixture, MagicTranslateMatchesPageTable)
{
    auto mmu = make();
    const VirtAddr va = region.base + 5 * kPageSize4K + 123;
    const PhysAddr pa = mmu.magicTranslate(va);
    const Ppn ppn = as.pageTable().translate(va >> 12)->ppn;
    EXPECT_EQ(pa, (ppn << 12) | 123u);
}

TEST_F(MmuFixture, LookupBatchReportsMissesAndPortCost)
{
    MmuConfig cfg;
    cfg.tlb.ports = 2;
    auto mmu = make(cfg);
    auto res = mmu.lookupBatch({vpn(0), vpn(1), vpn(2)}, 0);
    EXPECT_FALSE(res.allHit);
    EXPECT_EQ(res.lookups.size(), 3u);
    // 3 VPNs over 2 ports: one extra cycle beyond the free slot.
    EXPECT_EQ(res.extraCycles, 1u);
}

TEST_F(MmuFixture, OversizedTlbPaysCactiPenalty)
{
    MmuConfig cfg;
    cfg.tlb.entries = 512;
    cfg.tlb.ports = 4;
    auto mmu = make(cfg);
    auto res = mmu.lookupBatch({vpn(0)}, 0);
    EXPECT_EQ(res.extraCycles, CactiModel{}.sizePenalty(512));
}

TEST_F(MmuFixture, WalkFillsTlbAndFiresCallback)
{
    auto mmu = make();
    Vpn done_vpn = 0;
    std::uint64_t frame = ~0ULL;
    mmu.requestWalks({vpn(3)}, /*warp=*/2, 0,
                     [&](Vpn v, std::uint64_t f, Cycle) {
                         done_vpn = v;
                         frame = f;
                     });
    EXPECT_TRUE(mmu.missOutstanding());
    eq.runUntil(1'000'000);
    EXPECT_EQ(done_vpn, vpn(3));
    EXPECT_EQ(frame, as.pageTable().translate(vpn(3))->ppn);
    EXPECT_FALSE(mmu.missOutstanding());
    // The TLB now hits.
    auto res = mmu.lookupBatch({vpn(3)}, 2);
    EXPECT_TRUE(res.allHit);
    EXPECT_EQ(res.lookups[0].frameBase, frame);
}

TEST_F(MmuFixture, DuplicateWalksMerge)
{
    auto mmu = make();
    int fires = 0;
    mmu.requestWalks({vpn(4)}, 0, 0,
                     [&](Vpn, std::uint64_t, Cycle) { ++fires; });
    mmu.requestWalks({vpn(4)}, 1, 0,
                     [&](Vpn, std::uint64_t, Cycle) { ++fires; });
    eq.runUntil(1'000'000);
    EXPECT_EQ(fires, 2);
    EXPECT_EQ(mmu.mergedWalks(), 1u);
    EXPECT_EQ(mmu.walkers().walksCompleted(), 1u);
}

TEST_F(MmuFixture, BlockingPolicyGatesMemory)
{
    MmuConfig cfg;
    cfg.hitUnderMiss = false;
    auto mmu = make(cfg);
    EXPECT_TRUE(mmu.memAvailable());
    mmu.requestWalks({vpn(5)}, 0, 0,
                     [](Vpn, std::uint64_t, Cycle) {});
    EXPECT_FALSE(mmu.memAvailable());
    EXPECT_FALSE(mmu.canStartMisses(1));
    eq.runUntil(1'000'000);
    EXPECT_TRUE(mmu.memAvailable());
}

TEST_F(MmuFixture, HitUnderMissKeepsTlbAvailable)
{
    MmuConfig cfg;
    cfg.hitUnderMiss = true;
    auto mmu = make(cfg);
    mmu.requestWalks({vpn(6)}, 0, 0,
                     [](Vpn, std::uint64_t, Cycle) {});
    EXPECT_TRUE(mmu.memAvailable());
    // But no miss-under-miss.
    EXPECT_FALSE(mmu.canStartMisses(1));
    // Drain before teardown: in-flight walk state is arena-pooled
    // inside the walker pool, which asserts nothing is live when it
    // is destroyed.
    eq.runUntil(1'000'000);
}

TEST_F(MmuFixture, MshrLimitBoundsMissSet)
{
    MmuConfig cfg;
    cfg.mshrs = 4;
    auto mmu = make(cfg);
    EXPECT_TRUE(mmu.canStartMisses(4));
    EXPECT_FALSE(mmu.canStartMisses(5));
}

TEST_F(MmuFixture, DrainCallbackFiresOnLastWalk)
{
    auto mmu = make();
    bool drained = false;
    mmu.requestWalks({vpn(7), vpn(8)}, 0, 0,
                     [](Vpn, std::uint64_t, Cycle) {});
    mmu.onDrain([&] { drained = true; });
    EXPECT_FALSE(drained);
    eq.runUntil(1'000'000);
    EXPECT_TRUE(drained);
}

TEST_F(MmuFixture, MissLatencyRecorded)
{
    auto mmu = make();
    mmu.requestWalks({vpn(9)}, 0, 100,
                     [](Vpn, std::uint64_t, Cycle) {});
    eq.runUntil(1'000'000);
    EXPECT_EQ(mmu.missLatency().count(), 1u);
    EXPECT_GT(mmu.missLatency().mean(), 0.0);
}

TEST_F(MmuFixture, ShootdownFlushesTlb)
{
    auto mmu = make();
    mmu.requestWalks({vpn(1)}, 0, 0,
                     [](Vpn, std::uint64_t, Cycle) {});
    eq.runUntil(1'000'000);
    EXPECT_TRUE(mmu.lookupBatch({vpn(1)}, 0).allHit);
    mmu.shootdown();
    EXPECT_FALSE(mmu.lookupBatch({vpn(1)}, 0).allHit);
}

TEST_F(MmuFixture, PhysAddrComposition)
{
    auto mmu = make();
    EXPECT_EQ(mmu.pageShift(), kPageShift4K);
    EXPECT_EQ(mmu.physAddr(7, 0x1234), (7ULL << 12) | 0x234u);
}

TEST(MmuLargePages, TwoMegTagsAndFrames)
{
    PhysicalMemory phys(1 << 22, false);
    AddressSpace as(phys, /*use_large=*/true);
    auto region = as.mmap("big", 4 * kPageSize2M);
    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    Mmu mmu((MmuConfig()), as, mem, eq);

    EXPECT_EQ(mmu.pageShift(), kPageShift2M);
    const Vpn tag = region.base >> kPageShift2M;
    Vpn done = 0;
    std::uint64_t frame = 0;
    mmu.requestWalks({tag + 1}, 0, 0,
                     [&](Vpn v, std::uint64_t f, Cycle) {
                         done = v;
                         frame = f;
                     });
    eq.runUntil(1'000'000);
    EXPECT_EQ(done, tag + 1);
    auto res = mmu.lookupBatch({tag + 1}, 0);
    ASSERT_TRUE(res.allHit);
    // Frame base back to a byte address must match the page table.
    const VirtAddr va = region.base + kPageSize2M + 0x555;
    const PhysAddr pa = mmu.physAddr(res.lookups[0].frameBase, va);
    EXPECT_EQ(pa, mmu.magicTranslate(va));
    (void)frame;
}
