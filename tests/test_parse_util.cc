/**
 * @file
 * Strict-parse and locale regression tests.
 *
 * Pins the two bugfix classes of the trace-ingestion PR: (1) every
 * numeric CLI flag in the bench layer parses the *whole* token with
 * std::from_chars — "--jobs=4abc" and "--seed=-1" are errors, not
 * silently truncated values (the atoi/atof family accepted both);
 * (2) JSON number parsing is locale-independent — under a
 * comma-decimal LC_NUMERIC, std::stod parsed "1.5" as 1 and broke
 * the emit→parse round trip of the BENCH_*.json artifacts.
 */

#include <gtest/gtest.h>

#include <clocale>
#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "sim/parse_util.hh"
#include "sim/perf_report.hh"

using namespace gpummu;

namespace {

TEST(ParseNum, AcceptsWholeTokens)
{
    int i = 0;
    EXPECT_TRUE(parseNum("42", i));
    EXPECT_EQ(i, 42);
    EXPECT_TRUE(parseNum("-7", i));
    EXPECT_EQ(i, -7);
    std::uint64_t u = 0;
    EXPECT_TRUE(parseNum("18446744073709551615", u));
    EXPECT_EQ(u, UINT64_MAX);
    unsigned z = 1;
    EXPECT_TRUE(parseNum("0", z));
    EXPECT_EQ(z, 0u);
}

TEST(ParseNum, RejectsTrailingGarbage)
{
    // The headline atoi bug: "4abc" parsed as 4.
    int i = 99;
    EXPECT_FALSE(parseNum("4abc", i));
    EXPECT_FALSE(parseNum("42 ", i));
    EXPECT_FALSE(parseNum(" 42", i));
    EXPECT_FALSE(parseNum("", i));
    EXPECT_FALSE(parseNum("abc", i));
    EXPECT_FALSE(parseNum("12.5", i));
    // from_chars takes no '+' sign and no 0x prefix.
    EXPECT_FALSE(parseNum("+42", i));
    EXPECT_FALSE(parseNum("0x10", i));
    EXPECT_EQ(i, 99) << "failed parse must not clobber the output";
}

TEST(ParseNum, RejectsOverflowAndSignMismatch)
{
    std::uint32_t u = 7;
    EXPECT_FALSE(parseNum("4294967296", u)); // 2^32
    EXPECT_FALSE(parseNum("-1", u));
    EXPECT_EQ(u, 7u);
    std::int8_t s = 0;
    EXPECT_FALSE(parseNum("200", s));
    EXPECT_TRUE(parseNum("-128", s));
    EXPECT_EQ(s, -128);
}

TEST(ParseDouble, AcceptsWholeTokens)
{
    double d = 0.0;
    EXPECT_TRUE(parseDouble("1.5", d));
    EXPECT_EQ(d, 1.5);
    EXPECT_TRUE(parseDouble("1e3", d));
    EXPECT_EQ(d, 1000.0);
    EXPECT_TRUE(parseDouble("-2.25", d));
    EXPECT_EQ(d, -2.25);
    EXPECT_TRUE(parseDouble("0.03", d));
    EXPECT_EQ(d, 0.03);
}

TEST(ParseDouble, RejectsTrailingGarbage)
{
    double d = 7.0;
    EXPECT_FALSE(parseDouble("1.5x", d));
    EXPECT_FALSE(parseDouble("", d));
    EXPECT_FALSE(parseDouble("1,5", d));
    EXPECT_FALSE(parseDouble("scale", d));
    EXPECT_FALSE(parseDouble(" 1.5", d));
    EXPECT_EQ(d, 7.0);
}

/** Run benchutil::tryParse over @p flags; returns success and fills
 *  @p err / @p opt. */
bool
tryFlags(const std::vector<std::string> &flags,
         benchutil::Options &opt, std::string &err)
{
    std::vector<std::string> storage = flags;
    std::vector<char *> argv;
    std::string prog = "bench";
    argv.push_back(prog.data());
    for (std::string &s : storage)
        argv.push_back(s.data());
    return benchutil::tryParse(static_cast<int>(argv.size()),
                               argv.data(), opt, err);
}

TEST(BenchCli, AcceptsWellFormedFlags)
{
    benchutil::Options opt;
    std::string err;
    ASSERT_TRUE(tryFlags({"--scale=0.5", "--jobs=4", "--seed=7",
                          "--bench=bfs"},
                         opt, err))
        << err;
    EXPECT_EQ(opt.params.scale, 0.5);
    EXPECT_EQ(opt.jobs, 4u);
    EXPECT_EQ(opt.params.seed, 7u);
    ASSERT_EQ(opt.benchmarks.size(), 1u);
    EXPECT_EQ(opt.benchmarks[0], BenchmarkId::Bfs);
}

TEST(BenchCli, RejectsMalformedNumericFlags)
{
    benchutil::Options opt;
    std::string err;
    // Each of these previously parsed to a truncated value via
    // atof/atoi; now they are hard errors naming the flag.
    EXPECT_FALSE(tryFlags({"--scale=0.5abc"}, opt, err));
    EXPECT_NE(err.find("--scale"), std::string::npos);
    EXPECT_FALSE(tryFlags({"--scale=abc"}, opt, err));
    EXPECT_FALSE(tryFlags({"--scale=-1"}, opt, err));
    EXPECT_FALSE(tryFlags({"--scale=0"}, opt, err));
    EXPECT_FALSE(tryFlags({"--jobs=4abc"}, opt, err));
    EXPECT_NE(err.find("--jobs"), std::string::npos);
    EXPECT_FALSE(tryFlags({"--jobs=0"}, opt, err));
    EXPECT_FALSE(tryFlags({"--jobs=-2"}, opt, err));
    EXPECT_FALSE(tryFlags({"--seed=12x"}, opt, err));
    EXPECT_NE(err.find("--seed"), std::string::npos);
    EXPECT_FALSE(tryFlags({"--seed=-1"}, opt, err));
    EXPECT_FALSE(
        tryFlags({"--sample-interval=100q", "--sample-out=s.csv"},
                 opt, err));
    EXPECT_NE(err.find("--sample-interval"), std::string::npos);
    EXPECT_FALSE(tryFlags(
        {"--sample-interval=0", "--sample-out=s.csv"}, opt, err));
    EXPECT_FALSE(tryFlags({"--bench=nosuch"}, opt, err));
    EXPECT_FALSE(tryFlags({"--frobnicate=1"}, opt, err));
    EXPECT_NE(err.find("unknown option"), std::string::npos);
}

TEST(BenchCli, NewWorkloadsAreSelectable)
{
    for (const char *name : {"hashprobe", "spgrid", "service"}) {
        benchutil::Options opt;
        std::string err;
        ASSERT_TRUE(tryFlags({std::string("--bench=") + name}, opt,
                             err))
            << err;
        ASSERT_EQ(opt.benchmarks.size(), 1u);
        EXPECT_EQ(benchmarkName(opt.benchmarks[0]), name);
    }
}

/** RAII LC_NUMERIC override; skips the test when the locale is not
 *  installed in the image. */
class ScopedCommaLocale
{
  public:
    ScopedCommaLocale()
    {
        const char *prev = std::setlocale(LC_NUMERIC, nullptr);
        saved_ = prev != nullptr ? prev : "C";
        for (const char *name :
             {"de_DE.UTF-8", "de_DE.utf8", "fr_FR.UTF-8",
              "fr_FR.utf8"}) {
            if (std::setlocale(LC_NUMERIC, name) != nullptr) {
                active_ = true;
                return;
            }
        }
    }
    ~ScopedCommaLocale() { std::setlocale(LC_NUMERIC, saved_.c_str()); }
    bool active() const { return active_; }

  private:
    std::string saved_;
    bool active_ = false;
};

TEST(Locale, ParseDoubleIgnoresLcNumeric)
{
    ScopedCommaLocale locale;
    if (!locale.active())
        GTEST_SKIP() << "no comma-decimal locale installed";
    double d = 0.0;
    // Under de_DE std::stod("1.5") returns 1 (stops at the '.').
    ASSERT_TRUE(parseDouble("1.5", d));
    EXPECT_EQ(d, 1.5);
    EXPECT_FALSE(parseDouble("1,5", d));
}

TEST(Locale, BenchReportRoundTripsUnderCommaLocale)
{
    ScopedCommaLocale locale;
    if (!locale.active())
        GTEST_SKIP() << "no comma-decimal locale installed";

    BenchReport report;
    report.pr = 9;
    report.scale = 0.25;
    report.seed = 42;
    report.repeat = 3;
    BenchMeasurement m;
    m.point = "bfs/augmented-tlb";
    m.benchmark = "bfs";
    m.config = "augmented-tlb";
    m.cycles = 123456;
    m.eventsFired = 777;
    m.instructions = 999;
    m.wallSeconds = 0.5;
    report.points.push_back(m);

    // Emit (jsonNum/to_chars, locale-free) and re-parse
    // (parseDouble/from_chars, locale-free): the round trip must
    // recover the exact values even with LC_NUMERIC=de_DE.
    const std::string json = report.toJson();
    EXPECT_NE(json.find("\"scale\":0.25"), std::string::npos);

    const BenchValidation val = validateBenchJson(json);
    EXPECT_TRUE(val.ok()) << (val.errors.empty()
                                  ? std::string("?")
                                  : val.errors.front());

    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;
    const JsonValue *scale = doc.find("scale");
    ASSERT_NE(scale, nullptr);
    EXPECT_EQ(scale->number, 0.25);
    const JsonValue *pts = doc.find("points");
    ASSERT_NE(pts, nullptr);
    ASSERT_EQ(pts->items.size(), 1u);
    const JsonValue *wall = pts->items[0].find("wall_seconds");
    ASSERT_NE(wall, nullptr);
    EXPECT_EQ(wall->number, 0.5);
    const JsonValue *cps = pts->items[0].find("cycles_per_sec");
    ASSERT_NE(cps, nullptr);
    EXPECT_EQ(cps->number, 246912.0);
}

} // namespace
