/**
 * @file
 * Unit tests for the page table walkers, including an exact check of
 * the paper's Figure 8 example (12 naive loads -> 7 scheduled).
 */

#include <gtest/gtest.h>

#include <map>

#include "check/invariant_checker.hh"
#include "mmu/ptw.hh"
#include "sim/event_queue.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

using namespace gpummu;

namespace {

Vpn
vpnOf(unsigned pml4, unsigned pdp, unsigned pd, unsigned pt)
{
    return (static_cast<Vpn>(pml4) << 27) |
           (static_cast<Vpn>(pdp) << 18) |
           (static_cast<Vpn>(pd) << 9) | pt;
}

struct PtwFixture : public ::testing::Test
{
    PtwFixture()
        : phys(1 << 18, false), pt(phys), mem(MemorySystemConfig{})
    {
    }

    PageWalkers
    make(const PtwConfig &cfg)
    {
        return PageWalkers(cfg, pt, mem, eq);
    }

    PhysicalMemory phys;
    PageTable pt;
    MemorySystem mem;
    EventQueue eq;
};

} // namespace

TEST_F(PtwFixture, SingleNaiveWalkCompletes)
{
    pt.map4K(1000, 7);
    PtwConfig cfg;
    auto w = make(cfg);
    Vpn done_vpn = 0;
    Cycle done_at = 0;
    w.requestBatch({1000}, 10, [&](Vpn v, Cycle c) {
        done_vpn = v;
        done_at = c;
    });
    eq.runUntil(1'000'000);
    EXPECT_EQ(done_vpn, 1000u);
    EXPECT_GT(done_at, 10u);
    EXPECT_EQ(w.walksCompleted(), 1u);
    EXPECT_EQ(w.refsIssued(), 4u); // four radix levels
    EXPECT_FALSE(w.busy());
}

TEST_F(PtwFixture, PaperFigure8TwelveLoadsBecomeSeven)
{
    const Vpn a = vpnOf(0xb9, 0x0c, 0xac, 0x03);
    const Vpn b = vpnOf(0xb9, 0x0c, 0xac, 0x04);
    const Vpn c = vpnOf(0xb9, 0x0c, 0xad, 0x05);
    pt.map4K(a, 1);
    pt.map4K(b, 2);
    pt.map4K(c, 3);

    // Naive: 3 walks x 4 references = 12 loads.
    {
        PtwConfig cfg;
        EventQueue eq1;
        PageWalkers w(cfg, pt, mem, eq1);
        int done = 0;
        w.requestBatch({a, b, c}, 0, [&](Vpn, Cycle) { ++done; });
        eq1.runUntil(1'000'000);
        EXPECT_EQ(done, 3);
        EXPECT_EQ(w.refsIssued(), 12u);
        EXPECT_EQ(w.refsEliminated(), 0u);
    }

    // Scheduled: PML4 and PDP collapse to one load each, the two
    // identical PD entries collapse, PT entries all issue:
    // 1 + 1 + 2 + 3 = 7 loads, 5 eliminated.
    {
        PtwConfig cfg;
        cfg.scheduling = true;
        EventQueue eq2;
        PageWalkers w(cfg, pt, mem, eq2);
        int done = 0;
        w.requestBatch({a, b, c}, 0, [&](Vpn, Cycle) { ++done; });
        eq2.runUntil(1'000'000);
        EXPECT_EQ(done, 3);
        EXPECT_EQ(w.refsIssued(), 7u);
        EXPECT_EQ(w.refsEliminated(), 5u);
        EXPECT_EQ(w.walksCompleted(), 3u);
    }
}

TEST_F(PtwFixture, ScheduledBatchFasterThanNaiveSerial)
{
    std::vector<Vpn> vpns;
    for (unsigned i = 0; i < 8; ++i) {
        vpns.push_back(vpnOf(1, 2, 3, i * 20));
        pt.map4K(vpns.back(), i);
    }
    Cycle naive_end = 0, sched_end = 0;
    {
        PtwConfig cfg;
        EventQueue eq1;
        PageWalkers w(cfg, pt, mem, eq1);
        w.requestBatch(vpns, 0, [&](Vpn, Cycle c) {
            naive_end = std::max(naive_end, c);
        });
        eq1.runUntil(10'000'000);
    }
    {
        PtwConfig cfg;
        cfg.scheduling = true;
        EventQueue eq2;
        MemorySystem mem2((MemorySystemConfig()));
        PageWalkers ws(cfg, pt, mem2, eq2);
        ws.requestBatch(vpns, 0, [&](Vpn, Cycle c) {
            sched_end = std::max(sched_end, c);
        });
        eq2.runUntil(10'000'000);
    }
    EXPECT_LT(sched_end, naive_end);
}

TEST_F(PtwFixture, MultipleWalkersOverlapWalks)
{
    std::vector<Vpn> vpns;
    for (unsigned i = 0; i < 8; ++i) {
        vpns.push_back(vpnOf(2, 3, i, 0)); // distinct PD subtrees
        pt.map4K(vpns.back(), i);
    }
    Cycle one_end = 0, eight_end = 0;
    {
        PtwConfig cfg;
        cfg.numWalkers = 1;
        EventQueue eq1;
        PageWalkers w(cfg, pt, mem, eq1);
        w.requestBatch(vpns, 0, [&](Vpn, Cycle c) {
            one_end = std::max(one_end, c);
        });
        eq1.runUntil(10'000'000);
    }
    {
        PtwConfig cfg;
        cfg.numWalkers = 8;
        EventQueue eq2;
        PageWalkers w(cfg, pt, mem, eq2);
        w.requestBatch(vpns, 0, [&](Vpn, Cycle c) {
            eight_end = std::max(eight_end, c);
        });
        eq2.runUntil(10'000'000);
    }
    EXPECT_LT(eight_end, one_end);
}

TEST_F(PtwFixture, WalkCacheShortensRepeatWalks)
{
    pt.map4K(vpnOf(3, 3, 3, 3), 1);
    pt.map4K(vpnOf(3, 3, 3, 4), 2);
    PtwConfig cfg;
    auto w = make(cfg);
    Cycle first = 0, second = 0;
    w.requestBatch({vpnOf(3, 3, 3, 3)}, 0,
                   [&](Vpn, Cycle c) { first = c; });
    eq.runUntil(1'000'000);
    const Cycle start2 = eq.now();
    w.requestBatch({vpnOf(3, 3, 3, 4)}, start2,
                   [&](Vpn, Cycle c) { second = c; });
    eq.runUntil(10'000'000);
    // All four of the second walk's lines were just touched.
    EXPECT_GT(w.pwcHits(), 0u);
    EXPECT_LT(second - start2, first);
}

TEST_F(PtwFixture, PwcHitWaitsForInFlightLineFill)
{
    // Two walks in one scheduled batch whose leaf PTEs share a
    // 128-byte line: the first reference fetches the line from
    // memory, the second hits the walk cache while that fill is
    // still in flight. The hit must wait for the fill - it cannot
    // complete in pwcHitLatency cycles when the line is not there
    // yet (hit-under-fill optimism).
    const Vpn a = vpnOf(1, 1, 1, 0);
    const Vpn b = vpnOf(1, 1, 1, 1); // same PTE line as a
    pt.map4K(a, 11);
    pt.map4K(b, 12);
    PtwConfig cfg;
    cfg.scheduling = true;
    auto w = make(cfg);
    Cycle done_a = 0, done_b = 0;
    w.requestBatch({a, b}, 0, [&](Vpn v, Cycle c) {
        (v == a ? done_a : done_b) = c;
    });
    eq.runUntil(1'000'000);
    EXPECT_GT(w.pwcHits(), 0u);
    EXPECT_GT(done_a, 0u);
    EXPECT_GE(done_b, done_a);
}

TEST_F(PtwFixture, KernelBoundaryResetsIssuePortReservation)
{
    // With portInterval > pwcHitLatency, an all-walk-cache-hit walk
    // completes before its last port slot expires, so the port
    // reservation outlives the drained kernel. onKernelDrained()
    // must clear it: a kernel started right at the drain cycle sees
    // the same walk latency as one started from an idle pool.
    pt.map4K(vpnOf(5, 5, 5, 5), 1);
    pt.map4K(vpnOf(5, 5, 5, 6), 2);
    pt.map4K(vpnOf(5, 5, 5, 7), 3);
    PtwConfig cfg;
    cfg.portInterval = 10;
    ASSERT_GT(cfg.portInterval, cfg.pwcHitLatency);
    auto w = make(cfg);
    auto drain = [&] {
        while (w.busy())
            eq.runUntil(eq.now() + 1);
    };

    // Warm every paging-structure line the three walks share.
    w.requestBatch({vpnOf(5, 5, 5, 5)}, 0, [](Vpn, Cycle) {});
    drain();

    // Kernel 1 ends on an all-PWC-hit walk; its final reference is
    // ready pwcHitLatency after issue but holds the port longer.
    const Cycle start_b = eq.now();
    Cycle done_b = 0;
    w.requestBatch({vpnOf(5, 5, 5, 6)}, start_b,
                   [&](Vpn, Cycle c) { done_b = c; });
    drain();
    w.onKernelDrained();

    // Kernel 2 starts at the drain cycle, inside the window the
    // stale reservation would still cover.
    const Cycle start_c = eq.now();
    Cycle done_c = 0;
    w.requestBatch({vpnOf(5, 5, 5, 7)}, start_c,
                   [&](Vpn, Cycle c) { done_c = c; });
    drain();
    EXPECT_EQ(done_c - start_c, done_b - start_b);
}

TEST_F(PtwFixture, TwoMegWalksHaveThreeLevels)
{
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    pt.map2M(5, 4 * per_large);
    PtwConfig cfg;
    auto w = make(cfg);
    int done = 0;
    w.requestBatch({5ULL << 9}, 0, [&](Vpn, Cycle) { ++done; });
    eq.runUntil(1'000'000);
    EXPECT_EQ(done, 1);
    EXPECT_EQ(w.refsIssued(), 3u);
}

TEST_F(PtwFixture, QueuedWalksAllComplete)
{
    std::vector<Vpn> vpns;
    for (unsigned i = 0; i < 32; ++i) {
        vpns.push_back(vpnOf(4, 1, i / 8, i % 8));
        pt.map4K(vpns.back(), i);
    }
    PtwConfig cfg;
    cfg.scheduling = true;
    auto w = make(cfg);
    int done = 0;
    // Two batches back to back; the second queues behind the first.
    std::vector<Vpn> first(vpns.begin(), vpns.begin() + 16);
    std::vector<Vpn> second(vpns.begin() + 16, vpns.end());
    w.requestBatch(first, 0, [&](Vpn, Cycle) { ++done; });
    w.requestBatch(second, 1, [&](Vpn, Cycle) { ++done; });
    eq.runUntil(10'000'000);
    EXPECT_EQ(done, 32);
    EXPECT_GE(w.refsEliminated(), 1u);
}

TEST_F(PtwFixture, BatchConservationUnderCoalescing)
{
    // N walks whose upper-level references collapse heavily (shared
    // PML4/PDP/PD entries, PT entries on shared 128-byte lines) must
    // still complete exactly once each: coalescing merges *loads*,
    // never walk completions.
    std::vector<Vpn> vpns;
    for (unsigned i = 0; i < 24; ++i) {
        vpns.push_back(vpnOf(6, 1, i / 12, i % 12)); // 2 PD subtrees
        pt.map4K(vpns.back(), 100 + i);
    }
    InvariantChecker chk(pt);
    PtwConfig cfg;
    cfg.scheduling = true;
    auto w = make(cfg);
    w.setChecker(&chk);

    std::map<Vpn, int> completions;
    w.requestBatch(vpns, 0,
                   [&](Vpn v, Cycle) { completions[v]++; });
    eq.runUntil(10'000'000);

    ASSERT_EQ(completions.size(), vpns.size());
    for (Vpn v : vpns)
        EXPECT_EQ(completions[v], 1) << "vpn " << v;
    EXPECT_EQ(w.walksCompleted(), vpns.size());
    EXPECT_GE(w.refsEliminated(), 1u);
    EXPECT_EQ(chk.walksTracked(), vpns.size());
    w.checkDrained();
}

TEST_F(PtwFixture, DuplicateVpnsEachCompleteOnce)
{
    // The walker pool does not dedup VPNs (the Mmu's outstanding_
    // table does); two requests for one page are two completions.
    const Vpn v = vpnOf(7, 7, 7, 7);
    pt.map4K(v, 5);
    InvariantChecker chk(pt);
    PtwConfig cfg;
    cfg.scheduling = true;
    auto w = make(cfg);
    w.setChecker(&chk);
    int done = 0;
    w.requestBatch({v, v, v}, 0, [&](Vpn got, Cycle) {
        EXPECT_EQ(got, v);
        ++done;
    });
    eq.runUntil(1'000'000);
    EXPECT_EQ(done, 3);
    w.checkDrained();
}

TEST_F(PtwFixture, ConservationAcrossQueuedNaiveBatches)
{
    // Batches that queue behind busy naive walkers keep conservation:
    // enqueue N across three requestBatch calls, see exactly N
    // completions, and drain clean with the checker armed.
    std::vector<Vpn> vpns;
    for (unsigned i = 0; i < 12; ++i) {
        vpns.push_back(vpnOf(8, i % 3, i, 2 * i));
        pt.map4K(vpns.back(), 200 + i);
    }
    InvariantChecker chk(pt);
    PtwConfig cfg;
    cfg.numWalkers = 2;
    auto w = make(cfg);
    w.setChecker(&chk);
    std::map<Vpn, int> completions;
    auto count = [&](Vpn v, Cycle) { completions[v]++; };
    w.requestBatch({vpns.begin(), vpns.begin() + 4}, 0, count);
    w.requestBatch({vpns.begin() + 4, vpns.begin() + 8}, 0, count);
    w.requestBatch({vpns.begin() + 8, vpns.end()}, 5, count);
    EXPECT_TRUE(w.busy());
    eq.runUntil(10'000'000);
    ASSERT_EQ(completions.size(), vpns.size());
    for (Vpn v : vpns)
        EXPECT_EQ(completions[v], 1);
    EXPECT_EQ(chk.walksTracked(), vpns.size());
    EXPECT_FALSE(w.busy());
    w.checkDrained();
}
