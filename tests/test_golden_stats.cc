/**
 * @file
 * Golden-stats regression: tolerance-0 comparison of each workload's
 * full JSON stat dump against a checked-in golden file, under the
 * baseline augmented-MMU preset at a fixed (scale, seed, numCores).
 *
 * This pins simulated behaviour: a perf PR that only makes the
 * simulator faster leaves these dumps byte-identical, while any
 * change to simulated behaviour (timing, replacement, scheduling,
 * address streams) shows up as a diff that must be reviewed.
 *
 * To regenerate after an intentional behaviour change:
 *     ./build/tests/test_golden_stats --update-golden
 * then review the golden diff in the PR like any other code change.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "core/presets.hh"
#include "core/sweep.hh"

using namespace gpummu;

namespace {

bool update_golden = false;

/** Fixed pin-point: change it and you must regenerate the goldens. */
WorkloadParams
goldenParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
goldenConfig()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 4;
    return cfg;
}

std::string
goldenPath(BenchmarkId id)
{
    return std::string(GPUMMU_GOLDEN_DIR) + "/" + benchmarkName(id) +
           ".json";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class GoldenStats : public ::testing::TestWithParam<BenchmarkId>
{
};

} // namespace

TEST_P(GoldenStats, DumpMatchesGoldenByteForByte)
{
    const BenchmarkId id = GetParam();
    const RunOutput out =
        runConfigFull(id, goldenConfig(), goldenParams());
    const std::string current = out.statsJson + "\n";
    const std::string path = goldenPath(id);

    if (update_golden) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << current;
        SUCCEED() << "updated " << path;
        return;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden " << path
        << "; run test_golden_stats --update-golden";
    EXPECT_EQ(golden, current)
        << "simulated behaviour changed for " << benchmarkName(id)
        << "; if intentional, regenerate with --update-golden and "
           "review the diff";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenStats,
    ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId> &info) {
        return benchmarkName(info.param);
    });

int
main(int argc, char **argv)
{
    // Strip our flag before gtest sees the arguments.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden") {
            update_golden = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
