/**
 * @file
 * Golden-stats regression: tolerance-0 comparison of full JSON stat
 * dumps against checked-in golden files at a fixed (scale, seed,
 * numCores) pin-point. Every workload runs under the baseline
 * augmented-MMU preset, plus one benchmark each through the CCWS and
 * TBC scheduler paths so those subsystems are pinned too.
 *
 * This pins simulated behaviour: a perf PR that only makes the
 * simulator faster leaves these dumps byte-identical, while any
 * change to simulated behaviour (timing, replacement, scheduling,
 * address streams) shows up as a diff that must be reviewed.
 *
 * To regenerate after an intentional behaviour change:
 *     ./build/tests/test_golden_stats --update-golden
 * then review the golden diff in the PR like any other code change.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/multi_tenant.hh"
#include "core/presets.hh"
#include "core/sweep.hh"

using namespace gpummu;

namespace {

bool update_golden = false;

/** Fixed pin-point: change it and you must regenerate the goldens. */
WorkloadParams
goldenParams()
{
    WorkloadParams p;
    p.scale = 0.03;
    p.seed = 42;
    return p;
}

SystemConfig
goldenConfig()
{
    SystemConfig cfg = presets::augmentedTlb();
    cfg.numCores = 4;
    return cfg;
}

/** One pinned (config, benchmark) point; label names the golden. */
struct GoldenCase
{
    std::string label; ///< golden file stem, "<bench>[_<suffix>]"
    BenchmarkId bench;
    SystemConfig cfg;
};

std::vector<GoldenCase>
goldenCases()
{
    std::vector<GoldenCase> cases;
    for (BenchmarkId id : allBenchmarks())
        cases.push_back({benchmarkName(id), id, goldenConfig()});
    // Scheduler paths: one benchmark each keeps tier-1 wall-clock
    // flat while pinning the CCWS scoring and TBC compaction logic.
    cases.push_back({"bfs_ccws", BenchmarkId::Bfs,
                     presets::ccws(goldenConfig())});
    cases.push_back({"mummergpu_tbc", BenchmarkId::Mummergpu,
                     presets::tbc(goldenConfig())});
    // Shared L2 TLB path: two benchmarks pin the MSHR merge/bypass
    // protocol and the L2 port arbitration at a small capacity where
    // evictions actually happen.
    cases.push_back({"bfs_l2tlb", BenchmarkId::Bfs,
                     presets::withSharedL2Tlb(goldenConfig(), 512, 2)});
    cases.push_back({"pathfinder_l2tlb", BenchmarkId::Pathfinder,
                     presets::withSharedL2Tlb(goldenConfig(), 512, 2)});
    return cases;
}

std::string
goldenPath(const GoldenCase &c)
{
    return std::string(GPUMMU_GOLDEN_DIR) + "/" + c.label + ".json";
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

class GoldenStats : public ::testing::TestWithParam<GoldenCase>
{
};

} // namespace

TEST_P(GoldenStats, DumpMatchesGoldenByteForByte)
{
    const GoldenCase &c = GetParam();
    const RunOutput out = runConfigFull(c.bench, c.cfg, goldenParams());
    const std::string current = out.statsJson + "\n";
    const std::string path = goldenPath(c);

    if (update_golden) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << current;
        SUCCEED() << "updated " << path;
        return;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden " << path
        << "; run test_golden_stats --update-golden";
    EXPECT_EQ(golden, current)
        << "simulated behaviour changed for " << c.label
        << "; if intentional, regenerate with --update-golden and "
           "review the diff";
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, GoldenStats, ::testing::ValuesIn(goldenCases()),
    [](const ::testing::TestParamInfo<GoldenCase> &info) {
        return info.param.label;
    });

TEST(GoldenStatsMultiTenant, DumpMatchesGoldenByteForByte)
{
    // The multi-tenant runner at the same pin-point: two demand-paged
    // tenants with overlapping VAs time-share an IOMMU GPU. Pins the
    // ASID key plumbing, fault/shootdown/context-switch accounting
    // and slice interleaving ("os.*"/"mt.*" counters) byte-for-byte.
    MultiTenantConfig cfg = defaultMultiTenant(goldenParams().scale);
    cfg.params = goldenParams();
    cfg.system.numCores = 4;
    cfg.blocksPerSlice = 2;

    const MultiTenantResult res = runMultiTenant(cfg);
    const std::string current = res.statsJson + "\n";
    const std::string path =
        std::string(GPUMMU_GOLDEN_DIR) + "/multi_tenant.json";

    if (update_golden) {
        std::ofstream f(path, std::ios::binary | std::ios::trunc);
        ASSERT_TRUE(f.good()) << "cannot write " << path;
        f << current;
        SUCCEED() << "updated " << path;
        return;
    }

    const std::string golden = readFile(path);
    ASSERT_FALSE(golden.empty())
        << "missing golden " << path
        << "; run test_golden_stats --update-golden";
    EXPECT_EQ(golden, current)
        << "multi-tenant simulated behaviour changed; if "
           "intentional, regenerate with --update-golden and review "
           "the diff";
}

int
main(int argc, char **argv)
{
    // Strip our flag before gtest sees the arguments.
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--update-golden") {
            update_golden = true;
            for (int j = i; j + 1 < argc; ++j)
                argv[j] = argv[j + 1];
            --argc;
            break;
        }
    }
    ::testing::InitGoogleTest(&argc, argv);
    return RUN_ALL_TESTS();
}
