/**
 * @file
 * Unit tests for the shader core memory stage: translation policies,
 * overlap behaviour and scheduler notifications.
 */

#include <gtest/gtest.h>

#include "gpu/memory_stage.hh"
#include "sched/warp_scheduler.hh"

using namespace gpummu;

namespace {

struct RecordingScheduler : public WarpScheduler
{
    std::string name() const override { return "recorder"; }
    int
    pick(Cycle, const std::vector<int> &issuable) override
    {
        return issuable.front();
    }
    void
    onTlbHit(int w, Vpn, unsigned) override
    {
        ++tlbHits;
        lastWarp = w;
    }
    void onTlbMiss(int, Vpn) override { ++tlbMisses; }
    void onL1Miss(int, PhysAddr, bool tlb) override
    {
        ++l1Misses;
        l1MissWithTlbMiss += tlb;
    }
    int tlbHits = 0;
    int tlbMisses = 0;
    int l1Misses = 0;
    int l1MissWithTlbMiss = 0;
    int lastWarp = -1;
};

struct StageFixture : public ::testing::Test
{
    StageFixture()
        : phys(1 << 20, false), as(phys), mem(MemorySystemConfig{})
    {
        region = as.mmap("d", 256 * kPageSize4K);
    }

    VirtAddr
    addr(unsigned page, unsigned off = 0) const
    {
        return region.base + page * kPageSize4K + off;
    }

    PhysicalMemory phys;
    AddressSpace as;
    MemorySystem mem;
    EventQueue eq;
    VmRegion region;
};

} // namespace

TEST_F(StageFixture, NoTlbPathCompletesSynchronously)
{
    MmuConfig mc;
    mc.enabled = false;
    Mmu mmu(mc, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);

    Cycle done = 0;
    auto res = stage.issue(0, false, {addr(0), addr(0, 4)}, 0,
                           [&](Cycle c) { done = c; });
    EXPECT_EQ(res, MemIssueResult::Issued);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(stage.memInstructions(), 1u);
    EXPECT_EQ(stage.pageDivergence().max(), 1u);
}

TEST_F(StageFixture, MissWaitsForWalkThenCompletes)
{
    Mmu mmu(MmuConfig{}, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);
    RecordingScheduler sched;
    stage.setScheduler(&sched);

    Cycle done = 0;
    stage.issue(1, false, {addr(3)}, 0, [&](Cycle c) { done = c; });
    EXPECT_EQ(done, 0u); // async: waiting on the walk
    eq.runUntil(1'000'000);
    EXPECT_GT(done, 0u);
    EXPECT_EQ(sched.tlbMisses, 1);

    // Second access hits the TLB and completes synchronously.
    Cycle done2 = 0;
    stage.issue(1, false, {addr(3)}, done,
                [&](Cycle c) { done2 = c; });
    EXPECT_GT(done2, 0u);
    EXPECT_EQ(sched.tlbHits, 1);
}

TEST_F(StageFixture, HitUnderMissBouncesWouldMissWarp)
{
    MmuConfig mc;
    mc.hitUnderMiss = true;
    Mmu mmu(mc, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);

    // Warm page 0 in the TLB.
    Cycle warm = 0;
    stage.issue(0, false, {addr(0)}, 0, [&](Cycle c) { warm = c; });
    eq.runUntil(1'000'000);

    // Warp 1 misses on page 5: walk starts.
    Cycle w1 = 0;
    const Cycle t = eq.now();
    stage.issue(1, false, {addr(5)}, t, [&](Cycle c) { w1 = c; });
    ASSERT_TRUE(mmu.missOutstanding());

    // Warp 2 would miss on page 6: bounced.
    auto res = stage.issue(2, false, {addr(6)}, t + 1,
                           [](Cycle) { FAIL(); });
    EXPECT_EQ(res, MemIssueResult::BlockedTlbBusy);
    EXPECT_EQ(stage.tlbBusyBounces(), 1u);

    // Warp 3 all-hit on page 0: proceeds under the miss.
    Cycle w3 = 0;
    auto res3 = stage.issue(3, false, {addr(0)}, t + 2,
                            [&](Cycle c) { w3 = c; });
    EXPECT_EQ(res3, MemIssueResult::Issued);
    eq.runUntil(10'000'000);
    EXPECT_GT(w1, 0u);
    EXPECT_GT(w3, 0u);
}

TEST_F(StageFixture, OverlapReleasesHitLinesEarly)
{
    // One warp accesses a TLB-hit page and a TLB-miss page. With
    // cacheOverlap the hit page's line is fetched during the walk, so
    // a second warp touching that line right after completion hits.
    MmuConfig mc;
    mc.hitUnderMiss = true;
    mc.cacheOverlap = true;
    Mmu mmu(mc, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);

    Cycle warm = 0;
    stage.issue(0, false, {addr(0)}, 0, [&](Cycle c) { warm = c; });
    eq.runUntil(1'000'000);
    const Cycle t = eq.now();

    Cycle done = 0;
    stage.issue(1, false, {addr(0, 64), addr(7)}, t,
                [&](Cycle c) { done = c; });
    // The hit line (page 0) was accessed at issue time, before the
    // walk for page 7 finished.
    const auto l1_before = l1.accesses();
    EXPECT_GT(l1_before, 0u);
    eq.runUntil(10'000'000);
    EXPECT_GT(done, t);
}

TEST_F(StageFixture, StoresResolveAtTranslationNotData)
{
    Mmu mmu(MmuConfig{}, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);

    // Warm the page so translation hits.
    Cycle warm = 0;
    stage.issue(0, false, {addr(9)}, 0, [&](Cycle c) { warm = c; });
    eq.runUntil(1'000'000);
    const Cycle t = eq.now();
    Cycle done = 0;
    stage.issue(0, true, {addr(9, 128)}, t,
                [&](Cycle c) { done = c; });
    // Store completes at the TLB-hit handoff, far sooner than a
    // memory round trip.
    EXPECT_LE(done, t + 4);
}

TEST_F(StageFixture, TlbMissFlagPropagatesToL1MissHook)
{
    Mmu mmu(MmuConfig{}, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);
    RecordingScheduler sched;
    stage.setScheduler(&sched);

    Cycle done = 0;
    stage.issue(0, false, {addr(11)}, 0, [&](Cycle c) { done = c; });
    eq.runUntil(1'000'000);
    EXPECT_GT(sched.l1MissWithTlbMiss, 0);
}

TEST_F(StageFixture, PageDivergenceHistogram)
{
    MmuConfig mc;
    mc.enabled = false;
    Mmu mmu(mc, as, mem, eq);
    L1Cache l1(L1CacheConfig{}, mem);
    MemoryStage stage(mmu, l1, eq);

    std::vector<VirtAddr> lanes;
    for (unsigned p = 0; p < 5; ++p)
        lanes.push_back(addr(20 + p));
    Cycle done = 0;
    stage.issue(0, false, lanes, 0, [&](Cycle c) { done = c; });
    EXPECT_EQ(stage.pageDivergence().max(), 5u);
    EXPECT_DOUBLE_EQ(stage.pageDivergence().mean(), 5.0);
}
