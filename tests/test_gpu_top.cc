/**
 * @file
 * Tests for the top-level GPU: breadth-first block dispatch, wave
 * draining, and RunStats aggregation.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "gpu/gpu_top.hh"
#include "gpu/simt_core.hh"
#include "workloads/workload.hh"

using namespace gpummu;

namespace {

/** Minimal compute-only workload: a few ALU ops then exit. */
class ComputeWorkload : public Workload
{
  public:
    explicit ComputeWorkload(unsigned blocks)
        : Workload(WorkloadParams{}), prog_("compute"),
          blocks_(blocks)
    {
    }

    std::string name() const override { return "compute"; }
    const KernelProgram &program() const override { return prog_; }
    unsigned threadsPerBlock() const override { return 64; }
    unsigned numBlocks() const override { return blocks_; }

    void
    build(AddressSpace &as) override
    {
        (void)as;
        const int b0 = prog_.addBlock();
        const int b1 = prog_.addBlock();
        prog_.appendAlu(b0, 8);
        prog_.appendBranch(b0, -1, b1, -1, -1);
        prog_.appendExit(b1);
    }

  private:
    KernelProgram prog_;
    unsigned blocks_;
};

/** SimtCore wrapper that records which blocks landed on it. */
class RecordingCore : public SimtCore
{
  public:
    using SimtCore::SimtCore;

    void
    launchBlock(unsigned id) override
    {
        launched.push_back(id);
        SimtCore::launchBlock(id);
    }

    std::vector<unsigned> launched;
};

} // namespace

TEST(GpuTop, DispatchSpreadsBlocksBreadthFirst)
{
    ComputeWorkload wl(8);
    std::vector<RecordingCore *> cores;
    GpuTop gpu(
        4, MemorySystemConfig{}, wl,
        [&cores](int id, const LaunchParams &l, AddressSpace &as,
                 MemorySystem &m,
                 EventQueue &e) -> std::unique_ptr<ShaderCore> {
            CoreConfig cfg;
            cfg.mmu.enabled = false;
            auto core =
                std::make_unique<RecordingCore>(id, cfg, l, as, m, e);
            cores.push_back(core.get());
            return core;
        });
    gpu.run(1'000'000);
    // 8 blocks over 4 cores: two each, round-robin order for the
    // first wave.
    ASSERT_EQ(cores.size(), 4u);
    for (auto *c : cores)
        EXPECT_EQ(c->launched.size(), 2u);
    EXPECT_EQ(cores[0]->launched[0], 0u);
    EXPECT_EQ(cores[1]->launched[0], 1u);
    EXPECT_EQ(cores[2]->launched[0], 2u);
    EXPECT_EQ(cores[3]->launched[0], 3u);
}

TEST(GpuTop, ManyWavesDrainCompletely)
{
    // 64-thread blocks on a 48-slot core: 24 resident blocks per
    // core; 100 blocks on 2 cores takes multiple waves.
    ComputeWorkload wl(100);
    unsigned total_launched = 0;
    GpuTop gpu(
        2, MemorySystemConfig{}, wl,
        [&total_launched](int id, const LaunchParams &l,
                          AddressSpace &as, MemorySystem &m,
                          EventQueue &e) -> std::unique_ptr<ShaderCore> {
            CoreConfig cfg;
            cfg.mmu.enabled = false;
            auto core =
                std::make_unique<RecordingCore>(id, cfg, l, as, m, e);
            (void)total_launched;
            return core;
        });
    auto stats = gpu.run(10'000'000);
    // Every thread executed 10 warp-instructions' worth of work:
    // 100 blocks x 2 warps x (8 alu + branch + exit).
    EXPECT_EQ(stats.instructions, 100u * 2u * 10u);
}

TEST(GpuTop, RunStatsAggregatesAcrossCores)
{
    ComputeWorkload wl(6);
    GpuTop gpu(
        3, MemorySystemConfig{}, wl,
        [](int id, const LaunchParams &l, AddressSpace &as,
           MemorySystem &m,
           EventQueue &e) -> std::unique_ptr<ShaderCore> {
            CoreConfig cfg;
            cfg.mmu.enabled = false;
            return std::make_unique<SimtCore>(id, cfg, l, as, m, e);
        });
    auto stats = gpu.run(1'000'000);
    EXPECT_EQ(stats.instructions, 6u * 2u * 10u);
    EXPECT_EQ(stats.memInstructions, 0u);
    EXPECT_EQ(stats.tlbAccesses, 0u);
    EXPECT_GT(stats.cycles, 0u);
    EXPECT_GT(stats.ipc(), 0.0);
}

TEST(GpuTop, StatsRegistryHasPerCoreEntries)
{
    ComputeWorkload wl(2);
    GpuTop gpu(
        2, MemorySystemConfig{}, wl,
        [](int id, const LaunchParams &l, AddressSpace &as,
           MemorySystem &m,
           EventQueue &e) -> std::unique_ptr<ShaderCore> {
            CoreConfig cfg;
            cfg.mmu.enabled = false;
            return std::make_unique<SimtCore>(id, cfg, l, as, m, e);
        });
    gpu.run(1'000'000);
    EXPECT_NE(gpu.stats().findCounter("core0.instrs"), nullptr);
    EXPECT_NE(gpu.stats().findCounter("core1.instrs"), nullptr);
    EXPECT_NE(gpu.stats().findCounter("mem.l2.accesses"), nullptr);
    EXPECT_EQ(gpu.stats().findCounter("core2.instrs"), nullptr);
}

TEST(GpuTop, DeadlockGuardFires)
{
    // A kernel that can never finish within the budget trips the
    // guard (fatal exits with code 1).
    ComputeWorkload wl(200);
    auto run_tiny_budget = [&]() {
        GpuTop gpu(
            1, MemorySystemConfig{}, wl,
            [](int id, const LaunchParams &l, AddressSpace &as,
               MemorySystem &m,
               EventQueue &e) -> std::unique_ptr<ShaderCore> {
                CoreConfig cfg;
                cfg.mmu.enabled = false;
                return std::make_unique<SimtCore>(id, cfg, l, as, m,
                                                  e);
            });
        gpu.run(/*max_cycles=*/2);
    };
    EXPECT_EXIT(run_tiny_budget(), ::testing::ExitedWithCode(1),
                "exceeded");
}
