/**
 * @file
 * Unit tests for the process address space.
 */

#include <gtest/gtest.h>

#include "vm/address_space.hh"

using namespace gpummu;

TEST(AddressSpace, RegionsAreMappedEagerly)
{
    PhysicalMemory phys(1 << 16, false);
    AddressSpace as(phys);
    auto r = as.mmap("data", 64 * 1024);
    EXPECT_EQ(r.bytes, 64u * 1024u);
    for (VirtAddr va = r.base; va < r.end(); va += kPageSize4K)
        EXPECT_TRUE(as.pageTable().translate(va >> kPageShift4K));
}

TEST(AddressSpace, SizesRoundUpToPages)
{
    PhysicalMemory phys(1 << 16, false);
    AddressSpace as(phys);
    auto r = as.mmap("odd", 100);
    EXPECT_EQ(r.bytes, kPageSize4K);
}

TEST(AddressSpace, GuardPageBetweenRegions)
{
    PhysicalMemory phys(1 << 16, false);
    AddressSpace as(phys);
    auto a = as.mmap("a", kPageSize4K);
    auto b = as.mmap("b", kPageSize4K);
    EXPECT_GE(b.base, a.end() + kPageSize4K);
    // The guard page is unmapped.
    EXPECT_FALSE(as.pageTable().translate(a.end() >> kPageShift4K));
}

TEST(AddressSpace, DistinctRegionsDistinctFrames)
{
    PhysicalMemory phys(1 << 16, true);
    AddressSpace as(phys);
    auto a = as.mmap("a", 4 * kPageSize4K);
    auto b = as.mmap("b", 4 * kPageSize4K);
    std::set<Ppn> frames;
    for (VirtAddr va = a.base; va < a.end(); va += kPageSize4K)
        frames.insert(as.pageTable().translate(va >> 12)->ppn);
    for (VirtAddr va = b.base; va < b.end(); va += kPageSize4K)
        frames.insert(as.pageTable().translate(va >> 12)->ppn);
    EXPECT_EQ(frames.size(), 8u);
}

TEST(AddressSpace, LargePageMode)
{
    PhysicalMemory phys(1 << 20, false);
    AddressSpace as(phys, /*use_large=*/true);
    EXPECT_TRUE(as.usesLargePages());
    auto r = as.mmap("big", 3 * kPageSize2M);
    EXPECT_EQ(r.base % kPageSize2M, 0u);
    EXPECT_EQ(r.bytes, 3 * kPageSize2M);
    auto t = as.pageTable().translate(r.base >> kPageShift4K);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(t->isLarge);
    // An interior 4KB page translates with the right offset.
    auto mid = as.pageTable().translate((r.base >> kPageShift4K) + 5);
    ASSERT_TRUE(mid.has_value());
    EXPECT_EQ(mid->ppn, t->ppn + 5);
}

TEST(AddressSpace, LargePageModeRoundsToLargePages)
{
    PhysicalMemory phys(1 << 20, false);
    AddressSpace as(phys, true);
    auto r = as.mmap("small", 100);
    EXPECT_EQ(r.bytes, kPageSize2M);
}

TEST(AddressSpace, TracksMappedBytesAndRegions)
{
    PhysicalMemory phys(1 << 16, false);
    AddressSpace as(phys);
    as.mmap("a", kPageSize4K);
    as.mmap("b", 2 * kPageSize4K);
    EXPECT_EQ(as.mappedBytes(), 3 * kPageSize4K);
    ASSERT_EQ(as.regions().size(), 2u);
    EXPECT_EQ(as.regions()[0].name, "a");
    EXPECT_EQ(as.regions()[1].name, "b");
}

TEST(VmRegion, ContainsSemantics)
{
    VmRegion r{"x", 0x1000, 0x2000};
    EXPECT_TRUE(r.contains(0x1000));
    EXPECT_TRUE(r.contains(0x2fff));
    EXPECT_FALSE(r.contains(0x3000));
    EXPECT_FALSE(r.contains(0xfff));
}
