/**
 * @file
 * Unit tests for the TBC building blocks: common page matrix, thread
 * compactor and block-wide stack.
 */

#include <gtest/gtest.h>

#include "tbc/block_stack.hh"
#include "tbc/compactor.hh"
#include "tbc/cpm.hh"

using namespace gpummu;

// ------------------------------------------------------------- CPM

TEST(Cpm, SaturatesAtCounterMax)
{
    CpmConfig cfg;
    cfg.counterBits = 2;
    CommonPageMatrix cpm(cfg);
    EXPECT_EQ(cpm.maxCount(), 3u);
    for (int i = 0; i < 10; ++i)
        cpm.bump(1, 2);
    EXPECT_EQ(cpm.count(1, 2), 3u);
    EXPECT_EQ(cpm.count(2, 1), 3u); // symmetric
}

TEST(Cpm, AffinityRequiresSaturation)
{
    CpmConfig cfg;
    cfg.counterBits = 3;
    CommonPageMatrix cpm(cfg);
    EXPECT_FALSE(cpm.isAffine(1, 2));
    for (int i = 0; i < 6; ++i)
        cpm.bump(1, 2);
    EXPECT_FALSE(cpm.isAffine(1, 2));
    cpm.bump(1, 2);
    EXPECT_TRUE(cpm.isAffine(1, 2));
}

TEST(Cpm, SameWarpAlwaysAffine)
{
    CommonPageMatrix cpm(CpmConfig{});
    EXPECT_TRUE(cpm.isAffine(5, 5));
}

TEST(Cpm, PeriodicFlushClearsCounters)
{
    CpmConfig cfg;
    cfg.flushInterval = 100;
    CommonPageMatrix cpm(cfg);
    for (int i = 0; i < 10; ++i)
        cpm.bump(0, 1);
    EXPECT_TRUE(cpm.isAffine(0, 1));
    cpm.tick(99);
    EXPECT_TRUE(cpm.isAffine(0, 1));
    cpm.tick(100);
    EXPECT_FALSE(cpm.isAffine(0, 1));
}

TEST(Cpm, OutOfRangeWarpsIgnored)
{
    CommonPageMatrix cpm(CpmConfig{});
    cpm.bump(-1, 3);
    cpm.bump(3, 1000);
    EXPECT_FALSE(cpm.isAffine(3, 1000));
}

// ------------------------------------------------------- Compactor

namespace {

BlockMask
maskOf(std::initializer_list<int> tids)
{
    BlockMask m;
    for (int t : tids)
        m.set(static_cast<std::size_t>(t));
    return m;
}

} // namespace

TEST(Compactor, FullMaskReproducesStaticWarps)
{
    BlockMask m;
    for (int t = 0; t < 64; ++t)
        m.set(t);
    auto warps = compactThreads(m, 64, nullptr, 0);
    ASSERT_EQ(warps.size(), 2u);
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        EXPECT_EQ(warps[0].laneThread[lane], static_cast<int>(lane));
        EXPECT_EQ(warps[1].laneThread[lane],
                  static_cast<int>(lane + 32));
    }
}

TEST(Compactor, ThreadsKeepTheirLane)
{
    // Threads 0 and 32 share lane 0; 33 is lane 1.
    auto warps = compactThreads(maskOf({0, 32, 33}), 64, nullptr, 0);
    ASSERT_EQ(warps.size(), 2u);
    EXPECT_EQ(warps[0].laneThread[0], 0);
    EXPECT_EQ(warps[0].laneThread[1], 33);
    EXPECT_EQ(warps[1].laneThread[0], 32);
}

TEST(Compactor, SparseMasksCompactIntoFewerWarps)
{
    // The threads of every other warp: each lane has 4 candidates,
    // so compaction forms exactly 4 full dynamic warps.
    BlockMask m;
    for (int t = 0; t < 256; ++t) {
        if ((t / 32) % 2 == 0)
            m.set(t);
    }
    auto warps = compactThreads(m, 256, nullptr, 0);
    EXPECT_EQ(warps.size(), 4u);
    unsigned total = 0;
    for (const auto &w : warps)
        total += w.activeLanes();
    EXPECT_EQ(total, m.count());
}

TEST(Compactor, TlbAwareSplitsNonAffineWarps)
{
    CpmConfig cfg;
    cfg.counterBits = 1;
    CommonPageMatrix cpm(cfg);
    // Warps 0 and 1 are affine; warp 2 is a stranger.
    cpm.bump(0, 1);
    // Threads from warps 0, 1, 2 all at lane 0.
    auto warps =
        compactThreads(maskOf({0, 32, 64}), 96, &cpm, /*base=*/0);
    // Baseline would make 3 warps anyway (same lane). Now mix lanes:
    auto mixed = compactThreads(maskOf({0, 33, 66}), 96, &cpm, 0);
    // 0 (warp0) and 33 (warp1) are affine -> same dynamic warp;
    // 66 (warp2) must go to its own warp.
    ASSERT_EQ(mixed.size(), 2u);
    EXPECT_EQ(mixed[0].laneThread[0], 0);
    EXPECT_EQ(mixed[0].laneThread[1], 33);
    EXPECT_EQ(mixed[1].laneThread[2], 66);
    (void)warps;
}

TEST(Compactor, TlbAgnosticPacksRegardlessOfAffinity)
{
    CommonPageMatrix cpm(CpmConfig{}); // all counters zero
    auto warps = compactThreads(maskOf({0, 33, 66}), 96, nullptr, 0);
    EXPECT_EQ(warps.size(), 1u);
    EXPECT_EQ(warps[0].activeLanes(), 3u);
    (void)cpm;
}

TEST(Compactor, ProgressWithNoAffinityAtAll)
{
    CommonPageMatrix cpm(CpmConfig{});
    // 8 threads, all lane 0, from 8 different warps, none affine.
    BlockMask m;
    for (int w = 0; w < 8; ++w)
        m.set(w * 32);
    auto warps = compactThreads(m, 256, &cpm, 0);
    EXPECT_EQ(warps.size(), 8u); // one per thread, but all placed
    unsigned total = 0;
    for (const auto &w : warps)
        total += w.activeLanes();
    EXPECT_EQ(total, 8u);
}

// ------------------------------------------------------ BlockStack

TEST(BlockStack, DivergenceAndReconvergence)
{
    BlockStack s;
    BlockMask full;
    for (int t = 0; t < 128; ++t)
        full.set(t);
    s.reset(0, full);

    BlockMask taken, fall;
    for (int t = 0; t < 128; ++t)
        (t < 64 ? taken : fall).set(t);
    EXPECT_TRUE(s.branch(taken, fall, 1, 2, 3));
    EXPECT_EQ(s.top().block, 1);
    EXPECT_EQ(s.top().mask, taken);

    s.top().block = 3; // taken path reaches the join
    s.reconverge();
    EXPECT_EQ(s.top().block, 2);
    s.top().block = 3;
    s.reconverge();
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.top().mask, full);
}

TEST(BlockStack, UniformBranchRedirects)
{
    BlockStack s;
    BlockMask m;
    m.set(0);
    s.reset(0, m);
    BlockMask none;
    EXPECT_FALSE(s.branch(m, none, 7, 8, 9));
    EXPECT_EQ(s.top().block, 7);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(BlockStack, ClearThreadsEmptiesEntries)
{
    BlockStack s;
    BlockMask m;
    m.set(0);
    m.set(1);
    s.reset(0, m);
    s.clearThreads(m);
    s.reconverge();
    EXPECT_TRUE(s.empty());
}
