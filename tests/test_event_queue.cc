/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace gpummu;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, TiesRunInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(11, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    eq.runUntil(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    std::vector<Cycle> fire_times;
    // A chain: each event schedules the next, 5 deep.
    std::function<void()> chain = [&]() {
        fire_times.push_back(eq.now());
        if (fire_times.size() < 5)
            eq.schedule(eq.now() + 10, chain);
    };
    eq.schedule(10, chain);
    eq.runUntil(1000);
    EXPECT_EQ(fire_times,
              (std::vector<Cycle>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, SameCycleCallbackRunsWithinSameRun)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(5, [&] { eq.schedule(5, [&] { inner = true; }); });
    eq.runUntil(5);
    EXPECT_TRUE(inner);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventCycle(), kCycleNever);
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventCycle(), 42u);
}

TEST(EventQueue, SizeAndEmpty)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.runUntil(3);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ClearDropsEventsAndResetsTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.runUntil(3);
    eq.clear();
    EXPECT_EQ(eq.now(), 0u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 0);
}

namespace {

/** Callable that counts copy-constructions of itself. */
struct CopyCounter
{
    int *copies;
    std::vector<int> *order;
    int id;

    CopyCounter(int *c, std::vector<int> *o, int i)
        : copies(c), order(o), id(i)
    {
    }
    CopyCounter(const CopyCounter &other)
        : copies(other.copies), order(other.order), id(other.id)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&) = default;
    void operator()() const { order->push_back(id); }
};

} // namespace

// Regression for the runUntil copy bug: priority_queue::top() only
// exposes a const reference, so the old implementation deep-copied
// every Event (std::function included) before dispatching it. The
// heap is now popped with pop_heap + move-from-back; dispatch must
// perform zero copies of the stored callable.
TEST(EventQueue, DispatchMovesCallbacksWithoutCopying)
{
    EventQueue eq;
    int copies = 0;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(static_cast<Cycle>(1 + i % 4),
                    CopyCounter(&copies, &order, i));
    // Wrapping the callable in std::function may copy during
    // scheduling; only dispatch is under test.
    const int copies_after_schedule = copies;
    eq.runUntil(10);
    EXPECT_EQ(order.size(), 16u);
    EXPECT_EQ(copies, copies_after_schedule)
        << "runUntil copied callbacks instead of moving them";
}

// Same-cycle events keep FIFO order even when interleaved with other
// cycles and when callbacks append more same-cycle events mid-run.
TEST(EventQueue, SameCycleFifoWithCallbackScheduledEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(50); });
    eq.schedule(3, [&] {
        order.push_back(30);
        // Scheduled *during* cycle 3: must run after every event
        // already queued for cycle 3, before cycle 5.
        eq.schedule(3, [&] { order.push_back(33); });
        eq.schedule(5, [&] { order.push_back(52); });
    });
    eq.schedule(5, [&] { order.push_back(51); });
    eq.schedule(3, [&] { order.push_back(31); });
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{30, 31, 33, 50, 51, 52}));
}

// Raw function-pointer events share the (when, seq) ordering domain
// with std::function events: interleaving the two kinds — including
// raw events appended from inside a same-cycle callback — must fire
// in exact scheduling order.
TEST(EventQueue, RawAndFunctionEventsShareOneOrderingDomain)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(4, [&] { order.push_back(0); });
    eq.scheduleRaw(
        4, [](void *ctx, Cycle) {
            static_cast<std::vector<int> *>(ctx)->push_back(1);
        },
        &order);
    eq.schedule(4, [&] {
        order.push_back(2);
        // Same-cycle raw event scheduled during dispatch: gets the
        // next seq, so it fires after everything already queued.
        eq.scheduleRaw(
            4, [](void *ctx, Cycle) {
                static_cast<std::vector<int> *>(ctx)->push_back(4);
            },
            &order);
    });
    eq.scheduleRaw(
        4, [](void *ctx, Cycle) {
            static_cast<std::vector<int> *>(ctx)->push_back(3);
        },
        &order);
    eq.runUntil(4);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RawCallbackReceivesContextAndFireCycle)
{
    EventQueue eq;
    struct Probe
    {
        Cycle fired_at = 0;
        int calls = 0;
    } probe;
    eq.scheduleRaw(
        17, [](void *ctx, Cycle now) {
            auto *p = static_cast<Probe *>(ctx);
            p->fired_at = now;
            ++p->calls;
        },
        &probe);
    eq.runUntil(40);
    EXPECT_EQ(probe.calls, 1);
    EXPECT_EQ(probe.fired_at, 17u);
}

TEST(EventQueue, EventsFiredCountsBothKindsAndResetsOnClear)
{
    EventQueue eq;
    EXPECT_EQ(eq.eventsFired(), 0u);
    eq.schedule(1, [] {});
    eq.schedule(1, [] {});
    eq.scheduleRaw(2, [](void *, Cycle) {}, &eq);
    eq.runUntil(5);
    EXPECT_EQ(eq.eventsFired(), 3u);
    eq.clear();
    EXPECT_EQ(eq.eventsFired(), 0u);
}

// clear() called from inside a firing callback: the rest of the
// cycle's events are dropped, the queue is fully reset (time
// included), and runUntil returns without clobbering the reset.
TEST(EventQueue, ClearMidDrainDropsRestOfCycleAndResetsTime)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(8, [&] { order.push_back(0); });
    eq.schedule(8, [&] {
        order.push_back(1);
        eq.clear();
    });
    eq.schedule(8, [&] { order.push_back(2); }); // must be dropped
    eq.schedule(9, [&] { order.push_back(3); }); // must be dropped
    eq.runUntil(20);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(eq.now(), 0u) << "clear() resets time even mid-drain";
    EXPECT_TRUE(eq.empty());

    // The reset queue is immediately reusable from cycle 0.
    int fired = 0;
    eq.schedule(2, [&] { ++fired; });
    eq.runUntil(5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 5u);
}

// Capacity policy: buffers may grow to a run's high-water mark, but
// clear()/shrink() must actually release the backing store — the
// regression was clear() keeping stale capacity pinned forever.
TEST(EventQueue, ClearReleasesStaleCapacity)
{
    EventQueue eq;
    for (int i = 0; i < 4096; ++i)
        eq.schedule(static_cast<Cycle>(1 + i), [] {});
    EXPECT_GE(eq.heapCapacity(), 4096u);
    eq.clear();
    EXPECT_EQ(eq.heapCapacity(), 0u)
        << "clear() must release heap backing store";
    EXPECT_EQ(eq.drainCapacity(), 0u);
}

TEST(EventQueue, ShrinkReleasesCapacityDownToLiveEvents)
{
    EventQueue eq;
    for (int i = 0; i < 1024; ++i)
        eq.schedule(static_cast<Cycle>(1 + i), [] {});
    eq.runUntil(1020); // leaves 4 events pending
    ASSERT_EQ(eq.size(), 4u);
    eq.shrink();
    EXPECT_LE(eq.heapCapacity(), 8u)
        << "shrink() must trim capacity to the live event count";
    // Pending events survive the shrink.
    eq.runUntil(2000);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.runUntil(50);
    EXPECT_DEATH(eq.schedule(49, [] {}), "past");
}

TEST(EventQueueDeathTest, ReenteringRunUntilFromCallbackPanics)
{
    EventQueue eq;
    eq.schedule(3, [&] { eq.runUntil(10); });
    EXPECT_DEATH(eq.runUntil(5), "re-entered");
}
