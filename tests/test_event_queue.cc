/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace gpummu;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, TiesRunInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(11, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    eq.runUntil(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    std::vector<Cycle> fire_times;
    // A chain: each event schedules the next, 5 deep.
    std::function<void()> chain = [&]() {
        fire_times.push_back(eq.now());
        if (fire_times.size() < 5)
            eq.schedule(eq.now() + 10, chain);
    };
    eq.schedule(10, chain);
    eq.runUntil(1000);
    EXPECT_EQ(fire_times,
              (std::vector<Cycle>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, SameCycleCallbackRunsWithinSameRun)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(5, [&] { eq.schedule(5, [&] { inner = true; }); });
    eq.runUntil(5);
    EXPECT_TRUE(inner);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventCycle(), kCycleNever);
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventCycle(), 42u);
}

TEST(EventQueue, SizeAndEmpty)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.runUntil(3);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ClearDropsEventsAndResetsTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.runUntil(3);
    eq.clear();
    EXPECT_EQ(eq.now(), 0u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 0);
}

namespace {

/** Callable that counts copy-constructions of itself. */
struct CopyCounter
{
    int *copies;
    std::vector<int> *order;
    int id;

    CopyCounter(int *c, std::vector<int> *o, int i)
        : copies(c), order(o), id(i)
    {
    }
    CopyCounter(const CopyCounter &other)
        : copies(other.copies), order(other.order), id(other.id)
    {
        ++*copies;
    }
    CopyCounter(CopyCounter &&) = default;
    void operator()() const { order->push_back(id); }
};

} // namespace

// Regression for the runUntil copy bug: priority_queue::top() only
// exposes a const reference, so the old implementation deep-copied
// every Event (std::function included) before dispatching it. The
// heap is now popped with pop_heap + move-from-back; dispatch must
// perform zero copies of the stored callable.
TEST(EventQueue, DispatchMovesCallbacksWithoutCopying)
{
    EventQueue eq;
    int copies = 0;
    std::vector<int> order;
    for (int i = 0; i < 16; ++i)
        eq.schedule(static_cast<Cycle>(1 + i % 4),
                    CopyCounter(&copies, &order, i));
    // Wrapping the callable in std::function may copy during
    // scheduling; only dispatch is under test.
    const int copies_after_schedule = copies;
    eq.runUntil(10);
    EXPECT_EQ(order.size(), 16u);
    EXPECT_EQ(copies, copies_after_schedule)
        << "runUntil copied callbacks instead of moving them";
}

// Same-cycle events keep FIFO order even when interleaved with other
// cycles and when callbacks append more same-cycle events mid-run.
TEST(EventQueue, SameCycleFifoWithCallbackScheduledEvents)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(50); });
    eq.schedule(3, [&] {
        order.push_back(30);
        // Scheduled *during* cycle 3: must run after every event
        // already queued for cycle 3, before cycle 5.
        eq.schedule(3, [&] { order.push_back(33); });
        eq.schedule(5, [&] { order.push_back(52); });
    });
    eq.schedule(5, [&] { order.push_back(51); });
    eq.schedule(3, [&] { order.push_back(31); });
    eq.runUntil(10);
    EXPECT_EQ(order, (std::vector<int>{30, 31, 33, 50, 51, 52}));
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.runUntil(50);
    EXPECT_DEATH(eq.schedule(49, [] {}), "past");
}
