/**
 * @file
 * Unit tests for the discrete event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace gpummu;

TEST(EventQueue, RunsEventsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.runUntil(100);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 100u);
}

TEST(EventQueue, TiesRunInSchedulingOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.runUntil(7);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilStopsAtBoundary)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(11, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    eq.runUntil(11);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, CallbackCanScheduleMore)
{
    EventQueue eq;
    std::vector<Cycle> fire_times;
    // A chain: each event schedules the next, 5 deep.
    std::function<void()> chain = [&]() {
        fire_times.push_back(eq.now());
        if (fire_times.size() < 5)
            eq.schedule(eq.now() + 10, chain);
    };
    eq.schedule(10, chain);
    eq.runUntil(1000);
    EXPECT_EQ(fire_times,
              (std::vector<Cycle>{10, 20, 30, 40, 50}));
}

TEST(EventQueue, SameCycleCallbackRunsWithinSameRun)
{
    EventQueue eq;
    bool inner = false;
    eq.schedule(5, [&] { eq.schedule(5, [&] { inner = true; }); });
    eq.runUntil(5);
    EXPECT_TRUE(inner);
}

TEST(EventQueue, NextEventCycle)
{
    EventQueue eq;
    EXPECT_EQ(eq.nextEventCycle(), kCycleNever);
    eq.schedule(42, [] {});
    EXPECT_EQ(eq.nextEventCycle(), 42u);
}

TEST(EventQueue, SizeAndEmpty)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_EQ(eq.size(), 2u);
    eq.runUntil(3);
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueue, ClearDropsEventsAndResetsTime)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.runUntil(3);
    eq.clear();
    EXPECT_EQ(eq.now(), 0u);
    eq.runUntil(100);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue eq;
    eq.runUntil(50);
    EXPECT_DEATH(eq.schedule(49, [] {}), "past");
}
