/**
 * @file
 * Unit tests for the CACTI-style TLB access-time model.
 */

#include <gtest/gtest.h>

#include <cstddef>
#include <limits>

#include "mmu/cacti_model.hh"

using namespace gpummu;

TEST(CactiModel, SmallArraysAreFree)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(64), 0u);
    EXPECT_EQ(m.sizePenalty(128), 0u);
}

TEST(CactiModel, PenaltyGrowsPerDoubling)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(256), 2u);
    EXPECT_EQ(m.sizePenalty(512), 4u);
    EXPECT_GT(m.sizePenalty(1024), m.sizePenalty(512));
}

// Regression for the size-penalty gap: the old loop only charged for
// full doublings reached, so every size in (128, 256) - e.g. a
// 192-entry CAM - was billed 0 cycles, the same as a 128-entry array
// that fits under L1 set selection. A non-power-of-two array must pay
// for the power-of-two it rounds up to.
TEST(CactiModel, NonPowerOfTwoSizesPayForTheNextDoubling)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(128), 0u);
    EXPECT_EQ(m.sizePenalty(129), 2u);
    EXPECT_EQ(m.sizePenalty(192), 2u);
    EXPECT_EQ(m.sizePenalty(255), 2u);
    EXPECT_EQ(m.sizePenalty(256), 2u);
    EXPECT_EQ(m.sizePenalty(257), 4u);
    EXPECT_EQ(m.sizePenalty(384), 4u);
    EXPECT_EQ(m.sizePenalty(512), 4u);
    EXPECT_EQ(m.sizePenalty(513), 6u);
}

// Regression for the unsigned-overflow infinite loop: the old
// `for (sz = 128; sz < entries; sz *= 2)` wrapped sz to 0 once it
// passed SIZE_MAX/2, so any entries > SIZE_MAX/2 + 1 (reachable from
// a fuzzed or misparsed --grid spec) spun forever. The closed form
// must terminate and keep charging 2 cycles per started doubling all
// the way to SIZE_MAX.
TEST(CactiModel, ExtremeSizesTerminateWithExactPenalty)
{
    CactiModel m;
    constexpr std::size_t kMax = std::numeric_limits<std::size_t>::max();
    // 128 * 2^55 = 2^62: exactly 55 doublings.
    EXPECT_EQ(m.sizePenalty(std::size_t{1} << 62), 110u);
    EXPECT_EQ(m.sizePenalty((std::size_t{1} << 62) + 1), 112u);
    // Values past SIZE_MAX/2, where the old loop never terminated.
    EXPECT_EQ(m.sizePenalty(kMax / 2 + 2), 114u);
    EXPECT_EQ(m.sizePenalty(kMax - 1), 114u);
    EXPECT_EQ(m.sizePenalty(kMax), 114u);
    // Monotonicity across the extreme range.
    EXPECT_LE(m.sizePenalty(std::size_t{1} << 62),
              m.sizePenalty(kMax));
}

// The exact doubling boundaries the model promises: 128 is free, the
// first entry past a power-of-two pays for the next doubling.
TEST(CactiModel, SizePenaltyDoublingBoundaries)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(127), 0u);
    EXPECT_EQ(m.sizePenalty(128), 0u);
    EXPECT_EQ(m.sizePenalty(129), 2u);
    EXPECT_EQ(m.sizePenalty(256), 2u);
    EXPECT_EQ(m.sizePenalty(257), 4u);
    EXPECT_EQ(m.sizePenalty(1024), 6u);
    EXPECT_EQ(m.sizePenalty(1025), 8u);
}

TEST(CactiModel, AreaScalesWithEntriesAndPorts)
{
    CactiModel m;
    // Unit definition: 128-entry single-ported CAM.
    EXPECT_DOUBLE_EQ(m.camArea(128, 1), 1.0);
    // Linear in entries.
    EXPECT_DOUBLE_EQ(m.camArea(256, 1), 2.0);
    EXPECT_DOUBLE_EQ(m.camArea(512, 1), 4.0);
    // Quadratic in ports: growing 1 -> 4 ports more than doubles.
    EXPECT_GT(m.camArea(128, 4), 2.0 * m.camArea(128, 1));
    // RAM arrays are a quarter of the CAM cell.
    EXPECT_DOUBLE_EQ(m.ramArea(4096, 2), 0.25 * m.camArea(4096, 2));
}

TEST(CactiModel, IdealDoesNotSuppressArea)
{
    CactiModel m;
    m.ideal = true;
    EXPECT_GT(m.camArea(512, 32), m.camArea(128, 4));
    EXPECT_DOUBLE_EQ(m.camArea(128, 1), 1.0);
}

TEST(CactiModel, PortPenaltyBoundaries)
{
    CactiModel m;
    EXPECT_EQ(m.portPenalty(4), 0u);
    EXPECT_EQ(m.portPenalty(5), 1u);
    EXPECT_EQ(m.portPenalty(8), 1u);
    EXPECT_EQ(m.portPenalty(9), 2u);
    EXPECT_EQ(m.portPenalty(16), 2u);
    EXPECT_EQ(m.portPenalty(17), 3u);
}

TEST(CactiModel, IdealSuppressesNonPowerOfTwoPenalty)
{
    CactiModel m;
    m.ideal = true;
    EXPECT_EQ(m.sizePenalty(192), 0u);
    EXPECT_EQ(m.sizePenalty(129), 0u);
}

TEST(CactiModel, PortPenalties)
{
    CactiModel m;
    EXPECT_EQ(m.portPenalty(1), 0u);
    EXPECT_EQ(m.portPenalty(3), 0u);
    EXPECT_EQ(m.portPenalty(4), 0u);
    EXPECT_EQ(m.portPenalty(8), 1u);
    EXPECT_EQ(m.portPenalty(16), 2u);
    EXPECT_EQ(m.portPenalty(32), 3u);
}

TEST(CactiModel, AccessPenaltyIsSum)
{
    CactiModel m;
    EXPECT_EQ(m.accessPenalty(512, 32),
              m.sizePenalty(512) + m.portPenalty(32));
}

TEST(CactiModel, IdealDisablesEverything)
{
    CactiModel m;
    m.ideal = true;
    EXPECT_EQ(m.accessPenalty(512, 32), 0u);
    EXPECT_EQ(m.sizePenalty(4096), 0u);
    EXPECT_EQ(m.portPenalty(32), 0u);
}
