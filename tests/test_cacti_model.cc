/**
 * @file
 * Unit tests for the CACTI-style TLB access-time model.
 */

#include <gtest/gtest.h>

#include "mmu/cacti_model.hh"

using namespace gpummu;

TEST(CactiModel, SmallArraysAreFree)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(64), 0u);
    EXPECT_EQ(m.sizePenalty(128), 0u);
}

TEST(CactiModel, PenaltyGrowsPerDoubling)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(256), 2u);
    EXPECT_EQ(m.sizePenalty(512), 4u);
    EXPECT_GT(m.sizePenalty(1024), m.sizePenalty(512));
}

// Regression for the size-penalty gap: the old loop only charged for
// full doublings reached, so every size in (128, 256) - e.g. a
// 192-entry CAM - was billed 0 cycles, the same as a 128-entry array
// that fits under L1 set selection. A non-power-of-two array must pay
// for the power-of-two it rounds up to.
TEST(CactiModel, NonPowerOfTwoSizesPayForTheNextDoubling)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(128), 0u);
    EXPECT_EQ(m.sizePenalty(129), 2u);
    EXPECT_EQ(m.sizePenalty(192), 2u);
    EXPECT_EQ(m.sizePenalty(255), 2u);
    EXPECT_EQ(m.sizePenalty(256), 2u);
    EXPECT_EQ(m.sizePenalty(257), 4u);
    EXPECT_EQ(m.sizePenalty(384), 4u);
    EXPECT_EQ(m.sizePenalty(512), 4u);
    EXPECT_EQ(m.sizePenalty(513), 6u);
}

TEST(CactiModel, PortPenaltyBoundaries)
{
    CactiModel m;
    EXPECT_EQ(m.portPenalty(4), 0u);
    EXPECT_EQ(m.portPenalty(5), 1u);
    EXPECT_EQ(m.portPenalty(8), 1u);
    EXPECT_EQ(m.portPenalty(9), 2u);
    EXPECT_EQ(m.portPenalty(16), 2u);
    EXPECT_EQ(m.portPenalty(17), 3u);
}

TEST(CactiModel, IdealSuppressesNonPowerOfTwoPenalty)
{
    CactiModel m;
    m.ideal = true;
    EXPECT_EQ(m.sizePenalty(192), 0u);
    EXPECT_EQ(m.sizePenalty(129), 0u);
}

TEST(CactiModel, PortPenalties)
{
    CactiModel m;
    EXPECT_EQ(m.portPenalty(1), 0u);
    EXPECT_EQ(m.portPenalty(3), 0u);
    EXPECT_EQ(m.portPenalty(4), 0u);
    EXPECT_EQ(m.portPenalty(8), 1u);
    EXPECT_EQ(m.portPenalty(16), 2u);
    EXPECT_EQ(m.portPenalty(32), 3u);
}

TEST(CactiModel, AccessPenaltyIsSum)
{
    CactiModel m;
    EXPECT_EQ(m.accessPenalty(512, 32),
              m.sizePenalty(512) + m.portPenalty(32));
}

TEST(CactiModel, IdealDisablesEverything)
{
    CactiModel m;
    m.ideal = true;
    EXPECT_EQ(m.accessPenalty(512, 32), 0u);
    EXPECT_EQ(m.sizePenalty(4096), 0u);
    EXPECT_EQ(m.portPenalty(32), 0u);
}
