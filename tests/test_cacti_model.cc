/**
 * @file
 * Unit tests for the CACTI-style TLB access-time model.
 */

#include <gtest/gtest.h>

#include "mmu/cacti_model.hh"

using namespace gpummu;

TEST(CactiModel, SmallArraysAreFree)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(64), 0u);
    EXPECT_EQ(m.sizePenalty(128), 0u);
}

TEST(CactiModel, PenaltyGrowsPerDoubling)
{
    CactiModel m;
    EXPECT_EQ(m.sizePenalty(256), 2u);
    EXPECT_EQ(m.sizePenalty(512), 4u);
    EXPECT_GT(m.sizePenalty(1024), m.sizePenalty(512));
}

TEST(CactiModel, PortPenalties)
{
    CactiModel m;
    EXPECT_EQ(m.portPenalty(1), 0u);
    EXPECT_EQ(m.portPenalty(3), 0u);
    EXPECT_EQ(m.portPenalty(4), 0u);
    EXPECT_EQ(m.portPenalty(8), 1u);
    EXPECT_EQ(m.portPenalty(16), 2u);
    EXPECT_EQ(m.portPenalty(32), 3u);
}

TEST(CactiModel, AccessPenaltyIsSum)
{
    CactiModel m;
    EXPECT_EQ(m.accessPenalty(512, 32),
              m.sizePenalty(512) + m.portPenalty(32));
}

TEST(CactiModel, IdealDisablesEverything)
{
    CactiModel m;
    m.ideal = true;
    EXPECT_EQ(m.accessPenalty(512, 32), 0u);
    EXPECT_EQ(m.sizePenalty(4096), 0u);
    EXPECT_EQ(m.portPenalty(32), 0u);
}
