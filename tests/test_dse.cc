/**
 * @file
 * Design-space autotuner tests: exact Pareto extraction over every
 * edge case the frontier math has (duplicates, one-axis ties, single
 * points, all-dominated sets), strict grid-spec parsing, stable
 * point hashing, the area cost model, and the load-bearing resume
 * contract — a fresh sweep and a fully-cached resumed sweep must
 * produce byte-identical frontier JSON with zero new simulations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <stdexcept>

#include "dse/autotuner.hh"
#include "dse/cost.hh"
#include "dse/grid.hh"
#include "dse/pareto.hh"
#include "dse/report.hh"

using namespace gpummu;

namespace {

std::vector<std::size_t>
frontierOf(std::vector<ParetoPoint> pts)
{
    return paretoFrontier(pts);
}

/** O(n^2) reference: survive iff nothing dominates you. */
std::vector<std::size_t>
bruteFrontier(const std::vector<ParetoPoint> &pts)
{
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < pts.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < pts.size() && !dominated; ++j)
            dominated = j != i && paretoDominates(pts[j], pts[i]);
        if (!dominated)
            out.push_back(i);
    }
    return out;
}

DseGrid
tinyGrid()
{
    DseGrid g;
    const bool ok = namedGrid("tiny", g);
    EXPECT_TRUE(ok);
    return g;
}

DseOptions
tinyOptions()
{
    DseOptions opt;
    opt.bench = BenchmarkId::Bfs;
    opt.params.scale = 0.02;
    opt.params.seed = 42;
    opt.numCores = 4;
    opt.jobs = 2;
    return opt;
}

} // namespace

TEST(Pareto, EmptyAndSinglePoint)
{
    EXPECT_TRUE(frontierOf({}).empty());
    const auto f = frontierOf({{3.0, 7.0}});
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], 0u);
}

TEST(Pareto, DominanceDefinition)
{
    EXPECT_TRUE(paretoDominates({1, 1}, {2, 2}));
    EXPECT_TRUE(paretoDominates({1, 2}, {1, 3})); // tie on x
    EXPECT_TRUE(paretoDominates({1, 2}, {2, 2})); // tie on y
    EXPECT_FALSE(paretoDominates({1, 2}, {1, 2})); // duplicate
    EXPECT_FALSE(paretoDominates({1, 3}, {2, 2})); // incomparable
}

TEST(Pareto, DuplicatePointsSurviveTogether)
{
    // Two exact copies of the best point: neither dominates the
    // other, so both stay; the strictly-worse third point falls.
    const auto f = frontierOf({{1, 1}, {1, 1}, {2, 2}});
    EXPECT_EQ(f, (std::vector<std::size_t>{0, 1}));
    // Duplicates of a dominated point fall together.
    const auto g = frontierOf({{1, 1}, {3, 3}, {3, 3}});
    EXPECT_EQ(g, (std::vector<std::size_t>{0}));
}

TEST(Pareto, TiesOnOneAxisEliminateTheLoser)
{
    // Same x, different y: only the lower y survives.
    const auto f = frontierOf({{1, 5}, {1, 3}});
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], 1u);
    // Same y, different x: only the lower x survives.
    const auto g = frontierOf({{5, 1}, {3, 1}});
    ASSERT_EQ(g.size(), 1u);
    EXPECT_EQ(g[0], 1u);
}

TEST(Pareto, AllDominatedByOnePoint)
{
    const auto f =
        frontierOf({{5, 5}, {4, 6}, {1, 1}, {6, 4}, {2, 2}});
    ASSERT_EQ(f.size(), 1u);
    EXPECT_EQ(f[0], 2u);
}

TEST(Pareto, ClassicStaircase)
{
    // (1,9) (2,7) (4,4) (7,2) all incomparable; fillers dominated.
    const std::vector<ParetoPoint> pts{
        {1, 9}, {2, 7}, {4, 4}, {7, 2}, {3, 8}, {5, 5}, {8, 3}};
    const auto f = frontierOf(pts);
    EXPECT_EQ(f, (std::vector<std::size_t>{0, 1, 2, 3}));
}

TEST(Pareto, MatchesBruteForceOnPseudoRandomSets)
{
    // Deterministic LCG; values land on a coarse lattice so
    // duplicates and one-axis ties occur constantly.
    std::uint64_t state = 12345;
    auto next = [&state] {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return (state >> 33) % 16;
    };
    for (int round = 0; round < 50; ++round) {
        std::vector<ParetoPoint> pts;
        const std::size_t n = 1 + next() * 4;
        for (std::size_t i = 0; i < n; ++i) {
            pts.push_back(ParetoPoint{static_cast<double>(next()),
                                      static_cast<double>(next())});
        }
        auto fast = paretoFrontier(pts);
        auto brute = bruteFrontier(pts);
        std::sort(fast.begin(), fast.end());
        std::sort(brute.begin(), brute.end());
        EXPECT_EQ(fast, brute) << "round " << round;
    }
}

TEST(Pareto, ResultIndependentOfInputOrder)
{
    std::vector<ParetoPoint> pts{
        {1, 9}, {2, 7}, {4, 4}, {3, 8}, {4, 4}, {2, 2}};
    auto asSet = [&pts](const std::vector<std::size_t> &idx) {
        std::vector<ParetoPoint> out;
        for (std::size_t i : idx)
            out.push_back(pts[i]);
        std::sort(out.begin(), out.end(),
                  [](const ParetoPoint &a, const ParetoPoint &b) {
                      return a.x != b.x ? a.x < b.x : a.y < b.y;
                  });
        return out;
    };
    const auto ref = asSet(paretoFrontier(pts));
    std::reverse(pts.begin(), pts.end());
    const auto rev = asSet(paretoFrontier(pts));
    ASSERT_EQ(ref.size(), rev.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(ref[i].x, rev[i].x);
        EXPECT_EQ(ref[i].y, rev[i].y);
    }
}

TEST(Grid, ParsesFullSpecAndRoundTrips)
{
    DseGrid g;
    std::string err;
    ASSERT_TRUE(parseGridSpec(
        "tlb_entries=64,128;tlb_ways=2,4;tlb_ports=2;pwc_lines=0,16;"
        "l2tlb_entries=0,4096;l2tlb_ports=2,4;walkers=1,2,1s;"
        "page=4k,2m",
        g, &err))
        << err;
    EXPECT_EQ(g.numPoints(), 2u * 2 * 1 * 2 * 2 * 2 * 3 * 2);
    // The canonical spec string reparses to the same grid.
    DseGrid g2;
    ASSERT_TRUE(parseGridSpec(gridSpecString(g), g2, &err)) << err;
    EXPECT_EQ(gridSpecString(g), gridSpecString(g2));
    EXPECT_EQ(g2.numPoints(), g.numPoints());
}

TEST(Grid, RejectsMalformedSpecs)
{
    DseGrid g;
    std::string err;
    // The misparse family the substrate bugfixes close off: trailing
    // garbage, overflow, zero where meaningless, unknown knobs.
    EXPECT_FALSE(parseGridSpec("tlb_entries=64abc", g, &err));
    EXPECT_FALSE(parseGridSpec(
        "tlb_entries=99999999999999999999999999", g, &err));
    EXPECT_FALSE(parseGridSpec("tlb_entries=0", g, &err));
    EXPECT_FALSE(parseGridSpec("tlb_ports=-2", g, &err));
    EXPECT_FALSE(parseGridSpec("tlb_entries=", g, &err));
    EXPECT_FALSE(parseGridSpec("frobnicate=3", g, &err));
    EXPECT_FALSE(parseGridSpec("walkers=2s", g, &err)); // sched => 1
    EXPECT_FALSE(parseGridSpec("walkers=0", g, &err));
    EXPECT_FALSE(parseGridSpec("page=1g", g, &err));
    EXPECT_FALSE(parseGridSpec("", g, &err));
    // pwc_lines=0 and l2tlb_entries=0 are meaningful (disabled).
    EXPECT_TRUE(parseGridSpec("pwc_lines=0;l2tlb_entries=0", g, &err))
        << err;
}

TEST(Grid, ExpansionValidatesGeometry)
{
    DseGrid g;
    std::string err;
    ASSERT_TRUE(
        parseGridSpec("tlb_entries=96;tlb_ways=64", g, &err));
    EXPECT_THROW(expandGrid(g), std::invalid_argument);
    DseGrid g2;
    ASSERT_TRUE(parseGridSpec("l2tlb_entries=100", g2, &err));
    EXPECT_THROW(expandGrid(g2), std::invalid_argument);
}

TEST(Grid, NamedGridsExpand)
{
    for (const char *name : {"tiny", "smoke", "default"}) {
        DseGrid g;
        ASSERT_TRUE(namedGrid(name, g)) << name;
        EXPECT_FALSE(expandGrid(g).empty()) << name;
    }
    DseGrid g;
    EXPECT_FALSE(namedGrid("nonesuch", g));
    EXPECT_EQ(tinyGrid().numPoints(), 8u);
    DseGrid dflt;
    ASSERT_TRUE(namedGrid("default", dflt));
    EXPECT_GE(dflt.numPoints(), 500u); // the acceptance-scale sweep
}

TEST(Grid, PointKeyIsStableAndSensitive)
{
    const DseOptions opt = tinyOptions();
    DseKnobs k;
    k.tlbEntries = 128;
    // Pinned identity: a change here means every cache in the wild
    // silently invalidates — bump kDseSchemaVersion if intentional.
    WorkloadParams params;
    params.scale = 0.03;
    params.seed = 42;
    EXPECT_EQ(dsePointKey(BenchmarkId::Bfs, params, 4, k),
              "2a391246d276eab6");
    // Same inputs, separately constructed: same key.
    EXPECT_EQ(dsePointKey(opt.bench, opt.params, 4, k),
              dsePointKey(opt.bench, opt.params, 4, k));
    // Any input change moves the key.
    DseKnobs k2 = k;
    k2.tlbEntries = 256;
    EXPECT_NE(dsePointKey(opt.bench, opt.params, 4, k2),
              dsePointKey(opt.bench, opt.params, 4, k));
    WorkloadParams p2 = opt.params;
    p2.seed = 43;
    EXPECT_NE(dsePointKey(opt.bench, p2, 4, k),
              dsePointKey(opt.bench, opt.params, 4, k));
    EXPECT_NE(dsePointKey(BenchmarkId::Kmeans, opt.params, 4, k),
              dsePointKey(opt.bench, opt.params, 4, k));
    EXPECT_NE(dsePointKey(opt.bench, opt.params, 8, k),
              dsePointKey(opt.bench, opt.params, 4, k));
}

TEST(Grid, MakeConfigMapsEveryKnob)
{
    DseKnobs k;
    k.tlbEntries = 256;
    k.tlbWays = 8;
    k.tlbPorts = 2;
    k.pwcLines = 0;
    k.l2tlbEntries = 2048;
    k.l2tlbPorts = 4;
    k.walkers = 2;
    k.walkSched = false;
    k.largePages = true;
    const SystemConfig cfg = makeDseConfig(k, 6);
    EXPECT_EQ(cfg.numCores, 6u);
    EXPECT_TRUE(cfg.core.mmu.enabled);
    EXPECT_EQ(cfg.core.mmu.tlb.entries, 256u);
    EXPECT_EQ(cfg.core.mmu.tlb.ways, 8u);
    EXPECT_EQ(cfg.core.mmu.tlb.ports, 2u);
    EXPECT_EQ(cfg.core.mmu.ptw.pwcLines, 0u);
    EXPECT_EQ(cfg.core.mmu.ptw.numWalkers, 2u);
    EXPECT_FALSE(cfg.core.mmu.ptw.scheduling);
    EXPECT_TRUE(cfg.l2tlb.enabled);
    EXPECT_EQ(cfg.l2tlb.entries, 2048u);
    EXPECT_EQ(cfg.l2tlb.ports, 4u);
    EXPECT_TRUE(cfg.largePages);
    EXPECT_EQ(cfg.name, "dse-tlb256e8w2p-pwc0-l22048e4p-w2-2m");
    // l2tlb disabled when the entry knob is 0.
    DseKnobs k0 = k;
    k0.l2tlbEntries = 0;
    EXPECT_FALSE(makeDseConfig(k0, 6).l2tlb.enabled);
}

TEST(Cost, AreaIsMonotoneInEveryKnob)
{
    const DseCostModel cost;
    DseKnobs k; // 128e/4w/4p, pwc16, no l2, 1 walker, 4k
    const double base = cost.area(k, 8);
    EXPECT_GT(base, 0.0);

    auto bump = [&cost, &k](auto mutate) {
        DseKnobs m = k;
        mutate(m);
        return cost.area(m, 8);
    };
    EXPECT_GT(bump([](DseKnobs &m) { m.tlbEntries = 256; }), base);
    EXPECT_GT(bump([](DseKnobs &m) { m.tlbPorts = 8; }), base);
    EXPECT_GT(bump([](DseKnobs &m) { m.pwcLines = 64; }), base);
    EXPECT_GT(bump([](DseKnobs &m) { m.l2tlbEntries = 4096; }), base);
    EXPECT_GT(bump([](DseKnobs &m) { m.walkers = 4; }), base);
    // Scheduled walking costs more than one walker (the queue), less
    // than four.
    const double sched =
        bump([](DseKnobs &m) { m.walkSched = true; });
    EXPECT_GT(sched, base);
    EXPECT_LT(sched, bump([](DseKnobs &m) { m.walkers = 4; }));
    // Per-core structures scale with the core count; the shared L2
    // is counted once.
    EXPECT_DOUBLE_EQ(cost.area(k, 16), 2.0 * cost.area(k, 8));
    DseKnobs l2 = k;
    l2.l2tlbEntries = 4096;
    EXPECT_LT(cost.area(l2, 16) - cost.area(l2, 8),
              cost.area(l2, 8));
}

TEST(Dse, FreshAndResumedSweepsAreByteIdentical)
{
    const DseGrid grid = tinyGrid();
    const DseOptions opt = tinyOptions();

    const DseResult fresh = runDse(grid, opt);
    EXPECT_EQ(fresh.simulated, 8u);
    EXPECT_EQ(fresh.reused, 0u);
    ASSERT_EQ(fresh.points.size(), 8u);
    EXPECT_FALSE(fresh.frontier.empty());
    const std::string fresh_json = emitDseJson(fresh);

    // Points sorted by key; every frontier index flagged.
    for (std::size_t i = 1; i < fresh.points.size(); ++i)
        EXPECT_LT(fresh.points[i - 1].key, fresh.points[i].key);
    for (std::size_t idx : fresh.frontier)
        EXPECT_TRUE(fresh.points[idx].pareto);

    // Resume from the emitted JSON: zero simulations, identical
    // bytes — the acceptance contract of the resumable sweep.
    std::map<std::string, DsePointMetrics> cache;
    std::string err;
    ASSERT_TRUE(loadDseCache(fresh_json, cache, &err)) << err;
    EXPECT_EQ(cache.size(), 8u);
    const DseResult resumed = runDse(grid, opt, cache);
    EXPECT_EQ(resumed.simulated, 0u);
    EXPECT_EQ(resumed.reused, 8u);
    EXPECT_EQ(emitDseJson(resumed), fresh_json);

    // A partial cache simulates exactly the missing points and still
    // converges to the same bytes.
    std::map<std::string, DsePointMetrics> partial(cache);
    partial.erase(partial.begin());
    partial.erase(partial.begin());
    const DseResult half = runDse(grid, opt, partial);
    EXPECT_EQ(half.simulated, 2u);
    EXPECT_EQ(half.reused, 6u);
    EXPECT_EQ(emitDseJson(half), fresh_json);

    // The emitted payload validates against its own schema.
    const DseValidation val = validateDseJson(fresh_json);
    EXPECT_TRUE(val.ok()) << (val.errors.empty()
                                  ? ""
                                  : val.errors.front());
}

TEST(Dse, CacheLoaderRejectsCorruption)
{
    std::map<std::string, DsePointMetrics> cache;
    std::string err;
    EXPECT_FALSE(loadDseCache("not json", cache, &err));
    EXPECT_FALSE(loadDseCache("[]", cache, &err));
    EXPECT_FALSE(loadDseCache("{\"points\":[]}", cache, &err));
    // Future schema versions are rejected loudly.
    EXPECT_FALSE(loadDseCache(
        "{\"schema_version\":999,\"points\":[]}", cache, &err));
    EXPECT_NE(err.find("schema_version"), std::string::npos);
    // A key repeated with conflicting metrics must not resume.
    const char *conflict =
        "{\"schema_version\":1,\"points\":["
        "{\"key\":\"0123456789abcdef\",\"cycles\":10,"
        "\"instructions\":1,\"tlb_accesses\":1,\"tlb_hits\":1,"
        "\"walk_refs_issued\":1,\"avg_tlb_miss_latency\":1.5},"
        "{\"key\":\"0123456789abcdef\",\"cycles\":20,"
        "\"instructions\":1,\"tlb_accesses\":1,\"tlb_hits\":1,"
        "\"walk_refs_issued\":1,\"avg_tlb_miss_latency\":1.5}]}";
    EXPECT_FALSE(loadDseCache(conflict, cache, &err));
    EXPECT_NE(err.find("conflicting"), std::string::npos);
    // The same repeat with identical metrics is a legal duplicate.
    const char *dup =
        "{\"schema_version\":1,\"points\":["
        "{\"key\":\"0123456789abcdef\",\"cycles\":10,"
        "\"instructions\":1,\"tlb_accesses\":1,\"tlb_hits\":1,"
        "\"walk_refs_issued\":1,\"avg_tlb_miss_latency\":1.5},"
        "{\"key\":\"0123456789abcdef\",\"cycles\":10,"
        "\"instructions\":1,\"tlb_accesses\":1,\"tlb_hits\":1,"
        "\"walk_refs_issued\":1,\"avg_tlb_miss_latency\":1.5}]}";
    EXPECT_TRUE(loadDseCache(dup, cache, &err)) << err;
    EXPECT_EQ(cache.size(), 1u);
}

TEST(Dse, ValidatorCatchesSchemaViolations)
{
    EXPECT_FALSE(validateDseJson("not json").ok());
    EXPECT_FALSE(validateDseJson("{}").ok());
    // A structurally complete payload with an inconsistent pareto
    // flag: the frontier lists a key whose point says pareto=false.
    std::ostringstream os;
    os << "{\"schema_version\":1,\"generator\":\"dse_pareto\","
          "\"bench\":\"bfs\",\"seed\":1,\"scale\":0.02,\"cores\":4,"
          "\"grid\":\"g\",\"points\":[{\"key\":"
          "\"0123456789abcdef\",\"config\":\"c\",\"tlb_entries\":128,"
          "\"tlb_ways\":4,\"tlb_ports\":4,\"pwc_lines\":16,"
          "\"l2tlb_entries\":0,\"l2tlb_ports\":2,\"walkers\":1,"
          "\"walk_sched\":false,\"page_2m\":false,\"cycles\":100,"
          "\"instructions\":5,\"tlb_accesses\":3,\"tlb_hits\":2,"
          "\"walk_refs_issued\":1,\"avg_tlb_miss_latency\":2.5,"
          "\"area\":1.5,\"pareto\":false}],"
          "\"frontier\":[\"0123456789abcdef\"]}";
    const DseValidation v = validateDseJson(os.str());
    ASSERT_FALSE(v.ok());
    EXPECT_NE(v.errors.front().find("inconsistent"),
              std::string::npos);
    // Unknown frontier keys are caught.
    std::string missing = os.str();
    const std::string from = "\"frontier\":[\"0123456789abcdef\"]";
    missing.replace(missing.find(from), from.size(),
                    "\"frontier\":[\"ffffffffffffffff\"]");
    EXPECT_FALSE(validateDseJson(missing).ok());
}

TEST(Dse, HtmlReportRendersAndFlagsEmptySweeps)
{
    const DseResult result = runDse(tinyGrid(), tinyOptions());
    std::ostringstream os;
    EXPECT_TRUE(writeDseHtmlReport(os, result));
    const std::string body = os.str();
    EXPECT_NE(body.find("const DATA="), std::string::npos);
    EXPECT_NE(body.find("id=\"scatter\""), std::string::npos);
    EXPECT_NE(body.find("id=\"frontier\""), std::string::npos);
    EXPECT_NE(body.find("id=\"sens\""), std::string::npos);
    // Report regenerates byte-identically (it embeds the frontier
    // JSON, which is itself byte-stable).
    std::ostringstream os2;
    EXPECT_TRUE(writeDseHtmlReport(os2, result));
    EXPECT_EQ(body, os2.str());

    DseResult empty;
    empty.opt = tinyOptions();
    std::ostringstream os3;
    EXPECT_FALSE(writeDseHtmlReport(os3, empty));
    EXPECT_NE(os3.str().find("Empty sweep"), std::string::npos);
}

TEST(Dse, FrontierIsExactOverTheTinyGrid)
{
    // Cross-check the autotuner's frontier against brute force over
    // its own (area, cycles) scores.
    const DseResult r = runDse(tinyGrid(), tinyOptions());
    std::vector<ParetoPoint> pts;
    for (const DsePointResult &p : r.points) {
        pts.push_back(ParetoPoint{
            p.area, static_cast<double>(p.metrics.cycles)});
    }
    auto brute = bruteFrontier(pts);
    std::vector<std::size_t> got = r.frontier;
    std::sort(got.begin(), got.end());
    std::sort(brute.begin(), brute.end());
    EXPECT_EQ(got, brute);
    // Every point carries positive scores.
    for (const DsePointResult &p : r.points) {
        EXPECT_GT(p.metrics.cycles, 0u);
        EXPECT_GT(p.area, 0.0);
    }
}
