/**
 * @file
 * Unit tests for the generic set-associative array.
 */

#include <gtest/gtest.h>

#include "mem/set_assoc.hh"

using namespace gpummu;

TEST(SetAssoc, MissThenHit)
{
    SetAssocArray<int> arr(8, 2);
    EXPECT_FALSE(arr.lookup(5).hit);
    arr.insert(5, 50);
    auto res = arr.lookup(5);
    ASSERT_TRUE(res.hit);
    EXPECT_EQ(*res.payload, 50);
    EXPECT_EQ(res.depth, 0u);
}

TEST(SetAssoc, LruDepthReporting)
{
    // Fully associative, 4 ways: depth is position in the LRU stack.
    SetAssocArray<int> arr(4, 0);
    arr.insert(1, 0);
    arr.insert(2, 0);
    arr.insert(3, 0);
    // 3 is MRU (depth 0), 1 is LRU (depth 2).
    EXPECT_EQ(arr.lookup(1).depth, 2u);
    // The lookup promoted 1 to MRU; 3 is now depth 1.
    EXPECT_EQ(arr.lookup(3).depth, 1u);
}

TEST(SetAssoc, EvictsLruVictim)
{
    SetAssocArray<int> arr(2, 2); // one set, 2 ways
    arr.insert(10, 1);
    arr.insert(12, 2);
    arr.lookup(10); // promote 10; 12 becomes LRU
    auto victim = arr.insert(14, 3);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag, 12u);
    EXPECT_EQ(victim->payload, 2);
    EXPECT_TRUE(arr.lookup(10).hit);
    EXPECT_TRUE(arr.lookup(14).hit);
    EXPECT_FALSE(arr.lookup(12).hit);
}

TEST(SetAssoc, InsertExistingOverwritesWithoutVictim)
{
    SetAssocArray<int> arr(2, 2);
    arr.insert(10, 1);
    arr.insert(12, 2);
    auto victim = arr.insert(10, 99);
    EXPECT_FALSE(victim.has_value());
    EXPECT_EQ(*arr.lookup(10).payload, 99);
    EXPECT_EQ(arr.occupancy(), 2u);
}

TEST(SetAssoc, SetsAreIndependent)
{
    SetAssocArray<int> arr(4, 2); // 2 sets
    // Tags 0 and 2 map to set 0; 1 and 3 to set 1.
    arr.insert(0, 0);
    arr.insert(2, 0);
    arr.insert(4, 0); // evicts from set 0 only
    EXPECT_TRUE(arr.lookup(1).hit == false);
    arr.insert(1, 0);
    arr.insert(3, 0);
    EXPECT_TRUE(arr.lookup(1).hit);
    EXPECT_TRUE(arr.lookup(3).hit);
}

TEST(SetAssoc, PeekDoesNotPromote)
{
    SetAssocArray<int> arr(2, 2);
    arr.insert(10, 1);
    arr.insert(12, 2);
    EXPECT_NE(arr.peek(10), nullptr);
    // 10 must still be LRU: inserting evicts it.
    auto victim = arr.insert(14, 3);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->tag, 10u);
}

TEST(SetAssoc, InvalidateRemovesEntry)
{
    SetAssocArray<int> arr(4, 4);
    arr.insert(7, 1);
    EXPECT_TRUE(arr.invalidate(7));
    EXPECT_FALSE(arr.lookup(7).hit);
    EXPECT_FALSE(arr.invalidate(7));
}

TEST(SetAssoc, FlushEmptiesEverything)
{
    SetAssocArray<int> arr(8, 2);
    for (int i = 0; i < 8; ++i)
        arr.insert(static_cast<std::uint64_t>(i), i);
    EXPECT_GT(arr.occupancy(), 0u);
    arr.flush();
    EXPECT_EQ(arr.occupancy(), 0u);
    for (int i = 0; i < 8; ++i)
        EXPECT_FALSE(arr.lookup(static_cast<std::uint64_t>(i)).hit);
}

TEST(SetAssoc, ZeroWaysMeansFullyAssociative)
{
    SetAssocArray<int> arr(6, 0);
    EXPECT_EQ(arr.numSets(), 1u);
    EXPECT_EQ(arr.ways(), 6u);
}

class SetAssocParamTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>>
{
};

TEST_P(SetAssocParamTest, CapacityIsRespected)
{
    const auto [entries, ways] = GetParam();
    SetAssocArray<int> arr(entries, ways);
    // Insert 4x capacity; occupancy never exceeds total entries.
    for (std::uint64_t t = 0; t < 4 * entries; ++t) {
        arr.insert(t, 0);
        ASSERT_LE(arr.occupancy(), entries);
    }
    EXPECT_EQ(arr.occupancy(), entries);
}

TEST_P(SetAssocParamTest, MostRecentWithinWaysAlwaysHit)
{
    const auto [entries, ways] = GetParam();
    SetAssocArray<int> arr(entries, ways);
    const std::size_t sets = entries / (ways ? ways : entries);
    // Insert one run of tags that all map to set 0.
    const std::size_t w = ways ? ways : entries;
    for (std::size_t i = 0; i < 3 * w; ++i)
        arr.insert(i * sets, 0);
    // The last `ways` inserted tags must be present.
    for (std::size_t i = 2 * w; i < 3 * w; ++i)
        EXPECT_TRUE(arr.lookup(i * sets).hit) << i;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocParamTest,
    ::testing::Values(std::make_pair<std::size_t, std::size_t>(8, 2),
                      std::make_pair<std::size_t, std::size_t>(16, 4),
                      std::make_pair<std::size_t, std::size_t>(128, 4),
                      std::make_pair<std::size_t, std::size_t>(16, 16),
                      std::make_pair<std::size_t, std::size_t>(64, 8)));

TEST(SetAssocDeathTest, IndivisibleGeometryPanics)
{
    EXPECT_DEATH(SetAssocArray<int>(10, 4), "divisible");
}
