/**
 * @file
 * Unit tests for the per-warp SIMT reconvergence stack.
 */

#include <gtest/gtest.h>

#include "gpu/simt_stack.hh"

using namespace gpummu;

namespace {

constexpr LaneMask kFull = 0xffffffffULL;

} // namespace

TEST(SimtStack, ResetGivesSingleEntry)
{
    SimtStack s;
    s.reset(0, kFull);
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.top().block, 0);
    EXPECT_EQ(s.top().mask, kFull);
    EXPECT_EQ(s.top().popAt, -1);
}

TEST(SimtStack, UniformTakenJustRedirects)
{
    SimtStack s;
    s.reset(0, kFull);
    EXPECT_FALSE(s.branch(kFull, 0, 3, 4, 5));
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.top().block, 3);
    EXPECT_EQ(s.top().instIdx, 0);
}

TEST(SimtStack, UniformFallJustRedirects)
{
    SimtStack s;
    s.reset(0, kFull);
    EXPECT_FALSE(s.branch(0, kFull, 3, 4, 5));
    EXPECT_EQ(s.top().block, 4);
}

TEST(SimtStack, DivergencePushesTakenOnTop)
{
    SimtStack s;
    s.reset(0, kFull);
    const LaneMask taken = 0xffffULL;
    const LaneMask fall = kFull & ~taken;
    EXPECT_TRUE(s.branch(taken, fall, 1, 2, 3));
    ASSERT_EQ(s.depth(), 3u);
    EXPECT_EQ(s.top().block, 1);
    EXPECT_EQ(s.top().mask, taken);
    EXPECT_EQ(s.top().popAt, 3);
}

TEST(SimtStack, ReconvergenceUnwindsToJoinWithFullMask)
{
    SimtStack s;
    s.reset(0, kFull);
    const LaneMask taken = 0xffULL;
    s.branch(taken, kFull & ~taken, 1, 2, 3);

    // Taken path reaches the join.
    s.top().block = 3;
    s.top().instIdx = 0;
    s.reconverge();
    // Now the fall path runs.
    EXPECT_EQ(s.top().block, 2);
    EXPECT_EQ(s.top().mask, kFull & ~taken);
    s.top().block = 3;
    s.top().instIdx = 0;
    s.reconverge();
    // Join block executes with the original full mask.
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(s.top().block, 3);
    EXPECT_EQ(s.top().mask, kFull);
}

TEST(SimtStack, LoopWithEarlyExitLanes)
{
    // Loop body block 1, exit block 2. Lanes leave one at a time.
    SimtStack s;
    s.reset(1, 0xfULL);
    // Iteration 1: lanes 0-2 continue, lane 3 exits.
    EXPECT_TRUE(s.branch(0x7, 0x8, 1, 2, 2));
    EXPECT_EQ(s.top().block, 1);
    EXPECT_EQ(s.top().mask, 0x7ULL);
    // Iteration 2: all remaining exit (uniform fall).
    EXPECT_FALSE(s.branch(0, 0x7, 1, 2, 2));
    s.reconverge();
    // Unwound to the continuation at block 2 with all lanes.
    EXPECT_EQ(s.top().block, 2);
    EXPECT_EQ(s.top().mask, 0xfULL);
    EXPECT_EQ(s.depth(), 1u);
}

TEST(SimtStack, NestedDivergence)
{
    SimtStack s;
    s.reset(0, 0xffULL);
    s.branch(0x0f, 0xf0, 1, 2, 5);       // outer
    EXPECT_EQ(s.top().block, 1);
    s.branch(0x03, 0x0c, 3, 4, 5);       // inner, within taken path
    EXPECT_EQ(s.top().block, 3);
    EXPECT_EQ(s.top().mask, 0x03ULL);
    // Unwind inner taken.
    s.top().block = 5;
    s.top().instIdx = 0;
    s.reconverge();
    EXPECT_EQ(s.top().block, 4);
    EXPECT_EQ(s.top().mask, 0x0cULL);
    // Unwind inner fall; the inner continuation at 5 pops because its
    // popAt is also 5, landing on the outer fall path.
    s.top().block = 5;
    s.top().instIdx = 0;
    s.reconverge();
    EXPECT_EQ(s.top().block, 2);
    EXPECT_EQ(s.top().mask, 0xf0ULL);
}

TEST(SimtStack, ClearLanesDropsExitedThreads)
{
    SimtStack s;
    s.reset(0, 0xffULL);
    s.branch(0x0f, 0xf0, 1, 2, 3);
    s.clearLanes(0x0f);
    s.reconverge(); // taken entry emptied, pops
    EXPECT_EQ(s.top().block, 2);
    EXPECT_EQ(s.top().mask, 0xf0ULL);
    s.clearLanes(0xf0);
    s.reconverge();
    EXPECT_TRUE(s.empty());
}

TEST(SimtStack, EnteredFlagResetsOnTransition)
{
    SimtStack s;
    s.reset(0, kFull);
    s.top().entered = true;
    s.branch(kFull, 0, 1, 2, 3);
    EXPECT_FALSE(s.top().entered);
}
