/**
 * @file
 * Tests for the named system presets and the experiment runner.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/presets.hh"

using namespace gpummu;

TEST(Presets, NoTlbDisablesMmu)
{
    auto cfg = presets::noTlb();
    EXPECT_FALSE(cfg.core.mmu.enabled);
}

TEST(Presets, NaiveTlbMatchesPaperStrawman)
{
    auto cfg = presets::naiveTlb(3);
    EXPECT_TRUE(cfg.core.mmu.enabled);
    EXPECT_EQ(cfg.core.mmu.tlb.entries, 128u);
    EXPECT_EQ(cfg.core.mmu.tlb.ports, 3u);
    EXPECT_FALSE(cfg.core.mmu.hitUnderMiss);
    EXPECT_FALSE(cfg.core.mmu.cacheOverlap);
    EXPECT_EQ(cfg.core.mmu.ptw.numWalkers, 1u);
    EXPECT_FALSE(cfg.core.mmu.ptw.scheduling);
}

TEST(Presets, AugmentationLadderIsMonotone)
{
    auto hum = presets::tlbHitUnderMiss();
    EXPECT_TRUE(hum.core.mmu.hitUnderMiss);
    EXPECT_FALSE(hum.core.mmu.cacheOverlap);

    auto ovl = presets::tlbCacheOverlap();
    EXPECT_TRUE(ovl.core.mmu.hitUnderMiss);
    EXPECT_TRUE(ovl.core.mmu.cacheOverlap);
    EXPECT_FALSE(ovl.core.mmu.ptw.scheduling);

    auto aug = presets::augmentedTlb();
    EXPECT_TRUE(aug.core.mmu.hitUnderMiss);
    EXPECT_TRUE(aug.core.mmu.cacheOverlap);
    EXPECT_TRUE(aug.core.mmu.ptw.scheduling);
    EXPECT_EQ(aug.core.mmu.tlb.ports, 4u);
}

TEST(Presets, IdealTlbHasNoLatencyPenalty)
{
    auto cfg = presets::idealTlb();
    EXPECT_EQ(cfg.core.mmu.tlb.entries, 512u);
    EXPECT_EQ(cfg.core.mmu.tlb.ports, 32u);
    EXPECT_TRUE(cfg.core.mmu.cacti.ideal);
}

TEST(Presets, SizedSweepConfigs)
{
    auto cfg = presets::naiveTlbSized(256, 8, true);
    EXPECT_EQ(cfg.core.mmu.tlb.entries, 256u);
    EXPECT_EQ(cfg.core.mmu.tlb.ports, 8u);
    EXPECT_TRUE(cfg.core.mmu.cacti.ideal);
}

TEST(Presets, MultiPtw)
{
    auto cfg = presets::naiveTlbMultiPtw(8);
    EXPECT_EQ(cfg.core.mmu.ptw.numWalkers, 8u);
    EXPECT_FALSE(cfg.core.mmu.ptw.scheduling);
}

TEST(Presets, SchedulerFamilies)
{
    auto ccws = presets::ccws(presets::augmentedTlb());
    EXPECT_EQ(ccws.sched, SchedulerKind::Ccws);
    EXPECT_EQ(ccws.ccws.tlbMissWeight, 1u);

    auto ta = presets::taCcws(presets::augmentedTlb(), 4);
    EXPECT_EQ(ta.sched, SchedulerKind::TaCcws);
    EXPECT_EQ(ta.ccws.tlbMissWeight, 4u);

    auto tcws = presets::tcws(presets::augmentedTlb(), 8,
                              {1, 2, 4, 8});
    EXPECT_EQ(tcws.sched, SchedulerKind::Tcws);
    EXPECT_EQ(tcws.tcws.vtaEntriesPerWarp, 8u);
    EXPECT_EQ(tcws.tcws.lruWeights[3], 8u);
}

TEST(Presets, TbcVariants)
{
    auto tbc = presets::tbc(presets::noTlb());
    EXPECT_EQ(tbc.coreKind, CoreKind::Tbc);
    EXPECT_FALSE(tbc.tbc.tlbAware);

    auto aware = presets::tlbAwareTbc(presets::augmentedTlb(), 3);
    EXPECT_TRUE(aware.tbc.tlbAware);
    EXPECT_EQ(aware.tbc.cpm.counterBits, 3u);
}

TEST(Presets, LargePages)
{
    auto cfg = presets::withLargePages(presets::augmentedTlb());
    EXPECT_TRUE(cfg.largePages);
}

TEST(Presets, NamesAreDistinct)
{
    std::set<std::string> names;
    for (const auto &cfg :
         {presets::noTlb(), presets::naiveTlb(3), presets::naiveTlb(4),
          presets::tlbHitUnderMiss(), presets::tlbCacheOverlap(),
          presets::augmentedTlb(), presets::idealTlb(),
          presets::naiveTlbMultiPtw(8),
          presets::ccws(presets::noTlb()),
          presets::taCcws(presets::augmentedTlb(), 4),
          presets::tcws(presets::augmentedTlb(), 8, {1, 2, 4, 8}),
          presets::tbc(presets::noTlb()),
          presets::tlbAwareTbc(presets::augmentedTlb(), 3)}) {
        EXPECT_TRUE(names.insert(cfg.name).second)
            << "duplicate preset name " << cfg.name;
    }
}

TEST(Experiment, CachesRunsByName)
{
    WorkloadParams p;
    p.scale = 0.02;
    Experiment exp(p);
    auto cfg = presets::noTlb();
    cfg.numCores = 2;
    const auto a = exp.run(BenchmarkId::Pathfinder, cfg);
    const auto b = exp.run(BenchmarkId::Pathfinder, cfg);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_GT(a.cycles, 0u);
}

TEST(Experiment, SpeedupOfBaselineIsOne)
{
    WorkloadParams p;
    p.scale = 0.02;
    Experiment exp(p);
    auto cfg = presets::noTlb();
    cfg.numCores = 2;
    EXPECT_DOUBLE_EQ(exp.speedup(BenchmarkId::Pathfinder, cfg, cfg),
                     1.0);
}

TEST(ReportTable, FormatsNumbersAndRows)
{
    EXPECT_EQ(ReportTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(ReportTable::pct(0.1234), "12.3%");
    ReportTable t({"a", "bb"});
    t.addRow({"x", "y"});
    std::ostringstream os;
    t.print(os);
    EXPECT_NE(os.str().find("a"), std::string::npos);
    EXPECT_NE(os.str().find("x"), std::string::npos);
}
