/**
 * @file
 * Unit tests for the per-core TLB.
 */

#include <gtest/gtest.h>

#include "mmu/tlb.hh"

using namespace gpummu;

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb(TlbConfig{});
    EXPECT_FALSE(tlb.lookup(100, 0).hit);
    tlb.fill(100, Translation{42, false});
    auto res = tlb.lookup(100, 0);
    ASSERT_TRUE(res.hit);
    EXPECT_EQ(res.ppn, 42u);
    EXPECT_FALSE(res.isLarge);
}

TEST(Tlb, StatsCountAccessesAndHits)
{
    Tlb tlb(TlbConfig{});
    tlb.lookup(1, 0);
    tlb.fill(1, Translation{9, false});
    tlb.lookup(1, 0);
    tlb.lookup(2, 0);
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, UnrecordedLookupSkipsStats)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(1, Translation{9, false});
    tlb.lookup(1, 0, /*record=*/false);
    EXPECT_EQ(tlb.accesses(), 0u);
}

TEST(Tlb, ProbeIsNonMutating)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    tlb.fill(1, Translation{1, false});
    tlb.fill(2, Translation{2, false});
    tlb.fill(3, Translation{3, false});
    tlb.fill(4, Translation{4, false});
    EXPECT_TRUE(tlb.probe(1)); // must NOT promote 1
    tlb.fill(5, Translation{5, false});
    EXPECT_FALSE(tlb.probe(1)); // 1 was still LRU and got evicted
    EXPECT_EQ(tlb.accesses(), 0u);
}

TEST(Tlb, LruDepthVisibleToScheduler)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    tlb.fill(10, Translation{0, false});
    tlb.fill(11, Translation{0, false});
    tlb.fill(12, Translation{0, false});
    EXPECT_EQ(tlb.lookup(10, 0).depth, 2u);
    EXPECT_EQ(tlb.lookup(10, 0).depth, 0u); // promoted by prior hit
}

TEST(Tlb, WarpHistoryRecordsRecentWarps)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 3);
    auto res = tlb.lookup(7, 5);
    // The snapshot predates this access: warp 3 only.
    ASSERT_EQ(res.historyUsed, 1u);
    EXPECT_EQ(res.history[0], 3);
    auto res2 = tlb.lookup(7, 9);
    ASSERT_EQ(res2.historyUsed, 2u);
    EXPECT_EQ(res2.history[0], 5);
    EXPECT_EQ(res2.history[1], 3);
}

TEST(Tlb, HistoryDoesNotDuplicateHead)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 3);
    tlb.lookup(7, 3);
    auto res = tlb.lookup(7, 4);
    EXPECT_EQ(res.historyUsed, 1u);
    EXPECT_EQ(res.history[0], 3);
}

TEST(Tlb, HistoryBoundedByConfig)
{
    TlbConfig cfg;
    cfg.historyLength = 2; // the paper's length
    Tlb tlb(cfg);
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 1);
    tlb.lookup(7, 2);
    tlb.lookup(7, 3);
    auto res = tlb.lookup(7, 4);
    EXPECT_EQ(res.historyUsed, 2u);
    EXPECT_EQ(res.history[0], 3);
    EXPECT_EQ(res.history[1], 2);
}

TEST(Tlb, EvictionListenerReportsAllocWarp)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    Vpn evicted = 0;
    int warp = -1;
    tlb.setEvictionListener([&](Vpn v, int w) {
        evicted = v;
        warp = w;
    });
    tlb.fill(1, Translation{0, false}, 11);
    tlb.fill(2, Translation{0, false}, 12);
    tlb.fill(3, Translation{0, false}, 13);
    tlb.fill(4, Translation{0, false}, 14);
    tlb.fill(5, Translation{0, false}, 15);
    EXPECT_EQ(evicted, 1u);
    EXPECT_EQ(warp, 11);
}

TEST(Tlb, FlushEmptiesAndCounts)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(1, Translation{0, false});
    tlb.flush();
    EXPECT_FALSE(tlb.probe(1));
    EXPECT_EQ(tlb.flushes(), 1u);
}

TEST(Tlb, LargePageEntries)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(3, Translation{77, true});
    auto res = tlb.lookup(3, 0);
    ASSERT_TRUE(res.hit);
    EXPECT_TRUE(res.isLarge);
    EXPECT_EQ(res.ppn, 77u);
}
