/**
 * @file
 * Unit tests for the per-core TLB.
 */

#include <gtest/gtest.h>

#include "mmu/tlb.hh"

using namespace gpummu;

TEST(Tlb, MissThenFillThenHit)
{
    Tlb tlb(TlbConfig{});
    EXPECT_FALSE(tlb.lookup(100, 0).hit);
    tlb.fill(100, Translation{42, false});
    auto res = tlb.lookup(100, 0);
    ASSERT_TRUE(res.hit);
    EXPECT_EQ(res.ppn, 42u);
    EXPECT_FALSE(res.isLarge);
}

TEST(Tlb, StatsCountAccessesAndHits)
{
    Tlb tlb(TlbConfig{});
    tlb.lookup(1, 0);
    tlb.fill(1, Translation{9, false});
    tlb.lookup(1, 0);
    tlb.lookup(2, 0);
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.hits(), 1u);
    EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, UnrecordedLookupSkipsStats)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(1, Translation{9, false});
    tlb.lookup(1, 0, /*record=*/false);
    EXPECT_EQ(tlb.accesses(), 0u);
}

TEST(Tlb, UnrecordedLookupLeavesWarpHistoryUntouched)
{
    // record=false marks re-probes after a walk completes; they must
    // be invisible to the common page matrix, not just the stats.
    Tlb tlb(TlbConfig{});
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 3);
    tlb.lookup(7, 8, /*record=*/false); // re-probe by warp 8
    auto res = tlb.lookup(7, 5);
    // The snapshot sees only the recorded access by warp 3.
    ASSERT_EQ(res.historyUsed, 1u);
    EXPECT_EQ(res.history[0], 3);
}

TEST(Tlb, RecordedLookupUpdatesWarpHistory)
{
    // The counterpart pin: with record=true (the default) the same
    // sequence does enter the history.
    Tlb tlb(TlbConfig{});
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 3);
    tlb.lookup(7, 8);
    auto res = tlb.lookup(7, 5);
    ASSERT_EQ(res.historyUsed, 2u);
    EXPECT_EQ(res.history[0], 8);
    EXPECT_EQ(res.history[1], 3);
}

TEST(Tlb, FlushReportsEveryEntryToEvictionListener)
{
    // A shootdown flush discards entries exactly like capacity
    // evictions, so TCWS victim tagging must hear about each one
    // with its allocating warp.
    TlbConfig cfg;
    cfg.entries = 8;
    cfg.ways = 4;
    Tlb tlb(cfg);
    std::vector<std::pair<Vpn, int>> evicted;
    tlb.setEvictionListener(
        [&](Vpn v, int w) { evicted.emplace_back(v, w); });
    tlb.fill(1, Translation{10, false}, 5);
    tlb.fill(2, Translation{20, false}, 6);
    tlb.fill(3, Translation{30, true}, 7);
    tlb.flush();
    ASSERT_EQ(evicted.size(), 3u);
    for (const auto &[v, w] : evicted) {
        EXPECT_TRUE(v >= 1 && v <= 3);
        EXPECT_EQ(w, static_cast<int>(v) + 4);
        EXPECT_FALSE(tlb.probe(v));
    }
    // A second flush of the now-empty array reports nothing.
    tlb.flush();
    EXPECT_EQ(evicted.size(), 3u);
    EXPECT_EQ(tlb.flushes(), 2u);
}

TEST(Tlb, ProbeIsNonMutating)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    tlb.fill(1, Translation{1, false});
    tlb.fill(2, Translation{2, false});
    tlb.fill(3, Translation{3, false});
    tlb.fill(4, Translation{4, false});
    EXPECT_TRUE(tlb.probe(1)); // must NOT promote 1
    tlb.fill(5, Translation{5, false});
    EXPECT_FALSE(tlb.probe(1)); // 1 was still LRU and got evicted
    EXPECT_EQ(tlb.accesses(), 0u);
}

TEST(Tlb, LruDepthVisibleToScheduler)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    tlb.fill(10, Translation{0, false});
    tlb.fill(11, Translation{0, false});
    tlb.fill(12, Translation{0, false});
    EXPECT_EQ(tlb.lookup(10, 0).depth, 2u);
    EXPECT_EQ(tlb.lookup(10, 0).depth, 0u); // promoted by prior hit
}

TEST(Tlb, WarpHistoryRecordsRecentWarps)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 3);
    auto res = tlb.lookup(7, 5);
    // The snapshot predates this access: warp 3 only.
    ASSERT_EQ(res.historyUsed, 1u);
    EXPECT_EQ(res.history[0], 3);
    auto res2 = tlb.lookup(7, 9);
    ASSERT_EQ(res2.historyUsed, 2u);
    EXPECT_EQ(res2.history[0], 5);
    EXPECT_EQ(res2.history[1], 3);
}

TEST(Tlb, HistoryDoesNotDuplicateHead)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 3);
    tlb.lookup(7, 3);
    auto res = tlb.lookup(7, 4);
    EXPECT_EQ(res.historyUsed, 1u);
    EXPECT_EQ(res.history[0], 3);
}

TEST(Tlb, HistoryBoundedByConfig)
{
    TlbConfig cfg;
    cfg.historyLength = 2; // the paper's length
    Tlb tlb(cfg);
    tlb.fill(7, Translation{1, false});
    tlb.lookup(7, 1);
    tlb.lookup(7, 2);
    tlb.lookup(7, 3);
    auto res = tlb.lookup(7, 4);
    EXPECT_EQ(res.historyUsed, 2u);
    EXPECT_EQ(res.history[0], 3);
    EXPECT_EQ(res.history[1], 2);
}

TEST(Tlb, EvictionListenerReportsAllocWarp)
{
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    Vpn evicted = 0;
    int warp = -1;
    tlb.setEvictionListener([&](Vpn v, int w) {
        evicted = v;
        warp = w;
    });
    tlb.fill(1, Translation{0, false}, 11);
    tlb.fill(2, Translation{0, false}, 12);
    tlb.fill(3, Translation{0, false}, 13);
    tlb.fill(4, Translation{0, false}, 14);
    tlb.fill(5, Translation{0, false}, 15);
    EXPECT_EQ(evicted, 1u);
    EXPECT_EQ(warp, 11);
}

TEST(Tlb, FlushEmptiesAndCounts)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(1, Translation{0, false});
    tlb.flush();
    EXPECT_FALSE(tlb.probe(1));
    EXPECT_EQ(tlb.flushes(), 1u);
}

TEST(Tlb, LargePageEntries)
{
    Tlb tlb(TlbConfig{});
    tlb.fill(3, Translation{77, true});
    auto res = tlb.lookup(3, 0);
    ASSERT_TRUE(res.hit);
    EXPECT_TRUE(res.isLarge);
    EXPECT_EQ(res.ppn, 77u);
}

TEST(Tlb, EvictionUnderMixed4KAnd2MEntries)
{
    // Large and small entries coexist in one array (the tag already
    // encodes the granularity); replacement must stay strict LRU with
    // the page-size payload carried intact through an eviction cycle.
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    std::vector<Vpn> evicted;
    tlb.setEvictionListener([&](Vpn v, int) { evicted.push_back(v); });
    tlb.fill(10, Translation{1, false});
    tlb.fill(11, Translation{2, true});
    tlb.fill(12, Translation{3, false});
    tlb.fill(13, Translation{4, true});
    // Touch the small entry so the large one becomes LRU.
    EXPECT_FALSE(tlb.lookup(10, 0).isLarge);
    tlb.fill(14, Translation{5, false});
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], 11u); // the large entry, not the touched one
    auto big = tlb.lookup(13, 0);
    ASSERT_TRUE(big.hit);
    EXPECT_TRUE(big.isLarge);
    EXPECT_EQ(big.ppn, 4u);
    tlb.fill(15, Translation{6, true});
    ASSERT_EQ(evicted.size(), 2u);
    EXPECT_EQ(evicted[1], 12u);
}

TEST(Tlb, DuplicateFillKeepsOneEntry)
{
    // Refilling a resident VPN (two warps' walks for the same page
    // completing back to back) must update the single entry in place,
    // never allocate a duplicate way.
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    int evictions = 0;
    tlb.setEvictionListener([&](Vpn, int) { ++evictions; });
    tlb.fill(1, Translation{10, false});
    tlb.fill(2, Translation{20, false});
    tlb.fill(3, Translation{30, false});
    tlb.fill(1, Translation{10, false}); // duplicate, promotes to MRU
    tlb.fill(4, Translation{40, false});
    // 4 distinct VPNs in a 4-way set: a duplicate way would have
    // forced an eviction here.
    EXPECT_EQ(evictions, 0);
    EXPECT_EQ(tlb.lookup(1, 0).ppn, 10u);
    // Now a 5th distinct VPN evicts true-LRU 2 (1 was promoted).
    tlb.fill(5, Translation{50, false});
    EXPECT_EQ(evictions, 1);
    EXPECT_FALSE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(1));
}

TEST(Tlb, LruOrderAfterHitUnderMiss)
{
    // Hit-under-miss: while one warp's miss is walking, other warps
    // keep hitting. Those hits must promote their entries so the
    // eventual fill evicts the genuinely coldest entry, and missing
    // lookups must not disturb the stack.
    TlbConfig cfg;
    cfg.entries = 4;
    cfg.ways = 4;
    Tlb tlb(cfg);
    tlb.fill(1, Translation{1, false});
    tlb.fill(2, Translation{2, false});
    tlb.fill(3, Translation{3, false});
    tlb.fill(4, Translation{4, false});
    EXPECT_FALSE(tlb.lookup(9, 0).hit); // the miss that starts a walk
    // Hits under the outstanding miss, coldest-first.
    EXPECT_EQ(tlb.lookup(1, 1).depth, 3u);
    EXPECT_EQ(tlb.lookup(2, 2).depth, 3u);
    // More missing lookups (re-probes) leave LRU untouched.
    EXPECT_FALSE(tlb.lookup(9, 0).hit);
    // The walk's fill now evicts 3: 1 and 2 were promoted, 4 is MRU
    // of the original fills, leaving 3 at the LRU position.
    tlb.fill(9, Translation{9, false});
    EXPECT_FALSE(tlb.probe(3));
    EXPECT_TRUE(tlb.probe(1));
    EXPECT_TRUE(tlb.probe(2));
    EXPECT_TRUE(tlb.probe(4));
    // Stack order afterwards: 9 (fill) > 2 > 1 > 4.
    EXPECT_EQ(tlb.lookup(4, 0).depth, 3u);
}
