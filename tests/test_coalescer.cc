/**
 * @file
 * Unit tests for the memory access coalescer.
 */

#include <gtest/gtest.h>

#include "gpu/coalescer.hh"
#include "mem/request.hh"
#include "sim/types.hh"

using namespace gpummu;

TEST(Coalescer, AdjacentLanesShareOneLine)
{
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(0x10000 + i * 4);
    auto acc = coalesce(addrs, kLineShift, kPageShift4K);
    EXPECT_EQ(acc.pageDivergence(), 1u);
    EXPECT_EQ(acc.totalLines, 1u);
}

TEST(Coalescer, StridedLanesSplitLinesSamePage)
{
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 8; ++i)
        addrs.push_back(0x10000 + i * kLineSize);
    auto acc = coalesce(addrs, kLineShift, kPageShift4K);
    EXPECT_EQ(acc.pageDivergence(), 1u);
    EXPECT_EQ(acc.totalLines, 8u);
}

TEST(Coalescer, PageDivergenceCountsDistinctPages)
{
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 4; ++i)
        addrs.push_back(0x10000 + i * kPageSize4K);
    addrs.push_back(0x10000); // duplicate page
    auto acc = coalesce(addrs, kLineShift, kPageShift4K);
    EXPECT_EQ(acc.pageDivergence(), 4u);
}

TEST(Coalescer, LinesGroupedUnderTheirPage)
{
    std::vector<VirtAddr> addrs = {
        0x1000, 0x1100, 0x2000, 0x2200, 0x2200,
    };
    auto acc = coalesce(addrs, kLineShift, 12);
    ASSERT_EQ(acc.pages.size(), 2u);
    EXPECT_EQ(acc.pages[0].vpn, 0x1u);
    EXPECT_EQ(acc.pages[0].vlines.size(), 2u);
    EXPECT_EQ(acc.pages[1].vpn, 0x2u);
    EXPECT_EQ(acc.pages[1].vlines.size(), 2u);
    EXPECT_EQ(acc.totalLines, 4u);
}

TEST(Coalescer, MaxDivergenceOneLanePerPage)
{
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 32; ++i)
        addrs.push_back(static_cast<VirtAddr>(i) * 16 * kPageSize4K);
    auto acc = coalesce(addrs, kLineShift, kPageShift4K);
    EXPECT_EQ(acc.pageDivergence(), 32u);
    EXPECT_EQ(acc.totalLines, 32u);
}

TEST(Coalescer, LargePageGranularityMergesPages)
{
    // Two 4KB pages inside the same 2MB page coalesce to one PTE.
    std::vector<VirtAddr> addrs = {0x10000, 0x10000 + kPageSize4K};
    auto small = coalesce(addrs, kLineShift, kPageShift4K);
    auto large = coalesce(addrs, kLineShift, kPageShift2M);
    EXPECT_EQ(small.pageDivergence(), 2u);
    EXPECT_EQ(large.pageDivergence(), 1u);
}

TEST(Coalescer, LineNeverSpansPages)
{
    // Every vline must belong to exactly the page it is grouped under.
    std::vector<VirtAddr> addrs;
    for (int i = 0; i < 64; ++i)
        addrs.push_back(0x40000 + static_cast<VirtAddr>(i) * 733);
    auto acc = coalesce(addrs, kLineShift, kPageShift4K);
    for (const auto &pg : acc.pages) {
        for (auto vline : pg.vlines) {
            EXPECT_EQ((vline << kLineShift) >> kPageShift4K, pg.vpn);
        }
    }
}
