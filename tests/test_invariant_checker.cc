/**
 * @file
 * Unit tests for the runtime invariant checker: each check must pass
 * on correct timing behaviour and panic on a seeded violation, both
 * standalone and armed onto live Tlb / PageWalkers instances.
 */

#include <gtest/gtest.h>

#include "check/invariant_checker.hh"
#include "mmu/ptw.hh"
#include "mmu/tlb.hh"
#include "sim/event_queue.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

using namespace gpummu;

namespace {

Vpn
vpnOf(unsigned pml4, unsigned pdp, unsigned pd, unsigned pt)
{
    return (static_cast<Vpn>(pml4) << 27) |
           (static_cast<Vpn>(pdp) << 18) |
           (static_cast<Vpn>(pd) << 9) | pt;
}

struct CheckerFixture : public ::testing::Test
{
    CheckerFixture() : phys(1 << 18, false), pt(phys)
    {
        pt.map4K(vpnOf(1, 2, 3, 4), 42);
        pt.map4K(vpnOf(1, 2, 3, 5), 43);
    }

    PhysicalMemory phys;
    PageTable pt;
};

} // namespace

TEST_F(CheckerFixture, CorrectFillAndHitPass)
{
    InvariantChecker chk(pt);
    chk.onTlbFill(vpnOf(1, 2, 3, 4), 42, false, kPageShift4K);
    chk.onTlbHit(vpnOf(1, 2, 3, 4), 42, kPageShift4K);
    EXPECT_EQ(chk.fillsChecked(), 1u);
    EXPECT_EQ(chk.hitsChecked(), 1u);
}

TEST_F(CheckerFixture, WrongFrameFillPanics)
{
    InvariantChecker chk(pt);
    EXPECT_DEATH(
        chk.onTlbFill(vpnOf(1, 2, 3, 4), 41, false, kPageShift4K),
        "reference frame");
}

TEST_F(CheckerFixture, UnmappedFillPanics)
{
    InvariantChecker chk(pt);
    EXPECT_DEATH(
        chk.onTlbFill(vpnOf(7, 0, 0, 0), 1, false, kPageShift4K),
        "unmapped");
}

TEST_F(CheckerFixture, WrongPageSizeFlagPanics)
{
    InvariantChecker chk(pt);
    EXPECT_DEATH(
        chk.onTlbFill(vpnOf(1, 2, 3, 4), 42, true, kPageShift4K),
        "page-size flag");
}

TEST_F(CheckerFixture, StaleHitFramePanics)
{
    InvariantChecker chk(pt);
    EXPECT_DEATH(chk.onTlbHit(vpnOf(1, 2, 3, 4), 99, kPageShift4K),
                 "reference frame");
}

TEST_F(CheckerFixture, TwoMegGranularityFill)
{
    const std::uint64_t per_large = kPageSize2M / kPageSize4K;
    pt.map2M(8, 2 * per_large);
    InvariantChecker chk(pt);
    // 2MB tag 8, frame base in 2MB units.
    chk.onTlbFill(8, 2, true, kPageShift2M);
    chk.onTlbHit(8, 2, kPageShift2M);
    EXPECT_DEATH(chk.onTlbFill(8, 3, true, kPageShift2M),
                 "reference frame");
    // A 2MB-granularity entry over a 4KB-backed region is a bug even
    // when the frame math happens to line up.
    EXPECT_DEATH(chk.onTlbFill(vpnOf(1, 2, 3, 4) >> 9, 0, true,
                               kPageShift2M),
                 "unmapped|2MB");
}

TEST_F(CheckerFixture, SweepCatchesDuplicateTagInSet)
{
    InvariantChecker chk(pt);
    chk.beginTlbSweep();
    chk.onTlbEntry(0, vpnOf(1, 2, 3, 4), 42, false, kPageShift4K);
    // Same tag in a different set is legal (checked per set)...
    chk.onTlbEntry(1, vpnOf(1, 2, 3, 4), 42, false, kPageShift4K);
    // ...but a repeat within one set is the duplicate-entry bug.
    EXPECT_DEATH(chk.onTlbEntry(0, vpnOf(1, 2, 3, 4), 42, false,
                                kPageShift4K),
                 "duplicate VPN");
    chk.endTlbSweep();
    EXPECT_EQ(chk.entriesSwept(), 2u);
}

TEST_F(CheckerFixture, WalkConservationBalances)
{
    InvariantChecker chk(pt);
    const Vpn a = vpnOf(1, 2, 3, 4), b = vpnOf(1, 2, 3, 5);
    chk.onWalkEnqueued(a);
    chk.onWalkEnqueued(b);
    chk.onWalkEnqueued(a); // duplicate VPN in flight is legal
    chk.onWalkCompleted(a);
    chk.onWalkCompleted(b);
    EXPECT_DEATH(chk.checkWalksDrained(), "uncompleted");
    chk.onWalkCompleted(a);
    chk.checkWalksDrained();
    EXPECT_EQ(chk.walksTracked(), 3u);
}

TEST_F(CheckerFixture, SpuriousCompletionPanics)
{
    InvariantChecker chk(pt);
    chk.onWalkEnqueued(vpnOf(1, 2, 3, 4));
    chk.onWalkCompleted(vpnOf(1, 2, 3, 4));
    EXPECT_DEATH(chk.onWalkCompleted(vpnOf(1, 2, 3, 4)),
                 "never enqueued");
    EXPECT_DEATH(chk.onWalkCompleted(vpnOf(9, 9, 9, 9)),
                 "never enqueued");
}

TEST_F(CheckerFixture, PagingLineContainment)
{
    InvariantChecker chk(pt);
    // Lines derived from the real walk trace are inside live tables.
    const WalkPath path = pt.walk(vpnOf(1, 2, 3, 4));
    for (unsigned l = 0; l < path.levels; ++l)
        chk.onPagingLine(path.entryAddrs[l] >> 7, 7);
    EXPECT_EQ(chk.linesChecked(), 4u);
    // A line inside the *data* frame of the mapping is not a paging
    // structure: referencing it from a walk is a walker bug.
    const std::uint64_t data_line = (42ULL << kPageShift4K) >> 7;
    EXPECT_DEATH(chk.onPagingLine(data_line, 7), "paging-structure");
}

TEST_F(CheckerFixture, ArmedTlbChecksFills)
{
    InvariantChecker chk(pt);
    Tlb tlb(TlbConfig{});
    tlb.setChecker(&chk, kPageShift4K);
    tlb.fill(vpnOf(1, 2, 3, 4), Translation{42, false});
    tlb.fill(vpnOf(1, 2, 3, 5), Translation{43, false});
    EXPECT_EQ(chk.fillsChecked(), 2u);
    // Each fill triggers a full sweep: 1 entry after the first fill,
    // 2 after the second.
    EXPECT_EQ(chk.entriesSwept(), 3u);
    EXPECT_DEATH(tlb.fill(vpnOf(1, 2, 3, 4), Translation{7, false}),
                 "reference frame");
}

TEST_F(CheckerFixture, ArmedWalkersConserveAndDrain)
{
    InvariantChecker chk(pt);
    MemorySystem mem((MemorySystemConfig()));
    EventQueue eq;
    PtwConfig cfg;
    cfg.scheduling = true;
    PageWalkers w(cfg, pt, mem, eq);
    w.setChecker(&chk);
    int done = 0;
    w.requestBatch({vpnOf(1, 2, 3, 4), vpnOf(1, 2, 3, 5)}, 0,
                   [&](Vpn, Cycle) { ++done; });
    eq.runUntil(1'000'000);
    EXPECT_EQ(done, 2);
    EXPECT_EQ(chk.walksTracked(), 2u);
    EXPECT_GT(chk.linesChecked(), 0u);
    w.checkDrained();
}
