/**
 * @file
 * Integration tests: whole-GPU runs at small scale asserting the
 * paper's qualitative orderings and cross-run determinism.
 */

#include <gtest/gtest.h>

#include "core/experiment.hh"
#include "core/presets.hh"

using namespace gpummu;

namespace {

WorkloadParams
tinyParams()
{
    WorkloadParams p;
    p.scale = 0.04;
    p.seed = 42;
    return p;
}

SystemConfig
shrink(SystemConfig cfg)
{
    cfg.numCores = 4;
    return cfg;
}

} // namespace

TEST(Integration, NaiveTlbDegradesEveryBenchmark)
{
    Experiment exp(tinyParams());
    const auto base = shrink(presets::noTlb());
    const auto naive = shrink(presets::naiveTlb(3));
    for (BenchmarkId id : allBenchmarks()) {
        const double s = exp.speedup(id, naive, base);
        EXPECT_LT(s, 1.0) << benchmarkName(id);
    }
}

TEST(Integration, AugmentedRecoversMostOfTheLoss)
{
    Experiment exp(tinyParams());
    const auto base = shrink(presets::noTlb());
    const auto naive = shrink(presets::naiveTlb(4));
    const auto aug = shrink(presets::augmentedTlb());
    for (BenchmarkId id :
         {BenchmarkId::Bfs, BenchmarkId::Mummergpu,
          BenchmarkId::Memcached}) {
        const double n = exp.speedup(id, naive, base);
        const double a = exp.speedup(id, aug, base);
        EXPECT_GT(a, n) << benchmarkName(id);
    }
}

TEST(Integration, TlbMissRatesInPaperBand)
{
    Experiment exp(tinyParams());
    const auto naive = shrink(presets::naiveTlb(4));
    for (BenchmarkId id : allBenchmarks()) {
        const auto s = exp.run(id, naive);
        EXPECT_GT(s.tlbMissRate(), 0.05) << benchmarkName(id);
        EXPECT_LT(s.tlbMissRate(), 0.95) << benchmarkName(id);
        EXPECT_GT(s.tlbAccesses, 0u);
    }
}

TEST(Integration, MemoryInstructionFractionUnderForty)
{
    Experiment exp(tinyParams());
    const auto base = shrink(presets::noTlb());
    for (BenchmarkId id : allBenchmarks()) {
        const auto s = exp.run(id, base);
        EXPECT_LT(s.memInstrFraction(), 0.4) << benchmarkName(id);
        EXPECT_GT(s.memInstrFraction(), 0.02) << benchmarkName(id);
    }
}

TEST(Integration, PageDivergenceOrdering)
{
    // mummergpu is the paper's page-divergence outlier; pathfinder
    // and kmeans are the coalesced ones.
    Experiment exp(tinyParams());
    const auto naive = shrink(presets::naiveTlb(4));
    const auto mummer = exp.run(BenchmarkId::Mummergpu, naive);
    const auto pf = exp.run(BenchmarkId::Pathfinder, naive);
    const auto km = exp.run(BenchmarkId::Kmeans, naive);
    EXPECT_GT(mummer.avgPageDivergence, 3.0);
    EXPECT_LT(pf.avgPageDivergence, 2.5);
    EXPECT_LT(km.avgPageDivergence, 2.5);
    EXPECT_GT(mummer.maxPageDivergence, 16u);
}

TEST(Integration, RunsAreDeterministic)
{
    const auto cfg = shrink(presets::augmentedTlb());
    const auto a = runConfig(BenchmarkId::Bfs, cfg, tinyParams());
    const auto b = runConfig(BenchmarkId::Bfs, cfg, tinyParams());
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.tlbAccesses, b.tlbAccesses);
    EXPECT_EQ(a.l1Accesses, b.l1Accesses);
    EXPECT_EQ(a.walkRefsIssued, b.walkRefsIssued);
}

TEST(Integration, SeedChangesExecution)
{
    auto p1 = tinyParams();
    auto p2 = tinyParams();
    p2.seed = 43;
    const auto cfg = shrink(presets::noTlb());
    const auto a = runConfig(BenchmarkId::Bfs, cfg, p1);
    const auto b = runConfig(BenchmarkId::Bfs, cfg, p2);
    EXPECT_NE(a.cycles, b.cycles);
}

TEST(Integration, PtwSchedulingEliminatesReferences)
{
    Experiment exp(tinyParams());
    const auto aug = shrink(presets::augmentedTlb());
    const auto s = exp.run(BenchmarkId::Bfs, aug);
    EXPECT_GT(s.walkRefsEliminated, 0u);
    // The paper reports 10-20% of references eliminated.
    const double frac =
        static_cast<double>(s.walkRefsEliminated) /
        static_cast<double>(s.walkRefsEliminated + s.walkRefsIssued);
    EXPECT_GT(frac, 0.02);
}

TEST(Integration, TbcRaisesPageDivergenceAndCpmRestoresIt)
{
    Experiment exp(tinyParams());
    const auto plain = shrink(presets::augmentedTlb());
    const auto tbc = shrink(presets::tbc(presets::augmentedTlb()));
    const auto aware =
        shrink(presets::tlbAwareTbc(presets::augmentedTlb(), 3));
    const auto p = exp.run(BenchmarkId::Bfs, plain);
    const auto t = exp.run(BenchmarkId::Bfs, tbc);
    const auto a = exp.run(BenchmarkId::Bfs, aware);
    EXPECT_GT(t.avgPageDivergence, p.avgPageDivergence + 0.5);
    EXPECT_LT(a.avgPageDivergence, t.avgPageDivergence - 0.5);
}

TEST(Integration, LargePagesReduceTlbPressure)
{
    Experiment exp(tinyParams());
    const auto small = shrink(presets::naiveTlb(4));
    const auto large =
        shrink(presets::withLargePages(presets::naiveTlb(4)));
    // 2MB pages collapse most benchmarks' divergence and miss rates.
    const auto s4k = exp.run(BenchmarkId::Streamcluster, small);
    const auto s2m = exp.run(BenchmarkId::Streamcluster, large);
    EXPECT_LT(s2m.avgPageDivergence, s4k.avgPageDivergence);
    EXPECT_LT(s2m.tlbMissRate(), s4k.tlbMissRate());
}

TEST(Integration, CcwsThrottlingCutsTlbMisses)
{
    Experiment exp(tinyParams());
    const auto naive = shrink(presets::naiveTlb(4));
    const auto ccws = shrink(presets::ccws(presets::naiveTlb(4)));
    const auto plain = exp.run(BenchmarkId::Streamcluster, naive);
    const auto sched = exp.run(BenchmarkId::Streamcluster, ccws);
    EXPECT_LT(sched.tlbMissRate(), plain.tlbMissRate() + 0.001);
}

TEST(Integration, IdealTlbHasHigherHitRateThanNaive)
{
    Experiment exp(tinyParams());
    const auto naive = shrink(presets::naiveTlb(4));
    const auto ideal = shrink(presets::idealTlb());
    const auto n = exp.run(BenchmarkId::Bfs, naive);
    const auto i = exp.run(BenchmarkId::Bfs, ideal);
    EXPECT_LT(i.tlbMissRate(), n.tlbMissRate());
}
