/**
 * @file
 * Parameterized tests over the six benchmark models: structural
 * validity, address generators staying inside their regions, and
 * deterministic behaviour.
 */

#include <gtest/gtest.h>

#include "vm/address_space.hh"
#include "workloads/patterns.hh"
#include "workloads/workload.hh"

using namespace gpummu;

class WorkloadTest : public ::testing::TestWithParam<BenchmarkId>
{
  protected:
    WorkloadParams
    smallParams() const
    {
        WorkloadParams p;
        p.scale = 0.05;
        p.seed = 7;
        return p;
    }
};

TEST_P(WorkloadTest, BuildsValidProgram)
{
    PhysicalMemory phys(1 << 22, false);
    AddressSpace as(phys);
    auto wl = makeWorkload(GetParam(), smallParams());
    wl->build(as);
    wl->program().validate();
    EXPECT_GT(wl->numBlocks(), 0u);
    EXPECT_EQ(wl->threadsPerBlock() % kWarpWidth, 0u);
    EXPECT_EQ(wl->name(), benchmarkName(GetParam()));
}

TEST_P(WorkloadTest, AddressGeneratorsStayInsideRegions)
{
    PhysicalMemory phys(1 << 22, false);
    AddressSpace as(phys);
    auto wl = makeWorkload(GetParam(), smallParams());
    wl->build(as);
    const auto &prog = wl->program();

    // Evaluate every memory instruction's generator for a spread of
    // threads and iterations; every address must fall in a region.
    std::vector<ThreadCtx> ctxs;
    for (int t : {0, 1, 31, 32, 255})
        ctxs.emplace_back(t, t / 256, t % 256, kWarpWidth, 7);
    for (auto &ctx : ctxs)
        ctx.blockVisits.assign(prog.numBlocks(), 3);

    for (const auto &bb : prog.blocks()) {
        for (const auto &in : bb.instrs) {
            if (in.op != Opcode::Load && in.op != Opcode::Store)
                continue;
            for (auto &ctx : ctxs) {
                for (int rep = 0; rep < 50; ++rep) {
                    const VirtAddr va = prog.genAddr(in.addrGen, ctx);
                    bool inside = false;
                    for (const auto &r : as.regions())
                        inside = inside || r.contains(va);
                    ASSERT_TRUE(inside)
                        << benchmarkName(GetParam()) << " block "
                        << bb.id << " addr " << std::hex << va;
                }
            }
        }
    }
}

TEST_P(WorkloadTest, GeneratorsAreDeterministic)
{
    PhysicalMemory phys1(1 << 22, false), phys2(1 << 22, false);
    AddressSpace as1(phys1), as2(phys2);
    auto w1 = makeWorkload(GetParam(), smallParams());
    auto w2 = makeWorkload(GetParam(), smallParams());
    w1->build(as1);
    w2->build(as2);

    ThreadCtx a(5, 0, 5, kWarpWidth, 7), b(5, 0, 5, kWarpWidth, 7);
    a.blockVisits.assign(w1->program().numBlocks(), 2);
    b.blockVisits.assign(w2->program().numBlocks(), 2);
    const auto &p1 = w1->program();
    const auto &p2 = w2->program();
    for (const auto &bb : p1.blocks()) {
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            const auto &in = bb.instrs[i];
            if (in.op == Opcode::Load || in.op == Opcode::Store) {
                EXPECT_EQ(p1.genAddr(in.addrGen, a),
                          p2.genAddr(
                              p2.block(bb.id).instrs[i].addrGen, b));
            }
        }
    }
}

TEST_P(WorkloadTest, ScaleShrinksFootprintAndGrid)
{
    PhysicalMemory phys1(1 << 22, false), phys2(1 << 22, false);
    AddressSpace small_as(phys1), large_as(phys2);
    WorkloadParams small_p = smallParams();
    WorkloadParams large_p = smallParams();
    large_p.scale = 0.2;
    auto small_wl = makeWorkload(GetParam(), small_p);
    auto large_wl = makeWorkload(GetParam(), large_p);
    small_wl->build(small_as);
    large_wl->build(large_as);
    EXPECT_LT(small_as.mappedBytes(), large_as.mappedBytes());
    EXPECT_LE(small_wl->numBlocks(), large_wl->numBlocks());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, WorkloadTest,
    ::testing::ValuesIn(allBenchmarks()),
    [](const ::testing::TestParamInfo<BenchmarkId> &info) {
        return benchmarkName(info.param);
    });

// -------------------------------------------------- pattern helpers

TEST(Patterns, WarpWindowStableWithinWarp)
{
    ThreadCtx a(0, 3, 0, kWarpWidth, 9);  // lane 0 of warp 0
    ThreadCtx b(31, 3, 31, kWarpWidth, 9); // lane 31 of warp 0
    ThreadCtx c(32, 3, 32, kWarpWidth, 9); // warp 1
    EXPECT_EQ(warpWindow(a, 1, 5), warpWindow(b, 1, 5));
    EXPECT_NE(warpWindow(a, 1, 5), warpWindow(c, 1, 5));
    EXPECT_NE(warpWindow(a, 1, 5), warpWindow(a, 1, 6));
    EXPECT_NE(warpWindow(a, 1, 5), warpWindow(a, 2, 5));
}

TEST(Patterns, MixedAddrComponentsInRegion)
{
    VmRegion region{"r", 0x100000, 512 * kPageSize4K};
    MixParams mp;
    mp.pHot = 0.3;
    mp.pScatter = 0.2;
    mp.pChaos = 0.1;
    mp.windowPages = 4;
    mp.stickyLen = 3;
    ThreadCtx c(17, 2, 17, kWarpWidth, 3);
    for (int i = 0; i < 2000; ++i) {
        const VirtAddr va = mixedAddr(c, region, mp, i / 10);
        ASSERT_TRUE(region.contains(va));
    }
}

TEST(Patterns, HotComponentIsWarpInvariant)
{
    VmRegion region{"r", 0x100000, 512 * kPageSize4K};
    MixParams mp;
    mp.pHot = 1.0; // always hot
    mp.hotGroups = 1;
    ThreadCtx a(0, 0, 0, kWarpWidth, 3);
    ThreadCtx b(32 + 0, 0, 32, kWarpWidth, 3); // other warp, lane 0
    EXPECT_EQ(mixedAddr(a, region, mp, 4), mixedAddr(b, region, mp, 4));
}

TEST(Patterns, StickyReusesPages)
{
    VmRegion region{"r", 0x100000, 4096 * kPageSize4K};
    MixParams mp;
    mp.pHot = 0.0;
    mp.pScatter = 1.0; // all scatter: only stickiness creates reuse
    mp.stickyLen = 4;
    ThreadCtx c(3, 0, 3, kWarpWidth, 11);
    std::uint64_t prev_page = ~0ULL;
    int repeats = 0;
    for (int i = 0; i < 400; ++i) {
        const std::uint64_t page =
            mixedAddr(c, region, mp, 0) >> kPageShift4K;
        repeats += (page == prev_page);
        prev_page = page;
    }
    // stickyLen 4: roughly 3 of every 4 accesses repeat the page.
    EXPECT_GT(repeats, 250);
}

TEST(Patterns, StreamAddrWrapsAtCapacity)
{
    VmRegion region{"r", 0x1000, 1024};
    for (std::uint64_t i = 0; i < 1000; ++i) {
        const VirtAddr va = streamAddr(region, i, 16);
        ASSERT_TRUE(region.contains(va));
    }
    EXPECT_EQ(streamAddr(region, 0, 16), streamAddr(region, 64, 16));
}
