/**
 * @file
 * Unit and integration tests for the shared second-level TLB: array
 * hit/miss, translation-MSHR merge and bypass, eviction and flush
 * reporting, cross-MMU miss coalescing, and the full-system
 * properties (armed checker on every workload, walker references
 * non-increasing with L2 capacity).
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/experiment.hh"
#include "core/presets.hh"
#include "mmu/l2_tlb.hh"
#include "mmu/mmu.hh"
#include "sim/event_queue.hh"
#include "vm/address_space.hh"
#include "vm/physical_memory.hh"

using namespace gpummu;

namespace {

struct L2TlbFixture : public ::testing::Test
{
    L2TlbFixture() : phys(1 << 20, false), as(phys)
    {
        region = as.mmap("data", 64 * kPageSize4K);
    }

    L2Tlb
    make(L2TlbConfig cfg = L2TlbConfig{})
    {
        cfg.enabled = true;
        return L2Tlb(cfg, as.pageTable(), eq, kPageShift4K);
    }

    Vpn
    vpn(unsigned page) const
    {
        return (region.base >> kPageShift4K) + page;
    }

    Ppn
    frameOf(unsigned page) const
    {
        return as.pageTable().translate(vpn(page))->ppn;
    }

    Translation
    xlat(unsigned page) const
    {
        return Translation{frameOf(page), false};
    }

    PhysicalMemory phys;
    AddressSpace as;
    EventQueue eq;
    VmRegion region;
};

} // namespace

TEST_F(L2TlbFixture, MissAllocatesMshrThenFillWakesAndHits)
{
    L2TlbConfig cfg;
    cfg.checkInvariants = true;
    auto l2 = make(cfg);

    int wakeups = 0;
    std::uint64_t got_frame = 0;
    auto res = l2.access(vpn(0), 100,
                         [&](Vpn, std::uint64_t f, bool, Cycle) {
                             ++wakeups;
                             got_frame = f;
                         });
    EXPECT_EQ(res.outcome, L2Tlb::Outcome::NeedWalk);
    EXPECT_EQ(res.ready, 100 + cfg.hitLatency);
    EXPECT_TRUE(l2.mshrActive(vpn(0)));
    EXPECT_FALSE(l2.probe(vpn(0)));

    l2.fill(vpn(0), xlat(0), 500);
    EXPECT_EQ(wakeups, 1);
    EXPECT_EQ(got_frame, frameOf(0));
    EXPECT_FALSE(l2.mshrActive(vpn(0)));
    EXPECT_TRUE(l2.probe(vpn(0)));

    // Resident now: a second access hits and schedules its callback
    // at the returned ready cycle.
    Cycle hit_at = 0;
    auto res2 = l2.access(vpn(0), 600,
                          [&](Vpn, std::uint64_t f, bool, Cycle c) {
                              EXPECT_EQ(f, frameOf(0));
                              hit_at = c;
                          });
    EXPECT_EQ(res2.outcome, L2Tlb::Outcome::Hit);
    eq.runUntil(1'000'000);
    EXPECT_EQ(hit_at, res2.ready);
    EXPECT_EQ(l2.hits(), 1u);
    EXPECT_EQ(l2.lookups(), 2u);
    ASSERT_NE(l2.checker(), nullptr);
    EXPECT_EQ(l2.checker()->fillsChecked(), 1u);
    EXPECT_EQ(l2.checker()->hitsChecked(), 1u);
    // alloc + wake, conservation balanced.
    EXPECT_EQ(l2.checker()->mshrEventsChecked(), 2u);
    l2.checkEndOfKernel();
}

TEST_F(L2TlbFixture, ConcurrentMissesMergeIntoOneMshr)
{
    L2TlbConfig cfg;
    cfg.checkInvariants = true;
    auto l2 = make(cfg);

    int wakeups = 0;
    Cycle woken_at = 0;
    auto on_wake = [&](Vpn, std::uint64_t f, bool, Cycle c) {
        EXPECT_EQ(f, frameOf(3));
        ++wakeups;
        woken_at = c;
    };
    EXPECT_EQ(l2.access(vpn(3), 10, on_wake).outcome,
              L2Tlb::Outcome::NeedWalk);
    EXPECT_EQ(l2.access(vpn(3), 11, on_wake).outcome,
              L2Tlb::Outcome::Merged);
    EXPECT_EQ(l2.access(vpn(3), 12, on_wake).outcome,
              L2Tlb::Outcome::Merged);
    EXPECT_EQ(l2.mshrsInUse(), 1u);
    EXPECT_EQ(l2.mshrMerges(), 2u);

    // One fill wakes all three waiters at the walk's finish cycle.
    l2.fill(vpn(3), xlat(3), 400);
    EXPECT_EQ(wakeups, 3);
    EXPECT_EQ(woken_at, 400u);
    EXPECT_EQ(l2.mshrsInUse(), 0u);
    // 1 alloc + 2 merges + 3 wakeups.
    EXPECT_EQ(l2.checker()->mshrEventsChecked(), 6u);
    l2.checkEndOfKernel();
}

TEST_F(L2TlbFixture, FullMshrFileBypasses)
{
    L2TlbConfig cfg;
    cfg.mshrs = 1;
    auto l2 = make(cfg);

    auto nop = [](Vpn, std::uint64_t, bool, Cycle) {};
    EXPECT_EQ(l2.access(vpn(0), 0, nop).outcome,
              L2Tlb::Outcome::NeedWalk);
    // Distinct VPN with the single MSHR taken: structural bypass.
    EXPECT_EQ(l2.access(vpn(1), 0, nop).outcome,
              L2Tlb::Outcome::Bypass);
    EXPECT_EQ(l2.mshrBypasses(), 1u);
    // Same VPN still merges - an MSHR exists for it.
    EXPECT_EQ(l2.access(vpn(0), 1, nop).outcome,
              L2Tlb::Outcome::Merged);

    // The bypass walk still installs its result for later hitters.
    l2.fillBypass(vpn(1), xlat(1), 300);
    EXPECT_TRUE(l2.probe(vpn(1)));
    EXPECT_EQ(l2.access(vpn(1), 400, nop).outcome,
              L2Tlb::Outcome::Hit);

    // Race pin: a second VPN bypasses while the file is full, the
    // MSHR then frees and ANOTHER core allocates one for that same
    // VPN before the bypass walk lands. fillBypass must install
    // without disturbing the younger MSHR; its own fill still wakes
    // its waiter exactly once.
    EXPECT_EQ(l2.access(vpn(2), 410, nop).outcome,
              L2Tlb::Outcome::Bypass);
    l2.fill(vpn(0), xlat(0), 500); // frees the single MSHR
    int late_wakes = 0;
    EXPECT_EQ(l2.access(vpn(2), 510,
                        [&](Vpn, std::uint64_t, bool, Cycle) {
                            ++late_wakes;
                        })
                  .outcome,
              L2Tlb::Outcome::NeedWalk);
    l2.fillBypass(vpn(2), xlat(2), 600); // the old bypass walk lands
    EXPECT_EQ(late_wakes, 0);
    EXPECT_TRUE(l2.mshrActive(vpn(2)));
    l2.fill(vpn(2), xlat(2), 700);
    EXPECT_EQ(late_wakes, 1);
    eq.runUntil(1'000'000);
}

TEST_F(L2TlbFixture, CapacityEvictionReportsVictim)
{
    L2TlbConfig cfg;
    cfg.entries = 2;
    cfg.ways = 2;
    auto l2 = make(cfg);
    std::vector<Vpn> evicted;
    l2.setEvictionListener([&](Vpn v) { evicted.push_back(v); });

    auto nop = [](Vpn, std::uint64_t, bool, Cycle) {};
    for (unsigned p = 0; p < 3; ++p) {
        l2.access(vpn(p), p, nop);
        l2.fill(vpn(p), xlat(p), 100 + p);
    }
    eq.runUntil(1'000'000);
    // Three fills into two entries: the LRU (first) fill is evicted.
    ASSERT_EQ(evicted.size(), 1u);
    EXPECT_EQ(evicted[0], vpn(0));
    EXPECT_EQ(l2.evictions(), 1u);
}

TEST_F(L2TlbFixture, FlushReportsEveryResidentEntry)
{
    auto l2 = make();
    std::vector<Vpn> evicted;
    l2.setEvictionListener([&](Vpn v) { evicted.push_back(v); });

    auto nop = [](Vpn, std::uint64_t, bool, Cycle) {};
    for (unsigned p = 0; p < 4; ++p) {
        l2.access(vpn(p), p, nop);
        l2.fill(vpn(p), xlat(p), 50 + p);
    }
    eq.runUntil(1'000'000);
    EXPECT_TRUE(evicted.empty());

    l2.flush();
    EXPECT_EQ(evicted.size(), 4u);
    for (unsigned p = 0; p < 4; ++p)
        EXPECT_FALSE(l2.probe(vpn(p)));
    EXPECT_EQ(l2.flushes(), 1u);
}

TEST_F(L2TlbFixture, PortContentionSerializesLookups)
{
    L2TlbConfig cfg;
    cfg.ports = 1;
    cfg.lookupInterval = 4;
    auto l2 = make(cfg);
    auto nop = [](Vpn, std::uint64_t, bool, Cycle) {};
    // Two same-cycle lookups on one port: the second starts one
    // lookupInterval later.
    auto r1 = l2.access(vpn(0), 100, nop);
    auto r2 = l2.access(vpn(1), 100, nop);
    EXPECT_EQ(r1.ready, 100 + cfg.hitLatency);
    EXPECT_EQ(r2.ready, 100 + cfg.lookupInterval + cfg.hitLatency);
    l2.fill(vpn(0), xlat(0), 200);
    l2.fill(vpn(1), xlat(1), 201);
}

TEST_F(L2TlbFixture, CrossMmuMissesMergeIntoOneWalk)
{
    // Two cores' MMUs share one L2: core B misses on the page core A
    // is already walking, merges into A's MSHR, and never touches its
    // own walker pool - yet both cores' L1 TLBs get filled.
    MemorySystem mem((MemorySystemConfig()));
    L2TlbConfig l2cfg;
    l2cfg.enabled = true;
    l2cfg.checkInvariants = true;
    L2Tlb l2(l2cfg, as.pageTable(), eq, kPageShift4K);

    MmuConfig mcfg;
    mcfg.hitUnderMiss = true;
    Mmu mmu_a(mcfg, as, mem, eq);
    Mmu mmu_b(mcfg, as, mem, eq);
    mmu_a.setL2Tlb(&l2);
    mmu_b.setL2Tlb(&l2);

    int done_a = 0, done_b = 0;
    Cycle fin_a = 0, fin_b = 0;
    mmu_a.requestWalks({vpn(7)}, 0, 0,
                       [&](Vpn, std::uint64_t f, Cycle c) {
                           EXPECT_EQ(f, frameOf(7));
                           ++done_a;
                           fin_a = c;
                       });
    mmu_b.requestWalks({vpn(7)}, 0, 1,
                       [&](Vpn, std::uint64_t f, Cycle c) {
                           EXPECT_EQ(f, frameOf(7));
                           ++done_b;
                           fin_b = c;
                       });
    eq.runUntil(10'000'000);

    EXPECT_EQ(done_a, 1);
    EXPECT_EQ(done_b, 1);
    EXPECT_EQ(fin_a, fin_b); // one walk completed both
    EXPECT_EQ(l2.mshrMerges(), 1u);
    // Only core A's walkers ever walked.
    EXPECT_EQ(mmu_a.walkers().walksCompleted(), 1u);
    EXPECT_EQ(mmu_b.walkers().walksCompleted(), 0u);
    EXPECT_EQ(mmu_b.walkers().refsIssued(), 0u);
    // Both L1 TLBs were filled by the shared completion.
    EXPECT_TRUE(mmu_a.tlb().probe(vpn(7)));
    EXPECT_TRUE(mmu_b.tlb().probe(vpn(7)));

    // A later miss on either core hits the shared array.
    int hits = 0;
    mmu_b.requestWalks({vpn(7)}, 0, eq.now() + 1,
                       [&](Vpn, std::uint64_t, Cycle) { ++hits; });
    eq.runUntil(20'000'000);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(l2.hits(), 1u);
    EXPECT_EQ(mmu_b.l2Satisfied(), 2u); // merge + hit

    l2.checkEndOfKernel();
    mmu_a.checkEndOfKernel();
    mmu_b.checkEndOfKernel();
}

namespace {

WorkloadParams
tinyParams(double scale = 0.02)
{
    WorkloadParams p;
    p.scale = scale;
    p.seed = 42;
    return p;
}

SystemConfig
shrink(SystemConfig cfg, unsigned cores = 4)
{
    cfg.numCores = cores;
    return cfg;
}

} // namespace

TEST(L2TlbSystem, ArmedCheckerPassesOnAllSixWorkloads)
{
    // Full-system sanity with the differential checker armed on the
    // per-core MMUs *and* the shared L2: every fill re-derived from
    // the reference translator, MSHR conservation at kernel end.
    Experiment exp(tinyParams());
    SystemConfig cfg = shrink(
        presets::withSharedL2Tlb(presets::augmentedTlb(), 512, 2));
    cfg.checkInvariants = true;
    for (BenchmarkId id : allBenchmarks()) {
        const auto s = exp.run(id, cfg);
        EXPECT_GT(s.cycles, 0u) << benchmarkName(id);
    }
}

TEST(L2TlbSystem, WalkRefsNonIncreasingWithCapacity)
{
    // Every L2 hit or MSHR merge is a page walk that never reaches
    // the walkers, so growing the shared array cannot increase the
    // references the walkers issue.
    Experiment exp(tinyParams(0.03));
    const SystemConfig aug = shrink(presets::augmentedTlb(), 2);
    for (BenchmarkId id : {BenchmarkId::Bfs, BenchmarkId::Kmeans}) {
        std::uint64_t prev =
            exp.run(id, aug).walkRefsIssued;
        for (std::size_t entries : {64, 512, 4096}) {
            const auto cfg = shrink(
                presets::withSharedL2Tlb(aug, entries, 2), 2);
            const std::uint64_t refs =
                exp.run(id, cfg).walkRefsIssued;
            EXPECT_LE(refs, prev)
                << benchmarkName(id) << " @" << entries;
            prev = refs;
        }
    }
}

TEST(L2TlbSystem, DisabledConfigIsByteIdenticalToBaseline)
{
    // With l2tlb.enabled=false the rest of the L2 geometry must be
    // inert - the whole subsystem is pointer-gated like tracing, so
    // the run is byte-identical to one that never saw the fields.
    SystemConfig off = shrink(presets::augmentedTlb());
    off.l2tlb.enabled = false; // explicit: the default
    off.l2tlb.entries = 64;
    off.l2tlb.ports = 1;
    off.l2tlb.mshrs = 1;
    const RunOutput a =
        runConfigFull(BenchmarkId::Bfs, shrink(presets::augmentedTlb()),
                      tinyParams());
    const RunOutput b =
        runConfigFull(BenchmarkId::Bfs, off, tinyParams());
    EXPECT_EQ(a.statsJson, b.statsJson);
}
