#include "check/ref_translator.hh"

#include "sim/logging.hh"

namespace gpummu {

std::optional<RefWalk>
RefTranslator::walk(Vpn vpn) const
{
    GPUMMU_ASSERT(vpn < (1ULL << 36),
                  "VPN ", vpn, " outside the 48-bit virtual space");
    RefWalk out;
    // Start at the CR3 analogue and chase physical frame pointers;
    // level L consumes virtual address bits [47-9L .. 39-9L], i.e.
    // bits [35-9L .. 27-9L] of the 36-bit VPN.
    PhysAddr table_base = pt_.rootAddr();
    for (unsigned level = 0; level < kWalkLevels4K; ++level) {
        const unsigned shift = 9 * (kWalkLevels4K - 1 - level);
        const unsigned idx =
            static_cast<unsigned>((vpn >> shift) & 0x1ff);
        const PhysAddr entry_addr = table_base + idx * 8ULL;
        out.entryAddrs[level] = entry_addr;
        out.levels = level + 1;

        const RawEntry e = pt_.readEntry(entry_addr);
        if (!e.present)
            return std::nullopt;
        if (e.leaf) {
            if (e.large) {
                GPUMMU_ASSERT(level == kWalkLevels2M - 1,
                              "2MB leaf at radix level ", level);
                const Ppn in_region =
                    vpn & ((kPageSize2M / kPageSize4K) - 1);
                out.result = Translation{e.value + in_region, true};
            } else {
                GPUMMU_ASSERT(level == kWalkLevels4K - 1,
                              "4KB leaf at radix level ", level);
                out.result = Translation{e.value, false};
            }
            return out;
        }
        table_base = static_cast<PhysAddr>(e.value) << kPageShift4K;
    }
    GPUMMU_PANIC("radix walk ran past the PT level");
}

std::optional<Translation>
RefTranslator::translate(Vpn vpn) const
{
    auto w = walk(vpn);
    if (!w)
        return std::nullopt;
    return w->result;
}

std::optional<std::uint64_t>
RefTranslator::frameBase(Vpn tag, unsigned page_shift) const
{
    GPUMMU_ASSERT(page_shift == kPageShift4K ||
                      page_shift == kPageShift2M,
                  "unsupported translation granularity ", page_shift);
    const unsigned expand = page_shift - kPageShift4K;
    auto t = translate(tag << expand);
    if (!t)
        return std::nullopt;
    if (page_shift == kPageShift2M) {
        GPUMMU_ASSERT(t->isLarge, "2MB-granularity tag ", tag,
                      " backed by a 4KB mapping");
    }
    return t->ppn >> expand;
}

} // namespace gpummu
