#include "check/invariant_checker.hh"

#include "sim/logging.hh"

namespace gpummu {

void
InvariantChecker::addSpace(Asid asid, const PageTable &pt)
{
    GPUMMU_ASSERT(asid != primaryAsid_,
                  "addSpace duplicates the primary ASID ", asid);
    const bool fresh = pts_.emplace(asid, &pt).second;
    GPUMMU_ASSERT(fresh, "addSpace called twice for ASID ", asid);
    refs_.emplace(asid, RefTranslator(pt));
}

const RefTranslator &
InvariantChecker::refFor(Asid asid) const
{
    if (asid == primaryAsid_)
        return ref_;
    auto it = refs_.find(asid);
    GPUMMU_ASSERT(it != refs_.end(),
                  "TLB tag composed with unregistered ASID ", asid);
    return it->second;
}

void
InvariantChecker::checkTranslation(Vpn tag, std::uint64_t frame_base,
                                   bool is_large, unsigned page_shift,
                                   const char *site)
{
    // Multi-process tags arrive ASID-composed; decompose and check
    // against the owning process's reference walker. Legacy tags
    // have asid 0 == primary and keyLocal is the identity.
    const RefTranslator &ref = refFor(keyAsid(tag));
    tag = keyLocal(tag);
    const unsigned expand = page_shift - kPageShift4K;
    auto w = ref.walk(tag << expand);
    GPUMMU_ASSERT(w.has_value(), site, ": VPN ", tag,
                  " (shift ", page_shift,
                  ") translated by the timing path but unmapped in "
                  "the reference walk");
    const std::uint64_t expected = w->result.ppn >> expand;
    GPUMMU_ASSERT(frame_base == expected, site, ": VPN ", tag,
                  " timing frame ", frame_base,
                  " != reference frame ", expected);
    if (page_shift == kPageShift2M) {
        GPUMMU_ASSERT(w->result.isLarge && is_large,
                      site, ": 2MB-granularity VPN ", tag,
                      " not backed by a 2MB mapping");
    } else {
        GPUMMU_ASSERT(is_large == w->result.isLarge,
                      site, ": VPN ", tag, " page-size flag ",
                      is_large, " != reference ", w->result.isLarge);
    }
}

void
InvariantChecker::onTlbFill(Vpn tag, std::uint64_t frame_base,
                            bool is_large, unsigned page_shift)
{
    checkTranslation(tag, frame_base, is_large, page_shift,
                     "TLB fill");
    ++fillsChecked_;
}

void
InvariantChecker::onTlbHit(Vpn tag, std::uint64_t frame_base,
                           unsigned page_shift)
{
    const RefTranslator &ref = refFor(keyAsid(tag));
    tag = keyLocal(tag);
    const unsigned expand = page_shift - kPageShift4K;
    auto expected = ref.frameBase(tag, page_shift);
    GPUMMU_ASSERT(expected.has_value(),
                  "TLB hit on unmapped VPN ", tag << expand);
    GPUMMU_ASSERT(frame_base == *expected, "TLB hit: VPN ", tag,
                  " timing frame ", frame_base,
                  " != reference frame ", *expected);
    ++hitsChecked_;
}

void
InvariantChecker::beginTlbSweep()
{
    GPUMMU_ASSERT(!sweepActive_, "nested TLB sweeps");
    sweepActive_ = true;
    sweepSeen_.clear();
}

void
InvariantChecker::onTlbEntry(std::size_t set, Vpn tag,
                             std::uint64_t frame_base, bool is_large,
                             unsigned page_shift)
{
    GPUMMU_ASSERT(sweepActive_, "onTlbEntry outside a sweep");
    const bool fresh = sweepSeen_.emplace(set, tag).second;
    GPUMMU_ASSERT(fresh, "duplicate VPN ", tag, " in TLB set ", set);
    checkTranslation(tag, frame_base, is_large, page_shift,
                     "TLB sweep");
    ++entriesSwept_;
}

void
InvariantChecker::endTlbSweep()
{
    GPUMMU_ASSERT(sweepActive_, "endTlbSweep without beginTlbSweep");
    sweepActive_ = false;
    sweepSeen_.clear();
}

void
InvariantChecker::onWalkEnqueued(Vpn vpn)
{
    ++outstandingWalks_[vpn];
    ++walksTracked_;
}

void
InvariantChecker::onWalkCompleted(Vpn vpn)
{
    auto it = outstandingWalks_.find(vpn);
    GPUMMU_ASSERT(it != outstandingWalks_.end() && it->second > 0,
                  "walk completion for VPN ", vpn,
                  " that was never enqueued (or completed twice)");
    if (--it->second == 0)
        outstandingWalks_.erase(it);
}

void
InvariantChecker::onMshrAlloc(Vpn tag)
{
    const bool fresh = mshrWaiters_.emplace(tag, 1).second;
    GPUMMU_ASSERT(fresh, "MSHR allocated for VPN ", tag,
                  " while one is already live");
    ++mshrEventsChecked_;
}

void
InvariantChecker::onMshrMerge(Vpn tag)
{
    auto it = mshrWaiters_.find(tag);
    GPUMMU_ASSERT(it != mshrWaiters_.end(),
                  "MSHR merge on VPN ", tag, " with no live MSHR");
    ++it->second;
    ++mshrEventsChecked_;
}

void
InvariantChecker::onMshrWake(Vpn tag)
{
    auto it = mshrWaiters_.find(tag);
    GPUMMU_ASSERT(it != mshrWaiters_.end() && it->second > 0,
                  "MSHR wakeup for VPN ", tag,
                  " exceeds its registered waiters");
    if (--it->second == 0)
        mshrWaiters_.erase(it);
    ++mshrEventsChecked_;
}

void
InvariantChecker::checkMshrsDrained() const
{
    GPUMMU_ASSERT(mshrWaiters_.empty(), mshrWaiters_.size(),
                  " VPNs still hold unwoken MSHR waiters at kernel "
                  "end (first VPN ",
                  mshrWaiters_.empty() ? 0
                                       : mshrWaiters_.begin()->first,
                  ")");
}

void
InvariantChecker::onPagingLine(std::uint64_t line, unsigned line_shift)
{
    const Ppn frame = (line << line_shift) >> kPageShift4K;
    bool contained = pt_.isTableFrame(frame);
    for (auto it = pts_.begin(); !contained && it != pts_.end(); ++it)
        contained = it->second->isTableFrame(frame);
    GPUMMU_ASSERT(contained,
                  "page-walk line ", line,
                  " outside every live paging-structure page");
    ++linesChecked_;
}

void
InvariantChecker::checkWalksDrained() const
{
    GPUMMU_ASSERT(outstandingWalks_.empty(),
                  outstandingWalks_.size(),
                  " VPNs still hold enqueued-but-uncompleted walks at "
                  "kernel end (first VPN ",
                  outstandingWalks_.empty()
                      ? 0
                      : outstandingWalks_.begin()->first,
                  ")");
}

} // namespace gpummu
