/**
 * @file
 * Functional reference translator: a pure, untimed x86-64 radix walk
 * performed independently of the timing model.
 *
 * The timing path (Tlb fills, PageWalkers batches, walk coalescing,
 * the IOMMU) is what the paper evaluates; this walker is what it is
 * evaluated *against*. It deliberately shares no traversal code with
 * PageTable::walk or PageTable::translate: it re-derives the 9-bit
 * radix indices itself and chases physical frame pointers through
 * PageTable::readEntry, starting from the CR3 analogue. A bug in the
 * timing model's index math, level accounting or 2MB handling
 * therefore cannot cancel out against the same bug here.
 */

#ifndef CHECK_REF_TRANSLATOR_HH
#define CHECK_REF_TRANSLATOR_HH

#include <array>
#include <optional>

#include "sim/types.hh"
#include "vm/page_table.hh"

namespace gpummu {

/** The reference walk's trace + result, mirroring WalkPath. */
struct RefWalk
{
    std::array<PhysAddr, kWalkLevels4K> entryAddrs{};
    unsigned levels = 0;
    Translation result;
};

class RefTranslator
{
  public:
    explicit RefTranslator(const PageTable &pt) : pt_(pt) {}

    /**
     * Walk one 4KB-granularity VPN. Unlike PageTable::walk this does
     * not panic on unmapped pages; it returns nullopt, so the fuzzer
     * can probe edge/unmapped VPNs safely.
     */
    std::optional<RefWalk> walk(Vpn vpn) const;

    /** Just the translation of a 4KB VPN; nullopt when unmapped. */
    std::optional<Translation> translate(Vpn vpn) const;

    /**
     * Frame base at TLB-tag granularity: for @p page_shift 12 the
     * 4KB PPN of @p tag, for 21 the 2MB frame number of the 2MB tag
     * (which must be backed by a large mapping). This is the unit
     * the Tlb stores and the Mmu hands to physAddr().
     */
    std::optional<std::uint64_t> frameBase(Vpn tag,
                                           unsigned page_shift) const;

  private:
    const PageTable &pt_;
};

} // namespace gpummu

#endif // CHECK_REF_TRANSLATOR_HH
