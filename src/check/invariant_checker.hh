/**
 * @file
 * Runtime invariant checker for the MMU timing stack.
 *
 * Armed via SystemConfig::checkInvariants (or directly in unit
 * tests), one checker is attached to each Mmu/Iommu and called from
 * the Tlb, the PageWalkers and the Mmu at fill/complete/evict points.
 * Every check compares the *timing* path against the functional
 * RefTranslator, so a bug that reorders, coalesces or batches walks
 * incorrectly cannot silently skew results. Invariants enforced:
 *
 *  - every TLB fill equals the reference walk for that VPN (frame
 *    base, page size, mapped-ness), at either translation granularity;
 *  - no set ever holds two entries with the same VPN tag;
 *  - every resident TLB entry matches the reference at sweep points
 *    (each fill and kernel end), so later payload corruption is
 *    caught too;
 *  - every walk handed to the walkers completes exactly once
 *    (conservation across naive walkers, scheduled batches and
 *    line coalescing);
 *  - every waiter merged behind a shared-L2-TLB translation MSHR is
 *    woken exactly once by that MSHR's fill (N merged misses -> 1
 *    walk -> N wakeups);
 *  - every page-table reference and walk-cache entry lands inside a
 *    live paging-structure page;
 *  - all blocking state (outstanding walks, drain waiters, queued
 *    batches) has drained by kernel end.
 *
 * Violations are simulator bugs and panic immediately. The checker
 * registers no stats and mutates no timing state, so an armed run
 * produces bit-identical results to an unarmed one (asserted by
 * tests/test_determinism.cc).
 */

#ifndef CHECK_INVARIANT_CHECKER_HH
#define CHECK_INVARIANT_CHECKER_HH

#include <cstdint>
#include <map>
#include <set>
#include <utility>

#include "check/ref_translator.hh"
#include "sim/types.hh"

namespace gpummu {

class InvariantChecker
{
  public:
    /**
     * @param pt      the primary (or only) process's page table
     * @param primary its ASID; 0 for legacy single-process runs,
     *                where TLB tags arrive uncomposed
     */
    explicit InvariantChecker(const PageTable &pt, Asid primary = 0)
        : pt_(pt), ref_(pt), primaryAsid_(primary)
    {
    }

    InvariantChecker(const InvariantChecker &) = delete;
    InvariantChecker &operator=(const InvariantChecker &) = delete;

    const RefTranslator &ref() const { return ref_; }

    /**
     * Register a further process's page table. TLB tags for that
     * process arrive ASID-composed (asidKey); each is re-derived
     * against the owning process's own reference walker, so VPN
     * collisions across processes cannot alias in the checker either.
     */
    void addSpace(Asid asid, const PageTable &pt);

    /** A translation entered the TLB (Tlb::fill). */
    void onTlbFill(Vpn tag, std::uint64_t frame_base, bool is_large,
                   unsigned page_shift);

    /** A TLB lookup hit and the timing path will use @p frame_base. */
    void onTlbHit(Vpn tag, std::uint64_t frame_base,
                  unsigned page_shift);

    /** @{ Full-array sweep: duplicate tags + reference equality. */
    void beginTlbSweep();
    void onTlbEntry(std::size_t set, Vpn tag, std::uint64_t frame_base,
                    bool is_large, unsigned page_shift);
    void endTlbSweep();
    /** @} */

    /** One walk was handed to the walker pool. */
    void onWalkEnqueued(Vpn vpn);

    /** One walk completed (its DoneFn is about to fire). */
    void onWalkCompleted(Vpn vpn);

    /** A page-table line reference or walk-cache entry: @p line is a
     *  line id (byte address >> line shift). */
    void onPagingLine(std::uint64_t line, unsigned line_shift);

    /** Kernel-end conservation: every enqueued walk completed. */
    void checkWalksDrained() const;

    /**
     * @{ Translation-MSHR conservation (shared L2 TLB): N misses
     * merged behind one MSHR must produce exactly one walk whose fill
     * wakes each of the N waiters exactly once. Alloc registers the
     * first waiter, merge each further one, and wake fires per waiter
     * at the fill.
     */
    void onMshrAlloc(Vpn tag);
    void onMshrMerge(Vpn tag);
    void onMshrWake(Vpn tag);
    /** Kernel-end: every registered waiter was woken. */
    void checkMshrsDrained() const;
    /** @} */

    /** @{ Check-volume accessors, so tests can assert coverage. */
    std::uint64_t fillsChecked() const { return fillsChecked_; }
    std::uint64_t hitsChecked() const { return hitsChecked_; }
    std::uint64_t entriesSwept() const { return entriesSwept_; }
    std::uint64_t walksTracked() const { return walksTracked_; }
    std::uint64_t linesChecked() const { return linesChecked_; }
    std::uint64_t mshrEventsChecked() const
    {
        return mshrEventsChecked_;
    }
    /** @} */

  private:
    /** Shared fill/entry check against the reference walk. */
    void checkTranslation(Vpn tag, std::uint64_t frame_base,
                          bool is_large, unsigned page_shift,
                          const char *site);

    /** Reference walker owning @p asid's space (panics if unknown). */
    const RefTranslator &refFor(Asid asid) const;

    const PageTable &pt_;
    RefTranslator ref_;
    Asid primaryAsid_;
    /** Further processes (multi-tenant runs): asid -> its walker. */
    std::map<Asid, RefTranslator> refs_;
    std::map<Asid, const PageTable *> pts_;

    /** VPN -> enqueued-but-not-completed walk count. */
    std::map<Vpn, std::uint64_t> outstandingWalks_;
    /** VPN -> registered-but-unwoken MSHR waiter count. */
    std::map<Vpn, std::uint64_t> mshrWaiters_;
    /** (set, tag) pairs seen by the sweep in progress. */
    std::set<std::pair<std::size_t, Vpn>> sweepSeen_;
    bool sweepActive_ = false;

    std::uint64_t fillsChecked_ = 0;
    std::uint64_t hitsChecked_ = 0;
    std::uint64_t entriesSwept_ = 0;
    std::uint64_t walksTracked_ = 0;
    std::uint64_t linesChecked_ = 0;
    std::uint64_t mshrEventsChecked_ = 0;
};

} // namespace gpummu

#endif // CHECK_INVARIANT_CHECKER_HH
