/**
 * @file
 * Complete configuration of one simulated GPU system.
 *
 * Every design point the paper evaluates is a SystemConfig value; the
 * presets in core/presets.hh construct the named ones (no-TLB
 * baseline, naive TLB, augmented TLB, ideal TLB, the CCWS family,
 * and the TBC variants).
 */

#ifndef CORE_SYSTEM_CONFIG_HH
#define CORE_SYSTEM_CONFIG_HH

#include <string>

#include "gpu/simt_core.hh"
#include "mmu/iommu.hh"
#include "mmu/l2_tlb.hh"
#include "mem/memory_system.hh"
#include "sched/ccws.hh"
#include "tbc/tbc_core.hh"

namespace gpummu {

enum class SchedulerKind
{
    LooseRoundRobin,
    GreedyThenOldest,
    Ccws,   ///< cache-conscious wavefront scheduling
    TaCcws, ///< CCWS with TLB-miss-weighted scoring
    Tcws,   ///< TLB-conscious warp scheduling
};

enum class CoreKind
{
    Simt, ///< per-warp reconvergence stacks
    Tbc,  ///< thread block compaction
};

struct SystemConfig
{
    /** Human-readable label used in reports. */
    std::string name = "baseline";

    /** Shader cores (paper: 30 SIMT cores over 8 memory channels;
     *  the bandwidth ratio matters, so keep them in proportion). */
    unsigned numCores = 30;

    CoreConfig core;
    MemorySystemConfig mem;

    SchedulerKind sched = SchedulerKind::LooseRoundRobin;
    CcwsConfig ccws;
    TcwsConfig tcws;

    CoreKind coreKind = CoreKind::Simt;
    TbcConfig tbc;

    /**
     * Use the Section 2.2 IOMMU organisation instead of per-core
     * MMUs: GPU caches virtually addressed, one big TLB + walkers at
     * the memory controller. Requires core.mmu.enabled == false.
     */
    bool iommu = false;
    IommuConfig iommuCfg;

    /**
     * Shared second-level TLB between every core's L1 TLB miss path
     * and its page walkers, with per-VPN translation MSHRs merging
     * concurrent cross-core misses into one walk. Off by default
     * (l2tlb.enabled); requires per-core MMUs and excludes IOMMU
     * mode.
     */
    L2TlbConfig l2tlb;

    /** Back the address space with 2MB pages (Section 9). */
    bool largePages = false;

    /**
     * Arm the differential reference checker on every MMU / IOMMU of
     * the run: each TLB fill and hit is cross-checked against a pure
     * functional page-table walk, walks obey conservation, and all
     * blocking state must drain by kernel end. Violations panic.
     * Never changes simulated results (test_determinism asserts an
     * armed run is bit-identical to an unarmed one).
     */
    bool checkInvariants = false;

    /** Simulated physical memory, in 4KB frames. */
    std::uint64_t physFrames = 1ULL << 22; // 16GB

    Cycle maxCycles = 400'000'000;
};

} // namespace gpummu

#endif // CORE_SYSTEM_CONFIG_HH
