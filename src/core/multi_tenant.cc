#include "core/multi_tenant.hh"

#include <algorithm>
#include <sstream>

#include "core/presets.hh"
#include "sched/ccws.hh"
#include "sim/logging.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

namespace gpummu {

namespace {

std::unique_ptr<WarpScheduler>
makeScheduler(const SystemConfig &cfg)
{
    switch (cfg.sched) {
      case SchedulerKind::LooseRoundRobin:
        return std::make_unique<LooseRoundRobin>(
            cfg.core.numWarpSlots);
      case SchedulerKind::GreedyThenOldest:
        return std::make_unique<GreedyThenOldest>();
      case SchedulerKind::Ccws:
      case SchedulerKind::TaCcws:
        return std::make_unique<Ccws>(cfg.ccws);
      case SchedulerKind::Tcws:
        return std::make_unique<Tcws>(cfg.tcws);
    }
    GPUMMU_PANIC("unknown scheduler kind");
}

/** Book-keeping for one co-scheduled process. */
struct Tenant
{
    Process *proc = nullptr;
    std::unique_ptr<Workload> workload;
    LaunchParams launch;
    unsigned nextBlock = 0;
    bool finished = false;
    TenantResult res;
};

/**
 * Run one slice: @p t's next blocksPerSlice thread blocks on a fresh
 * set of cores, to drain. Returns the cycle the slice ends. Cores are
 * transient and never stat-registered — per-tenant numbers accumulate
 * into t.res here, and the persistent structures (mem, IOMMU, OS)
 * carry the cross-slice state.
 */
Cycle
runSlice(Tenant &t, const SystemConfig &sys, Iommu &iommu,
         MemorySystem &mem, EventQueue &eq, TraceSink *trace,
         Telemetry *telemetry, SpanTracker *spans, Cycle clock,
         unsigned blocks_per_slice)
{
    std::vector<std::unique_ptr<SimtCore>> cores;
    cores.reserve(sys.numCores);
    for (unsigned i = 0; i < sys.numCores; ++i) {
        auto core = std::make_unique<SimtCore>(
            static_cast<int>(i), sys.core, t.launch, t.proc->as, mem,
            eq);
        core->setScheduler(makeScheduler(sys));
        core->setIommu(&iommu);
        core->memStage().setAsid(t.proc->asid);
        if (trace != nullptr)
            core->setTraceSink(trace);
        if (telemetry != nullptr)
            core->setHeatProfiler(&telemetry->heat());
        if (spans != nullptr)
            core->setSpanTracker(spans);
        cores.push_back(std::move(core));
    }

    const unsigned end_block =
        std::min(t.launch.totalBlocks, t.nextBlock + blocks_per_slice);
    auto dispatch = [&]() {
        bool placed_any = false;
        bool placed = true;
        while (placed && t.nextBlock < end_block) {
            placed = false;
            for (auto &core : cores) {
                if (t.nextBlock >= end_block)
                    break;
                if (core->canAcceptBlock()) {
                    core->launchBlock(t.nextBlock++);
                    placed = true;
                    placed_any = true;
                }
            }
        }
        return placed_any;
    };
    dispatch();

    // Same cycle loop as GpuTop::run, on the persistent clock.
    Cycle cycle = clock;
    while (true) {
        eq.runUntil(cycle);
        bool all_idle = true;
        bool all_quiescent = true;
        Cycle wake = kCycleNever;
        for (auto &core : cores) {
            core->tick(cycle);
            all_idle = all_idle && core->idle();
            all_quiescent =
                all_quiescent && core->lastTickQuiescent();
            wake = std::min(wake, core->wakeHint());
        }
        const bool placed = dispatch();
        if (all_idle && t.nextBlock >= end_block && eq.empty())
            break;
        if (telemetry != nullptr) {
            if (cycle + 1 >= telemetry->nextBoundary()) {
                for (auto &core : cores)
                    core->flushDeferredCharges();
            }
            telemetry->tick(cycle);
        }
        if (all_quiescent && !placed) {
            Cycle target = std::min(eq.nextEventCycle(), wake);
            if (telemetry != nullptr) {
                const Cycle nb = telemetry->nextBoundary();
                target = nb == 0 ? cycle : std::min(target, nb - 1);
            }
            if (target != kCycleNever && target > cycle + 1) {
                const Cycle n = target - (cycle + 1);
                for (auto &core : cores)
                    core->chargeSkipped(cycle, n);
                cycle += n;
            }
        }
        ++cycle;
        if (cycle > sys.maxCycles) {
            GPUMMU_FATAL("multi-tenant run exceeded ", sys.maxCycles,
                         " cycles; deadlock or undersized budget");
        }
    }

    for (auto &core : cores) {
        core->flushDeferredCharges();
        core->mmu().endKernel();
        core->finalizeRun();
        t.res.instructions += core->instructionsIssued();
        t.res.memInstructions += core->memStage().memInstructions();
        t.res.l1Accesses += core->l1().accesses();
        t.res.l1Hits += core->l1().hits();
        t.res.idleCycles += core->idleCycles();
    }
    t.res.activeCycles += cycle - clock;
    t.res.blocks = t.nextBlock;

    // The slice drained, so nothing of this tenant is in flight; the
    // shared IOMMU must hold no blocking state either.
    iommu.checkEndOfKernel();
    return cycle;
}

} // namespace

MultiTenantResult
runMultiTenant(const MultiTenantConfig &cfg_in, TraceSink *trace,
               Telemetry *telemetry, SpanTracker *spans)
{
    GPUMMU_ASSERT(!cfg_in.tenants.empty(),
                  "multi-tenant run with no tenants");
    GPUMMU_ASSERT(cfg_in.system.iommu &&
                      !cfg_in.system.core.mmu.enabled,
                  "multi-tenant runs require the IOMMU organisation "
                  "(presets::iommu()): per-core MMUs hold one "
                  "process's translations");
    GPUMMU_ASSERT(!cfg_in.system.l2tlb.enabled,
                  "IOMMU mode has no per-core miss path for an L2 TLB");
    GPUMMU_ASSERT(!(cfg_in.lazyBacking && cfg_in.system.largePages),
                  "demand paging is 4KB-granular; 2MB mappings emerge "
                  "via coalescing, not largePages");
    GPUMMU_ASSERT(cfg_in.blocksPerSlice > 0);

    SystemConfig sys = cfg_in.system;
    if (sys.checkInvariants) {
        sys.core.mmu.checkInvariants = true;
        sys.iommuCfg.checkInvariants = true;
    }

    PhysicalMemory phys(sys.physFrames);
    ProcessManager pm(phys, cfg_in.os);
    EventQueue eq;
    MemorySystem mem(sys.mem);
    StatRegistry stats;

    std::vector<Tenant> tenants;
    tenants.reserve(cfg_in.tenants.size());
    for (const TenantSpec &spec : cfg_in.tenants) {
        Tenant t;
        t.proc = &pm.create(spec.name, sys.largePages,
                            cfg_in.lazyBacking);
        t.workload = makeWorkload(spec.bench, cfg_in.params);
        t.workload->build(t.proc->as);
        t.workload->program().validate();
        t.launch.program = &t.workload->program();
        t.launch.threadsPerBlock = t.workload->threadsPerBlock();
        t.launch.totalBlocks = t.workload->numBlocks();
        t.launch.seed = t.workload->params().seed;
        GPUMMU_ASSERT(t.launch.totalBlocks > 0);
        t.res.name = spec.name;
        t.res.asid = t.proc->asid;
        tenants.push_back(std::move(t));
    }

    // One shared IOMMU for the whole machine, anchored on the first
    // tenant's space; attachProcesses lets it resolve any registered
    // ASID (and teaches the armed checker every reference walker).
    Iommu iommu(sys.iommuCfg, tenants.front().proc->as, mem, eq);
    iommu.attachProcesses(&pm);
    pm.addTlbTarget(&iommu.tlb(), kPageShift4K);
    pm.addWalkerTarget(&iommu.walkers());

    mem.regStats(stats, "mem");
    iommu.regStats(stats, "iommu");
    pm.regStats(stats, "os");
    Counter slices;
    stats.addCounter("mt.slices", &slices);

    if (trace != nullptr) {
        trace->bindClock(&eq);
        mem.setTraceSink(trace);
        iommu.setTraceSink(trace, -1);
        trace->regStats(stats, "trace");
    }
    if (telemetry != nullptr) {
        telemetry->setMeta("multi-tenant", sys.name);
        telemetry->begin(stats);
        iommu.setHeatProfiler(&telemetry->heat(), -1);
    }
    if (spans != nullptr) {
        spans->bindClock(&eq);
        iommu.setSpanTracker(spans, -1);
        if (trace != nullptr)
            spans->setTraceSink(trace);
    }

    // Round-robin block-granular time slicing until every tenant has
    // retired its grid. A finishing tenant exits: its remaining
    // regions unmap and the shootdowns storm the shared structures
    // while the survivors' entries stay put.
    Cycle clock = 0;
    int last = -1;
    for (;;) {
        int pick = -1;
        const int n = static_cast<int>(tenants.size());
        for (int off = 1; off <= n; ++off) {
            const int i = (last + off) % n;
            if (!tenants[static_cast<std::size_t>(i)].finished) {
                pick = i;
                break;
            }
        }
        if (pick < 0)
            break;
        Tenant &t = tenants[static_cast<std::size_t>(pick)];
        if (last >= 0) {
            const Asid from =
                tenants[static_cast<std::size_t>(last)].proc->asid;
            clock += pm.noteContextSwitch(from, t.proc->asid);
        }
        last = pick;
        slices.inc();
        clock = runSlice(t, sys, iommu, mem, eq, trace, telemetry,
                         spans, clock, cfg_in.blocksPerSlice);
        if (t.nextBlock >= t.launch.totalBlocks) {
            t.finished = true;
            clock = pm.destroy(t.proc->asid, clock);
        }
    }

    if (telemetry != nullptr)
        telemetry->finish(clock, stats);

    MultiTenantResult out;
    for (const Tenant &t : tenants)
        out.tenants.push_back(t.res);
    out.totalCycles = clock;
    out.slices = slices.value();
    out.contextSwitches = pm.contextSwitches();
    out.shootdowns = pm.shootdowns();
    out.shootdownEntries = pm.shootdownEntries();
    out.faults = pm.faults();
    out.coalesces = pm.coalesces();
    out.splinters = pm.splinters();
    out.iommuLookups = iommu.lookups();
    out.iommuHits = iommu.hits();
    out.eventsFired = eq.eventsFired();

    std::ostringstream os;
    os << "{\"config\":\"" << jsonEscape(sys.name)
       << "\",\"tenants\":[";
    bool first = true;
    for (const TenantResult &r : out.tenants) {
        os << (first ? "" : ",") << "{\"name\":\""
           << jsonEscape(r.name) << "\",\"asid\":" << r.asid
           << ",\"blocks\":" << r.blocks
           << ",\"active_cycles\":" << r.activeCycles
           << ",\"instructions\":" << r.instructions
           << ",\"mem_instructions\":" << r.memInstructions
           << ",\"l1_accesses\":" << r.l1Accesses
           << ",\"l1_hits\":" << r.l1Hits
           << ",\"idle_cycles\":" << r.idleCycles << "}";
        first = false;
    }
    os << "],\"total_cycles\":" << out.totalCycles
       << ",\"slices\":" << out.slices
       << ",\"context_switches\":" << out.contextSwitches
       << ",\"shootdowns\":" << out.shootdowns
       << ",\"shootdown_entries\":" << out.shootdownEntries
       << ",\"faults\":" << out.faults
       << ",\"coalesces\":" << out.coalesces
       << ",\"splinters\":" << out.splinters
       << ",\"iommu_lookups\":" << out.iommuLookups
       << ",\"iommu_hits\":" << out.iommuHits << ",\"stats\":";
    stats.dumpJson(os);
    os << "}";
    out.statsJson = os.str();
    return out;
}

MultiTenantConfig
defaultMultiTenant(double scale)
{
    MultiTenantConfig cfg;
    cfg.system = presets::iommu();
    cfg.system.name = "iommu-mt";
    cfg.params.scale = scale;
    const auto pair = defaultTenantPair();
    for (BenchmarkId id : pair)
        cfg.tenants.push_back({id, benchmarkName(id)});
    return cfg;
}

} // namespace gpummu
