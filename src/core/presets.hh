/**
 * @file
 * Named system configurations matching the paper's design points.
 */

#ifndef CORE_PRESETS_HH
#define CORE_PRESETS_HH

#include "core/system_config.hh"

namespace gpummu {
namespace presets {

/** The pre-unified-address-space GPU: no address translation. */
SystemConfig noTlb();

/**
 * The strawman CPU-style MMU (Section 6.2): blocking 128-entry TLB
 * with @p ports ports and one serial PTW, no walk scheduling.
 * Figure 2 uses 3 ports; Figures 7/10/11 onward use 4.
 */
SystemConfig naiveTlb(unsigned ports = 3);

/** Naive TLB with non-default geometry (Fig. 6 sweeps). */
SystemConfig naiveTlbSized(std::size_t entries, unsigned ports,
                           bool ideal_latency = false);

/** Naive blocking TLB with @p walkers independent PTWs (Fig. 11). */
SystemConfig naiveTlbMultiPtw(unsigned walkers);

/** + hits under misses (first non-blocking step, Fig. 7). */
SystemConfig tlbHitUnderMiss();

/** + overlapped cache access for the missing warp (Fig. 7). */
SystemConfig tlbCacheOverlap();

/**
 * The paper's full augmented MMU (Fig. 10): 128-entry 4-port TLB,
 * hit-under-miss, overlapped cache access, PTW scheduling, 1 walker.
 */
SystemConfig augmentedTlb();

/** Impractical reference: 512 entries, 32 ports, no latency cost. */
SystemConfig idealTlb();

/**
 * The Section 2.2 alternative: one large IOMMU TLB at the memory
 * controller, GPU caches virtually addressed, translation on the
 * L1-miss path.
 */
SystemConfig iommu();

/** Attach a scheduler kind to an existing config. */
SystemConfig withScheduler(SystemConfig cfg, SchedulerKind kind);

/** CCWS on a given MMU config (default tuning). */
SystemConfig ccws(SystemConfig base);

/** TA-CCWS: CCWS weighting TLB-missing VTA hits @p weight : 1. */
SystemConfig taCcws(SystemConfig base, unsigned weight);

/**
 * TCWS with @p entries_per_warp TLB-VTA entries and optional LRU
 * depth weights (all-zero disables depth weighting).
 */
SystemConfig tcws(SystemConfig base, unsigned entries_per_warp,
                  std::array<std::uint64_t, 4> lru_weights);

/** Thread block compaction on a given MMU config. */
SystemConfig tbc(SystemConfig base);

/** TLB-aware TBC with @p cpm_bits-bit CPM counters (Fig. 22). */
SystemConfig tlbAwareTbc(SystemConfig base, unsigned cpm_bits);

/** Switch a config to 2MB pages (Section 9). */
SystemConfig withLargePages(SystemConfig cfg);

/**
 * Back @p cfg's per-core MMUs with a shared second-level TLB of
 * @p entries entries and @p ports lookup ports (the shared-L2 design
 * point of the heterogeneous-MMU studies; see PAPERS.md). Requires a
 * config with per-core MMUs enabled.
 */
SystemConfig withSharedL2Tlb(SystemConfig cfg,
                             std::size_t entries = 4096,
                             unsigned ports = 2);

} // namespace presets
} // namespace gpummu

#endif // CORE_PRESETS_HH
