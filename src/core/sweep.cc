#include "core/sweep.hh"

#include <charconv>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <system_error>

namespace gpummu {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("GPUMMU_JOBS")) {
        // Strict parse: the whole string must be one in-range
        // positive integer. atol() silently accepted trailing garbage
        // ("4abc" -> 4) and has undefined behavior on out-of-range
        // input, so a typo'd environment could pick an arbitrary
        // worker count without a word; now it warns and falls back.
        unsigned v = 0;
        const char *end = env + std::strlen(env);
        const auto [ptr, ec] = std::from_chars(env, end, v);
        if (ec == std::errc() && ptr == end && v > 0)
            return v;
        warn("ignoring GPUMMU_JOBS=", env,
             " (want a positive integer with no trailing ",
             "characters, at most ",
             std::numeric_limits<unsigned>::max(), ")");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<RunOutput>
SweepRunner::run(const std::vector<SweepPoint> &grid)
{
    return parallelMap(jobs_, grid.size(), [&](std::size_t i) {
        const SweepPoint &p = grid[i];
        return exp_.runFull(p.bench, p.cfg);
    });
}

} // namespace gpummu
