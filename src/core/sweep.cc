#include "core/sweep.hh"

#include <cstdlib>

namespace gpummu {

unsigned
resolveJobs(unsigned requested)
{
    if (requested > 0)
        return requested;
    if (const char *env = std::getenv("GPUMMU_JOBS")) {
        const long v = std::atol(env);
        if (v > 0)
            return static_cast<unsigned>(v);
        warn("ignoring GPUMMU_JOBS=", env, " (want a positive int)");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::vector<RunOutput>
SweepRunner::run(const std::vector<SweepPoint> &grid)
{
    return parallelMap(jobs_, grid.size(), [&](std::size_t i) {
        const SweepPoint &p = grid[i];
        return exp_.runFull(p.bench, p.cfg);
    });
}

} // namespace gpummu
