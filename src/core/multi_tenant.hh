/**
 * @file
 * Multi-tenant top level: N processes time-share one IOMMU-mode GPU.
 *
 * The paper's runs are single-process; this runner models the
 * OS-interaction costs that design must eventually pay (the Section
 * 2.2 programmability argument made quantitative): per-process
 * ASID-tagged address spaces with overlapping virtual ranges, context
 * switches on the shared IOMMU, minor-fault demand paging, and TLB
 * shootdowns on unmap that must reach every translation-caching
 * structure without disturbing the co-resident tenant.
 *
 * Scheduling is block-granular whole-GPU time slicing: each slice
 * runs one tenant's next batch of thread blocks to completion on a
 * fresh set of shader cores (the GPU has no mid-block preemption),
 * then the next tenant takes the machine behind a context-switch
 * penalty. The IOMMU TLB, walkers, memory system and event queue
 * persist across slices, so a tenant's translations survive its
 * neighbour's slices — until its own munmaps shoot them down.
 */

#ifndef CORE_MULTI_TENANT_HH
#define CORE_MULTI_TENANT_HH

#include <string>
#include <vector>

#include "core/system_config.hh"
#include "vm/process.hh"
#include "workloads/workload.hh"

namespace gpummu {

class SpanTracker;
class Telemetry;
class TraceSink;

/** One co-scheduled process. */
struct TenantSpec
{
    BenchmarkId bench = BenchmarkId::Bfs;
    std::string name;
};

struct MultiTenantConfig
{
    /** Base machine; must be an IOMMU-mode config (presets::iommu()):
     *  per-core MMUs cannot hold two processes' translations at once
     *  in this model, the shared IOMMU can. */
    SystemConfig system;
    /** OS cost knobs (context switch, fault service, shootdown). */
    OsConfig os;
    /** Workload knobs shared by every tenant. */
    WorkloadParams params;
    std::vector<TenantSpec> tenants;
    /** Thread blocks a tenant runs per slice of the machine. */
    unsigned blocksPerSlice = 8;
    /** Demand-page tenant regions (minor faults at the IOMMU)
     *  instead of eagerly backing them. */
    bool lazyBacking = true;
};

/** Per-tenant slice-accumulated results. */
struct TenantResult
{
    std::string name;
    Asid asid = 0;
    std::uint64_t blocks = 0;
    /** Cycles this tenant owned the machine. */
    Cycle activeCycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memInstructions = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t idleCycles = 0;
};

struct MultiTenantResult
{
    std::vector<TenantResult> tenants;
    /** End-to-end cycles including switch and shootdown time. */
    Cycle totalCycles = 0;
    std::uint64_t slices = 0;
    std::uint64_t contextSwitches = 0;
    std::uint64_t shootdowns = 0;
    std::uint64_t shootdownEntries = 0;
    std::uint64_t faults = 0;
    std::uint64_t coalesces = 0;
    std::uint64_t splinters = 0;
    std::uint64_t iommuLookups = 0;
    std::uint64_t iommuHits = 0;
    std::uint64_t eventsFired = 0;
    /** Fixed-field-order JSON (summary + full stat registry);
     *  identical runs produce identical bytes. */
    std::string statsJson;
};

/**
 * Run every tenant to completion under time slicing. @p trace,
 * @p telemetry and @p spans are observation-only and may be null; all
 * attach to the persistent structures and to each slice's transient
 * cores. Span keys carry each tenant's ASID, so the exports break the
 * lifecycle decomposition down per process.
 */
MultiTenantResult runMultiTenant(const MultiTenantConfig &cfg,
                                 TraceSink *trace = nullptr,
                                 Telemetry *telemetry = nullptr,
                                 SpanTracker *spans = nullptr);

/** The canonical two-tenant configuration (defaultTenantPair() on an
 *  IOMMU machine) at workload scale @p scale. */
MultiTenantConfig defaultMultiTenant(double scale);

} // namespace gpummu

#endif // CORE_MULTI_TENANT_HH
