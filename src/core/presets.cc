#include "core/presets.hh"

namespace gpummu {
namespace presets {

SystemConfig
noTlb()
{
    SystemConfig cfg;
    cfg.name = "no-tlb";
    cfg.core.mmu.enabled = false;
    return cfg;
}

SystemConfig
naiveTlb(unsigned ports)
{
    SystemConfig cfg;
    cfg.name = "naive-tlb-" + std::to_string(ports) + "p";
    cfg.core.mmu.enabled = true;
    cfg.core.mmu.tlb.entries = 128;
    cfg.core.mmu.tlb.ports = ports;
    cfg.core.mmu.hitUnderMiss = false;
    cfg.core.mmu.cacheOverlap = false;
    cfg.core.mmu.ptw.numWalkers = 1;
    cfg.core.mmu.ptw.scheduling = false;
    return cfg;
}

SystemConfig
naiveTlbSized(std::size_t entries, unsigned ports, bool ideal_latency)
{
    SystemConfig cfg = naiveTlb(ports);
    cfg.name = "naive-tlb-" + std::to_string(entries) + "e-" +
               std::to_string(ports) + "p" +
               (ideal_latency ? "-ideal" : "");
    cfg.core.mmu.tlb.entries = entries;
    cfg.core.mmu.cacti.ideal = ideal_latency;
    return cfg;
}

SystemConfig
naiveTlbMultiPtw(unsigned walkers)
{
    SystemConfig cfg = naiveTlb(4);
    cfg.name = "naive-tlb-" + std::to_string(walkers) + "ptw";
    cfg.core.mmu.ptw.numWalkers = walkers;
    return cfg;
}

SystemConfig
tlbHitUnderMiss()
{
    SystemConfig cfg = naiveTlb(4);
    cfg.name = "tlb-hum";
    cfg.core.mmu.hitUnderMiss = true;
    return cfg;
}

SystemConfig
tlbCacheOverlap()
{
    SystemConfig cfg = tlbHitUnderMiss();
    cfg.name = "tlb-hum-overlap";
    cfg.core.mmu.cacheOverlap = true;
    return cfg;
}

SystemConfig
augmentedTlb()
{
    SystemConfig cfg = tlbCacheOverlap();
    cfg.name = "augmented-tlb";
    cfg.core.mmu.ptw.scheduling = true;
    return cfg;
}

SystemConfig
idealTlb()
{
    SystemConfig cfg = augmentedTlb();
    cfg.name = "ideal-tlb";
    cfg.core.mmu.tlb.entries = 512;
    cfg.core.mmu.tlb.ports = 32;
    cfg.core.mmu.cacti.ideal = true;
    return cfg;
}

SystemConfig
iommu()
{
    SystemConfig cfg;
    cfg.name = "iommu";
    cfg.core.mmu.enabled = false;
    cfg.iommu = true;
    return cfg;
}

SystemConfig
withScheduler(SystemConfig cfg, SchedulerKind kind)
{
    cfg.sched = kind;
    return cfg;
}

SystemConfig
ccws(SystemConfig base)
{
    base.name += "+ccws";
    base.sched = SchedulerKind::Ccws;
    base.ccws.numWarps = base.core.numWarpSlots;
    base.ccws.tlbMissWeight = 1;
    return base;
}

SystemConfig
taCcws(SystemConfig base, unsigned weight)
{
    base.name += "+ta-ccws-" + std::to_string(weight) + "x";
    base.sched = SchedulerKind::TaCcws;
    base.ccws.numWarps = base.core.numWarpSlots;
    base.ccws.tlbMissWeight = weight;
    return base;
}

SystemConfig
tcws(SystemConfig base, unsigned entries_per_warp,
     std::array<std::uint64_t, 4> lru_weights)
{
    base.name += "+tcws-" + std::to_string(entries_per_warp) + "epw";
    if (lru_weights != std::array<std::uint64_t, 4>{0, 0, 0, 0}) {
        base.name += "-lru" + std::to_string(lru_weights[0]) +
                     std::to_string(lru_weights[1]) +
                     std::to_string(lru_weights[2]) +
                     std::to_string(lru_weights[3]);
    }
    base.sched = SchedulerKind::Tcws;
    base.tcws.numWarps = base.core.numWarpSlots;
    base.tcws.vtaEntriesPerWarp = entries_per_warp;
    base.tcws.lruWeights = lru_weights;
    return base;
}

SystemConfig
tbc(SystemConfig base)
{
    base.name += "+tbc";
    base.coreKind = CoreKind::Tbc;
    base.tbc.tlbAware = false;
    return base;
}

SystemConfig
tlbAwareTbc(SystemConfig base, unsigned cpm_bits)
{
    base.name += "+tlb-tbc-" + std::to_string(cpm_bits) + "b";
    base.coreKind = CoreKind::Tbc;
    base.tbc.tlbAware = true;
    base.tbc.cpm.counterBits = cpm_bits;
    base.tbc.cpm.numWarps = base.core.numWarpSlots;
    return base;
}

SystemConfig
withLargePages(SystemConfig cfg)
{
    cfg.name += "+2mb";
    cfg.largePages = true;
    return cfg;
}

SystemConfig
withSharedL2Tlb(SystemConfig cfg, std::size_t entries, unsigned ports)
{
    cfg.name += "+l2tlb-" + std::to_string(entries) + "e-" +
                std::to_string(ports) + "p";
    cfg.l2tlb.enabled = true;
    cfg.l2tlb.entries = entries;
    cfg.l2tlb.ports = ports;
    // Keep ways a divisor of small sweep sizes.
    if (entries < cfg.l2tlb.ways)
        cfg.l2tlb.ways = entries;
    return cfg;
}

} // namespace presets
} // namespace gpummu
