/**
 * @file
 * Experiment runner: build a GPU from a SystemConfig, run a
 * benchmark, and report speedups against a cached no-TLB baseline -
 * the normalization every figure in the paper uses.
 *
 * Experiment is thread-safe: the memo cache is mutex-guarded and each
 * key carries an in-flight latch (a shared_future), so when several
 * sweep workers ask for the same (benchmark, config) point - most
 * commonly the expensive no-TLB baseline - exactly one thread
 * simulates it and the rest block on the latch instead of duplicating
 * the run.
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/system_config.hh"
#include "gpu/gpu_top.hh"
#include "workloads/workload.hh"

namespace gpummu {

class MemTraceWriter;
class SpanTracker;
class Telemetry;
class TraceSink;

/**
 * Everything one simulation produces: the aggregate RunStats plus a
 * machine-readable JSON dump of the full StatRegistry. The JSON is
 * byte-stable for identical runs, which the parallel-equivalence and
 * golden-stats tests assert.
 */
struct RunOutput
{
    RunStats stats;
    std::string statsJson;
};

/** Run one (benchmark, config) pair to completion. */
RunStats runConfig(BenchmarkId bench, const SystemConfig &cfg,
                   const WorkloadParams &params);

/**
 * As runConfig, but also capture the JSON stat dump. @p trace and
 * @p telemetry, when non-null, are armed on the run's GpuTop before
 * the cycle loop (observation-only; both must outlive the call and
 * belong to exactly this run — sweeps passing either must not share
 * it). An armed trace sink additionally registers its health stats
 * ("trace.*") in the run's registry; an armed telemetry never touches
 * the registry, so its stat dump stays bit-identical to an unarmed
 * run's.
 */
RunOutput runConfigFull(BenchmarkId bench, const SystemConfig &cfg,
                        const WorkloadParams &params,
                        TraceSink *trace = nullptr,
                        Telemetry *telemetry = nullptr,
                        MemTraceWriter *memtrace = nullptr,
                        SpanTracker *spans = nullptr);

/**
 * As runConfigFull, but over an already-constructed Workload — the
 * entry point for workloads that are not in the BenchmarkId registry
 * (TraceReplayWorkload). @p memtrace, when non-null, arms memory-
 * trace capture on the run (observation-only: it registers nothing in
 * the stat registry, so an armed run's stat dump is bit-identical to
 * an unarmed one's) and finishes the trace after the run; capture on
 * a TBC topology or a failing trace write is fatal.
 *
 * @p spans, when non-null, arms translation-lifecycle span tracking
 * (observation-only: it registers nothing in the stat registry, so an
 * armed run is bit-identical to an unarmed one) on every core's MMU
 * stack plus the shared L2 TLB or IOMMU of the configuration. When
 * both @p trace and @p spans are armed, the tracker additionally
 * emits Chrome-trace flow events through the sink, drawing each
 * translation's lifecycle as arrows in chrome://tracing.
 */
RunOutput runWorkloadFull(Workload &workload, const SystemConfig &cfg,
                          TraceSink *trace = nullptr,
                          Telemetry *telemetry = nullptr,
                          MemTraceWriter *memtrace = nullptr,
                          SpanTracker *spans = nullptr);

/**
 * Convenience harness for the benches: caches the no-TLB baseline
 * per benchmark (with the matching core kind and scheduler, as the
 * paper's figures do) and reports speedups against it. Safe to call
 * concurrently from sweep worker threads.
 */
class Experiment
{
  public:
    explicit Experiment(const WorkloadParams &params) : params_(params)
    {
    }

    Experiment(const Experiment &) = delete;
    Experiment &operator=(const Experiment &) = delete;

    /** Simulated cycles for (bench, cfg); memoized. */
    RunStats run(BenchmarkId bench, const SystemConfig &cfg);

    /**
     * Stats plus JSON dump for (bench, cfg); memoized. The reference
     * stays valid for the Experiment's lifetime.
     */
    const RunOutput &runFull(BenchmarkId bench,
                             const SystemConfig &cfg);

    /**
     * Speedup of @p cfg over @p baseline for @p bench (values < 1
     * are slowdowns, exactly as the paper plots them).
     */
    double speedup(BenchmarkId bench, const SystemConfig &cfg,
                   const SystemConfig &baseline);

    /** Simulations actually executed (cache misses), for tests. */
    std::size_t missCount() const;

    const WorkloadParams &params() const { return params_; }

  private:
    WorkloadParams params_;
    mutable std::mutex mu_;
    std::map<std::string, std::shared_future<RunOutput>> cache_;
    std::size_t misses_ = 0;
};

/** Fixed-width table printer used by all bench binaries. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> columns);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpummu

#endif // CORE_EXPERIMENT_HH
