/**
 * @file
 * Experiment runner: build a GPU from a SystemConfig, run a
 * benchmark, and report speedups against a cached no-TLB baseline -
 * the normalization every figure in the paper uses.
 */

#ifndef CORE_EXPERIMENT_HH
#define CORE_EXPERIMENT_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/presets.hh"
#include "core/system_config.hh"
#include "gpu/gpu_top.hh"
#include "workloads/workload.hh"

namespace gpummu {

/** Run one (benchmark, config) pair to completion. */
RunStats runConfig(BenchmarkId bench, const SystemConfig &cfg,
                   const WorkloadParams &params);

/**
 * Convenience harness for the benches: caches the no-TLB baseline
 * per benchmark (with the matching core kind and scheduler, as the
 * paper's figures do) and reports speedups against it.
 */
class Experiment
{
  public:
    explicit Experiment(const WorkloadParams &params) : params_(params)
    {
    }

    /** Simulated cycles for (bench, cfg); memoized. */
    RunStats run(BenchmarkId bench, const SystemConfig &cfg);

    /**
     * Speedup of @p cfg over @p baseline for @p bench (values < 1
     * are slowdowns, exactly as the paper plots them).
     */
    double speedup(BenchmarkId bench, const SystemConfig &cfg,
                   const SystemConfig &baseline);

    const WorkloadParams &params() const { return params_; }

  private:
    WorkloadParams params_;
    std::map<std::string, RunStats> cache_;
};

/** Fixed-width table printer used by all bench binaries. */
class ReportTable
{
  public:
    explicit ReportTable(std::vector<std::string> columns);

    void addRow(std::vector<std::string> cells);
    void print(std::ostream &os) const;

    /** Format a double with fixed precision. */
    static std::string num(double v, int precision = 3);
    static std::string pct(double v, int precision = 1);

  private:
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpummu

#endif // CORE_EXPERIMENT_HH
