/**
 * @file
 * Parallel sweep engine.
 *
 * Every figure in the paper is a grid of (benchmark, SystemConfig)
 * points and each point builds its own GpuTop, so points are
 * embarrassingly parallel. SweepRunner fans a grid out over a small
 * thread pool and returns results in submission order; because every
 * worker goes through a shared thread-safe Experiment, common
 * baselines (the no-TLB run every speedup normalizes against) are
 * simulated exactly once no matter how many points need them.
 *
 * Determinism contract: a run's result depends only on
 * (seed, benchmark, config). All randomness flows through per-thread
 * Rng streams seeded from those values, and no simulator state is
 * shared between runs, so jobs=1 and jobs=N produce bit-identical
 * RunStats and stat dumps for every point, under any thread
 * interleaving. tests/test_sweep.cc asserts this.
 */

#ifndef CORE_SWEEP_HH
#define CORE_SWEEP_HH

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <vector>

#include "core/experiment.hh"

namespace gpummu {

/** One grid point of a sweep. */
struct SweepPoint
{
    BenchmarkId bench = BenchmarkId::Bfs;
    SystemConfig cfg;
};

/**
 * Resolve a worker count: @p requested if nonzero, else the
 * GPUMMU_JOBS environment variable, else hardware concurrency.
 * Always at least 1.
 */
unsigned resolveJobs(unsigned requested);

/**
 * Joins every still-joinable thread it owns on destruction.
 *
 * parallelMap spawns its workers into one of these so that an
 * exception thrown while the pool is still being built — std::thread
 * construction throws std::system_error under resource exhaustion,
 * which a large --jobs can reach — unwinds through a join of the
 * already-running workers. Destroying a joinable std::thread calls
 * std::terminate, so without this guard a mid-loop spawn failure
 * killed the process instead of surfacing the exception.
 */
class ThreadJoiner
{
  public:
    ThreadJoiner() = default;
    ThreadJoiner(const ThreadJoiner &) = delete;
    ThreadJoiner &operator=(const ThreadJoiner &) = delete;

    ~ThreadJoiner()
    {
        for (auto &t : threads) {
            if (t.joinable())
                t.join();
        }
    }

    std::vector<std::thread> threads;
};

/**
 * Run fn(0) .. fn(n-1) on up to @p jobs worker threads and return
 * the results indexed by submission order. jobs <= 1 runs inline on
 * the calling thread with no pool at all, which is the serial
 * reference the equivalence tests compare against.
 *
 * If any invocation throws, the exception for the lowest index is
 * rethrown after all workers finish, so failure is deterministic
 * regardless of thread timing. The result type must be
 * default-constructible.
 */
template <typename Fn>
auto
parallelMap(unsigned jobs, std::size_t n, Fn &&fn)
    -> std::vector<decltype(fn(std::size_t{}))>
{
    using Result = decltype(fn(std::size_t{}));
    std::vector<Result> out(n);
    if (n == 0)
        return out;

    const std::size_t workers =
        std::min<std::size_t>(resolveJobs(jobs), n);
    if (workers <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            out[i] = fn(i);
        return out;
    }

    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(n);
    ThreadJoiner pool;
    pool.threads.reserve(workers);
    try {
        for (std::size_t w = 0; w < workers; ++w) {
            pool.threads.emplace_back([&] {
                while (true) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= n)
                        return;
                    try {
                        out[i] = fn(i);
                    } catch (...) {
                        errors[i] = std::current_exception();
                    }
                }
            });
        }
    } catch (...) {
        // Thread construction failed mid-loop. Stop handing out new
        // work so the survivors drain quickly, then let the
        // ThreadJoiner join them as the exception unwinds — the
        // lambdas capture this frame's locals by reference, so they
        // must be dead before the frame goes.
        next.store(n, std::memory_order_relaxed);
        throw;
    }
    for (auto &t : pool.threads)
        t.join();
    for (const auto &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
    return out;
}

/**
 * Thread-pool sweep over a (benchmark, config) grid. All points run
 * through one shared Experiment, so duplicated points and shared
 * baselines are simulated once and memoized for later speedup()
 * calls on the same Experiment.
 */
class SweepRunner
{
  public:
    /** @param jobs worker threads; 0 resolves via GPUMMU_JOBS. */
    explicit SweepRunner(Experiment &exp, unsigned jobs = 0)
        : exp_(exp), jobs_(resolveJobs(jobs))
    {
    }

    /** Run every point; results come back in submission order. */
    std::vector<RunOutput> run(const std::vector<SweepPoint> &grid);

    unsigned jobs() const { return jobs_; }
    Experiment &experiment() { return exp_; }

  private:
    Experiment &exp_;
    unsigned jobs_;
};

} // namespace gpummu

#endif // CORE_SWEEP_HH
