#include "core/experiment.hh"

#include <iomanip>
#include <sstream>

#include "mmu/l2_tlb.hh"
#include "sched/ccws.hh"
#include "sim/logging.hh"
#include "tbc/tbc_core.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/memtrace.hh"
#include "trace/trace.hh"

namespace gpummu {

namespace {

std::unique_ptr<WarpScheduler>
makeScheduler(const SystemConfig &cfg)
{
    switch (cfg.sched) {
      case SchedulerKind::LooseRoundRobin:
        return std::make_unique<LooseRoundRobin>(
            cfg.core.numWarpSlots);
      case SchedulerKind::GreedyThenOldest:
        return std::make_unique<GreedyThenOldest>();
      case SchedulerKind::Ccws:
      case SchedulerKind::TaCcws:
        return std::make_unique<Ccws>(cfg.ccws);
      case SchedulerKind::Tcws:
        return std::make_unique<Tcws>(cfg.tcws);
    }
    GPUMMU_PANIC("unknown scheduler kind");
}

GpuTop::CoreFactory
makeCoreFactory(const SystemConfig &cfg)
{
    if (cfg.coreKind == CoreKind::Tbc) {
        return [cfg](int core_id, const LaunchParams &launch,
                     AddressSpace &as, MemorySystem &mem,
                     EventQueue &eq) -> std::unique_ptr<ShaderCore> {
            auto core = std::make_unique<TbcCore>(
                core_id, cfg.core, cfg.tbc, launch, as, mem, eq);
            return core;
        };
    }
    return [cfg](int core_id, const LaunchParams &launch,
                 AddressSpace &as, MemorySystem &mem,
                 EventQueue &eq) -> std::unique_ptr<ShaderCore> {
        auto core = std::make_unique<SimtCore>(core_id, cfg.core,
                                               launch, as, mem, eq);
        core->setScheduler(makeScheduler(cfg));
        return core;
    };
}

} // namespace

namespace {

RunOutput
finishRun(GpuTop &gpu, const std::string &bench_name,
          const SystemConfig &cfg)
{
    RunOutput out;
    out.stats = gpu.run(cfg.maxCycles);
    std::ostringstream os;
    os << "{\"bench\":\"" << jsonEscape(bench_name)
       << "\",\"config\":\"" << jsonEscape(cfg.name)
       << "\",\"summary\":";
    dumpRunStatsJson(os, out.stats);
    os << ",\"stats\":";
    gpu.stats().dumpJson(os);
    os << "}";
    out.statsJson = os.str();
    return out;
}

/** Arm trace capture on a built GpuTop; fatal when unsupported so a
 *  --capture-trace user never gets a silently empty file. */
void
armMemTrace(GpuTop &gpu, MemTraceWriter *memtrace,
            const SystemConfig &cfg)
{
    if (memtrace == nullptr)
        return;
    memtrace->setConfigName(cfg.name);
    if (!gpu.setMemTrace(memtrace)) {
        if (!memtrace->ok()) {
            GPUMMU_FATAL("memory-trace capture failed: ",
                         memtrace->error());
        }
        GPUMMU_FATAL("memory-trace capture is not supported on "
                     "this core topology (config '",
                     cfg.name,
                     "'): TBC compacts warps, so recorded warp ids "
                     "would not replay");
    }
}

} // namespace

RunOutput
runWorkloadFull(Workload &workload, const SystemConfig &cfg_in,
                TraceSink *trace, Telemetry *telemetry,
                MemTraceWriter *memtrace, SpanTracker *spans)
{
    if (telemetry != nullptr)
        telemetry->setMeta(workload.name(), cfg_in.name);
    // With both observers armed, each span's lifecycle additionally
    // rides the sink as Chrome-trace flow events (arrows).
    if (spans != nullptr && trace != nullptr)
        spans->setTraceSink(trace);
    // Fan the top-level checker switch out to every translation unit
    // of the run before any core is built.
    SystemConfig cfg = cfg_in;
    if (cfg.checkInvariants) {
        cfg.core.mmu.checkInvariants = true;
        cfg.iommuCfg.checkInvariants = true;
        cfg.l2tlb.checkInvariants = true;
    }

    if (!cfg.iommu) {
        GpuTop::CoreFactory factory = makeCoreFactory(cfg);

        // Shared L2 TLB: one GPU-wide instance, created with the
        // first core (the same holder pattern as the IOMMU below)
        // and attached to every core's MMU miss path.
        std::shared_ptr<std::unique_ptr<L2Tlb>> l2_holder;
        if (cfg.l2tlb.enabled) {
            GPUMMU_ASSERT(cfg.core.mmu.enabled,
                          "a shared L2 TLB needs per-core MMUs");
            l2_holder = std::make_shared<std::unique_ptr<L2Tlb>>();
            auto base = std::move(factory);
            factory = [cfg, base, l2_holder](
                          int core_id, const LaunchParams &launch,
                          AddressSpace &as, MemorySystem &mem,
                          EventQueue &eq)
                -> std::unique_ptr<ShaderCore> {
                if (!*l2_holder) {
                    *l2_holder = std::make_unique<L2Tlb>(
                        cfg.l2tlb, as.pageTable(), eq,
                        as.usesLargePages() ? kPageShift2M
                                            : kPageShift4K);
                }
                auto core = base(core_id, launch, as, mem, eq);
                core->mmu().setL2Tlb(l2_holder->get());
                return core;
            };
        }

        GpuTop gpu(cfg.numCores, cfg.mem, workload, factory,
                   cfg.largePages, cfg.physFrames);
        if (l2_holder && *l2_holder)
            (*l2_holder)->regStats(gpu.stats(), "l2tlb");
        if (trace != nullptr) {
            gpu.setTraceSink(trace);
            trace->regStats(gpu.stats(), "trace");
            // The shared L2 TLB is not a per-core component; arm it
            // directly (tid -1 marks the GPU-wide instance).
            if (l2_holder && *l2_holder)
                (*l2_holder)->setTraceSink(trace, -1);
        }
        // After the trace stats so an armed sampler sees them too.
        if (telemetry != nullptr)
            gpu.setTelemetry(telemetry);
        if (spans != nullptr) {
            gpu.setSpanTracker(spans);
            // The shared L2 TLB is not a per-core component; arm it
            // directly (tid -1 marks the GPU-wide instance).
            if (l2_holder && *l2_holder)
                (*l2_holder)->setSpanTracker(spans, -1);
        }
        armMemTrace(gpu, memtrace, cfg);
        RunOutput out = finishRun(gpu, workload.name(), cfg);
        if (memtrace != nullptr &&
            !memtrace->finish(out.stats.cycles)) {
            GPUMMU_FATAL("memory-trace capture failed: ",
                         memtrace->error());
        }
        // The shared L2 TLB is not reached by GpuTop's per-core
        // sweep, so its MSHR drain invariants are verified here.
        if (l2_holder && *l2_holder)
            (*l2_holder)->checkEndOfKernel();
        return out;
    }
    GPUMMU_ASSERT(!cfg.l2tlb.enabled,
                  "the shared L2 TLB sits behind per-core MMUs; "
                  "IOMMU mode has no miss path to attach it to");

    // IOMMU mode: one shared translation unit for the whole GPU,
    // created with the first core and kept alive for the run.
    GPUMMU_ASSERT(!cfg.core.mmu.enabled,
                  "IOMMU mode requires per-core MMUs disabled");
    auto iommu_holder = std::make_shared<std::unique_ptr<Iommu>>();
    auto factory = [cfg, iommu_holder](
                       int core_id, const LaunchParams &launch,
                       AddressSpace &as, MemorySystem &mem,
                       EventQueue &eq) -> std::unique_ptr<ShaderCore> {
        if (!*iommu_holder) {
            *iommu_holder = std::make_unique<Iommu>(cfg.iommuCfg, as,
                                                    mem, eq);
        }
        auto core = std::make_unique<SimtCore>(core_id, cfg.core,
                                               launch, as, mem, eq);
        core->setScheduler(makeScheduler(cfg));
        core->setIommu(iommu_holder->get());
        return core;
    };
    GpuTop gpu(cfg.numCores, cfg.mem, workload, factory,
               cfg.largePages, cfg.physFrames);
    if (*iommu_holder)
        (*iommu_holder)->regStats(gpu.stats(), "iommu");
    if (trace != nullptr) {
        gpu.setTraceSink(trace);
        trace->regStats(gpu.stats(), "trace");
        // The shared IOMMU is not a per-core component; arm it
        // directly (tid -1 marks the GPU-wide instance).
        if (*iommu_holder)
            (*iommu_holder)->setTraceSink(trace, -1);
    }
    if (telemetry != nullptr) {
        gpu.setTelemetry(telemetry);
        // The shared IOMMU's walkers are not reached by GpuTop's
        // per-core distribution; arm them directly (tid -1).
        if (*iommu_holder)
            (*iommu_holder)->setHeatProfiler(&telemetry->heat(), -1);
    }
    if (spans != nullptr) {
        gpu.setSpanTracker(spans);
        // The shared IOMMU is not a per-core component; arm it
        // directly (tid -1 marks the GPU-wide instance).
        if (*iommu_holder)
            (*iommu_holder)->setSpanTracker(spans, -1);
    }
    armMemTrace(gpu, memtrace, cfg);
    RunOutput out = finishRun(gpu, workload.name(), cfg);
    if (memtrace != nullptr && !memtrace->finish(out.stats.cycles)) {
        GPUMMU_FATAL("memory-trace capture failed: ",
                     memtrace->error());
    }
    // The shared IOMMU is not reached by GpuTop's per-core sweep, so
    // its drain invariants are verified here.
    if (*iommu_holder)
        (*iommu_holder)->checkEndOfKernel();
    return out;
}

RunOutput
runConfigFull(BenchmarkId bench, const SystemConfig &cfg,
              const WorkloadParams &params, TraceSink *trace,
              Telemetry *telemetry, MemTraceWriter *memtrace,
              SpanTracker *spans)
{
    auto workload = makeWorkload(bench, params);
    return runWorkloadFull(*workload, cfg, trace, telemetry,
                           memtrace, spans);
}

RunStats
runConfig(BenchmarkId bench, const SystemConfig &cfg,
          const WorkloadParams &params)
{
    return runConfigFull(bench, cfg, params).stats;
}

const RunOutput &
Experiment::runFull(BenchmarkId bench, const SystemConfig &cfg)
{
    // cfg.name alone does not encode every field callers vary (tests
    // shrink numCores without renaming, or arm the checker), so widen
    // the key a little.
    const std::string key = benchmarkName(bench) + "/" + cfg.name +
                            "/c" + std::to_string(cfg.numCores) +
                            (cfg.checkInvariants ? "/chk" : "");

    // Either adopt an existing latch for the key or install our own;
    // only the installing thread simulates, everyone else blocks on
    // the shared_future.
    std::promise<RunOutput> promise;
    std::shared_future<RunOutput> latch;
    bool owner = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = cache_.find(key);
        if (it == cache_.end()) {
            latch = promise.get_future().share();
            cache_.emplace(key, latch);
            misses_++;
            owner = true;
        } else {
            latch = it->second;
        }
    }
    if (owner) {
        try {
            promise.set_value(runConfigFull(bench, cfg, params_));
        } catch (...) {
            promise.set_exception(std::current_exception());
        }
    }
    return latch.get();
}

RunStats
Experiment::run(BenchmarkId bench, const SystemConfig &cfg)
{
    return runFull(bench, cfg).stats;
}

std::size_t
Experiment::missCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
}

double
Experiment::speedup(BenchmarkId bench, const SystemConfig &cfg,
                    const SystemConfig &baseline)
{
    const RunStats base = run(bench, baseline);
    const RunStats var = run(bench, cfg);
    GPUMMU_ASSERT(var.cycles > 0);
    return static_cast<double>(base.cycles) /
           static_cast<double>(var.cycles);
}

ReportTable::ReportTable(std::vector<std::string> columns)
    : columns_(std::move(columns))
{
}

void
ReportTable::addRow(std::vector<std::string> cells)
{
    GPUMMU_ASSERT(cells.size() == columns_.size(),
                  "row width mismatch");
    rows_.push_back(std::move(cells));
}

void
ReportTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c)
        widths[c] = columns_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }
    auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << cells[c];
            os << (c + 1 < cells.size() ? "  " : "");
        }
        os << "\n";
    };
    line(columns_);
    std::size_t total = 0;
    for (std::size_t w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        line(row);
}

std::string
ReportTable::num(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
ReportTable::pct(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v * 100.0
       << "%";
    return os.str();
}

} // namespace gpummu
