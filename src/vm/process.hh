/**
 * @file
 * Multi-process OS-interaction layer: N concurrent processes, each
 * owning an ASID-tagged AddressSpace, plus the OS-side costs the
 * paper's single-process runs never pay — context switches on the
 * shared IOMMU, inter-core TLB shootdowns on munmap, and minor-fault
 * demand paging service time.
 *
 * Mirrors the nouveau driver's split (SNIPPETS.md snippet 1): the
 * nvkm_vm per-client address space with its nvkm_as region nodes is
 * our Process/AddressSpace/VmRegion; this manager plays nvkm_vmmgr,
 * handing out ASIDs and brokering unmaps against the hardware TLBs.
 *
 * A shootdown models the x86 IPI protocol cost shape: a fixed
 * initiation cost (trap + IPI fan-out + waiting on acks) plus a
 * per-invalidated-entry cost (INVLPG iterations on each responding
 * core). The manager walks every registered translation-caching
 * structure — per-core L1 TLBs, the shared L2 TLB (poisoning
 * in-flight MSHRs), the IOMMU TLB, and the per-core walk caches —
 * and removes exactly the dying ASID's entries in the dying VPN
 * range. Everything else survives: a tenant's unmap must not flush
 * its neighbours (the conservation property test_process_lifecycle
 * pins down).
 *
 * All counters live here, in a NEW component: existing single-process
 * stat dumps stay byte-identical because no existing regStats block
 * changes.
 */

#ifndef VM_PROCESS_HH
#define VM_PROCESS_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/address_space.hh"
#include "vm/physical_memory.hh"

namespace gpummu {

class Tlb;
class L2Tlb;
class PageWalkers;

/** OS cost knobs (cycles at GPU clock). */
struct OsConfig
{
    /** IOMMU context-switch penalty between different tenants
     *  (CR3 swap + pipeline drain; Kim et al. treat this as a
     *  first-class axis). */
    Cycle switchPenalty = 2000;
    /** Minor-fault service latency (OS fault handler round trip). */
    Cycle faultLatency = 4000;
    /** Fixed shootdown initiation cost (trap + IPI + acks). */
    Cycle shootdownBase = 400;
    /** Incremental cost per invalidated entry. */
    Cycle shootdownPerEntry = 8;
};

/** One process: an ASID plus its private address space. */
struct Process
{
    Asid asid = 0;
    std::string name;
    AddressSpace as;

    Process(Asid id, std::string nm, PhysicalMemory &phys,
            bool use_large, VirtAddr base)
        : asid(id), name(std::move(nm)),
          as(phys, use_large, base, id)
    {
    }
};

class ProcessManager : public VmEventListener
{
  public:
    explicit ProcessManager(PhysicalMemory &phys,
                            const OsConfig &cfg = OsConfig{});

    ProcessManager(const ProcessManager &) = delete;
    ProcessManager &operator=(const ProcessManager &) = delete;

    /**
     * Create a process. ASIDs are handed out from 1 (0 stays the
     * legacy single-process identity). All processes share the same
     * default VA base, so their virtual ranges overlap by
     * construction — the aliasing case the ASID plumbing exists for.
     * @param lazy  demand-page regions via faultIn instead of eager
     *              backing.
     */
    Process &create(const std::string &name, bool use_large = false,
                    bool lazy = false);

    Process &process(Asid asid);
    const Process &process(Asid asid) const;
    std::size_t numProcesses() const { return procs_.size(); }
    const std::vector<std::unique_ptr<Process>> &all() const
    {
        return procs_;
    }

    /** @{ Register the translation-caching structures a shootdown
     *  must reach. @p page_shift is the Tlb's tag granularity. */
    void addTlbTarget(Tlb *tlb, unsigned page_shift);
    void setL2Target(L2Tlb *l2) { l2_ = l2; }
    void addWalkerTarget(PageWalkers *w) { walkers_.push_back(w); }
    /** Drop every registered target (per-slice core teardown). */
    void clearShootdownTargets();
    /** @} */

    /**
     * Unmap @p region from @p asid and shoot its translations out of
     * every registered structure. Returns the cycle the shootdown
     * completes (the unmapping core stalls until then).
     */
    Cycle munmap(Asid asid, const VmRegion &region, Cycle now);

    /** munmap every remaining region of @p asid (process exit). */
    Cycle destroy(Asid asid, Cycle now);

    /**
     * Invalidate @p asid's entries for 4KB VPNs in [lo4k, hi4k) in
     * every registered TLB/L2/walk-cache, at shootdown cost. Exposed
     * for tests; munmap/destroy call it internally.
     */
    Cycle shootdown(Asid asid, Vpn lo4k, Vpn hi4k, Cycle now);

    /** Account one IOMMU context switch; returns the penalty. */
    Cycle noteContextSwitch(Asid from, Asid to);

    /** Account one demand-fault service (Iommu calls this). */
    void noteFault(Asid asid);

    const OsConfig &osConfig() const { return cfg_; }

    /** VmEventListener (wired to every created AddressSpace). */
    void onDemandFault(Asid asid, Vpn vpn) override;
    void onCoalesce(Asid asid, std::uint64_t vpn2m) override;
    void onSplinter(Asid asid, std::uint64_t vpn2m) override;

    void regStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t shootdowns() const { return shootdowns_.value(); }
    std::uint64_t shootdownEntries() const
    {
        return shootdownEntries_.value();
    }
    std::uint64_t faults() const { return faults_.value(); }
    std::uint64_t contextSwitches() const { return switches_.value(); }
    std::uint64_t coalesces() const { return coalesces_.value(); }
    std::uint64_t splinters() const { return splinters_.value(); }

  private:
    struct TlbTarget
    {
        Tlb *tlb;
        unsigned pageShift;
    };

    /** Invalidate @p asid's cached translations for 4KB VPNs in
     *  [lo4k, hi4k) in every TLB target and the L2 (not the walk
     *  caches); returns the entry count. Uncosted: shootdown() adds
     *  the IPI cost on top, page-size promotions/demotions ride
     *  inside the fault service latency. */
    std::uint64_t invalidateRange4K(Asid asid, Vpn lo4k, Vpn hi4k);

    PhysicalMemory &phys_;
    OsConfig cfg_;
    std::vector<std::unique_ptr<Process>> procs_;
    Asid nextAsid_ = 1;

    std::vector<TlbTarget> tlbs_;
    L2Tlb *l2_ = nullptr;
    std::vector<PageWalkers *> walkers_;

    Counter shootdowns_;
    Counter shootdownEntries_;
    Counter shootdownCycles_;
    Counter faults_;
    Counter faultCycles_;
    Counter switches_;
    Counter switchCycles_;
    Counter coalesces_;
    Counter splinters_;
};

} // namespace gpummu

#endif // VM_PROCESS_HH
