/**
 * @file
 * x86-64 style four-level radix page table, built for real in
 * simulated physical memory.
 *
 * The walker timing model needs the *physical addresses* touched by
 * each level of a walk (PML4, PDP, PD, PT), because the paper's PTW
 * scheduler coalesces concurrent walks whose references repeat or
 * share 128-byte cache lines. Building an actual radix table makes
 * that sharing fall out naturally instead of being faked.
 *
 * Layout follows the paper's description of x86: 9-bit indices from
 * virtual address bits 47-39 / 38-30 / 29-21 / 20-12, 8-byte entries,
 * 512 entries per 4KB table page. 2MB mappings terminate at the PD
 * level (3 references per walk).
 */

#ifndef VM_PAGE_TABLE_HH
#define VM_PAGE_TABLE_HH

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/physical_memory.hh"

namespace gpummu {

/** Number of radix levels for 4KB pages. */
inline constexpr unsigned kWalkLevels4K = 4;
/** Number of radix levels for 2MB pages (walk stops at the PD). */
inline constexpr unsigned kWalkLevels2M = 3;

/** One translation as returned by a completed walk. */
struct Translation
{
    Ppn ppn = 0;
    bool isLarge = false; ///< 2MB mapping
};

/**
 * The per-level physical reference trace of one page table walk,
 * plus the resulting translation. entryAddrs[0] is the PML4 entry's
 * physical byte address and so on down the radix.
 */
struct WalkPath
{
    std::array<PhysAddr, kWalkLevels4K> entryAddrs{};
    unsigned levels = 0;
    Translation result;
};

/**
 * One raw page-table entry as an independent walker would read it
 * out of simulated physical memory: either absent, a pointer to the
 * next-level table page, or a terminal (4KB or 2MB) mapping.
 */
struct RawEntry
{
    bool present = false;
    bool leaf = false;  ///< terminal mapping (PT entry or 2MB PD entry)
    bool large = false; ///< 2MB leaf (only ever set at the PD level)
    /** Leaf PPN when leaf, child table page frame otherwise. */
    std::uint64_t value = 0;
};

class PageTable
{
  public:
    explicit PageTable(PhysicalMemory &phys);

    PageTable(const PageTable &) = delete;
    PageTable &operator=(const PageTable &) = delete;

    /** Map one 4KB virtual page. Remapping an existing VPN is a bug. */
    void map4K(Vpn vpn, Ppn ppn);

    /**
     * Map one 2MB virtual page. @p vpn2m is the virtual address
     * shifted by 21; @p base_ppn must be 2MB aligned (in 4KB frames).
     */
    void map2M(std::uint64_t vpn2m, Ppn base_ppn);

    /**
     * Unmap one 4KB virtual page; returns the freed frame. The VPN
     * must be present as a 4KB leaf (splinter a covering 2MB leaf
     * first). The PT page is kept even when it empties: walk-cache
     * invalidation keys off live frames, and real OSes also defer
     * paging-structure teardown past the shootdown.
     */
    Ppn unmap4K(Vpn vpn);

    /** Unmap one 2MB leaf; returns its (aligned) base frame. */
    Ppn unmap2M(std::uint64_t vpn2m);

    /**
     * Splinter a 2MB leaf into 512 4KB PTEs over the same frames
     * (Mosaic-style, triggered by a partial unmap). The translation
     * of every covered 4KB VPN is unchanged; only isLarge flips.
     */
    void splinter2M(std::uint64_t vpn2m);

    /**
     * Coalesce 512 contiguous 4KB PTEs into one 2MB PD leaf
     * (Mosaic-style promotion). Requires the full PT page populated
     * with slots[i] == slots[0] + i and a 2MB-aligned slots[0]; the
     * freed PT page goes on a freelist for reuse. Returns false
     * (without modifying anything) when the range is not coalescible.
     */
    bool coalesce2M(std::uint64_t vpn2m);

    /**
     * Is @p vpn2m currently backed by a 2MB PD leaf? (False when
     * unmapped or splintered into 4KB PTEs.)
     */
    bool isLargeMapped(std::uint64_t vpn2m) const;

    /** Functional translation of a 4KB VPN; nullopt if unmapped. */
    std::optional<Translation> translate(Vpn vpn) const;

    /**
     * Full walk trace for the timing model. The VPN is always the
     * 4KB-granularity VPN; for a 2MB mapping the path has 3 levels.
     * Panics when the page is unmapped (workloads premap footprints;
     * demand faults are out of scope, see DESIGN.md).
     */
    WalkPath walk(Vpn vpn) const;

    /** Physical byte address of the root (CR3 analogue). */
    PhysAddr rootAddr() const;

    /** Number of live table pages (all levels, minus the freelist). */
    std::uint64_t tablePages() const
    {
        return tables_.size() - freeTables_.size();
    }

    /**
     * Read one raw entry by its physical byte address, the way an
     * independent walker (check/RefTranslator) traverses the radix:
     * follow rootAddr(), compute the entry address, read it, chase
     * the returned frame. Panics when @p entry_addr does not fall
     * inside a live paging-structure page.
     */
    RawEntry readEntry(PhysAddr entry_addr) const;

    /** Does @p frame back one of this table's paging-structure pages? */
    bool isTableFrame(Ppn frame) const
    {
        return frameToTable_.count(frame) != 0;
    }

    /** 9-bit radix index for @p level (0 = PML4) of a 4KB VPN. */
    static unsigned
    radixIndex(Vpn vpn, unsigned level)
    {
        // A 4KB VPN spans virtual address bits 47..12, i.e. 36 bits,
        // 9 per level. Level 0 (PML4) uses the top 9.
        const unsigned shift = 9 * (kWalkLevels4K - 1 - level);
        return static_cast<unsigned>((vpn >> shift) & 0x1ff);
    }

  private:
    struct TablePage
    {
        /** Child table id or leaf PPN per slot; -1 when not present. */
        std::array<std::int64_t, 512> slots;
        /** Slot maps to a 2MB leaf (only meaningful at PD level). */
        std::array<bool, 512> largeLeaf;
        Ppn frame;      ///< physical frame backing this table page
        unsigned level; ///< radix depth: 0 = PML4 .. 3 = PT

        TablePage() : frame(0), level(0)
        {
            slots.fill(-1);
            largeLeaf.fill(false);
        }
    };

    /** Get or create the child table under table @p tid slot @p idx. */
    std::size_t childTable(std::size_t tid, unsigned idx);

    /** Descend to the PT page covering @p vpn; -1 if absent. */
    std::int64_t findLeafTable(Vpn vpn) const;

    /** Descend to the PD page covering @p vpn2m; -1 if absent. */
    std::int64_t findPdTable(std::uint64_t vpn2m) const;

    PhysAddr entryAddr(const TablePage &t, unsigned idx) const;

    PhysicalMemory &phys_;
    std::vector<TablePage> tables_; ///< index 0 is the root (PML4)
    /** Backing frame -> index in tables_, for readEntry. */
    std::unordered_map<Ppn, std::size_t> frameToTable_;
    /**
     * Table ids retired by coalesce2M, reused (frame and all) by the
     * next childTable allocation. A vector erase would renumber every
     * parent slot pointing into tables_, so retired pages stay put.
     */
    std::vector<std::size_t> freeTables_;
};

} // namespace gpummu

#endif // VM_PAGE_TABLE_HH
