/**
 * @file
 * Physical frame allocator for the simulated machine.
 *
 * Frames are 4KB. Allocation is a bump pointer with an optional
 * scramble so that consecutive virtual pages do not trivially map to
 * consecutive physical frames (page-walk line sharing depends only on
 * PTE addresses, so scrambling does not perturb the walk-scheduler
 * results, but it keeps L2 set pressure honest).
 */

#ifndef VM_PHYSICAL_MEMORY_HH
#define VM_PHYSICAL_MEMORY_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace gpummu {

class PhysicalMemory
{
  public:
    /**
     * @param num_frames  total 4KB frames backing the machine
     * @param scramble    permute allocation order pseudo-randomly
     * @param seed        scramble seed
     */
    explicit PhysicalMemory(std::uint64_t num_frames,
                            bool scramble = true,
                            std::uint64_t seed = 0x9e3779b9ULL)
        : numFrames_(num_frames), scramble_(scramble), seed_(seed)
    {
        GPUMMU_ASSERT(num_frames > 0);
        maskBits_ = 1;
        while ((1ULL << maskBits_) < num_frames)
            ++maskBits_;
    }

    /** Allocate one 4KB frame. */
    Ppn
    allocFrame()
    {
        GPUMMU_ASSERT(nextFrame_ < numFrames_, "out of physical memory");
        const std::uint64_t seq = nextFrame_++;
        return scramble_ ? permute(seq) : seq;
    }

    /**
     * Allocate 512 contiguous frames aligned to 2MB, for large pages.
     * The chunk is contiguous by construction, so large-page
     * allocations bypass the scramble.
     */
    Ppn
    allocLargeFrame()
    {
        const std::uint64_t frames_per_large = kPageSize2M / kPageSize4K;
        std::uint64_t base = (nextFrame_ + frames_per_large - 1) &
                             ~(frames_per_large - 1);
        GPUMMU_ASSERT(base + frames_per_large <= numFrames_,
                      "out of physical memory for 2MB page");
        nextFrame_ = base + frames_per_large;
        return base;
    }

    std::uint64_t numFrames() const { return numFrames_; }
    std::uint64_t framesAllocated() const { return nextFrame_; }

  private:
    /**
     * Format-preserving permutation of [0, numFrames) built from a
     * bijective mix on the enclosing power of two plus cycle walking:
     * out-of-range intermediate values are re-mixed until they land
     * in range. Multiplication by an odd constant and xor-shift are
     * both bijective modulo 2^k, so the composition is a true
     * permutation and allocFrame never hands out the same frame
     * twice.
     */
    Ppn
    permute(std::uint64_t seq) const
    {
        const std::uint64_t mask = (maskBits_ >= 64)
                                       ? ~0ULL
                                       : ((1ULL << maskBits_) - 1);
        std::uint64_t x = seq;
        do {
            x = (x * 0x9e3779b97f4a7c15ULL + seed_) & mask;
            x ^= x >> (maskBits_ / 2 + 1);
            x = (x * 0xbf58476d1ce4e5b9ULL) & mask;
        } while (x >= numFrames_);
        return x;
    }

    std::uint64_t numFrames_;
    bool scramble_;
    std::uint64_t seed_;
    unsigned maskBits_;
    std::uint64_t nextFrame_ = 0;
};

} // namespace gpummu

#endif // VM_PHYSICAL_MEMORY_HH
