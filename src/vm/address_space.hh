/**
 * @file
 * Process address space: virtual region allocation over the shared
 * page table, with eager backing (workloads premap their footprints,
 * as the paper's do — page faults essentially never fire there).
 */

#ifndef VM_ADDRESS_SPACE_HH
#define VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

namespace gpummu {

/** A named mapped virtual region (one data structure of a workload). */
struct VmRegion
{
    std::string name;
    VirtAddr base = 0;
    std::uint64_t bytes = 0;

    VirtAddr end() const { return base + bytes; }
    bool
    contains(VirtAddr a) const
    {
        return a >= base && a < end();
    }
};

class AddressSpace
{
  public:
    /**
     * @param phys        backing frame allocator
     * @param use_large   back regions with 2MB pages when true
     * @param base        first virtual address handed out
     */
    AddressSpace(PhysicalMemory &phys, bool use_large = false,
                 VirtAddr base = 0x10000000ULL);

    /**
     * Allocate and eagerly back a region. The base is page aligned
     * (2MB aligned in large-page mode) and regions are separated by a
     * guard page so workload bugs trip the unmapped-walk assertion.
     */
    VmRegion mmap(const std::string &name, std::uint64_t bytes);

    const PageTable &pageTable() const { return pt_; }
    PageTable &pageTable() { return pt_; }

    bool usesLargePages() const { return useLarge_; }

    const std::vector<VmRegion> &regions() const { return regions_; }

    /** Total bytes mapped so far. */
    std::uint64_t mappedBytes() const { return mappedBytes_; }

  private:
    PhysicalMemory &phys_;
    PageTable pt_;
    bool useLarge_;
    VirtAddr next_;
    std::uint64_t mappedBytes_ = 0;
    std::vector<VmRegion> regions_;
};

} // namespace gpummu

#endif // VM_ADDRESS_SPACE_HH
