/**
 * @file
 * Process address space: virtual region allocation over a private
 * page table. Regions are eagerly backed by default (workloads premap
 * their footprints, as the paper's do — page faults essentially never
 * fire there); lazy-backing mode reserves the range and populates
 * frames on first touch via faultIn() (minor-fault demand paging),
 * with Mosaic-style promotion of fully populated 2MB chunks.
 *
 * The shape mirrors the nouveau driver's nvkm_vm (one per-process GPU
 * address space owning its page-table tree and a list of nvkm_as
 * region nodes); our VmRegion plays the nvkm_as role.
 */

#ifndef VM_ADDRESS_SPACE_HH
#define VM_ADDRESS_SPACE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "vm/page_table.hh"
#include "vm/physical_memory.hh"

namespace gpummu {

/** A named mapped virtual region (one data structure of a workload). */
struct VmRegion
{
    std::string name;
    VirtAddr base = 0;
    std::uint64_t bytes = 0;
    /** Reserved but demand-paged: frames arrive via faultIn(). */
    bool lazy = false;

    VirtAddr end() const { return base + bytes; }
    bool
    contains(VirtAddr a) const
    {
        return a >= base && a < end();
    }
};

/**
 * Observer for OS-visible address-space events (demand faults,
 * large-page coalescing/splintering). ProcessManager implements this
 * to account stats; null means no observer.
 */
class VmEventListener
{
  public:
    virtual ~VmEventListener() = default;
    virtual void onDemandFault(Asid asid, Vpn vpn) = 0;
    virtual void onCoalesce(Asid asid, std::uint64_t vpn2m) = 0;
    virtual void onSplinter(Asid asid, std::uint64_t vpn2m) = 0;
};

class AddressSpace
{
  public:
    /**
     * @param phys        backing frame allocator
     * @param use_large   back regions with 2MB pages when true
     * @param base        first virtual address handed out
     * @param asid        owning address-space id (0 = legacy single
     *                    process; TLB keys stay uncomposed)
     */
    AddressSpace(PhysicalMemory &phys, bool use_large = false,
                 VirtAddr base = 0x10000000ULL, Asid asid = 0);

    /**
     * Allocate and eagerly back a region. The base is page aligned
     * (2MB aligned in large-page mode) and regions are separated by a
     * guard page so workload bugs trip the unmapped-walk assertion.
     * In lazy mode (setLazyBacking) the range is only reserved;
     * frames are populated by faultIn().
     */
    VmRegion mmap(const std::string &name, std::uint64_t bytes);

    /**
     * Tear down a whole region: unmap every present page (2MB leaves
     * whole, lazy holes skipped) and drop it from regions().
     * Returns the number of 4KB-page translations removed, for
     * shootdown accounting. The caller (ProcessManager) owns the TLB
     * shootdown that must accompany this.
     */
    std::uint64_t munmap(const VmRegion &region);

    /**
     * Unmap an arbitrary page-aligned subrange. 2MB leaves only
     * partially covered by the range are splintered first
     * (shootdown-splintering), fully covered ones are unmapped whole.
     * Returns the number of 4KB-page translations removed.
     */
    std::uint64_t munmapRange(VirtAddr base, std::uint64_t bytes);

    /** Reserve-only regions: subsequent mmaps demand-page via faultIn. */
    void setLazyBacking(bool lazy) { lazyBacking_ = lazy; }

    /** Is @p vpn inside a mapped-or-reserved region? */
    bool isReserved(Vpn vpn) const;

    /**
     * Service a minor fault on a reserved-but-unmapped 4KB page:
     * allocate backing and map it. Frames within one 2MB-aligned
     * chunk come from one contiguous 512-frame allocation, placed at
     * chunk-relative offsets, so a fully touched aligned chunk
     * coalesces into a 2MB mapping automatically (Mosaic). No-op when
     * the page is already mapped (two cores can race to fault).
     */
    void faultIn(Vpn vpn);

    void setEventListener(VmEventListener *l) { listener_ = l; }

    Asid asid() const { return asid_; }

    const PageTable &pageTable() const { return pt_; }
    PageTable &pageTable() { return pt_; }

    bool usesLargePages() const { return useLarge_; }

    const std::vector<VmRegion> &regions() const { return regions_; }

    /** Total bytes mapped so far. */
    std::uint64_t mappedBytes() const { return mappedBytes_; }

  private:
    /** Per-2MB-chunk demand-paging state (lazy regions only). */
    struct LazyChunk
    {
        Ppn base = 0;           ///< contiguous 512-frame allocation
        unsigned populated = 0; ///< 4KB pages mapped so far
    };

    /** Unmap the 4KB leaf at @p vpn if present; true when removed. */
    bool dropPage(Vpn vpn);

    PhysicalMemory &phys_;
    PageTable pt_;
    bool useLarge_;
    VirtAddr next_;
    Asid asid_;
    bool lazyBacking_ = false;
    std::uint64_t mappedBytes_ = 0;
    std::vector<VmRegion> regions_;
    std::unordered_map<std::uint64_t, LazyChunk> lazyChunks_;
    VmEventListener *listener_ = nullptr;
};

} // namespace gpummu

#endif // VM_ADDRESS_SPACE_HH
