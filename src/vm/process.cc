#include "vm/process.hh"

#include "mmu/l2_tlb.hh"
#include "mmu/ptw.hh"
#include "mmu/tlb.hh"
#include "sim/logging.hh"

namespace gpummu {

ProcessManager::ProcessManager(PhysicalMemory &phys,
                               const OsConfig &cfg)
    : phys_(phys), cfg_(cfg)
{
}

Process &
ProcessManager::create(const std::string &name, bool use_large,
                       bool lazy)
{
    const Asid asid = nextAsid_++;
    procs_.push_back(std::make_unique<Process>(
        asid, name, phys_, use_large, VirtAddr(0x10000000ULL)));
    Process &p = *procs_.back();
    if (lazy)
        p.as.setLazyBacking(true);
    p.as.setEventListener(this);
    return p;
}

Process &
ProcessManager::process(Asid asid)
{
    for (auto &p : procs_)
        if (p->asid == asid)
            return *p;
    GPUMMU_PANIC("no process with ASID ", asid);
}

const Process &
ProcessManager::process(Asid asid) const
{
    for (const auto &p : procs_)
        if (p->asid == asid)
            return *p;
    GPUMMU_PANIC("no process with ASID ", asid);
}

void
ProcessManager::addTlbTarget(Tlb *tlb, unsigned page_shift)
{
    tlbs_.push_back(TlbTarget{tlb, page_shift});
}

void
ProcessManager::clearShootdownTargets()
{
    tlbs_.clear();
    l2_ = nullptr;
    walkers_.clear();
}

std::uint64_t
ProcessManager::invalidateRange4K(Asid asid, Vpn lo4k, Vpn hi4k)
{
    std::uint64_t entries = 0;
    for (const auto &target : tlbs_) {
        // Convert the 4KB VPN range to the target's tag granularity
        // (12 for 4KB TLBs, 21 for 2MB-tagged ones, 7 for the
        // virtually-addressed line ids the IOMMU path's L1 uses).
        const unsigned shift = target.pageShift;
        std::uint64_t llo, lhi; // inclusive local-tag range
        if (shift >= kPageShift4K) {
            const unsigned down = shift - kPageShift4K;
            llo = lo4k >> down;
            lhi = (hi4k - 1) >> down;
        } else {
            const unsigned up = kPageShift4K - shift;
            llo = lo4k << up;
            lhi = (hi4k << up) - 1;
        }
        entries += target.tlb->invalidateMatching(
            [asid, llo, lhi](std::uint64_t tag, const TlbEntryInfo &) {
                return keyAsid(tag) == asid &&
                       keyLocal(tag) >= llo && keyLocal(tag) <= lhi;
            });
    }

    if (l2_) {
        const unsigned shift = l2_->pageShift();
        const unsigned down = shift - kPageShift4K;
        const std::uint64_t llo = lo4k >> down;
        const std::uint64_t lhi = (hi4k - 1) >> down;
        entries += l2_->invalidateMatching(
            [asid, llo, lhi](std::uint64_t tag) {
                return keyAsid(tag) == asid &&
                       keyLocal(tag) >= llo && keyLocal(tag) <= lhi;
            });
    }
    return entries;
}

Cycle
ProcessManager::shootdown(Asid asid, Vpn lo4k, Vpn hi4k, Cycle now)
{
    GPUMMU_ASSERT(hi4k > lo4k, "empty shootdown range");
    std::uint64_t entries = invalidateRange4K(asid, lo4k, hi4k);

    const PageTable &pt = process(asid).as.pageTable();
    for (PageWalkers *w : walkers_)
        entries += w->invalidatePagingLines(pt);

    const Cycle cost =
        cfg_.shootdownBase + cfg_.shootdownPerEntry * entries;
    shootdowns_.inc();
    shootdownEntries_.inc(entries);
    shootdownCycles_.inc(cost);
    return now + cost;
}

Cycle
ProcessManager::munmap(Asid asid, const VmRegion &region, Cycle now)
{
    Process &p = process(asid);
    const Vpn lo = region.base >> kPageShift4K;
    const Vpn hi = region.end() >> kPageShift4K;
    p.as.munmap(region);
    return shootdown(asid, lo, hi, now);
}

Cycle
ProcessManager::destroy(Asid asid, Cycle now)
{
    Process &p = process(asid);
    Cycle done = now;
    // munmap mutates regions(); drain from the back.
    while (!p.as.regions().empty()) {
        const VmRegion region = p.as.regions().back();
        done = munmap(asid, region, done);
    }
    return done;
}

Cycle
ProcessManager::noteContextSwitch(Asid from, Asid to)
{
    if (from == to)
        return 0;
    switches_.inc();
    switchCycles_.inc(cfg_.switchPenalty);
    return cfg_.switchPenalty;
}

void
ProcessManager::noteFault(Asid asid)
{
    (void)asid;
    faults_.inc();
    faultCycles_.inc(cfg_.faultLatency);
}

void
ProcessManager::onDemandFault(Asid asid, Vpn vpn)
{
    (void)asid;
    (void)vpn;
    // Functional fault-in; the timed service cost is accounted by
    // noteFault() on the IOMMU path that scheduled the handler.
}

void
ProcessManager::onCoalesce(Asid asid, std::uint64_t vpn2m)
{
    // Promotion changes the page size of live translations: cached
    // 4KB entries for the chunk keep the right frames but the wrong
    // size flag, so the OS invalidates them before exposing the 2MB
    // mapping (their cycle cost rides inside the fault handler's
    // service latency that triggered the coalesce).
    invalidateRange4K(asid, vpn2m << (kPageShift2M - kPageShift4K),
                      (vpn2m + 1) << (kPageShift2M - kPageShift4K));
    coalesces_.inc();
}

void
ProcessManager::onSplinter(Asid asid, std::uint64_t vpn2m)
{
    // Demotion is the same story in reverse: entries cached under the
    // 2MB mapping (large-flagged fills, 2MB tags) must go before the
    // 4KB view becomes visible.
    invalidateRange4K(asid, vpn2m << (kPageShift2M - kPageShift4K),
                      (vpn2m + 1) << (kPageShift2M - kPageShift4K));
    splinters_.inc();
}

void
ProcessManager::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".shootdown.count", &shootdowns_);
    reg.addCounter(prefix + ".shootdown.entries", &shootdownEntries_);
    reg.addCounter(prefix + ".shootdown.cycles", &shootdownCycles_);
    reg.addCounter(prefix + ".fault.count", &faults_);
    reg.addCounter(prefix + ".fault.cycles", &faultCycles_);
    reg.addCounter(prefix + ".ctxswitch.count", &switches_);
    reg.addCounter(prefix + ".ctxswitch.cycles", &switchCycles_);
    reg.addCounter(prefix + ".vm.coalesces", &coalesces_);
    reg.addCounter(prefix + ".vm.splinters", &splinters_);
}

} // namespace gpummu
