#include "vm/page_table.hh"

#include "sim/logging.hh"

namespace gpummu {

PageTable::PageTable(PhysicalMemory &phys) : phys_(phys)
{
    // Allocate the root (PML4) table page.
    tables_.emplace_back();
    tables_.back().frame = phys_.allocFrame();
    frameToTable_.emplace(tables_.back().frame, 0);
}

PhysAddr
PageTable::rootAddr() const
{
    return tables_.front().frame << kPageShift4K;
}

PhysAddr
PageTable::entryAddr(const TablePage &t, unsigned idx) const
{
    return (t.frame << kPageShift4K) + idx * 8ULL;
}

std::size_t
PageTable::childTable(std::size_t tid, unsigned idx)
{
    auto &slot = tables_[tid].slots[idx];
    if (slot >= 0) {
        GPUMMU_ASSERT(!tables_[tid].largeLeaf[idx],
                      "walking through a 2MB leaf");
        return static_cast<std::size_t>(slot);
    }
    std::size_t child;
    if (!freeTables_.empty()) {
        // Reuse a page retired by coalesce2M: same table id, same
        // backing frame, slots already reset.
        child = freeTables_.back();
        freeTables_.pop_back();
    } else {
        tables_.emplace_back();
        tables_.back().frame = phys_.allocFrame();
        child = tables_.size() - 1;
    }
    // Note: emplace_back may have moved tables_, re-index the parent.
    tables_[child].level = tables_[tid].level + 1;
    tables_[tid].slots[idx] = static_cast<std::int64_t>(child);
    frameToTable_.emplace(tables_[child].frame, child);
    return child;
}

std::int64_t
PageTable::findLeafTable(Vpn vpn) const
{
    std::size_t tid = 0;
    for (unsigned level = 0; level + 1 < kWalkLevels4K; ++level) {
        const auto &t = tables_[tid];
        const unsigned idx = radixIndex(vpn, level);
        const std::int64_t slot = t.slots[idx];
        if (slot < 0 || t.largeLeaf[idx])
            return -1;
        tid = static_cast<std::size_t>(slot);
    }
    return static_cast<std::int64_t>(tid);
}

std::int64_t
PageTable::findPdTable(std::uint64_t vpn2m) const
{
    const Vpn vpn = vpn2m << (kPageShift2M - kPageShift4K);
    std::size_t tid = 0;
    for (unsigned level = 0; level < kWalkLevels2M - 1; ++level) {
        const std::int64_t slot =
            tables_[tid].slots[radixIndex(vpn, level)];
        if (slot < 0)
            return -1;
        tid = static_cast<std::size_t>(slot);
    }
    return static_cast<std::int64_t>(tid);
}

RawEntry
PageTable::readEntry(PhysAddr entry_addr) const
{
    const Ppn frame = entry_addr >> kPageShift4K;
    auto it = frameToTable_.find(frame);
    GPUMMU_ASSERT(it != frameToTable_.end(),
                  "readEntry at ", entry_addr,
                  " outside any paging-structure page");
    GPUMMU_ASSERT((entry_addr & 0x7) == 0,
                  "misaligned page-table entry address ", entry_addr);
    const TablePage &t = tables_[it->second];
    const unsigned idx =
        static_cast<unsigned>((entry_addr & (kPageSize4K - 1)) / 8);

    RawEntry e;
    const std::int64_t slot = t.slots[idx];
    if (slot < 0)
        return e;
    e.present = true;
    if (t.level == kWalkLevels4K - 1 || t.largeLeaf[idx]) {
        e.leaf = true;
        e.large = t.largeLeaf[idx];
        e.value = static_cast<std::uint64_t>(slot);
    } else {
        e.value = tables_[static_cast<std::size_t>(slot)].frame;
    }
    return e;
}

void
PageTable::map4K(Vpn vpn, Ppn ppn)
{
    std::size_t tid = 0;
    for (unsigned level = 0; level + 1 < kWalkLevels4K; ++level)
        tid = childTable(tid, radixIndex(vpn, level));
    auto &leaf = tables_[tid];
    const unsigned idx = radixIndex(vpn, kWalkLevels4K - 1);
    GPUMMU_ASSERT(leaf.slots[idx] < 0, "VPN ", vpn, " already mapped");
    leaf.slots[idx] = static_cast<std::int64_t>(ppn);
}

void
PageTable::map2M(std::uint64_t vpn2m, Ppn base_ppn)
{
    GPUMMU_ASSERT((base_ppn & ((kPageSize2M / kPageSize4K) - 1)) == 0,
                  "2MB mapping needs an aligned frame chunk");
    // Convert to the 4KB VPN of the first small page in the region to
    // reuse radixIndex; the PD index is level 2.
    const Vpn vpn = vpn2m << (kPageShift2M - kPageShift4K);
    std::size_t tid = 0;
    for (unsigned level = 0; level < kWalkLevels2M - 1; ++level)
        tid = childTable(tid, radixIndex(vpn, level));
    auto &pd = tables_[tid];
    const unsigned idx = radixIndex(vpn, kWalkLevels2M - 1);
    GPUMMU_ASSERT(pd.slots[idx] < 0, "2MB VPN ", vpn2m, " already mapped");
    pd.slots[idx] = static_cast<std::int64_t>(base_ppn);
    pd.largeLeaf[idx] = true;
}

Ppn
PageTable::unmap4K(Vpn vpn)
{
    const std::int64_t tid = findLeafTable(vpn);
    GPUMMU_ASSERT(tid >= 0, "unmap4K on VPN ", vpn,
                  " with no 4KB leaf (unmapped or 2MB-backed)");
    auto &leaf = tables_[static_cast<std::size_t>(tid)];
    const unsigned idx = radixIndex(vpn, kWalkLevels4K - 1);
    const std::int64_t slot = leaf.slots[idx];
    GPUMMU_ASSERT(slot >= 0, "unmap4K on unmapped VPN ", vpn);
    leaf.slots[idx] = -1;
    return static_cast<Ppn>(slot);
}

Ppn
PageTable::unmap2M(std::uint64_t vpn2m)
{
    const std::int64_t tid = findPdTable(vpn2m);
    GPUMMU_ASSERT(tid >= 0, "unmap2M on unmapped 2MB VPN ", vpn2m);
    auto &pd = tables_[static_cast<std::size_t>(tid)];
    const Vpn vpn = vpn2m << (kPageShift2M - kPageShift4K);
    const unsigned idx = radixIndex(vpn, kWalkLevels2M - 1);
    GPUMMU_ASSERT(pd.slots[idx] >= 0 && pd.largeLeaf[idx],
                  "unmap2M on non-2MB mapping at ", vpn2m);
    const Ppn base = static_cast<Ppn>(pd.slots[idx]);
    pd.slots[idx] = -1;
    pd.largeLeaf[idx] = false;
    return base;
}

void
PageTable::splinter2M(std::uint64_t vpn2m)
{
    const std::int64_t pd_tid = findPdTable(vpn2m);
    GPUMMU_ASSERT(pd_tid >= 0, "splinter2M on unmapped 2MB VPN ", vpn2m);
    const Vpn vpn = vpn2m << (kPageShift2M - kPageShift4K);
    const unsigned idx = radixIndex(vpn, kWalkLevels2M - 1);
    {
        const auto &pd = tables_[static_cast<std::size_t>(pd_tid)];
        GPUMMU_ASSERT(pd.slots[idx] >= 0 && pd.largeLeaf[idx],
                      "splinter2M on non-2MB mapping at ", vpn2m);
    }
    const Ppn base =
        static_cast<Ppn>(tables_[static_cast<std::size_t>(pd_tid)].slots[idx]);
    // Demote the leaf to a child pointer, then fill the fresh PT page
    // with the identical 4KB translations. childTable may reallocate
    // tables_, so take references only after it returns.
    tables_[static_cast<std::size_t>(pd_tid)].slots[idx] = -1;
    tables_[static_cast<std::size_t>(pd_tid)].largeLeaf[idx] = false;
    const std::size_t pt = childTable(static_cast<std::size_t>(pd_tid), idx);
    auto &leaf = tables_[pt];
    for (unsigned i = 0; i < 512; ++i)
        leaf.slots[i] = static_cast<std::int64_t>(base + i);
}

bool
PageTable::coalesce2M(std::uint64_t vpn2m)
{
    const std::int64_t pd_tid = findPdTable(vpn2m);
    if (pd_tid < 0)
        return false;
    auto &pd = tables_[static_cast<std::size_t>(pd_tid)];
    const Vpn vpn = vpn2m << (kPageShift2M - kPageShift4K);
    const unsigned idx = radixIndex(vpn, kWalkLevels2M - 1);
    const std::int64_t child = pd.slots[idx];
    if (child < 0 || pd.largeLeaf[idx])
        return false;
    auto &pt = tables_[static_cast<std::size_t>(child)];
    const std::int64_t base = pt.slots[0];
    if (base < 0 ||
        (static_cast<Ppn>(base) & ((kPageSize2M / kPageSize4K) - 1)) != 0)
        return false;
    for (unsigned i = 0; i < 512; ++i)
        if (pt.slots[i] != base + i)
            return false;
    // Promote: retire the PT page onto the freelist and make the PD
    // slot a 2MB leaf over the same contiguous frames. The frame
    // stays registered as a paging-structure page: walks dispatched
    // before the promotion may still reference its lines, so teardown
    // is deferred the way an OS grace-periods page-table frees (the
    // freelist reuses it for the next table instead of returning it).
    pt.slots.fill(-1);
    pt.largeLeaf.fill(false);
    freeTables_.push_back(static_cast<std::size_t>(child));
    pd.slots[idx] = base;
    pd.largeLeaf[idx] = true;
    return true;
}

bool
PageTable::isLargeMapped(std::uint64_t vpn2m) const
{
    const std::int64_t tid = findPdTable(vpn2m);
    if (tid < 0)
        return false;
    const auto &pd = tables_[static_cast<std::size_t>(tid)];
    const Vpn vpn = vpn2m << (kPageShift2M - kPageShift4K);
    const unsigned idx = radixIndex(vpn, kWalkLevels2M - 1);
    return pd.slots[idx] >= 0 && pd.largeLeaf[idx];
}

std::optional<Translation>
PageTable::translate(Vpn vpn) const
{
    std::size_t tid = 0;
    for (unsigned level = 0; level < kWalkLevels4K; ++level) {
        const unsigned idx = radixIndex(vpn, level);
        const auto &t = tables_[tid];
        const std::int64_t slot = t.slots[idx];
        if (slot < 0)
            return std::nullopt;
        if (level == kWalkLevels4K - 1)
            return Translation{static_cast<Ppn>(slot), false};
        if (t.largeLeaf[idx]) {
            // 2MB leaf at the PD: add the in-region 4KB offset.
            const Ppn base = static_cast<Ppn>(slot);
            const Ppn offset = vpn & ((kPageSize2M / kPageSize4K) - 1);
            return Translation{base + offset, true};
        }
        tid = static_cast<std::size_t>(slot);
    }
    return std::nullopt;
}

WalkPath
PageTable::walk(Vpn vpn) const
{
    WalkPath path;
    std::size_t tid = 0;
    for (unsigned level = 0; level < kWalkLevels4K; ++level) {
        const unsigned idx = radixIndex(vpn, level);
        const auto &t = tables_[tid];
        path.entryAddrs[level] = entryAddr(t, idx);
        path.levels = level + 1;
        const std::int64_t slot = t.slots[idx];
        GPUMMU_ASSERT(slot >= 0, "walk on unmapped VPN ", vpn,
                      " at level ", level);
        if (level == kWalkLevels4K - 1) {
            path.result = Translation{static_cast<Ppn>(slot), false};
            return path;
        }
        if (t.largeLeaf[idx]) {
            const Ppn base = static_cast<Ppn>(slot);
            const Ppn offset = vpn & ((kPageSize2M / kPageSize4K) - 1);
            path.result = Translation{base + offset, true};
            return path;
        }
        tid = static_cast<std::size_t>(slot);
    }
    GPUMMU_PANIC("unreachable");
}

} // namespace gpummu
