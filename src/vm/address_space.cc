#include "vm/address_space.hh"

#include "sim/logging.hh"

namespace gpummu {

AddressSpace::AddressSpace(PhysicalMemory &phys, bool use_large,
                           VirtAddr base)
    : phys_(phys), pt_(phys), useLarge_(use_large), next_(base)
{
    const std::uint64_t align = use_large ? kPageSize2M : kPageSize4K;
    next_ = (next_ + align - 1) & ~(align - 1);
}

VmRegion
AddressSpace::mmap(const std::string &name, std::uint64_t bytes)
{
    GPUMMU_ASSERT(bytes > 0, "mmap of zero bytes: ", name);
    const std::uint64_t page = useLarge_ ? kPageSize2M : kPageSize4K;
    const std::uint64_t rounded = (bytes + page - 1) & ~(page - 1);

    VmRegion region;
    region.name = name;
    region.base = next_;
    region.bytes = rounded;

    if (useLarge_) {
        for (VirtAddr va = region.base; va < region.end();
             va += kPageSize2M) {
            pt_.map2M(va >> kPageShift2M, phys_.allocLargeFrame());
        }
    } else {
        for (VirtAddr va = region.base; va < region.end();
             va += kPageSize4K) {
            pt_.map4K(va >> kPageShift4K, phys_.allocFrame());
        }
    }

    mappedBytes_ += rounded;
    // Guard page between regions.
    next_ = region.end() + page;
    regions_.push_back(region);
    return region;
}

} // namespace gpummu
