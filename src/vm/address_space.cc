#include "vm/address_space.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace gpummu {

namespace {
constexpr std::uint64_t kFramesPer2M = kPageSize2M / kPageSize4K;
} // namespace

AddressSpace::AddressSpace(PhysicalMemory &phys, bool use_large,
                           VirtAddr base, Asid asid)
    : phys_(phys), pt_(phys), useLarge_(use_large), next_(base),
      asid_(asid)
{
    const std::uint64_t align = use_large ? kPageSize2M : kPageSize4K;
    next_ = (next_ + align - 1) & ~(align - 1);
}

VmRegion
AddressSpace::mmap(const std::string &name, std::uint64_t bytes)
{
    GPUMMU_ASSERT(bytes > 0, "mmap of zero bytes: ", name);
    const std::uint64_t page = useLarge_ ? kPageSize2M : kPageSize4K;
    const std::uint64_t rounded = (bytes + page - 1) & ~(page - 1);

    VmRegion region;
    region.name = name;
    region.base = next_;
    region.bytes = rounded;
    region.lazy = lazyBacking_;

    if (lazyBacking_) {
        // Reserve only; frames arrive one minor fault at a time.
        GPUMMU_ASSERT(!useLarge_,
                      "lazy backing demand-pages at 4KB granularity; "
                      "2MB mappings emerge via coalescing");
    } else if (useLarge_) {
        for (VirtAddr va = region.base; va < region.end();
             va += kPageSize2M) {
            pt_.map2M(va >> kPageShift2M, phys_.allocLargeFrame());
        }
    } else {
        for (VirtAddr va = region.base; va < region.end();
             va += kPageSize4K) {
            pt_.map4K(va >> kPageShift4K, phys_.allocFrame());
        }
    }

    mappedBytes_ += rounded;
    // Guard page between regions.
    next_ = region.end() + page;
    regions_.push_back(region);
    return region;
}

bool
AddressSpace::dropPage(Vpn vpn)
{
    const auto tr = pt_.translate(vpn);
    if (!tr)
        return false;
    GPUMMU_ASSERT(!tr->isLarge,
                  "dropPage under a 2MB leaf; splinter or unmap2M first");
    pt_.unmap4K(vpn);
    auto it = lazyChunks_.find(vpn / kFramesPer2M);
    if (it != lazyChunks_.end() && it->second.populated > 0)
        --it->second.populated;
    return true;
}

std::uint64_t
AddressSpace::munmap(const VmRegion &region)
{
    const std::uint64_t removed =
        munmapRange(region.base, region.bytes);
    auto it = std::find_if(regions_.begin(), regions_.end(),
                           [&](const VmRegion &r) {
                               return r.base == region.base &&
                                      r.bytes == region.bytes;
                           });
    GPUMMU_ASSERT(it != regions_.end(), "munmap of unknown region ",
                  region.name);
    mappedBytes_ -= it->bytes;
    regions_.erase(it);
    return removed;
}

std::uint64_t
AddressSpace::munmapRange(VirtAddr base, std::uint64_t bytes)
{
    GPUMMU_ASSERT((base & (kPageSize4K - 1)) == 0 &&
                      (bytes & (kPageSize4K - 1)) == 0,
                  "munmapRange must be 4KB aligned");
    std::uint64_t removed = 0;
    const Vpn lo = base >> kPageShift4K;
    const Vpn hi = (base + bytes) >> kPageShift4K; // exclusive
    for (Vpn vpn = lo; vpn < hi;) {
        const std::uint64_t chunk = vpn / kFramesPer2M;
        const Vpn chunk_end = (chunk + 1) * kFramesPer2M;
        if (pt_.isLargeMapped(chunk)) {
            if (vpn == chunk * kFramesPer2M && chunk_end <= hi) {
                // Fully covered 2MB leaf: unmap whole.
                pt_.unmap2M(chunk);
                lazyChunks_.erase(chunk);
                removed += kFramesPer2M;
                vpn = chunk_end;
                continue;
            }
            // Partial unmap of a 2MB leaf: shootdown-splintering.
            pt_.splinter2M(chunk);
            if (auto it = lazyChunks_.find(chunk);
                it != lazyChunks_.end())
                it->second.populated = kFramesPer2M;
            if (listener_)
                listener_->onSplinter(asid_, chunk);
        }
        const Vpn stop = std::min(hi, chunk_end);
        for (; vpn < stop; ++vpn)
            if (dropPage(vpn))
                ++removed;
    }
    return removed;
}

bool
AddressSpace::isReserved(Vpn vpn) const
{
    const VirtAddr va = vpn << kPageShift4K;
    for (const auto &r : regions_)
        if (r.contains(va))
            return true;
    return false;
}

void
AddressSpace::faultIn(Vpn vpn)
{
    if (pt_.translate(vpn))
        return; // racing fault already serviced
    GPUMMU_ASSERT(isReserved(vpn), "fault on unreserved VPN ", vpn,
                  " (asid ", asid_, ")");
    const std::uint64_t chunk = vpn / kFramesPer2M;
    auto &c = lazyChunks_[chunk];
    if (c.populated == 0 && c.base == 0) {
        // First touch in this 2MB-aligned chunk: grab one contiguous
        // aligned 512-frame run so the chunk can later coalesce.
        c.base = phys_.allocLargeFrame();
        GPUMMU_ASSERT(c.base != 0, "frame 0 backs the root table");
    }
    pt_.map4K(vpn, c.base + (vpn % kFramesPer2M));
    ++c.populated;
    if (listener_)
        listener_->onDemandFault(asid_, vpn);
    if (c.populated == kFramesPer2M && pt_.coalesce2M(chunk)) {
        if (listener_)
            listener_->onCoalesce(asid_, chunk);
    }
}

} // namespace gpummu
