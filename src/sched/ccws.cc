#include "sched/ccws.hh"

#include <algorithm>
#include <numeric>

#include "sim/logging.hh"

namespace gpummu {

namespace {

/** Exponential decay by right-shifting per elapsed half-life. */
void
decayScores(std::vector<std::uint64_t> &scores, Cycle &last, Cycle now,
            Cycle half_life)
{
    if (now <= last)
        return;
    const Cycle steps = (now - last) / half_life;
    if (steps == 0)
        return;
    last += steps * half_life;
    const unsigned shift =
        static_cast<unsigned>(std::min<Cycle>(steps, 63));
    for (auto &s : scores)
        s >>= shift;
}

/**
 * Allowed set: when the total score exceeds the cutoff, only the
 * highest-scoring warps - greedily accumulated until the cutoff is
 * reached - keep memory-issue rights. Everyone is allowed below the
 * cutoff.
 */
bool
computeAllowed(const std::vector<std::uint64_t> &scores,
               std::uint64_t cutoff, unsigned min_allowed,
               std::vector<bool> &allowed)
{
    const std::uint64_t total =
        std::accumulate(scores.begin(), scores.end(),
                        std::uint64_t{0});
    if (total <= cutoff) {
        std::fill(allowed.begin(), allowed.end(), true);
        return false;
    }
    std::vector<int> order(scores.size());
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return scores[static_cast<std::size_t>(a)] >
               scores[static_cast<std::size_t>(b)];
    });
    std::fill(allowed.begin(), allowed.end(), false);
    std::uint64_t acc = 0;
    unsigned count = 0;
    for (int w : order) {
        acc += scores[static_cast<std::size_t>(w)];
        if (count < min_allowed || acc <= cutoff) {
            allowed[static_cast<std::size_t>(w)] = true;
            ++count;
        }
        if (acc > cutoff && count >= min_allowed)
            break;
    }
    return true;
}

} // namespace

// ---------------------------------------------------------------- Ccws

Ccws::Ccws(const CcwsConfig &cfg)
    : cfg_(cfg), rr_(cfg.numWarps), scores_(cfg.numWarps, 0),
      allowed_(cfg.numWarps, true)
{
    vtas_.reserve(cfg.numWarps);
    for (unsigned i = 0; i < cfg.numWarps; ++i) {
        vtas_.push_back(std::make_unique<SetAssocArray<char>>(
            cfg.vtaEntriesPerWarp, cfg.vtaWays));
    }
}

int
Ccws::pick(Cycle now, const std::vector<int> &issuable)
{
    return rr_.pick(now, issuable);
}

bool
Ccws::mayIssueMem(int warp_id)
{
    return allowed_[static_cast<std::size_t>(warp_id)];
}

void
Ccws::onL1Miss(int warp_id, PhysAddr line_addr, bool tlb_missed)
{
    auto &vta = *vtas_[static_cast<std::size_t>(warp_id)];
    if (vta.lookup(line_addr).hit) {
        vtaHits_.inc();
        const std::uint64_t weight =
            tlb_missed ? cfg_.vtaHitScore * cfg_.tlbMissWeight
                       : cfg_.vtaHitScore;
        bump(warp_id, weight);
    }
}

void
Ccws::onL1Eviction(PhysAddr line_addr, int alloc_warp)
{
    if (alloc_warp < 0 ||
        alloc_warp >= static_cast<int>(vtas_.size()))
        return;
    vtas_[static_cast<std::size_t>(alloc_warp)]->insert(line_addr, 0);
}

void
Ccws::bump(int warp_id, std::uint64_t amount)
{
    auto &s = scores_[static_cast<std::size_t>(warp_id)];
    s = std::min(s + amount, cfg_.scoreCap);
}

void
Ccws::onWarpReset(int warp_id)
{
    if (warp_id < 0 || warp_id >= static_cast<int>(scores_.size()))
        return;
    scores_[static_cast<std::size_t>(warp_id)] = 0;
    vtas_[static_cast<std::size_t>(warp_id)]->flush();
    recomputeAllowed();
}

void
Ccws::decayTo(Cycle now)
{
    decayScores(scores_, lastDecay_, now, cfg_.halfLife);
}

void
Ccws::recomputeAllowed()
{
    throttling_ = computeAllowed(scores_, cfg_.cutoff,
                                 cfg_.minAllowed, allowed_);
}

void
Ccws::tick(Cycle now)
{
    decayTo(now);
    if (now - lastUpdate_ >= cfg_.updateInterval) {
        lastUpdate_ = now;
        recomputeAllowed();
    }
    if (throttling_)
        throttledCycles_.inc();
}

std::uint64_t
Ccws::score(int warp_id) const
{
    return scores_[static_cast<std::size_t>(warp_id)];
}

std::uint64_t
Ccws::totalScore() const
{
    return std::accumulate(scores_.begin(), scores_.end(),
                           std::uint64_t{0});
}

void
Ccws::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".vta_hits", &vtaHits_);
    reg.addCounter(prefix + ".throttled_cycles", &throttledCycles_);
}

// ---------------------------------------------------------------- Tcws

Tcws::Tcws(const TcwsConfig &cfg)
    : cfg_(cfg), rr_(cfg.numWarps), scores_(cfg.numWarps, 0),
      allowed_(cfg.numWarps, true)
{
    vtas_.reserve(cfg.numWarps);
    for (unsigned i = 0; i < cfg.numWarps; ++i) {
        vtas_.push_back(std::make_unique<SetAssocArray<char>>(
            cfg.vtaEntriesPerWarp,
            std::min<unsigned>(cfg.vtaWays, cfg.vtaEntriesPerWarp)));
    }
}

int
Tcws::pick(Cycle now, const std::vector<int> &issuable)
{
    return rr_.pick(now, issuable);
}

bool
Tcws::mayIssueMem(int warp_id)
{
    return allowed_[static_cast<std::size_t>(warp_id)];
}

void
Tcws::onTlbMiss(int warp_id, Vpn vpn)
{
    auto &vta = *vtas_[static_cast<std::size_t>(warp_id)];
    if (vta.lookup(vpn).hit) {
        vtaHits_.inc();
        bump(warp_id, cfg_.vtaHitScore);
    }
}

void
Tcws::onTlbHit(int warp_id, Vpn vpn, unsigned depth)
{
    (void)vpn;
    const unsigned idx = std::min<unsigned>(depth, 3);
    const std::uint64_t w = cfg_.lruWeights[idx];
    if (w > 0)
        bump(warp_id, w);
}

void
Tcws::onTlbEviction(Vpn vpn, int alloc_warp)
{
    if (alloc_warp < 0 ||
        alloc_warp >= static_cast<int>(vtas_.size()))
        return;
    vtas_[static_cast<std::size_t>(alloc_warp)]->insert(vpn, 0);
}

void
Tcws::bump(int warp_id, std::uint64_t amount)
{
    auto &s = scores_[static_cast<std::size_t>(warp_id)];
    s = std::min(s + amount, cfg_.scoreCap);
}

void
Tcws::onWarpReset(int warp_id)
{
    if (warp_id < 0 || warp_id >= static_cast<int>(scores_.size()))
        return;
    scores_[static_cast<std::size_t>(warp_id)] = 0;
    vtas_[static_cast<std::size_t>(warp_id)]->flush();
    recomputeAllowed();
}

void
Tcws::decayTo(Cycle now)
{
    decayScores(scores_, lastDecay_, now, cfg_.halfLife);
}

void
Tcws::recomputeAllowed()
{
    throttling_ = computeAllowed(scores_, cfg_.cutoff,
                                 cfg_.minAllowed, allowed_);
}

void
Tcws::tick(Cycle now)
{
    decayTo(now);
    if (now - lastUpdate_ >= cfg_.updateInterval) {
        lastUpdate_ = now;
        recomputeAllowed();
    }
    if (throttling_)
        throttledCycles_.inc();
}

std::uint64_t
Tcws::score(int warp_id) const
{
    return scores_[static_cast<std::size_t>(warp_id)];
}

std::uint64_t
Tcws::totalScore() const
{
    return std::accumulate(scores_.begin(), scores_.end(),
                           std::uint64_t{0});
}

void
Tcws::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".vta_hits", &vtaHits_);
    reg.addCounter(prefix + ".throttled_cycles", &throttledCycles_);
}

} // namespace gpummu
