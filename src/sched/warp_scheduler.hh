/**
 * @file
 * Warp scheduler interface.
 *
 * The shader core consults the scheduler to order issueable warps and
 * to gate memory issue (CCWS-family schedulers throttle which warps
 * may touch the memory system). The core feeds back cache, victim-tag
 * and TLB events through the notification hooks; each scheduler uses
 * the subset it cares about.
 */

#ifndef SCHED_WARP_SCHEDULER_HH
#define SCHED_WARP_SCHEDULER_HH

#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

class WarpScheduler
{
  public:
    virtual ~WarpScheduler() = default;

    virtual std::string name() const = 0;

    /**
     * Choose the next warp to issue among @p issuable hardware warp
     * ids (never empty). The core calls this once per issue slot.
     */
    virtual int pick(Cycle now, const std::vector<int> &issuable) = 0;

    /**
     * May this warp issue a *memory* instruction now? CCWS-family
     * schedulers return false for de-prioritized warps; compute
     * instructions are never gated.
     */
    virtual bool mayIssueMem(int warp_id)
    {
        (void)warp_id;
        return true;
    }

    /** An L1 access by @p warp_id missed. @p tlb_missed: the same
     *  instruction also suffered at least one TLB miss. */
    virtual void
    onL1Miss(int warp_id, PhysAddr line_addr, bool tlb_missed)
    {
        (void)warp_id;
        (void)line_addr;
        (void)tlb_missed;
    }

    /** A line allocated by @p alloc_warp was evicted from the L1. */
    virtual void
    onL1Eviction(PhysAddr line_addr, int alloc_warp)
    {
        (void)line_addr;
        (void)alloc_warp;
    }

    /** TLB hit by @p warp_id at LRU stack depth @p depth. */
    virtual void
    onTlbHit(int warp_id, Vpn vpn, unsigned depth)
    {
        (void)warp_id;
        (void)vpn;
        (void)depth;
    }

    /** TLB miss by @p warp_id. */
    virtual void
    onTlbMiss(int warp_id, Vpn vpn)
    {
        (void)warp_id;
        (void)vpn;
    }

    /** A TLB entry allocated by @p alloc_warp was evicted. */
    virtual void
    onTlbEviction(Vpn vpn, int alloc_warp)
    {
        (void)vpn;
        (void)alloc_warp;
    }

    /**
     * Warp slot @p warp_id finished (or was re-launched with a new
     * thread block). Schedulers must drop its scheduling state so a
     * dead warp cannot hog the throttle budget.
     */
    virtual void onWarpReset(int warp_id) { (void)warp_id; }

    /** Called once per core cycle (score decay etc.). */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Does this scheduler observe cycles? Pure schedulers promise
     * that tick() is a no-op and mayIssueMem() is a pure query, so
     * the core may fast-forward through cycles in which nothing can
     * issue without calling them. CCWS-family schedulers (score
     * decay, periodic throttle recomputation, per-cycle throttle
     * stats) must return false, which disables fast-forwarding.
     */
    virtual bool tickIsPure() const { return true; }

    virtual void regStats(StatRegistry &reg, const std::string &prefix)
    {
        (void)reg;
        (void)prefix;
    }
};

/**
 * Loose round robin: the paper's default GPU scheduler. Warps issue
 * in slot order starting after the last issued warp.
 */
class LooseRoundRobin : public WarpScheduler
{
  public:
    explicit LooseRoundRobin(unsigned num_warps)
        : numWarps_(num_warps)
    {
    }

    std::string name() const override { return "lrr"; }

    int
    pick(Cycle now, const std::vector<int> &issuable) override
    {
        (void)now;
        // Choose the first issuable warp after last_, in slot order.
        int best = -1;
        unsigned best_dist = numWarps_ + 1;
        for (int w : issuable) {
            const unsigned dist =
                (static_cast<unsigned>(w) + numWarps_ - last_ - 1) %
                numWarps_;
            if (dist < best_dist) {
                best_dist = dist;
                best = w;
            }
        }
        if (best >= 0)
            last_ = static_cast<unsigned>(best);
        return best;
    }

  private:
    unsigned numWarps_;
    unsigned last_ = 0;
};

/**
 * Greedy-then-oldest: keep issuing the same warp until it stalls,
 * then fall back to the lowest warp id. Included for scheduler
 * sensitivity studies beyond the paper's baseline.
 */
class GreedyThenOldest : public WarpScheduler
{
  public:
    std::string name() const override { return "gto"; }

    int
    pick(Cycle now, const std::vector<int> &issuable) override
    {
        (void)now;
        for (int w : issuable) {
            if (w == greedy_)
                return w;
        }
        int best = issuable.front();
        for (int w : issuable)
            best = std::min(best, w);
        greedy_ = best;
        return best;
    }

  private:
    int greedy_ = -1;
};

} // namespace gpummu

#endif // SCHED_WARP_SCHEDULER_HH
