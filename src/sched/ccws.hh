/**
 * @file
 * Cache-conscious wavefront scheduling (CCWS) and its TLB-aware
 * variants from the paper.
 *
 * CCWS (Rogers et al., MICRO 2012; Section 7.1 of the paper): each
 * warp owns a small victim tag array (VTA) of cache line tags it
 * recently lost from the L1. A miss that hits the warp's own VTA
 * means intra-warp locality was destroyed by inter-warp interference;
 * the lost-locality scoring (LLS) logic bumps that warp's score. When
 * the total score passes a cutoff, only the highest-scoring warps may
 * issue memory instructions, shrinking the set of overlapping warps
 * until reuse returns. Scores decay over time so throttling adapts.
 *
 * TA-CCWS (Section 7.2): identical, but a VTA hit whose instruction
 * also TLB-missed is weighted `tlbMissWeight` times heavier (the
 * paper explores 1:1, 2:1, 4:1, 8:1).
 *
 * TCWS (Section 7.2): replaces the cache-line VTAs with *TLB* victim
 * tag arrays holding page tags (half the hardware), probed on TLB
 * misses; additionally, TLB hits feed the score weighted by the LRU
 * depth of the hit (deeper hit = entry closer to eviction), keeping
 * scheduling decisions frequent. Paper's best weights: LRU(1,2,4,8).
 */

#ifndef SCHED_CCWS_HH
#define SCHED_CCWS_HH

#include <array>
#include <memory>
#include <vector>

#include "mem/set_assoc.hh"
#include "sched/warp_scheduler.hh"

namespace gpummu {

struct CcwsConfig
{
    unsigned numWarps = 48;
    unsigned vtaEntriesPerWarp = 16; ///< paper: 16-entry, 8-way
    unsigned vtaWays = 8;
    /** Score added on a VTA hit. */
    std::uint64_t vtaHitScore = 128;
    /** Per-warp score saturation (keeps one hot warp from owning
     *  the whole cutoff budget). */
    std::uint64_t scoreCap = 512;
    /** Total-score cutoff that triggers throttling. */
    std::uint64_t cutoff = 640;
    /** Never throttle below this many memory-eligible warps. */
    unsigned minAllowed = 6;
    /** Exponential score half-life in cycles. */
    Cycle halfLife = 4096;
    /** Recompute the allowed set at most this often. */
    Cycle updateInterval = 128;
    /** TA-CCWS: extra weight for VTA hits under a TLB miss (1 = off). */
    unsigned tlbMissWeight = 1;
};

/** CCWS / TA-CCWS (TA-CCWS is CCWS with tlbMissWeight > 1). */
class Ccws : public WarpScheduler
{
  public:
    explicit Ccws(const CcwsConfig &cfg);

    std::string name() const override
    {
        return cfg_.tlbMissWeight > 1 ? "ta-ccws" : "ccws";
    }

    int pick(Cycle now, const std::vector<int> &issuable) override;
    bool mayIssueMem(int warp_id) override;
    void onL1Miss(int warp_id, PhysAddr line_addr,
                  bool tlb_missed) override;
    void onL1Eviction(PhysAddr line_addr, int alloc_warp) override;
    void onWarpReset(int warp_id) override;
    void tick(Cycle now) override;
    /** Stateful tick (decay, throttle updates, per-cycle stats). */
    bool tickIsPure() const override { return false; }
    void regStats(StatRegistry &reg, const std::string &prefix) override;

    /** Decayed score of one warp (exposed for tests). */
    std::uint64_t score(int warp_id) const;
    std::uint64_t totalScore() const;

  protected:
    void bump(int warp_id, std::uint64_t amount);
    void decayTo(Cycle now);
    void recomputeAllowed();

    CcwsConfig cfg_;
    LooseRoundRobin rr_;
    std::vector<std::unique_ptr<SetAssocArray<char>>> vtas_;
    std::vector<std::uint64_t> scores_;
    std::vector<bool> allowed_;
    Cycle lastDecay_ = 0;
    Cycle lastUpdate_ = 0;
    bool throttling_ = false;

    Counter vtaHits_;
    Counter throttledCycles_;
};

struct TcwsConfig
{
    unsigned numWarps = 48;
    /** Entries per warp in the TLB VTA (paper sweeps 2-16; 8 best). */
    unsigned vtaEntriesPerWarp = 8;
    unsigned vtaWays = 8;
    std::uint64_t vtaHitScore = 128;
    std::uint64_t scoreCap = 512;
    std::uint64_t cutoff = 640;
    unsigned minAllowed = 6;
    Cycle halfLife = 4096;
    Cycle updateInterval = 128;
    /**
     * Score added per TLB hit, indexed by LRU depth (4-way TLB).
     * All-zero disables depth weighting (the Fig. 17 configuration);
     * the paper's best is {1, 2, 4, 8} (Fig. 18).
     */
    std::array<std::uint64_t, 4> lruWeights{0, 0, 0, 0};
};

/** TLB-conscious warp scheduling. */
class Tcws : public WarpScheduler
{
  public:
    explicit Tcws(const TcwsConfig &cfg);

    std::string name() const override { return "tcws"; }

    int pick(Cycle now, const std::vector<int> &issuable) override;
    bool mayIssueMem(int warp_id) override;
    void onTlbMiss(int warp_id, Vpn vpn) override;
    void onTlbHit(int warp_id, Vpn vpn, unsigned depth) override;
    void onTlbEviction(Vpn vpn, int alloc_warp) override;
    void onWarpReset(int warp_id) override;
    void tick(Cycle now) override;
    /** Stateful tick (decay, throttle updates, per-cycle stats). */
    bool tickIsPure() const override { return false; }
    void regStats(StatRegistry &reg, const std::string &prefix) override;

    std::uint64_t score(int warp_id) const;
    std::uint64_t totalScore() const;

  private:
    void bump(int warp_id, std::uint64_t amount);
    void decayTo(Cycle now);
    void recomputeAllowed();

    TcwsConfig cfg_;
    LooseRoundRobin rr_;
    std::vector<std::unique_ptr<SetAssocArray<char>>> vtas_;
    std::vector<std::uint64_t> scores_;
    std::vector<bool> allowed_;
    Cycle lastDecay_ = 0;
    Cycle lastUpdate_ = 0;
    bool throttling_ = false;

    Counter vtaHits_;
    Counter throttledCycles_;
};

} // namespace gpummu

#endif // SCHED_CCWS_HH
