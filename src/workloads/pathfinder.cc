/**
 * @file
 * Pathfinder model (Rodinia pathfinder, grid dynamic programming).
 *
 * Row-wise wavefront: each thread reads its three upstream cells and
 * writes one result, rows streaming down the grid. Accesses are
 * well-coalesced (page divergence ~1-2 from row straddles), control
 * flow is uniform, and the TLB pressure comes purely from streaming
 * reach - the mildest benchmark in the paper's set.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class PathfinderWorkload : public BenchmarkBase
{
  public:
    explicit PathfinderWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "pathfinder")
    {
        numBlocks_ = static_cast<unsigned>(scaled(240));
    }

    void
    build(AddressSpace &as) override
    {
        grid_ = as.mmap("pf.grid", scaled(256) << 20);
        out_ = as.mmap("pf.out", scaled(32) << 20);

        const unsigned tpb = threadsPerBlock_;
        // Row base: each block works a separate horizontal strip;
        // rows advance with the outer iteration. The row pitch is a
        // prime multiple of the page size so that successive rows
        // touch fresh pages (streaming TLB pressure ~25%).
        auto cell = [this, tpb](ThreadCtx &c, int dx) {
            const std::uint64_t row =
                static_cast<std::uint64_t>(c.blockId) * 977 +
                static_cast<std::uint64_t>(c.visits(1));
            const std::uint64_t col = static_cast<std::uint64_t>(
                std::max(0, c.tidInBlock * 8 + dx));
            // Wide DP rows (16 pages + stagger): every row starts on
            // fresh pages, so a warp re-misses the TLB once per row
            // while its three reads within the row stay coalesced.
            const std::uint64_t row_pitch = 3 * kPageSize4K + 64;
            const std::uint64_t off =
                (row * row_pitch + col * 4) % grid_.bytes;
            return grid_.base + (off & ~3ULL);
        };
        const int left_ld = prog_.addAddrGen(
            [cell](ThreadCtx &c) { return cell(c, -1); });
        const int mid_ld = prog_.addAddrGen(
            [cell](ThreadCtx &c) { return cell(c, 0); });
        const int right_ld = prog_.addAddrGen(
            [cell](ThreadCtx &c) { return cell(c, 1); });
        const int out_st = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1)) * 131ULL;
            return streamAddr(out_, idx, 4);
        });

        const int rows = static_cast<int>(
            std::max<std::uint64_t>(8, scaled(64)));
        const int loop_cond = prog_.addCondGen([rows](ThreadCtx &c) {
            return c.visits(1) < static_cast<unsigned>(rows);
        });

        const int b_entry = prog_.addBlock(); // 0
        const int b_row = prog_.addBlock();   // 1
        const int b_exit = prog_.addBlock();  // 2

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_row, -1, -1);

        prog_.appendLoad(b_row, left_ld);
        prog_.appendAlu(b_row, 2);
        prog_.appendLoad(b_row, mid_ld);
        prog_.appendAlu(b_row, 2);
        prog_.appendLoad(b_row, right_ld);
        prog_.appendAlu(b_row, 5);
        prog_.appendStore(b_row, out_st);
        prog_.appendAlu(b_row, 5);
        prog_.appendBranch(b_row, loop_cond, b_row, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion grid_;
    VmRegion out_;
};

} // namespace

std::unique_ptr<Workload>
makePathfinder(const WorkloadParams &p)
{
    return std::make_unique<PathfinderWorkload>(p);
}

} // namespace gpummu
