/**
 * @file
 * Address-pattern building blocks shared by the benchmark models.
 *
 * The paper's results hinge on per-warp access *shape*: how many
 * distinct pages a warp touches per instruction (page divergence),
 * how much intra-warp locality exists for CCWS to save, and how far
 * streams reach past the TLB. These helpers express those shapes:
 *
 *  - warpWindow(): a per-(block, static warp) region window, stable
 *    across a warp's lanes. Under thread block compaction, dynamic
 *    warps mix lanes from different static warps, so their windows
 *    differ and page divergence rises *naturally*, which is exactly
 *    the effect the paper measures (+2-4 divergence under TBC).
 *  - clusteredAddr(): random within the warp window, with an escape
 *    probability for far-flung accesses (bfs/mummergpu tails).
 *  - streamAddr(): coalesced streaming.
 */

#ifndef WORKLOADS_PATTERNS_HH
#define WORKLOADS_PATTERNS_HH

#include "gpu/kernel.hh"
#include "gpu/simt_stack.hh"
#include "sim/rng.hh"
#include "sim/types.hh"
#include "vm/address_space.hh"

namespace gpummu {

/**
 * Deterministic window id for a thread's *static* warp. @p epoch lets
 * callers rotate windows over loop iterations, @p salt separates data
 * structures.
 */
inline std::uint64_t
warpWindow(const ThreadCtx &ctx, std::uint64_t salt,
           std::uint64_t epoch)
{
    std::uint64_t key = static_cast<std::uint64_t>(ctx.blockId);
    key = key * 131 + static_cast<std::uint64_t>(ctx.warpInBlock);
    key ^= salt * 0x9e3779b97f4a7c15ULL;
    key ^= epoch * 0xbf58476d1ce4e5b9ULL;
    return splitMix64(key);
}

/** Pages in a region (4KB granularity regardless of mapping size). */
inline std::uint64_t
regionPages(const VmRegion &region)
{
    return region.bytes >> kPageShift4K;
}

/**
 * Random word address inside a per-warp window of @p window_pages
 * pages, escaping to a uniform region-wide address with probability
 * @p p_scatter. Window placement is derived from (block, static
 * warp, epoch, salt); lane placement inside the window comes from the
 * thread's private RNG.
 */
inline VirtAddr
clusteredAddr(ThreadCtx &ctx, const VmRegion &region,
              std::uint64_t salt, std::uint64_t epoch,
              std::uint64_t window_pages, double p_scatter)
{
    const std::uint64_t pages = regionPages(region);
    std::uint64_t page;
    if (p_scatter > 0.0 && ctx.rng.chance(p_scatter)) {
        page = ctx.rng.below(pages);
    } else {
        const std::uint64_t span =
            window_pages >= pages ? 1 : pages - window_pages;
        const std::uint64_t base =
            warpWindow(ctx, salt, epoch) % span;
        page = base + ctx.rng.below(std::min(window_pages, pages));
    }
    const std::uint64_t offset = ctx.rng.below(kPageSize4K / 8) * 8;
    return region.base + page * kPageSize4K + offset;
}

/**
 * The general irregular-benchmark access mixture. Three components:
 *
 *  - hot (probability pHot): a small shared set of pages at the
 *    start of the region (graph hubs, hot keys, shared tables). The
 *    page *and line* are chosen lane-invariantly per (static warp,
 *    access index), so hot lanes coalesce to one reference and the
 *    hot set stays TLB/L1 resident.
 *  - window (1 - pHot - pScatter): the warp's private working set of
 *    windowPages pages, rotated every epoch. Provides the intra-warp
 *    reuse CCWS recovers, and the TLB pressure of 48 concurrent
 *    windows.
 *  - scatter (pScatter): region-wide uniform, the far-flung tail
 *    that drives maximum page divergence to the warp width.
 *
 * Within a page only linesPerPage distinct line slots are used so
 * the L1 sees realistic line reuse.
 */
struct MixParams
{
    std::uint64_t salt = 0;
    std::uint64_t hotPages = 32;
    double pHot = 0.4;
    /**
     * Distinct hot pages touched per warp instruction: lanes are
     * split into this many groups, each group sharing one hot page.
     * More groups add TLB-hitting lookups per instruction (hot data
     * is resident) and raise page divergence.
     */
    unsigned hotGroups = 1;
    std::uint64_t windowPages = 2;
    double pScatter = 0.05;
    unsigned linesPerPage = 4;
    /** Window rotates every epochLen visits of the keyed block. */
    std::uint32_t epochLen = 8;
    /**
     * Lane-invariant probability that the *whole warp* scatters
     * region-wide for this access - the pathological instructions
     * that push maximum page divergence to the warp width.
     */
    double pChaos = 0.0;
    /**
     * A thread stays on its chosen window/scatter page for this many
     * consecutive accesses (walking a node's edge list or a hash
     * chain). Keeps divergence high while restoring short-term TLB
     * locality. 1 disables stickiness.
     */
    unsigned stickyLen = 1;
    /**
     * Per-warp windows are carved out of a shared pool of this many
     * pages at the start of the region (0 = the whole region). Real
     * irregular workloads concentrate their misses on a shared
     * working set - frontier neighbourhoods, hot tree levels - so
     * TLB misses from different warps refresh entries for each
     * other and page-table lines for the pool stay L2 resident.
     */
    std::uint64_t poolPages = 0;
};

inline VirtAddr
mixedAddr(ThreadCtx &ctx, const VmRegion &region, const MixParams &mp,
          std::uint32_t visit_count)
{
    const std::uint64_t pages = regionPages(region);
    const std::uint64_t line_step = kPageSize4K / mp.linesPerPage;

    if (mp.pChaos > 0.0) {
        const std::uint64_t h =
            warpWindow(ctx, mp.salt * 3 + 7, visit_count);
        if (static_cast<double>(h % 100000) <
            mp.pChaos * 100000.0) {
            // Warp-wide scatter burst: every lane far-flung.
            const std::uint64_t page = ctx.rng.below(pages);
            return region.base + page * kPageSize4K +
                   ctx.rng.below(mp.linesPerPage) * line_step;
        }
    }

    const double draw = ctx.rng.uniform();
    if (draw < mp.pHot) {
        // Hot pages are *globally shared* structure (graph hubs, hot
        // keys, tree roots): the hash deliberately excludes the
        // thread/warp identity so every warp keeps the same small
        // set of lines resident. Lanes of a group coalesce to one
        // reference; the pick rotates with the iteration so all hot
        // lines stay warm.
        const unsigned groups = std::max(1u, mp.hotGroups);
        const unsigned group =
            static_cast<unsigned>(ctx.laneId) /
            std::max(1u, kWarpWidth / groups);
        const std::uint64_t h = splitMix64(
            (mp.salt * 2 + 1) * 0x9e3779b97f4a7c15ULL ^
            (visit_count * 131ULL + group));
        const std::uint64_t page =
            h % std::min<std::uint64_t>(mp.hotPages, pages);
        const std::uint64_t line = (h >> 32) % mp.linesPerPage;
        return region.base + page * kPageSize4K + line * line_step;
    }
    std::uint64_t page;
    auto &sticky = ctx.sticky[mp.salt % ctx.sticky.size()];
    if (mp.stickyLen > 1 && sticky.left > 0 && sticky.page < pages) {
        page = sticky.page;
        --sticky.left;
    } else {
        if (draw < mp.pHot + mp.pScatter) {
            page = ctx.rng.below(pages);
        } else {
            const std::uint64_t epoch =
                mp.epochLen ? visit_count / mp.epochLen : 0;
            const std::uint64_t pool =
                mp.poolPages ? std::min(mp.poolPages, pages) : pages;
            const std::uint64_t span =
                mp.windowPages >= pool ? 1 : pool - mp.windowPages;
            const std::uint64_t base =
                warpWindow(ctx, mp.salt, epoch) % span;
            page = base +
                   ctx.rng.below(std::min(mp.windowPages, pool));
        }
        if (mp.stickyLen > 1) {
            sticky.page = page;
            sticky.left = mp.stickyLen - 1;
        }
    }
    // Quantize to one of linesPerPage cache-line slots so the L1
    // sees real line reuse (sub-line offsets don't matter to the
    // line-granular timing model).
    const std::uint64_t line = ctx.rng.below(mp.linesPerPage);
    return region.base + page * kPageSize4K + line * line_step;
}

/**
 * Coalesced streaming address: element @p index of an array of
 * @p elem_bytes elements, wrapped to the region size.
 */
inline VirtAddr
streamAddr(const VmRegion &region, std::uint64_t index,
           std::uint64_t elem_bytes)
{
    const std::uint64_t capacity = region.bytes / elem_bytes;
    return region.base + (index % capacity) * elem_bytes;
}

} // namespace gpummu

#endif // WORKLOADS_PATTERNS_HH
