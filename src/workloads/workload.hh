/**
 * @file
 * Workload interface and factory.
 *
 * Each workload models the memory-access shape of one of the paper's
 * benchmarks (Section 5.1: Rodinia bfs, kmeans, streamcluster,
 * mummergpu, pathfinder, plus memcached over a skewed key trace).
 * A workload maps its data structures into the shared address space
 * and builds a KernelProgram whose address/condition generators
 * reproduce the benchmark's published characterisation: memory
 * instruction fraction, TLB-reach pressure, page divergence, branch
 * divergence and intra-warp locality.
 */

#ifndef WORKLOADS_WORKLOAD_HH
#define WORKLOADS_WORKLOAD_HH

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "vm/address_space.hh"

namespace gpummu {

/** Knobs shared by all workload models. */
struct WorkloadParams
{
    std::uint64_t seed = 1;
    /**
     * Linear scale on footprint and grid size; 1.0 is the default
     * evaluation size (sized so 128-entry TLBs see the paper's miss
     * rate bands on a multi-hundred-MB-class footprint analogue).
     * Tests use small scales for speed.
     */
    double scale = 1.0;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Map regions into @p as and build the kernel program. */
    virtual void build(AddressSpace &as) = 0;

    virtual const KernelProgram &program() const = 0;
    virtual unsigned threadsPerBlock() const = 0;
    virtual unsigned numBlocks() const = 0;

    const WorkloadParams &params() const { return params_; }

  protected:
    explicit Workload(const WorkloadParams &p) : params_(p) {}

    WorkloadParams params_;
};

/** The six paper benchmarks, plus the translation-stress classes
 *  added beyond the paper (hashprobe, spgrid, service). */
enum class BenchmarkId
{
    Bfs,
    Kmeans,
    Streamcluster,
    Mummergpu,
    Pathfinder,
    Memcached,
    Hashprobe,
    Spgrid,
    Service,
};

/** All benchmarks in the paper's presentation order. */
std::vector<BenchmarkId> allBenchmarks();

/** The default multi-tenant pairing: one irregular benchmark (bfs)
 *  co-scheduled with one regular one (pathfinder). */
std::vector<BenchmarkId> defaultTenantPair();

std::string benchmarkName(BenchmarkId id);

/** Instantiate one benchmark model. */
std::unique_ptr<Workload> makeWorkload(BenchmarkId id,
                                       const WorkloadParams &params);

} // namespace gpummu

#endif // WORKLOADS_WORKLOAD_HH
