/**
 * @file
 * Graph breadth-first search model (Rodinia bfs).
 *
 * Shape reproduced from the paper's characterisation: irregular
 * neighbour-list accesses with per-warp frontier neighbourhoods
 * (intra-warp locality that round-robin scheduling stretches past
 * the TLB/L1), an activity branch that diverges per thread, an inner
 * neighbour loop with data-dependent trip counts, average page
 * divergence above 4 with a far-flung tail, and a TLB miss rate in
 * the ~40% band at default scale.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class BfsWorkload : public BenchmarkBase
{
  public:
    explicit BfsWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "bfs")
    {
        numBlocks_ = static_cast<unsigned>(scaled(240));
    }

    void
    build(AddressSpace &as) override
    {
        adj_ = as.mmap("bfs.adj", scaled(64) << 20);
        frontier_ = as.mmap("bfs.frontier", scaled(8) << 20);
        visited_ = as.mmap("bfs.visited", scaled(16) << 20);

        // Mixture: 40% shared hub pages (hot), per-warp 2-page
        // frontier neighbourhoods rotated every 8 iterations, 6%
        // far-flung escapes. Gives avg page divergence ~4-5 with a
        // max at the warp width, and TLB miss in the ~40% band.
        MixParams adj_mix;
        adj_mix.salt = 1;
        adj_mix.hotPages = 24;
        adj_mix.hotGroups = 6;
        adj_mix.pHot = 0.45;
        adj_mix.windowPages = 6;
        adj_mix.poolPages = 320;
        adj_mix.pScatter = 0.04;
        adj_mix.linesPerPage = 2;
        adj_mix.epochLen = 8;
        adj_mix.pChaos = 0.12;
        adj_mix.stickyLen = 2;
        MixParams visited_mix;
        visited_mix.salt = 2;
        visited_mix.hotPages = 8;
        visited_mix.pHot = 0.3;
        visited_mix.windowPages = 2;
        visited_mix.poolPages = 128;
        visited_mix.pScatter = 0.01;
        visited_mix.linesPerPage = 2;
        visited_mix.epochLen = 8;

        const int frontier_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.globalTid) +
                static_cast<std::uint64_t>(c.visits(1)) * 1048573ULL;
            return streamAddr(frontier_, idx, 4);
        });
        const int adj_ld = prog_.addAddrGen([this, adj_mix](ThreadCtx &c) {
            return mixedAddr(c, adj_, adj_mix, c.visits(1));
        });
        const int visited_st =
            prog_.addAddrGen([this, visited_mix](ThreadCtx &c) {
                return mixedAddr(c, visited_, visited_mix, c.visits(1));
            });

        // ~60% of threads are active in the frontier each iteration.
        const int active_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.8); });
        // Neighbour loop: continue with decaying probability so trip
        // counts are data dependent (1-4 typical).
        const int neigh_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.55); });
        const int outer_iters =
            static_cast<int>(std::max<std::uint64_t>(4, scaled(24)));
        const int loop_cond = prog_.addCondGen(
            [outer_iters](ThreadCtx &c) {
                return c.visits(1) < static_cast<unsigned>(outer_iters);
            });

        const int b_entry = prog_.addBlock();  // 0
        const int b_loop = prog_.addBlock();   // 1
        const int b_work = prog_.addBlock();   // 2
        const int b_join = prog_.addBlock();   // 3
        const int b_exit = prog_.addBlock();   // 4

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_loop, -1, -1);

        prog_.appendLoad(b_loop, frontier_ld);
        prog_.appendAlu(b_loop, 5);
        prog_.appendBranch(b_loop, active_cond, b_work, b_join,
                           b_join);

        prog_.appendLoad(b_work, adj_ld);
        prog_.appendAlu(b_work, 4);
        prog_.appendLoad(b_work, adj_ld);
        prog_.appendAlu(b_work, 4);
        prog_.appendStore(b_work, visited_st);
        prog_.appendAlu(b_work, 2);
        prog_.appendBranch(b_work, neigh_cond, b_work, b_join, b_join);

        prog_.appendAlu(b_join, 4);
        prog_.appendBranch(b_join, loop_cond, b_loop, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion adj_;
    VmRegion frontier_;
    VmRegion visited_;
};

} // namespace

std::unique_ptr<Workload>
makeBfs(const WorkloadParams &p)
{
    return std::make_unique<BfsWorkload>(p);
}

} // namespace gpummu
