/**
 * @file
 * Hashprobe model: pointer-chasing irregular hash-table probes.
 *
 * Qualitatively different from the paper's six benchmarks: every
 * probe hashes into a bucket array, then *chases node pointers* -
 * each hop's page is a hash of the previous page, so consecutive
 * loads of one thread land on unrelated pages (the ZPC HashTable
 * pattern). Lanes chase independent chains, pushing page divergence
 * toward the warp width with almost no intra-warp locality for CCWS
 * to recover - a worst case for TLB reach that stresses the walker
 * scheduling and page-divergence machinery directly. A small hot
 * bucket head keeps the pattern from being pure noise.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class HashprobeWorkload : public BenchmarkBase
{
  public:
    explicit HashprobeWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "hashprobe")
    {
        numBlocks_ = static_cast<unsigned>(scaled(200));
    }

    void
    build(AddressSpace &as) override
    {
        keys_ = as.mmap("hp.keys", scaled(8) << 20);
        buckets_ = as.mmap("hp.buckets", scaled(64) << 20);
        nodes_ = as.mmap("hp.nodes", scaled(192) << 20);

        const unsigned tpb = threadsPerBlock_;
        const int key_ld = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1)) * 65537ULL;
            return streamAddr(keys_, idx, 16);
        });

        // Bucket lookup: hashed region-wide, with a hot head (the
        // table's most popular buckets) that stays TLB resident.
        const int bucket_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            const std::uint64_t pages = regionPages(buckets_);
            std::uint64_t page;
            if (c.rng.chance(0.25)) {
                page = splitMix64(c.visits(1) * 131ULL +
                                  static_cast<unsigned>(c.laneId) / 8) %
                       std::min<std::uint64_t>(16, pages);
            } else {
                page = c.rng.below(pages);
            }
            return buckets_.base + page * kPageSize4K +
                   c.rng.below(4) * (kPageSize4K / 4);
        });

        // Chain head: the probed key's first node. Seeds the chase
        // from the thread's RNG and parks the page in sticky state.
        const int head_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            const std::uint64_t pages = regionPages(nodes_);
            auto &s = c.sticky[3];
            s.page = c.rng.below(pages);
            return nodes_.base + s.page * kPageSize4K +
                   c.rng.below(4) * (kPageSize4K / 4);
        });
        // Pointer hop: the next node's page is a hash of the current
        // one - zero spatial locality between consecutive loads.
        const int next_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            const std::uint64_t pages = regionPages(nodes_);
            auto &s = c.sticky[3];
            s.page = splitMix64(s.page * 0x9e3779b97f4a7c15ULL +
                                0xda942042e4dd58b5ULL) %
                     pages;
            return nodes_.base + s.page * kPageSize4K +
                   c.rng.below(4) * (kPageSize4K / 4);
        });

        // ~45% of nodes collide and the chain walks on (divergent).
        const int chain_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.45); });
        const int reqs = static_cast<int>(
            std::max<std::uint64_t>(3, scaled(16)));
        const int loop_cond = prog_.addCondGen([reqs](ThreadCtx &c) {
            return c.visits(1) < static_cast<unsigned>(reqs);
        });

        const int b_entry = prog_.addBlock(); // 0
        const int b_req = prog_.addBlock();   // 1
        const int b_head = prog_.addBlock();  // 2
        const int b_chain = prog_.addBlock(); // 3
        const int b_join = prog_.addBlock();  // 4
        const int b_exit = prog_.addBlock();  // 5

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_req, -1, -1);

        prog_.appendLoad(b_req, key_ld);
        prog_.appendAlu(b_req, 3); // hash
        prog_.appendLoad(b_req, bucket_ld);
        prog_.appendBranch(b_req, -1, b_head, -1, -1);

        prog_.appendLoad(b_head, head_ld);
        prog_.appendAlu(b_head, 2); // compare key
        prog_.appendBranch(b_head, chain_cond, b_chain, b_join,
                           b_join);

        prog_.appendLoad(b_chain, next_ld);
        prog_.appendAlu(b_chain, 2);
        prog_.appendBranch(b_chain, chain_cond, b_chain, b_join,
                           b_join);

        prog_.appendAlu(b_join, 1);
        prog_.appendBranch(b_join, loop_cond, b_req, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion keys_;
    VmRegion buckets_;
    VmRegion nodes_;
};

} // namespace

std::unique_ptr<Workload>
makeHashprobe(const WorkloadParams &p)
{
    return std::make_unique<HashprobeWorkload>(p);
}

} // namespace gpummu
