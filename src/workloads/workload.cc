#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

std::vector<BenchmarkId>
allBenchmarks()
{
    return {BenchmarkId::Bfs,           BenchmarkId::Kmeans,
            BenchmarkId::Streamcluster, BenchmarkId::Mummergpu,
            BenchmarkId::Pathfinder,    BenchmarkId::Memcached};
}

std::string
benchmarkName(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Bfs:
        return "bfs";
      case BenchmarkId::Kmeans:
        return "kmeans";
      case BenchmarkId::Streamcluster:
        return "streamcluster";
      case BenchmarkId::Mummergpu:
        return "mummergpu";
      case BenchmarkId::Pathfinder:
        return "pathfinder";
      case BenchmarkId::Memcached:
        return "memcached";
    }
    GPUMMU_PANIC("unknown benchmark id");
}

std::unique_ptr<Workload>
makeWorkload(BenchmarkId id, const WorkloadParams &params)
{
    switch (id) {
      case BenchmarkId::Bfs:
        return makeBfs(params);
      case BenchmarkId::Kmeans:
        return makeKmeans(params);
      case BenchmarkId::Streamcluster:
        return makeStreamcluster(params);
      case BenchmarkId::Mummergpu:
        return makeMummergpu(params);
      case BenchmarkId::Pathfinder:
        return makePathfinder(params);
      case BenchmarkId::Memcached:
        return makeMemcached(params);
    }
    GPUMMU_PANIC("unknown benchmark id");
}

} // namespace gpummu
