#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

std::vector<BenchmarkId>
allBenchmarks()
{
    return {BenchmarkId::Bfs,           BenchmarkId::Kmeans,
            BenchmarkId::Streamcluster, BenchmarkId::Mummergpu,
            BenchmarkId::Pathfinder,    BenchmarkId::Memcached,
            BenchmarkId::Hashprobe,     BenchmarkId::Spgrid,
            BenchmarkId::Service};
}

std::string
benchmarkName(BenchmarkId id)
{
    switch (id) {
      case BenchmarkId::Bfs:
        return "bfs";
      case BenchmarkId::Kmeans:
        return "kmeans";
      case BenchmarkId::Streamcluster:
        return "streamcluster";
      case BenchmarkId::Mummergpu:
        return "mummergpu";
      case BenchmarkId::Pathfinder:
        return "pathfinder";
      case BenchmarkId::Memcached:
        return "memcached";
      case BenchmarkId::Hashprobe:
        return "hashprobe";
      case BenchmarkId::Spgrid:
        return "spgrid";
      case BenchmarkId::Service:
        return "service";
    }
    GPUMMU_PANIC("unknown benchmark id");
}

std::vector<BenchmarkId>
defaultTenantPair()
{
    // The canonical co-schedule for multi-tenant runs: bfs (irregular,
    // TLB-hostile pointer chasing) beside pathfinder (regular grid
    // sweeps). The contrast makes cross-tenant interference on the
    // shared IOMMU TLB visible: the regular tenant suffers the
    // irregular one's evictions without the pair saturating the
    // walkers outright.
    return {BenchmarkId::Bfs, BenchmarkId::Pathfinder};
}

std::unique_ptr<Workload>
makeWorkload(BenchmarkId id, const WorkloadParams &params)
{
    switch (id) {
      case BenchmarkId::Bfs:
        return makeBfs(params);
      case BenchmarkId::Kmeans:
        return makeKmeans(params);
      case BenchmarkId::Streamcluster:
        return makeStreamcluster(params);
      case BenchmarkId::Mummergpu:
        return makeMummergpu(params);
      case BenchmarkId::Pathfinder:
        return makePathfinder(params);
      case BenchmarkId::Memcached:
        return makeMemcached(params);
      case BenchmarkId::Hashprobe:
        return makeHashprobe(params);
      case BenchmarkId::Spgrid:
        return makeSpgrid(params);
      case BenchmarkId::Service:
        return makeService(params);
    }
    GPUMMU_PANIC("unknown benchmark id");
}

} // namespace gpummu
