/**
 * @file
 * Trace-replay workload: a captured (or externally produced) memtrace
 * driving the TLB/PTW/L2-TLB/IOMMU stack as a first-class Workload.
 *
 * The trace's program skeleton is rebuilt with every address and
 * condition generator replaced by a per-thread FIFO pop over the
 * recorded decision streams. Those streams are pure per-thread
 * functions of the program — a thread executes its instructions in
 * program order regardless of warp scheduling — so distributing the
 * recorded lane values back to per-thread queues reproduces the
 * source run bit-identically under the same config, and replays as a
 * portable workload under different design points (core counts, TLB
 * geometries, the IOMMU).
 */

#ifndef WORKLOADS_REPLAY_HH
#define WORKLOADS_REPLAY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/memtrace.hh"
#include "workloads/workload.hh"

namespace gpummu {

class TraceReplayWorkload : public Workload
{
  public:
    /** Takes ownership of a loaded trace (fromFile() loads one). */
    explicit TraceReplayWorkload(MemTraceData data);

    /** Load @p path and wrap it; fatal on a malformed trace. */
    static std::unique_ptr<TraceReplayWorkload>
    fromFile(const std::string &path);

    /** The *recorded* benchmark name, so a replayed run's stat dump
     *  is byte-identical to the source run's. */
    std::string name() const override { return data_.meta.bench; }

    void build(AddressSpace &as) override;

    const KernelProgram &program() const override { return *prog_; }
    unsigned threadsPerBlock() const override
    {
        return data_.meta.threadsPerBlock;
    }
    unsigned numBlocks() const override
    {
        return data_.meta.numBlocks;
    }

    const MemTraceMeta &meta() const { return data_.meta; }

  private:
    VirtAddr popAddr(int tid);
    bool popCond(int tid);

    MemTraceData data_;
    std::unique_ptr<KernelProgram> prog_;
    /** Per-thread decision streams, index = global thread id. */
    std::vector<std::vector<VirtAddr>> addrStream_;
    std::vector<std::vector<std::uint8_t>> condStream_;
    std::vector<std::size_t> addrCursor_;
    std::vector<std::size_t> condCursor_;
};

} // namespace gpummu

#endif // WORKLOADS_REPLAY_HH
