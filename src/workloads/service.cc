/**
 * @file
 * Service model: long-running phase-changing request server.
 *
 * The paper's benchmarks hold one access mixture for a whole kernel;
 * real GPU-resident services (inference servers, KV front ends) cycle
 * through phases with *different* translation behaviour: serving hot
 * sessions (TLB friendly), scanning per-warp database windows
 * (capacity bound), and bursting region-wide lookups (divergence
 * spikes). Each thread runs many requests and the phase switches
 * every few requests, so interval telemetry (PR 5) sees the TLB miss
 * rate and page divergence *move* within one run - the workload the
 * phase-aligned sampling machinery exists for.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class ServiceWorkload : public BenchmarkBase
{
  public:
    explicit ServiceWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "service")
    {
        numBlocks_ = static_cast<unsigned>(scaled(180));
    }

    void
    build(AddressSpace &as) override
    {
        requests_ = as.mmap("sv.requests", scaled(16) << 20);
        sessions_ = as.mmap("sv.sessions", scaled(48) << 20);
        database_ = as.mmap("sv.database", scaled(224) << 20);
        log_ = as.mmap("sv.log", scaled(32) << 20);

        const unsigned tpb = threadsPerBlock_;
        // Requests per phase before the server's behaviour shifts.
        const std::uint32_t phase_len = 4;

        const int req_ld = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1)) * 50021ULL;
            return streamAddr(requests_, idx, 32);
        });

        // The phase-switching data access: hot sessions, then warp
        // database windows, then region-wide scatter bursts.
        const int data_ld =
            prog_.addAddrGen([this, phase_len](ThreadCtx &c) {
                const std::uint32_t phase =
                    (c.visits(1) / phase_len) % 3;
                switch (phase) {
                  case 0: {
                    // Hot sessions: a few shared pages, coalescing
                    // lane groups (TLB and L1 friendly).
                    const std::uint64_t pages =
                        regionPages(sessions_);
                    const std::uint64_t h = splitMix64(
                        c.visits(1) * 131ULL +
                        static_cast<unsigned>(c.laneId) / 8);
                    const std::uint64_t page =
                        h % std::min<std::uint64_t>(24, pages);
                    return sessions_.base + page * kPageSize4K +
                           (h >> 32) % 4 * (kPageSize4K / 4);
                  }
                  case 1: {
                    // Database scan: per-warp windows rotating with
                    // the request index (capacity pressure, reuse
                    // within the window).
                    return clusteredAddr(c, database_, /*salt=*/23,
                                         c.visits(1) / phase_len,
                                         /*window_pages=*/8,
                                         /*p_scatter=*/0.02);
                  }
                  default: {
                    // Scatter burst: region-wide divergent lookups.
                    const std::uint64_t pages =
                        regionPages(database_);
                    const std::uint64_t page = c.rng.below(pages);
                    return database_.base + page * kPageSize4K +
                           c.rng.below(4) * (kPageSize4K / 4);
                  }
                }
            });

        const int log_st = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1)) * 131ULL;
            return streamAddr(log_, idx, 64);
        });

        // ~20% of requests commit a log record.
        const int log_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.2); });
        // Long-running: enough requests to cross many phases (and
        // several telemetry intervals).
        const int reqs = static_cast<int>(
            std::max<std::uint64_t>(6, scaled(36)));
        const int loop_cond = prog_.addCondGen([reqs](ThreadCtx &c) {
            return c.visits(1) < static_cast<unsigned>(reqs);
        });

        const int b_entry = prog_.addBlock(); // 0
        const int b_req = prog_.addBlock();   // 1
        const int b_log = prog_.addBlock();   // 2
        const int b_join = prog_.addBlock();  // 3
        const int b_exit = prog_.addBlock();  // 4

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_req, -1, -1);

        prog_.appendLoad(b_req, req_ld);
        prog_.appendAlu(b_req, 2); // parse request
        prog_.appendLoad(b_req, data_ld);
        prog_.appendAlu(b_req, 3); // serve
        prog_.appendBranch(b_req, log_cond, b_log, b_join, b_join);

        prog_.appendStore(b_log, log_st);
        prog_.appendBranch(b_log, -1, b_join, -1, -1);

        prog_.appendAlu(b_join, 1);
        prog_.appendBranch(b_join, loop_cond, b_req, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion requests_;
    VmRegion sessions_;
    VmRegion database_;
    VmRegion log_;
};

} // namespace

std::unique_ptr<Workload>
makeService(const WorkloadParams &p)
{
    return std::make_unique<ServiceWorkload>(p);
}

} // namespace gpummu
