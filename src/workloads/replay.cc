#include "workloads/replay.hh"

#include "gpu/simt_stack.hh"
#include "sim/logging.hh"

namespace gpummu {

TraceReplayWorkload::TraceReplayWorkload(MemTraceData data)
    : Workload(WorkloadParams{data.meta.seed, data.meta.scale}),
      data_(std::move(data))
{
    const std::size_t threads =
        static_cast<std::size_t>(data_.meta.numBlocks) *
        data_.meta.threadsPerBlock;
    addrStream_.assign(threads, {});
    condStream_.assign(threads, {});

    // Scatter the per-warp records into per-thread streams. A thread
    // executes its instructions in program order whatever the warp
    // schedule, so file order (cycle order within each warp) is
    // already each thread's pop order.
    const unsigned tpb = data_.meta.threadsPerBlock;
    for (const MemTraceAccess &a : data_.accesses) {
        std::size_t i = 0;
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            if (!(a.mask & (std::uint64_t(1) << lane)))
                continue;
            const std::size_t tid =
                static_cast<std::size_t>(a.block) * tpb +
                static_cast<std::size_t>(a.warp) * kWarpWidth + lane;
            addrStream_[tid].push_back(a.addrs[i++]);
        }
    }
    for (const MemTraceBranch &b : data_.branches) {
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            if (!(b.mask & (std::uint64_t(1) << lane)))
                continue;
            const std::size_t tid =
                static_cast<std::size_t>(b.block) * tpb +
                static_cast<std::size_t>(b.warp) * kWarpWidth + lane;
            condStream_[tid].push_back(
                (b.taken >> lane) & 1 ? 1 : 0);
        }
    }
}

std::unique_ptr<TraceReplayWorkload>
TraceReplayWorkload::fromFile(const std::string &path)
{
    MemTraceData data;
    std::string err;
    if (!loadMemTraceFile(path, data, err))
        GPUMMU_FATAL(err);
    return std::make_unique<TraceReplayWorkload>(std::move(data));
}

void
TraceReplayWorkload::build(AddressSpace &as)
{
    if (as.usesLargePages() != data_.meta.largePages) {
        GPUMMU_FATAL(
            "trace was captured with large=",
            data_.meta.largePages ? 1 : 0,
            " but this config maps ",
            as.usesLargePages() ? "2MB" : "4KB",
            " pages; region bases would shift and the recorded "
            "addresses would not land. Replay under a config with "
            "the matching page size.");
    }
    // Same names/sizes in the same order reproduce the source run's
    // region bases exactly (AddressSpace VAs are deterministic in
    // mmap order), so recorded addresses land where they did.
    for (const MemTraceRegion &r : data_.regions)
        as.mmap(r.name, r.bytes);

    // Rebuild the skeleton with every generator popping the thread's
    // recorded stream. Generator *ids* in the trace are irrelevant at
    // replay — all streams interleave in the thread's program order —
    // so loads/stores share one addr generator and conditional
    // branches one cond generator.
    prog_ = std::make_unique<KernelProgram>(data_.meta.bench +
                                            ".replay");
    for (std::size_t b = 0; b < data_.blocks.size(); ++b)
        prog_->addBlock();
    const int addr_gen = prog_->addAddrGen(
        [this](ThreadCtx &c) { return popAddr(c.globalTid); });
    const int cond_gen = prog_->addCondGen(
        [this](ThreadCtx &c) { return popCond(c.globalTid); });
    for (std::size_t b = 0; b < data_.blocks.size(); ++b) {
        const int blk = static_cast<int>(b);
        for (const MemTraceInstr &in : data_.blocks[b]) {
            switch (in.kind) {
              case MemTraceInstr::Kind::Alu:
                prog_->appendAlu(blk);
                break;
              case MemTraceInstr::Kind::Load:
                prog_->appendLoad(blk, addr_gen);
                break;
              case MemTraceInstr::Kind::Store:
                prog_->appendStore(blk, addr_gen);
                break;
              case MemTraceInstr::Kind::Branch:
                prog_->appendBranch(blk,
                                    in.gen >= 0 ? cond_gen : -1,
                                    in.taken, in.fall, in.reconv);
                break;
              case MemTraceInstr::Kind::Exit:
                prog_->appendExit(blk);
                break;
            }
        }
    }

    // Rewind so a fresh GpuTop can re-run the same workload object.
    addrCursor_.assign(addrStream_.size(), 0);
    condCursor_.assign(condStream_.size(), 0);
}

VirtAddr
TraceReplayWorkload::popAddr(int tid)
{
    const auto t = static_cast<std::size_t>(tid);
    auto &cur = addrCursor_[t];
    const auto &q = addrStream_[t];
    if (cur >= q.size()) {
        GPUMMU_FATAL("replay address stream exhausted for thread ",
                     tid, " (", q.size(),
                     " recorded): the trace does not match this "
                     "launch");
    }
    return q[cur++];
}

bool
TraceReplayWorkload::popCond(int tid)
{
    const auto t = static_cast<std::size_t>(tid);
    auto &cur = condCursor_[t];
    const auto &q = condStream_[t];
    if (cur >= q.size()) {
        GPUMMU_FATAL("replay branch stream exhausted for thread ",
                     tid, " (", q.size(),
                     " recorded): the trace does not match this "
                     "launch");
    }
    return q[cur++] != 0;
}

} // namespace gpummu
