/**
 * @file
 * MUMmerGPU model (DNA sequence alignment over a suffix tree).
 *
 * Each thread walks a suffix tree with data-dependent depth; lanes of
 * a warp match different queries, so their node accesses land on
 * wildly different pages. This is the paper's worst page-divergence
 * benchmark (average above 8, maxima at the full warp width) with the
 * highest TLB miss rates, and the biggest beneficiary of 4+ TLB ports
 * and PTW scheduling.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class MummergpuWorkload : public BenchmarkBase
{
  public:
    explicit MummergpuWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "mummergpu")
    {
        numBlocks_ = static_cast<unsigned>(scaled(240));
    }

    void
    build(AddressSpace &as) override
    {
        tree_ = as.mmap("mummer.tree", scaled(128) << 20);
        queries_ = as.mmap("mummer.queries", scaled(16) << 20);
        output_ = as.mmap("mummer.output", scaled(16) << 20);

        const unsigned tpb = threadsPerBlock_;
        const int query_ld = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1)) * 65537ULL;
            return streamAddr(queries_, idx, 16);
        });
        // Wide per-warp window plus heavy region-wide escapes: lanes
        // spread across many pages per instruction (the suffix-tree
        // walk). Small hot component models the tree root levels.
        MixParams node_mix;
        node_mix.salt = 5;
        node_mix.hotPages = 16;
        node_mix.hotGroups = 8;
        node_mix.pHot = 0.25;
        node_mix.windowPages = 10;
        node_mix.poolPages = 512;
        node_mix.pScatter = 0.10;
        node_mix.linesPerPage = 2;
        node_mix.epochLen = 4;
        node_mix.pChaos = 0.25;
        node_mix.stickyLen = 3;
        const int node_ld =
            prog_.addAddrGen([this, node_mix](ThreadCtx &c) {
                return mixedAddr(c, tree_, node_mix, c.visits(1));
            });
        const int out_st = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock);
            return streamAddr(output_, idx, 16);
        });

        // Match loop: continue with p=0.62 (mean depth ~2.6, long
        // tail), giving heavy intra-warp trip-count divergence.
        const int match_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.70); });
        const int outer_iters =
            static_cast<int>(std::max<std::uint64_t>(3, scaled(12)));
        const int loop_cond = prog_.addCondGen(
            [outer_iters](ThreadCtx &c) {
                return c.visits(1) < static_cast<unsigned>(outer_iters);
            });

        const int b_entry = prog_.addBlock(); // 0
        const int b_loop = prog_.addBlock();  // 1
        const int b_match = prog_.addBlock(); // 2
        const int b_tail = prog_.addBlock();  // 3
        const int b_exit = prog_.addBlock();  // 4

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_loop, -1, -1);

        prog_.appendLoad(b_loop, query_ld);
        prog_.appendAlu(b_loop, 1);
        prog_.appendLoad(b_loop, node_ld); // root descent, full warp
        prog_.appendAlu(b_loop, 1);
        prog_.appendBranch(b_loop, -1, b_match, -1, -1);

        prog_.appendLoad(b_match, node_ld);
        prog_.appendAlu(b_match, 3);
        prog_.appendLoad(b_match, node_ld);
        prog_.appendAlu(b_match, 3);
        prog_.appendBranch(b_match, match_cond, b_match, b_tail,
                           b_tail);

        prog_.appendStore(b_tail, out_st);
        prog_.appendAlu(b_tail, 1);
        prog_.appendBranch(b_tail, loop_cond, b_loop, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion tree_;
    VmRegion queries_;
    VmRegion output_;
};

} // namespace

std::unique_ptr<Workload>
makeMummergpu(const WorkloadParams &p)
{
    return std::make_unique<MummergpuWorkload>(p);
}

} // namespace gpummu
