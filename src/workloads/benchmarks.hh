/**
 * @file
 * Internal constructors for the six benchmark models; use
 * makeWorkload() from workload.hh instead.
 */

#ifndef WORKLOADS_BENCHMARKS_HH
#define WORKLOADS_BENCHMARKS_HH

#include <memory>

#include "workloads/workload.hh"

namespace gpummu {

std::unique_ptr<Workload> makeBfs(const WorkloadParams &p);
std::unique_ptr<Workload> makeKmeans(const WorkloadParams &p);
std::unique_ptr<Workload> makeStreamcluster(const WorkloadParams &p);
std::unique_ptr<Workload> makeMummergpu(const WorkloadParams &p);
std::unique_ptr<Workload> makePathfinder(const WorkloadParams &p);
std::unique_ptr<Workload> makeMemcached(const WorkloadParams &p);
std::unique_ptr<Workload> makeHashprobe(const WorkloadParams &p);
std::unique_ptr<Workload> makeSpgrid(const WorkloadParams &p);
std::unique_ptr<Workload> makeService(const WorkloadParams &p);

} // namespace gpummu

#endif // WORKLOADS_BENCHMARKS_HH
