/**
 * @file
 * Spgrid model: sparse-grid physics stencil with blocked reuse.
 *
 * Models the SPGrid-style sparse-paged grids used by fluid/MPM
 * solvers: the domain is stored page-per-tile, a block table maps
 * active tiles, and each warp sweeps one tile applying a 5-point
 * stencil. In-tile accesses coalesce and reuse heavily (the blocked
 * layout is the whole point of SPGrid), but the cross-tile neighbours
 * live one page (x) or one row-stride of pages (y) away, so every
 * apron access is a *different-page* reference - TLB pressure scales
 * with active-tile count while L1 behaviour stays excellent. A small
 * scatter fraction models halo lookups of far-away active tiles.
 * This is the large-page-friendly counterpoint to hashprobe.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class SpgridWorkload : public BenchmarkBase
{
  public:
    explicit SpgridWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "spgrid")
    {
        numBlocks_ = static_cast<unsigned>(scaled(220));
    }

    void
    build(AddressSpace &as) override
    {
        blockTable_ = as.mmap("sg.blocktable", scaled(16) << 20);
        grid_ = as.mmap("sg.grid", scaled(256) << 20);

        const unsigned tpb = threadsPerBlock_;
        // One y-row of the tile grid; neighbours in y are this many
        // pages apart.
        const std::uint64_t row_stride = 64;

        // The warp's tile for this sweep iteration (lane-invariant,
        // rotated per iteration): the page every in-tile access and
        // store reuses.
        auto tile_page = [this, row_stride](ThreadCtx &c) {
            const std::uint64_t pages = regionPages(grid_);
            // Tiles cluster: a warp sweeps a neighbourhood of rows,
            // so different warps' aprons overlap (shared halo pages).
            return warpWindow(c, /*salt=*/17, c.visits(1)) %
                   std::max<std::uint64_t>(1,
                                           pages - 2 * row_stride - 2);
        };

        const int table_ld =
            prog_.addAddrGen([this, tpb](ThreadCtx &c) {
                const std::uint64_t idx =
                    static_cast<std::uint64_t>(c.blockId) * tpb +
                    static_cast<std::uint64_t>(c.tidInBlock) +
                    static_cast<std::uint64_t>(c.visits(1)) *
                        40013ULL;
                return streamAddr(blockTable_, idx, 8);
            });
        const int center_ld =
            prog_.addAddrGen([this, tile_page,
                              row_stride](ThreadCtx &c) {
                const std::uint64_t page =
                    tile_page(c) + row_stride + 1;
                return grid_.base + page * kPageSize4K +
                       static_cast<std::uint64_t>(c.laneId) * 64;
            });
        // x-apron: +/-1 page; alternates with the iteration.
        const int xnbr_ld =
            prog_.addAddrGen([this, tile_page,
                              row_stride](ThreadCtx &c) {
                const std::uint64_t off = c.visits(1) % 2 ? 0 : 2;
                const std::uint64_t page =
                    tile_page(c) + row_stride + off;
                return grid_.base + page * kPageSize4K +
                       static_cast<std::uint64_t>(c.laneId) * 64;
            });
        // y-apron: +/-row_stride pages, with a small far-halo
        // scatter (sparse domains look up distant active tiles).
        const int ynbr_ld =
            prog_.addAddrGen([this, tile_page,
                              row_stride](ThreadCtx &c) {
                const std::uint64_t pages = regionPages(grid_);
                std::uint64_t page;
                if (c.rng.chance(0.05)) {
                    page = c.rng.below(pages);
                } else {
                    const std::uint64_t off =
                        c.visits(1) % 2 ? 0 : 2 * row_stride;
                    page = tile_page(c) + 1 + off;
                }
                return grid_.base + page * kPageSize4K +
                       static_cast<std::uint64_t>(c.laneId) * 64;
            });
        const int center_st = center_ld; // write the updated cell

        const int tiles = static_cast<int>(
            std::max<std::uint64_t>(3, scaled(14)));
        const int loop_cond = prog_.addCondGen([tiles](ThreadCtx &c) {
            return c.visits(1) < static_cast<unsigned>(tiles);
        });

        const int b_entry = prog_.addBlock(); // 0
        const int b_tile = prog_.addBlock();  // 1
        const int b_sten = prog_.addBlock();  // 2
        const int b_exit = prog_.addBlock();  // 3

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_tile, -1, -1);

        prog_.appendLoad(b_tile, table_ld);
        prog_.appendAlu(b_tile, 2); // decode tile coordinates
        prog_.appendBranch(b_tile, -1, b_sten, -1, -1);

        prog_.appendLoad(b_sten, center_ld);
        prog_.appendLoad(b_sten, xnbr_ld);
        prog_.appendLoad(b_sten, ynbr_ld);
        prog_.appendAlu(b_sten, 4); // stencil arithmetic
        prog_.appendStore(b_sten, center_st);
        prog_.appendBranch(b_sten, loop_cond, b_tile, b_exit,
                           b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion blockTable_;
    VmRegion grid_;
};

} // namespace

std::unique_ptr<Workload>
makeSpgrid(const WorkloadParams &p)
{
    return std::make_unique<SpgridWorkload>(p);
}

} // namespace gpummu
