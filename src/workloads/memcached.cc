/**
 * @file
 * Memcached model (key-value store driven by a skewed trace).
 *
 * The paper stimulates memcached with a representative slice of the
 * Wikipedia access traces; we substitute a Zipf-distributed key
 * popularity (the standard model for that trace family). Each thread
 * services requests: hash the key, probe the bucket array, walk a
 * short chain on conflicts (divergent), then read the value; ~10% of
 * requests are SETs that write the value. Hot pages concentrate the
 * head of the distribution while the tail scatters region-wide,
 * producing mid-range page divergence and TLB miss rates.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class MemcachedWorkload : public BenchmarkBase
{
  public:
    explicit MemcachedWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "memcached")
    {
        numBlocks_ = static_cast<unsigned>(scaled(240));
    }

    void
    build(AddressSpace &as) override
    {
        table_ = as.mmap("mc.hashtable", scaled(48) << 20);
        values_ = as.mmap("mc.values", scaled(160) << 20);
        requests_ = as.mmap("mc.requests", scaled(16) << 20);

        tableZipf_ = std::make_unique<ZipfSampler>(
            std::min<std::uint64_t>(768, regionPages(table_)), 0.6);
        valueZipf_ = std::make_unique<ZipfSampler>(
            std::min<std::uint64_t>(1024, regionPages(values_)), 0.6);

        const unsigned tpb = threadsPerBlock_;
        const int req_ld = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1)) * 40009ULL;
            return streamAddr(requests_, idx, 32);
        });
        // Requests batch by popularity: about half of a warp's probes
        // hit the same hot key (the trace's head), chosen
        // lane-invariantly so they coalesce; the rest are Zipf over
        // the full table/value space.
        const int bucket_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            std::uint64_t page;
            if (c.rng.chance(0.6)) {
                page = warpWindow(c, /*salt=*/11,
                                  c.visits(1) * 131ULL +
                                      static_cast<unsigned>(c.laneId) / 8) %
                       64;
            } else {
                page = tableZipf_->sample(c.rng);
            }
            // 4 line slots per bucket page: hot buckets coalesce and
            // stay L1 resident.
            return table_.base + page * kPageSize4K +
                   c.rng.below(2) * (kPageSize4K / 2);
        });
        const int value_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            std::uint64_t page;
            if (c.rng.chance(0.55)) {
                page = warpWindow(c, /*salt=*/13,
                                  c.visits(1) * 131ULL +
                                      static_cast<unsigned>(c.laneId) / 8) %
                       128;
            } else {
                page = valueZipf_->sample(c.rng);
            }
            return values_.base + page * kPageSize4K +
                   c.rng.below(2) * (kPageSize4K / 2);
        });
        const int value_st = value_ld; // SETs write the same layout

        // Chain walk: ~30% of probes collide and walk on.
        const int chain_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.3); });
        // SET fraction of requests.
        const int set_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.1); });
        const int reqs = static_cast<int>(
            std::max<std::uint64_t>(4, scaled(20)));
        const int loop_cond = prog_.addCondGen([reqs](ThreadCtx &c) {
            return c.visits(1) < static_cast<unsigned>(reqs);
        });

        const int b_entry = prog_.addBlock(); // 0
        const int b_req = prog_.addBlock();   // 1
        const int b_probe = prog_.addBlock(); // 2
        const int b_get = prog_.addBlock();   // 3
        const int b_set = prog_.addBlock();   // 4
        const int b_join = prog_.addBlock();  // 5
        const int b_exit = prog_.addBlock();  // 6

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_req, -1, -1);

        prog_.appendLoad(b_req, req_ld);
        prog_.appendAlu(b_req, 4); // hash
        prog_.appendBranch(b_req, -1, b_probe, -1, -1);

        prog_.appendLoad(b_probe, bucket_ld);
        prog_.appendAlu(b_probe, 3);
        prog_.appendBranch(b_probe, chain_cond, b_probe, b_get, b_get);

        prog_.appendLoad(b_get, value_ld);
        prog_.appendAlu(b_get, 3);
        prog_.appendBranch(b_get, set_cond, b_set, b_join, b_join);

        prog_.appendStore(b_set, value_st);
        prog_.appendBranch(b_set, -1, b_join, -1, -1);

        prog_.appendAlu(b_join, 2);
        prog_.appendBranch(b_join, loop_cond, b_req, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion table_;
    VmRegion values_;
    VmRegion requests_;
    std::unique_ptr<ZipfSampler> tableZipf_;
    std::unique_ptr<ZipfSampler> valueZipf_;
};

} // namespace

std::unique_ptr<Workload>
makeMemcached(const WorkloadParams &p)
{
    return std::make_unique<MemcachedWorkload>(p);
}

} // namespace gpummu
