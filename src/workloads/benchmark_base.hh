/**
 * @file
 * Shared scaffolding for the six benchmark models.
 */

#ifndef WORKLOADS_BENCHMARK_BASE_HH
#define WORKLOADS_BENCHMARK_BASE_HH

#include <cmath>
#include <string>

#include "workloads/patterns.hh"
#include "workloads/workload.hh"

namespace gpummu {

class BenchmarkBase : public Workload
{
  public:
    std::string name() const override { return name_; }
    const KernelProgram &program() const override { return prog_; }
    unsigned threadsPerBlock() const override
    {
        return threadsPerBlock_;
    }
    unsigned numBlocks() const override { return numBlocks_; }

  protected:
    BenchmarkBase(const WorkloadParams &p, std::string name)
        : Workload(p), name_(name), prog_(std::move(name))
    {
    }

    /** Scale a nominal count by params().scale, keeping at least 1. */
    std::uint64_t
    scaled(std::uint64_t nominal) const
    {
        const double v =
            std::max(1.0, std::floor(static_cast<double>(nominal) *
                                     params_.scale));
        return static_cast<std::uint64_t>(v);
    }

    std::string name_;
    KernelProgram prog_;
    unsigned threadsPerBlock_ = 256;
    unsigned numBlocks_ = 30;
};

} // namespace gpummu

#endif // WORKLOADS_BENCHMARK_BASE_HH
