/**
 * @file
 * K-means clustering model (Rodinia kmeans).
 *
 * Points stream in coalesced row-major order; every point iterates a
 * large centroid table that is scanned cyclically by all warps. The
 * cyclic scan is bigger than both the TLB reach and the L1, which is
 * what gives kmeans its high TLB miss rate with page divergence ~1
 * and makes it resistant to CCWS-style throttling (all warps share
 * the same thrashing working set) - matching the paper, where kmeans
 * stays hard even for TA-CCWS.
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class KmeansWorkload : public BenchmarkBase
{
  public:
    explicit KmeansWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "kmeans")
    {
        numBlocks_ = static_cast<unsigned>(scaled(240));
    }

    void
    build(AddressSpace &as) override
    {
        points_ = as.mmap("kmeans.points", scaled(128) << 20);
        centroids_ = as.mmap("kmeans.centroids", scaled(8) << 20);
        assign_ = as.mmap("kmeans.assign", scaled(8) << 20);

        const unsigned tpb = threadsPerBlock_;
        const int point_ld = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            // Row-major 32-byte points; lanes are adjacent, so a warp
            // instruction covers 1KB (page divergence 1).
            const std::uint64_t idx =
                (static_cast<std::uint64_t>(c.blockId) * tpb +
                 static_cast<std::uint64_t>(c.tidInBlock)) +
                static_cast<std::uint64_t>(c.visits(1)) * 93491ULL;
            return streamAddr(points_, idx, 32);
        });
        const int centroid_ld = prog_.addAddrGen([this](ThreadCtx &c) {
            // Cyclic scan over the centroid table; all lanes touch
            // the same centroid (perfect coalescing, divergence 1).
            // Warps start at decorrelated offsets, so the core's live
            // centroid footprint is ~one page per warp and rotates
            // every few accesses - past the TLB's reach across 48
            // warps but with short-term reuse inside one warp.
            const std::uint64_t cidx =
                static_cast<std::uint64_t>(c.visits(2)) - 1;
            const std::uint64_t pages = regionPages(centroids_);
            const std::uint64_t page =
                (warpWindow(c, /*salt=*/7, /*epoch=*/0) + cidx / 4) %
                pages;
            return centroids_.base + page * kPageSize4K +
                   ((cidx % 4) / 2) * 2048;
        });
        const int assign_st = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock);
            return streamAddr(assign_, idx, 4);
        });

        const int inner_iters =
            static_cast<int>(std::max<std::uint64_t>(4, scaled(16)));
        const int outer_iters =
            static_cast<int>(std::max<std::uint64_t>(2, scaled(8)));
        // Uniform loops: every thread runs the same trip counts.
        const int inner_cond = prog_.addCondGen(
            [inner_iters](ThreadCtx &c) {
                return c.visits(2) %
                           static_cast<unsigned>(inner_iters) !=
                       0;
            });
        const int outer_cond = prog_.addCondGen(
            [outer_iters](ThreadCtx &c) {
                return c.visits(1) < static_cast<unsigned>(outer_iters);
            });

        const int b_entry = prog_.addBlock(); // 0
        const int b_point = prog_.addBlock(); // 1
        const int b_cent = prog_.addBlock();  // 2
        const int b_tail = prog_.addBlock();  // 3
        const int b_exit = prog_.addBlock();  // 4

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_point, -1, -1);

        prog_.appendLoad(b_point, point_ld);
        prog_.appendAlu(b_point, 2);
        prog_.appendBranch(b_point, -1, b_cent, -1, -1);

        prog_.appendLoad(b_cent, centroid_ld);
        prog_.appendAlu(b_cent, 5);
        prog_.appendBranch(b_cent, inner_cond, b_cent, b_tail, b_tail);

        prog_.appendStore(b_tail, assign_st);
        prog_.appendAlu(b_tail, 2);
        prog_.appendBranch(b_tail, outer_cond, b_point, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion points_;
    VmRegion centroids_;
    VmRegion assign_;
};

} // namespace

std::unique_ptr<Workload>
makeKmeans(const WorkloadParams &p)
{
    return std::make_unique<KmeansWorkload>(p);
}

} // namespace gpummu
