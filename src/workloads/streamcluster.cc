/**
 * @file
 * Streamcluster model (Rodinia streamcluster, online clustering).
 *
 * Each warp owns a small working set of candidate-centre pages that
 * it re-reads across many gain-computation iterations while points
 * stream through. Under round-robin scheduling 48 warps' working
 * sets overlap in time and thrash the L1 and TLB; limiting the
 * active warps (CCWS) restores the intra-warp reuse - streamcluster
 * is one of the paper's biggest CCWS winners. Page divergence stays
 * low (~2).
 */

#include "workloads/benchmark_base.hh"
#include "workloads/benchmarks.hh"

namespace gpummu {

namespace {

class StreamclusterWorkload : public BenchmarkBase
{
  public:
    explicit StreamclusterWorkload(const WorkloadParams &p)
        : BenchmarkBase(p, "streamcluster")
    {
        numBlocks_ = static_cast<unsigned>(scaled(240));
    }

    void
    build(AddressSpace &as) override
    {
        points_ = as.mmap("sc.points", scaled(96) << 20);
        centers_ = as.mmap("sc.centers", scaled(48) << 20);
        gains_ = as.mmap("sc.gains", scaled(8) << 20);

        const unsigned tpb = threadsPerBlock_;
        const int point_ld = prog_.addAddrGen([this, tpb](ThreadCtx &c) {
            // Coalesced pass over the points: lanes are adjacent
            // 32-byte records, one fresh kilobyte per iteration.
            // Each point is re-read across 4 consecutive gain
            // iterations before the pass moves on.
            const std::uint64_t idx =
                static_cast<std::uint64_t>(c.blockId) * tpb +
                static_cast<std::uint64_t>(c.tidInBlock) +
                static_cast<std::uint64_t>(c.visits(1) / 4) * 50021ULL;
            return streamAddr(points_, idx, 32);
        });
        // Per-warp candidate-centre window, stable for 16 iterations:
        // the reuse CCWS recovers. A modest shared-medoid hot set
        // keeps some accesses cheap.
        MixParams center_mix;
        center_mix.salt = 3;
        center_mix.hotPages = 12;
        center_mix.hotGroups = 4;
        center_mix.pHot = 0.55;
        center_mix.windowPages = 6;
        center_mix.poolPages = 256;
        center_mix.pScatter = 0.01;
        center_mix.linesPerPage = 2;
        center_mix.epochLen = 16;
        center_mix.pChaos = 0.005;
        center_mix.stickyLen = 4;
        const int center_ld =
            prog_.addAddrGen([this, center_mix](ThreadCtx &c) {
                return mixedAddr(c, centers_, center_mix, c.visits(1));
            });
        MixParams gain_mix;
        gain_mix.salt = 4;
        gain_mix.hotPages = 4;
        gain_mix.pHot = 0.2;
        gain_mix.windowPages = 1;
        gain_mix.pScatter = 0.0;
        gain_mix.linesPerPage = 2;
        gain_mix.epochLen = 16;
        const int gain_st =
            prog_.addAddrGen([this, gain_mix](ThreadCtx &c) {
                return mixedAddr(c, gains_, gain_mix, c.visits(1));
            });

        const int outer_iters =
            static_cast<int>(std::max<std::uint64_t>(6, scaled(48)));
        const int loop_cond = prog_.addCondGen(
            [outer_iters](ThreadCtx &c) {
                return c.visits(1) < static_cast<unsigned>(outer_iters);
            });
        // Occasionally a gain write happens (divergent but cheap).
        const int write_cond = prog_.addCondGen(
            [](ThreadCtx &c) { return c.rng.chance(0.25); });

        const int b_entry = prog_.addBlock(); // 0
        const int b_loop = prog_.addBlock();  // 1
        const int b_wr = prog_.addBlock();    // 2
        const int b_join = prog_.addBlock();  // 3
        const int b_exit = prog_.addBlock();  // 4

        prog_.appendAlu(b_entry, 2);
        prog_.appendBranch(b_entry, -1, b_loop, -1, -1);

        prog_.appendLoad(b_loop, point_ld);
        prog_.appendAlu(b_loop, 3);
        prog_.appendLoad(b_loop, center_ld);
        prog_.appendAlu(b_loop, 3);
        prog_.appendLoad(b_loop, center_ld);
        prog_.appendAlu(b_loop, 3);
        prog_.appendLoad(b_loop, center_ld);
        prog_.appendAlu(b_loop, 2);
        prog_.appendBranch(b_loop, write_cond, b_wr, b_join, b_join);

        prog_.appendStore(b_wr, gain_st);
        prog_.appendBranch(b_wr, -1, b_join, -1, -1);

        prog_.appendAlu(b_join, 1);
        prog_.appendBranch(b_join, loop_cond, b_loop, b_exit, b_exit);

        prog_.appendExit(b_exit);
    }

  private:
    VmRegion points_;
    VmRegion centers_;
    VmRegion gains_;
};

} // namespace

std::unique_ptr<Workload>
makeStreamcluster(const WorkloadParams &p)
{
    return std::make_unique<StreamclusterWorkload>(p);
}

} // namespace gpummu
