/**
 * @file
 * Abstract shader core, implemented by SimtCore (per-warp stacks) and
 * TbcCore (thread block compaction). GpuTop drives cores through
 * this interface only.
 */

#ifndef GPU_SHADER_CORE_HH
#define GPU_SHADER_CORE_HH

#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/stall_accounting.hh"

namespace gpummu {

class HeatProfiler;
class MemTraceWriter;
class Mmu;
class L1Cache;
class MemoryStage;
class SpanTracker;
class TraceSink;

class ShaderCore
{
  public:
    virtual ~ShaderCore() = default;

    virtual void tick(Cycle now) = 0;

    /**
     * Fast-forward support. A tick is *quiescent* when it issued
     * nothing, retired nothing and only charged stall attribution —
     * so re-running it for the next k cycles is equivalent to
     * chargeSkipped(now, k), provided no event fires, no warp's
     * readyAt elapses (see wakeHint()) and no block is dispatched in
     * between. Cores that cannot prove this (TBC) keep the defaults
     * and simply never fast-forward.
     */
    virtual bool lastTickQuiescent() const { return false; }

    /** Earliest cycle (> the last ticked one) at which a resident
     *  warp wakes by timeout alone; kCycleNever if only events can
     *  change this core's state. Valid after a quiescent tick. */
    virtual Cycle wakeHint() const { return kCycleNever; }

    /** Apply the per-cycle charges of @p n skipped quiescent cycles
     *  following a quiescent tick at @p now. */
    virtual void
    chargeSkipped(Cycle now, Cycle n)
    {
        (void)now;
        (void)n;
    }

    /**
     * Cores may defer the (identical) per-cycle stall charges of a
     * quiescent streak and apply them in one batch. The top level
     * flushes before anything samples live counters mid-run (a
     * telemetry interval boundary) and once after the cycle loop.
     */
    virtual void flushDeferredCharges() {}

    virtual bool canAcceptBlock() const = 0;
    virtual void launchBlock(unsigned global_block_id) = 0;
    /** No resident work left. */
    virtual bool idle() const = 0;

    virtual Mmu &mmu() = 0;
    virtual L1Cache &l1() = 0;
    virtual MemoryStage &memStage() = 0;

    /** Attach an event trace sink to this core's components. */
    virtual void setTraceSink(TraceSink *sink) { (void)sink; }

    /** Attach a translation heat profiler to this core's walker pool
     *  and memory stage (observation-only, may be null). */
    virtual void setHeatProfiler(HeatProfiler *heat) { (void)heat; }

    /** Attach a translation-lifecycle span tracker to this core's
     *  MMU stack and memory stage (observation-only, may be null). */
    virtual void setSpanTracker(SpanTracker *spans) { (void)spans; }

    /**
     * Attach a memory-trace capture writer (observation-only, may be
     * null to detach). Returns false when this core type cannot
     * capture (TBC compacts warps, so recorded warp ids would not
     * replay); detaching always succeeds.
     */
    virtual bool
    setMemTraceWriter(MemTraceWriter *writer)
    {
        return writer == nullptr;
    }

    /** End-of-run bookkeeping before stats are dumped (folds the
     *  per-warp stall ledger into its histograms). */
    virtual void finalizeRun() { stallAccounting().finalize(); }

    /** Per-warp attributed stall-cycle ledger. */
    virtual WarpStallAccounting &stallAccounting() = 0;
    const WarpStallAccounting &
    stallAccounting() const
    {
        return const_cast<ShaderCore *>(this)->stallAccounting();
    }

    virtual std::uint64_t instructionsIssued() const = 0;
    virtual std::uint64_t idleCycles() const = 0;

    virtual void regStats(StatRegistry &reg,
                          const std::string &prefix) = 0;
};

} // namespace gpummu

#endif // GPU_SHADER_CORE_HH
