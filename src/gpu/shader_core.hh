/**
 * @file
 * Abstract shader core, implemented by SimtCore (per-warp stacks) and
 * TbcCore (thread block compaction). GpuTop drives cores through
 * this interface only.
 */

#ifndef GPU_SHADER_CORE_HH
#define GPU_SHADER_CORE_HH

#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "trace/stall_accounting.hh"

namespace gpummu {

class HeatProfiler;
class Mmu;
class L1Cache;
class MemoryStage;
class TraceSink;

class ShaderCore
{
  public:
    virtual ~ShaderCore() = default;

    virtual void tick(Cycle now) = 0;
    virtual bool canAcceptBlock() const = 0;
    virtual void launchBlock(unsigned global_block_id) = 0;
    /** No resident work left. */
    virtual bool idle() const = 0;

    virtual Mmu &mmu() = 0;
    virtual L1Cache &l1() = 0;
    virtual MemoryStage &memStage() = 0;

    /** Attach an event trace sink to this core's components. */
    virtual void setTraceSink(TraceSink *sink) { (void)sink; }

    /** Attach a translation heat profiler to this core's walker pool
     *  and memory stage (observation-only, may be null). */
    virtual void setHeatProfiler(HeatProfiler *heat) { (void)heat; }

    /** End-of-run bookkeeping before stats are dumped (folds the
     *  per-warp stall ledger into its histograms). */
    virtual void finalizeRun() { stallAccounting().finalize(); }

    /** Per-warp attributed stall-cycle ledger. */
    virtual WarpStallAccounting &stallAccounting() = 0;
    const WarpStallAccounting &
    stallAccounting() const
    {
        return const_cast<ShaderCore *>(this)->stallAccounting();
    }

    virtual std::uint64_t instructionsIssued() const = 0;
    virtual std::uint64_t idleCycles() const = 0;

    virtual void regStats(StatRegistry &reg,
                          const std::string &prefix) = 0;
};

} // namespace gpummu

#endif // GPU_SHADER_CORE_HH
