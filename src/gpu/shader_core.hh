/**
 * @file
 * Abstract shader core, implemented by SimtCore (per-warp stacks) and
 * TbcCore (thread block compaction). GpuTop drives cores through
 * this interface only.
 */

#ifndef GPU_SHADER_CORE_HH
#define GPU_SHADER_CORE_HH

#include <cstdint>
#include <string>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

class Mmu;
class L1Cache;
class MemoryStage;

class ShaderCore
{
  public:
    virtual ~ShaderCore() = default;

    virtual void tick(Cycle now) = 0;
    virtual bool canAcceptBlock() const = 0;
    virtual void launchBlock(unsigned global_block_id) = 0;
    /** No resident work left. */
    virtual bool idle() const = 0;

    virtual Mmu &mmu() = 0;
    virtual L1Cache &l1() = 0;
    virtual MemoryStage &memStage() = 0;

    virtual std::uint64_t instructionsIssued() const = 0;
    virtual std::uint64_t idleCycles() const = 0;

    virtual void regStats(StatRegistry &reg,
                          const std::string &prefix) = 0;
};

} // namespace gpummu

#endif // GPU_SHADER_CORE_HH
