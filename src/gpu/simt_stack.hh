/**
 * @file
 * SIMT reconvergence stack.
 *
 * Classic per-warp immediate-post-dominator stack (Fung et al.): on a
 * divergent branch the current entry is rewritten to continue at the
 * reconvergence block and one entry per path is pushed above it. Path
 * entries carry popAt = the reconvergence block; when execution of an
 * entry reaches popAt the entry pops and the path below resumes.
 *
 * TBC reuses the same structure block-wide (one stack per thread
 * block over masks covering all of the block's threads).
 */

#ifndef GPU_SIMT_STACK_HH
#define GPU_SIMT_STACK_HH

#include <cstdint>
#include <vector>

#include "sim/logging.hh"

namespace gpummu {

/** Threads per warp (paper: 32). */
inline constexpr unsigned kWarpWidth = 32;

using LaneMask = std::uint64_t;

inline int
popcount64(LaneMask m)
{
    return __builtin_popcountll(m);
}

struct StackEntry
{
    int block = 0;
    int instIdx = 0;
    LaneMask mask = 0;
    /** Pop when execution reaches this block; -1 never. */
    int popAt = -1;
    /** Block-entry bookkeeping (visit counters) already done. */
    bool entered = false;
};

class SimtStack
{
  public:
    void
    reset(int entry_block, LaneMask mask)
    {
        entries_.clear();
        entries_.push_back(StackEntry{entry_block, 0, mask, -1, false});
    }

    bool empty() const { return entries_.empty(); }
    std::size_t depth() const { return entries_.size(); }

    StackEntry &
    top()
    {
        GPUMMU_ASSERT(!entries_.empty());
        return entries_.back();
    }

    const StackEntry &
    top() const
    {
        GPUMMU_ASSERT(!entries_.empty());
        return entries_.back();
    }

    void push(const StackEntry &e) { entries_.push_back(e); }

    void
    pop()
    {
        GPUMMU_ASSERT(!entries_.empty());
        entries_.pop_back();
    }

    /**
     * Drop entries whose execution has reached their reconvergence
     * point or whose mask emptied. Call before fetching.
     */
    void
    reconverge()
    {
        while (!entries_.empty()) {
            const auto &t = entries_.back();
            if (t.mask == 0 ||
                (t.popAt >= 0 && t.block == t.popAt && t.instIdx == 0)) {
                entries_.pop_back();
            } else {
                break;
            }
        }
    }

    /**
     * Apply a divergent/uniform branch outcome to the top entry.
     *
     * @return true when the branch diverged (both masks non-empty).
     */
    bool
    branch(LaneMask taken_mask, LaneMask fall_mask, int taken_block,
           int fall_block, int reconv_block)
    {
        auto &t = top();
        if (fall_mask == 0) {
            t.block = taken_block;
            t.instIdx = 0;
            t.entered = false;
            return false;
        }
        if (taken_mask == 0) {
            t.block = fall_block;
            t.instIdx = 0;
            t.entered = false;
            return false;
        }
        // Divergence: current entry continues at the reconvergence
        // point with the union mask; one entry per path goes above.
        t.block = reconv_block;
        t.instIdx = 0;
        t.entered = false;
        entries_.push_back(
            StackEntry{fall_block, 0, fall_mask, reconv_block, false});
        entries_.push_back(
            StackEntry{taken_block, 0, taken_mask, reconv_block,
                       false});
        return true;
    }

    /** Remove threads (e.g. exited ones) from every entry. */
    void
    clearLanes(LaneMask lanes)
    {
        for (auto &e : entries_)
            e.mask &= ~lanes;
    }

    const std::vector<StackEntry> &entries() const { return entries_; }

  private:
    std::vector<StackEntry> entries_;
};

} // namespace gpummu

#endif // GPU_SIMT_STACK_HH
