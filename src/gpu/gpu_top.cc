#include "gpu/gpu_top.hh"

#include <algorithm>

#include "gpu/memory_stage.hh"
#include "mem/l1_cache.hh"
#include "mmu/mmu.hh"
#include "sim/logging.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/memtrace.hh"
#include "trace/trace.hh"

namespace gpummu {

void
dumpRunStatsJson(std::ostream &os, const RunStats &s)
{
    os << "{\"cycles\":" << s.cycles
       << ",\"instructions\":" << s.instructions
       << ",\"mem_instructions\":" << s.memInstructions
       << ",\"tlb_accesses\":" << s.tlbAccesses
       << ",\"tlb_hits\":" << s.tlbHits
       << ",\"l1_accesses\":" << s.l1Accesses
       << ",\"l1_hits\":" << s.l1Hits
       << ",\"idle_cycles\":" << s.idleCycles
       << ",\"walk_refs_issued\":" << s.walkRefsIssued
       << ",\"walk_refs_eliminated\":" << s.walkRefsEliminated
       << ",\"walk_l2_accesses\":" << s.walkL2Accesses
       << ",\"walk_l2_hits\":" << s.walkL2Hits
       << ",\"avg_tlb_miss_latency\":" << jsonNum(s.avgTlbMissLatency)
       << ",\"avg_l1_miss_latency\":" << jsonNum(s.avgL1MissLatency)
       << ",\"avg_page_divergence\":" << jsonNum(s.avgPageDivergence)
       << ",\"max_page_divergence\":" << s.maxPageDivergence << "}";
}

GpuTop::GpuTop(unsigned num_cores, const MemorySystemConfig &mem_cfg,
               Workload &workload, CoreFactory factory, bool large_pages,
               std::uint64_t phys_frames)
    : phys_(phys_frames), as_(phys_, large_pages), mem_(mem_cfg),
      workload_(workload)
{
    GPUMMU_ASSERT(num_cores > 0);
    workload_.build(as_);
    workload_.program().validate();

    launch_.program = &workload_.program();
    launch_.threadsPerBlock = workload_.threadsPerBlock();
    launch_.totalBlocks = workload_.numBlocks();
    launch_.seed = workload_.params().seed;
    GPUMMU_ASSERT(launch_.totalBlocks > 0);

    cores_.reserve(num_cores);
    for (unsigned i = 0; i < num_cores; ++i) {
        cores_.push_back(factory(static_cast<int>(i), launch_, as_,
                                 mem_, eq_));
        cores_.back()->regStats(stats_,
                                "core" + std::to_string(i));
    }
    mem_.regStats(stats_, "mem");
}

void
GpuTop::setTraceSink(TraceSink *sink)
{
    if (sink != nullptr)
        sink->bindClock(&eq_);
    mem_.setTraceSink(sink);
    for (auto &core : cores_)
        core->setTraceSink(sink);
}

void
GpuTop::setSpanTracker(SpanTracker *spans)
{
    if (spans != nullptr)
        spans->bindClock(&eq_);
    for (auto &core : cores_)
        core->setSpanTracker(spans);
}

void
GpuTop::setTelemetry(Telemetry *telemetry)
{
    telemetry_ = telemetry;
    if (telemetry_ != nullptr)
        telemetry_->begin(stats_);
    HeatProfiler *heat =
        telemetry_ != nullptr ? &telemetry_->heat() : nullptr;
    for (auto &core : cores_)
        core->setHeatProfiler(heat);
}

bool
GpuTop::setMemTrace(MemTraceWriter *writer)
{
    if (writer == nullptr) {
        for (auto &core : cores_)
            core->setMemTraceWriter(nullptr);
        return true;
    }
    // Arm every core first; if any core type cannot capture (TBC),
    // disarm the rest — a half-armed trace would not replay.
    for (auto &core : cores_) {
        if (!core->setMemTraceWriter(writer)) {
            for (auto &c : cores_)
                c->setMemTraceWriter(nullptr);
            return false;
        }
    }
    MemTraceMeta meta;
    meta.bench = workload_.name();
    meta.numCores = static_cast<unsigned>(cores_.size());
    meta.seed = launch_.seed;
    meta.scale = workload_.params().scale;
    meta.threadsPerBlock = launch_.threadsPerBlock;
    meta.numBlocks = launch_.totalBlocks;
    meta.largePages = as_.usesLargePages();
    std::vector<MemTraceRegion> regions;
    for (const VmRegion &r : as_.regions())
        regions.push_back(MemTraceRegion{r.name, r.bytes});
    if (!writer->beginRun(meta, regions, *launch_.program)) {
        for (auto &core : cores_)
            core->setMemTraceWriter(nullptr);
        return false;
    }
    return true;
}

bool
GpuTop::dispatchBlocks()
{
    // Breadth-first: one block per core per round, so occupancy
    // spreads across the machine the way GPGPU-Sim dispatches.
    bool placed_any = false;
    bool placed = true;
    while (placed && nextBlock_ < launch_.totalBlocks) {
        placed = false;
        for (auto &core : cores_) {
            if (nextBlock_ >= launch_.totalBlocks)
                break;
            if (core->canAcceptBlock()) {
                core->launchBlock(nextBlock_++);
                placed = true;
                placed_any = true;
            }
        }
    }
    return placed_any;
}

RunStats
GpuTop::run(Cycle max_cycles)
{
    dispatchBlocks();

    Cycle cycle = 0;
    std::uint64_t fast_forwarded = 0;
    while (true) {
        eq_.runUntil(cycle);
        bool all_idle = true;
        bool all_quiescent = true;
        Cycle wake = kCycleNever;
        for (auto &core : cores_) {
            core->tick(cycle);
            all_idle = all_idle && core->idle();
            all_quiescent =
                all_quiescent && core->lastTickQuiescent();
            wake = std::min(wake, core->wakeHint());
        }
        const bool placed = dispatchBlocks();
        if (all_idle && nextBlock_ >= launch_.totalBlocks &&
            eq_.empty()) {
            break;
        }
        if (telemetry_ != nullptr) {
            // An interval boundary samples live counters: apply any
            // deferred quiescent-streak charges first so the sampled
            // values match the per-cycle loop exactly.
            if (cycle + 1 >= telemetry_->nextBoundary()) {
                for (auto &core : cores_)
                    core->flushDeferredCharges();
            }
            telemetry_->tick(cycle);
        }

        // Fast-forward through quiescent windows: every core's tick
        // was a pure re-chargeable stall scan, so nothing can happen
        // before the next event fires or the earliest readyAt
        // elapses. Jump there, batch-charging the identical per-cycle
        // attribution for the skipped span. Telemetry caps the jump
        // at its next interval boundary so sampled counters see every
        // charge in order. Bit-exact with the per-cycle loop.
        if (all_quiescent && !placed) {
            Cycle target = std::min(eq_.nextEventCycle(), wake);
            if (telemetry_ != nullptr) {
                const Cycle nb = telemetry_->nextBoundary();
                target = nb == 0 ? cycle : std::min(target, nb - 1);
            }
            if (target != kCycleNever && target > cycle + 1) {
                const Cycle n = target - (cycle + 1);
                for (auto &core : cores_)
                    core->chargeSkipped(cycle, n);
                cycle += n;
                fast_forwarded += n;
            }
        }
        ++cycle;
        if (cycle > max_cycles) {
            GPUMMU_FATAL("simulation exceeded ", max_cycles,
                         " cycles; deadlock or undersized budget");
        }
    }

    // Settle any deferred quiescent-streak charges before anything
    // below reads counters or folds ledgers.
    for (auto &core : cores_)
        core->flushDeferredCharges();

    // Armed runs verify the drain invariants here: all blocking MMU
    // state (outstanding walks, drain waiters, queued batches) must
    // be gone once every core is idle, and every surviving TLB entry
    // must still match its reference walk. endKernel() also clears
    // transient walker state (stale port reservations) so a
    // follow-on kernel would start from a clean pipeline.
    for (auto &core : cores_)
        core->mmu().endKernel();

    // Fold the per-warp stall ledgers into their stalls.* histograms
    // before anyone dumps the registry.
    for (auto &core : cores_)
        core->finalizeRun();

    // Telemetry closes its tail interval and snapshots the stall
    // totals only after the ledgers above are folded.
    if (telemetry_ != nullptr)
        telemetry_->finish(cycle, stats_);

    RunStats out;
    out.cycles = cycle;
    out.eventsFired = eq_.eventsFired();
    out.cyclesFastForwarded = fast_forwarded;
    double tlb_lat_sum = 0.0;
    std::uint64_t tlb_lat_n = 0;
    double l1_lat_sum = 0.0;
    std::uint64_t l1_lat_n = 0;
    double pdiv_sum = 0.0;
    std::uint64_t pdiv_n = 0;
    for (auto &core : cores_) {
        out.instructions += core->instructionsIssued();
        out.memInstructions += core->memStage().memInstructions();
        out.tlbAccesses += core->mmu().tlb().accesses();
        out.tlbHits += core->mmu().tlb().hits();
        out.l1Accesses += core->l1().accesses();
        out.l1Hits += core->l1().hits();
        out.idleCycles += core->idleCycles();
        out.walkRefsIssued += core->mmu().walkers().refsIssued();
        out.walkRefsEliminated +=
            core->mmu().walkers().refsEliminated();

        const auto &tl = core->mmu().missLatency();
        tlb_lat_sum += static_cast<double>(tl.sum());
        tlb_lat_n += tl.count();
        const auto &cl = core->l1().missLatency();
        l1_lat_sum += static_cast<double>(cl.sum());
        l1_lat_n += cl.count();
        const auto &pd = core->memStage().pageDivergence();
        pdiv_sum += static_cast<double>(pd.sum());
        pdiv_n += pd.count();
        out.maxPageDivergence =
            std::max(out.maxPageDivergence, pd.max());
    }
    out.avgTlbMissLatency =
        tlb_lat_n ? tlb_lat_sum / static_cast<double>(tlb_lat_n) : 0.0;
    out.avgL1MissLatency =
        l1_lat_n ? l1_lat_sum / static_cast<double>(l1_lat_n) : 0.0;
    out.avgPageDivergence =
        pdiv_n ? pdiv_sum / static_cast<double>(pdiv_n) : 0.0;
    out.walkL2Accesses = mem_.walkAccesses();
    out.walkL2Hits = mem_.walkL2Hits();
    return out;
}

} // namespace gpummu
