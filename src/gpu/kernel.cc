#include "gpu/kernel.hh"

namespace gpummu {

void
KernelProgram::validate() const
{
    GPUMMU_ASSERT(!blocks_.empty(), "kernel ", name_, " has no blocks");
    for (const auto &bb : blocks_) {
        GPUMMU_ASSERT(!bb.instrs.empty(), "kernel ", name_, " block ",
                      bb.id, " is empty");
        for (std::size_t i = 0; i < bb.instrs.size(); ++i) {
            const auto &in = bb.instrs[i];
            const bool terminator =
                in.op == Opcode::Branch || in.op == Opcode::Exit;
            if (i + 1 < bb.instrs.size()) {
                GPUMMU_ASSERT(!terminator, "kernel ", name_, " block ",
                              bb.id, " has code after a terminator");
            } else {
                GPUMMU_ASSERT(terminator, "kernel ", name_, " block ",
                              bb.id, " does not end in branch/exit");
            }
            if (in.op == Opcode::Branch) {
                const int n = static_cast<int>(blocks_.size());
                GPUMMU_ASSERT(in.takenBlock >= 0 && in.takenBlock < n,
                              "bad taken target in ", name_);
                GPUMMU_ASSERT(in.condGen < 0 ||
                                  (in.fallBlock >= 0 && in.fallBlock < n),
                              "bad fall target in ", name_);
                GPUMMU_ASSERT(in.condGen < 0 ||
                                  (in.reconvBlock >= 0 &&
                                   in.reconvBlock < n),
                              "conditional branch without reconvergence "
                              "block in ", name_);
            }
            if (in.op == Opcode::Load || in.op == Opcode::Store) {
                GPUMMU_ASSERT(in.addrGen >= 0 &&
                                  in.addrGen <
                                      static_cast<int>(addrGens_.size()),
                              "bad addrGen in ", name_);
            }
        }
    }
}

} // namespace gpummu
