/**
 * @file
 * Kernel intermediate representation.
 *
 * Workloads describe their GPU kernels as small structured control
 * flow graphs of basic blocks. Instructions are templates: memory
 * operations carry an address-generator id and branches a condition-
 * generator id, both evaluated per thread against its ThreadCtx. This
 * keeps the six benchmark models compact while giving the simulator
 * real per-thread address streams and divergent control flow.
 *
 * Control flow is structured: every branch names its reconvergence
 * block explicitly (the immediate post-dominator), which both the
 * per-warp SIMT stacks and TBC's block-wide stacks consume directly.
 */

#ifndef GPU_KERNEL_HH
#define GPU_KERNEL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace gpummu {

class ThreadCtx;

enum class Opcode
{
    Alu,    ///< generic compute, no memory traffic
    Load,   ///< global load through TLB + L1
    Store,  ///< global store (write-through)
    Branch, ///< conditional or unconditional control transfer
    Exit,   ///< thread terminates
};

struct Instruction
{
    Opcode op = Opcode::Alu;
    /** Memory ops: index into KernelProgram's address generators. */
    int addrGen = -1;
    /** Branches: condition generator; -1 means always taken. */
    int condGen = -1;
    int takenBlock = -1;
    int fallBlock = -1;
    /** Branches: immediate post-dominator where paths re-join. */
    int reconvBlock = -1;
};

struct BasicBlock
{
    int id = -1;
    std::vector<Instruction> instrs;
};

/** Per-thread evaluation context handed to generators. */
class ThreadCtx
{
  public:
    ThreadCtx() = default;
    ThreadCtx(int global_tid, int block_id, int tid_in_block,
              unsigned warp_width, std::uint64_t seed)
        : globalTid(global_tid), blockId(block_id),
          tidInBlock(tid_in_block),
          laneId(tid_in_block % static_cast<int>(warp_width)),
          warpInBlock(tid_in_block / static_cast<int>(warp_width)),
          rng(splitMix64(seed ^ (static_cast<std::uint64_t>(global_tid)
                                 * 0x9e3779b97f4a7c15ULL)))
    {
    }

    int globalTid = 0;
    int blockId = 0;
    int tidInBlock = 0;
    int laneId = 0;
    int warpInBlock = 0;

    /** Times each basic block has been entered by this thread. */
    std::vector<std::uint32_t> blockVisits;

    /** Private deterministic random stream. */
    Rng rng;

    /**
     * Per-generator sticky-page state (a thread walking a node list
     * or chain stays on one page for several consecutive accesses).
     * Indexed by the generator's salt modulo the array size.
     */
    struct Sticky
    {
        std::uint64_t page = ~0ULL;
        unsigned left = 0;
    };
    std::array<Sticky, 8> sticky{};

    std::uint32_t
    visits(int block) const
    {
        return block < static_cast<int>(blockVisits.size())
                   ? blockVisits[static_cast<std::size_t>(block)]
                   : 0;
    }
};

class KernelProgram
{
  public:
    using AddrGen = std::function<VirtAddr(ThreadCtx &)>;
    using CondGen = std::function<bool(ThreadCtx &)>;

    explicit KernelProgram(std::string name) : name_(std::move(name)) {}

    /** Create a new empty basic block and return its id. */
    int
    addBlock()
    {
        const int id = static_cast<int>(blocks_.size());
        blocks_.push_back(BasicBlock{id, {}});
        return id;
    }

    int
    addAddrGen(AddrGen gen)
    {
        addrGens_.push_back(std::move(gen));
        return static_cast<int>(addrGens_.size()) - 1;
    }

    int
    addCondGen(CondGen gen)
    {
        condGens_.push_back(std::move(gen));
        return static_cast<int>(condGens_.size()) - 1;
    }

    void
    appendAlu(int block, unsigned count = 1)
    {
        for (unsigned i = 0; i < count; ++i)
            blockAt(block).instrs.push_back(Instruction{});
    }

    void
    appendLoad(int block, int addr_gen)
    {
        Instruction in;
        in.op = Opcode::Load;
        in.addrGen = addr_gen;
        blockAt(block).instrs.push_back(in);
    }

    void
    appendStore(int block, int addr_gen)
    {
        Instruction in;
        in.op = Opcode::Store;
        in.addrGen = addr_gen;
        blockAt(block).instrs.push_back(in);
    }

    /** Conditional branch; cond_gen -1 means unconditional. */
    void
    appendBranch(int block, int cond_gen, int taken, int fall,
                 int reconv)
    {
        Instruction in;
        in.op = Opcode::Branch;
        in.condGen = cond_gen;
        in.takenBlock = taken;
        in.fallBlock = fall;
        in.reconvBlock = reconv;
        blockAt(block).instrs.push_back(in);
    }

    void
    appendExit(int block)
    {
        Instruction in;
        in.op = Opcode::Exit;
        blockAt(block).instrs.push_back(in);
    }

    const std::string &name() const { return name_; }
    const std::vector<BasicBlock> &blocks() const { return blocks_; }
    std::size_t numBlocks() const { return blocks_.size(); }
    std::size_t numAddrGens() const { return addrGens_.size(); }
    std::size_t numCondGens() const { return condGens_.size(); }

    const BasicBlock &
    block(int id) const
    {
        GPUMMU_ASSERT(id >= 0 &&
                      id < static_cast<int>(blocks_.size()));
        return blocks_[static_cast<std::size_t>(id)];
    }

    VirtAddr
    genAddr(int gen, ThreadCtx &ctx) const
    {
        GPUMMU_ASSERT(gen >= 0 &&
                      gen < static_cast<int>(addrGens_.size()));
        return addrGens_[static_cast<std::size_t>(gen)](ctx);
    }

    bool
    genCond(int gen, ThreadCtx &ctx) const
    {
        if (gen < 0)
            return true;
        GPUMMU_ASSERT(gen < static_cast<int>(condGens_.size()));
        return condGens_[static_cast<std::size_t>(gen)](ctx);
    }

    /**
     * Validate structural invariants: every block ends in a branch or
     * exit, branch targets are in range, and no instruction follows a
     * terminator. Call once after building.
     */
    void validate() const;

  private:
    BasicBlock &
    blockAt(int id)
    {
        GPUMMU_ASSERT(id >= 0 &&
                      id < static_cast<int>(blocks_.size()));
        return blocks_[static_cast<std::size_t>(id)];
    }

    std::string name_;
    std::vector<BasicBlock> blocks_;
    std::vector<AddrGen> addrGens_;
    std::vector<CondGen> condGens_;
};

} // namespace gpummu

#endif // GPU_KERNEL_HH
