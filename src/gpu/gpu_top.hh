/**
 * @file
 * Top-level GPU: address space, shared memory system, shader cores
 * and the cycle loop. Thread blocks are dispatched to cores as slots
 * free up, GPGPU-Sim style.
 */

#ifndef GPU_GPU_TOP_HH
#define GPU_GPU_TOP_HH

#include <functional>
#include <memory>
#include <vector>

#include "gpu/shader_core.hh"
#include "gpu/simt_core.hh"
#include "mem/memory_system.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"
#include "workloads/workload.hh"

namespace gpummu {

class Telemetry;

/** Aggregate results of one simulation. */
struct RunStats
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t memInstructions = 0;
    std::uint64_t tlbAccesses = 0;
    std::uint64_t tlbHits = 0;
    std::uint64_t l1Accesses = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t idleCycles = 0;
    std::uint64_t walkRefsIssued = 0;
    std::uint64_t walkRefsEliminated = 0;
    std::uint64_t walkL2Accesses = 0;
    std::uint64_t walkL2Hits = 0;
    double avgTlbMissLatency = 0.0;
    double avgL1MissLatency = 0.0;
    double avgPageDivergence = 0.0;
    std::uint64_t maxPageDivergence = 0;
    /** Events the run dispatched through its EventQueue. Part of the
     *  determinism contract (replays must match), and the
     *  events-per-second numerator for bench/simbench. Deliberately
     *  not in dumpRunStatsJson: it is a simulator-internals metric,
     *  not a modelled-machine stat, and goldens predate it. */
    std::uint64_t eventsFired = 0;
    /** Cycles the run loop fast-forwarded through quiescent windows
     *  (batch-charged instead of ticked). Deterministic, simulator-
     *  internals only; not in dumpRunStatsJson for the same reason
     *  as eventsFired. */
    std::uint64_t cyclesFastForwarded = 0;

    double
    tlbMissRate() const
    {
        return tlbAccesses
                   ? 1.0 - static_cast<double>(tlbHits) /
                               static_cast<double>(tlbAccesses)
                   : 0.0;
    }

    double
    l1MissRate() const
    {
        return l1Accesses
                   ? 1.0 - static_cast<double>(l1Hits) /
                               static_cast<double>(l1Accesses)
                   : 0.0;
    }

    double
    memInstrFraction() const
    {
        return instructions ? static_cast<double>(memInstructions) /
                                  static_cast<double>(instructions)
                            : 0.0;
    }

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
    }

    /**
     * Field-wise equality; the replay tests assert bit-identity.
     * cyclesFastForwarded is deliberately excluded: armed telemetry
     * caps fast-forward windows at its interval boundaries, so the
     * *amount* skipped legitimately differs between otherwise
     * bit-identical plain and armed runs. Every modelled quantity —
     * including eventsFired — must still match exactly.
     */
    bool
    operator==(const RunStats &o) const
    {
        return cycles == o.cycles && instructions == o.instructions &&
               memInstructions == o.memInstructions &&
               tlbAccesses == o.tlbAccesses && tlbHits == o.tlbHits &&
               l1Accesses == o.l1Accesses && l1Hits == o.l1Hits &&
               idleCycles == o.idleCycles &&
               walkRefsIssued == o.walkRefsIssued &&
               walkRefsEliminated == o.walkRefsEliminated &&
               walkL2Accesses == o.walkL2Accesses &&
               walkL2Hits == o.walkL2Hits &&
               avgTlbMissLatency == o.avgTlbMissLatency &&
               avgL1MissLatency == o.avgL1MissLatency &&
               avgPageDivergence == o.avgPageDivergence &&
               maxPageDivergence == o.maxPageDivergence &&
               eventsFired == o.eventsFired;
    }
};

/**
 * Dump a RunStats as one JSON object with a fixed field order;
 * identical stats produce identical bytes.
 */
void dumpRunStatsJson(std::ostream &os, const RunStats &s);

class GpuTop
{
  public:
    /** Builds one core; lets presets choose SimtCore vs TbcCore and
     *  install schedulers. */
    using CoreFactory = std::function<std::unique_ptr<ShaderCore>(
        int core_id, const LaunchParams &launch, AddressSpace &as,
        MemorySystem &mem, EventQueue &eq)>;

    /**
     * @param num_cores     shader cores (paper: 30)
     * @param mem_cfg       shared memory system parameters
     * @param workload      workload to run (built during construction)
     * @param factory       per-core construction hook
     * @param large_pages   back the address space with 2MB pages
     * @param phys_frames   simulated physical memory size in frames
     */
    GpuTop(unsigned num_cores, const MemorySystemConfig &mem_cfg,
           Workload &workload, CoreFactory factory,
           bool large_pages = false,
           std::uint64_t phys_frames = 16ULL << 20);

    /**
     * Arm event tracing (observation-only): binds the sink to this
     * run's clock and distributes it to every core's TLB, walkers,
     * L1, memory stage and the shared memory system. Call before
     * run(); pass nullptr to detach.
     */
    void setTraceSink(TraceSink *sink);

    /**
     * Arm run telemetry (observation-only): binds the interval
     * sampler to this run's stat registry, distributes the heat
     * profiler to every core's walker pool and memory stage, and
     * makes the cycle loop drive interval boundaries. Call before
     * run(); pass nullptr to detach. run() finalizes the telemetry
     * (tail interval + stall snapshot) before returning.
     */
    void setTelemetry(Telemetry *telemetry);

    /**
     * Arm translation-lifecycle span tracking (observation-only):
     * binds the tracker to this run's clock and distributes it to
     * every core's MMU stack and memory stage. Shared structures
     * outside the cores (L2 TLB, IOMMU) are armed by the experiment
     * harness that owns them. Call before run(); pass nullptr to
     * detach.
     */
    void setSpanTracker(SpanTracker *spans);

    /**
     * Arm memory-trace capture (observation-only): distributes the
     * writer to every core and writes the trace prologue (meta,
     * regions, program skeleton). Call before run(); pass nullptr to
     * detach. Returns false — without arming anything — when a core
     * type cannot capture (TBC) or the prologue write failed.
     */
    bool setMemTrace(MemTraceWriter *writer);

    /**
     * Run the kernel grid to completion.
     * @param max_cycles deadlock guard; fatal when exceeded.
     */
    RunStats run(Cycle max_cycles = 400'000'000);

    StatRegistry &stats() { return stats_; }
    ShaderCore &core(unsigned i) { return *cores_.at(i); }
    unsigned numCores() const { return static_cast<unsigned>(
        cores_.size()); }
    MemorySystem &memorySystem() { return mem_; }
    AddressSpace &addressSpace() { return as_; }
    EventQueue &eventQueue() { return eq_; }

  private:
    /** Place pending blocks; true if any core accepted one. */
    bool dispatchBlocks();

    PhysicalMemory phys_;
    AddressSpace as_;
    EventQueue eq_;
    MemorySystem mem_;
    Workload &workload_;
    LaunchParams launch_;
    std::vector<std::unique_ptr<ShaderCore>> cores_;
    StatRegistry stats_;
    Telemetry *telemetry_ = nullptr;
    unsigned nextBlock_ = 0;
};

} // namespace gpummu

#endif // GPU_GPU_TOP_HH
