#include "gpu/simt_core.hh"

#include <algorithm>

#include "trace/memtrace.hh"
#include "trace/trace.hh"

namespace gpummu {

SimtCore::SimtCore(int core_id, const CoreConfig &cfg,
                   const LaunchParams &launch, AddressSpace &as,
                   MemorySystem &mem, EventQueue &eq)
    : coreId_(core_id), cfg_(cfg), launch_(launch), eq_(eq),
      l1_(cfg.l1, mem), mmu_(cfg.mmu, as, mem, eq),
      memStage_(mmu_, l1_, eq)
{
    GPUMMU_ASSERT(launch.program != nullptr);
    GPUMMU_ASSERT(launch.threadsPerBlock % kWarpWidth == 0,
                  "threadsPerBlock must be a warp multiple");
    warps_.resize(cfg.numWarpSlots);
    blocks_.resize(cfg.numWarpSlots / warpsPerBlock());

    // Default scheduler; presets usually replace it.
    setScheduler(std::make_unique<LooseRoundRobin>(cfg.numWarpSlots));
}

void
SimtCore::setScheduler(std::unique_ptr<WarpScheduler> sched)
{
    sched_ = std::move(sched);
    memStage_.setScheduler(sched_.get());
    // Route cache and TLB victims into the scheduler's VTAs.
    l1_.setEvictionListener([this](PhysAddr line, int warp) {
        if (sched_)
            sched_->onL1Eviction(line, warp);
    });
    mmu_.tlb().setEvictionListener([this](Vpn vpn, int warp) {
        if (sched_)
            sched_->onTlbEviction(vpn, warp);
    });
}

void
SimtCore::setTraceSink(TraceSink *sink)
{
    l1_.setTraceSink(sink, coreId_);
    mmu_.setTraceSink(sink, coreId_);
    memStage_.setTraceSink(sink, coreId_);
}

void
SimtCore::setHeatProfiler(HeatProfiler *heat)
{
    mmu_.setHeatProfiler(heat, coreId_);
    memStage_.setHeatProfiler(heat);
}

void
SimtCore::setSpanTracker(SpanTracker *spans)
{
    mmu_.setSpanTracker(spans, coreId_);
    memStage_.setSpanTracker(spans, coreId_);
}

unsigned
SimtCore::warpsPerBlock() const
{
    return launch_.threadsPerBlock / kWarpWidth;
}

bool
SimtCore::canAcceptBlock() const
{
    unsigned free_slots = 0;
    for (const auto &w : warps_) {
        if (!w.valid)
            ++free_slots;
    }
    if (free_slots < warpsPerBlock())
        return false;
    return std::any_of(blocks_.begin(), blocks_.end(),
                       [](const ResidentBlock &b) { return !b.valid; });
}

void
SimtCore::launchBlock(unsigned global_block_id)
{
    GPUMMU_ASSERT(canAcceptBlock());
    auto blk_it = std::find_if(blocks_.begin(), blocks_.end(),
                               [](const ResidentBlock &b) {
                                   return !b.valid;
                               });
    const int slot = static_cast<int>(blk_it - blocks_.begin());
    ResidentBlock &blk = *blk_it;
    blk.valid = true;
    blk.globalId = global_block_id;
    blk.threadsLive = launch_.threadsPerBlock;
    blk.threads.clear();
    blk.threads.reserve(launch_.threadsPerBlock);
    blk.warpIds.clear();

    const unsigned tpb = launch_.threadsPerBlock;
    for (unsigned t = 0; t < tpb; ++t) {
        ThreadCtx ctx(static_cast<int>(global_block_id * tpb + t),
                      static_cast<int>(global_block_id),
                      static_cast<int>(t), kWarpWidth, launch_.seed);
        ctx.blockVisits.assign(launch_.program->numBlocks(), 0);
        blk.threads.push_back(std::move(ctx));
    }

    const LaneMask full =
        kWarpWidth == 64 ? ~LaneMask(0)
                         : ((LaneMask(1) << kWarpWidth) - 1);
    unsigned assigned = 0;
    for (std::size_t wid = 0;
         wid < warps_.size() && assigned < warpsPerBlock(); ++wid) {
        if (warps_[wid].valid)
            continue;
        Warp &w = warps_[wid];
        w.valid = true;
        w.blockSlot = slot;
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            w.laneThread[lane] =
                static_cast<int>(assigned * kWarpWidth + lane);
        }
        w.stack.reset(0, full);
        w.state = WarpState::Ready;
        w.readyAt = 0;
        blk.warpIds.push_back(static_cast<int>(wid));
        ++assigned;
        ++liveWarps_;
    }
    GPUMMU_ASSERT(assigned == warpsPerBlock());
    ++stateVersion_;
}

const Instruction *
SimtCore::nextInstr(Warp &w)
{
    w.stack.reconverge();
    if (w.stack.empty())
        return nullptr;
    const auto &top = w.stack.top();
    const auto &bb = launch_.program->block(top.block);
    GPUMMU_ASSERT(top.instIdx < static_cast<int>(bb.instrs.size()));
    return &bb.instrs[static_cast<std::size_t>(top.instIdx)];
}

void
SimtCore::noteBlockEntry(Warp &w)
{
    auto &top = w.stack.top();
    if (top.instIdx != 0 || top.entered)
        return;
    top.entered = true;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        if (top.mask & (LaneMask(1) << lane)) {
            auto &ctx = threadAt(w, lane);
            ++ctx.blockVisits[static_cast<std::size_t>(top.block)];
        }
    }
}

void
SimtCore::executeBranch(Warp &w, const Instruction &in)
{
    const auto top = w.stack.top(); // copy: branch() rewrites it
    LaneMask taken = 0;
    LaneMask fall = 0;
    for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
        const LaneMask bit = LaneMask(1) << lane;
        if (!(top.mask & bit))
            continue;
        if (launch_.program->genCond(in.condGen, threadAt(w, lane)))
            taken |= bit;
        else
            fall |= bit;
    }
    branchInstrs_.inc();
    if (memtrace_ != nullptr && in.condGen >= 0) {
        const auto &blk =
            blocks_[static_cast<std::size_t>(w.blockSlot)];
        memtrace_->recordBranch(blk.globalId,
                                threadAt(w, 0).warpInBlock,
                                in.condGen, top.mask, taken);
    }
    if (w.stack.branch(taken, fall, in.takenBlock, in.fallBlock,
                       in.reconvBlock)) {
        divergentBranches_.inc();
    }
}

void
SimtCore::executeExit(int wid, Warp &w)
{
    const LaneMask mask = w.stack.top().mask;
    auto &blk = blocks_[static_cast<std::size_t>(w.blockSlot)];
    const unsigned exiting = static_cast<unsigned>(popcount64(mask));
    GPUMMU_ASSERT(blk.threadsLive >= exiting);
    blk.threadsLive -= exiting;
    w.stack.clearLanes(mask);
    w.stack.reconverge();
    if (w.stack.empty())
        retireWarp(wid, w);
    if (blk.threadsLive == 0) {
        blocksCompleted_.inc();
        blk.valid = false;
    }
}

void
SimtCore::retireWarp(int wid, Warp &w)
{
    GPUMMU_ASSERT(w.valid);
    w.valid = false;
    w.state = WarpState::Invalid;
    GPUMMU_ASSERT(liveWarps_ > 0);
    --liveWarps_;
    if (sched_)
        sched_->onWarpReset(wid);
}

bool
SimtCore::issueWarp(int wid, Cycle now)
{
    Warp &w = warps_[static_cast<std::size_t>(wid)];
    const Instruction *in = nextInstr(w);
    GPUMMU_ASSERT(in != nullptr);
    noteBlockEntry(w);
    // ALU latency and branch pipelining are execution, not stalls.
    w.stallReason = StallReason::None;

    auto &top = w.stack.top();
    switch (in->op) {
      case Opcode::Alu:
        instrs_.inc();
        aluInstrs_.inc();
        ++top.instIdx;
        w.readyAt = now + cfg_.aluLatency;
        return false;

      case Opcode::Branch:
        instrs_.inc();
        executeBranch(w, *in);
        w.readyAt = now + 1;
        return false;

      case Opcode::Exit:
        instrs_.inc();
        executeExit(wid, w);
        return false;

      case Opcode::Load:
      case Opcode::Store: {
        // Generate lane addresses once per dynamic instruction; a
        // hit-under-miss bounce must not re-roll the RNG streams.
        if (!w.hasPendingAddrs) {
            w.pendingAddrs.clear();
            const LaneMask mask = top.mask;
            for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
                if (mask & (LaneMask(1) << lane)) {
                    w.pendingAddrs.push_back(launch_.program->genAddr(
                        in->addrGen, threadAt(w, lane)));
                }
            }
            w.hasPendingAddrs = true;
            if (memtrace_ != nullptr) {
                // Capture at generation time (not per bounce) so the
                // trace holds one record per dynamic instruction.
                const auto &blk =
                    blocks_[static_cast<std::size_t>(w.blockSlot)];
                memtrace_->recordAccess(
                    now, coreId_, blk.globalId,
                    threadAt(w, 0).warpInBlock,
                    in->op == Opcode::Store, top.mask,
                    w.pendingAddrs);
            }
        }
        const bool is_store = in->op == Opcode::Store;
        w.state = WarpState::WaitingMem;
        auto result = memStage_.issue(
            wid, is_store, w.pendingAddrs, now,
            [this, wid](Cycle ready) {
                Warp &ww = warps_[static_cast<std::size_t>(wid)];
                ww.state = WarpState::Ready;
                ww.readyAt = ready;
                ++stateVersion_;
            });
        if (result == MemIssueResult::BlockedTlbBusy) {
            // Swapped out: retry this instruction after the MMU
            // drains. The PC was not advanced.
            w.state = WarpState::WaitingTlbDrain;
            w.stallReason = StallReason::WalkerStructural;
            mmu_.onDrain([this, wid]() {
                Warp &ww = warps_[static_cast<std::size_t>(wid)];
                if (ww.state == WarpState::WaitingTlbDrain) {
                    ww.state = WarpState::Ready;
                    ww.readyAt = eq_.now() + 1;
                    ++stateVersion_;
                }
            });
            return true;
        }
        instrs_.inc();
        w.hasPendingAddrs = false;
        ++w.stack.top().instIdx;
        // Whether the completion already fired (all-hit, readyAt in
        // the future) or is pending (miss path, WaitingMem), the wait
        // ahead is charged to the instruction's dominant cause.
        w.stallReason = memStage_.lastIssueReason();
        return true;
      }
    }
    GPUMMU_PANIC("unhandled opcode");
}

void
SimtCore::tick(Cycle now)
{
    quiescent_ = false;
    wakeHint_ = kCycleNever;
    if (liveWarps_ == 0) {
        // Nothing resident: ticking is a no-op (the scheduler is not
        // consulted on this path either), so repeats are free.
        quiescent_ = true;
        return;
    }

    const bool mem_available = mmu_.memAvailable();
    const bool miss_out = mmu_.missOutstanding();
    if (memoValid_ && stateVersion_ == memoVersion_ &&
        mem_available == memoMemAvail_ && miss_out == memoMissOut_ &&
        now < wakeAt_) {
        // Nothing the last quiescent scan depended on has changed:
        // this cycle charges exactly the same cells. Defer it.
        ++pendingRepeat_;
        quiescent_ = true;
        wakeHint_ = wakeAt_;
        return;
    }
    flushDeferredCharges();
    memoValid_ = false;
    chargeProgram_.clear();
    wakeAt_ = kCycleNever;

    sched_->tick(now);
    bool retired = false;

    // Collect issueable warps. Memory warps are filtered by the
    // blocking policy and the scheduler's throttle. Every resident
    // warp that cannot issue this cycle has the cycle charged to at
    // most one stall cause (ALU latency and the scheduler's own
    // throttle stay unattributed, which keeps per-warp totals below
    // the run's cycle count).
    std::vector<int> &issuable = issuableScratch_;
    issuable.clear();
    bool any_ready_mem_blocked = false;
    for (std::size_t wid = 0; wid < warps_.size(); ++wid) {
        Warp &w = warps_[wid];
        if (!w.valid)
            continue;
        const int iw = static_cast<int>(wid);
        if (w.state == WarpState::WaitingMem) {
            stalls_.attribute(iw, w.stallReason);
            chargeProgram_.push_back({iw, w.stallReason});
            continue;
        }
        if (w.state == WarpState::WaitingTlbDrain) {
            stalls_.attribute(iw, StallReason::WalkerStructural);
            chargeProgram_.push_back(
                {iw, StallReason::WalkerStructural});
            continue;
        }
        if (w.state != WarpState::Ready)
            continue;
        if (w.readyAt > now) {
            stalls_.attribute(iw, w.stallReason);
            chargeProgram_.push_back({iw, w.stallReason});
            wakeHint_ = std::min(wakeHint_, w.readyAt);
            continue;
        }
        const Instruction *in = nextInstr(w);
        if (in == nullptr) {
            retireWarp(iw, w);
            retired = true;
            continue;
        }
        const bool is_mem =
            in->op == Opcode::Load || in->op == Opcode::Store;
        if (is_mem) {
            if (!mem_available) {
                // The blocking TLB's gate: walks are outstanding.
                any_ready_mem_blocked = true;
                stalls_.attribute(iw, StallReason::TlbMiss);
                chargeProgram_.push_back({iw, StallReason::TlbMiss});
                continue;
            }
            if (!sched_->mayIssueMem(iw)) {
                any_ready_mem_blocked = true;
                continue;
            }
        }
        issuable.push_back(iw);
    }

    const bool scan_empty = issuable.empty();

    unsigned issued = 0;
    bool mem_issued = false;
    while (issued < cfg_.issueWidth && !issuable.empty()) {
        const int wid = sched_->pick(now, issuable);
        if (wid < 0)
            break;
        issuable.erase(std::remove(issuable.begin(), issuable.end(),
                                   wid),
                       issuable.end());
        Warp &w = warps_[static_cast<std::size_t>(wid)];
        const Instruction *in = nextInstr(w);
        if (in == nullptr) {
            retireWarp(wid, w);
            retired = true;
            continue;
        }
        const bool is_mem =
            in->op == Opcode::Load || in->op == Opcode::Store;
        if (is_mem && mem_issued)
            continue; // one LSU: try another warp this cycle
        if (issueWarp(wid, now))
            mem_issued = true;
        ++issued;
    }

    if (issued == 0 && liveWarps_ > 0) {
        idleCycles_.inc();
        if (mmu_.missOutstanding())
            tlbIdleCycles_.inc();
        if (any_ready_mem_blocked)
            memBlockedCycles_.inc();
    }

    // A quiescent tick only charged attribution: nothing issued or
    // retired and the scan produced no issuable warp, so pick() was
    // never consulted. With a pure scheduler, re-running it is
    // side-effect-free until an event fires, a readyAt elapses or a
    // warp-state mutation bumps stateVersion_ — so memoize it.
    quiescent_ = issued == 0 && !retired && scan_empty &&
                 sched_->tickIsPure();
    if (quiescent_) {
        memoValid_ = true;
        memoVersion_ = stateVersion_;
        memoMemAvail_ = mem_available;
        memoMissOut_ = miss_out;
        wakeAt_ = wakeHint_;
        chargeTlbIdle_ = miss_out;
        chargeMemBlocked_ = any_ready_mem_blocked;
    }
}

void
SimtCore::chargeSkipped(Cycle now, Cycle n)
{
    (void)now;
    if (liveWarps_ == 0)
        return;
    // GpuTop only calls this right after a quiescent tick, whose
    // memoized charge program is exactly what every skipped cycle
    // would have charged. Defer: flushDeferredCharges() multiplies.
    GPUMMU_ASSERT(memoValid_);
    pendingRepeat_ += n;
}

void
SimtCore::flushDeferredCharges()
{
    if (pendingRepeat_ == 0)
        return;
    const Cycle n = pendingRepeat_;
    pendingRepeat_ = 0;
    for (const ChargeEntry &e : chargeProgram_)
        stalls_.attribute(e.warp, e.reason, n);
    // A quiescent tick with resident warps always counts idle.
    idleCycles_.inc(n);
    if (chargeTlbIdle_)
        tlbIdleCycles_.inc(n);
    if (chargeMemBlocked_)
        memBlockedCycles_.inc(n);
}

void
SimtCore::regStats(StatRegistry &reg, const std::string &prefix)
{
    l1_.regStats(reg, prefix + ".l1");
    mmu_.regStats(reg, prefix + ".mmu");
    memStage_.regStats(reg, prefix + ".mem");
    if (sched_)
        sched_->regStats(reg, prefix + ".sched");
    reg.addCounter(prefix + ".instrs", &instrs_);
    reg.addCounter(prefix + ".alu_instrs", &aluInstrs_);
    reg.addCounter(prefix + ".branch_instrs", &branchInstrs_);
    reg.addCounter(prefix + ".divergent_branches", &divergentBranches_);
    reg.addCounter(prefix + ".idle_cycles", &idleCycles_);
    reg.addCounter(prefix + ".tlb_idle_cycles", &tlbIdleCycles_);
    reg.addCounter(prefix + ".blocks_completed", &blocksCompleted_);
    reg.addCounter(prefix + ".mem_blocked_cycles", &memBlockedCycles_);
    stalls_.regStats(reg, prefix);
}

} // namespace gpummu
