/**
 * @file
 * Shader core memory stage (Fig. 5 of the paper).
 *
 * Drives one warp memory instruction through: address generation
 * (done by the caller), coalescing into unique lines + unique PTEs,
 * parallel TLB / L1 presentation, walk initiation on misses, and the
 * paper's non-blocking policies:
 *
 *  - blocking TLB: the core gates issue on Mmu::memAvailable();
 *  - hit-under-miss: all-hit warps proceed during outstanding walks,
 *    would-miss warps are bounced (BlockedTlbBusy) and must retry
 *    after the MMU drains (no miss-under-miss);
 *  - overlapped cache access: the missing warp's TLB-hitting lines
 *    access the L1 immediately; lines under missing pages go as each
 *    walk finishes.
 *
 * The stage is shared by the per-warp-stack core and the TBC core.
 */

#ifndef GPU_MEMORY_STAGE_HH
#define GPU_MEMORY_STAGE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/coalescer.hh"
#include "mem/l1_cache.hh"
#include "mmu/iommu.hh"
#include "mmu/mmu.hh"
#include "sched/warp_scheduler.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "trace/stall_accounting.hh"

namespace gpummu {

class HeatProfiler;
class SpanTracker;
class TraceSink;

enum class MemIssueResult
{
    Issued,        ///< op accepted; completion callback will fire
    BlockedTlbBusy ///< would miss under a miss; retry after drain
};

class MemoryStage
{
  public:
    /** Fires exactly once with the warp's resume cycle. */
    using CompleteFn = std::function<void(Cycle)>;
    /** TLB-hit hook carrying the entry's warp history (for the CPM). */
    using TlbHitHistoryFn =
        std::function<void(int warp, Vpn vpn,
                           const std::array<int, 4> &history,
                           unsigned used)>;

    MemoryStage(Mmu &mmu, L1Cache &l1, EventQueue &eq);

    /** The scheduler receiving cache/TLB feedback (may be null). */
    void setScheduler(WarpScheduler *sched) { sched_ = sched; }

    /**
     * Switch to IOMMU mode (Section 2.2 baseline): the L1 is
     * virtually addressed and translation happens at the shared
     * memory-controller IOMMU on the L1-miss path. Requires the
     * per-core MMU to be disabled.
     */
    void setIommu(Iommu *iommu) { iommu_ = iommu; }

    /**
     * Owning process of this core's current kernel (multi-tenant
     * IOMMU runs). Composed into the virtual L1 line ids and the
     * IOMMU translate keys so co-scheduled tenants with overlapping
     * VAs cannot alias; 0 (default) is the identity.
     */
    void setAsid(Asid asid) { asid_ = asid; }

    /** Optional CPM hook for TLB-aware TBC. */
    void
    setTlbHitHistoryHook(TlbHitHistoryFn fn)
    {
        onTlbHitHistory_ = std::move(fn);
    }

    /**
     * Issue one warp memory instruction.
     *
     * @param warp_id    hardware warp slot
     * @param is_store   store (translation blocks, data does not)
     * @param lane_addrs virtual addresses of the active lanes
     * @param now        issue cycle
     * @param complete   resume callback (sync or async)
     */
    MemIssueResult issue(int warp_id, bool is_store,
                         const std::vector<VirtAddr> &lane_addrs,
                         Cycle now, CompleteFn complete);

    void regStats(StatRegistry &reg, const std::string &prefix);

    /** Attach an event trace sink; @p tid labels this core. */
    void
    setTraceSink(TraceSink *sink, int tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

    /** Attach a translation heat profiler (feeds its per-interval
     *  page-divergence series). */
    void setHeatProfiler(HeatProfiler *heat) { heat_ = heat; }

    /**
     * Attach a translation-lifecycle span tracker (observation-only).
     * Only the IOMMU path uses it here: the span for each missing
     * page opens when its translate request departs this core for the
     * memory controller (MMU-path spans open inside the L1 TLB).
     */
    void
    setSpanTracker(SpanTracker *spans, int tid)
    {
        spans_ = spans;
        spanTid_ = tid;
    }

    /**
     * Dominant stall cause of the most recently issued instruction
     * (valid right after issue() returns Issued). The core snapshots
     * it to attribute the warp's subsequent wait cycles.
     */
    StallReason lastIssueReason() const { return lastIssueReason_; }

    const Histogram &pageDivergence() const { return pageDivergence_; }
    std::uint64_t memInstructions() const { return memInstrs_.value(); }
    std::uint64_t tlbBusyBounces() const { return tlbBounces_.value(); }

  private:
    /**
     * Miss-path state of one in-flight warp memory instruction,
     * shared by the walk-completion callbacks. Arena-pooled behind
     * ArenaRc handles (the old make_shared churn was one control
     * block per missing instruction).
     */
    struct WalkPending
    {
        std::size_t remainingWalks = 0;
        Cycle ready = 0;
        Cycle lastWalkDone = 0;
        bool isStore = false;
        bool overlap = false;
        int warpId = -1;
        bool tlbMissedInstr = true;
        /** vlines to replay per missing vpn (and, without overlap,
         *  the already-hit groups too, frame resolved eagerly). */
        std::vector<
            std::pair<std::uint64_t, std::vector<std::uint64_t>>>
            deferredByFrame;
        std::vector<std::pair<Vpn, std::vector<std::uint64_t>>>
            deferredByVpn;
        CompleteFn complete;
    };

    /** IOMMU-path equivalent of WalkPending. */
    struct IommuPending
    {
        std::size_t remaining = 0;
        Cycle ready = 0;
        CompleteFn complete;
    };

    /** Access one physical line, absorbing MSHR-full retries. */
    Cycle accessLine(PhysAddr pline, bool is_store, Cycle at,
                     int warp_id, bool tlb_missed_instr);

    /** IOMMU-mode issue path (virtually addressed caches). */
    MemIssueResult issueIommu(int warp_id, bool is_store,
                              const CoalescedAccess &acc, Cycle now,
                              CompleteFn complete);

    /** Fold one access outcome into the instruction's stall cause. */
    void noteOutcome(const AccessOutcome &out, bool is_store);

    Mmu &mmu_;
    L1Cache &l1_;
    EventQueue &eq_;
    WarpScheduler *sched_ = nullptr;
    Iommu *iommu_ = nullptr;
    TlbHitHistoryFn onTlbHitHistory_;
    TraceSink *trace_ = nullptr;
    int traceTid_ = 0;
    HeatProfiler *heat_ = nullptr;
    SpanTracker *spans_ = nullptr;
    int spanTid_ = 0;
    StallReason lastIssueReason_ = StallReason::None;
    Asid asid_ = 0;

    /** Pools for the pending descriptors above. Walk callbacks held
     *  by the Mmu/walkers carry ArenaRc handles into these; a
     *  teardown with walks still in flight panics in ~Arena rather
     *  than dangling. */
    Arena<WalkPending> walkArena_;
    Arena<IommuPending> iommuArena_;

    /**
     * issue() scratch, reused across instructions so the per-issue
     * path performs no allocation. Safe because issue() is never
     * re-entered: completion callbacks only mark warps ready, and
     * cores issue from tick(). Anything that outlives the call
     * (deferred replay lines) is copied into the pending descriptor.
     */
    CoalescedAccess accScratch_;
    std::vector<std::vector<std::uint64_t>> spareLines_;
    Mmu::BatchResult batchScratch_;
    std::vector<Vpn> vpnScratch_;
    std::vector<Vpn> missVpnScratch_;
    std::vector<Vpn> iommuMissScratch_;

    Counter memInstrs_;
    Counter tlbBounces_;
    Counter instrsWithTlbMiss_;
    Histogram pageDivergence_;
    Histogram linesPerInstr_;
};

} // namespace gpummu

#endif // GPU_MEMORY_STAGE_HH
