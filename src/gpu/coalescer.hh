/**
 * @file
 * Memory access coalescer.
 *
 * The address generator's lane addresses are reduced to (1) unique
 * cache-line references and (2) unique page (PTE) references, exactly
 * the two sets the paper presents in parallel to the L1 and the TLB.
 * The per-page grouping of lines is kept so that overlapped cache
 * access can release a page's lines as soon as its walk finishes.
 */

#ifndef GPU_COALESCER_HH
#define GPU_COALESCER_HH

#include <algorithm>
#include <vector>

#include "sim/types.hh"

namespace gpummu {

struct CoalescedAccess
{
    struct PageGroup
    {
        Vpn vpn;
        /** Unique virtual line addresses (byte addr >> line shift). */
        std::vector<std::uint64_t> vlines;
    };

    std::vector<PageGroup> pages;
    std::size_t totalLines = 0;

    /** Page divergence: distinct translations the warp needs. */
    std::size_t pageDivergence() const { return pages.size(); }
};

/**
 * Coalesce lane addresses. @p line_shift is the cache line shift and
 * @p page_shift the translation granularity (12 or 21).
 */
inline CoalescedAccess
coalesce(const std::vector<VirtAddr> &lane_addrs, unsigned line_shift,
         unsigned page_shift)
{
    CoalescedAccess out;
    for (VirtAddr va : lane_addrs) {
        const Vpn vpn = va >> page_shift;
        const std::uint64_t vline = va >> line_shift;
        auto pg = std::find_if(out.pages.begin(), out.pages.end(),
                               [vpn](const auto &p) {
                                   return p.vpn == vpn;
                               });
        if (pg == out.pages.end()) {
            out.pages.push_back({vpn, {vline}});
            ++out.totalLines;
            continue;
        }
        auto &lines = pg->vlines;
        if (std::find(lines.begin(), lines.end(), vline) ==
            lines.end()) {
            lines.push_back(vline);
            ++out.totalLines;
        }
    }
    return out;
}

} // namespace gpummu

#endif // GPU_COALESCER_HH
