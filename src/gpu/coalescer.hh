/**
 * @file
 * Memory access coalescer.
 *
 * The address generator's lane addresses are reduced to (1) unique
 * cache-line references and (2) unique page (PTE) references, exactly
 * the two sets the paper presents in parallel to the L1 and the TLB.
 * The per-page grouping of lines is kept so that overlapped cache
 * access can release a page's lines as soon as its walk finishes.
 */

#ifndef GPU_COALESCER_HH
#define GPU_COALESCER_HH

#include <algorithm>
#include <vector>

#include "sim/types.hh"

namespace gpummu {

struct CoalescedAccess
{
    struct PageGroup
    {
        Vpn vpn;
        /** Unique virtual line addresses (byte addr >> line shift). */
        std::vector<std::uint64_t> vlines;
    };

    std::vector<PageGroup> pages;
    std::size_t totalLines = 0;

    /** Page divergence: distinct translations the warp needs. */
    std::size_t pageDivergence() const { return pages.size(); }
};

/**
 * Allocation-free coalescing into a reused @p out. Retired page
 * groups donate their line buffers to @p spare_lines, from where new
 * groups reclaim them, so a warm steady state performs no heap
 * traffic at all. The memory stage calls this once per memory
 * instruction with member scratch; results are identical to
 * coalesce().
 */
inline void
coalesceInto(CoalescedAccess &out,
             std::vector<std::vector<std::uint64_t>> &spare_lines,
             const std::vector<VirtAddr> &lane_addrs,
             unsigned line_shift, unsigned page_shift)
{
    for (auto &pg : out.pages) {
        pg.vlines.clear();
        spare_lines.push_back(std::move(pg.vlines));
    }
    out.pages.clear();
    out.totalLines = 0;
    for (VirtAddr va : lane_addrs) {
        const Vpn vpn = va >> page_shift;
        const std::uint64_t vline = va >> line_shift;
        auto pg = std::find_if(out.pages.begin(), out.pages.end(),
                               [vpn](const auto &p) {
                                   return p.vpn == vpn;
                               });
        if (pg == out.pages.end()) {
            CoalescedAccess::PageGroup g;
            g.vpn = vpn;
            if (!spare_lines.empty()) {
                g.vlines = std::move(spare_lines.back());
                spare_lines.pop_back();
            }
            g.vlines.push_back(vline);
            out.pages.push_back(std::move(g));
            ++out.totalLines;
            continue;
        }
        auto &lines = pg->vlines;
        if (std::find(lines.begin(), lines.end(), vline) ==
            lines.end()) {
            lines.push_back(vline);
            ++out.totalLines;
        }
    }
}

/**
 * Coalesce lane addresses. @p line_shift is the cache line shift and
 * @p page_shift the translation granularity (12 or 21).
 */
inline CoalescedAccess
coalesce(const std::vector<VirtAddr> &lane_addrs, unsigned line_shift,
         unsigned page_shift)
{
    CoalescedAccess out;
    for (VirtAddr va : lane_addrs) {
        const Vpn vpn = va >> page_shift;
        const std::uint64_t vline = va >> line_shift;
        auto pg = std::find_if(out.pages.begin(), out.pages.end(),
                               [vpn](const auto &p) {
                                   return p.vpn == vpn;
                               });
        if (pg == out.pages.end()) {
            out.pages.push_back({vpn, {vline}});
            ++out.totalLines;
            continue;
        }
        auto &lines = pg->vlines;
        if (std::find(lines.begin(), lines.end(), vline) ==
            lines.end()) {
            lines.push_back(vline);
            ++out.totalLines;
        }
    }
    return out;
}

} // namespace gpummu

#endif // GPU_COALESCER_HH
