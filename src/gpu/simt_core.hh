/**
 * @file
 * Shader core with per-warp SIMT reconvergence stacks.
 *
 * Models one of the paper's 30 SIMT cores: 48 warp slots of 32
 * threads, an in-order issue stage driven by a pluggable warp
 * scheduler, a single load/store unit feeding the MemoryStage, and a
 * per-core MMU (TLB + PTWs) beside the 32KB L1.
 *
 * Thread block compaction uses a different core (TbcCore) that shares
 * the MemoryStage and scheduler machinery.
 */

#ifndef GPU_SIMT_CORE_HH
#define GPU_SIMT_CORE_HH

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"
#include "gpu/memory_stage.hh"
#include "gpu/shader_core.hh"
#include "gpu/simt_stack.hh"
#include "mem/l1_cache.hh"
#include "mmu/mmu.hh"
#include "sched/warp_scheduler.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace gpummu {

struct CoreConfig
{
    unsigned numWarpSlots = 48; ///< paper: 48 warps per shader core
    unsigned issueWidth = 2;    ///< issues per cycle, at most 1 memory
    Cycle aluLatency = 2;
    L1CacheConfig l1;
    MmuConfig mmu;
};

/** Kernel launch parameters shared by all cores of a run. */
struct LaunchParams
{
    const KernelProgram *program = nullptr;
    unsigned threadsPerBlock = 256;
    unsigned totalBlocks = 0;
    std::uint64_t seed = 1;
};

enum class WarpState
{
    Invalid,
    Ready,
    WaitingMem,
    WaitingTlbDrain,
    Finished,
};

class SimtCore : public ShaderCore
{
  public:
    SimtCore(int core_id, const CoreConfig &cfg,
             const LaunchParams &launch, AddressSpace &as,
             MemorySystem &mem, EventQueue &eq);

    SimtCore(const SimtCore &) = delete;
    SimtCore &operator=(const SimtCore &) = delete;

    /** Install the warp scheduler (must precede the first tick). */
    void setScheduler(std::unique_ptr<WarpScheduler> sched);

    /** Route translation through a shared IOMMU (Section 2.2). */
    void setIommu(Iommu *iommu) { memStage_.setIommu(iommu); }
    WarpScheduler *scheduler() { return sched_.get(); }

    /** Warps per thread block for the configured launch. */
    unsigned warpsPerBlock() const;

    /** Can another thread block be launched here right now? */
    bool canAcceptBlock() const override;

    /** Launch thread block @p global_block_id onto this core. */
    void launchBlock(unsigned global_block_id) override;

    /** Advance one cycle. */
    void tick(Cycle now) override;

    bool lastTickQuiescent() const override { return quiescent_; }
    Cycle wakeHint() const override { return wakeHint_; }
    void chargeSkipped(Cycle now, Cycle n) override;
    void flushDeferredCharges() override;

    /** True when no resident warps remain. */
    bool idle() const override { return liveWarps_ == 0; }

    int coreId() const { return coreId_; }
    Mmu &mmu() override { return mmu_; }
    L1Cache &l1() override { return l1_; }
    MemoryStage &memStage() override { return memStage_; }

    void setTraceSink(TraceSink *sink) override;
    void setHeatProfiler(HeatProfiler *heat) override;
    void setSpanTracker(SpanTracker *spans) override;

    bool
    setMemTraceWriter(MemTraceWriter *writer) override
    {
        memtrace_ = writer;
        return true;
    }
    WarpStallAccounting &stallAccounting() override { return stalls_; }

    void regStats(StatRegistry &reg,
                  const std::string &prefix) override;

    std::uint64_t instructionsIssued() const override
    {
        return instrs_.value();
    }
    std::uint64_t memInstructionsIssued() const
    {
        return memStage_.memInstructions();
    }
    std::uint64_t idleCycles() const override
    {
        return idleCycles_.value();
    }
    std::uint64_t tlbIdleCycles() const
    {
        return tlbIdleCycles_.value();
    }
    std::uint64_t blocksCompleted() const
    {
        return blocksCompleted_.value();
    }

  private:
    struct Warp
    {
        bool valid = false;
        int blockSlot = -1;
        /** Per-lane index into the block's thread array; -1 empty. */
        std::array<int, kWarpWidth> laneThread{};
        SimtStack stack;
        WarpState state = WarpState::Invalid;
        Cycle readyAt = 0;
        /**
         * Lane addresses generated for the current memory
         * instruction, kept across hit-under-miss bounces so the
         * per-thread RNG streams are consumed exactly once per
         * dynamic instruction.
         */
        std::vector<VirtAddr> pendingAddrs;
        bool hasPendingAddrs = false;
        /** Cause the warp's current wait is attributed to. */
        StallReason stallReason = StallReason::None;
    };

    struct ResidentBlock
    {
        bool valid = false;
        unsigned globalId = 0;
        unsigned threadsLive = 0;
        std::vector<ThreadCtx> threads;
        std::vector<int> warpIds;
    };

    /** The instruction the warp would execute next, or nullptr. */
    const Instruction *nextInstr(Warp &w);

    /** Execute one instruction for warp @p wid. @return true if a
     *  memory instruction was issued. */
    bool issueWarp(int wid, Cycle now);

    void executeBranch(Warp &w, const Instruction &in);
    void executeExit(int wid, Warp &w);
    void retireWarp(int wid, Warp &w);

    /** Bump block-entry visit counters when entering a block. */
    void noteBlockEntry(Warp &w);

    ThreadCtx &
    threadAt(const Warp &w, unsigned lane)
    {
        auto &blk = blocks_[static_cast<std::size_t>(w.blockSlot)];
        return blk.threads[static_cast<std::size_t>(
            w.laneThread[lane])];
    }

    int coreId_;
    CoreConfig cfg_;
    LaunchParams launch_;
    EventQueue &eq_;

    L1Cache l1_;
    Mmu mmu_;
    MemoryStage memStage_;
    std::unique_ptr<WarpScheduler> sched_;

    /** Observation-only capture sink; null when not capturing. */
    MemTraceWriter *memtrace_ = nullptr;

    std::vector<Warp> warps_;
    std::vector<ResidentBlock> blocks_;
    unsigned liveWarps_ = 0;
    WarpStallAccounting stalls_;
    /** tick() scratch: issuable-warp ids. Member so the per-cycle
     *  path does not allocate (tick dominates the profile). */
    std::vector<int> issuableScratch_;

    /** Set by tick(): was the last tick quiescent (nothing issued,
     *  retired or mutated), and when does the earliest Ready warp
     *  wake by timeout? Consumed by GpuTop's fast-forward. */
    bool quiescent_ = false;
    Cycle wakeHint_ = kCycleNever;

    /**
     * Memoized quiescent tick. A quiescent full scan records its
     * exact per-cycle charges (chargeProgram_ + the idle-counter
     * flags) and the inputs they depended on. While the inputs hold —
     * no warp-state mutation (stateVersion_), same MMU gate and
     * outstanding-miss answers, and no readyAt elapsed (wakeAt_) —
     * each subsequent tick is O(1): bump pendingRepeat_ and return.
     * flushDeferredCharges() applies program x pendingRepeat_ before
     * anything can observe the counters or the state changes.
     */
    struct ChargeEntry
    {
        int warp;
        StallReason reason;
    };
    std::vector<ChargeEntry> chargeProgram_;
    bool chargeTlbIdle_ = false;
    bool chargeMemBlocked_ = false;
    bool memoValid_ = false;
    std::uint64_t stateVersion_ = 0;
    std::uint64_t memoVersion_ = 0;
    bool memoMemAvail_ = false;
    bool memoMissOut_ = false;
    Cycle wakeAt_ = kCycleNever;
    Cycle pendingRepeat_ = 0;

    Counter instrs_;
    Counter aluInstrs_;
    Counter branchInstrs_;
    Counter divergentBranches_;
    Counter idleCycles_;
    Counter tlbIdleCycles_;
    Counter blocksCompleted_;
    Counter memBlockedCycles_;
};

} // namespace gpummu

#endif // GPU_SIMT_CORE_HH
