#include "gpu/memory_stage.hh"

#include <algorithm>

#include "mem/request.hh"
#include "mmu/l2_tlb.hh"
#include "sim/logging.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

namespace gpummu {

MemoryStage::MemoryStage(Mmu &mmu, L1Cache &l1, EventQueue &eq)
    : mmu_(mmu), l1_(l1), eq_(eq), pageDivergence_(1, 33),
      linesPerInstr_(1, 33)
{
}

void
MemoryStage::noteOutcome(const AccessOutcome &out, bool is_store)
{
    // Stores retire into the write-through path without the warp
    // waiting, so they never dominate the instruction's stall cause.
    if (is_store)
        return;
    StallReason r = StallReason::Interconnect;
    if (out.dram)
        r = StallReason::Dram;
    else if (!out.hit)
        r = StallReason::L1Miss; // includes merges into in-flight fills
    lastIssueReason_ = dominantStall(lastIssueReason_, r);
}

Cycle
MemoryStage::accessLine(PhysAddr pline, bool is_store, Cycle at,
                        int warp_id, bool tlb_missed_instr)
{
    auto out = l1_.access(pline, is_store, at, warp_id);
    // MSHR-full: retry when an outstanding fill frees an entry;
    // bounded because fills complete within a DRAM round trip.
    while (out.needRetry) {
        at = out.readyAt;
        out = l1_.access(pline, is_store, at, warp_id);
    }
    noteOutcome(out, is_store);
    if (!is_store && !out.hit && sched_)
        sched_->onL1Miss(warp_id, pline, tlb_missed_instr);
    return out.readyAt;
}

MemIssueResult
MemoryStage::issue(int warp_id, bool is_store,
                   const std::vector<VirtAddr> &lane_addrs, Cycle now,
                   CompleteFn complete)
{
    GPUMMU_ASSERT(!lane_addrs.empty(), "memory op with no active lanes");

    const unsigned page_shift =
        mmu_.config().enabled ? mmu_.pageShift() : kPageShift4K;
    coalesceInto(accScratch_, spareLines_, lane_addrs, kLineShift,
                 page_shift);
    const CoalescedAccess &acc = accScratch_;

    lastIssueReason_ = StallReason::Interconnect;
    if (trace_)
        trace_->instantAt(TraceCat::Coalescer, "coalesce", traceTid_,
                          now, "lines", acc.totalLines, "pages",
                          acc.pages.size());

    if (iommu_ != nullptr)
        return issueIommu(warp_id, is_store, acc, now,
                          std::move(complete));

    // --- No-TLB baseline: translation is magic and free. ---
    if (!mmu_.config().enabled) {
        memInstrs_.inc();
        pageDivergence_.sample(acc.pageDivergence());
        linesPerInstr_.sample(acc.totalLines);
        if (heat_)
            heat_->onPageDivergence(acc.pageDivergence());
        Cycle ready = now + 1;
        for (const auto &pg : acc.pages) {
            for (std::uint64_t vline : pg.vlines) {
                const PhysAddr pa =
                    mmu_.magicTranslate(vline << kLineShift);
                const Cycle done = accessLine(lineAddrOf(pa), is_store,
                                              now, warp_id, false);
                if (!is_store)
                    ready = std::max(ready, done);
            }
        }
        complete(ready);
        return MemIssueResult::Issued;
    }

    // --- Hit-under-miss bounce check (no miss-under-miss). ---
    // Probe without disturbing stats/LRU: if this warp would miss
    // while walks are outstanding it gets swapped out and retries
    // after the MMU drains.
    if (mmu_.missOutstanding()) {
        GPUMMU_ASSERT(mmu_.config().hitUnderMiss,
                      "core must gate blocking TLBs on memAvailable()");
        for (const auto &pg : acc.pages) {
            if (!mmu_.probeTlb(pg.vpn)) {
                tlbBounces_.inc();
                return MemIssueResult::BlockedTlbBusy;
            }
        }
    }

    // Past the bounce point: the instruction definitely issues, so
    // record it exactly once.
    memInstrs_.inc();
    pageDivergence_.sample(acc.pageDivergence());
    linesPerInstr_.sample(acc.totalLines);
    if (heat_)
        heat_->onPageDivergence(acc.pageDivergence());

    // --- Real TLB lookup for the coalesced PTE set. ---
    std::vector<Vpn> &vpns = vpnScratch_;
    vpns.clear();
    vpns.reserve(acc.pages.size());
    for (const auto &pg : acc.pages)
        vpns.push_back(pg.vpn);
    mmu_.lookupBatchInto(batchScratch_, vpns, warp_id);
    const Mmu::BatchResult &batch = batchScratch_;
    const Cycle t0 = now + batch.extraCycles;

    std::vector<Vpn> &miss_vpns = missVpnScratch_;
    miss_vpns.clear();
    for (std::size_t i = 0; i < batch.lookups.size(); ++i) {
        const auto &vl = batch.lookups[i];
        if (vl.hit) {
            if (sched_)
                sched_->onTlbHit(warp_id, vl.vpn, vl.depth);
            if (onTlbHitHistory_)
                onTlbHitHistory_(warp_id, vl.vpn, vl.history,
                                 vl.historyUsed);
        } else {
            if (sched_)
                sched_->onTlbMiss(warp_id, vl.vpn);
            miss_vpns.push_back(vl.vpn);
        }
    }
    const bool tlb_missed_instr = !miss_vpns.empty();
    if (tlb_missed_instr) {
        instrsWithTlbMiss_.inc();
        // A page-walk wait dominates any cache behaviour underneath.
        // But when every missing VPN is already resident in the
        // shared L2 TLB, the wait is its short hit latency, not a
        // walk - attribute that separately so "time lost to walks"
        // stays honest with an L2 in the design.
        lastIssueReason_ = StallReason::TlbMiss;
        if (const L2Tlb *l2 = mmu_.l2Tlb()) {
            bool covered = true;
            for (Vpn v : miss_vpns)
                covered = covered && l2->probe(asidKey(mmu_.asid(), v));
            if (covered)
                lastIssueReason_ = StallReason::L2Tlb;
        }
    }

    // --- All hits: straight to the L1. ---
    if (miss_vpns.empty()) {
        Cycle ready = t0 + 1;
        for (std::size_t i = 0; i < acc.pages.size(); ++i) {
            const auto &pg = acc.pages[i];
            const std::uint64_t frame = batch.lookups[i].frameBase;
            for (std::uint64_t vline : pg.vlines) {
                const PhysAddr pa =
                    mmu_.physAddr(frame, vline << kLineShift);
                const Cycle done = accessLine(lineAddrOf(pa), is_store,
                                              t0, warp_id, false);
                if (!is_store)
                    ready = std::max(ready, done);
            }
        }
        complete(ready);
        return MemIssueResult::Issued;
    }

    GPUMMU_ASSERT(mmu_.canStartMisses(miss_vpns.size()),
                  "miss set exceeds MSHRs or started under a miss");

    // --- Misses: start walks; policy decides what overlaps. ---
    const bool overlap = mmu_.config().cacheOverlap;

    ArenaRc<WalkPending> pending = walkArena_.createRc();
    pending->remainingWalks = miss_vpns.size();
    pending->ready = t0 + 1;
    pending->isStore = is_store;
    pending->overlap = overlap;
    pending->warpId = warp_id;
    pending->complete = std::move(complete);

    for (std::size_t i = 0; i < acc.pages.size(); ++i) {
        const auto &pg = acc.pages[i];
        const auto &vl = batch.lookups[i];
        if (vl.hit) {
            if (overlap) {
                // Hitting threads look up the cache immediately, even
                // though a warp-mate is walking.
                for (std::uint64_t vline : pg.vlines) {
                    const PhysAddr pa =
                        mmu_.physAddr(vl.frameBase, vline << kLineShift);
                    const Cycle done =
                        accessLine(lineAddrOf(pa), is_store, t0, warp_id,
                                   true);
                    if (!is_store)
                        pending->ready = std::max(pending->ready, done);
                }
            } else {
                pending->deferredByFrame.emplace_back(vl.frameBase,
                                                      pg.vlines);
            }
        } else {
            pending->deferredByVpn.emplace_back(pg.vpn, pg.vlines);
        }
    }

    auto replay = [this, pending](std::uint64_t frame,
                                  const std::vector<std::uint64_t> &vlines,
                                  Cycle at) {
        for (std::uint64_t vline : vlines) {
            const PhysAddr pa = mmu_.physAddr(frame, vline << kLineShift);
            const Cycle done = accessLine(lineAddrOf(pa),
                                          pending->isStore, at,
                                          pending->warpId, true);
            if (!pending->isStore)
                pending->ready = std::max(pending->ready, done);
        }
    };

    mmu_.requestWalks(
        miss_vpns, warp_id, t0,
        [pending, replay](Vpn vpn, std::uint64_t frame, Cycle fin) {
            pending->lastWalkDone = std::max(pending->lastWalkDone, fin);
            if (pending->overlap) {
                // Release this page's lines as soon as its walk ends.
                for (auto &[dvpn, vlines] : pending->deferredByVpn) {
                    if (dvpn == vpn && !vlines.empty()) {
                        replay(frame, vlines, fin);
                        vlines.clear();
                    }
                }
            } else {
                // Remember the frame; all lines go after the last walk.
                for (auto &[dvpn, vlines] : pending->deferredByVpn) {
                    if (dvpn == vpn) {
                        pending->deferredByFrame.emplace_back(
                            frame, std::move(vlines));
                        vlines.clear();
                    }
                }
            }

            GPUMMU_ASSERT(pending->remainingWalks > 0);
            if (--pending->remainingWalks > 0)
                return;

            if (!pending->overlap) {
                for (const auto &[dframe, vlines] :
                     pending->deferredByFrame) {
                    replay(dframe, vlines, pending->lastWalkDone);
                }
            }
            const Cycle resume = pending->isStore
                                     ? pending->lastWalkDone + 1
                                     : std::max(pending->ready,
                                                pending->lastWalkDone + 1);
            pending->complete(resume);
        });

    return MemIssueResult::Issued;
}

MemIssueResult
MemoryStage::issueIommu(int warp_id, bool is_store,
                        const CoalescedAccess &acc, Cycle now,
                        CompleteFn complete)
{
    GPUMMU_ASSERT(!mmu_.config().enabled,
                  "IOMMU mode requires the per-core MMU disabled");
    memInstrs_.inc();
    pageDivergence_.sample(acc.pageDivergence());
    linesPerInstr_.sample(acc.totalLines);
    if (heat_)
        heat_->onPageDivergence(acc.pageDivergence());

    // Virtually addressed L1: lines are looked up by virtual line id
    // (the virtual->physical bijection makes the hit/miss pattern
    // identical for the tag-level model). Translation gates only the
    // pages whose lines missed.
    ArenaRc<IommuPending> pending = iommuArena_.createRc();
    pending->ready = now + 1;
    pending->complete = std::move(complete);

    std::vector<Vpn> &missing_pages = iommuMissScratch_;
    missing_pages.clear();
    for (const auto &pg : acc.pages) {
        bool page_missed = false;
        for (std::uint64_t vline : pg.vlines) {
            // Virtual line ids are ASID-composed: co-scheduled
            // tenants with overlapping VAs must not hit each other's
            // lines in the virtually addressed L1.
            const std::uint64_t vkey = asidKey(asid_, vline);
            auto out = l1_.access(vkey, is_store, now, warp_id);
            while (out.needRetry) {
                out = l1_.access(vkey, is_store, out.readyAt,
                                 warp_id);
            }
            noteOutcome(out, is_store);
            if (!is_store) {
                pending->ready =
                    std::max(pending->ready, out.readyAt);
                if (!out.hit) {
                    page_missed = true;
                    if (sched_)
                        sched_->onL1Miss(warp_id, vline, false);
                }
            }
        }
        if (page_missed)
            missing_pages.push_back(pg.vpn);
    }

    if (is_store || missing_pages.empty()) {
        pending->complete(pending->ready);
        return MemIssueResult::Issued;
    }

    // The IOMMU translates on the miss path, so the translation wait
    // dominates whatever the cache did.
    lastIssueReason_ = StallReason::TlbMiss;

    // After-L1-miss translation at the controller: the miss response
    // cannot return before the IOMMU produced a physical address
    // (plus the L2 leg it gates).
    const MemorySystemConfig mem_defaults;
    const Cycle refetch =
        mem_defaults.icntLatency + mem_defaults.l2HitLatency;
    pending->remaining = missing_pages.size();
    for (Vpn vpn : missing_pages) {
        // The span opens as the request departs the core; the gap to
        // the IOMMU's lookup stage is interconnect + port queueing.
        if (spans_)
            spans_->openAt(asidKey(asid_, vpn),
                           SpanStage::IommuDepart, now, spanTid_);
        iommu_->translate(
            asidKey(asid_, vpn), now + mem_defaults.icntLatency,
            [pending, refetch](std::uint64_t, Cycle done) {
                pending->ready =
                    std::max(pending->ready, done + refetch);
                GPUMMU_ASSERT(pending->remaining > 0);
                if (--pending->remaining == 0)
                    pending->complete(pending->ready);
            });
    }
    return MemIssueResult::Issued;
}

void
MemoryStage::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".mem_instrs", &memInstrs_);
    reg.addCounter(prefix + ".tlb_bounces", &tlbBounces_);
    reg.addCounter(prefix + ".instrs_with_tlb_miss", &instrsWithTlbMiss_);
    reg.addHistogram(prefix + ".page_divergence", &pageDivergence_);
    reg.addHistogram(prefix + ".lines_per_instr", &linesPerInstr_);
}

} // namespace gpummu
