/**
 * @file
 * Common Page Matrix (CPM) for TLB-aware thread block compaction
 * (Section 8.2, Fig. 21 of the paper).
 *
 * One row per hardware warp; each row holds a saturating counter per
 * other warp indicating how often the two warps have recently hit the
 * same TLB entries. The compactor admits a thread into a dynamic warp
 * only when its original warp's counters against every original warp
 * already in that dynamic warp are saturated. The table is flushed
 * periodically (paper: every 500 cycles) to track phase changes.
 */

#ifndef TBC_CPM_HH
#define TBC_CPM_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/logging.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

struct CpmConfig
{
    unsigned numWarps = 48;
    /** Bits per saturating counter (paper sweeps 1-3; 3 best). */
    unsigned counterBits = 3;
    /** Flush period in cycles (paper: 500). */
    Cycle flushInterval = 500;
};

class CommonPageMatrix
{
  public:
    explicit CommonPageMatrix(const CpmConfig &cfg)
        : cfg_(cfg),
          counters_(static_cast<std::size_t>(cfg.numWarps) *
                        cfg.numWarps,
                    0)
    {
        GPUMMU_ASSERT(cfg.counterBits >= 1 && cfg.counterBits <= 8);
        max_ = static_cast<std::uint8_t>((1u << cfg.counterBits) - 1);
    }

    std::uint8_t maxCount() const { return max_; }

    /** Record that warps @p a and @p b hit the same TLB entry. */
    void
    bump(int a, int b)
    {
        if (!inRange(a) || !inRange(b) || a == b)
            return;
        auto &c1 = at(a, b);
        if (c1 < max_)
            ++c1;
        auto &c2 = at(b, a);
        if (c2 < max_)
            ++c2;
    }

    /** True when the counter pair is saturated (or same warp). */
    bool
    isAffine(int a, int b) const
    {
        if (a == b)
            return true;
        if (!inRange(a) || !inRange(b))
            return false;
        return at(a, b) == max_;
    }

    std::uint8_t
    count(int a, int b) const
    {
        GPUMMU_ASSERT(inRange(a) && inRange(b));
        return at(a, b);
    }

    /** Periodic flush; call once per core cycle. */
    void
    tick(Cycle now)
    {
        if (now - lastFlush_ >= cfg_.flushInterval) {
            lastFlush_ = now;
            std::fill(counters_.begin(), counters_.end(), 0);
            flushes_.inc();
        }
    }

    void
    regStats(StatRegistry &reg, const std::string &prefix)
    {
        reg.addCounter(prefix + ".flushes", &flushes_);
    }

  private:
    bool
    inRange(int w) const
    {
        return w >= 0 && w < static_cast<int>(cfg_.numWarps);
    }

    std::uint8_t &
    at(int r, int c)
    {
        return counters_[static_cast<std::size_t>(r) * cfg_.numWarps +
                         static_cast<std::size_t>(c)];
    }

    const std::uint8_t &
    at(int r, int c) const
    {
        return counters_[static_cast<std::size_t>(r) * cfg_.numWarps +
                         static_cast<std::size_t>(c)];
    }

    CpmConfig cfg_;
    std::vector<std::uint8_t> counters_;
    std::uint8_t max_ = 7;
    Cycle lastFlush_ = 0;
    Counter flushes_;
};

} // namespace gpummu

#endif // TBC_CPM_HH
