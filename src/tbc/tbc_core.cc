#include "tbc/tbc_core.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace gpummu {

TbcCore::TbcCore(int core_id, const CoreConfig &cfg,
                 const TbcConfig &tbc, const LaunchParams &launch,
                 AddressSpace &as, MemorySystem &mem, EventQueue &eq)
    : coreId_(core_id), cfg_(cfg), tbcCfg_(tbc), launch_(launch),
      eq_(eq), l1_(cfg.l1, mem), mmu_(cfg.mmu, as, mem, eq),
      memStage_(mmu_, l1_, eq), cpm_(tbc.cpm), warpOccupancy_(1, 33)
{
    GPUMMU_ASSERT(launch.program != nullptr);
    GPUMMU_ASSERT(launch.threadsPerBlock % kWarpWidth == 0);
    GPUMMU_ASSERT(launch.threadsPerBlock <= kMaxBlockThreads);
    blocks_.resize(cfg.numWarpSlots / warpsPerBlock());

    // Scheduler ids encode (block slot, warp index); size the round
    // robin over the full encoded space.
    setScheduler(std::make_unique<LooseRoundRobin>(
        static_cast<unsigned>(blocks_.size()) * kSchedStride));

    // CPM learning: every TLB hit reports the entry's recent original
    // warps; saturating counters track which warps share PTEs.
    memStage_.setTlbHitHistoryHook(
        [this](int warp, Vpn vpn, const std::array<int, 4> &hist,
               unsigned used) {
            (void)vpn;
            for (unsigned i = 0; i < used && i < hist.size(); ++i)
                cpm_.bump(warp, hist[i]);
        });
}

void
TbcCore::setScheduler(std::unique_ptr<WarpScheduler> sched)
{
    sched_ = std::move(sched);
    memStage_.setScheduler(sched_.get());
    l1_.setEvictionListener([this](PhysAddr line, int warp) {
        if (sched_)
            sched_->onL1Eviction(line, warp);
    });
    mmu_.tlb().setEvictionListener([this](Vpn vpn, int warp) {
        if (sched_)
            sched_->onTlbEviction(vpn, warp);
    });
}

void
TbcCore::setTraceSink(TraceSink *sink)
{
    l1_.setTraceSink(sink, coreId_);
    mmu_.setTraceSink(sink, coreId_);
    memStage_.setTraceSink(sink, coreId_);
}

void
TbcCore::setHeatProfiler(HeatProfiler *heat)
{
    mmu_.setHeatProfiler(heat, coreId_);
    memStage_.setHeatProfiler(heat);
}

void
TbcCore::setSpanTracker(SpanTracker *spans)
{
    mmu_.setSpanTracker(spans, coreId_);
    memStage_.setSpanTracker(spans, coreId_);
}

unsigned
TbcCore::warpsPerBlock() const
{
    return launch_.threadsPerBlock / kWarpWidth;
}

bool
TbcCore::canAcceptBlock() const
{
    return std::any_of(blocks_.begin(), blocks_.end(),
                       [](const TbcBlock &b) { return !b.valid; });
}

void
TbcCore::launchBlock(unsigned global_block_id)
{
    auto it = std::find_if(blocks_.begin(), blocks_.end(),
                           [](const TbcBlock &b) { return !b.valid; });
    GPUMMU_ASSERT(it != blocks_.end());
    TbcBlock &blk = *it;
    const int slot = static_cast<int>(it - blocks_.begin());

    blk.valid = true;
    blk.globalId = global_block_id;
    blk.threadsLive = launch_.threadsPerBlock;
    blk.warpBase = slot * static_cast<int>(warpsPerBlock());
    blk.threads.clear();
    blk.threads.reserve(launch_.threadsPerBlock);
    const unsigned tpb = launch_.threadsPerBlock;
    for (unsigned t = 0; t < tpb; ++t) {
        ThreadCtx ctx(static_cast<int>(global_block_id * tpb + t),
                      static_cast<int>(global_block_id),
                      static_cast<int>(t), kWarpWidth, launch_.seed);
        ctx.blockVisits.assign(launch_.program->numBlocks(), 0);
        blk.threads.push_back(std::move(ctx));
    }

    BlockMask full;
    for (unsigned t = 0; t < tpb; ++t)
        full.set(t);
    blk.stack.reset(0, full);
    blk.warps.clear();
    blk.warpsDone = 0;
    blk.takenAcc.reset();
    blk.fallAcc.reset();
    blk.exitAcc.reset();
    ++liveBlocks_;
    // De-phase blocks so their barrier bursts do not convoy: blocks
    // launched in the same cycle would otherwise stay phase-locked,
    // hammering the memory system in lockstep.
    const Cycle phase = static_cast<Cycle>(coreId_) * 61 +
                        static_cast<Cycle>(slot) * 173;
    activateTop(blk, phase);
}

void
TbcCore::activateTop(TbcBlock &blk, Cycle now)
{
    blk.stack.reconverge();
    if (blk.stack.empty() || blk.threadsLive == 0) {
        blk.valid = false;
        blocksCompleted_.inc();
        GPUMMU_ASSERT(liveBlocks_ > 0);
        --liveBlocks_;
        return;
    }

    const auto &top = blk.stack.top();
    compactions_.inc();
    auto packed = compactThreads(top.mask, launch_.threadsPerBlock,
                                 tbcCfg_.tlbAware ? &cpm_ : nullptr,
                                 blk.warpBase);
    blk.warps.clear();
    blk.warps.reserve(packed.size());
    for (const auto &cw : packed) {
        DynWarp dw;
        dw.laneThread = cw.laneThread;
        dw.instIdx = 0;
        dw.state = WarpState::Ready;
        // Stagger release through fetch/decode so a block-wide
        // barrier does not dump every warp's memory burst into the
        // same cycle.
        dw.readyAt = now + 1 + 2 * static_cast<Cycle>(blk.warps.size());
        dw.done = false;
        dw.pendingLoads = 0;
        dw.loadsReadyAt = 0;
        dw.waitingAtTerminator = false;
        for (int t : cw.laneThread) {
            if (t >= 0) {
                dw.originRep =
                    blk.warpBase + t / static_cast<int>(kWarpWidth);
                break;
            }
        }
        dynWarps_.inc();
        warpOccupancy_.sample(cw.activeLanes());
        blk.warps.push_back(std::move(dw));
    }
    blk.warpsDone = 0;
    blk.takenAcc.reset();
    blk.fallAcc.reset();
    blk.exitAcc.reset();

    // Block-entry bookkeeping: bump visit counters once per thread.
    for (unsigned t = 0; t < launch_.threadsPerBlock; ++t) {
        if (top.mask.test(t)) {
            ++blk.threads[t].blockVisits[static_cast<std::size_t>(
                top.block)];
        }
    }
}

const Instruction *
TbcCore::currentInstr(const TbcBlock &blk, const DynWarp &w) const
{
    const auto &bb = launch_.program->block(blk.stack.top().block);
    GPUMMU_ASSERT(w.instIdx < static_cast<int>(bb.instrs.size()));
    return &bb.instrs[static_cast<std::size_t>(w.instIdx)];
}

void
TbcCore::resolveEntry(int blk_slot, Cycle now)
{
    TbcBlock &blk = blocks_[static_cast<std::size_t>(blk_slot)];
    const auto &bb = launch_.program->block(blk.stack.top().block);
    const Instruction &term = bb.instrs.back();

    if (term.op == Opcode::Exit) {
        const unsigned exiting =
            static_cast<unsigned>(blk.exitAcc.count());
        GPUMMU_ASSERT(blk.threadsLive >= exiting);
        blk.threadsLive -= exiting;
        blk.stack.clearThreads(blk.exitAcc);
    } else {
        GPUMMU_ASSERT(term.op == Opcode::Branch);
        if (blk.stack.branch(blk.takenAcc, blk.fallAcc,
                             term.takenBlock, term.fallBlock,
                             term.reconvBlock)) {
            divergentBranches_.inc();
        }
    }
    activateTop(blk, now);
}

void
TbcCore::issueWarp(int blk_slot, int warp_idx, Cycle now)
{
    TbcBlock &blk = blocks_[static_cast<std::size_t>(blk_slot)];
    DynWarp &w = blk.warps[static_cast<std::size_t>(warp_idx)];
    const Instruction *in = currentInstr(blk, w);

    switch (in->op) {
      case Opcode::Alu:
        instrs_.inc();
        aluInstrs_.inc();
        ++w.instIdx;
        w.readyAt = now + cfg_.aluLatency;
        // Execution latency, not a stall.
        w.stallReason = StallReason::None;
        return;

      case Opcode::Branch: {
        if (w.pendingLoads > 0) {
            // Wait for this warp's outstanding loads before the
            // block-wide sync point.
            w.waitingAtTerminator = true;
            w.state = WarpState::WaitingMem;
            return;
        }
        if (w.loadsReadyAt > now) {
            w.readyAt = w.loadsReadyAt;
            return;
        }
        instrs_.inc();
        branchInstrs_.inc();
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            const int tid = w.laneThread[lane];
            if (tid < 0)
                continue;
            if (launch_.program->genCond(in->condGen,
                                         threadOf(blk, tid))) {
                blk.takenAcc.set(static_cast<std::size_t>(tid));
            } else {
                blk.fallAcc.set(static_cast<std::size_t>(tid));
            }
        }
        w.done = true;
        w.readyAt = now + 1;
        if (++blk.warpsDone == blk.warps.size())
            resolveEntry(blk_slot, now);
        return;
      }

      case Opcode::Exit: {
        if (w.pendingLoads > 0) {
            w.waitingAtTerminator = true;
            w.state = WarpState::WaitingMem;
            return;
        }
        if (w.loadsReadyAt > now) {
            w.readyAt = w.loadsReadyAt;
            return;
        }
        instrs_.inc();
        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            const int tid = w.laneThread[lane];
            if (tid >= 0)
                blk.exitAcc.set(static_cast<std::size_t>(tid));
        }
        w.done = true;
        if (++blk.warpsDone == blk.warps.size())
            resolveEntry(blk_slot, now);
        return;
      }

      case Opcode::Load:
      case Opcode::Store: {
        if (!w.hasPendingAddrs) {
            w.pendingAddrs.clear();
            for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
                const int tid = w.laneThread[lane];
                if (tid >= 0) {
                    w.pendingAddrs.push_back(launch_.program->genAddr(
                        in->addrGen, threadOf(blk, tid)));
                }
            }
            w.hasPendingAddrs = true;
        }
        const bool is_store = in->op == Opcode::Store;
        ++w.pendingLoads;
        auto result = memStage_.issue(
            w.originRep, is_store, w.pendingAddrs, now,
            [this, blk_slot, warp_idx](Cycle ready) {
                auto &blk2 =
                    blocks_[static_cast<std::size_t>(blk_slot)];
                auto &ww =
                    blk2.warps[static_cast<std::size_t>(warp_idx)];
                ww.loadsReadyAt = std::max(ww.loadsReadyAt, ready);
                GPUMMU_ASSERT(ww.pendingLoads > 0);
                if (--ww.pendingLoads == 0 &&
                    ww.waitingAtTerminator) {
                    ww.waitingAtTerminator = false;
                    ww.state = WarpState::Ready;
                    ww.readyAt = std::max(ww.loadsReadyAt,
                                          eq_.now() + 1);
                }
            });
        if (result == MemIssueResult::BlockedTlbBusy) {
            GPUMMU_ASSERT(w.pendingLoads > 0);
            --w.pendingLoads;
            w.state = WarpState::WaitingTlbDrain;
            w.stallReason = StallReason::WalkerStructural;
            mmu_.onDrain([this, blk_slot, warp_idx]() {
                auto &blk2 =
                    blocks_[static_cast<std::size_t>(blk_slot)];
                auto &ww =
                    blk2.warps[static_cast<std::size_t>(warp_idx)];
                if (ww.state == WarpState::WaitingTlbDrain) {
                    ww.state = WarpState::Ready;
                    ww.readyAt = eq_.now() + 1;
                }
            });
            return;
        }
        instrs_.inc();
        w.hasPendingAddrs = false;
        ++w.instIdx;
        // Waits on this entry's outstanding data are charged to the
        // worst cause among its fire-and-forget loads.
        w.stallReason =
            dominantStall(w.stallReason, memStage_.lastIssueReason());
        // Fire and forget: the warp keeps executing this entry and
        // synchronizes with its data at the terminator.
        w.readyAt = now + 2;
        return;
      }
    }
    GPUMMU_PANIC("unhandled opcode");
}

void
TbcCore::tick(Cycle now)
{
    if (liveBlocks_ == 0)
        return;
    sched_->tick(now);
    cpm_.tick(now);

    const bool mem_available = mmu_.memAvailable();

    // Encode (block slot, warp index) into one scheduler id.
    constexpr int kStride = kSchedStride;
    std::vector<int> &issuable = issuableScratch_;
    issuable.clear();
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
        TbcBlock &blk = blocks_[b];
        if (!blk.valid)
            continue;
        for (std::size_t i = 0; i < blk.warps.size(); ++i) {
            DynWarp &w = blk.warps[i];
            const int slot = warpSlotId(b, i);
            if (w.done) {
                // Finished its path; waiting for block mates at the
                // block-wide reconvergence barrier.
                stalls_.attribute(slot, StallReason::Reconvergence);
                continue;
            }
            if (w.state == WarpState::WaitingMem) {
                stalls_.attribute(slot, w.stallReason);
                continue;
            }
            if (w.state == WarpState::WaitingTlbDrain) {
                stalls_.attribute(slot,
                                  StallReason::WalkerStructural);
                continue;
            }
            if (w.state != WarpState::Ready)
                continue;
            if (w.readyAt > now) {
                stalls_.attribute(slot, w.stallReason);
                continue;
            }
            const Instruction *in = currentInstr(blk, w);
            const bool is_mem = in->op == Opcode::Load ||
                                in->op == Opcode::Store;
            if (is_mem) {
                if (!mem_available) {
                    // The blocking TLB's gate: walks outstanding.
                    stalls_.attribute(slot, StallReason::TlbMiss);
                    continue;
                }
                if (!sched_->mayIssueMem(w.originRep))
                    continue;
            }
            issuable.push_back(static_cast<int>(b) * kStride +
                               static_cast<int>(i));
        }
    }

    unsigned issued = 0;
    bool mem_issued = false;
    while (issued < cfg_.issueWidth && !issuable.empty()) {
        // LooseRoundRobin over encoded ids approximates the paper's
        // age-based dynamic warp issue.
        const int id = sched_->pick(now, issuable);
        if (id < 0)
            break;
        issuable.erase(std::remove(issuable.begin(), issuable.end(),
                                   id),
                       issuable.end());
        const int b = id / kStride;
        const int i = id % kStride;
        TbcBlock &blk = blocks_[static_cast<std::size_t>(b)];
        if (!blk.valid ||
            i >= static_cast<int>(blk.warps.size()))
            continue;
        const Instruction *in =
            currentInstr(blk, blk.warps[static_cast<std::size_t>(i)]);
        const bool is_mem =
            in->op == Opcode::Load || in->op == Opcode::Store;
        if (is_mem && mem_issued)
            continue;
        issueWarp(b, i, now);
        if (is_mem)
            mem_issued = true;
        ++issued;
    }

    if (issued == 0 && liveBlocks_ > 0) {
        idleCycles_.inc();
        if (mmu_.missOutstanding())
            tlbIdleCycles_.inc();
    }
}

void
TbcCore::regStats(StatRegistry &reg, const std::string &prefix)
{
    l1_.regStats(reg, prefix + ".l1");
    mmu_.regStats(reg, prefix + ".mmu");
    memStage_.regStats(reg, prefix + ".mem");
    cpm_.regStats(reg, prefix + ".cpm");
    reg.addCounter(prefix + ".instrs", &instrs_);
    reg.addCounter(prefix + ".alu_instrs", &aluInstrs_);
    reg.addCounter(prefix + ".branch_instrs", &branchInstrs_);
    reg.addCounter(prefix + ".divergent_branches",
                   &divergentBranches_);
    reg.addCounter(prefix + ".idle_cycles", &idleCycles_);
    reg.addCounter(prefix + ".tlb_idle_cycles", &tlbIdleCycles_);
    reg.addCounter(prefix + ".blocks_completed", &blocksCompleted_);
    reg.addCounter(prefix + ".compactions", &compactions_);
    reg.addCounter(prefix + ".dynamic_warps", &dynWarps_);
    reg.addHistogram(prefix + ".warp_occupancy", &warpOccupancy_);
    stalls_.regStats(reg, prefix);
}

} // namespace gpummu
