/**
 * @file
 * Block-wide reconvergence stack for thread block compaction.
 *
 * Same IPDOM discipline as the per-warp SimtStack, but masks cover
 * every thread of a thread block and there is no per-entry program
 * counter: the dynamic warps of the active entry each track their own
 * instruction index, and the entry advances only when all of them
 * synchronize at the terminator.
 */

#ifndef TBC_BLOCK_STACK_HH
#define TBC_BLOCK_STACK_HH

#include <vector>

#include "sim/logging.hh"
#include "tbc/compactor.hh"

namespace gpummu {

struct BlockStackEntry
{
    int block = 0;
    BlockMask mask;
    /** Pop when the entry would execute this block; -1 never. */
    int popAt = -1;
};

class BlockStack
{
  public:
    void
    reset(int entry_block, const BlockMask &mask)
    {
        entries_.clear();
        entries_.push_back(BlockStackEntry{entry_block, mask, -1});
    }

    bool empty() const { return entries_.empty(); }
    std::size_t depth() const { return entries_.size(); }

    BlockStackEntry &
    top()
    {
        GPUMMU_ASSERT(!entries_.empty());
        return entries_.back();
    }

    const BlockStackEntry &
    top() const
    {
        GPUMMU_ASSERT(!entries_.empty());
        return entries_.back();
    }

    /** Pop entries that reached reconvergence or emptied. */
    void
    reconverge()
    {
        while (!entries_.empty()) {
            const auto &t = entries_.back();
            if (t.mask.none() ||
                (t.popAt >= 0 && t.block == t.popAt)) {
                entries_.pop_back();
            } else {
                break;
            }
        }
    }

    /** @return true when the branch diverged. */
    bool
    branch(const BlockMask &taken_mask, const BlockMask &fall_mask,
           int taken_block, int fall_block, int reconv_block)
    {
        auto &t = top();
        if (fall_mask.none()) {
            t.block = taken_block;
            return false;
        }
        if (taken_mask.none()) {
            t.block = fall_block;
            return false;
        }
        t.block = reconv_block;
        entries_.push_back(
            BlockStackEntry{fall_block, fall_mask, reconv_block});
        entries_.push_back(
            BlockStackEntry{taken_block, taken_mask, reconv_block});
        return true;
    }

    /** Remove exited threads from every entry. */
    void
    clearThreads(const BlockMask &threads)
    {
        for (auto &e : entries_)
            e.mask &= ~threads;
    }

    const std::vector<BlockStackEntry> &entries() const
    {
        return entries_;
    }

  private:
    std::vector<BlockStackEntry> entries_;
};

} // namespace gpummu

#endif // TBC_BLOCK_STACK_HH
