#include "tbc/compactor.hh"

#include <algorithm>
#include <deque>

namespace gpummu {

std::vector<CompactedWarp>
compactThreads(const BlockMask &mask, unsigned num_threads,
               const CommonPageMatrix *cpm, int warp_base)
{
    // Per-lane candidate queues in thread order (the priority
    // encoder's input buffers).
    std::array<std::deque<int>, kWarpWidth> lanes;
    for (unsigned t = 0; t < num_threads; ++t) {
        if (mask.test(t))
            lanes[t % kWarpWidth].push_back(static_cast<int>(t));
    }

    auto origin_of = [warp_base](int tid) {
        return warp_base + tid / static_cast<int>(kWarpWidth);
    };

    std::vector<CompactedWarp> out;
    auto any_left = [&lanes]() {
        return std::any_of(lanes.begin(), lanes.end(),
                           [](const auto &q) { return !q.empty(); });
    };

    while (any_left()) {
        CompactedWarp warp;
        // Original warps already admitted to this dynamic warp.
        std::vector<int> members;

        for (unsigned lane = 0; lane < kWarpWidth; ++lane) {
            auto &q = lanes[lane];
            if (q.empty())
                continue;
            if (cpm == nullptr) {
                // Baseline TBC: strict priority encoder order.
                warp.laneThread[lane] = q.front();
                q.pop_front();
                continue;
            }
            // TLB-aware admission: first candidate whose original
            // warp is CPM-affine with every member so far. Seed the
            // warp unconditionally so progress is guaranteed.
            auto compatible = [&](int tid) {
                const int orig = origin_of(tid);
                return std::all_of(members.begin(), members.end(),
                                   [&](int m) {
                                       return cpm->isAffine(orig, m);
                                   });
            };
            int chosen = -1;
            for (std::size_t i = 0; i < q.size(); ++i) {
                if (members.empty() || compatible(q[i])) {
                    chosen = static_cast<int>(i);
                    break;
                }
            }
            if (chosen < 0)
                continue; // lane stays idle in this dynamic warp
            const int tid = q[static_cast<std::size_t>(chosen)];
            q.erase(q.begin() + chosen);
            warp.laneThread[lane] = tid;
            const int orig = origin_of(tid);
            if (std::find(members.begin(), members.end(), orig) ==
                members.end()) {
                members.push_back(orig);
            }
        }
        GPUMMU_ASSERT(warp.activeLanes() > 0,
                      "compactor produced an empty warp");
        out.push_back(warp);
    }
    return out;
}

} // namespace gpummu
