/**
 * @file
 * Shader core with thread block compaction (Fung & Aamodt HPCA 2011),
 * optionally TLB-aware (the paper's Section 8).
 *
 * Warps of a thread block synchronize at every divergent branch on a
 * block-wide reconvergence stack; the thread compactor then forms
 * dynamic warps from the threads on each path. The TLB-aware variant
 * consults the Common Page Matrix so that threads are only packed
 * with threads whose original warps have recently hit the same TLB
 * entries, trading a possible extra dynamic warp for much lower page
 * divergence.
 */

#ifndef TBC_TBC_CORE_HH
#define TBC_TBC_CORE_HH

#include <memory>
#include <vector>

#include "gpu/memory_stage.hh"
#include "gpu/shader_core.hh"
#include "gpu/simt_core.hh"
#include "sched/warp_scheduler.hh"
#include "tbc/block_stack.hh"
#include "tbc/cpm.hh"

namespace gpummu {

struct TbcConfig
{
    /** Use the Common Page Matrix admission rule. */
    bool tlbAware = false;
    CpmConfig cpm;
};

class TbcCore : public ShaderCore
{
  public:
    /** Scheduler-id stride per block slot (warp index lives below). */
    static constexpr int kSchedStride = 4096;

    TbcCore(int core_id, const CoreConfig &cfg, const TbcConfig &tbc,
            const LaunchParams &launch, AddressSpace &as,
            MemorySystem &mem, EventQueue &eq);

    TbcCore(const TbcCore &) = delete;
    TbcCore &operator=(const TbcCore &) = delete;

    void setScheduler(std::unique_ptr<WarpScheduler> sched);

    unsigned warpsPerBlock() const;
    bool canAcceptBlock() const override;
    void launchBlock(unsigned global_block_id) override;
    void tick(Cycle now) override;
    bool idle() const override { return liveBlocks_ == 0; }

    Mmu &mmu() override { return mmu_; }
    L1Cache &l1() override { return l1_; }
    MemoryStage &memStage() override { return memStage_; }

    void setTraceSink(TraceSink *sink) override;
    void setHeatProfiler(HeatProfiler *heat) override;
    void setSpanTracker(SpanTracker *spans) override;
    WarpStallAccounting &stallAccounting() override { return stalls_; }

    std::uint64_t instructionsIssued() const override
    {
        return instrs_.value();
    }
    std::uint64_t idleCycles() const override
    {
        return idleCycles_.value();
    }
    std::uint64_t compactions() const { return compactions_.value(); }
    std::uint64_t dynamicWarpsFormed() const
    {
        return dynWarps_.value();
    }

    void regStats(StatRegistry &reg,
                  const std::string &prefix) override;

  private:
    struct DynWarp
    {
        std::array<int, kWarpWidth> laneThread{};
        int instIdx = 0;
        WarpState state = WarpState::Ready;
        Cycle readyAt = 0;
        bool done = false; ///< reached the entry's terminator
        /** Representative original warp (CPM row / L1 ownership). */
        int originRep = -1;
        std::vector<VirtAddr> pendingAddrs;
        bool hasPendingAddrs = false;
        /**
         * Loads issue fire-and-forget inside an entry (the warp
         * blocks on outstanding data only at the terminator, where
         * the block-wide barrier already waits). This keeps the
         * barrier critical path at max(load latencies) rather than
         * their sum.
         */
        unsigned pendingLoads = 0;
        Cycle loadsReadyAt = 0;
        bool waitingAtTerminator = false;
        /** Cause the warp's current wait is attributed to. */
        StallReason stallReason = StallReason::None;
    };

    struct TbcBlock
    {
        bool valid = false;
        unsigned globalId = 0;
        unsigned threadsLive = 0;
        int warpBase = 0; ///< core-level id of static warp 0
        std::vector<ThreadCtx> threads;
        BlockStack stack;
        std::vector<DynWarp> warps;
        unsigned warpsDone = 0;
        BlockMask takenAcc;
        BlockMask fallAcc;
        BlockMask exitAcc;
    };

    /** Compact the stack top into dynamic warps and start them. */
    void activateTop(TbcBlock &blk, Cycle now);

    /** All dynamic warps reached the terminator: apply it. */
    void resolveEntry(int blk_slot, Cycle now);

    void issueWarp(int blk_slot, int warp_idx, Cycle now);

    ThreadCtx &
    threadOf(TbcBlock &blk, int tid)
    {
        return blk.threads[static_cast<std::size_t>(tid)];
    }

    const Instruction *currentInstr(const TbcBlock &blk,
                                    const DynWarp &w) const;

    /** Stable stall-ledger slot for dynamic warp i of block slot b
     *  (compaction can form up to threadsPerBlock dynamic warps). */
    int
    warpSlotId(std::size_t b, std::size_t i) const
    {
        return static_cast<int>(b * launch_.threadsPerBlock + i);
    }

    int coreId_;
    CoreConfig cfg_;
    TbcConfig tbcCfg_;
    LaunchParams launch_;
    EventQueue &eq_;

    L1Cache l1_;
    Mmu mmu_;
    MemoryStage memStage_;
    CommonPageMatrix cpm_;
    std::unique_ptr<WarpScheduler> sched_;

    std::vector<TbcBlock> blocks_;
    unsigned liveBlocks_ = 0;
    WarpStallAccounting stalls_;
    /** tick() scratch: issuable scheduler ids (see SimtCore). */
    std::vector<int> issuableScratch_;

    Counter instrs_;
    Counter aluInstrs_;
    Counter branchInstrs_;
    Counter divergentBranches_;
    Counter idleCycles_;
    Counter tlbIdleCycles_;
    Counter blocksCompleted_;
    Counter compactions_;
    Counter dynWarps_;
    Histogram warpOccupancy_;
};

} // namespace gpummu

#endif // TBC_TBC_CORE_HH
