/**
 * @file
 * Lane-aware thread compactor (Fung & Aamodt's TBC hardware, plus the
 * paper's TLB-aware admission rule).
 *
 * Threads keep their SIMD lane (register file bank) when compacted,
 * so dynamic warp i takes, for every lane, the i-th available thread
 * of that lane. The TLB-aware variant only packs a thread alongside
 * threads whose original warps are CPM-affine, opening a new dynamic
 * warp otherwise - possibly executing more warps but with lower page
 * divergence (Fig. 19).
 */

#ifndef TBC_COMPACTOR_HH
#define TBC_COMPACTOR_HH

#include <array>
#include <bitset>
#include <vector>

#include "gpu/simt_stack.hh"
#include "tbc/cpm.hh"

namespace gpummu {

/** Maximum threads per block supported by the TBC machinery. */
inline constexpr unsigned kMaxBlockThreads = 1024;

using BlockMask = std::bitset<kMaxBlockThreads>;

/** One compacted dynamic warp: per-lane thread index within the
 *  block, -1 for an idle lane. */
struct CompactedWarp
{
    std::array<int, kWarpWidth> laneThread;

    CompactedWarp() { laneThread.fill(-1); }

    unsigned
    activeLanes() const
    {
        unsigned n = 0;
        for (int t : laneThread)
            n += (t >= 0);
        return n;
    }
};

/**
 * Compact the active threads of @p mask into dynamic warps.
 *
 * @param mask        block-wide active mask (bit = thread-in-block)
 * @param num_threads threads in the block
 * @param cpm         when non-null, apply the TLB-aware admission
 *                    rule using original warp ids
 * @param warp_base   core-level id of the block's first static warp
 *                    (original warp id = warp_base + tid/32)
 */
std::vector<CompactedWarp>
compactThreads(const BlockMask &mask, unsigned num_threads,
               const CommonPageMatrix *cpm, int warp_base);

} // namespace gpummu

#endif // TBC_COMPACTOR_HH
