#include "mem/l1_cache.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace gpummu {

L1Cache::L1Cache(const L1CacheConfig &cfg, MemorySystem &mem)
    : cfg_(cfg), mem_(mem), array_(cfg.bytes / kLineSize, cfg.ways)
{
    mshrs_.reserve(cfg.numMshrs);
}

std::vector<L1Cache::Mshr>::iterator
L1Cache::findMshr(PhysAddr line)
{
    auto it = std::lower_bound(mshrs_.begin(), mshrs_.end(), line,
                               [](const Mshr &m, PhysAddr l) {
                                   return m.line < l;
                               });
    if (it != mshrs_.end() && it->line == line)
        return it;
    return mshrs_.end();
}

void
L1Cache::reapMshrs(Cycle now)
{
    // remove_if is stable, so the vector stays sorted by line.
    mshrs_.erase(std::remove_if(mshrs_.begin(), mshrs_.end(),
                                [now](const Mshr &m) {
                                    return m.readyAt <= now;
                                }),
                 mshrs_.end());
}

Cycle
L1Cache::earliestMshrFree() const
{
    Cycle earliest = kCycleNever;
    for (const Mshr &m : mshrs_)
        earliest = std::min(earliest, m.readyAt);
    return earliest;
}

AccessOutcome
L1Cache::access(PhysAddr line_addr, bool is_write, Cycle now, int warp_id)
{
    AccessOutcome out;

    if (is_write) {
        accesses_.inc();
        // Write-through no-allocate: forward to the shared system and
        // invalidate any local copy so later loads refetch.
        array_.invalidate(line_addr);
        auto shared = mem_.access(line_addr, true, now + cfg_.hitLatency,
                                  AccessSource::Data);
        // Stores retire into the memory system; the warp does not
        // wait on the response, so report store latency as the local
        // hand-off only.
        out.hit = true;
        out.readyAt = now + cfg_.hitLatency;
        (void)shared;
        return out;
    }

    auto res = array_.lookup(line_addr);
    if (res.hit) {
        accesses_.inc();
        // Tags are allocated at miss time; if the fill is still in
        // flight this is an MSHR merge, not a data hit.
        if (auto it = findMshr(line_addr);
            it != mshrs_.end() && it->readyAt > now) {
            mshrMerges_.inc();
            out.hit = false;
            out.mshrMerged = true;
            out.readyAt = it->readyAt;
            return out;
        }
        hits_.inc();
        if (trace_)
            trace_->instantAt(TraceCat::L1, "l1_hit", traceTid_, now,
                              "line", line_addr, "warp",
                              static_cast<std::uint64_t>(warp_id));
        out.hit = true;
        out.readyAt = now + cfg_.hitLatency;
        return out;
    }

    // The tag was evicted while its fill is outstanding: merge.
    if (auto it = findMshr(line_addr); it != mshrs_.end()) {
        if (it->readyAt > now) {
            accesses_.inc();
            mshrMerges_.inc();
            out.hit = false;
            out.mshrMerged = true;
            out.readyAt = it->readyAt;
            return out;
        }
        mshrs_.erase(it);
    }

    if (mshrs_.size() >= cfg_.numMshrs) {
        reapMshrs(now);
        if (mshrs_.size() >= cfg_.numMshrs) {
            // Structural stall: the caller must retry once an
            // outstanding fill returns. Not counted as an access.
            mshrStalls_.inc();
            out.needRetry = true;
            out.readyAt = std::max(now + 1, earliestMshrFree());
            return out;
        }
    }

    accesses_.inc();
    if (trace_)
        trace_->instantAt(TraceCat::L1, "l1_miss", traceTid_, now,
                          "line", line_addr, "warp",
                          static_cast<std::uint64_t>(warp_id));
    auto shared = mem_.access(line_addr, false, now + cfg_.hitLatency,
                              AccessSource::Data);
    mshrs_.insert(std::lower_bound(mshrs_.begin(), mshrs_.end(),
                                   line_addr,
                                   [](const Mshr &m, PhysAddr l) {
                                       return m.line < l;
                                   }),
                  Mshr{line_addr, shared.readyAt});
    missLatency_.sample(shared.readyAt - now);

    // Allocate the tag now (fetch-on-miss with immediate allocation);
    // the evicted victim is reported to the CCWS hook.
    auto victim = array_.insert(line_addr, LineInfo{warp_id});
    if (victim) {
        evictions_.inc();
        if (onEvict_)
            onEvict_(victim->tag, victim->payload.allocWarp);
    }

    out.hit = false;
    out.dram = shared.dram;
    out.readyAt = shared.readyAt;
    return out;
}

void
L1Cache::flush()
{
    array_.flush();
    mshrs_.clear();
}

void
L1Cache::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".accesses", &accesses_);
    reg.addCounter(prefix + ".hits", &hits_);
    reg.addCounter(prefix + ".mshr_merges", &mshrMerges_);
    reg.addCounter(prefix + ".mshr_stalls", &mshrStalls_);
    reg.addCounter(prefix + ".evictions", &evictions_);
    reg.addHistogram(prefix + ".miss_latency", &missLatency_);
}

} // namespace gpummu
