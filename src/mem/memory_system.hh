/**
 * @file
 * Shared memory system: interconnect, L2 partitions and DRAM channels.
 *
 * The layout mirrors GPGPU-Sim's memory partitions as used by the
 * paper: the line address selects one of N partitions, each owning a
 * slice of the unified L2 and one DRAM channel. Timing is modelled as
 * fixed latencies plus busy-until queueing at the L2 slice and the
 * DRAM channel, so extra page-walk traffic visibly loads the system.
 */

#ifndef MEM_MEMORY_SYSTEM_HH
#define MEM_MEMORY_SYSTEM_HH

#include <memory>
#include <vector>

#include "mem/request.hh"
#include "mem/set_assoc.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

class TraceSink;

struct MemorySystemConfig
{
    unsigned numPartitions = 8;       ///< memory channels (paper: 8)
    std::size_t l2BytesPerPartition = 128 * 1024; ///< paper: 128KB
    std::size_t l2Ways = 8;
    /** One-way shader-to-partition interconnect latency. */
    Cycle icntLatency = 12;
    /** L2 slice array access latency. */
    Cycle l2HitLatency = 24;
    /** DRAM access latency beyond the L2 (row mix folded in). */
    Cycle dramLatency = 140;
    /** L2 slice occupancy per request (bandwidth model). */
    Cycle l2ServiceInterval = 2;
    /** DRAM channel occupancy per request. */
    Cycle dramServiceInterval = 8;
    /**
     * Arbitrate page-walk traffic ahead of demand data (translation
     * responses unblock far more work per byte, so memory
     * controllers prioritize them). Walks still queue against other
     * walks, and can jump at most walkQueueCap cycles of the demand
     * backlog, so a saturated channel still slows them.
     */
    bool prioritizeWalks = true;
    Cycle l2WalkQueueCap = 48;
    Cycle dramWalkQueueCap = 120;
};

/**
 * The shared side of the hierarchy. Thread-unsafe by design; the
 * simulator is single threaded.
 */
class MemorySystem
{
  public:
    explicit MemorySystem(const MemorySystemConfig &cfg);

    /**
     * Timed access for one cache line from a shader core or PTW.
     *
     * @param line_addr line (not byte) address
     * @param is_write  write-through store when true
     * @param now       issue cycle
     * @param source    demand data vs. page walk, for stats
     * @return completion outcome; hit reflects the L2 slice.
     */
    AccessOutcome access(PhysAddr line_addr, bool is_write, Cycle now,
                         AccessSource source);

    /** Drop all cached lines (tests / kernel boundaries). */
    void flushL2();

    /** Register statistics under the given prefix. */
    void regStats(StatRegistry &reg, const std::string &prefix);

    /** Attach an event trace sink (observation-only; may be null). */
    void setTraceSink(TraceSink *sink) { trace_ = sink; }

    // Aggregate statistics, exposed for experiment reports.
    std::uint64_t l2Accesses() const { return l2Accesses_.value(); }
    std::uint64_t l2Hits() const { return l2Hits_.value(); }
    std::uint64_t dramAccesses() const { return dramAccesses_.value(); }
    std::uint64_t walkAccesses() const { return walkAccesses_.value(); }
    std::uint64_t walkL2Hits() const { return walkL2Hits_.value(); }

  private:
    struct Partition
    {
        explicit Partition(const MemorySystemConfig &cfg)
            : l2(cfg.l2BytesPerPartition / kLineSize, cfg.l2Ways)
        {}

        SetAssocArray<char> l2;
        Cycle l2BusyUntil = 0;
        Cycle dramBusyUntil = 0;
        Cycle l2BusyUntilWalk = 0;
        Cycle dramBusyUntilWalk = 0;
    };

    std::size_t partitionIndex(PhysAddr line_addr) const;

    MemorySystemConfig cfg_;
    std::vector<Partition> partitions_;
    TraceSink *trace_ = nullptr;

    Counter l2Accesses_;
    Counter l2Hits_;
    Counter dramAccesses_;
    Counter walkAccesses_;
    Counter walkL2Hits_;
    Counter writes_;
};

} // namespace gpummu

#endif // MEM_MEMORY_SYSTEM_HH
