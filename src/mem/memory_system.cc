#include "mem/memory_system.hh"

#include <algorithm>

#include "trace/trace.hh"

namespace gpummu {

MemorySystem::MemorySystem(const MemorySystemConfig &cfg) : cfg_(cfg)
{
    GPUMMU_ASSERT(cfg.numPartitions > 0);
    partitions_.reserve(cfg.numPartitions);
    for (unsigned i = 0; i < cfg.numPartitions; ++i)
        partitions_.emplace_back(cfg);
}

std::size_t
MemorySystem::partitionIndex(PhysAddr line_addr) const
{
    // Mix the address so power-of-two strides spread across channels.
    const std::uint64_t mixed = line_addr ^ (line_addr >> 7);
    return mixed % partitions_.size();
}

AccessOutcome
MemorySystem::access(PhysAddr line_addr, bool is_write, Cycle now,
                     AccessSource source)
{
    const std::size_t part_idx = partitionIndex(line_addr);
    Partition &part = partitions_[part_idx];
    const bool walk_lane =
        cfg_.prioritizeWalks && source == AccessSource::PageWalk;
    const int tid = static_cast<int>(part_idx);
    const bool is_walk = source == AccessSource::PageWalk;

    // Request crosses the interconnect, then queues at the L2 slice.
    // Prioritized page walks arbitrate on their own lane.
    const Cycle at_l2 = now + cfg_.icntLatency;
    Cycle l2_start;
    if (walk_lane) {
        const Cycle demand_view =
            std::min(part.l2BusyUntil, at_l2 + cfg_.l2WalkQueueCap);
        l2_start = std::max({at_l2, part.l2BusyUntilWalk, demand_view});
        part.l2BusyUntilWalk = l2_start + cfg_.l2ServiceInterval;
    } else {
        l2_start = std::max(at_l2, part.l2BusyUntil);
        part.l2BusyUntil = l2_start + cfg_.l2ServiceInterval;
    }

    l2Accesses_.inc();
    if (is_write)
        writes_.inc();
    if (source == AccessSource::PageWalk)
        walkAccesses_.inc();

    auto res = part.l2.lookup(line_addr);
    AccessOutcome out;
    if (res.hit) {
        l2Hits_.inc();
        if (source == AccessSource::PageWalk)
            walkL2Hits_.inc();
        if (trace_)
            trace_->instantAt(TraceCat::L2, "l2_hit", tid, l2_start,
                              "line", line_addr, "walk", is_walk);
        out.hit = true;
        out.readyAt = l2_start + cfg_.l2HitLatency + cfg_.icntLatency;
        return out;
    }

    if (trace_)
        trace_->instantAt(TraceCat::L2, "l2_miss", tid, l2_start,
                          "line", line_addr, "walk", is_walk);

    if (is_write) {
        // Coalesced GPU stores write whole lines: the L2 allocates
        // the line without fetching it, so store misses do not
        // consume DRAM read bandwidth (the eventual writeback is
        // folded into the channel occupancy model).
        part.l2.insert(line_addr, 0);
        out.hit = false;
        out.readyAt = l2_start + cfg_.l2HitLatency + cfg_.icntLatency;
        return out;
    }

    // L2 miss: queue at the DRAM channel, then fill the L2 slice.
    const Cycle at_dram = l2_start + cfg_.l2HitLatency;
    Cycle dram_start;
    if (walk_lane) {
        const Cycle demand_view = std::min(
            part.dramBusyUntil, at_dram + cfg_.dramWalkQueueCap);
        dram_start =
            std::max({at_dram, part.dramBusyUntilWalk, demand_view});
        part.dramBusyUntilWalk =
            dram_start + cfg_.dramServiceInterval;
    } else {
        dram_start = std::max(at_dram, part.dramBusyUntil);
        part.dramBusyUntil = dram_start + cfg_.dramServiceInterval;
    }
    dramAccesses_.inc();
    if (trace_)
        trace_->span(TraceCat::Dram, "dram_busy", tid, dram_start,
                     cfg_.dramServiceInterval, "line", line_addr,
                     "walk", is_walk);

    part.l2.insert(line_addr, 0);

    out.hit = false;
    out.dram = true;
    out.readyAt = dram_start + cfg_.dramLatency + cfg_.icntLatency;
    return out;
}

void
MemorySystem::flushL2()
{
    for (auto &part : partitions_)
        part.l2.flush();
}

void
MemorySystem::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".l2.accesses", &l2Accesses_);
    reg.addCounter(prefix + ".l2.hits", &l2Hits_);
    reg.addCounter(prefix + ".dram.accesses", &dramAccesses_);
    reg.addCounter(prefix + ".walk.accesses", &walkAccesses_);
    reg.addCounter(prefix + ".walk.l2_hits", &walkL2Hits_);
    reg.addCounter(prefix + ".writes", &writes_);
}

} // namespace gpummu
