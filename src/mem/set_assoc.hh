/**
 * @file
 * Generic set-associative array with true-LRU replacement.
 *
 * Shared by the L1/L2 data caches, the TLB, and the CCWS victim tag
 * arrays. The payload type is a template parameter; lookups report
 * the LRU depth of the hit (depth 0 = MRU), which TCWS uses to weight
 * lost-locality scores.
 */

#ifndef MEM_SET_ASSOC_HH
#define MEM_SET_ASSOC_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/logging.hh"

namespace gpummu {

template <typename Payload>
class SetAssocArray
{
  public:
    struct Victim
    {
        std::uint64_t tag;
        Payload payload;
    };

    struct LookupResult
    {
        bool hit = false;
        /** LRU stack depth of the hit: 0 is MRU. Valid when hit. */
        unsigned depth = 0;
        Payload *payload = nullptr;
    };

    /**
     * @param num_entries total entries (must be a multiple of ways)
     * @param ways        associativity; 0 means fully associative
     */
    SetAssocArray(std::size_t num_entries, std::size_t ways)
    {
        GPUMMU_ASSERT(num_entries > 0);
        if (ways == 0 || ways > num_entries)
            ways = num_entries;
        GPUMMU_ASSERT(num_entries % ways == 0,
                      "entries ", num_entries, " not divisible by ways ",
                      ways);
        ways_ = ways;
        numSets_ = num_entries / ways;
        sets_.resize(numSets_);
        for (auto &set : sets_)
            set.reserve(ways_);
    }

    std::size_t numEntries() const { return numSets_ * ways_; }
    std::size_t numSets() const { return numSets_; }
    std::size_t ways() const { return ways_; }

    /** Look up a tag and promote it to MRU on a hit. */
    LookupResult
    lookup(std::uint64_t tag)
    {
        auto &set = setFor(tag);
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].tag == tag) {
                LookupResult res;
                res.hit = true;
                res.depth = static_cast<unsigned>(i);
                // Move to MRU position (front).
                Entry e = std::move(set[i]);
                set.erase(set.begin() + static_cast<long>(i));
                set.insert(set.begin(), std::move(e));
                res.payload = &set.front().payload;
                return res;
            }
        }
        return LookupResult{};
    }

    /** Look up without touching LRU state (for inspection/tests). */
    const Payload *
    peek(std::uint64_t tag) const
    {
        const auto &set = setFor(tag);
        for (const auto &e : set) {
            if (e.tag == tag)
                return &e.payload;
        }
        return nullptr;
    }

    /**
     * Insert a tag at MRU, evicting LRU if the set is full. If the
     * tag is already present it is overwritten and promoted.
     *
     * @return the evicted entry, if any.
     */
    std::optional<Victim>
    insert(std::uint64_t tag, Payload payload)
    {
        auto &set = setFor(tag);
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].tag == tag) {
                set.erase(set.begin() + static_cast<long>(i));
                break;
            }
        }
        std::optional<Victim> victim;
        if (set.size() == ways_) {
            victim = Victim{set.back().tag, std::move(set.back().payload)};
            set.pop_back();
        }
        set.insert(set.begin(), Entry{tag, std::move(payload)});
        return victim;
    }

    /** Remove one tag if present. @return true when it was present. */
    bool
    invalidate(std::uint64_t tag)
    {
        auto &set = setFor(tag);
        for (std::size_t i = 0; i < set.size(); ++i) {
            if (set[i].tag == tag) {
                set.erase(set.begin() + static_cast<long>(i));
                return true;
            }
        }
        return false;
    }

    /** Drop every entry (TLB shootdown / kernel switch). */
    void
    flush()
    {
        for (auto &set : sets_)
            set.clear();
    }

    /**
     * Remove every entry matching pred(tag, payload) — a targeted
     * shootdown (e.g. one ASID's range). Returns the victims in
     * (set, MRU->LRU) order so callers can report each eviction;
     * surviving entries keep their LRU order.
     */
    template <typename Pred>
    std::vector<Victim>
    removeIf(Pred &&pred)
    {
        std::vector<Victim> victims;
        for (auto &set : sets_) {
            for (std::size_t i = 0; i < set.size();) {
                if (pred(set[i].tag, set[i].payload)) {
                    victims.push_back(Victim{
                        set[i].tag, std::move(set[i].payload)});
                    set.erase(set.begin() + static_cast<long>(i));
                } else {
                    ++i;
                }
            }
        }
        return victims;
    }

    /** Number of currently valid entries. */
    std::size_t
    occupancy() const
    {
        std::size_t n = 0;
        for (const auto &set : sets_)
            n += set.size();
        return n;
    }

    /**
     * Visit every valid entry as fn(set_index, tag, payload), in MRU
     * -> LRU order within each set. Read-only: invariant sweeps must
     * not disturb replacement state.
     */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t s = 0; s < sets_.size(); ++s) {
            for (const Entry &e : sets_[s])
                fn(s, e.tag, e.payload);
        }
    }

  private:
    struct Entry
    {
        std::uint64_t tag;
        Payload payload;
    };

    using Set = std::vector<Entry>;

    Set &setFor(std::uint64_t tag) { return sets_[tag % numSets_]; }
    const Set &setFor(std::uint64_t tag) const
    {
        return sets_[tag % numSets_];
    }

    std::size_t ways_;
    std::size_t numSets_;
    std::vector<Set> sets_;
};

} // namespace gpummu

#endif // MEM_SET_ASSOC_HH
