/**
 * @file
 * Memory request descriptors shared across the hierarchy.
 */

#ifndef MEM_REQUEST_HH
#define MEM_REQUEST_HH

#include "sim/types.hh"

namespace gpummu {

/** Default GPU cache line size, matching the paper (128 bytes). */
inline constexpr unsigned kLineShift = 7;
inline constexpr std::uint64_t kLineSize = 1ULL << kLineShift;

/** Byte address -> cache line address. */
inline PhysAddr
lineAddrOf(PhysAddr byte_addr)
{
    return byte_addr >> kLineShift;
}

/** Who generated a shared-memory-system access. */
enum class AccessSource
{
    Data,     ///< demand data from an L1 miss or write-through store
    PageWalk, ///< page table walker reference
};

/** Outcome of a timed access into some level of the hierarchy. */
struct AccessOutcome
{
    /** Cycle at which the data is back at the requester. */
    Cycle readyAt = 0;
    /** Hit in this level's array (or merged into an existing MSHR). */
    bool hit = false;
    /** The request was merged into an outstanding miss to this line. */
    bool mshrMerged = false;
    /** No MSHR was available; the requester must retry later. */
    bool needRetry = false;
    /** A DRAM channel serviced the request (missed every cache). */
    bool dram = false;
};

} // namespace gpummu

#endif // MEM_REQUEST_HH
