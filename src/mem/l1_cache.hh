/**
 * @file
 * Per-shader-core L1 data cache.
 *
 * Matches the paper's setup: 32KB, 128-byte lines, LRU, virtually
 * indexed / physically tagged (so TLB lookup overlaps set selection;
 * the timing consequences live in the MMU, the tag check here is on
 * physical line addresses). Loads allocate; stores are write-through
 * no-allocate, which is the GPGPU-Sim default for global stores.
 *
 * Each line remembers the warp that allocated it and an eviction
 * listener reports victims, which is exactly the hook cache-conscious
 * wavefront scheduling (CCWS) needs to maintain its per-warp victim
 * tag arrays.
 */

#ifndef MEM_L1_CACHE_HH
#define MEM_L1_CACHE_HH

#include <functional>
#include <string>
#include <vector>

#include "mem/memory_system.hh"
#include "mem/request.hh"
#include "mem/set_assoc.hh"
#include "sim/stats.hh"

namespace gpummu {

struct L1CacheConfig
{
    std::size_t bytes = 32 * 1024; ///< paper: 32KB per core
    std::size_t ways = 8;
    Cycle hitLatency = 1;
    unsigned numMshrs = 96;
};

class L1Cache
{
  public:
    /** (evicted line address, warp that allocated it). */
    using EvictionListener = std::function<void(PhysAddr, int)>;

    L1Cache(const L1CacheConfig &cfg, MemorySystem &mem);

    /**
     * Timed access for one line by one warp.
     *
     * @param line_addr physical line address
     * @param is_write  store (write-through, no allocate)
     * @param now       issue cycle
     * @param warp_id   warp issuing the access (for CCWS ownership)
     */
    AccessOutcome access(PhysAddr line_addr, bool is_write, Cycle now,
                         int warp_id);

    /** Install the CCWS eviction hook (may be empty). */
    void setEvictionListener(EvictionListener fn)
    {
        onEvict_ = std::move(fn);
    }

    /** Attach an event trace sink; @p tid labels this instance. */
    void setTraceSink(TraceSink *sink, int tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

    void flush();

    void regStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const
    {
        return accesses_.value() - hits_.value();
    }
    /** Average full L1 miss latency (cycles), for Fig. 4. */
    const Histogram &missLatency() const { return missLatency_; }

    /** Garbage-collect completed MSHRs (called lazily by access). */
    void reapMshrs(Cycle now);

    /** Earliest cycle at which an outstanding fill completes (the
     *  cycle a full MSHR file frees up); kCycleNever when empty. */
    Cycle earliestMshrFree() const;

  private:
    struct LineInfo
    {
        int allocWarp = -1;
    };

    /** One outstanding line fill. */
    struct Mshr
    {
        PhysAddr line;
        Cycle readyAt;
    };

    /** Iterator to the MSHR tracking @p line, or end(). */
    std::vector<Mshr>::iterator findMshr(PhysAddr line);

    L1CacheConfig cfg_;
    MemorySystem &mem_;
    SetAssocArray<LineInfo> array_;
    /**
     * Outstanding line fills, sorted by line address. A flat sorted
     * vector (capacity reserved to numMshrs up front) beats the old
     * unordered_map here: the file holds at most ~96 entries, every
     * miss did a node allocation, and the per-access find dominated.
     * Binary search + memmove on so few POD entries is cheaper and
     * allocation-free.
     */
    std::vector<Mshr> mshrs_;
    EvictionListener onEvict_;
    TraceSink *trace_ = nullptr;
    int traceTid_ = 0;

    Counter accesses_;
    Counter hits_;
    Counter mshrMerges_;
    Counter mshrStalls_;
    Counter evictions_;
    Histogram missLatency_;
};

} // namespace gpummu

#endif // MEM_L1_CACHE_HH
