#include "mmu/l2_tlb.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "telemetry/span.hh"
#include "trace/trace.hh"

namespace gpummu {

L2Tlb::L2Tlb(const L2TlbConfig &cfg, const PageTable &pt,
             EventQueue &eq, unsigned page_shift)
    : cfg_(cfg), pageShift_(page_shift), eq_(eq),
      array_(cfg.entries, cfg.ways)
{
    GPUMMU_ASSERT(cfg.ports >= 1);
    GPUMMU_ASSERT(cfg.mshrs >= 1);
    GPUMMU_ASSERT(cfg.lookupInterval >= 1);
    portFreeAt_.assign(cfg.ports, 0);
    if (cfg_.checkInvariants)
        checker_ = std::make_unique<InvariantChecker>(pt);
}

Cycle
L2Tlb::reservePort(Cycle now)
{
    // Deterministic arbitration: the earliest-free port wins, ties
    // broken by index.
    auto it = std::min_element(portFreeAt_.begin(), portFreeAt_.end());
    const Cycle issue = std::max(now, *it);
    *it = issue + cfg_.lookupInterval;
    return issue;
}

L2Tlb::AccessResult
L2Tlb::access(Vpn tag, Cycle now, WakeFn done)
{
    lookups_.inc();
    const Cycle issue = reservePort(now);
    const Cycle ready = issue + cfg_.hitLatency;

    // The miss-to-issue gap is port queueing; the stages below stamp
    // the disposition on top of it.
    if (spans_)
        spans_->stageAt(tag, SpanStage::L2Lookup, issue);

    auto res = array_.lookup(tag);
    if (res.hit) {
        hits_.inc();
        if (checker_)
            checker_->onTlbHit(tag, res.payload->ppn, pageShift_);
        if (trace_)
            trace_->instantAt(TraceCat::L2Tlb, "l2tlb_hit", traceTid_,
                              issue, "vpn", tag);
        if (spans_)
            spans_->stageAt(tag, SpanStage::L2Hit, ready);
        HitWake *ev = hitArena_.create();
        ev->tlb = this;
        ev->tag = tag;
        ev->t = *res.payload;
        ev->ready = ready;
        ev->done = std::move(done);
        eq_.scheduleRaw(ready, &L2Tlb::fireHitWake, ev);
        return AccessResult{Outcome::Hit, ready};
    }

    if (trace_)
        trace_->instantAt(TraceCat::L2Tlb, "l2tlb_miss", traceTid_,
                          issue, "vpn", tag);

    auto mshr = mshrs_.find(tag);
    if (mshr != mshrs_.end()) {
        // Another core already walks this VPN; its fill wakes us.
        mshrMerges_.inc();
        if (checker_)
            checker_->onMshrMerge(tag);
        if (trace_)
            trace_->instantAt(TraceCat::L2Tlb, "mshr_merge", traceTid_,
                              issue, "vpn", tag);
        // Beside the merge counter: merged-span count == mshr_merges.
        if (spans_)
            spans_->stageAt(tag, SpanStage::L2Merge, issue);
        mshr->second.push_back(std::move(done));
        return AccessResult{Outcome::Merged, ready};
    }

    if (mshrs_.size() >= cfg_.mshrs) {
        // Structural: no MSHR to track the walk, so the requester
        // walks uncovered. fillBypass() still installs the result.
        mshrBypasses_.inc();
        if (trace_)
            trace_->instantAt(TraceCat::L2Tlb, "mshr_bypass",
                              traceTid_, issue, "vpn", tag);
        if (spans_)
            spans_->stageAt(tag, SpanStage::L2Bypass, issue);
        return AccessResult{Outcome::Bypass, ready};
    }

    if (checker_)
        checker_->onMshrAlloc(tag);
    if (trace_) {
        trace_->instantAt(TraceCat::L2Tlb, "mshr_alloc", traceTid_,
                          issue, "vpn", tag);
        trace_->counter(TraceCat::L2Tlb, "mshrs_active", traceTid_,
                        mshrs_.size() + 1);
    }
    if (spans_)
        spans_->stageAt(tag, SpanStage::L2NeedWalk, issue);
    mshrs_[tag].push_back(std::move(done));
    return AccessResult{Outcome::NeedWalk, ready};
}

void
L2Tlb::fireHitWake(void *ctx, Cycle now)
{
    auto *ev = static_cast<HitWake *>(ctx);
    GPUMMU_ASSERT(now == ev->ready);
    // Release the node before the callback: done() may access() this
    // L2 again and needs the slot free for its own completion.
    L2Tlb *tlb = ev->tlb;
    const Vpn tag = ev->tag;
    const Translation t = ev->t;
    const Cycle ready = ev->ready;
    WakeFn done = std::move(ev->done);
    tlb->hitArena_.destroy(ev);
    done(tag, t.ppn, t.isLarge, ready);
}

void
L2Tlb::install(Vpn tag, const Translation &t)
{
    if (checker_)
        checker_->onTlbFill(tag, t.ppn, t.isLarge, pageShift_);
    fills_.inc();
    if (trace_)
        trace_->instant(TraceCat::L2Tlb, "l2tlb_fill", traceTid_,
                        "vpn", tag, "ppn", t.ppn);
    auto victim = array_.insert(tag, t);
    if (victim) {
        evictions_.inc();
        if (trace_)
            trace_->instant(TraceCat::L2Tlb, "l2tlb_evict", traceTid_,
                            "vpn", victim->tag);
        if (onEvict_)
            onEvict_(victim->tag);
    }
    if (checker_) {
        checker_->beginTlbSweep();
        array_.forEach([this](std::size_t set, std::uint64_t tg,
                              const Translation &e) {
            checker_->onTlbEntry(set, tg, e.ppn, e.isLarge,
                                 pageShift_);
        });
        checker_->endTlbSweep();
    }
}

void
L2Tlb::fill(Vpn tag, const Translation &t, Cycle ready)
{
    // A shootdown between the MSHR's walk issue and this fill poisons
    // the tag: the walk read the page table while the mapping was
    // live, so its waiters are still woken (their access predates the
    // unmap), but the now-stale translation must not be installed.
    const bool poisoned = poisoned_.erase(tag) != 0;
    if (!poisoned)
        install(tag, t);
    auto it = mshrs_.find(tag);
    GPUMMU_ASSERT(it != mshrs_.end(),
                  "L2 TLB fill for VPN ", tag, " without an MSHR");
    auto waiters = std::move(it->second);
    mshrs_.erase(it);
    wakeupsPerFill_.sample(waiters.size());
    if (trace_)
        trace_->counter(TraceCat::L2Tlb, "mshrs_active", traceTid_,
                        mshrs_.size());
    for (auto &fn : waiters) {
        if (checker_)
            checker_->onMshrWake(tag);
        if (trace_)
            trace_->instant(TraceCat::L2Tlb, "mshr_wake", traceTid_,
                            "vpn", tag);
        fn(tag, t.ppn, t.isLarge, ready);
    }
}

void
L2Tlb::fillBypass(Vpn tag, const Translation &t, Cycle ready)
{
    (void)ready;
    // An MSHR for this tag may exist by now: the bypass was granted
    // while the file was full, and another core allocated one for
    // the same VPN once slots freed. Leave it alone - its owning
    // walk will fill() and wake its waiters; the second install is
    // in-place.
    install(tag, t);
}

void
L2Tlb::flush()
{
    flushes_.inc();
    std::vector<Vpn> victims;
    array_.forEach([&victims](std::size_t, std::uint64_t tag,
                              const Translation &) {
        victims.push_back(tag);
    });
    array_.flush();
    for (Vpn tag : victims) {
        if (trace_)
            trace_->instant(TraceCat::L2Tlb, "l2tlb_evict", traceTid_,
                            "vpn", tag);
        if (onEvict_)
            onEvict_(tag);
    }
}

std::size_t
L2Tlb::invalidateMatching(const std::function<bool(std::uint64_t)> &pred)
{
    auto victims = array_.removeIf(
        [&pred](std::uint64_t tag, const Translation &) {
            return pred(tag);
        });
    for (const auto &v : victims) {
        if (trace_)
            trace_->instant(TraceCat::L2Tlb, "l2tlb_evict", traceTid_,
                            "vpn", v.tag);
        if (onEvict_)
            onEvict_(v.tag);
    }
    for (const auto &[tag, waiters] : mshrs_) {
        (void)waiters;
        if (pred(tag))
            poisoned_.insert(tag);
    }
    return victims.size();
}

void
L2Tlb::addCheckedSpace(Asid asid, const PageTable &pt)
{
    if (checker_)
        checker_->addSpace(asid, pt);
}

void
L2Tlb::checkEndOfKernel() const
{
    if (!checker_)
        return;
    GPUMMU_ASSERT(poisoned_.empty(), poisoned_.size(),
                  " poisoned MSHR tags never filled (first ",
                  poisoned_.empty() ? 0 : *poisoned_.begin(), ")");
    GPUMMU_ASSERT(mshrs_.empty(), mshrs_.size(),
                  " translation MSHRs still live at kernel end "
                  "(first VPN ",
                  mshrs_.empty() ? 0 : mshrs_.begin()->first, ")");
    checker_->checkMshrsDrained();
    checker_->beginTlbSweep();
    array_.forEach([this](std::size_t set, std::uint64_t tag,
                          const Translation &e) {
        checker_->onTlbEntry(set, tag, e.ppn, e.isLarge, pageShift_);
    });
    checker_->endTlbSweep();
}

void
L2Tlb::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".lookups", &lookups_);
    reg.addCounter(prefix + ".hits", &hits_);
    reg.addCounter(prefix + ".mshr_merges", &mshrMerges_);
    reg.addCounter(prefix + ".mshr_bypasses", &mshrBypasses_);
    reg.addCounter(prefix + ".fills", &fills_);
    reg.addCounter(prefix + ".evictions", &evictions_);
    reg.addCounter(prefix + ".flushes", &flushes_);
    reg.addHistogram(prefix + ".wakeups_per_fill", &wakeupsPerFill_);
}

} // namespace gpummu
