#include "mmu/iommu.hh"

#include "sim/logging.hh"

namespace gpummu {

Iommu::Iommu(const IommuConfig &cfg, AddressSpace &as,
             MemorySystem &mem, EventQueue &eq)
    : cfg_(cfg), as_(as), tlb_(cfg.tlb),
      walkers_(cfg.ptw, as.pageTable(), mem, eq)
{
    GPUMMU_ASSERT(!as.usesLargePages() || true,
                  "IOMMU model translates at 4KB granularity");
    if (cfg_.checkInvariants) {
        checker_ =
            std::make_unique<InvariantChecker>(as_.pageTable());
        tlb_.setChecker(checker_.get(), kPageShift4K);
        walkers_.setChecker(checker_.get());
    }
}

void
Iommu::translate(Vpn vpn, Cycle now, DoneFn done)
{
    // Shared lookup port: requests from all cores serialize here.
    const Cycle start = std::max(now, portFreeAt_);
    portFreeAt_ = start + cfg_.lookupInterval;
    const Cycle looked_up = start + cfg_.lookupLatency;

    auto res = tlb_.lookup(vpn, /*warp=*/-1);
    if (res.hit) {
        if (checker_)
            checker_->onTlbHit(vpn, res.ppn, kPageShift4K);
        done(res.ppn, looked_up);
        return;
    }

    auto it = outstanding_.find(vpn);
    if (it != outstanding_.end()) {
        mergedWalks_.inc();
        it->second.push_back(std::move(done));
        return;
    }
    outstanding_[vpn].push_back(std::move(done));

    walkers_.requestBatch(
        {vpn}, looked_up, [this, now](Vpn walked, Cycle finish) {
            auto path = as_.pageTable().walk(walked);
            const std::uint64_t frame = path.result.ppn;
            tlb_.fill(walked, Translation{frame, path.result.isLarge});
            missLatency_.sample(finish - now);
            auto wit = outstanding_.find(walked);
            GPUMMU_ASSERT(wit != outstanding_.end());
            auto waiters = std::move(wit->second);
            outstanding_.erase(wit);
            for (auto &fn : waiters)
                fn(frame, finish);
        });
}

void
Iommu::checkEndOfKernel() const
{
    if (!checker_)
        return;
    GPUMMU_ASSERT(outstanding_.empty(), outstanding_.size(),
                  " VPNs still outstanding in the IOMMU at kernel "
                  "end");
    walkers_.checkDrained();
    tlb_.checkSweep();
}

void
Iommu::regStats(StatRegistry &reg, const std::string &prefix)
{
    tlb_.regStats(reg, prefix + ".tlb");
    walkers_.regStats(reg, prefix + ".ptw");
    reg.addCounter(prefix + ".merged_walks", &mergedWalks_);
    reg.addHistogram(prefix + ".miss_latency", &missLatency_);
}

} // namespace gpummu
