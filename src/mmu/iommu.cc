#include "mmu/iommu.hh"

#include "sim/logging.hh"
#include "telemetry/span.hh"
#include "vm/process.hh"

namespace gpummu {

Iommu::Iommu(const IommuConfig &cfg, AddressSpace &as,
             MemorySystem &mem, EventQueue &eq)
    : cfg_(cfg), as_(as), eq_(eq), tlb_(cfg.tlb),
      walkers_(cfg.ptw, as.pageTable(), mem, eq)
{
    GPUMMU_ASSERT(!as.usesLargePages() || true,
                  "IOMMU model translates at 4KB granularity");
    if (cfg_.checkInvariants) {
        checker_ = std::make_unique<InvariantChecker>(
            as_.pageTable(), as_.asid());
        tlb_.setChecker(checker_.get(), kPageShift4K);
        walkers_.setChecker(checker_.get());
    }
}

void
Iommu::attachProcesses(ProcessManager *pm)
{
    pm_ = pm;
    if (checker_ && pm_ != nullptr) {
        for (const auto &p : pm_->all())
            if (p->asid != as_.asid())
                checker_->addSpace(p->asid, p->as.pageTable());
    }
}

AddressSpace &
Iommu::spaceFor(Asid asid)
{
    if (asid == as_.asid())
        return as_;
    GPUMMU_ASSERT(pm_ != nullptr, "translate for ASID ", asid,
                  " without attachProcesses");
    return pm_->process(asid).as;
}

void
Iommu::issueWalk(Vpn key, Cycle at, Cycle started)
{
    const Asid asid = keyAsid(key);
    AddressSpace &as = spaceFor(asid);
    walkers_.requestBatchFor(
        as.pageTable(), asid, {keyLocal(key)}, at,
        [this, key, started, &as](Vpn walked, Cycle finish) {
            auto path = as.pageTable().walk(walked);
            const std::uint64_t frame = path.result.ppn;
            tlb_.fill(asidKey(keyAsid(key), walked),
                      Translation{frame, path.result.isLarge});
            missLatency_.sample(finish - started);
            // The owning span and every request merged behind it
            // fill and retire at the same completion cycle.
            if (spans_)
                spans_->closeAllAt(key, SpanStage::Fill, finish);
            auto wit = outstanding_.find(key);
            GPUMMU_ASSERT(wit != outstanding_.end());
            auto waiters = std::move(wit->second);
            outstanding_.erase(wit);
            for (auto &fn : waiters)
                fn(frame, finish);
        });
}

void
Iommu::translate(Vpn key, Cycle now, DoneFn done)
{
    // Shared lookup port: requests from all cores serialize here.
    const Cycle start = std::max(now, portFreeAt_);
    portFreeAt_ = start + cfg_.lookupInterval;
    const Cycle looked_up = start + cfg_.lookupLatency;

    // Depart -> probe is interconnect + port queueing; requests that
    // reach translate() directly (tests) open their span here.
    if (spans_)
        spans_->openOrStageAt(key, SpanStage::IommuLookup, start,
                              spanTid_);

    auto res = tlb_.lookup(key, /*warp=*/-1);
    if (res.hit) {
        if (checker_)
            checker_->onTlbHit(key, res.ppn, kPageShift4K);
        if (spans_)
            spans_->closeNewestAt(key, SpanStage::IommuHit, looked_up);
        done(res.ppn, looked_up);
        return;
    }

    auto it = outstanding_.find(key);
    if (it != outstanding_.end()) {
        mergedWalks_.inc();
        // Beside the merge counter: IommuMerge-stage span count ==
        // iommu merged_walks (conservation check).
        if (spans_)
            spans_->stageAt(key, SpanStage::IommuMerge, start);
        it->second.push_back(std::move(done));
        return;
    }
    outstanding_[key].push_back(std::move(done));

    const Asid asid = keyAsid(key);
    const Vpn vpn = keyLocal(key);
    AddressSpace &as = spaceFor(asid);
    if (pm_ != nullptr && !as.pageTable().translate(vpn)) {
        // Minor fault: the page is reserved but not yet backed. The
        // OS handler runs for faultLatency cycles, faults the page
        // in, and the walk retries against the now-mapped PTE.
        GPUMMU_ASSERT(as.isReserved(vpn),
                      "IOMMU access to unreserved VPN ", vpn,
                      " (asid ", asid, ")");
        pm_->noteFault(asid);
        if (spans_)
            spans_->stageAt(key, SpanStage::IommuFault, looked_up);
        const Cycle serviced =
            looked_up + pm_->osConfig().faultLatency;
        eq_.schedule(serviced, [this, key, now, serviced, &as]() {
            as.faultIn(keyLocal(key));
            issueWalk(key, serviced, now);
        });
        return;
    }

    issueWalk(key, looked_up, now);
}

void
Iommu::checkEndOfKernel() const
{
    if (!checker_)
        return;
    GPUMMU_ASSERT(outstanding_.empty(), outstanding_.size(),
                  " VPNs still outstanding in the IOMMU at kernel "
                  "end");
    walkers_.checkDrained();
    tlb_.checkSweep();
}

void
Iommu::regStats(StatRegistry &reg, const std::string &prefix)
{
    tlb_.regStats(reg, prefix + ".tlb");
    walkers_.regStats(reg, prefix + ".ptw");
    reg.addCounter(prefix + ".merged_walks", &mergedWalks_);
    reg.addHistogram(prefix + ".miss_latency", &missLatency_);
}

} // namespace gpummu
