/**
 * @file
 * Hardware page table walkers, naive and scheduled.
 *
 * Naive mode reproduces the paper's strawman: K independent walkers,
 * each performing one serial four-reference x86 walk at a time;
 * concurrent TLB misses queue behind them.
 *
 * Scheduled mode implements the paper's PTW scheduling contribution
 * (Figs. 8-9): all pending walks are processed level by level through
 * one comparator tree. Exactly repeated references (same PML4/PDP/PD
 * entry) are issued once, and distinct PTEs falling on one 128-byte
 * line are issued back to back so the later ones hit in the shared
 * L2. The paper's 3-walk example drops from 12 loads to 7; the unit
 * tests check that exact case.
 */

#ifndef MMU_PTW_HH
#define MMU_PTW_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <functional>
#include <string>
#include <vector>

#include "mem/memory_system.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace gpummu {

class HeatProfiler;
class InvariantChecker;
class SpanTracker;
class TraceSink;

struct PtwConfig
{
    /** Independent naive walkers (paper compares 1, 2, 4, 8). */
    unsigned numWalkers = 1;
    /** Enable batch-coalescing walk scheduling (uses one walker). */
    bool scheduling = false;
    /**
     * Page walk cache: a small per-core cache of page-table *lines*
     * (the paging-structure caches x86 walkers ship with; see the
     * Intel paging-structure-cache note the paper cites). Upper
     * radix levels hit here almost always; leaf PTE lines mostly
     * still travel to the shared L2.
     */
    std::size_t pwcLines = 16;
    std::size_t pwcWays = 4;
    Cycle pwcHitLatency = 6;
    /**
     * All walkers of one core share a single issue port into the
     * memory system; successive references occupy it for this many
     * cycles. Multiple naive walkers therefore overlap latency but
     * not issue bandwidth.
     */
    Cycle portInterval = 4;
};

/**
 * The walker pool attached to one shader core's MMU.
 */
class PageWalkers
{
  public:
    /** Completion callback: (vpn4k, finish cycle). */
    using DoneFn = std::function<void(Vpn, Cycle)>;

    PageWalkers(const PtwConfig &cfg, const PageTable &pt,
                MemorySystem &mem, EventQueue &eq);

    /**
     * Request walks for one warp's batch of missing 4KB-granularity
     * VPNs. The callback fires once per VPN at its completion cycle.
     */
    void requestBatch(const std::vector<Vpn> &vpns, Cycle now,
                      DoneFn done);

    /**
     * Multi-process variant: walk @p vpns through an explicit page
     * table on behalf of @p asid. Checker and heat-profiler keys are
     * ASID-composed so concurrent processes cannot alias; the done
     * callback still receives the local VPN. requestBatch() is the
     * (pt constructor-bound, asid 0) special case. Walks from
     * different spaces coalesce in one scheduled batch only when
     * their paging-structure lines physically coincide — they never
     * do, as each table owns its frames.
     */
    void requestBatchFor(const PageTable &pt, Asid asid,
                         const std::vector<Vpn> &vpns, Cycle now,
                         DoneFn done);

    /**
     * Shootdown hook: drop every walk-cache line backed by one of
     * @p pt's paging-structure pages (an unmap may retire table pages
     * by coalescing, and the IPI contract flushes the leaf lines).
     * Returns the number of lines invalidated.
     */
    std::size_t invalidatePagingLines(const PageTable &pt);

    /** True while any walk is in flight or queued. */
    bool busy() const { return inFlight_ > 0 || !queue_.empty(); }

    unsigned inFlight() const { return inFlight_; }

    /**
     * Arm invariant checking: walk conservation (every enqueued walk
     * completes exactly once, across batching and coalescing) and
     * paging-structure containment of every issued reference and
     * walk-cache entry.
     */
    void setChecker(InvariantChecker *chk) { checker_ = chk; }

    /** Attach an event trace sink; @p tid labels this instance. */
    void
    setTraceSink(TraceSink *sink, int tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

    /** Attach a translation heat profiler; @p tid labels this
     *  instance in sharer masks (-1 for GPU-wide pools). */
    void
    setHeatProfiler(HeatProfiler *heat, int tid)
    {
        heat_ = heat;
        heatTid_ = tid;
    }

    /**
     * Attach a translation-lifecycle span tracker (observation-only):
     * stamps enqueue / grant / completion on each walk's span and
     * classifies every issued reference by radix level and service
     * point (walk cache / shared L2 / DRAM). @p key_shift converts
     * this pool's 4K walk VPNs back to the owner's span-key
     * granularity (pageShift - 12; 0 for 4K owners like the IOMMU).
     */
    void
    setSpanTracker(SpanTracker *spans, int tid, unsigned key_shift)
    {
        spans_ = spans;
        spanTid_ = tid;
        spanKeyShift_ = key_shift;
    }

    /**
     * Kernel-end check: nothing queued or in flight, conservation
     * balanced, every resident walk-cache line still inside a live
     * paging-structure page. No-op when unarmed.
     */
    void checkDrained() const;

    /**
     * Kernel-boundary reset, called once the pool has drained. The
     * issue-port reservation can outlive the last walk's completion
     * (a trailing walk-cache hit completes before its port slot
     * expires whenever portInterval > pwcHitLatency), so without this
     * the next kernel's first reference inherits a stale delay and
     * back-to-back kernels are not timing-independent. The walk cache
     * itself survives: warm paging-structure lines are real state.
     */
    void onKernelDrained();

    void regStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t walksCompleted() const { return walks_.value(); }
    std::uint64_t refsIssued() const { return refsIssued_.value(); }
    std::uint64_t refsEliminated() const
    {
        return refsEliminated_.value();
    }
    std::uint64_t pwcHits() const { return pwcHits_.value(); }
    const Histogram &walkLatency() const { return walkLatency_; }

    const PtwConfig &config() const { return cfg_; }

  private:
    struct PendingWalk
    {
        Vpn vpn;
        Cycle enqueued;
        DoneFn done;
        /** Radix this walk traverses (multi-process: per-walk). */
        const PageTable *pt = nullptr;
        Asid asid = 0;
    };

    /** One page-table reference of an in-flight walk/batch. */
    struct BatchRef
    {
        PhysAddr line = 0;
        /** Indices of walks whose translation this reference yields. */
        std::vector<std::size_t> finishing;
    };

    /**
     * An in-flight walk (naive) or coalesced batch (scheduled).
     * References are grouped by radix level: a level may start only
     * when the previous one finished (the pointer chase), but within
     * a level references pipeline at the port rate - the comparator
     * tree issues them successively (Fig. 9).
     *
     * Arena-pooled: the level-chain event carries a raw pointer to
     * the batch (via EventQueue::scheduleRaw), and the batch is
     * returned to the pool when its last level completes.
     */
    struct ActiveBatch
    {
        std::vector<std::vector<BatchRef>> levels;
        std::vector<PendingWalk> walks;
        std::size_t nextLevel = 0;
        PageWalkers *pool = nullptr;
        unsigned walker = 0;
    };

    /** Arena-pooled per-walk completion event payload. */
    struct WalkDone
    {
        PageWalkers *pool = nullptr;
        Vpn vpn = 0;
        Asid asid = 0;
        Cycle ready = 0;
        Cycle enqueued = 0;
        DoneFn done;
    };

    /** Start the next queued walk on naive walker @p w. */
    void startNaive(unsigned w, Cycle now);

    /** Snapshot the whole queue into one coalesced batch. */
    void startScheduledBatch(unsigned w, Cycle now);

    /** Issue the batch's next level of references; event-chained. */
    void stepLevel(unsigned w, ActiveBatch *batch, Cycle now);

    /** scheduleRaw targets (ctx = arena object). */
    static void fireStepLevel(void *ctx, Cycle now);
    static void fireWalkDone(void *ctx, Cycle now);

    /** One page-table reference at radix @p level, checking the walk
     *  cache first.
     *  @return the cycle the referenced entry is available. */
    Cycle walkRef(PhysAddr line_addr, unsigned level, Cycle at);

    /** Dispatch queued work onto free walkers / the batch engine. */
    void pump(Cycle now);

    PtwConfig cfg_;
    const PageTable &pt_;
    MemorySystem &mem_;
    EventQueue &eq_;
    InvariantChecker *checker_ = nullptr;
    TraceSink *trace_ = nullptr;
    int traceTid_ = 0;
    HeatProfiler *heat_ = nullptr;
    int heatTid_ = 0;
    SpanTracker *spans_ = nullptr;
    int spanTid_ = 0;
    unsigned spanKeyShift_ = 0;

    /** Pools for the event payloads above. Declared before the
     *  per-walker state so pending raw events (whose ctx points into
     *  these) are diagnosed by the arena destructor, not by UB, if a
     *  pool is ever torn down mid-walk. */
    Arena<ActiveBatch> batchArena_;
    Arena<WalkDone> doneArena_;

    std::deque<PendingWalk> queue_;
    std::vector<bool> walkerBusy_;
    Cycle portFreeAt_ = 0;
    /** Walk cache payload: the cycle the line's fill completes, so a
     *  hit on a line still in flight from memory waits for it
     *  (no hit-under-fill optimism). */
    SetAssocArray<Cycle> pwc_;
    unsigned inFlight_ = 0;

    Counter walks_;
    Counter refsIssued_;
    Counter refsEliminated_;
    Counter batches_;
    Counter pwcHits_;
    Histogram walkLatency_;
};

} // namespace gpummu

#endif // MMU_PTW_HH
