/**
 * @file
 * Per-shader-core memory management unit.
 *
 * Bundles the TLB, the walker pool, the CACTI access-time model and
 * the non-blocking policy state, and presents the interface the
 * shader core's memory stage drives:
 *
 *  - lookupBatch(): translate a warp's coalesced set of VPNs through
 *    the multi-ported TLB, reporting the port-serialization cost;
 *  - requestWalks(): start walks for the missing VPNs (merging
 *    duplicates into outstanding walks) with per-VPN completion
 *    callbacks;
 *  - memAvailable(): the blocking / hit-under-miss policy gate the
 *    warp scheduler consults before issuing a memory instruction.
 *
 * With `enabled == false` the MMU models the paper's no-TLB baseline:
 * translation is magic and free (the pre-unified-address-space GPU).
 */

#ifndef MMU_MMU_HH
#define MMU_MMU_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "check/invariant_checker.hh"
#include "mmu/cacti_model.hh"
#include "mmu/ptw.hh"
#include "mmu/tlb.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"

namespace gpummu {

class L2Tlb;
class SpanTracker;

struct MmuConfig
{
    /** False models the no-TLB baseline (magic translation). */
    bool enabled = true;
    TlbConfig tlb;
    PtwConfig ptw;
    CactiModel cacti;
    /**
     * Non-blocking feature 1: warps whose lookups all hit may proceed
     * while walks are outstanding (hits under misses). When false the
     * TLB blocks every memory instruction during a miss, the paper's
     * naive strawman.
     */
    bool hitUnderMiss = false;
    /**
     * Non-blocking feature 2: threads of the *missing* warp that hit
     * in the TLB access the L1 immediately instead of waiting for the
     * warp's walks to resolve (overlapped cache access). Consumed by
     * the shader core's memory stage.
     */
    bool cacheOverlap = false;
    /** TLB miss status holding registers (one per warp thread). */
    unsigned mshrs = 32;
    /**
     * Arm the differential reference checker: every TLB fill/hit is
     * verified against a pure functional walk, walks obey
     * conservation, and blocking state must drain by kernel end (see
     * check/invariant_checker.hh). Off by default; adds work but
     * never changes simulated results.
     */
    bool checkInvariants = false;
};

class Mmu
{
  public:
    /** Result of translating one VPN of a warp's batch. */
    struct VpnLookup
    {
        Vpn vpn = 0;
        bool hit = false;
        unsigned depth = 0; ///< LRU depth when hit
        /** Page frame base in pageSize units (valid on hit). */
        std::uint64_t frameBase = 0;
        /** Warp-history snapshot for the common page matrix. */
        std::array<int, 4> history{-1, -1, -1, -1};
        unsigned historyUsed = 0;
    };

    struct BatchResult
    {
        std::vector<VpnLookup> lookups;
        /** Extra pipeline cycles: port serialization + CACTI. */
        Cycle extraCycles = 0;
        bool allHit = true;
    };

    /** (vpn, frame base in pageSize units, completion cycle). */
    using WalkDoneFn =
        std::function<void(Vpn, std::uint64_t, Cycle)>;

    Mmu(const MmuConfig &cfg, AddressSpace &as, MemorySystem &mem,
        EventQueue &eq);

    const MmuConfig &config() const { return cfg_; }

    /** Log2 of the translation granularity (12 or 21). */
    unsigned pageShift() const { return pageShift_; }
    std::uint64_t pageSize() const { return 1ULL << pageShift_; }

    Vpn vpnOf(VirtAddr va) const { return va >> pageShift_; }

    /** Physical byte address from a hit frame base + original VA. */
    PhysAddr
    physAddr(std::uint64_t frame_base, VirtAddr va) const
    {
        return (frame_base << pageShift_) |
               (va & ((1ULL << pageShift_) - 1));
    }

    /**
     * Magic (zero-cost, always-correct) translation for the no-TLB
     * baseline and for store address generation.
     */
    PhysAddr magicTranslate(VirtAddr va) const;

    /**
     * Translate a warp's coalesced VPN set. Misses are identified
     * but walks are *not* started; the caller decides based on the
     * blocking policy (see requestWalks).
     */
    BatchResult lookupBatch(const std::vector<Vpn> &vpns, int warp_id);

    /** Allocation-free variant: results land in @p out (cleared
     *  first); the memory stage passes a reused scratch object. */
    void lookupBatchInto(BatchResult &out,
                         const std::vector<Vpn> &vpns, int warp_id);

    /**
     * Can a warp's memory instruction access the TLB right now?
     * Blocking TLB: only when no walk is outstanding.
     * Hit-under-miss: always (but a *missing* warp must consult
     * canStartMisses()).
     */
    bool memAvailable() const;

    /**
     * May a fresh set of misses start walking? False while walks are
     * outstanding under hit-under-miss (no miss-under-miss support,
     * matching the paper), or when MSHRs would overflow.
     */
    bool canStartMisses(std::size_t count) const;

    /**
     * Begin walks for missing VPNs on behalf of @p warp_id. Duplicate
     * VPNs already being walked are merged into the outstanding
     * entry. @p done fires at each VPN's completion, after the TLB
     * fill.
     */
    void requestWalks(const std::vector<Vpn> &vpns, int warp_id,
                      Cycle now, WalkDoneFn done);

    /**
     * Register a one-shot callback fired when the last outstanding
     * walk drains (hit-under-miss warps waiting to retry a miss).
     */
    void onDrain(std::function<void()> fn);

    bool missOutstanding() const { return !outstanding_.empty(); }
    std::size_t outstandingCount() const { return outstanding_.size(); }

    /**
     * Residency probe by local VPN. The L1 TLB stores ASID-composed
     * tags in multi-process runs; callers holding plain VPNs (the
     * memory stage's bounce check) must come through here rather than
     * tlb().probe().
     */
    bool probeTlb(Vpn vpn) const;

    /** The address space this MMU translates for. */
    Asid asid() const { return asid_; }

    Tlb &tlb() { return tlb_; }
    const Tlb &tlb() const { return tlb_; }
    PageWalkers &walkers() { return walkers_; }
    const PageWalkers &walkers() const { return walkers_; }

    /**
     * Attach the GPU-wide shared second-level TLB. When set, every
     * L1-TLB miss consults it before walking: hits avoid the walk,
     * misses allocate (or merge into) a translation MSHR and this
     * core's walker pool services the walk, filling the L2 so every
     * merged core wakes. Must be called before the first miss; the
     * shared instance must use this MMU's translation granularity.
     */
    void setL2Tlb(L2Tlb *l2);

    L2Tlb *l2Tlb() { return l2_; }
    const L2Tlb *l2Tlb() const { return l2_; }

    /** TLB shootdown from the host CPU (IPI-driven flush). Also
     *  flushes the shared L2 TLB when one is attached (idempotent
     *  across the cores sharing it). */
    void shootdown();

    /**
     * Kernel-end invariant check (no-op unarmed): no outstanding
     * walks or drain waiters, walker pool idle and conserved, every
     * resident TLB entry still equal to its reference walk.
     */
    void checkEndOfKernel() const;

    /**
     * Kernel boundary: run the drain checks, then clear transient
     * walker state (the issue-port reservation) so a following
     * kernel starts from a clean pipeline. Warm TLB/walk-cache
     * contents survive.
     */
    void endKernel();

    /** The armed checker, or nullptr (tests assert check volumes). */
    const InvariantChecker *checker() const { return checker_.get(); }

    /** Attach an event trace sink to the TLB and walker pool;
     *  @p tid labels this core's instances. */
    void
    setTraceSink(TraceSink *sink, int tid)
    {
        tlb_.setTraceSink(sink, tid);
        walkers_.setTraceSink(sink, tid);
    }

    /** Attach a translation heat profiler to the walker pool;
     *  @p tid labels this core in sharer masks. */
    void
    setHeatProfiler(HeatProfiler *heat, int tid)
    {
        walkers_.setHeatProfiler(heat, tid);
    }

    /**
     * Attach a translation-lifecycle span tracker (observation-only,
     * like the trace sink) to the TLB, the walker pool and this MMU's
     * own merge/fill points; @p tid labels this core's spans. The
     * walker pool converts its 4K walk VPNs back to this MMU's
     * translation granularity so every layer stamps the same span key.
     */
    void
    setSpanTracker(SpanTracker *spans, int tid)
    {
        tlb_.setSpanTracker(spans, tid);
        walkers_.setSpanTracker(spans, tid,
                                pageShift_ - kPageShift4K);
        spans_ = spans;
    }

    void regStats(StatRegistry &reg, const std::string &prefix);

    /** Full TLB-miss service time distribution (Fig. 4). */
    const Histogram &missLatency() const { return missLatency_; }
    std::uint64_t mergedWalks() const { return mergedWalks_.value(); }
    /** Misses of this core satisfied by the shared L2 TLB (array
     *  hits + merges into other cores' in-flight walks). */
    std::uint64_t l2Satisfied() const { return l2Satisfied_.value(); }

  private:
    /**
     * Shared completion tail of every translation path (own walk, L2
     * hit, L2 MSHR wakeup): fill the L1 TLB, retire the outstanding
     * entry, sample the miss latency and fire the waiters.
     */
    void finishWalk(Vpn tag, std::uint64_t frame_base, bool is_large,
                    int warp_id, Cycle finish);

    /** Functional walk of @p vpn4k -> (frame base in page units,
     *  large flag), asserting granularity agreement. */
    std::pair<std::uint64_t, bool> resolveWalk(Vpn vpn4k);

    /**
     * Tags of one miss batch that must bypass the shared L2 TLB's
     * MSHR file (it was full). Tiny set, one per miss batch whose
     * walks go to the walkers; arena-pooled so the shared-L2 miss
     * path performs no shared_ptr control-block allocation.
     */
    struct BypassTags
    {
        std::vector<Vpn> tags;

        void insert(Vpn v) { tags.push_back(v); }

        bool
        contains(Vpn v) const
        {
            return std::find(tags.begin(), tags.end(), v) !=
                   tags.end();
        }
    };

    /** Issue walker-pool walks for @p tags (page-granularity), with
     *  completions routed through the L2 TLB when attached. */
    void issueWalks(const std::vector<Vpn> &tags, int warp_id,
                    Cycle at, ArenaRc<BypassTags> bypass_tags);

    MmuConfig cfg_;
    AddressSpace &as_;
    unsigned pageShift_;
    /** Owning process; composed into every TLB/L2/checker key
     *  (identity for the legacy single-process ASID 0). */
    Asid asid_;
    std::unique_ptr<InvariantChecker> checker_;
    /** Declared before walkers_: walk callbacks hold ArenaRc handles
     *  into it, so it must be destroyed after them. */
    Arena<BypassTags> bypassArena_;
    Tlb tlb_;
    PageWalkers walkers_;
    L2Tlb *l2_ = nullptr;
    SpanTracker *spans_ = nullptr;

    /** VPN -> waiters, for merging concurrent walks to one page. */
    std::map<Vpn, std::vector<WalkDoneFn>> outstanding_;
    std::map<Vpn, Cycle> missStart_;
    std::vector<std::function<void()>> drainWaiters_;

    Counter mergedWalks_;
    Counter shootdowns_;
    Counter l2Satisfied_;
    Histogram missLatency_;
};

} // namespace gpummu

#endif // MMU_MMU_HH
