/**
 * @file
 * Per-shader-core translation lookaside buffer.
 *
 * One TLB per shader core, shared by all SIMD lanes (the paper's
 * power/area-frugal choice). Set associative with true LRU; lookups
 * report the LRU depth of the hit, which TLB-conscious warp
 * scheduling (TCWS) weights into its lost-locality scores. Entries
 * carry a short warp-access history used by TLB-aware thread block
 * compaction's common page matrix.
 */

#ifndef MMU_TLB_HH
#define MMU_TLB_HH

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "mem/set_assoc.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace gpummu {

class InvariantChecker;
class SpanTracker;
class TraceSink;

struct TlbConfig
{
    std::size_t entries = 128; ///< paper baseline
    std::size_t ways = 4;
    unsigned ports = 4;        ///< lookups per cycle
    /** History length for the common page matrix (paper: 2). */
    unsigned historyLength = 2;
};

/** Payload stored per TLB entry. */
struct TlbEntryInfo
{
    Ppn ppn = 0;
    bool isLarge = false;
    /** Warp whose miss allocated this entry (TCWS victim tagging). */
    int allocWarp = -1;
    /** Last warps that hit this entry, most recent first; -1 empty. */
    std::array<int, 4> warpHistory{-1, -1, -1, -1};
    unsigned historyUsed = 0;
};

class Tlb
{
  public:
    struct LookupResult
    {
        bool hit = false;
        unsigned depth = 0; ///< LRU depth of the hit (0 = MRU)
        Ppn ppn = 0;
        bool isLarge = false;
        /** Warp history snapshot prior to this access. */
        std::array<int, 4> history{-1, -1, -1, -1};
        unsigned historyUsed = 0;
    };

    explicit Tlb(const TlbConfig &cfg);

    /**
     * Look up one VPN on behalf of a warp. Updates LRU and the warp
     * history on hits. Does not update hit/miss statistics for
     * re-probes after a walk (use @p record=false for those).
     */
    LookupResult lookup(Vpn vpn, int warp_id, bool record = true);

    /** Probe without any state change (scheduler what-if queries). */
    bool probe(Vpn vpn) const;

    /** Install a translation (walk completion). */
    void fill(Vpn vpn, const Translation &t, int alloc_warp = -1);

    /** Full flush (shootdown from the host CPU). Every discarded
     *  entry is reported through the eviction listener, exactly like
     *  a capacity eviction. */
    void flush();

    /**
     * Targeted shootdown: drop every entry whose (tag, payload)
     * matches @p pred, reporting each through the eviction listener.
     * Returns the number of entries invalidated (the per-entry
     * shootdown cost multiplier). Tags are ASID-composed keys in
     * multi-process runs.
     */
    std::size_t invalidateMatching(
        const std::function<bool(std::uint64_t,
                                 const TlbEntryInfo &)> &pred);

    /** (evicted VPN, warp that allocated the entry). */
    using EvictionListener = std::function<void(Vpn, int)>;

    /** Install the TCWS victim-tag hook (may be empty). */
    void
    setEvictionListener(EvictionListener fn)
    {
        onEvict_ = std::move(fn);
    }

    /**
     * Arm invariant checking: every fill is verified against the
     * reference translator and followed by a full-array sweep.
     * @p page_shift is the tag granularity (12 or 21).
     */
    void
    setChecker(InvariantChecker *chk, unsigned page_shift)
    {
        checker_ = chk;
        checkShift_ = page_shift;
    }

    /** One reference-equality + duplicate-tag sweep (no-op unarmed). */
    void checkSweep() const;

    /** Attach an event trace sink; @p tid labels this instance. */
    void
    setTraceSink(TraceSink *sink, int tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

    /**
     * Attach a translation-lifecycle span tracker (observation-only,
     * like the trace sink): every recorded lookup opens a span keyed
     * by the composed tag; hits close it immediately, misses leave it
     * open for the walk machinery's hooks downstream.
     */
    void
    setSpanTracker(SpanTracker *spans, int tid)
    {
        spans_ = spans;
        spanTid_ = tid;
    }

    const TlbConfig &config() const { return cfg_; }

    void regStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t accesses() const { return accesses_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t misses() const
    {
        return accesses_.value() - hits_.value();
    }
    std::uint64_t flushes() const { return flushes_.value(); }

  private:
    TlbConfig cfg_;
    SetAssocArray<TlbEntryInfo> array_;
    EvictionListener onEvict_;
    InvariantChecker *checker_ = nullptr;
    unsigned checkShift_ = kPageShift4K;
    TraceSink *trace_ = nullptr;
    int traceTid_ = 0;
    SpanTracker *spans_ = nullptr;
    int spanTid_ = 0;

    Counter accesses_;
    Counter hits_;
    Counter flushes_;
};

} // namespace gpummu

#endif // MMU_TLB_HH
