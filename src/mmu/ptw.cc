#include "mmu/ptw.hh"

#include <algorithm>
#include <map>

#include "check/invariant_checker.hh"
#include "mem/request.hh"
#include "sim/logging.hh"
#include "telemetry/span.hh"
#include "telemetry/telemetry.hh"
#include "trace/trace.hh"

namespace gpummu {

PageWalkers::PageWalkers(const PtwConfig &cfg, const PageTable &pt,
                         MemorySystem &mem, EventQueue &eq)
    : cfg_(cfg), pt_(pt), mem_(mem), eq_(eq),
      pwc_(std::max<std::size_t>(cfg.pwcLines, 1),
           std::min(cfg.pwcWays,
                    std::max<std::size_t>(cfg.pwcLines, 1)))
{
    GPUMMU_ASSERT(cfg.numWalkers >= 1);
    walkerBusy_.assign(cfg.scheduling ? 1 : cfg.numWalkers, false);
}

Cycle
PageWalkers::walkRef(PhysAddr line_addr, unsigned level, Cycle at)
{
    // All walkers share one issue port into the memory system.
    const Cycle issue = std::max(at, portFreeAt_);
    portFreeAt_ = issue + cfg_.portInterval;
    refsIssued_.inc();
    if (trace_)
        trace_->instantAt(TraceCat::Ptw, "walk_ref", traceTid_, issue,
                          "line", line_addr);
    if (checker_)
        checker_->onPagingLine(line_addr, kLineShift);
    if (cfg_.pwcLines > 0) {
        auto res = pwc_.lookup(line_addr);
        if (res.hit) {
            pwcHits_.inc();
            if (heat_)
                heat_->onWalkRef(line_addr, level, heatTid_,
                                 HeatProfiler::RefWhere::Pwc);
            if (spans_)
                spans_->walkRef(level, SpanWalkRef::Pwc);
            // The line enters the cache when its fetch is *issued*,
            // so a hit may land while the fill is still in flight
            // from memory; such a hit cannot complete before the
            // fill does (no hit-under-fill optimism).
            return std::max(issue + cfg_.pwcHitLatency, *res.payload);
        }
    }
    auto out =
        mem_.access(line_addr, false, issue, AccessSource::PageWalk);
    if (heat_)
        heat_->onWalkRef(line_addr, level, heatTid_,
                         out.dram ? HeatProfiler::RefWhere::Dram
                                  : HeatProfiler::RefWhere::L2);
    // Mirrors the heat classification exactly: span walk-ref totals
    // == ptw refs_issued (conservation check).
    if (spans_)
        spans_->walkRef(level, out.dram ? SpanWalkRef::Dram
                                        : SpanWalkRef::L2);
    if (cfg_.pwcLines > 0)
        pwc_.insert(line_addr, out.readyAt);
    return out.readyAt;
}

void
PageWalkers::requestBatch(const std::vector<Vpn> &vpns, Cycle now,
                          DoneFn done)
{
    requestBatchFor(pt_, 0, vpns, now, std::move(done));
}

void
PageWalkers::requestBatchFor(const PageTable &pt, Asid asid,
                             const std::vector<Vpn> &vpns, Cycle now,
                             DoneFn done)
{
    for (Vpn vpn : vpns) {
        if (checker_)
            checker_->onWalkEnqueued(asidKey(asid, vpn));
        if (trace_)
            trace_->instantAt(TraceCat::Ptw, "walk_enqueue",
                              traceTid_, now, "vpn", vpn);
        if (spans_)
            spans_->stageAt(asidKey(asid, vpn >> spanKeyShift_),
                            SpanStage::WalkEnqueue, now);
        queue_.push_back(PendingWalk{vpn, now, done, &pt, asid});
    }
    pump(now);
}

std::size_t
PageWalkers::invalidatePagingLines(const PageTable &pt)
{
    const auto victims =
        pwc_.removeIf([&pt](std::uint64_t line, const Cycle &) {
            return pt.isTableFrame((line << kLineShift) >>
                                   kPageShift4K);
        });
    return victims.size();
}

void
PageWalkers::pump(Cycle now)
{
    for (unsigned w = 0; w < walkerBusy_.size(); ++w) {
        if (queue_.empty())
            return;
        if (walkerBusy_[w])
            continue;
        if (cfg_.scheduling)
            startScheduledBatch(w, now);
        else
            startNaive(w, now);
    }
}

void
PageWalkers::startNaive(unsigned w, Cycle now)
{
    GPUMMU_ASSERT(!queue_.empty());
    ActiveBatch *batch = batchArena_.create();
    batch->pool = this;
    PendingWalk walk = std::move(queue_.front());
    queue_.pop_front();
    const WalkPath path = walk.pt->walk(walk.vpn);
    for (unsigned level = 0; level < path.levels; ++level) {
        BatchRef ref;
        ref.line = lineAddrOf(path.entryAddrs[level]);
        if (level + 1 == path.levels)
            ref.finishing.push_back(0);
        batch->levels.push_back({std::move(ref)});
    }
    batch->walks.push_back(std::move(walk));
    ++inFlight_;
    if (trace_) {
        trace_->instantAt(TraceCat::Ptw, "walk_grant", traceTid_, now,
                          "vpn", batch->walks.back().vpn, "walker", w);
        trace_->counter(TraceCat::Ptw, "walks_in_flight", traceTid_,
                        inFlight_);
    }
    // Enqueue -> grant is the walker-queueing portion of the span.
    if (spans_) {
        const PendingWalk &walk = batch->walks.back();
        spans_->stageAt(asidKey(walk.asid, walk.vpn >> spanKeyShift_),
                        SpanStage::WalkGrant, now);
    }
    walkerBusy_[w] = true;
    stepLevel(w, batch, now);
}

void
PageWalkers::startScheduledBatch(unsigned w, Cycle now)
{
    GPUMMU_ASSERT(!queue_.empty());
    batches_.inc();
    ActiveBatch *batch = batchArena_.create();
    batch->pool = this;

    // Snapshot every queued walk into this batch (the MSHR scan).
    std::vector<WalkPath> paths;
    while (!queue_.empty()) {
        batch->walks.push_back(std::move(queue_.front()));
        queue_.pop_front();
        const PendingWalk &walk = batch->walks.back();
        paths.push_back(walk.pt->walk(walk.vpn));
    }
    inFlight_ += static_cast<unsigned>(batch->walks.size());
    if (trace_) {
        for (const PendingWalk &walk : batch->walks)
            trace_->instantAt(TraceCat::Ptw, "walk_grant", traceTid_,
                              now, "vpn", walk.vpn, "walker", w);
        trace_->counter(TraceCat::Ptw, "walks_in_flight", traceTid_,
                        inFlight_);
    }
    if (spans_) {
        for (const PendingWalk &walk : batch->walks)
            spans_->stageAt(asidKey(walk.asid,
                                    walk.vpn >> spanKeyShift_),
                            SpanStage::WalkGrant, now);
    }

    unsigned max_levels = 0;
    for (const auto &p : paths)
        max_levels = std::max(max_levels, p.levels);

    for (unsigned level = 0; level < max_levels; ++level) {
        // Comparator tree: collapse exact repeats, and issue
        // same-line entries back to back so the later ones hit the
        // walk cache or the L2 line just fetched (Figs. 8-9).
        std::map<PhysAddr,
                 std::map<PhysAddr, std::vector<std::size_t>>>
            lines;
        unsigned raw_refs = 0;
        for (std::size_t i = 0; i < paths.size(); ++i) {
            if (level >= paths[i].levels)
                continue;
            ++raw_refs;
            const PhysAddr addr = paths[i].entryAddrs[level];
            auto &finishers = lines[lineAddrOf(addr)][addr];
            if (level + 1 == paths[i].levels)
                finishers.push_back(i);
        }
        unsigned issued = 0;
        std::vector<BatchRef> level_refs;
        for (auto &[line, addrs] : lines) {
            for (auto &[addr, finishers] : addrs) {
                (void)addr;
                BatchRef ref;
                ref.line = line;
                ref.finishing = std::move(finishers);
                level_refs.push_back(std::move(ref));
                ++issued;
            }
        }
        batch->levels.push_back(std::move(level_refs));
        GPUMMU_ASSERT(raw_refs >= issued);
        refsEliminated_.inc(raw_refs - issued);
    }

    walkerBusy_[w] = true;
    stepLevel(w, batch, now);
}

void
PageWalkers::fireStepLevel(void *ctx, Cycle now)
{
    auto *batch = static_cast<ActiveBatch *>(ctx);
    batch->pool->stepLevel(batch->walker, batch, now);
}

void
PageWalkers::fireWalkDone(void *ctx, Cycle now)
{
    auto *ev = static_cast<WalkDone *>(ctx);
    PageWalkers *pool = ev->pool;
    GPUMMU_ASSERT(now == ev->ready);
    GPUMMU_ASSERT(pool->inFlight_ > 0);
    --pool->inFlight_;
    if (pool->trace_) {
        pool->trace_->span(TraceCat::Ptw, "page_walk", pool->traceTid_,
                           ev->enqueued, ev->ready - ev->enqueued,
                           "vpn", ev->vpn);
        pool->trace_->counter(TraceCat::Ptw, "walks_in_flight",
                              pool->traceTid_, pool->inFlight_);
    }
    if (pool->checker_)
        pool->checker_->onWalkCompleted(asidKey(ev->asid, ev->vpn));
    // Move the callback out before releasing the node: done() may
    // start new walks, and the recycled slot must be free for them.
    DoneFn done = std::move(ev->done);
    const Vpn vpn = ev->vpn;
    const Cycle ready = ev->ready;
    pool->doneArena_.destroy(ev);
    done(vpn, ready);
}

void
PageWalkers::stepLevel(unsigned w, ActiveBatch *batch, Cycle now)
{
    // One event per radix level: a level's references pipeline at
    // the port rate, the next level waits for this one (the pointer
    // chase). Requests enter the shared memory system near the
    // current simulated cycle; computing the whole batch's
    // timestamps up front would reserve L2/DRAM bandwidth far into
    // the future and distort every other client's latency.
    if (batch->nextLevel >= batch->levels.size()) {
        batchArena_.destroy(batch);
        walkerBusy_[w] = false;
        pump(now);
        return;
    }
    const unsigned level_idx =
        static_cast<unsigned>(batch->nextLevel);
    const auto &level = batch->levels[batch->nextLevel++];
    Cycle level_end = now;
    for (const BatchRef &ref : level) {
        const Cycle ready = walkRef(ref.line, level_idx, now);
        level_end = std::max(level_end, ready);
        for (std::size_t idx : ref.finishing) {
            PendingWalk &walk = batch->walks[idx];
            walks_.inc();
            walkLatency_.sample(ready - walk.enqueued);
            if (spans_)
                spans_->stageAt(asidKey(walk.asid,
                                        walk.vpn >> spanKeyShift_),
                                SpanStage::WalkDone, ready);
            if (heat_)
                heat_->onWalkComplete(asidKey(walk.asid, walk.vpn),
                                      heatTid_, walk.enqueued, ready);
            // Each walk finishes exactly once, so its done callback
            // can move into the completion node.
            WalkDone *ev = doneArena_.create();
            ev->pool = this;
            ev->vpn = walk.vpn;
            ev->asid = walk.asid;
            ev->ready = ready;
            ev->enqueued = walk.enqueued;
            ev->done = std::move(walk.done);
            eq_.scheduleRaw(ready, &PageWalkers::fireWalkDone, ev);
        }
    }
    batch->walker = w;
    eq_.scheduleRaw(level_end, &PageWalkers::fireStepLevel, batch);
}

void
PageWalkers::checkDrained() const
{
    if (!checker_)
        return;
    GPUMMU_ASSERT(!busy(), "walker pool busy at kernel end: ",
                  inFlight_, " in flight, ", queue_.size(), " queued");
    checker_->checkWalksDrained();
    pwc_.forEach([this](std::size_t, std::uint64_t line, Cycle) {
        checker_->onPagingLine(line, kLineShift);
    });
}

void
PageWalkers::onKernelDrained()
{
    GPUMMU_ASSERT(!busy(),
                  "kernel-boundary reset with walks in flight: ",
                  inFlight_, " in flight, ", queue_.size(), " queued");
    portFreeAt_ = 0;
}

void
PageWalkers::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".walks", &walks_);
    reg.addCounter(prefix + ".refs_issued", &refsIssued_);
    reg.addCounter(prefix + ".refs_eliminated", &refsEliminated_);
    reg.addCounter(prefix + ".batches", &batches_);
    reg.addCounter(prefix + ".pwc_hits", &pwcHits_);
    reg.addHistogram(prefix + ".walk_latency", &walkLatency_);
}

} // namespace gpummu
