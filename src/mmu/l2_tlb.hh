/**
 * @file
 * Shared second-level TLB with translation MSHRs.
 *
 * One L2 TLB serves every shader core's L1 TLB miss path, sitting
 * between the per-core TLBs and the per-core page walker pools (the
 * shared-L2 design point of the heterogeneous-MMU studies the paper's
 * related work explores; see PAPERS.md). Three behaviours matter:
 *
 *  - a resident translation is returned after a port reservation plus
 *    the array hit latency, avoiding the page walk entirely;
 *  - a miss allocates a per-VPN translation MSHR; concurrent misses
 *    on the same VPN from *other* cores merge into that MSHR and are
 *    all woken by the single walk's fill (N misses -> 1 walk -> N
 *    wakeups, which the invariant checker verifies);
 *  - when the MSHR file is full the requester bypasses the L2: it
 *    walks on its own, and the completed translation is still
 *    installed so later requesters hit.
 *
 * The structure is a passive lookup/fill engine: it owns no walkers.
 * The Mmu that takes a miss issues the walk through its own pool and
 * calls fill() on completion, which wakes every registered waiter.
 * Like the Tlb, fills are cross-checked against the reference
 * translator when invariant checking is armed, and armed runs are
 * bit-identical to unarmed ones.
 */

#ifndef MMU_L2_TLB_HH
#define MMU_L2_TLB_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "check/invariant_checker.hh"
#include "mem/set_assoc.hh"
#include "sim/arena.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/types.hh"
#include "vm/page_table.hh"

namespace gpummu {

class SpanTracker;
class TraceSink;

struct L2TlbConfig
{
    /** Off by default: the baseline design points have no L2 TLB. */
    bool enabled = false;
    /** Shared capacity (Kim et al. explore 512-8K shared entries). */
    std::size_t entries = 4096;
    std::size_t ways = 8;
    /** Concurrent lookups; cores contend for these. */
    unsigned ports = 2;
    /** Array access latency on a hit (larger + farther than an L1
     *  TLB, smaller than a page walk). */
    Cycle hitLatency = 8;
    /** Cycles one lookup occupies its port. */
    Cycle lookupInterval = 1;
    /** Translation MSHRs: distinct VPNs that may be in flight. */
    unsigned mshrs = 32;
    /** Arm the differential checker on fills and MSHR conservation. */
    bool checkInvariants = false;
};

class L2Tlb
{
  public:
    /** How one miss-path access was disposed. */
    enum class Outcome
    {
        Hit,      ///< resident; the callback is scheduled
        Merged,   ///< joined an in-flight MSHR; fill will wake it
        NeedWalk, ///< MSHR allocated; caller must walk, then fill()
        Bypass,   ///< MSHR file full; caller walks and fillBypass()es
    };

    struct AccessResult
    {
        Outcome outcome = Outcome::NeedWalk;
        /** Port-arbitrated cycle the lookup itself resolves; walks
         *  for NeedWalk/Bypass outcomes start no earlier. */
        Cycle ready = 0;
    };

    /** Wakeup: (tag, frame base in page units, large flag, cycle). */
    using WakeFn = std::function<void(Vpn, std::uint64_t, bool, Cycle)>;

    /**
     * @param page_shift translation granularity of the run (12 or
     *        21); tags and frame bases are in this unit, matching the
     *        per-core L1 TLBs.
     */
    L2Tlb(const L2TlbConfig &cfg, const PageTable &pt, EventQueue &eq,
          unsigned page_shift);

    /**
     * One L1-TLB miss enters the shared L2. On a hit @p done is
     * scheduled at the returned ready cycle; on a merge it fires with
     * the owning walk's fill; otherwise the caller walks (starting no
     * earlier than the returned ready cycle) and completes the
     * protocol with fill() / fillBypass().
     */
    AccessResult access(Vpn tag, Cycle now, WakeFn done);

    /**
     * Walk completion for a NeedWalk outcome: install the
     * translation, retire the MSHR and wake every waiter at
     * @p ready.
     */
    void fill(Vpn tag, const Translation &t, Cycle ready);

    /** Walk completion for a Bypass outcome: install only (the
     *  walker's own requester completes itself). A concurrent MSHR
     *  for the tag - allocated after the bypass was granted - is
     *  untouched; its own fill() wakes its waiters. */
    void fillBypass(Vpn tag, const Translation &t, Cycle ready);

    /** Non-mutating residency probe (stall attribution, tests). */
    bool probe(Vpn tag) const { return array_.peek(tag) != nullptr; }

    /** Is a walk for @p tag in flight behind an MSHR? */
    bool mshrActive(Vpn tag) const { return mshrs_.count(tag) != 0; }

    std::size_t mshrsInUse() const { return mshrs_.size(); }

    /** Drop every resident translation (host shootdown). In-flight
     *  MSHRs are unaffected; their walks re-derive fresh entries. */
    void flush();

    /**
     * Targeted shootdown: drop every resident entry whose composed
     * tag matches @p pred, and *poison* matching in-flight MSHRs —
     * their walk read the page table before the unmap, so its fill()
     * still wakes the waiters (the translation was valid when the
     * walk was issued) but must not install a now-stale entry.
     * Returns the number of resident entries invalidated.
     */
    std::size_t invalidateMatching(
        const std::function<bool(std::uint64_t)> &pred);

    /** Tags poisoned by a shootdown whose fill has not landed yet. */
    std::size_t poisonedMshrs() const { return poisoned_.size(); }

    /**
     * Register another process's page table with the armed checker
     * (multi-process runs fill with ASID-composed tags). No-op
     * unarmed.
     */
    void addCheckedSpace(Asid asid, const PageTable &pt);

    /** (evicted VPN tag, unused) - mirrors Tlb's listener shape. */
    using EvictionListener = std::function<void(Vpn)>;
    void
    setEvictionListener(EvictionListener fn)
    {
        onEvict_ = std::move(fn);
    }

    /** Attach an event trace sink; @p tid labels this instance
     *  (-1 marks the GPU-wide shared structure). */
    void
    setTraceSink(TraceSink *sink, int tid)
    {
        trace_ = sink;
        traceTid_ = tid;
    }

    /** Attach a translation-lifecycle span tracker (observation-
     *  only): each access stamps the requesting span with its port-
     *  arbitrated issue cycle and disposition (hit / merge / bypass /
     *  walk). */
    void
    setSpanTracker(SpanTracker *spans, int tid)
    {
        spans_ = spans;
        spanTid_ = tid;
    }

    /**
     * Kernel-end invariants (no-op unarmed): every MSHR retired,
     * every waiter woken exactly once, every resident entry still
     * equal to its reference walk.
     */
    void checkEndOfKernel() const;

    /** The armed checker, or nullptr (tests assert check volumes). */
    const InvariantChecker *checker() const { return checker_.get(); }

    const L2TlbConfig &config() const { return cfg_; }
    unsigned pageShift() const { return pageShift_; }

    void regStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t lookups() const { return lookups_.value(); }
    std::uint64_t hits() const { return hits_.value(); }
    std::uint64_t mshrMerges() const { return mshrMerges_.value(); }
    std::uint64_t mshrBypasses() const
    {
        return mshrBypasses_.value();
    }
    std::uint64_t fills() const { return fills_.value(); }
    std::uint64_t evictions() const { return evictions_.value(); }
    std::uint64_t flushes() const { return flushes_.value(); }

  private:
    /** Arbitrate the least-loaded lookup port at @p now. */
    Cycle reservePort(Cycle now);

    /** Install @p t, reporting eviction + running the armed sweep. */
    void install(Vpn tag, const Translation &t);

    /** Arena-pooled hit-completion event payload (scheduleRaw). */
    struct HitWake
    {
        L2Tlb *tlb = nullptr;
        Vpn tag = 0;
        Translation t;
        Cycle ready = 0;
        WakeFn done;
    };

    static void fireHitWake(void *ctx, Cycle now);

    L2TlbConfig cfg_;
    unsigned pageShift_;
    EventQueue &eq_;
    /** Before every member a pending HitWake could reference. */
    Arena<HitWake> hitArena_;
    std::unique_ptr<InvariantChecker> checker_;
    SetAssocArray<Translation> array_;
    std::vector<Cycle> portFreeAt_;

    /** In-flight translation MSHRs: tag -> wakeup list. The first
     *  waiter's Mmu owns the walk. */
    std::map<Vpn, std::vector<WakeFn>> mshrs_;

    /** MSHR tags hit by a shootdown mid-walk: fill() wakes but does
     *  not install. std::set for deterministic iteration. */
    std::set<Vpn> poisoned_;

    EvictionListener onEvict_;
    TraceSink *trace_ = nullptr;
    int traceTid_ = 0;
    SpanTracker *spans_ = nullptr;
    int spanTid_ = 0;

    Counter lookups_;
    Counter hits_;
    Counter mshrMerges_;
    Counter mshrBypasses_;
    Counter fills_;
    Counter evictions_;
    Counter flushes_;
    Histogram wakeupsPerFill_;
};

} // namespace gpummu

#endif // MMU_L2_TLB_HH
