#include "mmu/mmu.hh"

#include "mmu/l2_tlb.hh"
#include "sim/logging.hh"
#include "telemetry/span.hh"

namespace gpummu {

Mmu::Mmu(const MmuConfig &cfg, AddressSpace &as, MemorySystem &mem,
         EventQueue &eq)
    : cfg_(cfg), as_(as),
      pageShift_(as.usesLargePages() ? kPageShift2M : kPageShift4K),
      asid_(as.asid()), tlb_(cfg.tlb),
      walkers_(cfg.ptw, as.pageTable(), mem, eq)
{
    if (cfg_.checkInvariants) {
        checker_ = std::make_unique<InvariantChecker>(
            as_.pageTable(), asid_);
        tlb_.setChecker(checker_.get(), pageShift_);
        walkers_.setChecker(checker_.get());
    }
}

PhysAddr
Mmu::magicTranslate(VirtAddr va) const
{
    auto t = as_.pageTable().translate(va >> kPageShift4K);
    GPUMMU_ASSERT(t.has_value(), "access to unmapped VA ", va);
    return (t->ppn << kPageShift4K) | (va & (kPageSize4K - 1));
}

Mmu::BatchResult
Mmu::lookupBatch(const std::vector<Vpn> &vpns, int warp_id)
{
    BatchResult out;
    lookupBatchInto(out, vpns, warp_id);
    return out;
}

void
Mmu::lookupBatchInto(BatchResult &out, const std::vector<Vpn> &vpns,
                     int warp_id)
{
    GPUMMU_ASSERT(cfg_.enabled, "lookupBatch on a disabled MMU");
    out.lookups.clear();
    out.extraCycles = 0;
    out.allHit = true;
    out.lookups.reserve(vpns.size());
    for (Vpn vpn : vpns) {
        auto res = tlb_.lookup(asidKey(asid_, vpn), warp_id);
        if (res.hit && checker_)
            checker_->onTlbHit(asidKey(asid_, vpn), res.ppn,
                               pageShift_);
        VpnLookup vl;
        vl.vpn = vpn;
        vl.hit = res.hit;
        vl.depth = res.depth;
        vl.frameBase = res.ppn;
        vl.history = res.history;
        vl.historyUsed = res.historyUsed;
        out.allHit = out.allHit && res.hit;
        out.lookups.push_back(vl);
    }

    // Port serialization: the first `ports` lookups ride along with
    // the L1 access for free; each further group of `ports` costs a
    // cycle. Oversized or overported arrays cost CACTI penalties on
    // every access.
    const unsigned ports = cfg_.tlb.ports;
    if (!vpns.empty()) {
        const Cycle groups =
            (static_cast<Cycle>(vpns.size()) + ports - 1) / ports;
        out.extraCycles = (groups - 1) +
                          cfg_.cacti.accessPenalty(cfg_.tlb.entries,
                                                   cfg_.tlb.ports);
    }
}

bool
Mmu::memAvailable() const
{
    if (!cfg_.enabled)
        return true;
    if (cfg_.hitUnderMiss)
        return true;
    return outstanding_.empty();
}

bool
Mmu::canStartMisses(std::size_t count) const
{
    if (!cfg_.enabled)
        return false;
    // No miss-under-miss: a new miss set may start only when the MMU
    // has fully drained (the paper leaves more aggressive support to
    // future work). A single warp's simultaneous misses count as one
    // "original miss" and always start together.
    if (!outstanding_.empty())
        return false;
    return count <= cfg_.mshrs;
}

void
Mmu::onDrain(std::function<void()> fn)
{
    GPUMMU_ASSERT(!outstanding_.empty(),
                  "onDrain with no outstanding walks would never fire");
    drainWaiters_.push_back(std::move(fn));
}

void
Mmu::setL2Tlb(L2Tlb *l2)
{
    GPUMMU_ASSERT(cfg_.enabled,
                  "an L2 TLB behind a disabled MMU is unreachable");
    GPUMMU_ASSERT(outstanding_.empty(),
                  "setL2Tlb with walks already outstanding");
    GPUMMU_ASSERT(l2 == nullptr || l2->pageShift() == pageShift_,
                  "shared L2 TLB granularity mismatch");
    l2_ = l2;
}

std::pair<std::uint64_t, bool>
Mmu::resolveWalk(Vpn vpn4k)
{
    auto path = as_.pageTable().walk(vpn4k);
    Translation t = path.result;
    const std::uint64_t frame_base =
        t.isLarge ? (t.ppn >> (kPageShift2M - kPageShift4K)) : t.ppn;
    GPUMMU_ASSERT(t.isLarge == as_.usesLargePages(),
                  "page size mismatch between walk and MMU");
    return {frame_base, t.isLarge};
}

bool
Mmu::probeTlb(Vpn vpn) const
{
    return tlb_.probe(asidKey(asid_, vpn));
}

void
Mmu::finishWalk(Vpn tag, std::uint64_t frame_base, bool is_large,
                int warp_id, Cycle finish)
{
    tlb_.fill(asidKey(asid_, tag), Translation{frame_base, is_large},
              warp_id);

    auto it = outstanding_.find(tag);
    GPUMMU_ASSERT(it != outstanding_.end(),
                  "walk completion for unknown VPN");
    auto waiters = std::move(it->second);
    outstanding_.erase(it);

    auto start_it = missStart_.find(tag);
    GPUMMU_ASSERT(start_it != missStart_.end());
    missLatency_.sample(finish - start_it->second);
    missStart_.erase(start_it);

    // Every span that missed on this page - the walk owner plus each
    // merged requester - fills and retires at the same ready cycle.
    if (spans_)
        spans_->closeAllAt(asidKey(asid_, tag), SpanStage::Fill,
                           finish);

    for (auto &fn : waiters)
        fn(tag, frame_base, finish);

    if (outstanding_.empty() && !drainWaiters_.empty()) {
        auto drained = std::move(drainWaiters_);
        drainWaiters_.clear();
        for (auto &fn : drained)
            fn();
    }
}

void
Mmu::issueWalks(const std::vector<Vpn> &tags, int warp_id, Cycle at,
                ArenaRc<BypassTags> bypass_tags)
{
    // The walkers operate on 4KB-granularity VPNs; in large-page mode
    // the TLB tag is the 2MB VPN, so expand before walking.
    std::vector<Vpn> walk_vpns;
    walk_vpns.reserve(tags.size());
    const unsigned expand = pageShift_ - kPageShift4K;
    for (Vpn tag : tags)
        walk_vpns.push_back(tag << expand);

    walkers_.requestBatchFor(
        as_.pageTable(), asid_, walk_vpns, at,
        [this, warp_id,
         bypass_tags = std::move(bypass_tags)](Vpn vpn4k,
                                               Cycle finish) {
            const Vpn tag = vpn4k >> (pageShift_ - kPageShift4K);
            auto [frame_base, is_large] = resolveWalk(vpn4k);
            if (l2_ == nullptr) {
                finishWalk(tag, frame_base, is_large, warp_id, finish);
            } else if (bypass_tags && bypass_tags->contains(tag)) {
                // Walked uncovered (MSHR file was full): install the
                // result for later requesters, complete ourselves.
                l2_->fillBypass(asidKey(asid_, tag),
                                Translation{frame_base, is_large},
                                finish);
                finishWalk(tag, frame_base, is_large, warp_id, finish);
            } else {
                // The fill wakes every core merged behind the MSHR,
                // including this one (its wakeup runs finishWalk).
                l2_->fill(asidKey(asid_, tag),
                          Translation{frame_base, is_large}, finish);
            }
        });
}

void
Mmu::requestWalks(const std::vector<Vpn> &vpns, int warp_id, Cycle now,
                  WalkDoneFn done)
{
    GPUMMU_ASSERT(cfg_.enabled);
    std::vector<Vpn> to_walk;
    to_walk.reserve(vpns.size());
    for (Vpn vpn : vpns) {
        auto it = outstanding_.find(vpn);
        if (it != outstanding_.end()) {
            // Another thread/warp already walks this page; piggyback.
            mergedWalks_.inc();
            // Beside the merge counter: MmuMerge-stage span count ==
            // merged_walks (conservation check).
            if (spans_)
                spans_->stageAt(asidKey(asid_, vpn),
                                SpanStage::MmuMerge, now);
            it->second.push_back(done);
            continue;
        }
        outstanding_[vpn].push_back(done);
        missStart_[vpn] = now;
        to_walk.push_back(vpn);
    }
    if (to_walk.empty())
        return;

    if (l2_ == nullptr) {
        issueWalks(to_walk, warp_id, now, {});
        return;
    }

    // Shared L2 TLB on the miss path: hits and merges into other
    // cores' in-flight walks complete without touching this core's
    // walkers; the rest walk in one batch once the slowest lookup
    // has resolved (the L2 arbitrates its ports across cores).
    std::vector<Vpn> need_walk;
    ArenaRc<BypassTags> bypass_tags;
    Cycle walk_at = now;
    for (Vpn tag : to_walk) {
        auto res = l2_->access(
            asidKey(asid_, tag), now,
            [this, warp_id](Vpn t, std::uint64_t frame, bool large,
                            Cycle ready) {
                finishWalk(keyLocal(t), frame, large, warp_id, ready);
            });
        switch (res.outcome) {
          case L2Tlb::Outcome::Hit:
          case L2Tlb::Outcome::Merged:
            l2Satisfied_.inc();
            break;
          case L2Tlb::Outcome::Bypass:
            if (!bypass_tags)
                bypass_tags = bypassArena_.createRc();
            bypass_tags->insert(tag);
            [[fallthrough]];
          case L2Tlb::Outcome::NeedWalk:
            need_walk.push_back(tag);
            walk_at = std::max(walk_at, res.ready);
            break;
        }
    }
    if (!need_walk.empty())
        issueWalks(need_walk, warp_id, walk_at, std::move(bypass_tags));
}

void
Mmu::shootdown()
{
    shootdowns_.inc();
    tlb_.flush();
    if (l2_ != nullptr)
        l2_->flush();
}

void
Mmu::checkEndOfKernel() const
{
    if (!checker_)
        return;
    GPUMMU_ASSERT(outstanding_.empty(), outstanding_.size(),
                  " VPNs still outstanding in the MMU at kernel end");
    GPUMMU_ASSERT(missStart_.empty(),
                  "miss-start timestamps leaked past kernel end");
    GPUMMU_ASSERT(drainWaiters_.empty(), drainWaiters_.size(),
                  " warps still blocked on a TLB drain at kernel end");
    walkers_.checkDrained();
    tlb_.checkSweep();
}

void
Mmu::endKernel()
{
    checkEndOfKernel();
    walkers_.onKernelDrained();
}

void
Mmu::regStats(StatRegistry &reg, const std::string &prefix)
{
    tlb_.regStats(reg, prefix + ".tlb");
    walkers_.regStats(reg, prefix + ".ptw");
    reg.addCounter(prefix + ".merged_walks", &mergedWalks_);
    reg.addCounter(prefix + ".shootdowns", &shootdowns_);
    reg.addCounter(prefix + ".l2tlb_satisfied", &l2Satisfied_);
    reg.addHistogram(prefix + ".miss_latency", &missLatency_);
}

} // namespace gpummu
