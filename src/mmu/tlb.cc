#include "mmu/tlb.hh"

#include "check/invariant_checker.hh"
#include "telemetry/span.hh"
#include "trace/trace.hh"

namespace gpummu {

Tlb::Tlb(const TlbConfig &cfg)
    : cfg_(cfg), array_(cfg.entries, cfg.ways)
{
    GPUMMU_ASSERT(cfg.ports >= 1);
    GPUMMU_ASSERT(cfg.historyLength <= 4);
}

Tlb::LookupResult
Tlb::lookup(Vpn vpn, int warp_id, bool record)
{
    if (record) {
        accesses_.inc();
        // The span opens beside the access counter so "spans opened
        // == tlb accesses" holds exactly (conservation check).
        if (spans_)
            spans_->openNow(vpn, SpanStage::L1Lookup, spanTid_);
    }
    auto res = array_.lookup(vpn);
    LookupResult out;
    if (!res.hit) {
        if (trace_ && record)
            trace_->instant(TraceCat::Tlb, "tlb_miss", traceTid_,
                            "vpn", vpn, "warp",
                            static_cast<std::uint64_t>(warp_id));
        if (spans_ && record)
            spans_->stageNow(vpn, SpanStage::L1Miss);
        return out;
    }

    if (record)
        hits_.inc();
    if (trace_ && record)
        trace_->instant(TraceCat::Tlb, "tlb_hit", traceTid_, "vpn",
                        vpn, "warp",
                        static_cast<std::uint64_t>(warp_id));
    if (spans_ && record)
        spans_->closeNewestNow(vpn, SpanStage::L1Hit);
    out.hit = true;
    out.depth = res.depth;
    out.ppn = res.payload->ppn;
    out.isLarge = res.payload->isLarge;
    out.history = res.payload->warpHistory;
    out.historyUsed = res.payload->historyUsed;

    // Record this warp in the entry's history (most recent first),
    // dropping the oldest when full. Duplicate of the head is not
    // re-pushed to keep the history informative. Non-recording
    // probes (record=false) must not mutate the history either: the
    // schedulers consume it, and a what-if probe is not an access.
    if (record && cfg_.historyLength > 0 && warp_id >= 0 &&
        (res.payload->historyUsed == 0 ||
         res.payload->warpHistory[0] != warp_id)) {
        auto &h = res.payload->warpHistory;
        const unsigned len = std::min<unsigned>(cfg_.historyLength,
                                                h.size());
        for (unsigned i = len - 1; i > 0; --i)
            h[i] = h[i - 1];
        h[0] = warp_id;
        if (res.payload->historyUsed < len)
            ++res.payload->historyUsed;
    }
    return out;
}

bool
Tlb::probe(Vpn vpn) const
{
    return array_.peek(vpn) != nullptr;
}

void
Tlb::fill(Vpn vpn, const Translation &t, int alloc_warp)
{
    if (checker_)
        checker_->onTlbFill(vpn, t.ppn, t.isLarge, checkShift_);
    TlbEntryInfo info;
    info.ppn = t.ppn;
    info.isLarge = t.isLarge;
    info.allocWarp = alloc_warp;
    if (trace_)
        trace_->instant(TraceCat::Tlb, "tlb_fill", traceTid_, "vpn",
                        vpn, "ppn", t.ppn);
    auto victim = array_.insert(vpn, info);
    if (victim) {
        if (trace_)
            trace_->instant(TraceCat::Tlb, "tlb_evict", traceTid_,
                            "vpn", victim->tag);
        if (onEvict_)
            onEvict_(victim->tag, victim->payload.allocWarp);
    }
    checkSweep();
}

void
Tlb::checkSweep() const
{
    if (!checker_)
        return;
    checker_->beginTlbSweep();
    array_.forEach([this](std::size_t set, std::uint64_t tag,
                          const TlbEntryInfo &e) {
        checker_->onTlbEntry(set, tag, e.ppn, e.isLarge, checkShift_);
    });
    checker_->endTlbSweep();
}

std::size_t
Tlb::invalidateMatching(
    const std::function<bool(std::uint64_t, const TlbEntryInfo &)> &pred)
{
    // Same listener discipline as flush(): every discarded entry is
    // an eviction the schedulers' bookkeeping must see.
    auto victims = array_.removeIf(pred);
    for (const auto &v : victims) {
        if (trace_)
            trace_->instant(TraceCat::Tlb, "tlb_evict", traceTid_,
                            "vpn", v.tag);
        if (onEvict_)
            onEvict_(v.tag, v.payload.allocWarp);
    }
    checkSweep();
    return victims.size();
}

void
Tlb::flush()
{
    flushes_.inc();
    // A flush evicts every resident entry; the eviction listener must
    // see each one, or the schedulers' lost-locality bookkeeping
    // (CCWS/TCWS victim tag arrays) silently leaks the whole TLB
    // contents on every shootdown while ordinary capacity evictions
    // are scored. Snapshot first: the listener may probe the TLB.
    std::vector<std::pair<Vpn, int>> victims;
    array_.forEach([&victims](std::size_t, std::uint64_t tag,
                              const TlbEntryInfo &e) {
        victims.emplace_back(tag, e.allocWarp);
    });
    array_.flush();
    for (const auto &[vpn, alloc_warp] : victims) {
        if (trace_)
            trace_->instant(TraceCat::Tlb, "tlb_evict", traceTid_,
                            "vpn", vpn);
        if (onEvict_)
            onEvict_(vpn, alloc_warp);
    }
}

void
Tlb::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".accesses", &accesses_);
    reg.addCounter(prefix + ".hits", &hits_);
    reg.addCounter(prefix + ".flushes", &flushes_);
}

} // namespace gpummu
