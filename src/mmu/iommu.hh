/**
 * @file
 * IOMMU-style translation: the pre-unified-address-space alternative
 * the paper describes in Section 2.2.
 *
 * Today's discrete designs put one large TLB plus walkers *at the
 * memory controller* (Intel VT-d / AMD IOMMU), which leaves the GPU's
 * own caches virtually addressed. Translation therefore sits on the
 * L1-miss path instead of beside the L1: hits in the (virtual) L1
 * never translate, but every L1 miss from every core funnels through
 * this one shared structure.
 *
 * The paper argues against this organisation on programmability
 * grounds (synonyms/homonyms, context switches, coherence); this
 * model makes the *performance* side of that comparison measurable.
 */

#ifndef MMU_IOMMU_HH
#define MMU_IOMMU_HH

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/invariant_checker.hh"
#include "mmu/ptw.hh"
#include "mmu/tlb.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "vm/address_space.hh"

namespace gpummu {

struct IommuConfig
{
    /** IOMMUs afford much larger TLBs than L1-parallel designs. */
    TlbConfig tlb{.entries = 1024, .ways = 8, .ports = 2,
                  .historyLength = 0};
    PtwConfig ptw{.numWalkers = 4, .scheduling = false};
    /** Lookup occupancy: one request per interval (pipelined CAM). */
    Cycle lookupInterval = 1;
    /** Fixed pipeline latency of a lookup at the controller. */
    Cycle lookupLatency = 8;
    /** Arm the differential reference checker (see MmuConfig). */
    bool checkInvariants = false;
};

class ProcessManager;

/**
 * One IOMMU shared by every shader core of the GPU.
 */
class Iommu
{
  public:
    /** (frame base in 4KB pages, cycle the translation is ready). */
    using DoneFn = std::function<void(std::uint64_t, Cycle)>;

    Iommu(const IommuConfig &cfg, AddressSpace &as, MemorySystem &mem,
          EventQueue &eq);

    /**
     * Translate @p key for a request arriving at the controller at
     * @p now. The key is an ASID-composed 4KB VPN (plain VPN in
     * single-process runs, where the ASID half is 0). The callback
     * fires synchronously on a TLB hit and at walk completion
     * otherwise. In multi-process mode a touch of an
     * unmapped-but-reserved page raises a minor fault: the OS
     * handler's service latency elapses, the page is faulted in, and
     * the walk then proceeds (the retry).
     */
    void translate(Vpn key, Cycle now, DoneFn done);

    /**
     * Enter multi-process mode: translate() keys may carry any ASID
     * registered with @p pm, each resolved against the owning
     * process's page table, and demand faults are serviced through
     * pm's OS cost model. The armed checker learns every process's
     * reference walker.
     */
    void attachProcesses(ProcessManager *pm);

    Tlb &tlb() { return tlb_; }
    PageWalkers &walkers() { return walkers_; }

    /** Kernel-end invariant check (no-op unarmed); see Mmu. */
    void checkEndOfKernel() const;

    /** The armed checker, or nullptr. */
    const InvariantChecker *checker() const { return checker_.get(); }

    /** Attach an event trace sink to the shared TLB and walkers. */
    void
    setTraceSink(TraceSink *sink, int tid)
    {
        tlb_.setTraceSink(sink, tid);
        walkers_.setTraceSink(sink, tid);
    }

    /** Attach a translation heat profiler to the shared walkers
     *  (tid -1: references are GPU-wide, not per core). */
    void
    setHeatProfiler(HeatProfiler *heat, int tid)
    {
        walkers_.setHeatProfiler(heat, tid);
    }

    /**
     * Attach a translation-lifecycle span tracker (observation-only).
     * The shared TLB is deliberately *not* armed: each requesting
     * core's memory stage opens the span when the request departs for
     * the controller, and this unit stamps the lookup / hit / merge /
     * fault / fill stages onto it (translate() keys already are span
     * keys). Walker stages ride the pool's own hooks at key shift 0.
     */
    void
    setSpanTracker(SpanTracker *spans, int tid)
    {
        spans_ = spans;
        spanTid_ = tid;
        walkers_.setSpanTracker(spans, tid, 0);
    }

    void regStats(StatRegistry &reg, const std::string &prefix);

    std::uint64_t lookups() const { return tlb_.accesses(); }
    std::uint64_t hits() const { return tlb_.hits(); }

  private:
    /** The address space owning @p asid (as_ or one of pm_'s). */
    AddressSpace &spaceFor(Asid asid);

    /** Issue the page walk for @p key (post-lookup, post-fault). */
    void issueWalk(Vpn key, Cycle at, Cycle started);

    IommuConfig cfg_;
    AddressSpace &as_;
    EventQueue &eq_;
    ProcessManager *pm_ = nullptr;
    std::unique_ptr<InvariantChecker> checker_;
    Tlb tlb_;
    PageWalkers walkers_;
    SpanTracker *spans_ = nullptr;
    int spanTid_ = 0;
    Cycle portFreeAt_ = 0;

    /** Waiters for in-flight walks, merged per composed key. */
    std::map<Vpn, std::vector<DoneFn>> outstanding_;

    Counter mergedWalks_;
    Histogram missLatency_;
};

} // namespace gpummu

#endif // MMU_IOMMU_HH
