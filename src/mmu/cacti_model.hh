/**
 * @file
 * CACTI-style access-time model for TLB sizing.
 *
 * The paper sizes GPU TLBs with CACTI and finds that 128 entries is
 * the largest CAM that still fits under the 32KB L1 set-selection
 * time, so up to 128 entries the (L1-parallel) TLB lookup is free.
 * Larger arrays and wider porting cost extra pipeline cycles on every
 * memory instruction. The "ideal" reference configurations in
 * Figs. 6/7/10 disable these penalties.
 */

#ifndef MMU_CACTI_MODEL_HH
#define MMU_CACTI_MODEL_HH

#include <bit>
#include <cstdint>

#include "sim/types.hh"

namespace gpummu {

struct CactiModel
{
    /** When true, size/port penalties are suppressed (ideal TLB). */
    bool ideal = false;

    /**
     * Extra cycles added to every TLB access purely from array size.
     * <=128 entries fit under L1 set selection; each doubling beyond
     * that costs additional cycles (CAM search plus wiring).
     */
    Cycle
    sizePenalty(std::size_t entries) const
    {
        if (ideal || entries <= 128)
            return 0;
        // Charge 2 cycles per (started) doubling beyond 128 entries:
        // 129..256 -> 2, 257..512 -> 4, ... Non-power-of-two arrays
        // pay for the power-of-two they round up to. Closed form so
        // arbitrarily large entry counts (fuzzed or misparsed grid
        // specs) cannot overflow: the old `for (sz = 128; sz <
        // entries; sz *= 2)` loop wrapped sz to 0 for entries >
        // SIZE_MAX/2+1 and spun forever. bit_width((entries-1)/128)
        // is exactly the number of started doublings past 128.
        return 2 * static_cast<Cycle>(
                       std::bit_width((entries - 1) / 128));
    }

    /**
     * Extra cycles from port count. 3-4 ports are implementable at
     * the base access time; heavier multiporting replicates or banks
     * the CAM and slows the access.
     */
    Cycle
    portPenalty(unsigned ports) const
    {
        if (ideal || ports <= 4)
            return 0;
        if (ports <= 8)
            return 1;
        if (ports <= 16)
            return 2;
        return 3;
    }

    Cycle
    accessPenalty(std::size_t entries, unsigned ports) const
    {
        return sizePenalty(entries) + portPenalty(ports);
    }

    /**
     * Relative silicon area of a CAM array (the fully-associative /
     * highly-associative TLB organisation): linear in entries and
     * quadratic in port count, because every extra port adds a
     * wordline and a bitline pair so the cell grows in both
     * dimensions. Unit: one 128-entry single-ported CAM == 1.0.
     *
     * Area is physical: `ideal` suppresses the *timing* penalties
     * (the what-if reference configs of Figs. 6/7/10) but never the
     * area estimate — an ideal-latency array still occupies silicon,
     * and the DSE Pareto axes would silently collapse otherwise.
     */
    double
    camArea(std::size_t entries, unsigned ports) const
    {
        const double port_dim =
            1.0 + 0.15 * (ports > 0 ? ports - 1 : 0);
        return static_cast<double>(entries) / 128.0 * port_dim *
               port_dim;
    }

    /**
     * Relative area of a set-associative SRAM array (shared L2 TLB,
     * page walk cache): same port scaling as camArea but SRAM cells
     * plus tag overhead come out around a quarter of a CAM cell at
     * equal entry count.
     */
    double
    ramArea(std::size_t entries, unsigned ports) const
    {
        return 0.25 * camArea(entries, ports);
    }
};

} // namespace gpummu

#endif // MMU_CACTI_MODEL_HH
