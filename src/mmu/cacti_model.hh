/**
 * @file
 * CACTI-style access-time model for TLB sizing.
 *
 * The paper sizes GPU TLBs with CACTI and finds that 128 entries is
 * the largest CAM that still fits under the 32KB L1 set-selection
 * time, so up to 128 entries the (L1-parallel) TLB lookup is free.
 * Larger arrays and wider porting cost extra pipeline cycles on every
 * memory instruction. The "ideal" reference configurations in
 * Figs. 6/7/10 disable these penalties.
 */

#ifndef MMU_CACTI_MODEL_HH
#define MMU_CACTI_MODEL_HH

#include <cstdint>

#include "sim/types.hh"

namespace gpummu {

struct CactiModel
{
    /** When true, size/port penalties are suppressed (ideal TLB). */
    bool ideal = false;

    /**
     * Extra cycles added to every TLB access purely from array size.
     * <=128 entries fit under L1 set selection; each doubling beyond
     * that costs additional cycles (CAM search plus wiring).
     */
    Cycle
    sizePenalty(std::size_t entries) const
    {
        if (ideal || entries <= 128)
            return 0;
        // Charge 2 cycles per (started) doubling beyond 128 entries:
        // 129..256 -> 2, 257..512 -> 4, ... Non-power-of-two arrays
        // pay for the power-of-two they round up to.
        Cycle penalty = 0;
        for (std::size_t sz = 128; sz < entries; sz *= 2)
            penalty += 2;
        return penalty;
    }

    /**
     * Extra cycles from port count. 3-4 ports are implementable at
     * the base access time; heavier multiporting replicates or banks
     * the CAM and slows the access.
     */
    Cycle
    portPenalty(unsigned ports) const
    {
        if (ideal || ports <= 4)
            return 0;
        if (ports <= 8)
            return 1;
        if (ports <= 16)
            return 2;
        return 3;
    }

    Cycle
    accessPenalty(std::size_t entries, unsigned ports) const
    {
        return sizePenalty(entries) + portPenalty(ports);
    }
};

} // namespace gpummu

#endif // MMU_CACTI_MODEL_HH
