#include "dse/autotuner.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/sweep.hh"
#include "dse/pareto.hh"
#include "sim/logging.hh"
#include "sim/perf_report.hh"
#include "sim/stats.hh"

namespace gpummu {

namespace {

DsePointMetrics
metricsFrom(const RunStats &s)
{
    DsePointMetrics m;
    m.cycles = s.cycles;
    m.instructions = s.instructions;
    m.tlbAccesses = s.tlbAccesses;
    m.tlbHits = s.tlbHits;
    m.walkRefsIssued = s.walkRefsIssued;
    m.avgTlbMissLatency = s.avgTlbMissLatency;
    return m;
}

} // namespace

DseResult
runDse(const DseGrid &grid, const DseOptions &opt,
       const std::map<std::string, DsePointMetrics> &cache)
{
    DseResult r;
    r.opt = opt;
    r.gridSpec = gridSpecString(grid);

    const std::vector<DseKnobs> knobs = expandGrid(grid);
    GPUMMU_ASSERT(!knobs.empty(), "empty design grid");

    r.points.resize(knobs.size());
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < knobs.size(); ++i) {
        DsePointResult &p = r.points[i];
        p.knobs = knobs[i];
        p.key = dsePointKey(opt.bench, opt.params, opt.numCores,
                            knobs[i]);
        auto it = cache.find(p.key);
        if (it != cache.end()) {
            p.metrics = it->second;
            ++r.reused;
        } else {
            missing.push_back(i);
        }
    }

    // Simulate only the cache misses, fanned out over the sweep
    // pool. The shared Experiment memoizes, so even duplicate knob
    // points (possible via repeated axis values) simulate once.
    if (!missing.empty()) {
        Experiment exp(opt.params);
        std::vector<SweepPoint> sweep;
        sweep.reserve(missing.size());
        for (std::size_t i : missing) {
            sweep.push_back(SweepPoint{
                opt.bench, makeDseConfig(knobs[i], opt.numCores)});
        }
        const std::vector<RunOutput> outs =
            SweepRunner(exp, opt.jobs).run(sweep);
        for (std::size_t j = 0; j < missing.size(); ++j)
            r.points[missing[j]].metrics =
                metricsFrom(outs[j].stats);
        r.simulated = missing.size();
    }

    // Deterministic presentation order: sort by key (ties — i.e.
    // exact duplicate grid points — keep expansion order).
    std::stable_sort(r.points.begin(), r.points.end(),
                     [](const DsePointResult &a,
                        const DsePointResult &b) {
                         return a.key < b.key;
                     });

    std::vector<ParetoPoint> pareto_pts(r.points.size());
    for (std::size_t i = 0; i < r.points.size(); ++i) {
        DsePointResult &p = r.points[i];
        p.area = opt.cost.area(p.knobs, opt.numCores);
        pareto_pts[i] = ParetoPoint{
            p.area, static_cast<double>(p.metrics.cycles)};
    }
    r.frontier = paretoFrontier(pareto_pts);
    for (std::size_t idx : r.frontier)
        r.points[idx].pareto = true;
    return r;
}

std::string
emitDseJson(const DseResult &r)
{
    std::ostringstream os;
    os << "{\"schema_version\":" << kDseSchemaVersion
       << ",\"generator\":\"dse_pareto\",\"bench\":\""
       << jsonEscape(benchmarkName(r.opt.bench)) << "\",\"seed\":"
       << r.opt.params.seed << ",\"scale\":"
       << jsonNum(r.opt.params.scale) << ",\"cores\":"
       << r.opt.numCores << ",\"grid\":\"" << jsonEscape(r.gridSpec)
       << "\",\"points\":[";
    bool first = true;
    for (const DsePointResult &p : r.points) {
        const DseKnobs &k = p.knobs;
        const DsePointMetrics &m = p.metrics;
        os << (first ? "\n" : ",\n") << "{\"key\":\"" << p.key
           << "\",\"config\":\"dse-" << jsonEscape(knobSpec(k))
           << "\",\"tlb_entries\":" << k.tlbEntries
           << ",\"tlb_ways\":" << k.tlbWays
           << ",\"tlb_ports\":" << k.tlbPorts
           << ",\"pwc_lines\":" << k.pwcLines
           << ",\"l2tlb_entries\":" << k.l2tlbEntries
           << ",\"l2tlb_ports\":" << k.l2tlbPorts
           << ",\"walkers\":" << k.walkers
           << ",\"walk_sched\":" << (k.walkSched ? "true" : "false")
           << ",\"page_2m\":" << (k.largePages ? "true" : "false")
           << ",\"cycles\":" << m.cycles
           << ",\"instructions\":" << m.instructions
           << ",\"tlb_accesses\":" << m.tlbAccesses
           << ",\"tlb_hits\":" << m.tlbHits
           << ",\"walk_refs_issued\":" << m.walkRefsIssued
           << ",\"avg_tlb_miss_latency\":"
           << jsonNum(m.avgTlbMissLatency)
           << ",\"area\":" << jsonNum(p.area)
           << ",\"pareto\":" << (p.pareto ? "true" : "false") << "}";
        first = false;
    }
    os << "\n],\"frontier\":[";
    first = true;
    for (std::size_t idx : r.frontier) {
        os << (first ? "" : ",") << '"' << r.points[idx].key << '"';
        first = false;
    }
    os << "]}\n";
    return os.str();
}

namespace {

bool
getUint(const JsonValue &obj, const char *key, std::uint64_t &out)
{
    const JsonValue *v = obj.find(key);
    if (v == nullptr || v->kind != JsonValue::Kind::Number ||
        v->number < 0 || v->number != std::floor(v->number)) {
        return false;
    }
    out = static_cast<std::uint64_t>(v->number);
    return true;
}

} // namespace

bool
loadDseCache(const std::string &json,
             std::map<std::string, DsePointMetrics> &out,
             std::string *err)
{
    out.clear();
    JsonValue doc;
    std::string perr;
    if (!parseJson(json, doc, &perr)) {
        if (err != nullptr)
            *err = perr;
        return false;
    }
    auto fail = [err](const std::string &why) {
        if (err != nullptr)
            *err = why;
        return false;
    };
    if (doc.kind != JsonValue::Kind::Object)
        return fail("resume file is not a JSON object");
    const JsonValue *sv = doc.find("schema_version");
    if (sv == nullptr || sv->kind != JsonValue::Kind::Number)
        return fail("resume file has no schema_version");
    if (sv->number < 1 || sv->number > kDseSchemaVersion) {
        return fail("resume file schema_version " +
                    std::to_string(sv->number) +
                    " is outside [1, " +
                    std::to_string(kDseSchemaVersion) + "]");
    }
    const JsonValue *pts = doc.find("points");
    if (pts == nullptr || pts->kind != JsonValue::Kind::Array)
        return fail("resume file has no points array");
    for (std::size_t i = 0; i < pts->items.size(); ++i) {
        const JsonValue &p = pts->items[i];
        const std::string where =
            "points[" + std::to_string(i) + "]";
        if (p.kind != JsonValue::Kind::Object)
            return fail(where + " is not an object");
        const JsonValue *key = p.find("key");
        if (key == nullptr || key->kind != JsonValue::Kind::String ||
            key->str.size() != 16) {
            return fail(where + " has no 16-hex-digit key");
        }
        DsePointMetrics m;
        const JsonValue *lat = p.find("avg_tlb_miss_latency");
        if (!getUint(p, "cycles", m.cycles) ||
            !getUint(p, "instructions", m.instructions) ||
            !getUint(p, "tlb_accesses", m.tlbAccesses) ||
            !getUint(p, "tlb_hits", m.tlbHits) ||
            !getUint(p, "walk_refs_issued", m.walkRefsIssued) ||
            lat == nullptr ||
            lat->kind != JsonValue::Kind::Number) {
            return fail(where + " is missing a metric field");
        }
        m.avgTlbMissLatency = lat->number;
        if (m.cycles == 0)
            return fail(where + " has zero cycles");
        // Duplicate grid points legitimately repeat a key (identical
        // simulations by the determinism contract); a repeat with
        // *different* metrics is corruption and must not resume.
        auto [it, inserted] = out.emplace(key->str, m);
        if (!inserted) {
            const DsePointMetrics &prev = it->second;
            if (prev.cycles != m.cycles ||
                prev.instructions != m.instructions ||
                prev.tlbAccesses != m.tlbAccesses ||
                prev.tlbHits != m.tlbHits ||
                prev.walkRefsIssued != m.walkRefsIssued ||
                prev.avgTlbMissLatency != m.avgTlbMissLatency) {
                return fail(where + " repeats key " + key->str +
                            " with conflicting metrics");
            }
        }
    }
    return true;
}

DseValidation
validateDseJson(const std::string &json)
{
    DseValidation v;
    JsonValue doc;
    std::string perr;
    if (!parseJson(json, doc, &perr)) {
        v.errors.push_back(perr);
        return v;
    }
    if (doc.kind != JsonValue::Kind::Object) {
        v.errors.push_back("top level: not a JSON object");
        return v;
    }
    auto require = [&](const char *key, JsonValue::Kind kind)
        -> const JsonValue * {
        const JsonValue *m = doc.find(key);
        if (m == nullptr) {
            v.errors.push_back(std::string("top level: missing '") +
                               key + "'");
            return nullptr;
        }
        if (m->kind != kind) {
            v.errors.push_back(std::string("top level: '") + key +
                               "' has the wrong type");
            return nullptr;
        }
        return m;
    };
    if (const JsonValue *sv =
            require("schema_version", JsonValue::Kind::Number)) {
        if (sv->number != std::floor(sv->number) || sv->number < 1 ||
            sv->number > kDseSchemaVersion) {
            v.errors.push_back(
                "top level: schema_version must be an integer in "
                "[1, " + std::to_string(kDseSchemaVersion) + "]");
        }
    }
    require("generator", JsonValue::Kind::String);
    require("bench", JsonValue::Kind::String);
    require("seed", JsonValue::Kind::Number);
    require("scale", JsonValue::Kind::Number);
    require("cores", JsonValue::Kind::Number);
    require("grid", JsonValue::Kind::String);

    const JsonValue *pts = require("points", JsonValue::Kind::Array);
    const JsonValue *front =
        require("frontier", JsonValue::Kind::Array);
    if (pts == nullptr || front == nullptr)
        return v;
    if (pts->items.empty()) {
        v.errors.push_back("points: array is empty");
        return v;
    }
    std::map<std::string, bool> flags; // key -> pareto flag
    for (std::size_t i = 0; i < pts->items.size(); ++i) {
        const JsonValue &p = pts->items[i];
        const std::string where =
            "points[" + std::to_string(i) + "]";
        if (p.kind != JsonValue::Kind::Object) {
            v.errors.push_back(where + ": not an object");
            continue;
        }
        const JsonValue *key = p.find("key");
        if (key == nullptr ||
            key->kind != JsonValue::Kind::String ||
            key->str.size() != 16) {
            v.errors.push_back(where +
                               ": missing 16-hex-digit 'key'");
            continue;
        }
        for (const char *req :
             {"config", "tlb_entries", "tlb_ways", "tlb_ports",
              "pwc_lines", "l2tlb_entries", "l2tlb_ports", "walkers",
              "walk_sched", "page_2m", "cycles", "instructions",
              "tlb_accesses", "tlb_hits", "walk_refs_issued",
              "avg_tlb_miss_latency", "area", "pareto"}) {
            if (p.find(req) == nullptr) {
                v.errors.push_back(where + ": missing '" + req +
                                   "'");
            }
        }
        const JsonValue *cyc = p.find("cycles");
        if (cyc != nullptr &&
            (cyc->kind != JsonValue::Kind::Number ||
             cyc->number <= 0)) {
            v.errors.push_back(where +
                               ": cycles must be positive");
        }
        const JsonValue *area = p.find("area");
        if (area != nullptr &&
            (area->kind != JsonValue::Kind::Number ||
             !std::isfinite(area->number) || area->number <= 0)) {
            v.errors.push_back(
                where + ": area must be finite and positive");
        }
        const JsonValue *flag = p.find("pareto");
        if (flag != nullptr && flag->kind == JsonValue::Kind::Bool)
            flags[key->str] = flags[key->str] || flag->boolean;
    }
    if (front->items.empty())
        v.errors.push_back("frontier: array is empty");
    std::map<std::string, bool> on_frontier;
    for (const JsonValue &f : front->items) {
        if (f.kind != JsonValue::Kind::String) {
            v.errors.push_back("frontier: non-string key");
            continue;
        }
        if (flags.find(f.str) == flags.end()) {
            v.errors.push_back("frontier: key " + f.str +
                               " not among the points");
            continue;
        }
        on_frontier[f.str] = true;
    }
    for (const auto &[key, flag] : flags) {
        const bool listed =
            on_frontier.find(key) != on_frontier.end();
        if (flag != listed) {
            v.errors.push_back(
                "point " + key +
                ": pareto flag inconsistent with frontier list");
        }
    }
    return v;
}

} // namespace gpummu
