/**
 * @file
 * Exact Pareto-frontier extraction for design-space exploration.
 *
 * The autotuner scores every design point on two axes that both want
 * minimizing — execution cycles (perf) and estimated silicon area —
 * and keeps exactly the points no other point dominates. Dominance is
 * the usual weak form: a dominates b when a is no worse on both axes
 * and strictly better on at least one. Duplicate points (equal on
 * both axes) never dominate each other, so every copy of a frontier
 * point stays on the frontier; a tie on one axis alone is still a
 * strict improvement on the other and eliminates the loser.
 */

#ifndef DSE_PARETO_HH
#define DSE_PARETO_HH

#include <cstddef>
#include <vector>

namespace gpummu {

/** One candidate, both axes minimized. */
struct ParetoPoint
{
    double x = 0.0; ///< e.g. area estimate
    double y = 0.0; ///< e.g. execution cycles
};

/** True when @p a dominates @p b (minimization on both axes). */
bool paretoDominates(const ParetoPoint &a, const ParetoPoint &b);

/**
 * Indices of the non-dominated points of @p pts, sorted by
 * (x, y, index) so the result is deterministic regardless of input
 * order. O(n log n). An empty input yields an empty frontier; a
 * single point is always on it.
 */
std::vector<std::size_t>
paretoFrontier(const std::vector<ParetoPoint> &pts);

} // namespace gpummu

#endif // DSE_PARETO_HH
