#include "dse/grid.hh"

#include <charconv>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "sim/logging.hh"
#include "sim/stats.hh"

namespace gpummu {

namespace {

/** Strict full-token unsigned parse; false on garbage/overflow. */
template <typename T>
bool
parseUint(const std::string &tok, T &out)
{
    if (tok.empty())
        return false;
    T v{};
    const char *first = tok.data();
    const char *last = tok.data() + tok.size();
    const auto [ptr, ec] = std::from_chars(first, last, v);
    if (ec != std::errc() || ptr != last)
        return false;
    out = v;
    return true;
}

bool
splitList(const std::string &text, char sep,
          std::vector<std::string> &out)
{
    out.clear();
    std::string cur;
    std::istringstream is(text);
    while (std::getline(is, cur, sep))
        out.push_back(cur);
    return !out.empty();
}

template <typename T>
bool
parseUintList(const std::string &text, std::vector<T> &out,
              bool allow_zero)
{
    std::vector<std::string> toks;
    if (!splitList(text, ',', toks))
        return false;
    out.clear();
    for (const std::string &tok : toks) {
        T v{};
        if (!parseUint(tok, v))
            return false;
        if (v == 0 && !allow_zero)
            return false;
        out.push_back(v);
    }
    return true;
}

bool
fail(std::string *err, const std::string &why)
{
    if (err != nullptr)
        *err = why;
    return false;
}

} // namespace

std::size_t
DseGrid::numPoints() const
{
    return tlbEntries.size() * tlbWays.size() * tlbPorts.size() *
           pwcLines.size() * l2tlbEntries.size() * l2tlbPorts.size() *
           walkers.size() * largePages.size();
}

bool
parseGridSpec(const std::string &spec, DseGrid &out, std::string *err)
{
    std::vector<std::string> fields;
    if (!splitList(spec, ';', fields))
        return fail(err, "empty grid spec");
    for (const std::string &field : fields) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos || eq == 0)
            return fail(err, "grid field '" + field +
                                 "' is not key=v1,v2,...");
        const std::string key = field.substr(0, eq);
        const std::string vals = field.substr(eq + 1);
        bool ok = false;
        if (key == "tlb_entries") {
            ok = parseUintList(vals, out.tlbEntries, false);
        } else if (key == "tlb_ways") {
            ok = parseUintList(vals, out.tlbWays, false);
        } else if (key == "tlb_ports") {
            ok = parseUintList(vals, out.tlbPorts, false);
        } else if (key == "pwc_lines") {
            ok = parseUintList(vals, out.pwcLines, true);
        } else if (key == "l2tlb_entries") {
            ok = parseUintList(vals, out.l2tlbEntries, true);
        } else if (key == "l2tlb_ports") {
            ok = parseUintList(vals, out.l2tlbPorts, false);
        } else if (key == "walkers") {
            // "<n>" = n naive walkers, "<n>s" = scheduled walking
            // (the batch coalescer uses one walker; n must be 1).
            std::vector<std::string> toks;
            ok = splitList(vals, ',', toks);
            out.walkers.clear();
            for (const std::string &tok0 : toks) {
                std::string tok = tok0;
                bool sched = false;
                if (!tok.empty() && tok.back() == 's') {
                    sched = true;
                    tok.pop_back();
                }
                unsigned n = 0;
                if (!parseUint(tok, n) || n == 0 || (sched && n != 1)) {
                    ok = false;
                    break;
                }
                out.walkers.emplace_back(n, sched);
            }
            ok = ok && !out.walkers.empty();
        } else if (key == "page") {
            std::vector<std::string> toks;
            ok = splitList(vals, ',', toks);
            out.largePages.clear();
            for (const std::string &tok : toks) {
                if (tok == "4k") {
                    out.largePages.push_back(false);
                } else if (tok == "2m") {
                    out.largePages.push_back(true);
                } else {
                    ok = false;
                    break;
                }
            }
            ok = ok && !out.largePages.empty();
        } else {
            return fail(err, "unknown grid knob '" + key + "'");
        }
        if (!ok)
            return fail(err, "bad value list for grid knob '" + key +
                                 "': '" + vals + "'");
    }
    return true;
}

bool
namedGrid(const std::string &name, DseGrid &out)
{
    // All three stay parseable specs so the CLI help can print them
    // and tests can round-trip them through parseGridSpec.
    std::string spec;
    if (name == "tiny") {
        // 8 points: the CI smoke grid.
        spec = "tlb_entries=64,128;walkers=1,1s;l2tlb_entries=0,1024";
    } else if (name == "smoke") {
        // 64 points: the reproducible EXPERIMENTS.md frontier.
        spec = "tlb_entries=64,128,256,512;tlb_ports=2,4;"
               "pwc_lines=0,16;l2tlb_entries=0,4096;"
               "walkers=1,1s;page=4k";
    } else if (name == "default") {
        // 768 points: the full pathfinding sweep.
        spec = "tlb_entries=64,128,256,512;tlb_ways=2,4;"
               "tlb_ports=2,4;pwc_lines=0,16;"
               "l2tlb_entries=0,2048,8192;"
               "walkers=1,2,4,1s;page=4k,2m";
    } else {
        return false;
    }
    DseGrid g;
    std::string err;
    const bool ok = parseGridSpec(spec, g, &err);
    GPUMMU_ASSERT(ok, "named grid '", name, "' failed to parse: ",
                  err);
    out = g;
    return true;
}

std::string
gridSpecString(const DseGrid &grid)
{
    std::ostringstream os;
    auto list = [&os](const char *key, const auto &vals,
                      auto &&fmt1) {
        os << key << '=';
        for (std::size_t i = 0; i < vals.size(); ++i)
            os << (i ? "," : "") << fmt1(vals[i]);
        os << ';';
    };
    auto id = [](auto v) { return v; };
    list("tlb_entries", grid.tlbEntries, id);
    list("tlb_ways", grid.tlbWays, id);
    list("tlb_ports", grid.tlbPorts, id);
    list("pwc_lines", grid.pwcLines, id);
    list("l2tlb_entries", grid.l2tlbEntries, id);
    list("l2tlb_ports", grid.l2tlbPorts, id);
    list("walkers", grid.walkers,
         [](const std::pair<unsigned, bool> &w) {
             return std::to_string(w.first) + (w.second ? "s" : "");
         });
    os << "page=";
    for (std::size_t i = 0; i < grid.largePages.size(); ++i)
        os << (i ? "," : "") << (grid.largePages[i] ? "2m" : "4k");
    return os.str();
}

std::vector<DseKnobs>
expandGrid(const DseGrid &grid)
{
    auto bad = [](const std::string &why) {
        throw std::invalid_argument("grid: " + why);
    };
    if (grid.numPoints() == 0)
        bad("an axis is empty");

    std::vector<DseKnobs> pts;
    pts.reserve(grid.numPoints());
    for (std::size_t entries : grid.tlbEntries) {
        for (std::size_t ways : grid.tlbWays) {
            if (ways > entries || entries % ways != 0) {
                bad("tlb_entries " + std::to_string(entries) +
                    " not divisible by tlb_ways " +
                    std::to_string(ways));
            }
            for (unsigned ports : grid.tlbPorts)
                for (std::size_t pwc : grid.pwcLines)
                    for (std::size_t l2e : grid.l2tlbEntries) {
                        if (l2e != 0 && l2e % 8 != 0) {
                            bad("l2tlb_entries " +
                                std::to_string(l2e) +
                                " not divisible by its 8 ways");
                        }
                        for (unsigned l2p : grid.l2tlbPorts)
                            for (const auto &[wn, ws] : grid.walkers)
                                for (bool lp : grid.largePages) {
                                    DseKnobs k;
                                    k.tlbEntries = entries;
                                    k.tlbWays = ways;
                                    k.tlbPorts = ports;
                                    k.pwcLines = pwc;
                                    k.l2tlbEntries = l2e;
                                    k.l2tlbPorts = l2p;
                                    k.walkers = wn;
                                    k.walkSched = ws;
                                    k.largePages = lp;
                                    pts.push_back(k);
                                }
                    }
        }
    }
    return pts;
}

std::string
knobSpec(const DseKnobs &k)
{
    std::ostringstream os;
    os << "tlb" << k.tlbEntries << 'e' << k.tlbWays << 'w'
       << k.tlbPorts << "p-pwc" << k.pwcLines << "-l2";
    if (k.l2tlbEntries == 0)
        os << "none";
    else
        os << k.l2tlbEntries << 'e' << k.l2tlbPorts << 'p';
    os << "-w" << k.walkers << (k.walkSched ? "s" : "") << '-'
       << (k.largePages ? "2m" : "4k");
    return os.str();
}

SystemConfig
makeDseConfig(const DseKnobs &k, unsigned num_cores)
{
    SystemConfig cfg;
    cfg.name = "dse-" + knobSpec(k);
    cfg.numCores = num_cores;
    cfg.core.mmu.enabled = true;
    cfg.core.mmu.tlb.entries = k.tlbEntries;
    cfg.core.mmu.tlb.ways = k.tlbWays;
    cfg.core.mmu.tlb.ports = k.tlbPorts;
    // The DSE explores around the paper's augmented design: hits
    // under misses and overlapped cache access stay on, so the knobs
    // under study are the only thing varying.
    cfg.core.mmu.hitUnderMiss = true;
    cfg.core.mmu.cacheOverlap = true;
    cfg.core.mmu.ptw.pwcLines = k.pwcLines;
    cfg.core.mmu.ptw.numWalkers = k.walkers;
    cfg.core.mmu.ptw.scheduling = k.walkSched;
    if (k.l2tlbEntries != 0) {
        cfg.l2tlb.enabled = true;
        cfg.l2tlb.entries = k.l2tlbEntries;
        cfg.l2tlb.ports = k.l2tlbPorts;
        if (k.l2tlbEntries < cfg.l2tlb.ways)
            cfg.l2tlb.ways = k.l2tlbEntries;
    }
    cfg.largePages = k.largePages;
    return cfg;
}

std::uint64_t
fnv1a64(const std::string &s)
{
    std::uint64_t h = 14695981039346656037ULL;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return h;
}

std::string
dsePointKey(BenchmarkId bench, const WorkloadParams &params,
            unsigned num_cores, const DseKnobs &k)
{
    // jsonNum gives the shortest round-trip spelling of scale, so the
    // preimage is identical however the double was produced.
    const std::string preimage =
        benchmarkName(bench) + "|s" + std::to_string(params.seed) +
        "|x" + jsonNum(params.scale) + "|c" +
        std::to_string(num_cores) + "|" + knobSpec(k);
    const std::uint64_t h = fnv1a64(preimage);
    char buf[17];
    static const char *hex = "0123456789abcdef";
    for (int i = 0; i < 16; ++i)
        buf[i] = hex[(h >> (60 - 4 * i)) & 0xF];
    buf[16] = '\0';
    return std::string(buf);
}

} // namespace gpummu
