/**
 * @file
 * Design-space grid for the Pareto autotuner.
 *
 * A grid is a cross product over the translation knobs the paper (and
 * the heterogeneous-MMU pathfinding studies after it) trades off: L1
 * TLB geometry (entries/ways/ports), the page walk cache, an optional
 * shared L2 TLB, walker count or batch-scheduled walking, and the
 * page size. Each point expands to one SystemConfig with a canonical
 * name, and is keyed by a stable 64-bit FNV-1a hash over
 * (benchmark, seed, scale, cores, knobs) — the identity the resumable
 * result cache uses, so it must never depend on process state,
 * pointer values, or field ordering accidents.
 *
 * Grid specs arrive from the CLI as "knob=v1,v2;knob=v3" strings and
 * from named presets. Parsing is strict (full-token from_chars, range
 * checks, geometry validation) — a misparsed spec must fail loudly,
 * not silently expand into an absurd design space; the CACTI
 * infinite-loop bug this PR fixes was reachable from exactly that.
 */

#ifndef DSE_GRID_HH
#define DSE_GRID_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/system_config.hh"
#include "workloads/workload.hh"

namespace gpummu {

/** One design point's knob settings. */
struct DseKnobs
{
    std::size_t tlbEntries = 128;
    std::size_t tlbWays = 4;
    unsigned tlbPorts = 4;
    /** Page-walk-cache lines; 0 disables the PWC. */
    std::size_t pwcLines = 16;
    /** Shared L2 TLB entries; 0 means no shared L2 TLB. */
    std::size_t l2tlbEntries = 0;
    unsigned l2tlbPorts = 2;
    /** Independent page walkers (ignored when walkSched). */
    unsigned walkers = 1;
    /** Batch-coalescing walk scheduling (single walker). */
    bool walkSched = false;
    /** Back the address space with 2MB pages. */
    bool largePages = false;
};

/** Axes of the cross product; every vector must be non-empty. */
struct DseGrid
{
    std::vector<std::size_t> tlbEntries{128};
    std::vector<std::size_t> tlbWays{4};
    std::vector<unsigned> tlbPorts{4};
    std::vector<std::size_t> pwcLines{16};
    std::vector<std::size_t> l2tlbEntries{0};
    std::vector<unsigned> l2tlbPorts{2};
    /** (count, scheduled) pairs, spelled "2" / "1s" in specs. */
    std::vector<std::pair<unsigned, bool>> walkers{{1, false}};
    std::vector<bool> largePages{false};

    std::size_t numPoints() const;
};

/**
 * Parse a "tlb_entries=64,128;tlb_ports=2,4;walkers=1,2,1s;page=4k,2m"
 * spec. Recognised keys: tlb_entries, tlb_ways, tlb_ports, pwc_lines,
 * l2tlb_entries, l2tlb_ports, walkers, page. Unknown keys, malformed
 * numbers (trailing garbage, overflow, zero where zero is
 * meaningless) and empty value lists all fail with a message in
 * @p err. Keys not mentioned keep their defaults.
 */
bool parseGridSpec(const std::string &spec, DseGrid &out,
                   std::string *err = nullptr);

/**
 * Named grids for the CLI: "tiny" (8 points, CI smoke), "smoke"
 * (64 points, the EXPERIMENTS.md frontier), "default" (768 points,
 * the full pathfinding sweep). Returns false for unknown names.
 */
bool namedGrid(const std::string &name, DseGrid &out);

/** Canonical spec string for a grid (stable across field order). */
std::string gridSpecString(const DseGrid &grid);

/**
 * Expand the cross product in deterministic axis-major order,
 * validating geometry (entries divisible by ways, ways/ports > 0,
 * L2 sizes divisible by their fixed 8-way associativity). Throws
 * std::invalid_argument naming the offending knob.
 */
std::vector<DseKnobs> expandGrid(const DseGrid &grid);

/** Canonical human-readable knob string, e.g.
 *  "tlb128e4w4p-pwc16-l2none-w1s-4k". Doubles as the config name
 *  suffix and part of the hash preimage. */
std::string knobSpec(const DseKnobs &k);

/** Build the SystemConfig for one design point. */
SystemConfig makeDseConfig(const DseKnobs &k, unsigned num_cores);

/** 64-bit FNV-1a, the cache's stable hash primitive. */
std::uint64_t fnv1a64(const std::string &s);

/**
 * Stable identity of one (benchmark, workload params, machine size,
 * knobs) simulation, as 16 lowercase hex digits. Two runs with the
 * same key are bit-identical simulations (the determinism contract),
 * which is what makes cached results reusable across processes.
 */
std::string dsePointKey(BenchmarkId bench, const WorkloadParams &params,
                        unsigned num_cores, const DseKnobs &k);

} // namespace gpummu

#endif // DSE_GRID_HH
