#include "dse/cost.hh"

namespace gpummu {

double
DseCostModel::area(const DseKnobs &k, unsigned num_cores) const
{
    // Per-core: the L1 TLB CAM, the PWC (a small SRAM of PTE lines),
    // and the walker pool. Scheduled walking uses one walker plus
    // its batch queue.
    double per_core =
        cacti.camArea(k.tlbEntries, k.tlbPorts);
    if (k.pwcLines > 0)
        per_core += cacti.ramArea(k.pwcLines * ptesPerPwcLine, 1);
    if (k.walkSched)
        per_core += walkerArea + schedulerArea;
    else
        per_core += walkerArea * k.walkers;

    // Shared, once per GPU: the L2 TLB SRAM.
    double shared = 0.0;
    if (k.l2tlbEntries > 0)
        shared += cacti.ramArea(k.l2tlbEntries, k.l2tlbPorts);

    return per_core * num_cores + shared;
}

} // namespace gpummu
