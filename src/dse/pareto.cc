#include "dse/pareto.hh"

#include <algorithm>
#include <limits>

namespace gpummu {

bool
paretoDominates(const ParetoPoint &a, const ParetoPoint &b)
{
    return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

std::vector<std::size_t>
paretoFrontier(const std::vector<ParetoPoint> &pts)
{
    std::vector<std::size_t> order(pts.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&pts](std::size_t a, std::size_t b) {
                  if (pts[a].x != pts[b].x)
                      return pts[a].x < pts[b].x;
                  if (pts[a].y != pts[b].y)
                      return pts[a].y < pts[b].y;
                  return a < b;
              });

    // Sweep in x order keeping the running y minimum: a point
    // survives iff its y beats every cheaper-or-equal-x point seen so
    // far, or it is an exact duplicate of the survivor that set the
    // current minimum (duplicates do not dominate each other).
    std::vector<std::size_t> frontier;
    double best_x = std::numeric_limits<double>::quiet_NaN();
    double best_y = std::numeric_limits<double>::infinity();
    for (std::size_t idx : order) {
        const ParetoPoint &p = pts[idx];
        if (p.y < best_y) {
            frontier.push_back(idx);
            best_x = p.x;
            best_y = p.y;
        } else if (p.y == best_y && p.x == best_x) {
            frontier.push_back(idx); // exact duplicate survives
        }
    }
    return frontier;
}

} // namespace gpummu
