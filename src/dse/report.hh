/**
 * @file
 * Self-contained HTML comparison report for one DSE sweep.
 *
 * Reuses the telemetry report's page shell (same inline CSS, no
 * external dependencies) and renders from the sweep's own frontier
 * JSON embedded in the page: a perf-vs-area scatter with the Pareto
 * frontier drawn through the non-dominated points, the frontier as a
 * table, and a per-knob sensitivity table (for every value of every
 * knob: how many points, the best cycles/area reached, and how many
 * made the frontier).
 */

#ifndef DSE_REPORT_HH
#define DSE_REPORT_HH

#include <ostream>
#include <string>

#include "dse/autotuner.hh"

namespace gpummu {

/**
 * Write the comparison report for @p r. Returns false when the sweep
 * has no points (nothing to compare — CI treats that as a failure)
 * or, for the file variant, on I/O failure.
 */
bool writeDseHtmlReport(std::ostream &os, const DseResult &r);
bool writeDseHtmlReportFile(const std::string &path,
                            const DseResult &r);

} // namespace gpummu

#endif // DSE_REPORT_HH
