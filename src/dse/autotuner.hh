/**
 * @file
 * Pareto design-space autotuner (ROADMAP item 4).
 *
 * Sweeps a DseGrid over one benchmark through the memoized
 * Experiment/SweepRunner substrate, scores every point as
 * (execution cycles, CACTI-style area estimate), and extracts the
 * exact Pareto frontier. Sweeps are resumable: every point is keyed
 * by the stable dsePointKey hash of (benchmark, params, cores,
 * knobs), results persist to a schema-versioned byte-stable JSON
 * file, and a re-run fed that file via resume only simulates the
 * points it is missing — same contract as Accel-Sim-style DSE
 * tooling, where thousand-point sweeps die and restart.
 *
 * Byte stability: the emitted JSON depends only on (grid, benchmark,
 * params, cores) and the deterministic simulation results. Points are
 * sorted by key; integer metrics re-emit as integers; the only
 * doubles either re-derive from integers or round-trip through
 * jsonNum's shortest to_chars spelling, which reparses to the same
 * double. A fresh sweep and a fully-cached resume therefore produce
 * byte-identical files (tests/test_dse.cc pins this).
 */

#ifndef DSE_AUTOTUNER_HH
#define DSE_AUTOTUNER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/experiment.hh"
#include "dse/cost.hh"
#include "dse/grid.hh"

namespace gpummu {

/** Version of the DSE frontier/cache JSON schema this checkout
 *  writes; validation accepts [1, kDseSchemaVersion]. */
inline constexpr int kDseSchemaVersion = 1;

/** The per-point simulation results the cache persists. */
struct DsePointMetrics
{
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t tlbAccesses = 0;
    std::uint64_t tlbHits = 0;
    std::uint64_t walkRefsIssued = 0;
    double avgTlbMissLatency = 0.0;
};

/** One scored design point of a finished sweep. */
struct DsePointResult
{
    std::string key; ///< dsePointKey hex identity
    DseKnobs knobs;
    DsePointMetrics metrics;
    double area = 0.0;
    bool pareto = false;
};

struct DseOptions
{
    BenchmarkId bench = BenchmarkId::Bfs;
    WorkloadParams params;
    /** Shader cores per simulated design (small by default so
     *  thousand-point grids stay tractable; relative orderings are
     *  what the frontier consumes). */
    unsigned numCores = 8;
    /** Sweep worker threads; 0 resolves via GPUMMU_JOBS. */
    unsigned jobs = 0;
    DseCostModel cost;
};

struct DseResult
{
    DseOptions opt;
    std::string gridSpec;
    /** Every grid point, sorted by key. */
    std::vector<DsePointResult> points;
    /** Indices into points, the exact Pareto set (area, cycles). */
    std::vector<std::size_t> frontier;
    /** Points actually simulated this run vs. reused from cache. */
    std::size_t simulated = 0;
    std::size_t reused = 0;
};

/**
 * Run the sweep: look every grid point up in @p cache (key ->
 * metrics, as loaded by loadDseCache), simulate only the misses on
 * the SweepRunner pool, score and extract the frontier.
 */
DseResult runDse(const DseGrid &grid, const DseOptions &opt,
                 const std::map<std::string, DsePointMetrics> &cache =
                     {});

/** Serialize a finished sweep as the schema-versioned JSON payload
 *  (one line per point, byte-stable). */
std::string emitDseJson(const DseResult &r);

/**
 * Parse a previously emitted payload into a resume cache. Points are
 * admitted purely by key — the hash embeds benchmark/params/knobs,
 * so entries from a different setup simply never match. Returns
 * false with @p err on malformed input (a corrupt cache must fail
 * loudly, not resume from garbage).
 */
bool loadDseCache(const std::string &json,
                  std::map<std::string, DsePointMetrics> &out,
                  std::string *err = nullptr);

/** Outcome of validating a DSE JSON payload. */
struct DseValidation
{
    std::vector<std::string> errors;
    bool ok() const { return errors.empty(); }
};

/**
 * Validate a payload against the schema: required keys well-typed,
 * schema_version in range, points non-empty with positive cycles and
 * finite positive areas, the frontier list non-empty, every frontier
 * key present among the points, and the per-point pareto flags
 * exactly consistent with the frontier list.
 */
DseValidation validateDseJson(const std::string &json);

} // namespace gpummu

#endif // DSE_AUTOTUNER_HH
