/**
 * @file
 * Area scoring for the design-space autotuner.
 *
 * Builds the second Pareto axis: a relative silicon-area estimate of
 * one design point's translation hardware, composed from the
 * CactiModel array primitives the paper sizes TLBs with. The unit is
 * the paper's baseline L1 structure — a 128-entry single-ported CAM
 * = 1.0 — and everything is per-GPU: per-core structures (L1 TLB,
 * PWC, walkers) multiply by the core count, the shared L2 TLB is
 * counted once. The absolute numbers are deliberately coarse (this
 * is a pathfinding model, as in the Kim/Cox/Kim/Bhattacharjee DSE
 * study), but the *ordering* between design points is what the
 * frontier consumes, and that is monotone in every knob.
 */

#ifndef DSE_COST_HH
#define DSE_COST_HH

#include "dse/grid.hh"
#include "mmu/cacti_model.hh"

namespace gpummu {

struct DseCostModel
{
    CactiModel cacti;

    /** Area of one walker state machine (registers + comparators). */
    double walkerArea = 0.25;
    /** Extra area of the batch-coalescing walk scheduler's queue. */
    double schedulerArea = 0.5;
    /** PTEs per page-walk-cache line (a 64B line of 8B PTEs). */
    std::size_t ptesPerPwcLine = 8;

    /** Translation-hardware area of one whole GPU design point. */
    double area(const DseKnobs &k, unsigned num_cores) const;
};

} // namespace gpummu

#endif // DSE_COST_HH
