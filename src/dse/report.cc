#include "dse/report.hh"

#include <fstream>

#include "telemetry/report.hh"

namespace gpummu {

namespace {

// Rendering lives in the page, the C++ side stays a dumb serializer:
// DATA is exactly the frontier JSON the sweep emits, so the report
// can be regenerated from any archived cache file.
constexpr const char *kScript = R"html(<script>
"use strict";
function fmt(n){return Number(n).toLocaleString("en-US");}
function el(tag,attrs,parent){
  var ns="http://www.w3.org/2000/svg";
  var svgTags={svg:1,polyline:1,line:1,rect:1,text:1,circle:1,title:1};
  var e=svgTags[tag]?document.createElementNS(ns,tag)
                    :document.createElement(tag);
  for(var k in attrs)e.setAttribute(k,attrs[k]);
  if(parent)parent.appendChild(e);
  return e;
}
// Perf-vs-area scatter: every point gray, frontier red and joined.
function scatter(parent,pts){
  var W=1040,H=420,L=80,B=40,T=14,R=16;
  var svg=el("svg",{width:W,height:H},parent);
  var xmax=Math.max.apply(null,pts.map(function(p){return p.area;}));
  var ymax=Math.max.apply(null,pts.map(function(p){return p.cycles;}));
  var ymin=Math.min.apply(null,pts.map(function(p){return p.cycles;}));
  var y0=Math.max(0,ymin-0.06*(ymax-ymin||ymax));
  function X(a){return L+(W-L-R)*(a/(xmax||1));}
  function Y(c){return (H-B)-(H-B-T)*((c-y0)/((ymax-y0)||1));}
  el("line",{x1:L,y1:H-B,x2:W-R,y2:H-B,"class":"axis"},svg);
  el("line",{x1:L,y1:T,x2:L,y2:H-B,"class":"axis"},svg);
  var front=pts.filter(function(p){return p.pareto;})
               .sort(function(a,b){return a.area-b.area||a.cycles-b.cycles;});
  el("polyline",{points:front.map(function(p){
      return X(p.area).toFixed(1)+","+Y(p.cycles).toFixed(1);
    }).join(" "),"class":"line","style":"stroke:#b04a4a"},svg);
  pts.forEach(function(p){
    var c=el("circle",{cx:X(p.area).toFixed(1),cy:Y(p.cycles).toFixed(1),
      r:p.pareto?4:2.5,
      fill:p.pareto?"#b04a4a":"#9aa7b5","fill-opacity":p.pareto?1:0.7},svg);
    el("title",{},c).textContent=
      p.config+"\ncycles "+fmt(p.cycles)+" · area "+p.area.toFixed(2);
  });
  el("text",{x:L-8,y:T+10,"text-anchor":"end","class":"lbl"},svg)
    .textContent=fmt(ymax);
  el("text",{x:L-8,y:H-B,"text-anchor":"end","class":"lbl"},svg)
    .textContent=fmt(Math.round(y0));
  el("text",{x:W-R,y:H-8,"text-anchor":"end","class":"lbl"},svg)
    .textContent=xmax.toFixed(1)+" area units";
  el("text",{x:L+6,y:T+10,"class":"lbl"},svg)
    .textContent="execution cycles";
}
var KNOBS=[["tlb_entries","L1 TLB entries"],["tlb_ways","L1 TLB ways"],
  ["tlb_ports","L1 TLB ports"],["pwc_lines","PWC lines"],
  ["l2tlb_entries","shared L2 TLB entries"],["l2tlb_ports","L2 TLB ports"],
  ["walkers","walkers"],["walk_sched","scheduled walks"],
  ["page_2m","2MB pages"]];
function render(){
  var d=DATA,pts=d.points;
  document.getElementById("meta").textContent=
    "benchmark "+d.bench+" · seed "+d.seed+" · scale "+d.scale+
    " · "+d.cores+" cores · "+pts.length+" design points · "+
    d.frontier.length+" on the frontier";
  scatter(document.getElementById("scatter"),pts);
  // Frontier table, cheapest area first.
  var ft=document.getElementById("frontier");
  pts.filter(function(p){return p.pareto;})
     .sort(function(a,b){return a.area-b.area||a.cycles-b.cycles;})
     .forEach(function(p){
    var tr=el("tr",{},ft);
    el("td",{"class":"k"},tr).textContent=p.config;
    el("td",{},tr).textContent=fmt(p.cycles);
    el("td",{},tr).textContent=p.area.toFixed(2);
    el("td",{},tr).textContent=
      (100*(1-p.tlb_hits/Math.max(1,p.tlb_accesses))).toFixed(1)+"%";
    el("td",{},tr).textContent=fmt(p.walk_refs_issued);
  });
  // Per-knob sensitivity: group by each knob value.
  var sens=document.getElementById("sens");
  KNOBS.forEach(function(kn){
    var key=kn[0],label=kn[1],groups={};
    pts.forEach(function(p){
      var v=String(p[key]);
      (groups[v]=groups[v]||[]).push(p);
    });
    var vals=Object.keys(groups);
    if(vals.length<2)return; // knob not swept, nothing to compare
    var h=el("h3",{},sens);h.textContent=label;
    var tbl=el("table",{},sens);
    var hd=el("tr",{},el("thead",{},tbl));
    ["value","points","best cycles","best area","on frontier"]
      .forEach(function(c,i){
        var th=el("th",i===0?{"class":"k"}:{},hd);th.textContent=c;});
    var tb=el("tbody",{},tbl);
    vals.sort(function(a,b){return (+a||0)-(+b||0)||(a<b?-1:1);})
        .forEach(function(v){
      var g=groups[v],tr=el("tr",{},tb);
      el("td",{"class":"k"},tr).textContent=v;
      el("td",{},tr).textContent=g.length;
      el("td",{},tr).textContent=
        fmt(Math.min.apply(null,g.map(function(p){return p.cycles;})));
      el("td",{},tr).textContent=
        Math.min.apply(null,g.map(function(p){return p.area;}))
          .toFixed(2);
      el("td",{},tr).textContent=
        g.filter(function(p){return p.pareto;}).length;
    });
  });
}
render();
</script></body></html>
)html";

} // namespace

bool
writeDseHtmlReport(std::ostream &os, const DseResult &r)
{
    os << htmlReportHead();
    os << "<h1>gpummu design-space report</h1>\n<div class=\"meta\" "
          "id=\"meta\"></div>\n";
    if (r.points.empty()) {
        os << "<p class=\"warn\">Empty sweep: no design points were "
              "evaluated.</p>\n</body></html>\n";
        return false;
    }
    os << "<h2>Perf vs. area</h2>\n<div id=\"scatter\"></div>\n"
          "<h2>Pareto frontier</h2>\n"
          "<table><thead><tr><th class=\"k\">config</th>"
          "<th>cycles</th><th>area</th><th>TLB miss rate</th>"
          "<th>walk refs</th></tr></thead>"
          "<tbody id=\"frontier\"></tbody></table>\n"
          "<h2>Per-knob sensitivity</h2>\n<div id=\"sens\"></div>\n";
    os << "<script>const DATA="
       << htmlScriptSafeJson(emitDseJson(r)) << ";</script>\n";
    os << kScript;
    return true;
}

bool
writeDseHtmlReportFile(const std::string &path, const DseResult &r)
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    const bool ok = writeDseHtmlReport(f, r);
    return f.good() && ok;
}

} // namespace gpummu
