/**
 * @file
 * Per-warp stall attribution.
 *
 * Every cycle a resident warp cannot issue is attributed to exactly
 * one cause, so "where did the time go" has a quantitative answer for
 * any run (the attribution Accel-Sim-style modeling work relies on):
 *
 *  - TlbMiss:          waiting on a TLB miss (its own walks, or the
 *                      blocking-TLB gate while the MMU drains);
 *  - WalkerStructural: bounced by the no-miss-under-miss policy and
 *                      parked until the walker pool drains;
 *  - L2Tlb:            the instruction's L1-TLB misses were all
 *                      resident in the shared L2 TLB, so the wait is
 *                      its short hit latency rather than a page walk;
 *  - Dram:             the instruction's slowest line went to DRAM;
 *  - L1Miss:           the slowest line missed the L1 but hit the L2
 *                      (or merged into an outstanding fill);
 *  - Interconnect:     only fixed pipe latency remained (interconnect
 *                      legs, TLB port serialization, CACTI penalties);
 *  - Reconvergence:    waiting at a block-wide reconvergence barrier
 *                      (thread block compaction cores only).
 *
 * Cycles a warp spends executing, covered by ALU latency, or absent
 * are not attributed, so per-warp attributed totals never exceed the
 * run's cycle count. The per-reason distributions over warps are
 * registered as the `<core>.stalls.*` histogram block in the
 * StatRegistry JSON dump (summary-only: count/sum/mean/min/max, where
 * sum is the reason's total stalled warp-cycles).
 */

#ifndef TRACE_STALL_ACCOUNTING_HH
#define TRACE_STALL_ACCOUNTING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

/**
 * Stall cause, ordered by attribution priority: when one memory
 * instruction has several causes (a TLB miss whose refill also went
 * to DRAM), the numerically largest one wins.
 */
enum class StallReason : std::uint8_t
{
    None = 0,         ///< not stalled / not attributable
    Reconvergence,    ///< block-wide barrier wait (TBC)
    Interconnect,     ///< fixed pipe latency only
    L1Miss,           ///< L1 miss served by the L2
    Dram,             ///< L2 miss served by DRAM
    L2Tlb,            ///< L1-TLB miss satisfied by the shared L2 TLB
    WalkerStructural, ///< bounced: walker pool busy (PTW full)
    TlbMiss,          ///< waiting on TLB-miss page walks
};
inline constexpr std::size_t kNumStallReasons = 8;

/** Stable stat-name suffix for a reason ("tlb_miss", "dram", ...). */
const char *stallReasonName(StallReason r);

/** a dominates b when its attribution priority is higher. */
inline StallReason
dominantStall(StallReason a, StallReason b)
{
    return static_cast<std::uint8_t>(a) >= static_cast<std::uint8_t>(b)
               ? a
               : b;
}

/**
 * Per-warp-slot stall cycle ledger for one core. attribute() is
 * called at most once per (warp, cycle); finalize() folds the ledger
 * into per-reason histograms (one sample per warp slot that stalled
 * for that reason) before the registry is dumped.
 */
class WarpStallAccounting
{
  public:
    WarpStallAccounting() = default;

    /** Charge one cycle of warp @p warp to @p reason. */
    void
    attribute(int warp, StallReason reason)
    {
        attribute(warp, reason, 1);
    }

    /**
     * Charge @p cycles cycles at once, used when the core
     * fast-forwards through a quiescent window in which the warp
     * would have received the same attribution every cycle.
     */
    void
    attribute(int warp, StallReason reason, std::uint64_t cycles)
    {
        if (reason == StallReason::None || warp < 0)
            return;
        const auto w = static_cast<std::size_t>(warp);
        if (w >= cells_.size())
            cells_.resize(w + 1);
        cells_[w][static_cast<std::size_t>(reason)] += cycles;
    }

    /** Total attributed cycles of one warp slot, all reasons. */
    std::uint64_t warpTotal(int warp) const;

    /** Total attributed warp-cycles for one reason, all warps. */
    std::uint64_t reasonTotal(StallReason reason) const;

    /** Warp slots the ledger has seen (attributed or not). */
    std::size_t numWarps() const { return cells_.size(); }

    /**
     * Fold the ledger into the registered histograms: for each
     * reason, one sample per warp slot with a nonzero total.
     * Idempotent; called by the top level before stats are dumped.
     */
    void finalize();

    /** Register "<prefix>.stalls.<reason>" histograms. */
    void regStats(StatRegistry &reg, const std::string &prefix);

  private:
    using Cell = std::array<std::uint64_t, kNumStallReasons>;
    std::vector<Cell> cells_;
    std::array<Histogram, kNumStallReasons> hists_;
    bool finalized_ = false;
};

} // namespace gpummu

#endif // TRACE_STALL_ACCOUNTING_HH
