#include "trace/memtrace.hh"

#include <charconv>
#include <sstream>

#include "gpu/kernel.hh"
#include "gpu/simt_stack.hh"
#include "sim/logging.hh"
#include "sim/parse_util.hh"
#include "sim/stats.hh"

namespace gpummu {

namespace {

constexpr const char *kMagic = "gpummu-memtrace";
constexpr int kVersion = 1;

/** Append @p v in hex (no 0x prefix) to @p out. */
void
appendHex(std::string &out, std::uint64_t v)
{
    char buf[17];
    auto res = std::to_chars(buf, buf + sizeof(buf), v, 16);
    out.append(buf, res.ptr);
}

void
appendDec(std::string &out, std::uint64_t v)
{
    char buf[21];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    out.append(buf, res.ptr);
}

bool
parseHex(std::string_view s, std::uint64_t &out)
{
    std::uint64_t v{};
    const char *end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), end, v, 16);
    if (ec != std::errc() || ptr != end)
        return false;
    out = v;
    return true;
}

/** "key=value" accessor for meta/end records. */
bool
keyValue(std::string_view tok, std::string_view key,
         std::string_view &value)
{
    if (tok.size() <= key.size() + 1 || tok[key.size()] != '=')
        return false;
    if (tok.substr(0, key.size()) != key)
        return false;
    value = tok.substr(key.size() + 1);
    return true;
}

} // namespace

MemTraceWriter::MemTraceWriter(const std::string &path) : path_(path)
{
}

void
MemTraceWriter::fail(const std::string &why)
{
    if (!ok_)
        return;
    ok_ = false;
    error_ = why;
}

bool
MemTraceWriter::beginRun(const MemTraceMeta &meta,
                         const std::vector<MemTraceRegion> &regions,
                         const KernelProgram &program)
{
    GPUMMU_ASSERT(!begun_, "MemTraceWriter armed on a second run");
    begun_ = true;
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (!out_) {
        fail("cannot open " + path_ + " for writing");
        return false;
    }
    out_ << kMagic << " " << kVersion << "\n";
    out_ << "meta bench=" << meta.bench << " config=" << config_
         << " cores=" << meta.numCores << " seed=" << meta.seed
         << " scale=" << jsonNum(meta.scale)
         << " tpb=" << meta.threadsPerBlock
         << " blocks=" << meta.numBlocks
         << " large=" << (meta.largePages ? 1 : 0) << "\n";
    for (const MemTraceRegion &r : regions) {
        GPUMMU_ASSERT(r.name.find_first_of(" \t\n") ==
                          std::string::npos,
                      "region names must not contain whitespace");
        out_ << "region " << r.name << " " << r.bytes << "\n";
    }
    out_ << "prog " << program.numBlocks() << " "
         << program.numAddrGens() << " " << program.numCondGens()
         << "\n";
    for (const BasicBlock &bb : program.blocks()) {
        for (const Instruction &in : bb.instrs) {
            out_ << "i " << bb.id << " ";
            switch (in.op) {
              case Opcode::Alu:
                out_ << "alu";
                break;
              case Opcode::Load:
                out_ << "ld " << in.addrGen;
                break;
              case Opcode::Store:
                out_ << "st " << in.addrGen;
                break;
              case Opcode::Branch:
                out_ << "br " << in.condGen << " " << in.takenBlock
                     << " " << in.fallBlock << " " << in.reconvBlock;
                break;
              case Opcode::Exit:
                out_ << "exit";
                break;
            }
            out_ << "\n";
        }
    }
    if (!out_) {
        fail("write error on " + path_);
        return false;
    }
    return true;
}

void
MemTraceWriter::recordAccess(Cycle now, int core, unsigned block,
                             int warp, bool store, std::uint64_t mask,
                             const std::vector<VirtAddr> &addrs)
{
    if (!ok_)
        return;
    GPUMMU_ASSERT(begun_ && !finished_);
    GPUMMU_ASSERT(now >= lastCycle_,
                  "access records must be cycle-ordered");
    lastCycle_ = now;
    // One preformatted line per record keeps the hot path to a
    // single streambuf write.
    std::string line = "A ";
    appendDec(line, now);
    line += ' ';
    appendDec(line, static_cast<std::uint64_t>(core));
    line += ' ';
    appendDec(line, block);
    line += ' ';
    appendDec(line, static_cast<std::uint64_t>(warp));
    line += store ? " S " : " L ";
    appendHex(line, mask);
    for (VirtAddr a : addrs) {
        line += ' ';
        appendHex(line, a);
    }
    line += '\n';
    out_ << line;
    ++accesses_;
    if (!out_)
        fail("write error on " + path_);
}

void
MemTraceWriter::recordBranch(unsigned block, int warp, int cond_gen,
                             std::uint64_t mask, std::uint64_t taken)
{
    if (!ok_)
        return;
    GPUMMU_ASSERT(begun_ && !finished_);
    std::string line = "B ";
    appendDec(line, block);
    line += ' ';
    appendDec(line, static_cast<std::uint64_t>(warp));
    line += ' ';
    appendDec(line, static_cast<std::uint64_t>(cond_gen));
    line += ' ';
    appendHex(line, mask);
    line += ' ';
    appendHex(line, taken);
    line += '\n';
    out_ << line;
    ++branches_;
    if (!out_)
        fail("write error on " + path_);
}

bool
MemTraceWriter::finish(Cycle cycles)
{
    if (finished_)
        return ok_;
    finished_ = true;
    if (!begun_) {
        fail("finish() without beginRun(): nothing was captured");
        return false;
    }
    if (!ok_)
        return false;
    out_ << "end accesses=" << accesses_ << " branches=" << branches_
         << " cycles=" << cycles << "\n";
    out_.close();
    if (!out_)
        fail("write error on " + path_);
    return ok_;
}

namespace {

/** Loader state shared by the per-record parsers. */
struct LoadCtx
{
    MemTraceData *out;
    std::string *err;
    std::uint64_t lineNo = 0;
    bool sawMeta = false;
    bool sawProg = false;
    bool sawEnd = false;
    Cycle lastCycle = 0;

    bool
    fail(const std::string &why)
    {
        *err = "memtrace line " + std::to_string(lineNo) + ": " + why;
        return false;
    }
};

bool
parseMeta(LoadCtx &ctx, const std::vector<std::string> &tok)
{
    if (ctx.sawMeta)
        return ctx.fail("duplicate meta record");
    MemTraceMeta &m = ctx.out->meta;
    bool have_bench = false, have_tpb = false, have_blocks = false;
    bool have_cores = false;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        std::string_view v;
        if (keyValue(tok[i], "bench", v)) {
            m.bench = std::string(v);
            have_bench = true;
        } else if (keyValue(tok[i], "config", v)) {
            m.config = std::string(v);
        } else if (keyValue(tok[i], "cores", v)) {
            if (!parseNum(v, m.numCores) || m.numCores == 0)
                return ctx.fail("bad cores");
            have_cores = true;
        } else if (keyValue(tok[i], "seed", v)) {
            if (!parseNum(v, m.seed))
                return ctx.fail("bad seed");
        } else if (keyValue(tok[i], "scale", v)) {
            if (!parseDouble(v, m.scale))
                return ctx.fail("bad scale");
        } else if (keyValue(tok[i], "tpb", v)) {
            if (!parseNum(v, m.threadsPerBlock) ||
                m.threadsPerBlock == 0 ||
                m.threadsPerBlock % kWarpWidth != 0) {
                return ctx.fail("bad tpb (want a warp multiple)");
            }
            have_tpb = true;
        } else if (keyValue(tok[i], "blocks", v)) {
            if (!parseNum(v, m.numBlocks) || m.numBlocks == 0)
                return ctx.fail("bad blocks");
            have_blocks = true;
        } else if (keyValue(tok[i], "large", v)) {
            unsigned l = 0;
            if (!parseNum(v, l) || l > 1)
                return ctx.fail("bad large flag");
            m.largePages = l == 1;
        } else {
            return ctx.fail("unknown meta key: " +
                            std::string(tok[i]));
        }
    }
    if (!have_bench || !have_tpb || !have_blocks || !have_cores)
        return ctx.fail("meta record missing bench/cores/tpb/blocks");
    ctx.sawMeta = true;
    return true;
}

bool
parseInstr(LoadCtx &ctx, const std::vector<std::string> &tok)
{
    MemTraceData &d = *ctx.out;
    if (!ctx.sawProg)
        return ctx.fail("i record before prog");
    if (tok.size() < 3)
        return ctx.fail("short i record");
    unsigned block = 0;
    if (!parseNum<unsigned>(tok[1], block) ||
        block >= d.blocks.size()) {
        return ctx.fail("instruction block id out of range");
    }
    MemTraceInstr in;
    const std::string &kind = tok[2];
    auto gen_arg = [&](unsigned max, const char *what) {
        if (tok.size() != 4 || !parseNum(tok[3], in.gen) ||
            in.gen < 0 || in.gen >= static_cast<int>(max)) {
            return ctx.fail(std::string("bad ") + what +
                            " generator id");
        }
        return true;
    };
    if (kind == "alu") {
        in.kind = MemTraceInstr::Kind::Alu;
    } else if (kind == "ld") {
        in.kind = MemTraceInstr::Kind::Load;
        if (!gen_arg(d.numAddrGens, "load"))
            return false;
    } else if (kind == "st") {
        in.kind = MemTraceInstr::Kind::Store;
        if (!gen_arg(d.numAddrGens, "store"))
            return false;
    } else if (kind == "br") {
        in.kind = MemTraceInstr::Kind::Branch;
        if (tok.size() != 7)
            return ctx.fail("short br record");
        const int nblocks = static_cast<int>(d.blocks.size());
        if (!parseNum(tok[3], in.gen) || in.gen < -1 ||
            in.gen >= static_cast<int>(d.numCondGens)) {
            return ctx.fail("bad branch condition id");
        }
        if (!parseNum(tok[4], in.taken) ||
            !parseNum(tok[5], in.fall) ||
            !parseNum(tok[6], in.reconv) || in.taken < -1 ||
            in.taken >= nblocks || in.fall < -1 ||
            in.fall >= nblocks || in.reconv < -1 ||
            in.reconv >= nblocks) {
            return ctx.fail("branch target out of range");
        }
    } else if (kind == "exit") {
        in.kind = MemTraceInstr::Kind::Exit;
    } else {
        return ctx.fail("unknown opcode: " + kind);
    }
    d.blocks[block].push_back(in);
    return true;
}

bool
parseWarpId(LoadCtx &ctx, const std::string &block_tok,
            const std::string &warp_tok, unsigned &block, int &warp)
{
    const MemTraceMeta &m = ctx.out->meta;
    if (!parseNum(block_tok, block) || block >= m.numBlocks)
        return ctx.fail("block id out of range");
    const int warps = static_cast<int>(m.threadsPerBlock /
                                       kWarpWidth);
    if (!parseNum(warp_tok, warp) || warp < 0 || warp >= warps)
        return ctx.fail("warp id out of range");
    return true;
}

bool
parseAccess(LoadCtx &ctx, const std::vector<std::string> &tok)
{
    if (!ctx.sawMeta || !ctx.sawProg)
        return ctx.fail("A record before meta/prog");
    if (tok.size() < 7)
        return ctx.fail("short A record");
    MemTraceAccess a;
    if (!parseNum(tok[1], a.cycle))
        return ctx.fail("bad cycle");
    if (a.cycle < ctx.lastCycle) {
        return ctx.fail("out-of-order access cycle (" +
                        std::to_string(a.cycle) + " after " +
                        std::to_string(ctx.lastCycle) + ")");
    }
    ctx.lastCycle = a.cycle;
    if (!parseNum(tok[2], a.core) || a.core < 0)
        return ctx.fail("bad core id");
    unsigned block = 0;
    int warp = 0;
    if (!parseWarpId(ctx, tok[3], tok[4], block, warp))
        return false;
    a.block = block;
    a.warp = warp;
    if (tok[5] == "S")
        a.store = true;
    else if (tok[5] == "L")
        a.store = false;
    else
        return ctx.fail("bad access kind (want L or S)");
    if (!parseHex(tok[6], a.mask) || a.mask == 0)
        return ctx.fail("bad lane mask");
    if (kWarpWidth < 64 && (a.mask >> kWarpWidth) != 0)
        return ctx.fail("lane mask exceeds the warp width");
    const std::size_t lanes =
        static_cast<std::size_t>(popcount64(a.mask));
    if (tok.size() != 7 + lanes) {
        return ctx.fail("address count does not match the lane "
                        "mask");
    }
    a.addrs.reserve(lanes);
    for (std::size_t i = 0; i < lanes; ++i) {
        VirtAddr addr = 0;
        if (!parseHex(tok[7 + i], addr))
            return ctx.fail("bad address");
        a.addrs.push_back(addr);
    }
    ctx.out->accesses.push_back(std::move(a));
    return true;
}

bool
parseBranch(LoadCtx &ctx, const std::vector<std::string> &tok)
{
    if (!ctx.sawMeta || !ctx.sawProg)
        return ctx.fail("B record before meta/prog");
    if (tok.size() != 6)
        return ctx.fail("short B record");
    MemTraceBranch b;
    unsigned block = 0;
    int warp = 0;
    if (!parseWarpId(ctx, tok[1], tok[2], block, warp))
        return false;
    b.block = block;
    b.warp = warp;
    if (!parseNum(tok[3], b.condGen) || b.condGen < 0 ||
        b.condGen >= static_cast<int>(ctx.out->numCondGens)) {
        return ctx.fail("bad branch condition id");
    }
    if (!parseHex(tok[4], b.mask) || b.mask == 0)
        return ctx.fail("bad lane mask");
    if (!parseHex(tok[5], b.taken))
        return ctx.fail("bad taken mask");
    if ((b.taken & ~b.mask) != 0)
        return ctx.fail("taken mask is not a subset of the lane "
                        "mask");
    ctx.out->branches.push_back(b);
    return true;
}

bool
parseEnd(LoadCtx &ctx, const std::vector<std::string> &tok)
{
    std::uint64_t accesses = 0, branches = 0;
    bool have_a = false, have_b = false, have_c = false;
    for (std::size_t i = 1; i < tok.size(); ++i) {
        std::string_view v;
        if (keyValue(tok[i], "accesses", v)) {
            have_a = parseNum(v, accesses);
        } else if (keyValue(tok[i], "branches", v)) {
            have_b = parseNum(v, branches);
        } else if (keyValue(tok[i], "cycles", v)) {
            have_c = parseNum(v, ctx.out->cycles);
        }
    }
    if (!have_a || !have_b || !have_c)
        return ctx.fail("malformed end record");
    if (accesses != ctx.out->accesses.size() ||
        branches != ctx.out->branches.size()) {
        return ctx.fail(
            "end counts do not match the records read (truncated "
            "or corrupted trace)");
    }
    ctx.sawEnd = true;
    return true;
}

} // namespace

bool
loadMemTrace(std::istream &in, MemTraceData &out, std::string &err)
{
    out = MemTraceData{};
    LoadCtx ctx{&out, &err};

    std::string line;
    if (!std::getline(in, line))
        return ctx.fail("empty input");
    ++ctx.lineNo;
    {
        std::istringstream hs(line);
        std::string magic;
        int version = -1;
        hs >> magic >> version;
        if (magic != kMagic)
            return ctx.fail("not a gpummu-memtrace file");
        if (version != kVersion) {
            return ctx.fail("unsupported memtrace version " +
                            std::to_string(version) +
                            " (supported: " +
                            std::to_string(kVersion) + ")");
        }
    }

    std::vector<std::string> tok;
    while (std::getline(in, line)) {
        ++ctx.lineNo;
        if (ctx.sawEnd && !line.empty())
            return ctx.fail("trailing data after end record");
        tok.clear();
        std::istringstream ls(line);
        std::string t;
        while (ls >> t)
            tok.push_back(t);
        if (tok.empty())
            continue;

        const std::string &kind = tok[0];
        if (kind == "meta") {
            if (!parseMeta(ctx, tok))
                return false;
        } else if (kind == "region") {
            if (tok.size() != 3)
                return ctx.fail("short region record");
            MemTraceRegion r;
            r.name = tok[1];
            if (!parseNum(tok[2], r.bytes) || r.bytes == 0)
                return ctx.fail("bad region size");
            out.regions.push_back(std::move(r));
        } else if (kind == "prog") {
            if (ctx.sawProg)
                return ctx.fail("duplicate prog record");
            if (!ctx.sawMeta)
                return ctx.fail("prog record before meta");
            unsigned nblocks = 0;
            if (tok.size() != 4 ||
                !parseNum(tok[1], nblocks) || nblocks == 0 ||
                !parseNum(tok[2], out.numAddrGens) ||
                !parseNum(tok[3], out.numCondGens)) {
                return ctx.fail("malformed prog record");
            }
            out.blocks.assign(nblocks, {});
            ctx.sawProg = true;
        } else if (kind == "i") {
            if (!parseInstr(ctx, tok))
                return false;
        } else if (kind == "A") {
            if (!parseAccess(ctx, tok))
                return false;
        } else if (kind == "B") {
            if (!parseBranch(ctx, tok))
                return false;
        } else if (kind == "end") {
            if (!ctx.sawMeta || !ctx.sawProg)
                return ctx.fail("end record before meta/prog");
            if (!parseEnd(ctx, tok))
                return false;
        } else {
            return ctx.fail("unknown record type: " + kind);
        }
    }
    if (!ctx.sawMeta)
        return ctx.fail("missing meta record");
    if (!ctx.sawProg)
        return ctx.fail("missing prog record");
    if (!ctx.sawEnd) {
        return ctx.fail(
            "truncated trace: no end record (capture was "
            "interrupted?)");
    }
    return true;
}

bool
loadMemTraceFile(const std::string &path, MemTraceData &out,
                 std::string &err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        err = "cannot open memtrace file: " + path;
        return false;
    }
    return loadMemTrace(in, out, err);
}

} // namespace gpummu
