#include "trace/stall_accounting.hh"

#include "sim/logging.hh"

namespace gpummu {

const char *
stallReasonName(StallReason r)
{
    switch (r) {
      case StallReason::None:
        return "none";
      case StallReason::Reconvergence:
        return "reconvergence";
      case StallReason::Interconnect:
        return "interconnect";
      case StallReason::L1Miss:
        return "l1_miss";
      case StallReason::Dram:
        return "dram";
      case StallReason::L2Tlb:
        return "l2tlb";
      case StallReason::WalkerStructural:
        return "walker_structural";
      case StallReason::TlbMiss:
        return "tlb_miss";
    }
    GPUMMU_PANIC("unknown stall reason");
}

std::uint64_t
WarpStallAccounting::warpTotal(int warp) const
{
    if (warp < 0 || static_cast<std::size_t>(warp) >= cells_.size())
        return 0;
    std::uint64_t total = 0;
    for (std::uint64_t c : cells_[static_cast<std::size_t>(warp)])
        total += c;
    return total;
}

std::uint64_t
WarpStallAccounting::reasonTotal(StallReason reason) const
{
    const auto r = static_cast<std::size_t>(reason);
    std::uint64_t total = 0;
    for (const Cell &cell : cells_)
        total += cell[r];
    return total;
}

void
WarpStallAccounting::finalize()
{
    if (finalized_)
        return;
    finalized_ = true;
    for (std::size_t r = 1; r < kNumStallReasons; ++r) {
        for (const Cell &cell : cells_) {
            if (cell[r] != 0)
                hists_[r].sample(cell[r]);
        }
    }
}

void
WarpStallAccounting::regStats(StatRegistry &reg,
                              const std::string &prefix)
{
    for (std::size_t r = 1; r < kNumStallReasons; ++r) {
        reg.addHistogram(prefix + ".stalls." +
                             stallReasonName(static_cast<StallReason>(r)),
                         &hists_[r]);
    }
}

} // namespace gpummu
