/**
 * @file
 * Low-overhead cycle-level event tracing.
 *
 * A TraceSink is a per-run ring buffer of typed trace events recorded
 * by the components a run is built from: TLB lookups/fills/evictions,
 * the full page-walk lifecycle (enqueue, walker grant, per-level
 * reference, retire, walker occupancy), coalescer splits, L1/L2
 * hits/misses and DRAM channel busy spans. The buffer exports Chrome
 * trace-event JSON (load the file in chrome://tracing or Perfetto).
 *
 * Tracing is strictly observation-only. Components hold a
 * `TraceSink *` that defaults to nullptr; every hook is guarded by
 * that one pointer test, so a disabled run costs a predictable
 * never-taken branch and armed/unarmed runs are bit-identical (the
 * determinism and golden tests enforce this).
 *
 * The sink is single-threaded by design, like the simulator itself:
 * one TraceSink belongs to exactly one run. Parallel sweeps that want
 * traces run one traced point after the sweep.
 */

#ifndef TRACE_TRACE_HH
#define TRACE_TRACE_HH

#include <array>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace gpummu {

class EventQueue;

/** Component category of a trace event; also the filter unit. */
enum class TraceCat : std::uint8_t
{
    Tlb,       ///< per-core TLB lookups, fills, evictions
    Ptw,       ///< page-walk lifecycle and walker occupancy
    Coalescer, ///< per-instruction line/page split counts
    L1,        ///< per-core L1 hits and misses
    L2,        ///< shared L2 slice hits and misses
    Dram,      ///< DRAM channel busy spans
    Core,      ///< shader-core level events
    L2Tlb,     ///< shared L2 TLB lookups, fills, MSHR lifecycle
};
inline constexpr std::size_t kNumTraceCats = 8;

/** Stable lower-case name of a category ("tlb", "ptw", ...). */
const char *traceCatName(TraceCat cat);

/** True when @p prefix selects at least one category (the same
 *  prefix matching setFilter uses). Empty matches everything. */
bool traceFilterMatchesAny(const std::string &prefix);

/** Comma-separated list of every category name, for CLI errors. */
std::string traceCatNames();

/**
 * Ring-buffered event sink. Fixed capacity; once full, the oldest
 * events are overwritten (a drop counter reports how many), so a
 * trace always holds the *last* N events of the run.
 */
class TraceSink
{
  public:
    /** One recorded event. Names must be string literals (the sink
     *  stores the pointers, not copies). */
    struct Event
    {
        Cycle ts = 0;
        Cycle dur = 0; ///< 0 for instants and counters
        std::uint64_t value = 0;
        const char *name = nullptr;
        const char *key0 = nullptr; ///< optional arg name, or null
        const char *key1 = nullptr;
        std::uint64_t arg0 = 0;
        std::uint64_t arg1 = 0;
        std::int32_t tid = 0;
        TraceCat cat = TraceCat::Core;
        /** 'i' instant, 'X' span, 'C' counter; flow arrows use
         *  's' start, 't' step, 'f' end (value carries the flow
         *  id binding the three together). */
        char phase = 'i';
    };

    explicit TraceSink(std::size_t capacity = 1u << 20);

    /**
     * Bind the simulation clock used for instants recorded without an
     * explicit cycle. GpuTop binds its own event queue when a sink is
     * attached to a run.
     */
    void bindClock(const EventQueue *eq) { clock_ = eq; }

    /**
     * Restrict recording to categories whose name starts with
     * @p prefix (e.g. "tlb", "ptw", "l"). Empty keeps everything.
     */
    void setFilter(const std::string &prefix);

    bool wants(TraceCat cat) const
    {
        return catMask_ & (1u << static_cast<unsigned>(cat));
    }

    /** A point event at the bound clock's current cycle. */
    void instant(TraceCat cat, const char *name, int tid,
                 const char *key0 = nullptr, std::uint64_t arg0 = 0,
                 const char *key1 = nullptr, std::uint64_t arg1 = 0);

    /** A point event at an explicit cycle. */
    void instantAt(TraceCat cat, const char *name, int tid, Cycle ts,
                   const char *key0 = nullptr, std::uint64_t arg0 = 0,
                   const char *key1 = nullptr, std::uint64_t arg1 = 0);

    /** A completed span [start, start+dur). */
    void span(TraceCat cat, const char *name, int tid, Cycle start,
              Cycle dur, const char *key0 = nullptr,
              std::uint64_t arg0 = 0, const char *key1 = nullptr,
              std::uint64_t arg1 = 0);

    /** A counter track sample (e.g. walker occupancy). */
    void counter(TraceCat cat, const char *name, int tid,
                 std::uint64_t value);

    /**
     * A flow event: @p phase is 's' (start), 't' (step) or 'f'
     * (end); events sharing (@p cat, @p name, @p id) render as one
     * arrow chain in chrome://tracing. The SpanTracker emits one
     * flow per translation span so its lifecycle draws across the
     * component tracks.
     */
    void flow(char phase, TraceCat cat, const char *name, int tid,
              Cycle ts, std::uint64_t id);

    /** Events currently resident in the ring. */
    std::size_t size() const;
    /** Events overwritten because the ring was full. */
    std::uint64_t dropped() const { return dropped_.value(); }
    /** Events recorded (post-filter) for one category. */
    std::uint64_t
    recorded(TraceCat cat) const
    {
        return catEvents_[static_cast<std::size_t>(cat)].value();
    }
    std::size_t capacity() const { return capacity_; }

    /**
     * Register the sink's own health stats - "<prefix>.dropped" and
     * "<prefix>.events.<cat>" - so a truncated trace is detectable
     * from the run's stat dump without parsing the exported JSON.
     * Armed runs call this with the run's registry; the counts are
     * observation-layer stats and never feed back into simulation.
     */
    void regStats(StatRegistry &reg, const std::string &prefix);

    /**
     * Export as Chrome trace-event JSON:
     * {"traceEvents":[...],"displayTimeUnit":"ns"}. Timestamps are
     * simulated cycles. Events are grouped per category (pid) and
     * per component instance (tid), with metadata naming both.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace to @p path; false on I/O failure. */
    bool writeChromeTraceFile(const std::string &path) const;

  private:
    /**
     * Slab-pooled ring storage (the sim/arena.hh idea applied to
     * trace events): events live in fixed-size slabs that never move
     * once allocated, so growing to a million-event ring costs one
     * slab allocation every 4096 events instead of geometric
     * reallocation + copy of everything recorded so far.
     */
    static constexpr std::size_t kSlabShift = 12;
    static constexpr std::size_t kSlabSize = std::size_t(1)
                                             << kSlabShift;

    void push(const Event &ev);
    Cycle nowFromClock() const;

    Event &
    slot(std::size_t i)
    {
        return slabs_[i >> kSlabShift][i & (kSlabSize - 1)];
    }
    const Event &
    slot(std::size_t i) const
    {
        return slabs_[i >> kSlabShift][i & (kSlabSize - 1)];
    }

    std::size_t capacity_;
    std::vector<std::unique_ptr<Event[]>> slabs_;
    std::size_t size_ = 0; ///< events resident in the ring
    std::size_t next_ = 0; ///< ring write cursor once wrapped
    bool wrapped_ = false;
    Counter dropped_;
    std::array<Counter, kNumTraceCats> catEvents_;
    std::uint32_t catMask_;
    const EventQueue *clock_ = nullptr;
};

} // namespace gpummu

#endif // TRACE_TRACE_HH
