#include "trace/trace.hh"

#include <fstream>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/stats.hh"

namespace gpummu {

const char *
traceCatName(TraceCat cat)
{
    switch (cat) {
      case TraceCat::Tlb:
        return "tlb";
      case TraceCat::Ptw:
        return "ptw";
      case TraceCat::Coalescer:
        return "coalescer";
      case TraceCat::L1:
        return "l1";
      case TraceCat::L2:
        return "l2";
      case TraceCat::Dram:
        return "dram";
      case TraceCat::Core:
        return "core";
      case TraceCat::L2Tlb:
        return "l2tlb";
    }
    GPUMMU_PANIC("unknown trace category");
}

bool
traceFilterMatchesAny(const std::string &prefix)
{
    if (prefix.empty())
        return true;
    for (std::size_t c = 0; c < kNumTraceCats; ++c) {
        const std::string name =
            traceCatName(static_cast<TraceCat>(c));
        if (name.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

std::string
traceCatNames()
{
    std::string out;
    for (std::size_t c = 0; c < kNumTraceCats; ++c) {
        if (!out.empty())
            out += ", ";
        out += traceCatName(static_cast<TraceCat>(c));
    }
    return out;
}

TraceSink::TraceSink(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity),
      catMask_((1u << kNumTraceCats) - 1)
{
}

void
TraceSink::setFilter(const std::string &prefix)
{
    if (prefix.empty()) {
        catMask_ = (1u << kNumTraceCats) - 1;
        return;
    }
    catMask_ = 0;
    for (std::size_t c = 0; c < kNumTraceCats; ++c) {
        const std::string name =
            traceCatName(static_cast<TraceCat>(c));
        if (name.rfind(prefix, 0) == 0)
            catMask_ |= 1u << c;
    }
}

Cycle
TraceSink::nowFromClock() const
{
    return clock_ != nullptr ? clock_->now() : 0;
}

void
TraceSink::push(const Event &ev)
{
    if (!wants(ev.cat))
        return;
    catEvents_[static_cast<std::size_t>(ev.cat)].inc();
    if (size_ < capacity_) {
        if (size_ == slabs_.size() * kSlabSize)
            slabs_.push_back(std::make_unique<Event[]>(kSlabSize));
        slot(size_++) = ev;
        return;
    }
    // Full: overwrite the oldest event (the ring keeps the tail of
    // the run, which is usually what a stall investigation wants).
    slot(next_) = ev;
    next_ = (next_ + 1) % capacity_;
    wrapped_ = true;
    dropped_.inc();
}

void
TraceSink::regStats(StatRegistry &reg, const std::string &prefix)
{
    reg.addCounter(prefix + ".dropped", &dropped_);
    for (std::size_t c = 0; c < kNumTraceCats; ++c) {
        reg.addCounter(prefix + ".events." +
                           traceCatName(static_cast<TraceCat>(c)),
                       &catEvents_[c]);
    }
}

void
TraceSink::instant(TraceCat cat, const char *name, int tid,
                   const char *key0, std::uint64_t arg0,
                   const char *key1, std::uint64_t arg1)
{
    instantAt(cat, name, tid, nowFromClock(), key0, arg0, key1, arg1);
}

void
TraceSink::instantAt(TraceCat cat, const char *name, int tid, Cycle ts,
                     const char *key0, std::uint64_t arg0,
                     const char *key1, std::uint64_t arg1)
{
    Event ev;
    ev.ts = ts;
    ev.cat = cat;
    ev.name = name;
    ev.tid = tid;
    ev.key0 = key0;
    ev.arg0 = arg0;
    ev.key1 = key1;
    ev.arg1 = arg1;
    ev.phase = 'i';
    push(ev);
}

void
TraceSink::span(TraceCat cat, const char *name, int tid, Cycle start,
                Cycle dur, const char *key0, std::uint64_t arg0,
                const char *key1, std::uint64_t arg1)
{
    Event ev;
    ev.ts = start;
    ev.dur = dur;
    ev.cat = cat;
    ev.name = name;
    ev.tid = tid;
    ev.key0 = key0;
    ev.arg0 = arg0;
    ev.key1 = key1;
    ev.arg1 = arg1;
    ev.phase = 'X';
    push(ev);
}

void
TraceSink::counter(TraceCat cat, const char *name, int tid,
                   std::uint64_t value)
{
    Event ev;
    ev.ts = nowFromClock();
    ev.cat = cat;
    ev.name = name;
    ev.tid = tid;
    ev.value = value;
    ev.phase = 'C';
    push(ev);
}

void
TraceSink::flow(char phase, TraceCat cat, const char *name, int tid,
                Cycle ts, std::uint64_t id)
{
    Event ev;
    ev.ts = ts;
    ev.cat = cat;
    ev.name = name;
    ev.tid = tid;
    ev.value = id;
    ev.phase = phase;
    push(ev);
}

std::size_t
TraceSink::size() const
{
    return size_;
}

void
TraceSink::writeChromeTrace(std::ostream &os) const
{
    os << "{\"traceEvents\":[";
    bool first = true;
    auto emit_meta = [&](std::size_t pid) {
        os << (first ? "" : ",") << "{\"name\":\"process_name\","
           << "\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0,"
           << "\"args\":{\"name\":\""
           << traceCatName(static_cast<TraceCat>(pid)) << "\"}}";
        first = false;
    };
    std::uint32_t seen = 0;
    auto emit = [&](const Event &ev) {
        const auto pid = static_cast<std::size_t>(ev.cat);
        if (!(seen & (1u << pid))) {
            seen |= 1u << pid;
            emit_meta(pid);
        }
        os << (first ? "" : ",") << "{\"name\":\""
           << jsonEscape(ev.name) << "\",\"cat\":\""
           << traceCatName(ev.cat) << "\",\"ph\":\"" << ev.phase
           << "\",\"pid\":" << pid << ",\"tid\":" << ev.tid
           << ",\"ts\":" << ev.ts;
        if (ev.phase == 'X')
            os << ",\"dur\":" << ev.dur;
        if (ev.phase == 'i')
            os << ",\"s\":\"t\"";
        if (ev.phase == 's' || ev.phase == 't' || ev.phase == 'f') {
            os << ",\"id\":" << ev.value;
            // Binding point "enclosing" makes the arrow terminate at
            // the event under the cursor instead of the next slice.
            if (ev.phase == 'f')
                os << ",\"bp\":\"e\"";
        }
        if (ev.phase == 'C') {
            os << ",\"args\":{\"value\":" << ev.value << "}";
        } else if (ev.key0 != nullptr) {
            os << ",\"args\":{\"" << jsonEscape(ev.key0)
               << "\":" << ev.arg0;
            if (ev.key1 != nullptr)
                os << ",\"" << jsonEscape(ev.key1) << "\":" << ev.arg1;
            os << "}";
        }
        os << "}";
        first = false;
    };
    // Chronological order: the oldest surviving event first.
    if (wrapped_) {
        for (std::size_t i = next_; i < size_; ++i)
            emit(slot(i));
        for (std::size_t i = 0; i < next_; ++i)
            emit(slot(i));
    } else {
        for (std::size_t i = 0; i < size_; ++i)
            emit(slot(i));
    }
    os << "],\"displayTimeUnit\":\"ns\",\"otherData\":{"
       << "\"dropped_events\":" << dropped_.value() << "}}";
}

bool
TraceSink::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f)
        return false;
    writeChromeTrace(f);
    return f.good();
}

} // namespace gpummu
