/**
 * @file
 * Versioned, replayable memory-trace format (Accel-Sim style).
 *
 * A memtrace captures everything a workload feeds the timing stack:
 * the launch geometry, the mapped region layout, the kernel program's
 * control-flow skeleton (blocks, opcodes, branch targets — NOT the
 * address/condition closures), and the cycle-ordered per-warp records
 * of every generated memory access and every conditional branch
 * outcome. That is sufficient to re-drive the TLB / PTW / L2-TLB /
 * IOMMU stack *bit-identically*: control flow and address streams are
 * pure per-thread functions of the program, so distributing the
 * recorded lane values back into per-thread FIFOs (workloads/replay)
 * reproduces the source run exactly — and, because the per-thread
 * streams are schedule-independent, a captured trace also replays
 * under *different* design points (core counts, TLB geometries, the
 * IOMMU) as a portable workload.
 *
 * Capture rides the observation-only hook pattern (TraceSink,
 * Telemetry): a MemTraceWriter armed on a run's GpuTop records at the
 * address-generation and branch-resolution points without touching
 * any simulated state, so an armed run is bit-identical to an
 * unarmed one. The writer streams records to disk as they happen;
 * footprint is O(1) in trace length.
 *
 * On-disk format: line-delimited text, one record per line.
 *
 *   gpummu-memtrace 1
 *   meta bench=<name> config=<name> cores=<n> seed=<n> scale=<f>
 *        tpb=<n> blocks=<n> large=<0|1>
 *   region <name> <bytes>                      (in mmap order)
 *   prog <numBlocks> <numAddrGens> <numCondGens>
 *   i <block> alu | ld <gen> | st <gen>
 *             | br <cond> <taken> <fall> <reconv> | exit
 *   A <cycle> <core> <block> <warp> L|S <maskHex> <addrHex>...
 *   B <block> <warp> <condGen> <maskHex> <takenHex>
 *   end accesses=<n> branches=<n> cycles=<n>
 *
 * `A` records carry one address per set mask bit, in ascending lane
 * order; `B` records only conditional branches (condGen >= 0 —
 * unconditional branches are part of the skeleton). Access cycles
 * are nondecreasing; the loader rejects out-of-order cycles, unknown
 * versions and truncated files (a missing/mismatching `end` record)
 * with a clear error, never UB.
 */

#ifndef TRACE_MEMTRACE_HH
#define TRACE_MEMTRACE_HH

#include <cstdint>
#include <fstream>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace gpummu {

class KernelProgram;

/** Run identity recorded in (and recovered from) a trace. */
struct MemTraceMeta
{
    std::string bench;
    std::string config;
    /** Core count of the source run — part of run identity (the
     *  config name alone does not pin --cores overrides); replay uses
     *  it as the default topology. */
    unsigned numCores = 0;
    std::uint64_t seed = 0;
    double scale = 0.0;
    unsigned threadsPerBlock = 0;
    unsigned numBlocks = 0;
    bool largePages = false;
};

/** One mapped region, in the source run's mmap order. */
struct MemTraceRegion
{
    std::string name;
    std::uint64_t bytes = 0;
};

/** One instruction of the serialized program skeleton. */
struct MemTraceInstr
{
    enum class Kind
    {
        Alu,
        Load,
        Store,
        Branch,
        Exit,
    };
    Kind kind = Kind::Alu;
    /** Load/Store: address-generator id. Branch: condition id
     *  (-1 = unconditional). */
    int gen = -1;
    int taken = -1;
    int fall = -1;
    int reconv = -1;
};

/** One generated warp memory access (one dynamic instruction). */
struct MemTraceAccess
{
    Cycle cycle = 0;
    int core = 0;
    unsigned block = 0; ///< global thread-block id
    int warp = 0;       ///< static warp within the block
    bool store = false;
    std::uint64_t mask = 0; ///< active lanes
    std::vector<VirtAddr> addrs; ///< one per set bit, lane order
};

/** One resolved conditional branch of a warp. */
struct MemTraceBranch
{
    unsigned block = 0;
    int warp = 0;
    int condGen = -1;
    std::uint64_t mask = 0;
    std::uint64_t taken = 0; ///< subset of mask
};

/** A fully loaded trace. */
struct MemTraceData
{
    MemTraceMeta meta;
    std::vector<MemTraceRegion> regions;
    unsigned numAddrGens = 0;
    unsigned numCondGens = 0;
    /** Instruction lists per basic block, block id = index. */
    std::vector<std::vector<MemTraceInstr>> blocks;
    std::vector<MemTraceAccess> accesses;
    std::vector<MemTraceBranch> branches;
    Cycle cycles = 0; ///< total cycles of the source run
};

/**
 * Streaming trace writer; the observation-only capture sink.
 *
 * Lifecycle: construct with the output path, setConfigName(), then
 * GpuTop::setMemTrace() arms it on every core and calls beginRun()
 * (header, meta, regions, program skeleton); the cores append A/B
 * records during the run; finish() writes the end record and closes.
 * Any I/O failure latches into ok()/error() — recording never throws
 * and never touches simulated state.
 */
class MemTraceWriter
{
  public:
    explicit MemTraceWriter(const std::string &path);

    MemTraceWriter(const MemTraceWriter &) = delete;
    MemTraceWriter &operator=(const MemTraceWriter &) = delete;

    /** Config label for the meta record; call before beginRun. */
    void setConfigName(const std::string &name) { config_ = name; }

    /**
     * Write the trace prologue. @p meta needs everything but config
     * (merged from setConfigName). Called by GpuTop::setMemTrace.
     */
    bool beginRun(const MemTraceMeta &meta,
                  const std::vector<MemTraceRegion> &regions,
                  const KernelProgram &program);

    /** Record one generated warp access (lane addresses in ascending
     *  lane order). Called at address-generation time, once per
     *  dynamic memory instruction. */
    void recordAccess(Cycle now, int core, unsigned block, int warp,
                      bool store, std::uint64_t mask,
                      const std::vector<VirtAddr> &addrs);

    /** Record one resolved conditional branch (condGen >= 0 only). */
    void recordBranch(unsigned block, int warp, int cond_gen,
                      std::uint64_t mask, std::uint64_t taken);

    /** Write the end record and close. @p cycles = source run total. */
    bool finish(Cycle cycles);

    bool ok() const { return ok_; }
    const std::string &error() const { return error_; }
    std::uint64_t accessesRecorded() const { return accesses_; }
    std::uint64_t branchesRecorded() const { return branches_; }

  private:
    void fail(const std::string &why);

    std::string path_;
    std::string config_;
    std::ofstream out_;
    bool ok_ = true;
    bool begun_ = false;
    bool finished_ = false;
    std::string error_;
    std::uint64_t accesses_ = 0;
    std::uint64_t branches_ = 0;
    Cycle lastCycle_ = 0;
};

/**
 * Parse a memtrace from @p in. Returns false with a one-line
 * description in @p err on any malformed input: bad magic, an
 * unsupported version, missing/duplicate prologue records, lane/mask
 * inconsistencies, out-of-order access cycles, or truncation (EOF
 * before `end`, or `end` counts that do not match the records seen).
 */
bool loadMemTrace(std::istream &in, MemTraceData &out,
                  std::string &err);

/** loadMemTrace() over a file; unreadable paths are an error too. */
bool loadMemTraceFile(const std::string &path, MemTraceData &out,
                      std::string &err);

} // namespace gpummu

#endif // TRACE_MEMTRACE_HH
