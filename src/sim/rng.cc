#include "sim/rng.hh"

#include <cmath>

namespace gpummu {

ZipfSampler::ZipfSampler(std::uint64_t n, double exponent)
    : n_(n), s_(exponent)
{
    GPUMMU_ASSERT(n >= 1);
    GPUMMU_ASSERT(exponent >= 0.0 && exponent != 1.0,
                  "exponent 1.0 needs the log special case; use ~0.99");
    hx0_ = h(0.5) - 1.0;
    hn_ = h(static_cast<double>(n_) + 0.5);
}

double
ZipfSampler::h(double x) const
{
    // Integral of x^-s: x^(1-s) / (1-s).
    return std::pow(x, 1.0 - s_) / (1.0 - s_);
}

double
ZipfSampler::hInv(double x) const
{
    return std::pow((1.0 - s_) * x, 1.0 / (1.0 - s_));
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    // Rejection-inversion (Hormann & Derflinger 1996). Expected
    // iterations per sample is close to 1 for the exponents we use.
    while (true) {
        const double u = hn_ + rng.uniform() * (hx0_ - hn_);
        const double x = hInv(u);
        std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
        if (k < 1)
            k = 1;
        if (k > n_)
            k = n_;
        const double kd = static_cast<double>(k);
        if (kd - x <= hx0_ ||
            u >= h(kd + 0.5) - std::pow(kd, -s_)) {
            return k - 1;
        }
    }
}

} // namespace gpummu
