/**
 * @file
 * A minimal discrete event queue.
 *
 * Cores tick cycle by cycle; latency through the memory system is
 * modelled with completion events. Events scheduled for the same
 * cycle fire in scheduling order (a monotonic sequence number breaks
 * ties) so simulation stays deterministic.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gpummu {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at cycle when (must not be in the past). */
    void
    schedule(Cycle when, Callback cb)
    {
        GPUMMU_ASSERT(when >= now_, "scheduling into the past");
        heap_.push(Event{when, nextSeq_++, std::move(cb)});
    }

    /** Current simulated cycle (last serviced time). */
    Cycle now() const { return now_; }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Cycle of the earliest pending event; kCycleNever when empty. */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? kCycleNever : heap_.top().when;
    }

    /**
     * Run every event scheduled at or before cycle `upto`, advancing
     * now() to `upto`.
     */
    void
    runUntil(Cycle upto)
    {
        GPUMMU_ASSERT(upto >= now_);
        while (!heap_.empty() && heap_.top().when <= upto) {
            // Move the callback out before popping; the callback may
            // schedule new events.
            Event ev = heap_.top();
            heap_.pop();
            now_ = ev.when;
            ev.cb();
        }
        now_ = upto;
    }

    /** Drop all pending events and reset time (tests only). */
    void
    clear()
    {
        heap_ = {};
        now_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &other) const
        {
            if (when != other.when)
                return when > other.when;
            return seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace gpummu

#endif // SIM_EVENT_QUEUE_HH
