/**
 * @file
 * A minimal discrete event queue.
 *
 * Cores tick cycle by cycle; latency through the memory system is
 * modelled with completion events. Events scheduled for the same
 * cycle fire in scheduling order (a monotonic sequence number breaks
 * ties) so simulation stays deterministic.
 *
 * The heap is managed directly with std::push_heap / std::pop_heap
 * rather than std::priority_queue: priority_queue::top() returns a
 * const reference, which forces a deep copy of the std::function
 * callback for every fired event. pop_heap moves the top element to
 * the back of the vector, from where the event (and its callback)
 * can genuinely be moved out before dispatch.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gpummu {

class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule cb to run at cycle when (must not be in the past). */
    void
    schedule(Cycle when, Callback cb)
    {
        GPUMMU_ASSERT(when >= now_, "scheduling into the past");
        heap_.push_back(Event{when, nextSeq_++, std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Event::Later{});
    }

    /** Current simulated cycle (last serviced time). */
    Cycle now() const { return now_; }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Cycle of the earliest pending event; kCycleNever when empty. */
    Cycle
    nextEventCycle() const
    {
        return heap_.empty() ? kCycleNever : heap_.front().when;
    }

    /**
     * Run every event scheduled at or before cycle `upto`, advancing
     * now() to `upto`.
     */
    void
    runUntil(Cycle upto)
    {
        GPUMMU_ASSERT(upto >= now_);
        while (!heap_.empty() && heap_.front().when <= upto) {
            // pop_heap rotates the earliest event to the back; move
            // it out (callback included) before shrinking the vector,
            // so the callback is free to schedule new events.
            std::pop_heap(heap_.begin(), heap_.end(), Event::Later{});
            Event ev = std::move(heap_.back());
            heap_.pop_back();
            now_ = ev.when;
            ev.cb();
        }
        now_ = upto;
    }

    /** Drop all pending events and reset time (tests only). */
    void
    clear()
    {
        heap_.clear();
        now_ = 0;
        nextSeq_ = 0;
    }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        Callback cb;

        /** Max-heap comparator that puts the earliest event on top. */
        struct Later
        {
            bool
            operator()(const Event &a, const Event &b) const
            {
                if (a.when != b.when)
                    return a.when > b.when;
                return a.seq > b.seq;
            }
        };
    };

    std::vector<Event> heap_;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace gpummu

#endif // SIM_EVENT_QUEUE_HH
