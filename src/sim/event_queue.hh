/**
 * @file
 * A minimal discrete event queue.
 *
 * Cores tick cycle by cycle; latency through the memory system is
 * modelled with completion events. Events scheduled for the same
 * cycle fire in scheduling order (a monotonic sequence number breaks
 * ties) so simulation stays deterministic.
 *
 * Two hot-path mechanisms keep dispatch cheap:
 *
 *  - Same-cycle batch drain: runUntil() pulls every event of the
 *    front cycle into a drain buffer in one pass (pop_heap yields
 *    them in seq order, so the buffer needs no sort) and fires from
 *    the buffer. Events a callback schedules for the *current* cycle
 *    append straight onto the buffer - O(1) instead of a heap
 *    push/pop round trip - which is exactly the common case of
 *    completion cascades. Firing order is identical to the old
 *    one-pop-per-event loop: drained events hold every seq smaller
 *    than any event scheduled during dispatch.
 *
 *  - Raw callback events: scheduleRaw() takes a plain function
 *    pointer plus a context pointer, so per-cycle machinery (the
 *    page-walk level chain, arena-backed completion nodes) never
 *    touches std::function's allocating type erasure. Both event
 *    kinds share one (when, seq) ordering domain.
 *
 * The heap is managed directly with std::push_heap / std::pop_heap
 * rather than std::priority_queue: priority_queue::top() returns a
 * const reference, which forces a deep copy of the std::function
 * callback for every fired event. pop_heap moves the top element to
 * the back of the vector, from where the event (and its callback)
 * can genuinely be moved out before dispatch.
 */

#ifndef SIM_EVENT_QUEUE_HH
#define SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "sim/logging.hh"
#include "sim/types.hh"

namespace gpummu {

class EventQueue
{
  public:
    using Callback = std::function<void()>;
    /** Raw event callback: (context, fire cycle). */
    using RawFn = void (*)(void *ctx, Cycle now);

    /** Schedule cb to run at cycle when (must not be in the past). */
    void
    schedule(Cycle when, Callback cb)
    {
        GPUMMU_ASSERT(when >= now_, "scheduling into the past");
        if (draining_ && when == now_) {
            // Same-cycle fast path: the drain loop below is still
            // consuming the buffer in index order, and every drained
            // event carries a smaller seq, so appending preserves
            // the (when, seq) firing order exactly.
            drain_.push_back(
                Event{when, nextSeq_++, nullptr, nullptr,
                      std::move(cb)});
            return;
        }
        heap_.push_back(Event{when, nextSeq_++, nullptr, nullptr,
                              std::move(cb)});
        std::push_heap(heap_.begin(), heap_.end(), Event::Later{});
    }

    /**
     * Schedule a raw function-pointer event: no std::function, no
     * type erasure, no possible allocation. @p ctx is passed back to
     * @p fn together with the fire cycle; lifetime of whatever ctx
     * points at is the caller's problem (arena-backed nodes free
     * themselves from inside fn).
     */
    void
    scheduleRaw(Cycle when, RawFn fn, void *ctx)
    {
        GPUMMU_ASSERT(when >= now_, "scheduling into the past");
        GPUMMU_ASSERT(fn != nullptr);
        if (draining_ && when == now_) {
            drain_.push_back(Event{when, nextSeq_++, fn, ctx, {}});
            return;
        }
        heap_.push_back(Event{when, nextSeq_++, fn, ctx, {}});
        std::push_heap(heap_.begin(), heap_.end(), Event::Later{});
    }

    /** Current simulated cycle (last serviced time). */
    Cycle now() const { return now_; }

    bool
    empty() const
    {
        return heap_.empty() && drainPos_ >= drain_.size();
    }

    std::size_t
    size() const
    {
        return heap_.size() + (drain_.size() - drainPos_);
    }

    /** Cycle of the earliest pending event; kCycleNever when empty. */
    Cycle
    nextEventCycle() const
    {
        if (drainPos_ < drain_.size())
            return now_;
        return heap_.empty() ? kCycleNever : heap_.front().when;
    }

    /** Events dispatched over this queue's lifetime (the simbench
     *  events-fired-per-second numerator; deterministic). */
    std::uint64_t eventsFired() const { return eventsFired_; }

    /**
     * Run every event scheduled at or before cycle `upto`, advancing
     * now() to `upto`. Not reentrant: callbacks schedule, they do
     * not run the queue.
     */
    void
    runUntil(Cycle upto)
    {
        GPUMMU_ASSERT(upto >= now_);
        GPUMMU_ASSERT(!draining_,
                      "runUntil re-entered from a callback");
        while (!heap_.empty() && heap_.front().when <= upto) {
            const Cycle t = heap_.front().when;
            // Pull the whole cycle into the drain buffer; pop_heap
            // pops in ascending (when, seq), so it lands sorted.
            drain_.clear();
            drainPos_ = 0;
            while (!heap_.empty() && heap_.front().when == t) {
                std::pop_heap(heap_.begin(), heap_.end(),
                              Event::Later{});
                drain_.push_back(std::move(heap_.back()));
                heap_.pop_back();
            }
            now_ = t;
            draining_ = true;
            // Index loop: callbacks may append same-cycle events and
            // reallocate the buffer, so move each event out first.
            for (std::size_t i = 0; i < drain_.size(); ++i) {
                Event ev = std::move(drain_[i]);
                drainPos_ = i + 1;
                ++eventsFired_;
                if (ev.raw != nullptr)
                    ev.raw(ev.ctx, now_);
                else
                    ev.cb();
                if (cleared_)
                    break;
            }
            draining_ = false;
            drain_.clear();
            drainPos_ = 0;
            if (cleared_) {
                // clear() ran from inside a callback: the queue was
                // fully reset (time included); do not advance now_.
                cleared_ = false;
                return;
            }
        }
        now_ = upto;
    }

    /**
     * Drop all pending events and reset time and the tie-break
     * counter. Test-only: production code builds a fresh EventQueue
     * per run (GpuTop owns one) and never reuses a queue across
     * kernels; nothing under src/ calls clear(). Unlike the old
     * behaviour, backing storage is released too (see shrink()), so
     * a reused queue cannot carry stale capacity forever. Safe to
     * call from inside a firing callback: the remaining events of
     * the cycle are dropped and runUntil returns without touching
     * the reset state.
     */
    void
    clear()
    {
        heap_.clear();
        if (draining_) {
            // Mid-drain: the index loop in runUntil observes the
            // emptied buffer and stops; the flag makes runUntil
            // return without overwriting the reset now_.
            cleared_ = true;
        }
        drain_.clear();
        drainPos_ = 0;
        now_ = 0;
        nextSeq_ = 0;
        eventsFired_ = 0;
        shrink();
    }

    /**
     * Release heap and drain-buffer capacity down to the live event
     * count. The buffers otherwise only grow (capacity policy:
     * high-water within a run is fine, but callers keeping a queue
     * beyond a run call shrink() - or clear(), which implies it - so
     * a burst does not pin memory forever.
     */
    void
    shrink()
    {
        heap_.shrink_to_fit();
        drain_.shrink_to_fit();
    }

    /** Backing-store capacities (capacity-policy tests). */
    std::size_t heapCapacity() const { return heap_.capacity(); }
    std::size_t drainCapacity() const { return drain_.capacity(); }

  private:
    struct Event
    {
        Cycle when;
        std::uint64_t seq;
        RawFn raw;  ///< non-null for scheduleRaw events
        void *ctx;
        Callback cb;

        /** Max-heap comparator that puts the earliest event on top. */
        struct Later
        {
            bool
            operator()(const Event &a, const Event &b) const
            {
                if (a.when != b.when)
                    return a.when > b.when;
                return a.seq > b.seq;
            }
        };
    };

    std::vector<Event> heap_;
    /** Current cycle's events, in seq order; drainPos_ is the index
     *  of the next event to fire. */
    std::vector<Event> drain_;
    std::size_t drainPos_ = 0;
    bool draining_ = false;
    bool cleared_ = false;
    Cycle now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t eventsFired_ = 0;
};

} // namespace gpummu

#endif // SIM_EVENT_QUEUE_HH
