/**
 * @file
 * Simulator-throughput benchmark reporting (bench/simbench).
 *
 * A BenchReport is the schema-versioned payload behind the
 * `BENCH_<n>.json` artifacts at the repo root: one measurement per
 * suite point, carrying the deterministic quantities (cycles
 * simulated, events fired, instructions) next to the wall-clock ones
 * (seconds, cycles/sec, events/sec). The deterministic fields let two
 * checkouts be compared point-by-point with confidence that both ran
 * the same simulation; the wall-clock fields are the tracked perf
 * trajectory.
 *
 * This layer is deliberately simulation-agnostic: it knows nothing
 * about workloads or configs, only names and numbers, so it can live
 * in src/sim and be unit-tested without building a GPU. The suite
 * definition (which presets, which workloads) lives in
 * bench/simbench.cc.
 *
 * validateBenchJson() re-parses an emitted file against the embedded
 * schema; the CI bench-smoke job fails on any violation, so a
 * regression in the writer cannot silently corrupt the trajectory.
 */

#ifndef SIM_PERF_REPORT_HH
#define SIM_PERF_REPORT_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace gpummu {

/**
 * Version of the BENCH_*.json schema this checkout writes. Bump when
 * adding/renaming required fields; validation accepts any version in
 * [1, kBenchSchemaVersion], so artifacts from older checkouts keep
 * validating while files from the future are rejected loudly.
 */
inline constexpr int kBenchSchemaVersion = 1;

/** One measured suite point. */
struct BenchMeasurement
{
    /** Stable point id, "<benchmark>/<config>". */
    std::string point;
    std::string benchmark;
    std::string config;

    /** Deterministic quantities (must replay identically). */
    std::uint64_t cycles = 0;
    std::uint64_t eventsFired = 0;
    std::uint64_t instructions = 0;

    /** Wall-clock of the best (fastest) repeat, in seconds. */
    double wallSeconds = 0.0;

    double
    cyclesPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(cycles) / wallSeconds
                   : 0.0;
    }

    double
    eventsPerSec() const
    {
        return wallSeconds > 0.0
                   ? static_cast<double>(eventsFired) / wallSeconds
                   : 0.0;
    }
};

/** A full simbench run: metadata plus one measurement per point. */
struct BenchReport
{
    int schemaVersion = kBenchSchemaVersion;
    /** PR sequence number the artifact belongs to (BENCH_<pr>.json). */
    int pr = 0;
    double scale = 0.0;
    std::uint64_t seed = 0;
    /** Timed repeats per point (wallSeconds is the best of these). */
    int repeat = 1;
    std::vector<BenchMeasurement> points;

    /** Serialize as one JSON object (stable field order). */
    void toJson(std::ostream &os) const;
    std::string toJson() const;

    /**
     * Write toJson() to @p path. Returns false with a description in
     * @p err (if non-null) when the path cannot be created/written —
     * the harness turns that into a clear CLI error, not a crash.
     */
    bool writeFile(const std::string &path,
                   std::string *err = nullptr) const;
};

/**
 * Minimal JSON document model for validation (objects, arrays,
 * strings, numbers, bools, null — no NaN/Infinity, per the JSON
 * grammar). Numbers are held as double.
 */
struct JsonValue
{
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> items; ///< Array elements.
    std::vector<std::pair<std::string, JsonValue>> members;

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(const std::string &key) const;
};

/** Parse @p text as a single JSON document. Returns false and sets
 *  @p err (if non-null) on malformed input. */
bool parseJson(const std::string &text, JsonValue &out,
               std::string *err = nullptr);

/** Outcome of validating a BENCH_*.json payload. */
struct BenchValidation
{
    std::vector<std::string> errors;
    bool ok() const { return errors.empty(); }
};

/**
 * Validate @p json against the BENCH schema: required keys present
 * and well-typed, schema_version in [1, kBenchSchemaVersion],
 * non-empty points, and every throughput finite and strictly
 * positive (a zero or NaN reading means the measurement loop or a
 * zero-division slipped through — CI must fail, not archive it).
 */
BenchValidation validateBenchJson(const std::string &json);

} // namespace gpummu

#endif // SIM_PERF_REPORT_HH
