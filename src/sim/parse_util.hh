/**
 * @file
 * Strict, locale-independent numeric parsing.
 *
 * The misparse-tolerant C parsing family (atoi/atof/atoll and the
 * locale-dependent std::stod) silently accepts trailing garbage
 * ("--jobs=4abc" becomes 4), treats overflow as UB or garbage, and —
 * for the floating-point members — changes meaning under a non-C
 * LC_NUMERIC locale ("1.5" parses as 1 when the decimal separator is
 * a comma). PR 8 evicted that family from the sweep substrate
 * (core/sweep.cc resolveJobs, bench/dse_pareto); these helpers are
 * the shared home of that idiom so every CLI flag and JSON number in
 * the tree parses the same way:
 *
 *  - the WHOLE token must parse (no trailing characters),
 *  - out-of-range values are rejected, not wrapped,
 *  - parsing never consults the locale (std::from_chars),
 *  - failure is a bool, never a silent zero.
 */

#ifndef SIM_PARSE_UTIL_HH
#define SIM_PARSE_UTIL_HH

#include <charconv>
#include <string_view>
#include <type_traits>

namespace gpummu {

/**
 * Parse the whole of @p s as an integer of type T. Returns false —
 * leaving @p out untouched — on empty input, trailing characters,
 * a sign the type cannot hold, or overflow.
 */
template <typename T>
inline bool
parseNum(std::string_view s, T &out)
{
    static_assert(std::is_integral_v<T>,
                  "parseNum is for integers; use parseDouble");
    T v{};
    const char *end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(s.data(), end, v);
    if (ec != std::errc() || ptr != end)
        return false;
    out = v;
    return true;
}

/**
 * Parse the whole of @p s as a double, locale-independently.
 * Accepts the JSON number grammar (and from_chars extras like "inf");
 * rejects empty input, trailing characters and a leading '+'.
 */
inline bool
parseDouble(std::string_view s, double &out)
{
    double v{};
    const char *end = s.data() + s.size();
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
    const auto [ptr, ec] = std::from_chars(s.data(), end, v);
    if (ec != std::errc() || ptr != end)
        return false;
#else
#error "parseDouble needs std::from_chars(double); GCC >= 11 / " \
       "Clang >= 14 provide it"
#endif
    out = v;
    return true;
}

} // namespace gpummu

#endif // SIM_PARSE_UTIL_HH
