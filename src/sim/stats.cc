#include "sim/stats.hh"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <iomanip>

namespace gpummu {

Histogram::Histogram(std::uint64_t bucket_width, std::size_t num_buckets)
    : bucketWidth_(bucket_width)
{
    if (bucket_width > 0)
        buckets_.assign(num_buckets + 1, 0);
}

void
Histogram::sample(std::uint64_t v, std::uint64_t count)
{
    if (count == 0)
        return;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    count_ += count;
    sum_ += v * count;
    if (bucketWidth_ > 0) {
        std::size_t idx = static_cast<std::size_t>(v / bucketWidth_);
        if (idx >= buckets_.size())
            idx = buckets_.size() - 1;
        buckets_[idx] += count;
    }
    logBuckets_[logBucketOf(v)] += count;
}

std::size_t
Histogram::logBucketOf(std::uint64_t v)
{
    return static_cast<std::size_t>(std::bit_width(v));
}

double
Histogram::percentile(double q) const
{
    if (count_ == 0)
        return 0.0;
    const double want = std::ceil(q * static_cast<double>(count_));
    const std::uint64_t rank = std::min<std::uint64_t>(
        std::max<std::uint64_t>(static_cast<std::uint64_t>(want), 1),
        count_);
    std::uint64_t below = 0;
    for (std::size_t b = 0; b < logBuckets_.size(); ++b) {
        const std::uint64_t n = logBuckets_[b];
        if (n == 0)
            continue;
        if (below + n < rank) {
            below += n;
            continue;
        }
        // bucket b holds values with bit_width == b:
        // b == 0 -> {0}, else [2^(b-1), 2^b - 1].
        const double lo =
            b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
        const double hi =
            b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
        const double frac =
            n <= 1 ? 1.0
                   : static_cast<double>(rank - below) /
                         static_cast<double>(n);
        double v = lo + frac * (hi - lo);
        v = std::max(v, static_cast<double>(min_));
        v = std::min(v, static_cast<double>(max_));
        return v;
    }
    return static_cast<double>(max_);
}

double
Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_)
                  : 0.0;
}

void
Histogram::reset()
{
    count_ = 0;
    sum_ = 0;
    min_ = 0;
    max_ = 0;
    std::fill(buckets_.begin(), buckets_.end(), 0);
    logBuckets_.fill(0);
}

void
StatRegistry::addCounter(const std::string &name, Counter *c)
{
    GPUMMU_ASSERT(c != nullptr);
    auto [it, inserted] = counters_.emplace(name, c);
    (void)it;
    GPUMMU_ASSERT(inserted, "duplicate counter name: ", name);
}

void
StatRegistry::addScalar(const std::string &name, ScalarStat *s)
{
    GPUMMU_ASSERT(s != nullptr);
    auto [it, inserted] = scalars_.emplace(name, s);
    (void)it;
    GPUMMU_ASSERT(inserted, "duplicate scalar name: ", name);
}

void
StatRegistry::addHistogram(const std::string &name, Histogram *h)
{
    GPUMMU_ASSERT(h != nullptr);
    auto [it, inserted] = histograms_.emplace(name, h);
    (void)it;
    GPUMMU_ASSERT(inserted, "duplicate histogram name: ", name);
}

Counter *
StatRegistry::findCounter(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second;
}

ScalarStat *
StatRegistry::findScalar(const std::string &name) const
{
    auto it = scalars_.find(name);
    return it == scalars_.end() ? nullptr : it->second;
}

Histogram *
StatRegistry::findHistogram(const std::string &name) const
{
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second;
}

void
StatRegistry::resetAll()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, s] : scalars_)
        s->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNum(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    GPUMMU_ASSERT(ec == std::errc());
    return std::string(buf, ptr);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters_)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, s] : scalars_)
        os << name << " " << s->value() << "\n";
    for (const auto &[name, h] : histograms_) {
        os << name << ".count " << h->count() << "\n";
        os << name << ".mean " << h->mean() << "\n";
        os << name << ".min " << h->min() << "\n";
        os << name << ".max " << h->max() << "\n";
        os << name << ".p50 " << h->percentile(0.50) << "\n";
        os << name << ".p95 " << h->percentile(0.95) << "\n";
        os << name << ".p99 " << h->percentile(0.99) << "\n";
    }
}

void
StatRegistry::forEachCounter(
    const std::function<void(const std::string &, const Counter &)>
        &fn) const
{
    for (const auto &[name, c] : counters_)
        fn(name, *c);
}

void
StatRegistry::forEachScalar(
    const std::function<void(const std::string &, const ScalarStat &)>
        &fn) const
{
    for (const auto &[name, s] : scalars_)
        fn(name, *s);
}

void
StatRegistry::forEachHistogram(
    const std::function<void(const std::string &, const Histogram &)>
        &fn) const
{
    for (const auto &[name, h] : histograms_)
        fn(name, *h);
}

void
StatRegistry::dumpJson(std::ostream &os) const
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, c] : counters_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << c->value();
        first = false;
    }
    os << "},\"scalars\":{";
    first = true;
    for (const auto &[name, s] : scalars_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":" << jsonNum(s->value());
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : histograms_) {
        os << (first ? "" : ",") << '"' << jsonEscape(name)
           << "\":{\"count\":" << h->count()
           << ",\"sum\":" << h->sum()
           << ",\"mean\":" << jsonNum(h->mean())
           << ",\"min\":" << h->min() << ",\"max\":" << h->max()
           << ",\"p50\":" << jsonNum(h->percentile(0.50))
           << ",\"p95\":" << jsonNum(h->percentile(0.95))
           << ",\"p99\":" << jsonNum(h->percentile(0.99));
        if (h->bucketWidth() > 0) {
            os << ",\"bucket_width\":" << h->bucketWidth()
               << ",\"buckets\":[";
            const auto &b = h->buckets();
            for (std::size_t i = 0; i < b.size(); ++i)
                os << (i ? "," : "") << b[i];
            os << "]";
        }
        os << "}";
        first = false;
    }
    os << "}}";
}

} // namespace gpummu
