/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator (workload address streams,
 * branch outcomes, hash probes) flows through Rng so that runs are
 * bit-reproducible for a given seed. The generator is xoshiro256**
 * seeded through SplitMix64, which is fast and has no observable
 * artifacts at the scales we use.
 */

#ifndef SIM_RNG_HH
#define SIM_RNG_HH

#include <cstdint>

#include "sim/logging.hh"

namespace gpummu {

/** Stateless 64-bit mixer; also useful as a hash for thread ids. */
inline std::uint64_t
splitMix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** xoshiro256** deterministic generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x1234abcdULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(std::uint64_t seed)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x = splitMix64(x);
            word = x;
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        GPUMMU_ASSERT(bound != 0);
        // Lemire's multiply-shift rejection-free approximation is fine
        // here; the tiny modulo bias is irrelevant for workloads.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        GPUMMU_ASSERT(lo <= hi);
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

/**
 * Zipfian sampler over [0, n). Used by the memcached workload to get
 * a realistic skewed key popularity distribution (the Wikipedia trace
 * the paper uses is heavily skewed).
 *
 * Uses the rejection-inversion method of Hormann and Derflinger so
 * setup is O(1) rather than O(n).
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double exponent);

    /** Draw one sample in [0, n). */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t numItems() const { return n_; }
    double exponent() const { return s_; }

  private:
    double h(double x) const;
    double hInv(double x) const;

    std::uint64_t n_;
    double s_;
    double hx0_;
    double hn_;
};

} // namespace gpummu

#endif // SIM_RNG_HH
