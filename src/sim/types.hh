/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>

namespace gpummu {

/** Simulated clock cycle. The whole GPU runs in one clock domain. */
using Cycle = std::uint64_t;

/** A virtual byte address in the unified CPU/GPU address space. */
using VirtAddr = std::uint64_t;

/** A physical byte address. */
using PhysAddr = std::uint64_t;

/** Virtual page number (virtual address >> page shift). */
using Vpn = std::uint64_t;

/** Physical page (frame) number. */
using Ppn = std::uint64_t;

/** Sentinel for "no cycle scheduled / never". */
inline constexpr Cycle kCycleNever = ~Cycle(0);

/** Default small page parameters (x86-64 4KB pages). */
inline constexpr unsigned kPageShift4K = 12;
inline constexpr std::uint64_t kPageSize4K = 1ULL << kPageShift4K;

/** Large page parameters (x86-64 2MB pages). */
inline constexpr unsigned kPageShift2M = 21;
inline constexpr std::uint64_t kPageSize2M = 1ULL << kPageShift2M;

/** Address-space identifier. 0 is the legacy single-process space. */
using Asid = std::uint32_t;

/**
 * ASID-composed cache/TLB keys. TLBs, the shared L2 TLB and the
 * checker index entries by a single uint64; multi-process runs fold
 * the owning ASID into bits above every in-use address field so VPNs
 * from different processes can never alias. Bit 44 clears 4KB VPNs
 * (36 bits), 2MB tags (27 bits) and 128B virtual line ids (41 bits),
 * and composition is the identity for ASID 0 — single-process runs
 * produce bit-identical keys to the pre-ASID code.
 */
inline constexpr unsigned kAsidKeyShift = 44;
inline constexpr std::uint64_t kAsidKeyMask =
    (std::uint64_t(1) << kAsidKeyShift) - 1;

inline constexpr std::uint64_t
asidKey(Asid asid, std::uint64_t local)
{
    return (std::uint64_t(asid) << kAsidKeyShift) | local;
}

/** ASID half of a composed key (0 for legacy uncomposed keys). */
inline constexpr Asid
keyAsid(std::uint64_t key)
{
    return static_cast<Asid>(key >> kAsidKeyShift);
}

/** Local (VPN/tag/line) half of a composed key. */
inline constexpr std::uint64_t
keyLocal(std::uint64_t key)
{
    return key & kAsidKeyMask;
}

} // namespace gpummu

#endif // SIM_TYPES_HH
