/**
 * @file
 * Fundamental scalar types shared by every simulator module.
 */

#ifndef SIM_TYPES_HH
#define SIM_TYPES_HH

#include <cstdint>

namespace gpummu {

/** Simulated clock cycle. The whole GPU runs in one clock domain. */
using Cycle = std::uint64_t;

/** A virtual byte address in the unified CPU/GPU address space. */
using VirtAddr = std::uint64_t;

/** A physical byte address. */
using PhysAddr = std::uint64_t;

/** Virtual page number (virtual address >> page shift). */
using Vpn = std::uint64_t;

/** Physical page (frame) number. */
using Ppn = std::uint64_t;

/** Sentinel for "no cycle scheduled / never". */
inline constexpr Cycle kCycleNever = ~Cycle(0);

/** Default small page parameters (x86-64 4KB pages). */
inline constexpr unsigned kPageShift4K = 12;
inline constexpr std::uint64_t kPageSize4K = 1ULL << kPageShift4K;

/** Large page parameters (x86-64 2MB pages). */
inline constexpr unsigned kPageShift2M = 21;
inline constexpr std::uint64_t kPageSize2M = 1ULL << kPageShift2M;

} // namespace gpummu

#endif // SIM_TYPES_HH
