/**
 * @file
 * Slab/freelist arenas for hot-path simulation objects.
 *
 * The per-cycle path used to allocate with make_unique/make_shared:
 * one heap round trip per pending memory instruction, per page-walk
 * batch and per completion event. Arena<T> replaces that churn with
 * slab allocation and a LIFO freelist, so steady-state simulation
 * performs no heap traffic for these objects at all.
 *
 * Properties the tests pin down:
 *  - reuse order is deterministic (LIFO: the most recently destroyed
 *    slot is handed out next; fresh slabs are consumed in address
 *    order), so runs stay bit-identical at any job count;
 *  - double-free and foreign-pointer destroy panic via GPUMMU_ASSERT
 *    instead of corrupting the freelist;
 *  - slab growth never moves live objects (slabs are stable arrays);
 *  - a process-wide fallback switch (GPUMMU_NO_ARENA=1, or
 *    setArenaPooling(false) from tests) routes every create/destroy
 *    through plain operator new/delete. Pooled and fallback runs are
 *    bit-identical; the determinism tests assert exactly that.
 *
 * ArenaRc<T> is the shared-ownership handle for objects whose
 * lifetime is held by several std::function callbacks (the pending
 * memory-instruction descriptors): an intrusive refcount in the slot
 * header replaces the shared_ptr control block, and handle copies are
 * two pointer stores plus an increment.
 *
 * Arenas are deliberately NOT thread-safe: each simulation is single
 * threaded and owns its arenas; sweep workers never share one. The
 * arena must outlive every handle and raw pointer it produced - the
 * destructor asserts that nothing is still live, which turns a
 * dangling-handle bug into a deterministic panic.
 */

#ifndef SIM_ARENA_HH
#define SIM_ARENA_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "sim/logging.hh"

namespace gpummu {

namespace detail {
/** -1 = unresolved (consult GPUMMU_NO_ARENA), 0 = heap, 1 = pooled. */
inline std::atomic<int> g_arenaPooling{-1};
} // namespace detail

/**
 * Process-wide allocation policy consulted at Arena construction:
 * true (default) pools into slabs, false falls back to plain
 * new/delete per object (for differential bit-identity tests and
 * allocation-tool runs). Resolved once from GPUMMU_NO_ARENA.
 */
inline bool
arenaPoolingEnabled()
{
    int v = detail::g_arenaPooling.load(std::memory_order_relaxed);
    if (v < 0) {
        const char *env = std::getenv("GPUMMU_NO_ARENA");
        v = (env != nullptr && env[0] != '\0' && env[0] != '0') ? 0
                                                                : 1;
        detail::g_arenaPooling.store(v, std::memory_order_relaxed);
    }
    return v == 1;
}

/** Override the policy for arenas constructed afterwards (tests). */
inline void
setArenaPooling(bool pooled)
{
    detail::g_arenaPooling.store(pooled ? 1 : 0,
                                 std::memory_order_relaxed);
}

template <typename T> class Arena;

/**
 * Intrusive refcounted handle to an arena object. Copyable (so it
 * composes with std::function), releases the object back to its
 * arena when the last handle drops.
 */
template <typename T>
class ArenaRc
{
  public:
    ArenaRc() = default;

    ArenaRc(const ArenaRc &o) : arena_(o.arena_), obj_(o.obj_)
    {
        if (obj_ != nullptr)
            arena_->addRef(obj_);
    }

    ArenaRc(ArenaRc &&o) noexcept : arena_(o.arena_), obj_(o.obj_)
    {
        o.obj_ = nullptr;
    }

    ArenaRc &
    operator=(const ArenaRc &o)
    {
        if (this != &o) {
            release();
            arena_ = o.arena_;
            obj_ = o.obj_;
            if (obj_ != nullptr)
                arena_->addRef(obj_);
        }
        return *this;
    }

    ArenaRc &
    operator=(ArenaRc &&o) noexcept
    {
        if (this != &o) {
            release();
            arena_ = o.arena_;
            obj_ = o.obj_;
            o.obj_ = nullptr;
        }
        return *this;
    }

    ~ArenaRc() { release(); }

    T *operator->() const { return obj_; }
    T &operator*() const { return *obj_; }
    T *get() const { return obj_; }
    explicit operator bool() const { return obj_ != nullptr; }

    void reset() { release(); }

  private:
    friend class Arena<T>;

    ArenaRc(Arena<T> *arena, T *obj) : arena_(arena), obj_(obj) {}

    void
    release()
    {
        if (obj_ != nullptr && arena_->dropRef(obj_))
            arena_->destroy(obj_);
        obj_ = nullptr;
    }

    Arena<T> *arena_ = nullptr;
    T *obj_ = nullptr;
};

template <typename T>
class Arena
{
  public:
    /** @param slab_objects objects added per slab growth step. */
    explicit Arena(std::size_t slab_objects = 64)
        : slabObjects_(slab_objects), pooled_(arenaPoolingEnabled())
    {
        GPUMMU_ASSERT(slab_objects > 0);
    }

    Arena(const Arena &) = delete;
    Arena &operator=(const Arena &) = delete;

    ~Arena()
    {
        GPUMMU_ASSERT(live_ == 0, "arena destroyed with ", live_,
                      " object(s) still live; a handle outlived its "
                      "arena");
    }

    /** Allocate + construct. The pointer stays valid until destroy()
     *  (slab growth never moves live objects). */
    template <typename... A>
    T *
    create(A &&...args)
    {
        Slot *s;
        if (!pooled_) {
            s = new Slot;
            s->live = 0;
            s->rc = 0;
        } else {
            if (freeHead_ == nullptr)
                addSlab();
            s = freeHead_;
            freeHead_ = s->nextFree;
        }
        GPUMMU_ASSERT(s->live == 0, "arena slot already live");
        s->live = 1;
        s->rc = 0;
        ++live_;
        return ::new (static_cast<void *>(s->storage))
            T(std::forward<A>(args)...);
    }

    /** Allocate + construct behind a refcounted handle. */
    template <typename... A>
    ArenaRc<T>
    createRc(A &&...args)
    {
        T *obj = create(std::forward<A>(args)...);
        slotOf(obj)->rc = 1;
        return ArenaRc<T>(this, obj);
    }

    /** Destruct + return the slot to the freelist (LIFO). Panics on
     *  double-free and on pointers with live ArenaRc handles. */
    void
    destroy(T *p)
    {
        GPUMMU_ASSERT(p != nullptr, "arena destroy(nullptr)");
        Slot *s = slotOf(p);
        GPUMMU_ASSERT(s->live == 1,
                      "arena double-free (or foreign pointer)");
        GPUMMU_ASSERT(s->rc == 0,
                      "arena destroy with live ArenaRc handles");
        p->~T();
        s->live = 0;
        GPUMMU_ASSERT(live_ > 0);
        --live_;
        if (!pooled_) {
            delete s;
            return;
        }
        s->nextFree = freeHead_;
        freeHead_ = s;
    }

    /** Objects currently allocated. */
    std::size_t live() const { return live_; }

    /** Total slots across slabs (0 in heap-fallback mode). */
    std::size_t
    capacity() const
    {
        return slabs_.size() * slabObjects_;
    }

    std::size_t slabCount() const { return slabs_.size(); }

    /** Using slabs (true) or the plain-heap fallback (false)? */
    bool pooled() const { return pooled_; }

  private:
    friend class ArenaRc<T>;

    struct Slot
    {
        Slot *nextFree = nullptr; ///< valid while on the freelist
        std::uint32_t live = 0;   ///< 1 while constructed
        std::uint32_t rc = 0;     ///< ArenaRc handle count
        alignas(T) unsigned char storage[sizeof(T)];
    };

    static Slot *
    slotOf(T *p)
    {
        return reinterpret_cast<Slot *>(
            reinterpret_cast<unsigned char *>(p) -
            offsetof(Slot, storage));
    }

    void addRef(T *p) { ++slotOf(p)->rc; }

    /** Drop one handle; true when the object must be destroyed. */
    bool
    dropRef(T *p)
    {
        Slot *s = slotOf(p);
        GPUMMU_ASSERT(s->rc > 0, "ArenaRc refcount underflow");
        return --s->rc == 0;
    }

    void
    addSlab()
    {
        auto slab = std::make_unique<Slot[]>(slabObjects_);
        // Chain in reverse so allocation consumes the slab in
        // ascending address order (deterministic, cache-friendly).
        for (std::size_t i = slabObjects_; i-- > 0;) {
            slab[i].nextFree = freeHead_;
            freeHead_ = &slab[i];
        }
        slabs_.push_back(std::move(slab));
    }

    std::vector<std::unique_ptr<Slot[]>> slabs_;
    Slot *freeHead_ = nullptr;
    std::size_t live_ = 0;
    std::size_t slabObjects_;
    bool pooled_;
};

} // namespace gpummu

#endif // SIM_ARENA_HH
