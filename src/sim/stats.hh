/**
 * @file
 * Lightweight statistics package.
 *
 * Components register named Counter / ScalarStat / Histogram objects
 * with a StatRegistry owned by the top-level system. The registry can
 * dump all stats in a stable, grep-friendly text format and supports
 * reset (used between warmup and measurement phases).
 */

#ifndef SIM_STATS_HH
#define SIM_STATS_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace gpummu {

/** Monotonically increasing event count. */
class Counter
{
  public:
    Counter() = default;

    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** A settable floating point statistic (rates, averages). */
class ScalarStat
{
  public:
    ScalarStat() = default;

    void set(double v) { value_ = v; }
    void add(double v) { value_ += v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/**
 * Accumulates samples; reports count, sum, mean, min and max.
 * Optionally keeps a fixed-width bucketed distribution.
 */
class Histogram
{
  public:
    /**
     * @param bucket_width width of each distribution bucket; 0 keeps
     *                     only the summary (count / mean / min / max).
     * @param num_buckets  buckets before the overflow bucket.
     */
    explicit Histogram(std::uint64_t bucket_width = 0,
                       std::size_t num_buckets = 0);

    void sample(std::uint64_t v, std::uint64_t count = 1);

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const;

    /** Bucket counts; last bucket is overflow. Empty when summary-only. */
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }
    std::uint64_t bucketWidth() const { return bucketWidth_; }

    /**
     * Percentile estimate for @p q in (0, 1], from the always-on
     * power-of-two distribution every sample also lands in: the
     * sample of rank ceil(q * count) is located in its log2 bucket
     * and linearly interpolated across the bucket's value range,
     * clamped to [min, max]. Exact for single-valued buckets,
     * deterministic always; 0 when the histogram is empty.
     */
    double percentile(double q) const;

    void reset();

  private:
    /** Power-of-two bucket index of a sample value. */
    static std::size_t logBucketOf(std::uint64_t v);

    std::uint64_t bucketWidth_;
    std::vector<std::uint64_t> buckets_;
    /** logBuckets_[i] counts samples with bit_width(v) == i. */
    std::array<std::uint64_t, 65> logBuckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/** Escape a string for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Format a double for JSON with shortest round-trip precision; the
 * same value always formats to the same text, which the replay and
 * golden-stats tests rely on. Non-finite values become null.
 */
std::string jsonNum(double v);

/**
 * Name to stat mapping. Components register stats at construction
 * time; names use dotted paths ("core0.tlb.misses").
 */
class StatRegistry
{
  public:
    /** Register a counter; the registry does not own the object. */
    void addCounter(const std::string &name, Counter *c);
    void addScalar(const std::string &name, ScalarStat *s);
    void addHistogram(const std::string &name, Histogram *h);

    Counter *findCounter(const std::string &name) const;
    ScalarStat *findScalar(const std::string &name) const;
    Histogram *findHistogram(const std::string &name) const;

    /** Zero every registered statistic. */
    void resetAll();

    /**
     * Visit every registered stat in name order (the order dump and
     * dumpJson use). Observation-only consumers (the telemetry
     * sampler) snapshot through these without owning the registry.
     */
    void forEachCounter(
        const std::function<void(const std::string &, const Counter &)>
            &fn) const;
    void forEachScalar(const std::function<void(const std::string &,
                                                const ScalarStat &)>
                           &fn) const;
    void forEachHistogram(
        const std::function<void(const std::string &,
                                 const Histogram &)> &fn) const;

    /** Dump "name value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    /**
     * Dump every stat as one JSON object, sorted by name:
     * {"counters":{...},"scalars":{...},"histograms":{...}}.
     * Output is byte-stable for identical stat values, so two dumps
     * can be compared with string equality.
     */
    void dumpJson(std::ostream &os) const;

  private:
    std::map<std::string, Counter *> counters_;
    std::map<std::string, ScalarStat *> scalars_;
    std::map<std::string, Histogram *> histograms_;
};

} // namespace gpummu

#endif // SIM_STATS_HH
